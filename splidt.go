// Package splidt is the public API of the SpliDT reproduction: partitioned
// decision trees for scalable stateful inference at line rate (SIGCOMM
// 2025).
//
// The package re-exports the system's building blocks under one roof:
//
//   - Datasets and workloads: Generate, BuildSamples, Split, Webserver,
//     Hadoop — synthetic stand-ins for the paper's CIC datasets and
//     datacenter environments.
//   - Training: Train with a Config (partition sizes, features-per-subtree
//     k, classes) runs the paper's Algorithm 1 and returns a Model that
//     classifies flows window-by-window.
//   - Compilation: Compile lowers a Model to TCAM artifacts with the Range
//     Marking algorithm (feature tables plus a one-rule-per-leaf model
//     table).
//   - Deployment: Deploy validates the artifacts against a hardware
//     Profile and returns a simulated RMT Pipeline that executes per-packet
//     inference with recirculated subtree transitions.
//   - Design search: DesignSearch runs the Bayesian-optimisation loop over
//     depth, k, and partitioning, returning the (F1, #flows) Pareto
//     frontier.
//   - Execution at scale: NewEngine builds a sharded multi-worker engine —
//     N pipeline replicas fed by a flow-hash dispatcher over bounded SPSC
//     burst queues — that runs one deployment across every core while
//     preserving single-pipeline digest semantics. NewStream provides the
//     lazy line-rate workload source that feeds it, and EngineResult
//     reports merged stats plus a Throughput rate summary.
//   - Streaming sessions: Engine.Start opens a long-lived EngineSession.
//     Feed pushes packet batches without ever blocking (backpressure is
//     surfaced as ErrBackpressure plus a counter, never a silent stall),
//     Digests/Poll drain the incrementally merged digest stream while
//     traffic is still flowing, Snapshot reads live merged stats, Block
//     installs mid-run drop verdicts, and Close drains gracefully into a
//     deterministic final EngineResult. Engine.Run is a thin batch wrapper
//     over Start/Feed/Close — existing callers keep working unchanged and
//     get a digest-multiset-identical result, so migration is optional,
//     not forced.
//   - Live control loop: Controller.Serve consumes a session's digest
//     stream and feeds ActionBlock verdicts straight back into the
//     session's drop filter, closing the paper's detect→block loop while
//     the flow's packets are still arriving.
//   - Flow-table ageing: DeployConfig.IdleTimeout arms an incremental
//     per-shard sweep driven by packet time that reclaims register slots
//     of flows that went quiet — including parked early-exit slots whose
//     tails the dispatcher dropped — and Session.Block evicts the blocked
//     flow's slot immediately, so long-lived sessions keep ActiveFlows
//     bounded (evictions are counted in Stats.Evictions).
//   - Associative flow tables: DeployConfig.Table selects the flow-state
//     store. The default TableDirect is the paper's direct-mapped register
//     array, where hash collisions couple flows; TableCuckoo deploys a
//     d-way set-associative table (Ways) with cuckoo displacement and a
//     bounded stash (Stash) whose full-key verification keeps every flow's
//     state private — inference stays exact at load factors where the
//     direct array demonstrably diverges (GenerateColliding builds the
//     adversarial workload; displacement kicks and stash inserts surface
//     in PipelineStats).
//   - Timer-wheel expiry with per-class lifetimes: DeployConfig.Expiry
//     selects the expiry mechanism. ExpiryWheel replaces the striped sweep
//     with a hierarchical timing wheel that arms every flow entry with a
//     deadline re-armed on each touch, reclaiming idle entries in
//     O(expired) as packet time advances; with Config.Lifetimes, training
//     derives a per-leaf idle lifetime from each leaf's IAT statistics, so
//     chatty classes expire fast while keepalive classes (GenerateWith's
//     LongIATFraction builds such workloads) survive gaps a global
//     IdleTimeout would evict them over (expiries surface in
//     PipelineStats.WheelExpiries).
//   - Fault tolerance & hitless redeploy: a panicking shard worker is
//     quarantined in isolation — its backlog drains to a drop counter
//     while every other shard keeps processing — with the typed cause
//     (ShardPanicError) surfaced through Session.Health and Session.Err
//     and wrapped into every later Feed error. Close and feeder flushes
//     are deadline-bounded (ErrShutdownTimeout) so a stuck worker cannot
//     wedge a caller. Session.Redeploy swaps a freshly compiled tree into
//     a live session via an epoch-stamped per-shard handoff at burst
//     boundaries: flow state carries across the swap, zero packets drop,
//     and every Digest records the deploy Epoch that classified it.
//
// See examples/quickstart for the end-to-end path, cmd/splidt-engine (and
// its -live mode) for sharded execution, and examples/livecontrol for the
// streaming detect→block loop.
package splidt

import (
	"time"

	"splidt/internal/baselines"
	"splidt/internal/bo"
	"splidt/internal/controller"
	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/experiments"
	"splidt/internal/flow"
	"splidt/internal/flowtable"
	"splidt/internal/metrics"
	"splidt/internal/p4gen"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/telemetry"
	"splidt/internal/telemetry/flight"
	"splidt/internal/trace"
)

// Dataset identifies one of the seven builtin synthetic datasets (D1–D7,
// mirroring the paper's Table 2).
type Dataset = trace.DatasetID

// The builtin datasets.
const (
	D1 = trace.D1 // 19-class IoMT-style intrusion detection
	D2 = trace.D2 // 4-class IoT traffic
	D3 = trace.D3 // 13-class VPN detection
	D4 = trace.D4 // 11-class campus application mix
	D5 = trace.D5 // 32-class IoT security threats
	D6 = trace.D6 // 10-class IDS 2017-style attacks
	D7 = trace.D7 // 10-class IDS 2018-style attacks
)

// Datasets lists all builtin datasets.
func Datasets() []Dataset { return trace.AllDatasets() }

// NumClasses returns a dataset's label arity.
func NumClasses(d Dataset) int { return trace.NumClasses(d) }

// LabeledFlow is one generated flow with ground truth.
type LabeledFlow = trace.LabeledFlow

// Sample is one flow rendered as per-window feature vectors plus its label.
type Sample = trace.Sample

// Generate synthesises n labelled flows from a dataset's generative model
// (deterministic in seed).
func Generate(d Dataset, n int, seed int64) []LabeledFlow { return trace.Generate(d, n, seed) }

// GenConfig tunes optional workload deviations for GenerateWith; its zero
// value reproduces Generate exactly. GenConfig.LongIATFraction rewrites that
// fraction of flows into heavy-tailed keepalive patterns (0.6–2s gaps) —
// flows a global idle timeout tuned for chatty traffic would evict mid-gap,
// the workload that motivates per-class adaptive lifetimes.
type GenConfig = trace.GenConfig

// GenerateWith is Generate plus GenConfig deviations, applied as a
// deterministic post-pass over the base flow sequence.
func GenerateWith(d Dataset, n int, seed int64, cfg GenConfig) []LabeledFlow {
	return trace.GenerateWith(d, n, seed, cfg)
}

// BuildSamples windows labelled flows into training samples for the given
// partition count.
func BuildSamples(flows []LabeledFlow, parts int) []Sample { return trace.BuildSamples(flows, parts) }

// Split divides samples into train/test by fraction.
func Split(samples []Sample, trainFrac float64) (train, test []Sample) {
	return trace.Split(samples, trainFrac)
}

// GenerateColliding synthesises n labelled flows whose 5-tuples are
// engineered to contend for the first `groups` indices of a direct-mapped
// flow table of tableSize slots — the adversarial workload for the
// high-collision regime (flow bodies are exactly Generate's; only the keys
// are resampled). See trace.Colliding for the sharding divisibility rule.
func GenerateColliding(d Dataset, n int, seed int64, tableSize, groups int) []LabeledFlow {
	return trace.Colliding(d, n, seed, tableSize, groups)
}

// Workload models a datacenter environment's flow-size and lifetime
// distributions.
type Workload = trace.Workload

// The paper's two environments.
var (
	Webserver = trace.Webserver
	Hadoop    = trace.Hadoop
)

// Config describes a partitioned decision tree architecture.
type Config = core.Config

// Model is a trained partitioned decision tree.
type Model = core.Model

// Train runs SpliDT's recursive partitioned training (Algorithm 1).
func Train(samples []Sample, cfg Config) (*Model, error) { return core.Train(samples, cfg) }

// Compiled is a model lowered to data-plane match tables.
type Compiled = rangemark.Compiled

// Compile generates the TCAM artifacts of a trained model using the Range
// Marking algorithm.
func Compile(m *Model) (*Compiled, error) { return rangemark.Compile(m) }

// Profile describes a hardware target's resource budgets.
type Profile = resources.Profile

// Builtin hardware profiles.
var (
	Tofino1  = resources.Tofino1
	Tofino2  = resources.Tofino2
	X2       = resources.X2
	Pensando = resources.Pensando
)

// Pipeline is a simulated RMT switch pipeline with a deployed model.
type Pipeline = dataplane.Pipeline

// TableScheme selects the flow-state store a deployment uses
// (DeployConfig.Table): TableDirect is the paper's direct-mapped register
// array (colliding flows share state), TableCuckoo is the d-way
// set-associative store with cuckoo displacement and a bounded stash
// (full-key verification, exact at high load factors), and TableOracle is
// the unbounded exact map the equivalence tests use as ground truth.
type TableScheme = dataplane.TableScheme

// The flow-table schemes.
const (
	TableDirect = dataplane.TableDirect
	TableCuckoo = dataplane.TableCuckoo
	TableOracle = dataplane.TableOracle
)

// ParseTableScheme validates a scheme name ("" selects TableDirect).
func ParseTableScheme(s string) (TableScheme, error) { return dataplane.ParseTableScheme(s) }

// ExpiryScheme selects how a deployment reclaims idle flow entries
// (DeployConfig.Expiry): ExpirySweep is the striped scan over the table
// with the global IdleTimeout, ExpiryWheel the hierarchical timer wheel
// that arms every flow with a per-class adaptive lifetime (trained per
// decision-tree leaf when Config.Lifetimes is set) and reclaims in
// O(expired) as packet time advances.
type ExpiryScheme = dataplane.ExpiryScheme

// The expiry schemes.
const (
	ExpirySweep = dataplane.ExpirySweep
	ExpiryWheel = dataplane.ExpiryWheel
)

// ParseExpiryScheme validates a scheme name ("" selects ExpirySweep).
func ParseExpiryScheme(s string) (ExpiryScheme, error) { return dataplane.ParseExpiryScheme(s) }

// Cuckoo-scheme geometry defaults, applied when DeployConfig leaves
// Ways/Stash zero (a negative Stash disables the stash entirely).
const (
	DefaultTableWays  = flowtable.DefaultWays
	DefaultTableStash = flowtable.DefaultStash
)

// TableStashLines resolves a DeployConfig.Stash value to the stash line
// count a cuckoo deployment actually builds (0 selects the default,
// negative disables the stash).
func TableStashLines(configured int) int { return flowtable.StashLines(configured) }

// Digest is a classification record emitted by the pipeline.
type Digest = dataplane.Digest

// DeployConfig assembles a deployment for Deploy.
type DeployConfig = dataplane.Config

// Deploy validates a deployment against its hardware profile and returns a
// running pipeline.
func Deploy(cfg DeployConfig) (*Pipeline, error) { return dataplane.New(cfg) }

// Confusion is a confusion matrix with accuracy and macro-F1.
type Confusion = metrics.Confusion

// NewConfusion allocates an n-class confusion matrix.
func NewConfusion(classes int) *Confusion { return metrics.NewConfusion(classes) }

// MacroF1 scores predictions against ground truth.
func MacroF1(actual, predicted []int, classes int) float64 {
	return metrics.MacroF1Of(actual, predicted, classes)
}

// SearchPoint is one configuration in the design space.
type SearchPoint = bo.Point

// SearchSpace bounds the design search.
type SearchSpace = bo.Space

// DefaultSearchSpace mirrors the paper's ranges (depth ≤ 30, k ≤ 7,
// ≤ 7 partitions).
func DefaultSearchSpace() SearchSpace { return bo.DefaultSpace() }

// SearchResult is a completed design search with its Pareto frontier.
type SearchResult = bo.Result

// Env bundles a dataset with search budgets for DesignSearch and the
// experiment drivers.
type Env = experiments.Env

// NewEnv builds an experiment environment (nFlows <= 0 selects a
// class-proportional default).
func NewEnv(d Dataset, nFlows int) *Env { return experiments.NewEnv(d, nFlows) }

// DesignSearch explores configurations of a dataset with Bayesian
// optimisation and returns the search result; use BestAtFlows on the result
// via the experiments drivers, or read the Pareto field directly.
func DesignSearch(env *Env, space SearchSpace) SearchResult {
	res, _ := env.Search(space)
	return res
}

// BaselineOptions configures the NetBeacon/Leo design searches.
type BaselineOptions = baselines.Options

// BaselineResult is one trained baseline deployment.
type BaselineResult = baselines.Result

// TrainNetBeacon trains the NetBeacon baseline at a flow target.
func TrainNetBeacon(train, test []Sample, opts BaselineOptions) (BaselineResult, error) {
	return baselines.TrainNetBeacon(train, test, opts)
}

// TrainLeo trains the Leo baseline at a flow target.
func TrainLeo(train, test []Sample, opts BaselineOptions) (BaselineResult, error) {
	return baselines.TrainLeo(train, test, opts)
}

// WindowBounds selects non-uniform window boundaries (adaptive window
// sizing): cumulative flow fractions ending at 1.
type WindowBounds = pkt.Bounds

// UniformWindows returns the uniform bounds for n windows.
func UniformWindows(n int) WindowBounds { return pkt.Uniform(n) }

// BuildSamplesBounds windows labelled flows with non-uniform boundaries.
func BuildSamplesBounds(flows []LabeledFlow, bounds WindowBounds) []Sample {
	return trace.BuildSamplesBounds(flows, bounds)
}

// Controller is the control-plane companion of a deployment: it ingests
// digests, tracks flow classifications, and applies policy.
type Controller = controller.Controller

// ControllerPolicy maps digests to actions.
type ControllerPolicy = controller.Policy

// BlockClasses builds a policy that blocks the listed classes.
func BlockClasses(classes ...int) ControllerPolicy { return controller.BlockClasses(classes...) }

// NewController builds a controller (nil policy allows everything).
func NewController(classes int, policy ControllerPolicy) *Controller {
	return controller.New(classes, policy)
}

// Engine is the sharded multi-worker execution layer: N pipeline replicas
// dispatched by flow hash, so every flow's register state and digest stay
// on one shard.
type Engine = engine.Engine

// EngineConfig sizes an engine: the replicated deployment, shard count,
// burst size, and queue depth.
type EngineConfig = engine.Config

// EngineResult is one engine run's merged output: an ordered digest
// stream, summed stats, the per-shard split, and throughput rates.
type EngineResult = engine.Result

// PacketSource yields packets in arrival order (TrafficStream implements
// it; engine.SliceSource adapts in-memory sequences).
type PacketSource = engine.Source

// ShiftSource offsets a PacketSource's timestamps — replay a trace as a
// later wave so packet time (and flow-table ageing with it) keeps
// advancing.
type ShiftSource = engine.ShiftSource

// NewEngine validates the deployment and builds one pipeline replica per
// shard.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// EngineSession is a long-lived streaming run of an Engine (Engine.Start):
// Feed in, Digests/Poll out, Snapshot for live stats, Block for mid-run
// drop verdicts, Close for a graceful drain into a deterministic
// EngineResult. Engine.Run is implemented on top of it.
type EngineSession = engine.Session

// EngineSnapshot is a live view of a running session's merged stats,
// including dispatch-stage drops, backpressure counts, and flow-table
// ageing evictions (Stats.Evictions).
type EngineSnapshot = engine.Snapshot

// SessionOption configures an EngineSession at Engine.Start.
type SessionOption = engine.SessionOption

// WithBoundedDigests makes a session drop digests once delivered through
// Digests()/Poll, bounding a long-lived session's memory by its
// undelivered backlog; Close's Result then carries only that tail.
func WithBoundedDigests() SessionOption { return engine.WithBoundedDigests() }

// EngineFeeder is one producer's private handle into a session's dispatch
// stage (Session.NewFeeder): M feeders over a flow-disjoint workload
// partition (PartitionPackets) dispatch into the shard workers concurrently
// with no shared lock on the hot path. Session.Feed wraps a default one.
type EngineFeeder = engine.Feeder

// PartitionPackets splits a packet sequence into m flow-disjoint,
// order-preserving subsequences by flow hash — one per concurrent feeder.
// Keeping each flow on one feeder is what preserves per-flow packet order,
// and with it the engine's digest-multiset equivalence.
func PartitionPackets(pkts []Packet, m int) [][]Packet { return trace.Partition(pkts, m) }

// Streaming-session errors.
var (
	// ErrBackpressure reports a full shard queue on Feed: retry with the
	// unconsumed remainder or shed load. The producer side never blocks.
	ErrBackpressure = engine.ErrBackpressure
	// ErrSessionClosed reports a Feed after Close (or context cancel).
	ErrSessionClosed = engine.ErrSessionClosed
	// ErrSessionActive reports a second Start on a busy engine.
	ErrSessionActive = engine.ErrSessionActive
	// ErrFeederClosed reports a Feed on a closed EngineFeeder.
	ErrFeederClosed = engine.ErrFeederClosed
	// ErrShutdownTimeout reports a Close (or context abort) that hit the
	// shutdown deadline with a shard worker stuck mid-burst; the engine is
	// left poisoned rather than handed back with an unaccounted goroutine.
	ErrShutdownTimeout = engine.ErrShutdownTimeout
	// ErrRedeployTimeout reports a Session.Redeploy whose epoch was not
	// adopted by every healthy shard within the shutdown deadline.
	ErrRedeployTimeout = engine.ErrRedeployTimeout
)

// EngineHealth is a point-in-time fault report over a session
// (EngineSession.Health): per-shard states, quarantine drop counts, live
// deploy epochs, and the first recorded fault cause.
type EngineHealth = engine.Health

// ShardHealth is one shard's slice of an EngineHealth report.
type ShardHealth = engine.ShardHealth

// ShardState classifies a shard worker's condition: running, degraded
// (watchdog saw queued input make no progress for an interval), or
// quarantined (its worker panicked; the shard drains to a drop counter).
type ShardState = engine.HealthState

// The shard states.
const (
	ShardRunning     = engine.ShardRunning
	ShardDegraded    = engine.ShardDegraded
	ShardQuarantined = engine.ShardQuarantined
)

// ShardPanicError is the typed cause recorded when a shard worker
// panics: the shard, the recovered value, and the worker's stack.
// EngineSession.Err returns it and later Feed errors wrap it.
type ShardPanicError = engine.ShardPanicError

// FlowKey is a 5-tuple flow identity (Session.Block takes one; Digest
// carries one).
type FlowKey = flow.Key

// Packet is a parsed packet as the pipeline's PHV sees it — the unit
// Session.Feed consumes.
type Packet = pkt.Packet

// DigestSession is the session surface Controller.Serve consumes;
// *EngineSession satisfies it.
type DigestSession = controller.DigestSession

// TrafficStream lazily generates a dataset workload in global arrival
// order, deterministic in (dataset, flows, seed, spacing).
type TrafficStream = trace.Stream

// NewStream builds a lazy packet source over n generated flows, flow i
// starting at i×spacing.
func NewStream(d Dataset, n int, seed int64, spacing time.Duration) *TrafficStream {
	return trace.NewStream(d, n, seed, spacing)
}

// Throughput reports an engine run's rates: packets/sec, digests/sec, and
// recirculation overhead per packet.
type Throughput = metrics.Throughput

// PipelineStats aggregates data-plane counters (per shard or merged).
type PipelineStats = dataplane.Stats

// P4Options configures P4 source generation.
type P4Options = p4gen.Options

// P4Generator emits P4-16 source and bfrt-style rule files for a compiled
// model (the artifacts a physical deployment would install).
type P4Generator = p4gen.Generator

// NewP4Generator builds a generator for a trained and compiled model.
func NewP4Generator(m *Model, c *Compiled, opts P4Options) (*P4Generator, error) {
	return p4gen.New(m, c, opts)
}

// TelemetryServer is the live management plane: a stdlib HTTP server
// exposing /metrics (Prometheus text), /healthz (session health JSON),
// /flightrecorder (per-shard postmortem rings), /series (sampler
// time series), and /debug/pprof — all reading published atomics off
// the hot path.
type TelemetryServer = telemetry.Server

// TelemetryConfig sizes a TelemetryServer: the engine it describes, the
// optional live session and controller, the sampler interval and series
// depth.
type TelemetryConfig = telemetry.Config

// TelemetrySample is one sampler observation: rates, occupancy, backlog,
// and feed lag over one sampling interval.
type TelemetrySample = telemetry.Sample

// ServeTelemetry binds the management server on addr ("host:port";
// ":0" picks a free port, see TelemetryServer.Addr) and starts its
// sampler. Close releases both.
func ServeTelemetry(addr string, cfg TelemetryConfig) (*TelemetryServer, error) {
	return telemetry.Serve(addr, cfg)
}

// FlightEvent is one flight-recorder entry: a monotone sequence number,
// an event kind, the shard's packet-time stamp, and two kind-specific
// operands. ShardPanicError.Postmortem carries the final ring.
type FlightEvent = flight.Event

// FlightKind enumerates flight-recorder event kinds.
type FlightKind = flight.Kind
