// Command splidt-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; see DESIGN.md
// for the per-experiment index and EXPERIMENTS.md for recorded outcomes.
//
// Usage:
//
//	splidt-bench -exp fig2 -dataset 1,2,3
//	splidt-bench -exp all -iters 16
//
// Experiments: fig2, tab1, fig6 (includes tab3), fig7, tab4, tab5, fig8a,
// fig8b, fig8c, fig9, fig10, fig11, fig12, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"splidt/internal/experiments"
	"splidt/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-bench: ")

	var (
		exp      = flag.String("exp", "all", "experiment id (fig2, tab1, fig6, fig7, tab4, tab5, fig8a/b/c, fig9, fig10, fig11, fig12, all)")
		datasets = flag.String("dataset", "", "comma-separated dataset numbers (default: the paper's set per experiment)")
		nFlows   = flag.Int("flows", 0, "generated flows per dataset (0 = default)")
		iters    = flag.Int("iters", 12, "BO iterations per design search")
		parallel = flag.Int("parallel", 8, "parallel evaluations per iteration")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	ids, err := parseDatasets(*datasets)
	if err != nil {
		log.Fatal(err)
	}
	mkEnv := func(id trace.DatasetID) *experiments.Env {
		env := experiments.NewEnv(id, *nFlows)
		env.BOIterations = *iters
		env.BOParallel = *parallel
		env.Seed = *seed
		return env
	}

	run := func(name string) {
		switch name {
		case "fig2":
			for _, id := range pick(ids, trace.D1, trace.D2, trace.D3) {
				r, err := experiments.Figure2(mkEnv(id))
				check(err)
				fmt.Println(r.Render())
			}
		case "tab1":
			for _, id := range pick(ids, trace.D1, trace.D2, trace.D3) {
				r, err := experiments.Table1(mkEnv(id))
				check(err)
				fmt.Println(r.Render())
			}
		case "fig6", "tab3":
			for _, id := range pick(ids, trace.AllDatasets()...) {
				r, err := experiments.Fig6Table3(mkEnv(id))
				check(err)
				fmt.Println(r.Render())
			}
		case "fig7":
			for _, id := range pick(ids, trace.AllDatasets()...) {
				r := experiments.Figure7(mkEnv(id))
				fmt.Println(r.Render())
			}
		case "tab4":
			for _, id := range pick(ids, trace.AllDatasets()...) {
				r, err := experiments.Table4(mkEnv(id))
				check(err)
				fmt.Println(r.Render())
			}
		case "tab5":
			for _, id := range pick(ids, trace.AllDatasets()...) {
				r, err := experiments.Table5(mkEnv(id))
				check(err)
				fmt.Println(r.Render())
			}
		case "fig8a":
			for _, id := range pick(ids, trace.D2) {
				r, err := experiments.Figure8(mkEnv(id), "depth", []int{10, 20, 30})
				check(err)
				fmt.Println(r.Render())
			}
		case "fig8b":
			for _, id := range pick(ids, trace.D2) {
				r, err := experiments.Figure8(mkEnv(id), "partitions", []int{1, 3, 5})
				check(err)
				fmt.Println(r.Render())
			}
		case "fig8c":
			for _, id := range pick(ids, trace.D2) {
				r, err := experiments.Figure8(mkEnv(id), "features", []int{1, 2, 3})
				check(err)
				fmt.Println(r.Render())
			}
		case "fig9":
			for _, id := range pick(ids, trace.D2, trace.D3) {
				r, err := experiments.Figure9(mkEnv(id))
				check(err)
				fmt.Println(r.Render())
			}
		case "fig10":
			for _, id := range pick(ids, trace.D3) {
				for _, w := range trace.Workloads() {
					r, err := experiments.Figure10(mkEnv(id), w)
					check(err)
					fmt.Println(r.Render())
				}
			}
		case "fig11":
			fmt.Println(experiments.Figure11(50, []int{1, 2, 3, 4}).Render())
		case "fig12":
			for _, id := range pick(ids, trace.D3) {
				r, err := experiments.Figure12(mkEnv(id), []int{32, 16, 8})
				check(err)
				fmt.Println(r.Render())
			}
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{
			"fig2", "tab1", "fig6", "fig7", "tab4", "tab5",
			"fig8a", "fig8b", "fig8c", "fig9", "fig10", "fig11", "fig12",
		} {
			fmt.Printf("==== %s ====\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// pick returns the user-selected datasets, or the experiment's defaults.
func pick(user []trace.DatasetID, defaults ...trace.DatasetID) []trace.DatasetID {
	if len(user) > 0 {
		return user
	}
	return defaults
}

func parseDatasets(s string) ([]trace.DatasetID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []trace.DatasetID
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 || v > 7 {
			return nil, fmt.Errorf("bad dataset %q (want 1-7)", tok)
		}
		out = append(out, trace.DatasetID(v))
	}
	return out, nil
}
