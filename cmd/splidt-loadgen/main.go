// Command splidt-loadgen is the open-loop load harness CLI: it trains and
// deploys a partitioned tree across a sharded engine, then drives it with a
// continuously churning flow population — a fixed number of concurrently
// live flows whose identities turn over as flows complete and are reborn —
// through a schedule of phases, reporting per-phase digest-latency
// percentiles, flow-table occupancy, eviction/reject counters, and achieved
// packet rates.
//
// The harness is open-loop: feeders pace against an absolute schedule and
// never shed, so overload shows up as lag and latency rather than silently
// reduced offered load. -rate 0 (the default) disables pacing and measures
// peak sustainable throughput instead.
//
// The phase schedule is space-separated name:packets[:knob=value,...]
// entries; packet counts take k/m suffixes. Knobs: coll=F directs fraction
// F of flow rebirths to draw from a precomputed pool of keys that collide
// into few flow-table buckets (a collision storm; needs -collision-groups),
// block=N installs a block verdict on a random live flow every N offered
// packets per feeder (a block storm), rate=F scales the -rate target for
// the phase (a surge or lull), redeploy=1 retrains a tree on fresh traffic
// and hitlessly swaps it in mid-phase while the feeders stay live (the
// adopted deploy epoch lands in the phase report).
//
// -wire <file> replays a recorded wire-format workload (splidt-engine
// -record) through the zero-copy ingest path instead of generating one;
// wire mode is single-feeder and ignores the churn knobs.
//
// Usage:
//
//	splidt-loadgen -flows 100000 -shards 4 -slots 262144 -phases "steady:2m"
//	splidt-loadgen -flows 1200000 -shards 8 -slots 2097152 \
//	    -phases "steady:4m storm:3m:coll=0.5 blockstorm:3m:block=2000"
//	splidt-loadgen -rate 500000 -flows 50000 -phases "warm:1m surge:1m:rate=2"
//	splidt-loadgen -flows 100000 -phases "warm:2m swap:2m:redeploy=1 settle:2m"
//	splidt-engine -dataset 3 -flows 5000 -record ws.splt && splidt-loadgen -wire ws.splt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"splidt"
	"splidt/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-loadgen: ")

	var (
		dataset    = flag.Int("dataset", 3, "dataset number (1-7) the deployed model is trained on")
		trainFlows = flag.Int("train-flows", 400, "flows used to train the model")
		partitions = flag.String("partitions", "3,2,2", "comma-separated partition depths")
		k          = flag.Int("k", 4, "features per subtree")
		seed       = flag.Int64("seed", 1, "workload seed")
		shards     = flag.Int("shards", 0, "pipeline replicas / worker goroutines (0 = GOMAXPROCS)")
		slots      = flag.Int("slots", 1<<18, "total flow register slots (split across shards)")
		table      = flag.String("table", "cuckoo", "flow-table scheme: cuckoo (associative, the churn-regime default), direct, or oracle")
		burst      = flag.Int("burst", 32, "packets per burst")
		queue      = flag.Int("queue", 8, "per-shard queue depth in bursts")
		idleTO     = flag.Duration("idle-timeout", 0, "flow-table ageing idle timeout in packet (virtual) time (0 = off)")
		expiry     = flag.String("expiry", "sweep", "flow-expiry mechanism: sweep or wheel (requires -idle-timeout)")

		flows     = flag.Int("flows", 100_000, "concurrent flow population (total across feeders)")
		feeders   = flag.Int("feeders", 2, "parallel producer goroutines, each with a private feeder and a disjoint slice of the population")
		rate      = flag.Float64("rate", 0, "total offered packets/sec across feeders (0 = unpaced, peak throughput)")
		timeScale = flag.Float64("time-scale", 1000, "virtual-time compression: flow lifetimes and gaps divided by this, so a run covers proportionally more churn")
		longFrac  = flag.Float64("long-frac", 0.05, "fraction of flows that are heavy-tailed keepalives (long idle gaps)")
		rebirth   = flag.Duration("rebirth-delay", time.Millisecond, "mean virtual-time gap between a flow's death and rebirth")
		collGroup = flag.Int("collision-groups", 0, "enable collision storms: pool keys concentrate into this many flow-table buckets (0 = storms off)")
		poolSize  = flag.Int("pool", 1024, "precomputed colliding keys (collision storms)")
		blockRing = flag.Int("block-ring", 1024, "outstanding block verdicts per feeder during block storms")
		phasesArg = flag.String("phases", "steady:1m", "space-separated phase schedule: name:packets[:knob=value,...] with k/m packet suffixes; knobs coll=F block=N rate=F redeploy=1")
		wire      = flag.String("wire", "", "replay this recorded wire-format workload instead of generating one (single feeder; churn knobs ignored)")
		telemetry = flag.String("telemetry", "", "serve /metrics, /healthz, /flightrecorder, and pprof on this host:port during the run (\"\" = off)")
	)
	flag.Parse()

	scheme, err := splidt.ParseTableScheme(*table)
	if err != nil {
		usageError("-table: %v", err)
	}
	expiryScheme, err := splidt.ParseExpiryScheme(*expiry)
	if err != nil {
		usageError("-expiry: %v", err)
	}
	if expiryScheme == splidt.ExpiryWheel && *idleTO <= 0 {
		usageError("-expiry wheel needs -idle-timeout > 0 (the base flow lifetime)")
	}
	phases, err := parsePhases(*phasesArg)
	if err != nil {
		usageError("-phases: %v", err)
	}
	if *wire == "" {
		for _, ph := range phases {
			if ph.CollisionFrac > 0 && *collGroup <= 0 {
				usageError("phase %q uses coll= but -collision-groups is 0", ph.Name)
			}
		}
	}
	parts := parseInts(*partitions, "partition depth")
	id := splidt.Dataset(*dataset)
	if *dataset < 1 || *dataset > len(splidt.Datasets()) {
		log.Fatalf("dataset %d out of range 1-%d", *dataset, len(splidt.Datasets()))
	}

	// Train and compile once; every shard replicates the same program.
	tf := splidt.Generate(id, *trainFlows, *seed+1)
	samples := splidt.BuildSamples(tf, len(parts))
	train, _ := splidt.Split(samples, 0.7)
	m, err := splidt.Train(train, splidt.Config{
		Partitions: parts, FeaturesPerSubtree: *k, NumClasses: splidt.NumClasses(id),
		Lifetimes: expiryScheme == splidt.ExpiryWheel,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := splidt.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := splidt.NewEngine(splidt.EngineConfig{
		Deploy: splidt.DeployConfig{
			Profile: splidt.Tofino1(), Model: m, Compiled: c,
			FlowSlots: *slots, Workload: splidt.Webserver,
			Table: scheme, IdleTimeout: *idleTO, Expiry: expiryScheme,
		},
		Shards: *shards, Burst: *burst, Queue: *queue,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A redeploy=1 phase retrains on fresh traffic (a new seed per swap) and
	// hitlessly swaps the tree while the feeders stay live.
	redeploySeed := *seed + 1000
	redeploy := func() (*splidt.Model, *splidt.Compiled, error) {
		redeploySeed++
		tf := splidt.Generate(id, *trainFlows, redeploySeed)
		train, _ := splidt.Split(splidt.BuildSamples(tf, len(parts)), 0.7)
		m2, err := splidt.Train(train, splidt.Config{
			Partitions: parts, FeaturesPerSubtree: *k, NumClasses: splidt.NumClasses(id),
			Lifetimes: expiryScheme == splidt.ExpiryWheel,
		})
		if err != nil {
			return nil, nil, err
		}
		c2, err := splidt.Compile(m2)
		if err != nil {
			return nil, nil, err
		}
		return m2, c2, nil
	}

	cfg := loadgen.Config{
		Engine:    eng,
		Feeders:   *feeders,
		Rate:      *rate,
		Phases:    phases,
		BlockRing: *blockRing,
		Redeploy:  redeploy,
		Churn: loadgen.ChurnConfig{
			Flows:           *flows,
			Seed:            *seed,
			Workload:        splidt.Webserver,
			LongIATFraction: *longFrac,
			TimeScale:       *timeScale,
			RebirthDelay:    *rebirth,
			PoolSize:        *poolSize,
		},
	}
	if *collGroup > 0 {
		cfg.Churn.CollisionTable = *slots
		cfg.Churn.CollisionGroups = *collGroup
	}

	var tsrv *splidt.TelemetryServer
	if *telemetry != "" {
		tsrv, err = splidt.ServeTelemetry(*telemetry, splidt.TelemetryConfig{Engine: eng})
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer tsrv.Close()
		// The harness owns session startup; bind /healthz and the sampler to
		// it the moment it exists.
		cfg.OnSession = func(s *splidt.EngineSession) { tsrv.SetSession(s) }
	}

	var wireSrc *loadgen.WireSource
	if *wire != "" {
		f, err := os.Open(*wire)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if wireSrc, err = loadgen.NewWireSource(f); err != nil {
			log.Fatal(err)
		}
		cfg.Source = wireSrc
	}

	fmt.Printf("model          %v\n", m)
	fmt.Printf("engine         %d shards, %d total slots, %s table\n",
		eng.Shards(), *slots, scheme)
	if *wire != "" {
		fmt.Printf("workload       wire replay of %s (zero-copy ingest, single feeder)\n", *wire)
	} else {
		fmt.Printf("workload       %d concurrent flows over %d feeders, time-scale %gx, %.0f%% keepalive\n",
			*flows, *feeders, *timeScale, 100**longFrac)
	}
	if *rate > 0 {
		fmt.Printf("pacing         open-loop at %.0f pkts/s total (never sheds; slip reports as lag)\n", *rate)
	} else {
		fmt.Printf("pacing         unpaced: peak sustainable throughput\n")
	}
	if tsrv != nil {
		fmt.Printf("telemetry      http://%s/metrics /healthz /flightrecorder /debug/pprof\n", tsrv.Addr())
	}

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range rep.Phases {
		fmt.Println(pr)
	}
	fmt.Println(rep.Total)
	if wireSrc != nil {
		if err := wireSrc.Err(); err != nil {
			log.Fatalf("wire stream: %v", err)
		}
		fmt.Printf("wire           %d data packets, %d non-data records skipped\n",
			wireSrc.Packets(), wireSrc.Skipped())
	}
	fmt.Printf("table          %d/%d slots occupied at close (%.1f%%)\n",
		rep.Total.ActiveFlows, rep.TableCap, 100*rep.Total.Occupancy)
}

// parsePhases parses the -phases value: space-separated
// name:packets[:knob=value,...] entries, packet counts with optional k/m
// suffixes, knobs coll=F block=N rate=F redeploy=1.
func parsePhases(s string) ([]loadgen.Phase, error) {
	var out []loadgen.Phase
	for _, tok := range strings.Fields(s) {
		parts := strings.SplitN(tok, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("phase %q: want name:packets[:knobs]", tok)
		}
		ph := loadgen.Phase{Name: parts[0]}
		n, err := parseCount(parts[1])
		if err != nil {
			return nil, fmt.Errorf("phase %q: %v", tok, err)
		}
		ph.Packets = n
		if len(parts) == 3 {
			for _, kv := range strings.Split(parts[2], ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("phase %q: knob %q (want knob=value)", tok, kv)
				}
				switch key {
				case "coll":
					if ph.CollisionFrac, err = strconv.ParseFloat(val, 64); err != nil {
						return nil, fmt.Errorf("phase %q: coll=%q: %v", tok, val, err)
					}
				case "block":
					if ph.BlockEvery, err = parseCount(val); err != nil {
						return nil, fmt.Errorf("phase %q: block=%q: %v", tok, val, err)
					}
				case "rate":
					if ph.RateFactor, err = strconv.ParseFloat(val, 64); err != nil {
						return nil, fmt.Errorf("phase %q: rate=%q: %v", tok, val, err)
					}
				case "redeploy":
					if ph.Redeploy, err = strconv.ParseBool(val); err != nil {
						return nil, fmt.Errorf("phase %q: redeploy=%q: %v", tok, val, err)
					}
				default:
					return nil, fmt.Errorf("phase %q: unknown knob %q (coll, block, rate, redeploy)", tok, key)
				}
			}
		}
		out = append(out, ph)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty schedule")
	}
	return out, nil
}

// parseCount parses an integer with an optional k (×1e3) or m (×1e6) suffix.
func parseCount(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad count %q", s)
	}
	return n * mult, nil
}

func parseInts(s, what string) []int {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			log.Fatalf("bad %s %q", what, tok)
		}
		out = append(out, v)
	}
	return out
}

func usageError(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "splidt-loadgen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
