// Command splidt-engine trains a partitioned tree, deploys it across a
// sharded multi-worker engine, streams a generated workload through it, and
// reports throughput: packets/sec, digests/sec, recirculation overhead, and
// the per-shard load split.
//
// Usage:
//
//	splidt-engine -dataset 3 -flows 2000 -shards 8 -burst 32
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"splidt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-engine: ")

	var (
		dataset    = flag.Int("dataset", 3, "dataset number (1-7)")
		nFlows     = flag.Int("flows", 2000, "streamed flows")
		trainFlows = flag.Int("train-flows", 400, "flows used to train the model")
		partitions = flag.String("partitions", "3,2,2", "comma-separated partition depths")
		k          = flag.Int("k", 4, "features per subtree")
		seed       = flag.Int64("seed", 1, "workload seed")
		shards     = flag.Int("shards", 0, "pipeline replicas / worker goroutines (0 = GOMAXPROCS)")
		burst      = flag.Int("burst", 32, "packets per burst")
		queue      = flag.Int("queue", 8, "per-shard queue depth in bursts")
		slots      = flag.Int("slots", 1<<18, "total flow register slots (split across shards)")
		spacingUS  = flag.Int("spacing-us", 200, "flow start spacing (µs)")
	)
	flag.Parse()

	parts := parseParts(*partitions)
	id := splidt.Dataset(*dataset)
	if *dataset < 1 || *dataset > len(splidt.Datasets()) {
		log.Fatalf("dataset %d out of range 1-%d", *dataset, len(splidt.Datasets()))
	}
	classes := splidt.NumClasses(id)

	// Train and compile once; every shard replicates the same program.
	flows := splidt.Generate(id, *trainFlows, *seed+1)
	samples := splidt.BuildSamples(flows, len(parts))
	train, _ := splidt.Split(samples, 0.7)
	m, err := splidt.Train(train, splidt.Config{
		Partitions: parts, FeaturesPerSubtree: *k, NumClasses: classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := splidt.Compile(m)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := splidt.NewEngine(splidt.EngineConfig{
		Deploy: splidt.DeployConfig{
			Profile: splidt.Tofino1(), Model: m, Compiled: c,
			FlowSlots: *slots, Workload: splidt.Webserver,
		},
		Shards: *shards, Burst: *burst, Queue: *queue,
	})
	if err != nil {
		log.Fatal(err)
	}

	src := splidt.NewStream(id, *nFlows, *seed, time.Duration(*spacingUS)*time.Microsecond)
	res, err := eng.Run(src)
	if err != nil {
		log.Fatal(err)
	}

	// Score classifications against the stream's ground truth.
	conf := splidt.NewConfusion(classes)
	labels := src.Labels()
	for _, d := range res.Digests {
		if label, ok := labels[d.Key]; ok {
			conf.Add(label, d.Class)
		}
	}

	fmt.Printf("model          %v\n", m)
	fmt.Printf("engine         %d shards × burst %d × queue %d (%d total slots)\n",
		eng.Shards(), *burst, *queue, *slots)
	fmt.Printf("workload       %s: %d flows, %d packets\n", id, *nFlows, res.Stats.Packets)
	fmt.Printf("throughput     %v\n", res.Throughput)
	fmt.Printf("digests        %d (%d recirculations, %d recirc bytes)\n",
		res.Stats.Digests, res.Stats.ControlPackets, res.Stats.RecircBytes)
	fmt.Printf("collisions     %d\n", res.Stats.Collisions)
	fmt.Printf("accuracy       %.3f   macro-F1 %.3f\n", conf.Accuracy(), conf.MacroF1())
	fmt.Printf("per-shard      ")
	for i, s := range res.PerShard {
		if i > 0 {
			fmt.Printf(" | ")
		}
		fmt.Printf("%d: %dp/%dd", i, s.Packets, s.Digests)
	}
	fmt.Println()
}

func parseParts(s string) []int {
	var parts []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			log.Fatalf("bad partition depth %q", tok)
		}
		parts = append(parts, v)
	}
	return parts
}
