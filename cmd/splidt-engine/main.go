// Command splidt-engine trains a partitioned tree, deploys it across a
// sharded multi-worker engine, streams a generated workload through it, and
// reports throughput: packets/sec, digests/sec, recirculation overhead, and
// the per-shard load split.
//
// Batch mode (default) drains the workload through Engine.Run; -feeders N
// instead splits it into N flow-disjoint partitions and dispatches them
// through N concurrent Feeder handles over the engine's MPSC shard rings —
// the parallel producer side. Live mode
// (-live) opens a streaming session instead: packets go in through Feed, a
// controller consumes the digest stream concurrently and pushes ActionBlock
// verdicts for the classes named by -block back into the dispatch stage, and
// periodic snapshots show flows being dropped while traffic is still
// flowing. -waves replays the workload through the same session, modelling
// repeat offenders hitting an already-populated blocklist. -idle-timeout
// arms flow-table ageing: per-shard sweeps driven by packet time reclaim
// register slots of flows that went quiet (blocked early-exited flows
// included), keeping ActiveFlows bounded over multi-wave runs. -expiry wheel
// swaps the striped sweep for the hierarchical timer wheel with per-class
// adaptive lifetimes (trained from each leaf's IAT statistics;
// -lifetime-class pins specific classes by policy).
//
// -record <file> instead dumps the generated workload as a wire-format
// record stream (pkt record codec) and exits without running the engine;
// replay it through the load harness with splidt-loadgen -wire <file>.
//
// Usage:
//
//	splidt-engine -dataset 3 -flows 2000 -shards 8 -burst 32
//	splidt-engine -dataset 3 -flows 2000 -shards 4 -feeders 4
//	splidt-engine -dataset 3 -flows 2000 -live -block 0,1,2 -waves 2 -idle-timeout 20ms
//	splidt-engine -dataset 3 -flows 2000 -expiry wheel -idle-timeout 100ms -lifetime-class 3=5s
//	splidt-engine -dataset 3 -flows 5000 -record ws.splt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"splidt"
	"splidt/internal/pkt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-engine: ")

	var (
		dataset    = flag.Int("dataset", 3, "dataset number (1-7)")
		nFlows     = flag.Int("flows", 2000, "streamed flows")
		trainFlows = flag.Int("train-flows", 400, "flows used to train the model")
		partitions = flag.String("partitions", "3,2,2", "comma-separated partition depths")
		k          = flag.Int("k", 4, "features per subtree")
		seed       = flag.Int64("seed", 1, "workload seed")
		shards     = flag.Int("shards", 0, "pipeline replicas / worker goroutines (0 = GOMAXPROCS)")
		feeders    = flag.Int("feeders", 1, "concurrent dispatch producers over a flow-disjoint workload partition (batch mode)")
		burst      = flag.Int("burst", 32, "packets per burst")
		queue      = flag.Int("queue", 8, "per-shard queue depth in bursts")
		slots      = flag.Int("slots", 1<<18, "total flow register slots (split across shards)")
		table      = flag.String("table", "direct", "flow-table scheme: direct (hash-indexed slots, collisions couple flows), cuckoo (d-way associative + stash, verified exact), or oracle (unbounded map, testing only)")
		ways       = flag.Int("ways", splidt.DefaultTableWays, "cuckoo bucket associativity (-table cuckoo)")
		stash      = flag.Int("stash", splidt.DefaultTableStash, "cuckoo overflow stash entries (-table cuckoo; 0 = library default, negative = no stash)")
		idleTO     = flag.Duration("idle-timeout", 0, "flow-table ageing idle timeout in packet time (0 = off)")
		stripe     = flag.Int("sweep-stripe", 0, "register slots examined per ageing sweep (0 = default)")
		expiry     = flag.String("expiry", "sweep", "flow-expiry mechanism: sweep (striped scan, global -idle-timeout) or wheel (hierarchical timer wheel, per-class lifetimes trained from leaf IAT statistics; requires -idle-timeout)")
		ltClass    = flag.String("lifetime-class", "", "comma-separated class=duration lifetime overrides, e.g. 3=5s,7=250ms (pins those classes' leaf lifetimes instead of deriving them)")
		spacingUS  = flag.Int("spacing-us", 200, "flow start spacing (µs)")
		record     = flag.String("record", "", "write the generated workload as a wire-format record file and exit (replay with splidt-loadgen -wire)")
		live       = flag.Bool("live", false, "streaming session with a live controller loop")
		block      = flag.String("block", "", "comma-separated classes the controller blocks (live mode)")
		waves      = flag.Int("waves", 1, "times to replay the workload through one session (live mode)")
		reportMS   = flag.Int("report-ms", 200, "live snapshot interval (ms)")
		redeployAt = flag.Int64("redeploy-at", 0, "live mode: once N packets have been fed, retrain and hitlessly swap the tree mid-run (0 = off)")
		telemetry  = flag.String("telemetry", "", "serve /metrics, /healthz, /flightrecorder, and pprof on this host:port while the run is live (\"\" = off)")
	)
	flag.Parse()

	// Validate flags up front with usage errors, instead of letting a bad
	// value panic (or silently self-correct) deep inside engine deployment.
	scheme, err := splidt.ParseTableScheme(*table)
	if err != nil {
		usageError("-table: %v", err)
	}
	expiryScheme, err := splidt.ParseExpiryScheme(*expiry)
	if err != nil {
		usageError("-expiry: %v", err)
	}
	if expiryScheme == splidt.ExpiryWheel && *idleTO <= 0 {
		usageError("-expiry wheel needs -idle-timeout > 0 (the base flow lifetime)")
	}
	classLifetimes := parseClassLifetimes(*ltClass)
	if *shards < 0 {
		usageError("-shards must be >= 1 (or 0 for GOMAXPROCS), got %d", *shards)
	}
	for name, v := range map[string]int{
		"-feeders": *feeders, "-ways": *ways,
		"-burst": *burst, "-queue": *queue, "-slots": *slots, "-flows": *nFlows,
		"-train-flows": *trainFlows, "-waves": *waves,
	} {
		if v < 1 {
			usageError("%s must be >= 1, got %d", name, v)
		}
	}
	// -stash deliberately escapes the >= 1 rule: the library contract makes
	// 0 the default-selecting value and negative the stash-less deployment.

	parts := parseInts(*partitions, "partition depth", 1)
	id := splidt.Dataset(*dataset)
	if *dataset < 1 || *dataset > len(splidt.Datasets()) {
		log.Fatalf("dataset %d out of range 1-%d", *dataset, len(splidt.Datasets()))
	}
	classes := splidt.NumClasses(id)

	if *record != "" {
		recordWorkload(*record, id, *nFlows, *seed,
			time.Duration(*spacingUS)*time.Microsecond)
		return
	}

	// Train and compile once; every shard replicates the same program.
	flows := splidt.Generate(id, *trainFlows, *seed+1)
	samples := splidt.BuildSamples(flows, len(parts))
	train, _ := splidt.Split(samples, 0.7)
	trainCfg := splidt.Config{
		Partitions: parts, FeaturesPerSubtree: *k, NumClasses: classes,
		// Wheel expiry runs on per-class adaptive lifetimes: derive them
		// from the training samples' per-leaf IAT statistics, with
		// -lifetime-class pinning specific classes by policy.
		Lifetimes:      expiryScheme == splidt.ExpiryWheel,
		ClassLifetimes: classLifetimes,
	}
	m, err := splidt.Train(train, trainCfg)
	if err != nil {
		log.Fatal(err)
	}
	c, err := splidt.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	// Retrain-and-compile closure for -redeploy-at: same samples, same
	// architecture, a fresh Model/Compiled pair — what a control plane would
	// produce from an updated training set before a hitless swap.
	retrain := func() (*splidt.Model, *splidt.Compiled, error) {
		m2, err := splidt.Train(train, trainCfg)
		if err != nil {
			return nil, nil, err
		}
		c2, err := splidt.Compile(m2)
		if err != nil {
			return nil, nil, err
		}
		return m2, c2, nil
	}

	eng, err := splidt.NewEngine(splidt.EngineConfig{
		Deploy: splidt.DeployConfig{
			Profile: splidt.Tofino1(), Model: m, Compiled: c,
			FlowSlots: *slots, Workload: splidt.Webserver,
			Table: scheme, Ways: *ways, Stash: *stash,
			IdleTimeout: *idleTO, SweepStripe: *stripe,
			Expiry: expiryScheme,
		},
		Shards: *shards, Burst: *burst, Queue: *queue,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tsrv *splidt.TelemetryServer
	if *telemetry != "" {
		tsrv, err = splidt.ServeTelemetry(*telemetry, splidt.TelemetryConfig{Engine: eng})
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer tsrv.Close()
	}

	fmt.Printf("model          %v\n", m)
	fmt.Printf("engine         %d shards × burst %d × queue %d (%d total slots)\n",
		eng.Shards(), *burst, *queue, *slots)
	if tsrv != nil {
		fmt.Printf("telemetry      http://%s/metrics /healthz /flightrecorder /debug/pprof\n", tsrv.Addr())
	}
	if scheme == splidt.TableCuckoo {
		fmt.Printf("flow table     cuckoo: %d-way buckets + %d-entry stash per shard, verified keys\n",
			*ways, splidt.TableStashLines(*stash))
	} else {
		fmt.Printf("flow table     %s\n", scheme)
	}
	if *idleTO > 0 {
		if expiryScheme == splidt.ExpiryWheel {
			fmt.Printf("ageing         timer wheel, per-class lifetimes (base %v, max leaf %v), driven by packet time\n",
				*idleTO, c.MaxLifetime())
		} else {
			fmt.Printf("ageing         idle-timeout %v, per-shard sweeps driven by packet time\n", *idleTO)
		}
	}

	spacing := time.Duration(*spacingUS) * time.Microsecond
	if *live {
		if *feeders > 1 {
			log.Printf("-feeders %d ignored: live mode drives the session through FeedSource (single producer)", *feeders)
		}
		runLive(eng, tsrv, id, *nFlows, *seed, spacing, classes, *block, *waves,
			time.Duration(*reportMS)*time.Millisecond, *redeployAt, retrain)
		return
	}
	if *redeployAt > 0 {
		log.Printf("-redeploy-at %d ignored: hitless redeploy is demonstrated in -live mode", *redeployAt)
	}

	src := splidt.NewStream(id, *nFlows, *seed, spacing)
	if *feeders > 1 {
		res := runParallel(eng, tsrv, src, *feeders)
		report(id, *nFlows, classes, src.Labels(), res)
		return
	}
	res, err := eng.Run(src)
	if err != nil {
		log.Fatal(err)
	}
	report(id, *nFlows, classes, src.Labels(), res)
}

// runParallel drains the stream, splits it into feeders flow-disjoint
// partitions, and drives one session with a private Feeder per partition —
// the parallel-dispatch path (engine package: per-feeder staging bursts
// over MPSC shard rings).
func runParallel(eng *splidt.Engine, tsrv *splidt.TelemetryServer, src splidt.PacketSource, feeders int) *splidt.EngineResult {
	var pkts []splidt.Packet
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		pkts = append(pkts, p)
	}
	parts := splidt.PartitionPackets(pkts, feeders)
	sess, err := eng.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if tsrv != nil {
		tsrv.SetSession(sess)
	}
	var wg sync.WaitGroup
	for _, part := range parts {
		f, err := sess.NewFeeder()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(part []splidt.Packet) {
			defer wg.Done()
			if err := f.FeedAll(part); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}(part)
	}
	wg.Wait()
	res, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatch       %d feeders over flow-disjoint partitions\n", feeders)
	return res
}

// runLive drives the streaming path: session + controller feedback loop,
// plus the optional mid-run hitless redeploy (-redeploy-at).
func runLive(eng *splidt.Engine, tsrv *splidt.TelemetryServer, id splidt.Dataset, nFlows int, seed int64,
	spacing time.Duration, classes int, block string, waves int, interval time.Duration,
	redeployAt int64, retrain func() (*splidt.Model, *splidt.Compiled, error)) {
	blocked := parseInts(block, "blocked class", 0)
	policy := splidt.ControllerPolicy(nil)
	if len(blocked) > 0 {
		policy = splidt.BlockClasses(blocked...)
	}
	ctrl := splidt.NewController(classes, policy)

	sess, err := eng.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if tsrv != nil {
		tsrv.SetSession(sess)
		tsrv.SetController(ctrl)
	}
	served := make(chan int, 1)
	go func() {
		n, serveErr := ctrl.Serve(sess)
		if serveErr != nil {
			log.Fatalf("digest stream died: %v", serveErr)
		}
		served <- n
	}()

	stop := make(chan struct{})
	if redeployAt > 0 {
		// Redeploy trigger: once the dispatcher has accepted redeployAt
		// packets, retrain and swap the tree under live traffic — the
		// workers hand off per shard at burst boundaries, flow state
		// carries across, and digests from then on are stamped with the
		// new deploy epoch (visible in the per-epoch report).
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if sess.Snapshot().Fed >= redeployAt {
					m2, c2, rerr := retrain()
					if rerr != nil {
						log.Fatalf("redeploy: retrain failed: %v", rerr)
					}
					epoch, derr := sess.Redeploy(m2, c2)
					if derr != nil {
						log.Printf("redeploy: %v", derr)
						return
					}
					fmt.Printf("redeploy       epoch %d live after %d packets fed (hitless swap, flow state carried)\n",
						epoch, sess.Snapshot().Fed)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				snap := sess.Snapshot()
				fmt.Printf("live           fed=%d processed=%d digests=%d blocked-flows=%d dropped=%d active=%d evicted=%d collisions=%d backpressure=%d\n",
					snap.Fed, snap.Stats.Packets, snap.Stats.Digests,
					snap.BlockedFlows, snap.Dropped, snap.ActiveFlows,
					snap.Stats.Evictions, snap.Stats.Collisions, snap.Backpressure)
			case <-stop:
				return
			}
		}
	}()

	var labels map[splidt.FlowKey]int
	var wave0 time.Duration // packet-time offset of the current wave
	for w := 0; w < waves; w++ {
		src := splidt.NewStream(id, nFlows, seed, spacing)
		// Each wave replays the trace shifted past the previous wave's last
		// packet: repeat offenders arrive later in packet time, which keeps
		// the ageing sweeps advancing instead of freezing at wave-1's end.
		shifted := &splidt.ShiftSource{Src: src, Offset: wave0}
		if err := sess.FeedSource(shifted); err != nil {
			log.Fatal(err)
		}
		wave0 = shifted.Max()
		labels = src.Labels()
		// Per-wave flow-table occupancy: with ageing on, leaked slots of
		// blocked early-exited flows are reclaimed by the sweeps, so
		// ActiveFlows stays bounded wave over wave instead of ratcheting
		// up. Quiesce first — FeedSource only hands packets to the rings,
		// and a mid-drain sample would show arbitrary peak occupancy.
		snap := waitSettled(sess)
		fmt.Printf("wave %-2d        active-flows=%d evicted=%d blocked-flows=%d collisions=%d\n",
			w+1, snap.ActiveFlows, snap.Stats.Evictions, snap.BlockedFlows,
			snap.Stats.Collisions)
	}
	res, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	close(stop)
	blockedDigests := <-served

	report(id, nFlows, classes, labels, res)
	final := sess.Snapshot()
	fmt.Printf("controller     %d digests, %d block verdicts, %d flows blocked, mean TTD %v\n",
		ctrl.Digests(), blockedDigests, final.BlockedFlows, ctrl.MeanTTD())
	fmt.Printf("dispatch       %d packets of blocked flows dropped before pipeline work\n", res.Dropped)
	fmt.Printf("flow table     %d slots still active, %d evicted by ageing/block, %d collision packets\n",
		final.ActiveFlows, res.Stats.Evictions, final.Stats.Collisions)
}

func report(id splidt.Dataset, nFlows, classes int, labels map[splidt.FlowKey]int, res *splidt.EngineResult) {
	// Score each flow once, on its first digest: with -waves > 1 unblocked
	// flows re-digest every wave while blocked ones don't, which would
	// otherwise weight accuracy toward the unblocked classes.
	conf := splidt.NewConfusion(classes)
	scored := make(map[splidt.FlowKey]bool, len(labels))
	for _, d := range res.Digests {
		if label, ok := labels[d.Key]; ok && !scored[d.Key] {
			scored[d.Key] = true
			conf.Add(label, d.Class)
		}
	}
	fmt.Printf("workload       %s: %d flows, %d packets\n", id, nFlows, res.Stats.Packets)
	fmt.Printf("throughput     %v\n", res.Throughput)
	fmt.Printf("digests        %d (%d recirculations, %d recirc bytes)\n",
		res.Stats.Digests, res.Stats.ControlPackets, res.Stats.RecircBytes)
	fmt.Printf("collisions     %d\n", res.Stats.Collisions)
	// Per-epoch digest split: only interesting after a mid-run redeploy —
	// epoch 0 is the deployment the session started with, each Redeploy
	// bumps the stamp on every digest emitted after the shard adopted it.
	byEpoch := map[uint64]int{}
	var maxEpoch uint64
	for _, d := range res.Digests {
		byEpoch[d.Epoch]++
		if d.Epoch > maxEpoch {
			maxEpoch = d.Epoch
		}
	}
	if maxEpoch > 0 {
		epochs := make([]uint64, 0, len(byEpoch))
		for e := range byEpoch {
			epochs = append(epochs, e)
		}
		sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
		fmt.Printf("digest epochs  ")
		for i, e := range epochs {
			if i > 0 {
				fmt.Printf(" | ")
			}
			fmt.Printf("epoch %d: %d", e, byEpoch[e])
		}
		fmt.Println()
	}
	fmt.Printf("accuracy       %.3f   macro-F1 %.3f\n", conf.Accuracy(), conf.MacroF1())
	fmt.Printf("per-shard      ")
	for i, s := range res.PerShard {
		if i > 0 {
			fmt.Printf(" | ")
		}
		fmt.Printf("%d: %dp/%dd", i, s.Packets, s.Digests)
	}
	fmt.Println()
}

// waitSettled blocks until the workers have drained everything fed so far
// (every packet processed or dropped, two consecutive snapshots equal) and
// returns the settled snapshot.
func waitSettled(sess *splidt.EngineSession) splidt.EngineSnapshot {
	for {
		a := sess.Snapshot()
		if int64(a.Stats.Packets)+a.Dropped+a.QuarantineDropped+a.DiscardedStaged == a.Fed {
			time.Sleep(2 * time.Millisecond)
			b := sess.Snapshot()
			if a.Stats == b.Stats && a.Fed == b.Fed {
				return b
			}
			continue
		}
		time.Sleep(time.Millisecond)
	}
}

// recordWorkload streams the generated workload into a wire-format record
// file — the capture the load harness replays with zero-copy ingest.
func recordWorkload(path string, id splidt.Dataset, n int, seed int64, spacing time.Duration) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := pkt.NewRecordWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	src := splidt.NewStream(id, n, seed, spacing)
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if err := w.WritePacket(p); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded       %s: %d flows, %d packets -> %s\n", id, n, w.Records(), path)
}

// usageError reports a bad flag value the way flag parsing itself would: a
// message plus the usage text, exit 2.
func usageError(format string, args ...any) {
	fmt.Fprintf(flag.CommandLine.Output(), "splidt-engine: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseClassLifetimes parses the -lifetime-class value: comma-separated
// class=duration pairs.
func parseClassLifetimes(s string) map[int]time.Duration {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out := make(map[int]time.Duration)
	for _, tok := range strings.Split(s, ",") {
		cls, dur, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok {
			log.Fatalf("bad -lifetime-class entry %q (want class=duration)", tok)
		}
		c, err := strconv.Atoi(strings.TrimSpace(cls))
		if err != nil || c < 0 {
			log.Fatalf("bad -lifetime-class class %q", cls)
		}
		d, err := time.ParseDuration(strings.TrimSpace(dur))
		if err != nil || d <= 0 {
			log.Fatalf("bad -lifetime-class duration %q", dur)
		}
		out[c] = d
	}
	return out
}

func parseInts(s, what string, min int) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < min {
			log.Fatalf("bad %s %q", what, tok)
		}
		out = append(out, v)
	}
	return out
}
