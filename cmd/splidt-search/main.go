// Command splidt-search runs SpliDT's Bayesian-optimisation design search
// on a builtin dataset and prints the (F1, #flows) Pareto frontier.
//
// Usage:
//
//	splidt-search -dataset 3 -iters 16 -parallel 8
package main

import (
	"flag"
	"fmt"
	"log"

	"splidt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-search: ")

	var (
		dataset  = flag.Int("dataset", 2, "dataset number (1-7)")
		nFlows   = flag.Int("flows", 0, "generated flows (0 = default)")
		iters    = flag.Int("iters", 16, "BO iterations")
		parallel = flag.Int("parallel", 8, "parallel evaluations per iteration")
		seed     = flag.Int64("seed", 1, "search seed")
		maxDepth = flag.Int("max-depth", 30, "max tree depth")
		maxK     = flag.Int("max-k", 7, "max features per subtree")
		maxParts = flag.Int("max-partitions", 7, "max partitions")
	)
	flag.Parse()

	env := splidt.NewEnv(splidt.Dataset(*dataset), *nFlows)
	env.BOIterations = *iters
	env.BOParallel = *parallel
	env.Seed = *seed

	space := splidt.DefaultSearchSpace()
	space.MaxDepth = *maxDepth
	space.MaxK = *maxK
	space.MaxPartitions = *maxParts

	res := splidt.DesignSearch(env, space)

	fmt.Printf("dataset %v: %d configurations evaluated\n", env.Dataset, len(res.Evaluations))
	fmt.Println("\nPareto frontier (F1 vs max supported flows):")
	fmt.Printf("%-10s %-6s %-6s %-14s %s\n", "#Flows", "F1", "k", "Depth", "Partitions")
	for _, e := range res.Pareto {
		fmt.Printf("%-10d %-6.3f %-6d %-14d %v\n",
			e.Flows, e.F1, e.Point.K, e.Point.Depth, e.Point.Partitions)
	}
	fmt.Println("\nConvergence (best feasible F1 per iteration):")
	for i, v := range res.BestByIteration {
		fmt.Printf("  iter %-3d %.3f\n", i+1, v)
	}
}
