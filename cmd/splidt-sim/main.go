// Command splidt-sim trains a partitioned tree, deploys it on the simulated
// RMT pipeline, replays held-out traffic, and reports classification and
// data-plane statistics (digests, recirculations, collisions, TTD).
//
// Usage:
//
//	splidt-sim -dataset 3 -flows 800 -partitions 3,2,2 -k 4
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"splidt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-sim: ")

	var (
		dataset    = flag.Int("dataset", 3, "dataset number (1-7)")
		nFlows     = flag.Int("flows", 800, "generated flows (train+test)")
		partitions = flag.String("partitions", "3,2,2", "comma-separated partition depths")
		k          = flag.Int("k", 4, "features per subtree")
		seed       = flag.Int64("seed", 1, "generation seed")
		slots      = flag.Int("slots", 1<<18, "flow register slots")
		spacingMS  = flag.Int("spacing-ms", 1, "flow start spacing (ms)")
	)
	flag.Parse()

	parts := parseParts(*partitions)
	id := splidt.Dataset(*dataset)
	classes := splidt.NumClasses(id)

	flows := splidt.Generate(id, *nFlows, *seed)
	samples := splidt.BuildSamples(flows, len(parts))
	train, _ := splidt.Split(samples, 0.7)

	m, err := splidt.Train(train, splidt.Config{
		Partitions: parts, FeaturesPerSubtree: *k, NumClasses: classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := splidt.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := splidt.Deploy(splidt.DeployConfig{
		Profile: splidt.Tofino1(), Model: m, Compiled: c,
		FlowSlots: *slots, Workload: splidt.Webserver,
	})
	if err != nil {
		log.Fatal(err)
	}

	cut := int(float64(*nFlows) * 0.7)
	testFlows := flows[cut:]
	results := pl.Replay(testFlows, time.Duration(*spacingMS)*time.Millisecond)

	conf := splidt.NewConfusion(classes)
	var ttd []float64
	for _, r := range results {
		conf.Add(r.Label, r.Digest.Class)
		ttd = append(ttd, float64(r.Digest.TTD())/float64(time.Millisecond))
	}
	sort.Float64s(ttd)
	stats := pl.Stats()

	fmt.Printf("model          %v\n", m)
	fmt.Printf("replayed       %d flows, %d packets\n", len(testFlows), stats.Packets)
	fmt.Printf("digests        %d\n", stats.Digests)
	fmt.Printf("recirculations %d control packets (%d bytes)\n", stats.ControlPackets, stats.RecircBytes)
	fmt.Printf("collisions     %d\n", stats.Collisions)
	fmt.Printf("accuracy       %.3f   macro-F1 %.3f\n", conf.Accuracy(), conf.MacroF1())
	if len(ttd) > 0 {
		q := func(p float64) float64 { return ttd[int(p*float64(len(ttd)-1))] }
		fmt.Printf("TTD (ms)       p50 %.1f   p90 %.1f   p99 %.1f\n", q(0.5), q(0.9), q(0.99))
	}
}

func parseParts(s string) []int {
	var parts []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			log.Fatalf("bad partition depth %q", tok)
		}
		parts = append(parts, v)
	}
	return parts
}
