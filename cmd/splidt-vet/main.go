// Command splidt-vet runs the repo's custom static-analysis suite
// (internal/analysis): hotpath, wallclock, statsmerge and atomicmix.
//
// It is a standalone driver rather than a `go vet -vettool` plugin because
// the build environment has no golang.org/x/tools (offline); the analyzers
// themselves are go/analysis-shaped, so porting is mechanical. Run it from
// the module root:
//
//	go run ./cmd/splidt-vet ./...
//
// Exit status is 1 if any analyzer reports a finding, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"splidt/internal/analysis"
)

func main() {
	list := flag.Bool("annotated", false, "list //splidt:hotpath functions and exit")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *list {
		world, err := analysis.ParseAnnotated()
		if err != nil {
			fmt.Fprintln(os.Stderr, "splidt-vet:", err)
			os.Exit(2)
		}
		for _, id := range world.FuncIDs() {
			fmt.Println(id)
		}
		return
	}

	fset, pkgs, world, err := analysis.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splidt-vet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	for _, a := range analysis.Analyzers() {
		for _, pkg := range pkgs {
			analysis.RunPackage(a, fset, pkg, world, &diags)
		}
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "splidt-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
