// Command splidt-train trains one partitioned decision tree on a builtin
// synthetic dataset and reports its accuracy and data-plane footprint.
//
// Usage:
//
//	splidt-train -dataset 2 -flows 600 -partitions 2,2,2 -k 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"splidt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splidt-train: ")

	var (
		dataset    = flag.Int("dataset", 2, "dataset number (1-7)")
		nFlows     = flag.Int("flows", 600, "generated flows (train+test)")
		partitions = flag.String("partitions", "2,2,2", "comma-separated partition depths")
		k          = flag.Int("k", 4, "features per subtree")
		seed       = flag.Int64("seed", 1, "generation seed")
		quantize   = flag.Int("quantize", 0, "feature bit precision (0 = 32-bit)")
		verbose    = flag.Bool("v", false, "print per-subtree details")
	)
	flag.Parse()

	parts, err := parseParts(*partitions)
	if err != nil {
		log.Fatal(err)
	}
	id := splidt.Dataset(*dataset)
	classes := splidt.NumClasses(id)

	flows := splidt.Generate(id, *nFlows, *seed)
	samples := splidt.BuildSamples(flows, len(parts))
	train, test := splidt.Split(samples, 0.7)

	m, err := splidt.Train(train, splidt.Config{
		Partitions:         parts,
		FeaturesPerSubtree: *k,
		NumClasses:         classes,
		QuantizeBits:       *quantize,
	})
	if err != nil {
		log.Fatal(err)
	}

	actual := make([]int, len(test))
	pred := make([]int, len(test))
	for i, s := range test {
		actual[i] = s.Label
		pred[i] = m.Classify(s.Windows)
	}
	f1 := splidt.MacroF1(actual, pred, classes)

	c, err := splidt.Compile(m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset      %v (%d classes, %d flows)\n", id, classes, *nFlows)
	fmt.Printf("model        %v\n", m)
	fmt.Printf("test F1      %.3f\n", f1)
	fmt.Printf("TCAM         %d entries, %d bits (model key %d bits)\n",
		c.Entries(), c.Bits(), c.ModelKeyBits())
	if *verbose {
		for _, st := range m.Subtrees {
			fmt.Printf("subtree %-3d partition %d  depth %-2d  features %v\n",
				st.SID, st.Partition, st.Tree.Depth(), st.Features())
		}
	}
}

func parseParts(s string) ([]int, error) {
	var parts []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad partition depth %q", tok)
		}
		parts = append(parts, v)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("no partitions")
	}
	return parts, nil
}
