// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding experiment driver end-to-end
// on a reproduction-scale environment and reports the headline metrics
// through testing.B metrics, so `go test -bench=.` both regenerates the
// artifacts and records their values. The per-experiment index is in
// DESIGN.md; recorded paper-vs-measured outcomes are in EXPERIMENTS.md.
package splidt

import (
	"context"
	"sync"
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/experiments"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/timerwheel"
	"splidt/internal/trace"
)

// benchEnv builds a benchmark-scale environment: large enough for stable
// F1s, small enough that the full suite completes in minutes.
func benchEnv(id trace.DatasetID) *experiments.Env {
	env := experiments.NewEnv(id, 300)
	env.BOIterations = 5
	env.BOParallel = 4
	return env
}

// BenchmarkFigure2 regenerates Figure 2 (SpliDT vs top-k vs ideal, D1–3
// representative dataset D2): F1 across flow targets.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(benchEnv(trace.D2))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpliDT[0].F1, "splidt-F1@100K")
		b.ReportMetric(r.TopK[0].F1, "topk-F1@100K")
		b.ReportMetric(r.IdealF1, "ideal-F1")
		b.ReportMetric(r.PerPacketF1, "perpacket-F1")
	}
}

// BenchmarkTable1 regenerates Table 1 (feature density per
// partition/subtree; recirculation bandwidth WS/HD).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchEnv(trace.D1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PerSubtreeMean, "subtree-density-%")
		b.ReportMetric(r.PerPartitionMean, "partition-density-%")
		b.ReportMetric(r.WSMean, "WS-Mbps")
		b.ReportMetric(r.HDMean, "HD-Mbps")
	}
}

// BenchmarkFigure6 regenerates Figure 6 / Table 3 (Pareto frontier and
// resource usage, representative dataset D3).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6Table3(benchEnv(trace.D3))
		if err != nil {
			b.Fatal(err)
		}
		sp, _ := r.SpliDTRow(1_000_000)
		nb, _ := r.RowOf("NB", 1_000_000)
		leo, _ := r.RowOf("Leo", 1_000_000)
		b.ReportMetric(sp.F1, "splidt-F1@1M")
		b.ReportMetric(nb.F1, "NB-F1@1M")
		b.ReportMetric(leo.F1, "Leo-F1@1M")
		b.ReportMetric(float64(sp.Features), "splidt-features@1M")
	}
}

// BenchmarkTable3 regenerates Table 3's 100K row explicitly (feature
// scaling at the resource-rich end).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6Table3(benchEnv(trace.D6))
		if err != nil {
			b.Fatal(err)
		}
		sp, _ := r.SpliDTRow(100_000)
		nb, _ := r.RowOf("NB", 100_000)
		b.ReportMetric(sp.F1, "splidt-F1@100K")
		b.ReportMetric(float64(sp.Features), "splidt-features")
		b.ReportMetric(float64(nb.Features), "NB-topk")
		b.ReportMetric(float64(sp.TCAMEntries), "splidt-entries")
		b.ReportMetric(float64(sp.RegisterBits), "splidt-regbits")
	}
}

// BenchmarkFigure7 regenerates Figure 7 (BO convergence).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(benchEnv(trace.D2))
		it, final := r.ConvergedAt(0.005)
		b.ReportMetric(float64(it), "iters-to-peak")
		b.ReportMetric(final, "peak-F1")
	}
}

// BenchmarkTable4 regenerates Table 4 (per-iteration framework stage times).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(benchEnv(trace.D2))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Training.Seconds()*1e3, "train-ms")
		b.ReportMetric(r.Rulegen.Seconds()*1e3, "rulegen-ms")
		b.ReportMetric(r.Backend.Seconds()*1e6, "backend-us")
		b.ReportMetric(r.Total().Seconds()*1e3, "total-ms")
	}
}

// BenchmarkTable5 regenerates Table 5 (max recirculation bandwidth).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(benchEnv(trace.D2))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxMbps(), "max-Mbps")
	}
}

// BenchmarkFigure8Depth regenerates Figure 8a (fixed tree depth sweep).
func BenchmarkFigure8Depth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchEnv(trace.D2), "depth", []int{10, 20, 30})
		if err != nil {
			b.Fatal(err)
		}
		f10, _ := r.At(10, 100_000)
		f30, _ := r.At(30, 100_000)
		b.ReportMetric(f10, "F1-depth10@100K")
		b.ReportMetric(f30, "F1-depth30@100K")
	}
}

// BenchmarkFigure8Partitions regenerates Figure 8b (fixed partition-count
// sweep).
func BenchmarkFigure8Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchEnv(trace.D2), "partitions", []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		f1p, _ := r.At(1, 100_000)
		f5p, _ := r.At(5, 100_000)
		b.ReportMetric(f1p, "F1-1part@100K")
		b.ReportMetric(f5p, "F1-5part@100K")
	}
}

// BenchmarkFigure8Features regenerates Figure 8c (fixed features-per-subtree
// sweep).
func BenchmarkFigure8Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchEnv(trace.D2), "features", []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		f1k, _ := r.At(1, 100_000)
		f3k, _ := r.At(3, 100_000)
		b.ReportMetric(f1k, "F1-k1@100K")
		b.ReportMetric(f3k, "F1-k3@100K")
	}
}

// BenchmarkFigure9 regenerates Figure 9 (F1 vs TCAM entries).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchEnv(trace.D2))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.BestUnder(r.SpliDT, 1000), "splidt-F1@1k-entries")
		b.ReportMetric(experiments.BestUnder(r.NB, 1000), "NB-F1@1k-entries")
	}
}

// BenchmarkFigure10 regenerates Figure 10 (time-to-detection ECDF, D3,
// Hadoop environment).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchEnv(trace.D3), trace.Hadoop)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Curves[0].Quantile(0.5), "splidt-p50-ms")
		b.ReportMetric(r.Curves[1].Quantile(0.5), "NB-p50-ms")
		b.ReportMetric(r.Curves[2].Quantile(0.5), "Leo-p50-ms")
		b.ReportMetric(r.Curves[0].F1, "splidt-F1")
	}
}

// BenchmarkFigure11 regenerates Figure 11 (register bits vs #features).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(50, []int{1, 2, 3, 4})
		spl4 := r.Series[3] // SpliDT:4
		nb := r.Series[4]   // NB/Leo
		b.ReportMetric(float64(spl4.Bits[49]), "splidt4-bits@50feat")
		b.ReportMetric(float64(nb.Bits[49]), "NB-bits@50feat")
	}
}

// BenchmarkFigure12 regenerates Figure 12 (Pareto vs bit precision, D3).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(trace.D3)
		env.BOIterations = 4
		r, err := experiments.Figure12(env, []int{32, 16, 8})
		if err != nil {
			b.Fatal(err)
		}
		f32, _ := r.BestAt(32, 100_000)
		f16, _ := r.BestAt(16, 100_000)
		f8, _ := r.BestAt(8, 100_000)
		b.ReportMetric(f32, "F1-32bit@100K")
		b.ReportMetric(f16, "F1-16bit@100K")
		b.ReportMetric(f8, "F1-8bit@100K")
	}
}

// BenchmarkRangeMarkAblation compares range-marking rule counts against the
// naive per-leaf prefix cross-product — the design choice that avoids rule
// explosion (DESIGN.md ablation).
func BenchmarkRangeMarkAblation(b *testing.B) {
	flows := trace.Generate(trace.D3, 400, 11)
	samples := trace.BuildSamples(flows, 2)
	m, err := core.Train(samples, core.Config{
		Partitions: []int{4, 3}, FeaturesPerSubtree: 4, NumClasses: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := rangemark.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		naive := rangemark.NaiveEntries(m)
		b.ReportMetric(float64(c.Entries()), "rangemark-entries")
		b.ReportMetric(float64(naive), "naive-entries")
		b.ReportMetric(float64(naive)/float64(len(c.ModelRules())), "model-rule-blowup")
	}
}

// BenchmarkAdaptiveWindows ablates the §6 extension: uniform windows versus
// front-loaded boundaries (first subtree sees the first 15% of a flow) on
// the IDS-style dataset with early temporal signatures.
func BenchmarkAdaptiveWindows(b *testing.B) {
	flows := trace.Generate(trace.D6, 600, 3)
	bounds := pkt.Bounds{0.15, 0.5, 1}
	uniform := trace.BuildSamples(flows, 3)
	adaptive := trace.BuildSamplesBounds(flows, bounds)
	utr, ute := trace.Split(uniform, 0.7)
	atr, ate := trace.Split(adaptive, 0.7)
	score := func(m *core.Model, test []trace.Sample) float64 {
		actual := make([]int, len(test))
		pred := make([]int, len(test))
		for i, s := range test {
			actual[i] = s.Label
			pred[i] = m.Classify(s.Windows)
		}
		return metrics.MacroF1Of(actual, pred, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu, err := core.Train(utr, core.Config{
			Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		ma, err := core.Train(atr, core.Config{
			Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 10,
			WindowBounds: bounds,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(score(mu, ute), "F1-uniform")
		b.ReportMetric(score(ma, ate), "F1-frontloaded")
	}
}

// engineBenchState builds the engine benchmark fixture once: a trained and
// compiled deployment plus a pre-materialised packet sequence, so the
// measured path is pure dispatch + pipeline execution (generation cost
// would otherwise serialise on the dispatcher and mask shard scaling).
var engineBenchState struct {
	once sync.Once
	cfg  dataplane.Config
	pkts []pkt.Packet
}

func engineBenchFixture(b *testing.B) (dataplane.Config, []pkt.Packet) {
	st := &engineBenchState
	st.once.Do(func() {
		flows := trace.Generate(trace.D3, 400, 33)
		samples := trace.BuildSamples(flows, 3)
		train, _ := trace.Split(samples, 0.7)
		m, err := core.Train(train, core.Config{
			Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13,
		})
		if err != nil {
			b.Fatal(err)
		}
		c, err := rangemark.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		st.cfg = dataplane.Config{
			Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 1 << 18,
		}
		st.pkts = trace.Interleave(trace.Generate(trace.D3, 3000, 7), 100*time.Microsecond)
	})
	return st.cfg, st.pkts
}

// benchmarkEngineShards measures end-to-end engine throughput at a fixed
// shard count over the same workload, reporting pkts/sec — the scaling
// trajectory future PRs regress against.
func benchmarkEngineShards(b *testing.B, shards int) {
	cfg, pkts := engineBenchFixture(b)
	e, err := engine.New(engine.Config{Deploy: cfg, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(&engine.SliceSource{Pkts: pkts})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != len(pkts) {
			b.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
		}
		rate += res.Throughput.PktsPerSec()
	}
	b.ReportMetric(rate/float64(b.N), "pkts/s")
	b.ReportMetric(float64(shards), "shards")
}

func BenchmarkEngineShards1(b *testing.B) { benchmarkEngineShards(b, 1) }
func BenchmarkEngineShards2(b *testing.B) { benchmarkEngineShards(b, 2) }
func BenchmarkEngineShards4(b *testing.B) { benchmarkEngineShards(b, 4) }
func BenchmarkEngineShards8(b *testing.B) { benchmarkEngineShards(b, 8) }

// benchmarkEngineRecorder measures the flight recorder's hot-path cost:
// the same 4-shard workload with the per-shard event rings enabled
// (default depth) vs disabled. The acceptance bar is a ≤2% pkts/s delta —
// the recorder is a handful of uncontended atomics per burst, not a
// per-packet tax.
func benchmarkEngineRecorder(b *testing.B, recorder int) {
	cfg, pkts := engineBenchFixture(b)
	e, err := engine.New(engine.Config{Deploy: cfg, Shards: 4, FlightRecorder: recorder})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(&engine.SliceSource{Pkts: pkts})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != len(pkts) {
			b.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
		}
		rate += res.Throughput.PktsPerSec()
	}
	b.ReportMetric(rate/float64(b.N), "pkts/s")
}

func BenchmarkEngineRecorderOn(b *testing.B)  { benchmarkEngineRecorder(b, 0) }
func BenchmarkEngineRecorderOff(b *testing.B) { benchmarkEngineRecorder(b, -1) }

// benchmarkParallelFeed measures end-to-end pkts/s with M concurrent
// feeders driving one 4-shard session over a flow-disjoint partition of the
// workload (trace.Partition) — the dispatch-side scaling the MPSC shard
// rings and per-feeder staging exist for. Feeder count 1 degenerates to the
// BenchmarkSessionFeed shape, so the two trajectories compare directly.
// Note: on a single-CPU runner (GOMAXPROCS=1) all feeder counts report
// roughly flat pkts/s; the scaling shows on multicore hardware.
func benchmarkParallelFeed(b *testing.B, feeders int) {
	cfg, pkts := engineBenchFixture(b)
	e, err := engine.New(engine.Config{Deploy: cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	parts := trace.Partition(pkts, feeders)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		s, err := e.Start(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, part := range parts {
			f, err := s.NewFeeder()
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(part []pkt.Packet) {
				defer wg.Done()
				if err := f.FeedAll(part); err != nil {
					b.Error(err)
				}
				f.Close()
			}(part)
		}
		wg.Wait()
		res, err := s.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != len(pkts) {
			b.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
		}
		rate += res.Throughput.PktsPerSec()
	}
	b.ReportMetric(rate/float64(b.N), "pkts/s")
	b.ReportMetric(float64(feeders), "feeders")
}

func BenchmarkParallelFeed1(b *testing.B) { benchmarkParallelFeed(b, 1) }
func BenchmarkParallelFeed2(b *testing.B) { benchmarkParallelFeed(b, 2) }
func BenchmarkParallelFeed4(b *testing.B) { benchmarkParallelFeed(b, 4) }

// benchmarkEngineHighLoad measures end-to-end engine throughput with the
// flow table under real pressure: the register budget is cut to 4Ki slots
// for the 3000-flow workload, a load factor where the direct scheme couples
// flows (collisions reported as a metric) and the cuckoo scheme pays for
// displacement and verification. Comparing the two trajectories prices the
// exactness the associative scheme buys.
func benchmarkEngineHighLoad(b *testing.B, scheme dataplane.TableScheme) {
	cfg, pkts := engineBenchFixture(b)
	cfg.FlowSlots = 1 << 12
	cfg.Table = scheme
	e, err := engine.New(engine.Config{Deploy: cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate, collisions float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(&engine.SliceSource{Pkts: pkts})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != len(pkts) {
			b.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
		}
		rate += res.Throughput.PktsPerSec()
		collisions += float64(res.Stats.Collisions)
	}
	b.ReportMetric(rate/float64(b.N), "pkts/s")
	b.ReportMetric(collisions/float64(b.N), "collisions/op")
}

func BenchmarkEngineHighLoadDirect(b *testing.B) { benchmarkEngineHighLoad(b, dataplane.TableDirect) }
func BenchmarkEngineHighLoadCuckoo(b *testing.B) { benchmarkEngineHighLoad(b, dataplane.TableCuckoo) }

// BenchmarkSweep measures one flow-table ageing sweep call — the bounded
// stripe walk a shard worker pays per burst. The array is populated with
// parked-dead flow state first, so the measured path covers both the scan
// and the reclaim; it must stay allocation-free.
func BenchmarkSweep(b *testing.B) {
	cfg, pkts := engineBenchFixture(b)
	cfg.FlowSlots = 1 << 16
	cfg.IdleTimeout = time.Millisecond
	cfg.SweepStripe = 128
	pl, err := dataplane.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pkts {
		pl.Process(p)
	}
	occupied := pl.ActiveFlows()
	now := pl.Clock() + time.Second // everything idle past the timeout
	b.ReportAllocs()
	b.ResetTimer()
	evicted := 0
	for i := 0; i < b.N; i++ {
		evicted += pl.Sweep(now)
	}
	b.StopTimer()
	b.ReportMetric(float64(cfg.SweepStripe), "slots/op")
	if b.N >= (cfg.FlowSlots+cfg.SweepStripe-1)/cfg.SweepStripe && evicted < occupied {
		b.Fatalf("full sweep coverage reclaimed %d of %d occupied slots", evicted, occupied)
	}
}

// BenchmarkWheelAdvance measures the timer-wheel hot path a shard worker
// pays under wheel expiry: re-arming a working set of timers and advancing
// the wheel across their deadlines. Every op schedules 1024 timers over a
// 512-tick window and advances through it, so the measured cost covers
// placement, cascading, and firing; the whole path must stay
// allocation-free (0 allocs/op).
func BenchmarkWheelAdvance(b *testing.B) {
	const timers = 1024
	expired := 0
	w := timerwheel.New(timerwheel.Config{OnExpire: func(*timerwheel.Node) { expired++ }})
	nodes := make([]timerwheel.Node, timers)
	b.ReportAllocs()
	b.ResetTimer()
	var now time.Duration
	for i := 0; i < b.N; i++ {
		for j := range nodes {
			w.Schedule(&nodes[j], now+time.Duration(1+j%512)*timerwheel.DefaultTick)
		}
		now += 512 * timerwheel.DefaultTick
		w.Advance(now)
	}
	b.StopTimer()
	if expired != timers*b.N {
		b.Fatalf("fired %d timers, want %d", expired, timers*b.N)
	}
	b.ReportMetric(timers, "timers/op")
}

// engineChurnState holds the heavy-tailed churn workload, generated once.
var engineChurnState struct {
	once sync.Once
	pkts []pkt.Packet
}

// engineChurnFixture builds the expiry-churn deployment: the engine
// benchmark model over a heavy-tailed workload (30% keepalive flows with
// 0.6–2s gaps) on a cuckoo table squeezed to 4Ki cells, with a 100ms idle
// timeout. Keepalives hold entries across long gaps while chatty flows
// churn through, so the expiry engine — striped sweep or timer wheel — is
// continuously reclaiming under load.
func engineChurnFixture(b *testing.B) (dataplane.Config, []pkt.Packet) {
	cfg, _ := engineBenchFixture(b)
	st := &engineChurnState
	st.once.Do(func() {
		flows := trace.GenerateWith(trace.D3, 3000, 7, trace.GenConfig{LongIATFraction: 0.3})
		st.pkts = trace.Interleave(flows, 100*time.Microsecond)
	})
	cfg.FlowSlots = 1 << 12
	cfg.Table = dataplane.TableCuckoo
	cfg.IdleTimeout = 100 * time.Millisecond
	cfg.SweepStripe = 1 << 12 // full pass per burst: match the wheel's exact reclaim
	return cfg, st.pkts
}

// benchmarkEngineChurn measures end-to-end engine throughput with flow-table
// churn under the given expiry scheme, reporting pkts/s and the reclaim
// volume. The two trajectories must stay within a few percent of each
// other: the wheel's O(expired) advances buy exact per-entry deadlines
// without costing burst throughput against the amortised striped sweep.
func benchmarkEngineChurn(b *testing.B, expiry dataplane.ExpiryScheme) {
	cfg, pkts := engineChurnFixture(b)
	cfg.Expiry = expiry
	e, err := engine.New(engine.Config{Deploy: cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate, evictions float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(&engine.SliceSource{Pkts: pkts})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != len(pkts) {
			b.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
		}
		rate += res.Throughput.PktsPerSec()
		evictions += float64(res.Stats.Evictions)
	}
	b.ReportMetric(rate/float64(b.N), "pkts/s")
	b.ReportMetric(evictions/float64(b.N), "evictions/op")
}

func BenchmarkEngineChurnSweep(b *testing.B) { benchmarkEngineChurn(b, dataplane.ExpirySweep) }
func BenchmarkEngineChurnWheel(b *testing.B) { benchmarkEngineChurn(b, dataplane.ExpiryWheel) }

// BenchmarkSessionFeed measures the streaming path end to end — Start, a
// Feed loop spinning through backpressure, Close — over the same workload
// as the shard benchmarks, so batch (Run) and streaming numbers compare
// directly.
func BenchmarkSessionFeed(b *testing.B) {
	cfg, pkts := engineBenchFixture(b)
	e, err := engine.New(engine.Config{Deploy: cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		s, err := e.Start(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if err := s.FeedAll(pkts); err != nil {
			b.Fatal(err)
		}
		res, err := s.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != len(pkts) {
			b.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
		}
		rate += res.Throughput.PktsPerSec()
	}
	b.ReportMetric(rate/float64(b.N), "pkts/s")
}
