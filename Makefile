GO ?= go

.PHONY: all build vet test race bench bench-engine ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full evaluation-regeneration benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Engine scaling smoke: pkts/sec at 1/2/4/8 shards.
bench-engine:
	$(GO) test -run xxx -bench Engine -benchtime 1x .

ci: build vet race bench-engine
