GO ?= go

.PHONY: all build vet test race bench bench-engine bench-json examples ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full evaluation-regeneration benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Engine scaling smoke: pkts/sec at 1/2/4/8 shards, the streaming session
# Feed path, parallel dispatch at 1/2/4 feeders, the flow-table ageing
# sweep stripe, the timer-wheel advance hot path, the sweep-vs-wheel
# expiry churn trajectory, the high-load-factor direct-vs-cuckoo
# trajectory, and the flow-table store micro-benchmarks (lookup/insert
# per scheme).
bench-engine:
	$(GO) test -run xxx -bench 'EngineShards|SessionFeed|ParallelFeed|Sweep|EngineHighLoad|WheelAdvance|EngineChurn' -benchtime 1x .
	$(GO) test -run xxx -bench FlowTable -benchtime 1000x ./internal/flowtable

# Engine benchmark trajectory, recorded: the same suite with enough
# repetitions for benchstat, written to BENCH_engine.json in the standard
# Go benchmark text format (what benchstat consumes — compare two commits
# with `benchstat old.json new.json`). Redirect, don't tee: a failing
# benchmark must fail the target, not vanish behind the pipe's status. The
# flow-table micro-benchmarks append with an iteration-count benchtime of
# their own (2 iterations would be noise at nanosecond scale).
bench-json:
	$(GO) test -run xxx -bench 'EngineShards|SessionFeed|ParallelFeed|Sweep|EngineHighLoad|WheelAdvance|EngineChurn' \
		-benchtime 2x -count 3 . > BENCH_engine.json
	$(GO) test -run xxx -bench FlowTable -benchtime 50000x -count 3 \
		./internal/flowtable >> BENCH_engine.json
	@cat BENCH_engine.json

# Build every example (livecontrol included) — they are the API's
# executable documentation and must never rot.
examples:
	$(GO) build ./examples/...

ci: build vet race bench-engine examples
