GO ?= go

.PHONY: all build vet test race bench bench-engine examples ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full evaluation-regeneration benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Engine scaling smoke: pkts/sec at 1/2/4/8 shards, the streaming session
# Feed path, and the flow-table ageing sweep stripe.
bench-engine:
	$(GO) test -run xxx -bench 'EngineShards|SessionFeed|Sweep' -benchtime 1x .

# Build every example (livecontrol included) — they are the API's
# executable documentation and must never rot.
examples:
	$(GO) build ./examples/...

ci: build vet race bench-engine examples
