GO ?= go

.PHONY: all build vet test race bench bench-engine bench-json examples ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full evaluation-regeneration benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Engine scaling smoke: pkts/sec at 1/2/4/8 shards, the streaming session
# Feed path, parallel dispatch at 1/2/4 feeders, and the flow-table ageing
# sweep stripe.
bench-engine:
	$(GO) test -run xxx -bench 'EngineShards|SessionFeed|ParallelFeed|Sweep' -benchtime 1x .

# Engine benchmark trajectory, recorded: the same suite with enough
# repetitions for benchstat, written to BENCH_engine.json in the standard
# Go benchmark text format (what benchstat consumes — compare two commits
# with `benchstat old.json new.json`). Redirect, don't tee: a failing
# benchmark must fail the target, not vanish behind the pipe's status.
bench-json:
	$(GO) test -run xxx -bench 'EngineShards|SessionFeed|ParallelFeed|Sweep' \
		-benchtime 2x -count 3 . > BENCH_engine.json
	@cat BENCH_engine.json

# Build every example (livecontrol included) — they are the API's
# executable documentation and must never rot.
examples:
	$(GO) build ./examples/...

ci: build vet race bench-engine examples
