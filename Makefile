GO ?= go

.PHONY: all build vet staticcheck fuzz-smoke test race bench bench-engine bench-json bench-1m loadgen-smoke chaos-smoke telemetry-smoke examples ci

all: build vet test

build:
	$(GO) build ./...

# vet runs the stock toolchain vet plus splidt-vet, the repo's own
# go/analysis suite: hotpath (zero-alloc/lock-free transitivity),
# wallclock (no wall-clock or global rand in packet-time code),
# statsmerge (counter-struct field exhaustiveness), atomicmix
# (atomic/plain access mixing). See README "Static analysis".
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/splidt-vet ./...

# staticcheck is optional locally (the offline container doesn't carry
# it); CI installs a pinned version and fails on findings. Config in
# staticcheck.conf.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# 10-second smoke of every seeded fuzzer: wire-format decode, record
# streams, and TCAM range expansion. Catches corpus regressions without
# the cost of a real fuzzing campaign.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzUnmarshal$$' -fuzztime 10s ./internal/pkt
	$(GO) test -run xxx -fuzz 'FuzzUnmarshalControl$$' -fuzztime 10s ./internal/pkt
	$(GO) test -run xxx -fuzz 'FuzzRecordStream$$' -fuzztime 10s ./internal/pkt
	$(GO) test -run xxx -fuzz 'FuzzExpandRange$$' -fuzztime 10s ./internal/tcam

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full evaluation-regeneration benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Engine scaling smoke: pkts/sec at 1/2/4/8 shards, the streaming session
# Feed path, parallel dispatch at 1/2/4 feeders, the flow-table ageing
# sweep stripe, the timer-wheel advance hot path, the sweep-vs-wheel
# expiry churn trajectory, the high-load-factor direct-vs-cuckoo
# trajectory, and the flow-table store micro-benchmarks (lookup/insert
# per scheme).
bench-engine:
	$(GO) test -run xxx -bench 'EngineShards|EngineRecorder|SessionFeed|ParallelFeed|Sweep|EngineHighLoad|WheelAdvance|EngineChurn' -benchtime 1x .
	$(GO) test -run xxx -bench FlowTable -benchtime 1000x ./internal/flowtable
	$(GO) test -run xxx -bench 'ChurnNext|WireNext|HarnessSteady' -benchtime 100000x ./internal/loadgen

# Engine benchmark trajectory, recorded: the same suite with enough
# repetitions for benchstat, written to BENCH_engine.json in the standard
# Go benchmark text format (what benchstat consumes — compare two commits
# with `benchstat old.json new.json`). Redirect, don't tee: a failing
# benchmark must fail the target, not vanish behind the pipe's status. The
# flow-table micro-benchmarks append with an iteration-count benchtime of
# their own (2 iterations would be noise at nanosecond scale).
bench-json:
	$(GO) test -run xxx -bench 'EngineShards|EngineRecorder|SessionFeed|ParallelFeed|Sweep|EngineHighLoad|WheelAdvance|EngineChurn' \
		-benchtime 2x -count 3 . > BENCH_engine.json
	$(GO) test -run xxx -bench FlowTable -benchtime 50000x -count 3 \
		./internal/flowtable >> BENCH_engine.json
	$(GO) test -run xxx -bench 'ChurnNext|WireNext|HarnessSteady' -benchtime 200000x -count 3 \
		./internal/loadgen >> BENCH_engine.json
	@cat BENCH_engine.json

# Million-flow scale run, appended to the benchmark trajectory: a 1.2M-flow
# churning population over a 2^21-slot cuckoo deployment (8 shards), driven
# through steady / collision-storm / block-storm phases. Slow (~30s) and
# memory-hungry, so not part of bench-json; run it when the numbers matter.
bench-1m:
	SPLIDT_LOADGEN_1M=1 $(GO) test -run MillionFlowValidation -timeout 30m -v \
		./internal/loadgen | grep '^Benchmark' >> BENCH_engine.json
	@tail -4 BENCH_engine.json

# Load-harness smoke: a 100K-flow churning population through all phase
# types — steady, collision storm, block storm — under the race detector,
# exercising the whole stack CLI-first (generator, feeders, engine, report).
loadgen-smoke:
	$(GO) run -race ./cmd/splidt-loadgen -flows 100000 -feeders 2 -shards 2 \
		-slots 262144 -collision-groups 32 \
		-phases "steady:200k storm:150k:coll=0.8 blockstorm:150k:block=500"

# Chaos smoke under the race detector: the faultinject plan unit tests,
# then the engine's seeded fault suite — schedule equivalence under
# non-lossy fault plans at 1 and 4 shards over both flow-table schemes,
# single-shard quarantine containment, deadline-bounded shutdown against a
# stuck worker, and mid-run hitless redeploy with flow-state carry. All
# deterministic in their seeds, so a failure reproduces from the test name.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/faultinject
	$(GO) test -race -count=1 -run 'TestChaos|TestQuarantine|TestShutdownDeadline|TestRedeploy|TestHarnessRedeploy' \
		./internal/engine ./internal/loadgen

# Telemetry-plane smoke: a live loadgen run with -telemetry bound, then
# curl-and-grep assertions over /healthz and /metrics — family presence,
# per-shard samples, and exposition-format parseability. promtool-free.
telemetry-smoke:
	bash scripts/telemetry-smoke.sh

# Build every example (livecontrol included) — they are the API's
# executable documentation and must never rot.
examples:
	$(GO) build ./examples/...

ci: build vet staticcheck race loadgen-smoke chaos-smoke telemetry-smoke bench-engine examples
