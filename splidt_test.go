package splidt

import (
	"context"
	"testing"
	"time"
)

// TestEndToEnd exercises the full public path: generate → window → train →
// compile → deploy → replay → score.
func TestEndToEnd(t *testing.T) {
	flows := Generate(D2, 300, 7)
	samples := BuildSamples(flows, 3)
	train, test := Split(samples, 0.7)

	m, err := Train(train, Config{
		Partitions:         []int{2, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         NumClasses(D2),
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	actual := make([]int, len(test))
	pred := make([]int, len(test))
	for i, s := range test {
		actual[i] = s.Label
		pred[i] = m.Classify(s.Windows)
	}
	if f1 := MacroF1(actual, pred, NumClasses(D2)); f1 < 0.5 {
		t.Fatalf("software F1 %.3f too low", f1)
	}

	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pl, err := Deploy(DeployConfig{
		Profile: Tofino1(), Model: m, Compiled: c,
		FlowSlots: 1 << 16, Workload: Webserver,
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	testFlows := flows[210:]
	results := pl.Replay(testFlows, time.Millisecond)
	if len(results) != len(testFlows) {
		t.Fatalf("%d digests for %d flows", len(results), len(testFlows))
	}
	conf := NewConfusion(NumClasses(D2))
	for _, r := range results {
		conf.Add(r.Label, r.Digest.Class)
	}
	if f1 := conf.MacroF1(); f1 < 0.5 {
		t.Fatalf("pipeline F1 %.3f too low", f1)
	}
}

func TestDesignSearchFacade(t *testing.T) {
	env := NewEnv(D2, 200)
	env.BOIterations = 3
	env.BOParallel = 4
	res := DesignSearch(env, DefaultSearchSpace())
	if len(res.Evaluations) == 0 || len(res.Pareto) == 0 {
		t.Fatal("empty design search")
	}
}

func TestBaselinesFacade(t *testing.T) {
	flows := Generate(D2, 240, 9)
	samples := BuildSamples(flows, 1)
	train, test := Split(samples, 0.7)
	nb, err := TrainNetBeacon(train, test, BaselineOptions{
		Classes: NumClasses(D2), FlowTarget: 100_000, Profile: Tofino1(),
	})
	if err != nil {
		t.Fatal(err)
	}
	leo, err := TrainLeo(train, test, BaselineOptions{
		Classes: NumClasses(D2), FlowTarget: 100_000, Profile: Tofino1(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if nb.F1 <= 0 || leo.F1 <= 0 {
		t.Fatal("baselines failed to learn")
	}
}

func TestDatasetsListed(t *testing.T) {
	if len(Datasets()) != 7 {
		t.Fatal("expected 7 datasets")
	}
	for _, d := range Datasets() {
		if NumClasses(d) < 2 {
			t.Fatalf("%v has <2 classes", d)
		}
	}
}

// TestEngineFacade exercises the sharded execution path through the public
// API: train → compile → engine deploy → stream → merged result.
func TestEngineFacade(t *testing.T) {
	flows := Generate(D2, 300, 7)
	samples := BuildSamples(flows, 3)
	train, _ := Split(samples, 0.7)
	m, err := Train(train, Config{
		Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: NumClasses(D2),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{
		Deploy: DeployConfig{
			Profile: Tofino1(), Model: m, Compiled: c, FlowSlots: 1 << 16,
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewStream(D2, 100, 9, time.Millisecond)
	res, err := eng.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Digests != 100 {
		t.Fatalf("digested %d flows, want 100", res.Stats.Digests)
	}
	if got := len(res.PerShard); got != 4 {
		t.Fatalf("%d per-shard stats, want 4", got)
	}
	if res.Throughput.PktsPerSec() <= 0 {
		t.Fatal("no throughput reported")
	}
	labels := src.Labels()
	correct := 0
	for _, d := range res.Digests {
		if labels[d.Key] == d.Class {
			correct++
		}
	}
	if correct < 50 {
		t.Fatalf("only %d/100 flows classified correctly", correct)
	}
}

// TestStreamingFacade exercises the public streaming surface end to end:
// Start a session, Serve a blocking controller on its digest stream, Feed a
// workload twice, and verify blocked flows are dropped at the dispatcher.
func TestStreamingFacade(t *testing.T) {
	classes := NumClasses(D2)
	flows := Generate(D2, 300, 7)
	samples := BuildSamples(flows, 3)
	train, _ := Split(samples, 0.7)
	m, err := Train(train, Config{
		Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{
		Deploy: DeployConfig{
			Profile: Tofino1(), Model: m, Compiled: c,
			FlowSlots: 1 << 16, Workload: Webserver,
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var blockAll []int
	for cls := 0; cls < classes; cls++ {
		blockAll = append(blockAll, cls)
	}
	ctrl := NewController(classes, BlockClasses(blockAll...))
	served := make(chan int, 1)
	go func() {
		blocked, serveErr := ctrl.Serve(sess)
		if serveErr != nil {
			t.Errorf("Serve reported a fault on a healthy session: %v", serveErr)
		}
		served <- blocked
	}()

	feed := func() {
		src := NewStream(D2, 50, 3, time.Millisecond)
		var batch []Packet
		for {
			p, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, p)
		}
		if err := sess.FeedAll(batch); err != nil {
			t.Errorf("FeedAll: %v", err)
		}
	}
	feed()
	// Wait for the controller to block every wave-1 flow, then replay.
	deadline := time.Now().Add(10 * time.Second)
	for sess.Snapshot().BlockedFlows < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("controller blocked %d flows, want 50", sess.Snapshot().BlockedFlows)
		}
		time.Sleep(time.Millisecond)
	}
	feed()
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if blocked := <-served; blocked != 50 {
		t.Fatalf("Serve blocked %d digests, want 50", blocked)
	}
	if res.Dropped == 0 {
		t.Fatal("replayed blocked flows were not dropped")
	}
	if snap := sess.Snapshot(); snap.Dropped != res.Dropped || snap.Stats != res.Stats {
		t.Fatalf("final snapshot %+v disagrees with result %+v", snap, res)
	}
}
