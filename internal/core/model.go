// Package core implements the paper's primary contribution: partitioned
// decision trees with per-subtree feature sets, trained by the recursive
// window-specialised procedure of Algorithm 1 and evaluated window-by-window
// exactly as the data plane executes them.
//
// A Model is a DAG of subtrees grouped into partitions. Partition p's active
// subtree observes the features of flow window p; its leaves either exit
// with a class label or name the subtree to activate in partition p+1 (the
// transition the data plane performs via recirculation).
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"splidt/internal/dt"
	"splidt/internal/features"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// Lifetime-derivation defaults. A leaf's lifetime is the largest maximum
// inter-arrival time observed among the training samples routed to it,
// scaled by the headroom factor so a flow sitting right at its class's worst
// observed gap is not evicted mid-gap, then clamped into
// [MinLeafLifetime, MaxLeafLifetime].
const (
	DefaultLifetimeHeadroom = 4.0
	MinLeafLifetime         = 10 * time.Millisecond
	MaxLeafLifetime         = 10 * time.Minute
)

// Config describes a partitioned-tree architecture — the hyperparameters the
// design search explores (§3.2.1).
type Config struct {
	// Partitions lists the subtree depth of each partition; the sum is the
	// total tree depth D.
	Partitions []int
	// FeaturesPerSubtree is k: the register slots available to any one
	// subtree.
	FeaturesPerSubtree int
	// NumClasses is the label arity.
	NumClasses int
	// MinSamplesLeaf guards subtree splits (default 2).
	MinSamplesLeaf int
	// Candidates restricts the feature vocabulary (nil = all features).
	Candidates []int
	// MaxSubtrees caps model growth (default 512, ample for the paper's
	// configurations which use single-digit subtree counts).
	MaxSubtrees int
	// QuantizeBits, when in [1,31], trains and classifies on reduced-
	// precision features (Figure 12). 0 or 32 means full 32-bit precision.
	QuantizeBits int
	// WindowBounds, when set, selects non-uniform window boundaries
	// (adaptive window sizing, §6 future work): cumulative flow fractions,
	// one per partition, ending at 1. Training samples must have been built
	// with the same bounds (trace.BuildSamplesBounds). Nil means uniform.
	WindowBounds pkt.Bounds
	// Lifetimes derives a per-leaf idle flow lifetime from the MaxIAT
	// statistics of the training samples routed to each leaf (see the
	// lifetime-derivation constants). Compiled models thread the lifetimes
	// into the model table; the data plane's wheel-expiry mode re-arms each
	// flow's deadline with its current leaf's lifetime, so chatty classes
	// reclaim fast while long-IAT keepalive classes survive their gaps.
	Lifetimes bool
	// LifetimeHeadroom scales derived lifetimes (0 means
	// DefaultLifetimeHeadroom). Larger values trade table occupancy for
	// tolerance of IAT gaps beyond the training maximum.
	LifetimeHeadroom float64
	// ClassLifetimes pins the lifetime of every leaf whose majority class
	// matches, overriding derivation — the operator policy escape hatch.
	// Entries apply even when Lifetimes is false.
	ClassLifetimes map[int]time.Duration
}

// Depth returns the total tree depth D = Σ partition sizes.
func (c Config) Depth() int {
	d := 0
	for _, p := range c.Partitions {
		d += p
	}
	return d
}

func (c Config) validate() error {
	if len(c.Partitions) == 0 {
		return fmt.Errorf("core: no partitions")
	}
	for _, d := range c.Partitions {
		if d < 1 {
			return fmt.Errorf("core: partition depth %d < 1", d)
		}
	}
	if c.FeaturesPerSubtree < 1 {
		return fmt.Errorf("core: features per subtree %d < 1", c.FeaturesPerSubtree)
	}
	if c.NumClasses < 2 {
		return fmt.Errorf("core: need >= 2 classes")
	}
	if c.QuantizeBits < 0 || c.QuantizeBits > 32 {
		return fmt.Errorf("core: quantize bits %d out of [0,32]", c.QuantizeBits)
	}
	if c.WindowBounds != nil {
		if !c.WindowBounds.Valid() {
			return fmt.Errorf("core: invalid window bounds %v", c.WindowBounds)
		}
		if len(c.WindowBounds) != len(c.Partitions) {
			return fmt.Errorf("core: %d window bounds for %d partitions",
				len(c.WindowBounds), len(c.Partitions))
		}
	}
	return nil
}

// Subtree is one trained subtree: its partition, its CART tree over window
// features, and the per-leaf transition table.
type Subtree struct {
	SID       int // 1-based subtree ID; SID 1 is the root subtree
	Partition int // 0-based partition index
	Tree      *dt.Tree
	// Next maps a leaf's LeafID to the SID activated in the next partition.
	// Leaves absent from Next are exit nodes (classify immediately).
	Next map[int]int
}

// Features returns the subtree's distinct feature set.
func (s *Subtree) Features() []int { return s.Tree.DistinctFeatures() }

// Model is a trained partitioned decision tree.
type Model struct {
	Cfg      Config
	Subtrees []*Subtree // indexed by SID-1
	// Shifts holds the per-feature right shifts of a quantised deployment
	// (QuantizeBits < 32): the compiler scales each feature into its narrow
	// register by its training range. Nil for full-precision models.
	Shifts []uint
}

// Train runs Algorithm 1: it trains the root subtree of partition 0 on all
// samples' window-0 features, then recursively trains one subtree per
// impure leaf on the samples reaching that leaf, using the next window's
// features. Training is deterministic.
func Train(samples []trace.Sample, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 2
	}
	if cfg.MaxSubtrees < 1 {
		cfg.MaxSubtrees = 512
	}

	m := &Model{Cfg: cfg}
	if b := cfg.QuantizeBits; b > 0 && b < 32 {
		// Per-feature register scaling from the training range (Figure 12):
		// wide counters shift right to fit b-bit registers.
		var rows [][]float64
		for _, s := range samples {
			for _, w := range s.Windows {
				rows = append(rows, w[:])
			}
		}
		m.Shifts = features.ComputeShifts(rows, b)
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	m.trainSubtree(samples, idx, 0)
	if len(m.Subtrees) == 0 {
		return nil, fmt.Errorf("core: training produced no subtrees")
	}
	return m, nil
}

// window returns sample i's feature row for partition p, or nil if the flow
// ended before window p (the flow would have exited at its last window).
func (m *Model) window(samples []trace.Sample, i, p int) []float64 {
	w := samples[i].Windows
	if p >= len(w) {
		return nil
	}
	return m.quantize(w[p])
}

// quantize renders a window vector at the model's register precision.
func (m *Model) quantize(v features.Vector) []float64 {
	if m.Shifts == nil {
		return v[:]
	}
	return features.QuantizeRow(v[:], m.Shifts)
}

// trainSubtree trains the subtree for partition p over the given sample
// indices and returns its SID (0 if no subtree could be trained).
func (m *Model) trainSubtree(samples []trace.Sample, idx []int, p int) int {
	if len(m.Subtrees) >= m.Cfg.MaxSubtrees {
		return 0
	}
	// Collect rows that still have a window at this partition.
	var X [][]float64
	var y []int
	var alive []int
	for _, i := range idx {
		row := m.window(samples, i, p)
		if row == nil {
			continue
		}
		X = append(X, row)
		y = append(y, samples[i].Label)
		alive = append(alive, i)
	}
	if len(X) < 2*m.Cfg.MinSamplesLeaf {
		return 0
	}
	tree := dt.Train(X, y, m.Cfg.NumClasses, dt.Config{
		MaxDepth:            m.Cfg.Partitions[p],
		MinSamplesLeaf:      m.Cfg.MinSamplesLeaf,
		MaxDistinctFeatures: m.Cfg.FeaturesPerSubtree,
		Features:            m.Cfg.Candidates,
	})

	st := &Subtree{SID: len(m.Subtrees) + 1, Partition: p, Tree: tree, Next: map[int]int{}}
	m.Subtrees = append(m.Subtrees, st)

	// Route surviving samples to leaves: transition training (non-final
	// partitions) and lifetime derivation both consume the per-leaf sample
	// sets. Routing uses the same (possibly quantised) rows the tree trained
	// on, matching how the data plane will classify.
	byLeaf := make(map[int][]int)
	for j, i := range alive {
		leaf := tree.Leaf(X[j])
		byLeaf[leaf.LeafID] = append(byLeaf[leaf.LeafID], i)
	}
	if m.Cfg.Lifetimes || len(m.Cfg.ClassLifetimes) > 0 {
		m.assignLifetimes(samples, tree, byLeaf, p)
	}

	if p+1 >= len(m.Cfg.Partitions) {
		return st.SID // final partition: all leaves exit
	}

	// Deterministic order over leaves.
	leafIDs := make([]int, 0, len(byLeaf))
	for id := range byLeaf {
		leafIDs = append(leafIDs, id)
	}
	sort.Ints(leafIDs)
	for _, id := range leafIDs {
		subset := byLeaf[id]
		if pureLabels(samples, subset) {
			continue // early exit: nothing left to separate
		}
		if next := m.trainSubtree(samples, subset, p+1); next != 0 {
			st.Next[id] = next
		}
	}
	return st.SID
}

// assignLifetimes stamps each leaf of a freshly trained subtree with its
// per-class idle lifetime. ClassLifetimes entries win outright; otherwise
// the lifetime is derived from the raw (unquantised) MaxIAT feature of the
// window-p rows of the samples routed to the leaf — the worst idle gap the
// class exhibited in training, padded by the headroom factor. Leaves with no
// usable IAT signal keep Lifetime 0 and fall back to the deployment's base
// timeout.
func (m *Model) assignLifetimes(samples []trace.Sample, tree *dt.Tree, byLeaf map[int][]int, p int) {
	headroom := m.Cfg.LifetimeHeadroom
	if headroom <= 0 {
		headroom = DefaultLifetimeHeadroom
	}
	for _, leaf := range tree.Leaves() {
		if d, ok := m.Cfg.ClassLifetimes[leaf.Class]; ok {
			leaf.Lifetime = d
			continue
		}
		if !m.Cfg.Lifetimes {
			continue
		}
		maxIAT := 0.0
		for _, i := range byLeaf[leaf.LeafID] {
			w := samples[i].Windows
			if p >= len(w) {
				continue
			}
			if v := w[p][features.MaxIAT]; v > maxIAT {
				maxIAT = v
			}
		}
		if maxIAT <= 0 {
			continue
		}
		lt := time.Duration(headroom * maxIAT * float64(time.Microsecond))
		if lt < MinLeafLifetime {
			lt = MinLeafLifetime
		}
		if lt > MaxLeafLifetime {
			lt = MaxLeafLifetime
		}
		leaf.Lifetime = lt
	}
}

func pureLabels(samples []trace.Sample, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := samples[idx[0]].Label
	for _, i := range idx[1:] {
		if samples[i].Label != first {
			return false
		}
	}
	return true
}

// Classify runs windowed inference over a sample's windows and returns the
// predicted class — the software twin of the data-plane execution: window i
// is evaluated by the active subtree; transitions happen at window
// boundaries; the flow's last window forces an exit with the current leaf's
// majority class.
func (m *Model) Classify(windows []features.Vector) int {
	sid := 1
	for i, w := range windows {
		st := m.Subtrees[sid-1]
		leaf := st.Tree.Leaf(m.quantize(w))
		next, ok := st.Next[leaf.LeafID]
		if !ok || i == len(windows)-1 {
			return leaf.Class
		}
		sid = next
	}
	// No windows: majority class of the root subtree.
	return m.Subtrees[0].Tree.Root.Class
}

// Transitions returns the number of subtree transitions (recirculations) the
// sample incurs — one control packet per completed non-final window whose
// leaf has a successor (§3.1.3).
func (m *Model) Transitions(windows []features.Vector) int {
	sid, n := 1, 0
	for i, w := range windows {
		st := m.Subtrees[sid-1]
		leaf := st.Tree.Leaf(m.quantize(w))
		next, ok := st.Next[leaf.LeafID]
		if !ok || i == len(windows)-1 {
			return n
		}
		sid = next
		n++
	}
	return n
}

// NumPartitions returns the configured partition count.
func (m *Model) NumPartitions() int { return len(m.Cfg.Partitions) }

// Depth returns the realised model depth: the maximum, over root-to-exit
// subtree chains, of the sum of realised subtree depths.
func (m *Model) Depth() int {
	var depth func(sid int) int
	depth = func(sid int) int {
		st := m.Subtrees[sid-1]
		best := 0
		for _, next := range st.Next {
			if d := depth(next); d > best {
				best = d
			}
		}
		return st.Tree.Depth() + best
	}
	return depth(1)
}

// TotalFeatures returns the union of features across all subtrees — the
// quantity SpliDT scales 5× beyond top-k systems.
func (m *Model) TotalFeatures() []int {
	set := map[int]bool{}
	for _, st := range m.Subtrees {
		for _, f := range st.Features() {
			set[f] = true
		}
	}
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// MaxSubtreeFeatures returns the largest per-subtree distinct feature count
// (must be ≤ k by construction).
func (m *Model) MaxSubtreeFeatures() int {
	best := 0
	for _, st := range m.Subtrees {
		if n := len(st.Features()); n > best {
			best = n
		}
	}
	return best
}

// PartitionSubtrees returns the subtrees of partition p.
func (m *Model) PartitionSubtrees(p int) []*Subtree {
	var out []*Subtree
	for _, st := range m.Subtrees {
		if st.Partition == p {
			out = append(out, st)
		}
	}
	return out
}

// FeatureDensity reports mean and standard deviation of the fraction of the
// feature vocabulary used per subtree and per partition (Table 1). n is the
// vocabulary size (paper: N).
func (m *Model) FeatureDensity(n int) (perSubtreeMean, perSubtreeStd, perPartMean, perPartStd float64) {
	var sub []float64
	for _, st := range m.Subtrees {
		sub = append(sub, 100*float64(len(st.Features()))/float64(n))
	}
	var part []float64
	for p := 0; p < m.NumPartitions(); p++ {
		set := map[int]bool{}
		for _, st := range m.PartitionSubtrees(p) {
			for _, f := range st.Features() {
				set[f] = true
			}
		}
		if len(set) > 0 || p == 0 {
			part = append(part, 100*float64(len(set))/float64(n))
		}
	}
	perSubtreeMean, perSubtreeStd = meanStd(sub)
	perPartMean, perPartStd = meanStd(part)
	return
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// String summarises the model.
func (m *Model) String() string {
	return fmt.Sprintf("splidt model: depth=%d partitions=%v k=%d subtrees=%d features=%d",
		m.Depth(), m.Cfg.Partitions, m.Cfg.FeaturesPerSubtree, len(m.Subtrees), len(m.TotalFeatures()))
}
