package core

import (
	"testing"

	"splidt/internal/features"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

func trainTest(t *testing.T, id trace.DatasetID, n int, cfg Config) (*Model, []trace.Sample, []trace.Sample) {
	t.Helper()
	parts := len(cfg.Partitions)
	flows := trace.Generate(id, n, 42)
	samples := trace.BuildSamples(flows, parts)
	train, test := trace.Split(samples, 0.7)
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, train, test
}

func evalF1(m *Model, test []trace.Sample, classes int) float64 {
	c := metrics.NewConfusion(classes)
	for _, s := range test {
		c.Add(s.Label, m.Classify(s.Windows))
	}
	return c.MacroF1()
}

func TestTrainBasic(t *testing.T) {
	cfg := Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _, test := trainTest(t, trace.D2, 400, cfg)
	if len(m.Subtrees) == 0 {
		t.Fatal("no subtrees")
	}
	if m.Subtrees[0].SID != 1 || m.Subtrees[0].Partition != 0 {
		t.Fatal("root subtree must be SID 1 in partition 0")
	}
	f1 := evalF1(m, test, 4)
	if f1 < 0.5 {
		t.Fatalf("test F1 %.3f too low for separable 4-class data", f1)
	}
}

func TestFeatureBudgetHolds(t *testing.T) {
	cfg := Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 3, NumClasses: 13}
	m, _, _ := trainTest(t, trace.D3, 390, cfg)
	if got := m.MaxSubtreeFeatures(); got > 3 {
		t.Fatalf("subtree used %d features, budget 3", got)
	}
}

func TestTotalFeaturesExceedPerSubtree(t *testing.T) {
	// The point of SpliDT: union of features across subtrees exceeds k.
	cfg := Config{Partitions: []int{3, 3, 3}, FeaturesPerSubtree: 4, NumClasses: 19}
	m, _, _ := trainTest(t, trace.D1, 570, cfg)
	if tot := len(m.TotalFeatures()); tot <= cfg.FeaturesPerSubtree {
		t.Fatalf("total features %d not greater than k=%d (no feature scaling)",
			tot, cfg.FeaturesPerSubtree)
	}
}

func TestSubtreePartitionsOrdered(t *testing.T) {
	cfg := Config{Partitions: []int{2, 2, 1}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _, _ := trainTest(t, trace.D2, 200, cfg)
	for _, st := range m.Subtrees {
		if st.Partition < 0 || st.Partition >= len(cfg.Partitions) {
			t.Fatalf("subtree %d in partition %d out of range", st.SID, st.Partition)
		}
		for _, next := range st.Next {
			nst := m.Subtrees[next-1]
			if nst.Partition != st.Partition+1 {
				t.Fatalf("transition %d→%d skips partitions (%d→%d)",
					st.SID, next, st.Partition, nst.Partition)
			}
		}
	}
}

func TestSubtreeDepthBounds(t *testing.T) {
	cfg := Config{Partitions: []int{2, 3, 1}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _, _ := trainTest(t, trace.D2, 300, cfg)
	for _, st := range m.Subtrees {
		if d := st.Tree.Depth(); d > cfg.Partitions[st.Partition] {
			t.Fatalf("subtree %d depth %d exceeds partition budget %d",
				st.SID, d, cfg.Partitions[st.Partition])
		}
	}
	if m.Depth() > cfg.Depth() {
		t.Fatalf("model depth %d exceeds configured depth %d", m.Depth(), cfg.Depth())
	}
}

func TestClassifyConsistentWithTransitions(t *testing.T) {
	cfg := Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _, test := trainTest(t, trace.D2, 300, cfg)
	for _, s := range test {
		tr := m.Transitions(s.Windows)
		if tr < 0 || tr >= len(cfg.Partitions) {
			t.Fatalf("transitions %d out of [0,%d)", tr, len(cfg.Partitions))
		}
		if tr > len(s.Windows)-1 {
			t.Fatalf("more transitions (%d) than window boundaries (%d)", tr, len(s.Windows)-1)
		}
	}
}

func TestClassifyEmptyWindows(t *testing.T) {
	cfg := Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	m, _, _ := trainTest(t, trace.D2, 100, cfg)
	got := m.Classify(nil)
	if got < 0 || got >= 4 {
		t.Fatalf("Classify(nil) = %d out of range", got)
	}
}

func TestSinglePartitionIsPlainTree(t *testing.T) {
	cfg := Config{Partitions: []int{4}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _, _ := trainTest(t, trace.D2, 300, cfg)
	if len(m.Subtrees) != 1 {
		t.Fatalf("single partition produced %d subtrees, want 1", len(m.Subtrees))
	}
	if len(m.Subtrees[0].Next) != 0 {
		t.Fatal("single-partition subtree has transitions")
	}
}

func TestMoreFeaturesHelp(t *testing.T) {
	// k=1 should be no better than k=6 on a multi-feature dataset.
	flows := trace.Generate(trace.D3, 650, 42)
	samples := trace.BuildSamples(flows, 3)
	train, test := trace.Split(samples, 0.7)
	lo, err := Train(train, Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 1, NumClasses: 13})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Train(train, Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 6, NumClasses: 13})
	if err != nil {
		t.Fatal(err)
	}
	f1lo := evalF1(lo, test, 13)
	f1hi := evalF1(hi, test, 13)
	if f1hi < f1lo-0.02 {
		t.Fatalf("more features per subtree hurt: k=1 F1 %.3f vs k=6 F1 %.3f", f1lo, f1hi)
	}
}

func TestFeatureDensity(t *testing.T) {
	cfg := Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 19}
	m, _, _ := trainTest(t, trace.D1, 380, cfg)
	subMean, _, partMean, _ := m.FeatureDensity(features.NumStateful)
	if subMean <= 0 || subMean > 100 || partMean <= 0 || partMean > 100 {
		t.Fatalf("densities out of range: subtree %.1f%%, partition %.1f%%", subMean, partMean)
	}
	if subMean > partMean+1e-9 {
		t.Fatalf("per-subtree density %.1f%% exceeds per-partition %.1f%%", subMean, partMean)
	}
	// Feature sparsity: single subtrees use a small slice of the vocabulary.
	if subMean > 25 {
		t.Fatalf("per-subtree density %.1f%% too high; sparsity property violated", subMean)
	}
}

func TestQuantizedTraining(t *testing.T) {
	cfg := Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4, QuantizeBits: 16}
	m, _, test := trainTest(t, trace.D2, 300, cfg)
	f1 := evalF1(m, test, 4)
	if f1 < 0.3 {
		t.Fatalf("16-bit quantised model F1 %.3f collapsed", f1)
	}
}

func TestConfigValidation(t *testing.T) {
	samples := trace.BuildSamples(trace.Generate(trace.D2, 50, 1), 2)
	bad := []Config{
		{Partitions: nil, FeaturesPerSubtree: 2, NumClasses: 4},
		{Partitions: []int{0}, FeaturesPerSubtree: 2, NumClasses: 4},
		{Partitions: []int{2}, FeaturesPerSubtree: 0, NumClasses: 4},
		{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 1},
		{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4, QuantizeBits: 40},
	}
	for i, cfg := range bad {
		if _, err := Train(samples, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	if _, err := Train(nil, Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}); err == nil {
		t.Error("empty samples: expected error")
	}
}

func TestMaxSubtreesCap(t *testing.T) {
	flows := trace.Generate(trace.D1, 950, 42)
	samples := trace.BuildSamples(flows, 5)
	m, err := Train(samples, Config{
		Partitions: []int{3, 3, 3, 3, 3}, FeaturesPerSubtree: 4,
		NumClasses: 19, MaxSubtrees: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Subtrees) > 10 {
		t.Fatalf("%d subtrees exceed cap 10", len(m.Subtrees))
	}
}

func TestDeterministicTraining(t *testing.T) {
	cfg := Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	flows := trace.Generate(trace.D2, 200, 9)
	samples := trace.BuildSamples(flows, 2)
	a, _ := Train(samples, cfg)
	b, _ := Train(samples, cfg)
	if a.String() != b.String() {
		t.Fatal("training not deterministic")
	}
	if len(a.Subtrees) != len(b.Subtrees) {
		t.Fatal("subtree counts differ")
	}
}

func TestStringNonEmpty(t *testing.T) {
	cfg := Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	m, _, _ := trainTest(t, trace.D2, 100, cfg)
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAdaptiveWindowTraining(t *testing.T) {
	// Front-loaded windows: first subtree sees the first 15% of each flow.
	bounds := pkt.Bounds{0.15, 0.5, 1}
	flows := trace.Generate(trace.D6, 500, 23)
	samples := trace.BuildSamplesBounds(flows, bounds)
	train, test := trace.Split(samples, 0.7)
	m, err := Train(train, Config{
		Partitions:         []int{3, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         10,
		WindowBounds:       bounds,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	f1 := evalF1(m, test, 10)
	if f1 < 0.4 {
		t.Fatalf("adaptive-window F1 %.3f collapsed", f1)
	}
}

func TestWindowBoundsValidation(t *testing.T) {
	samples := trace.BuildSamples(trace.Generate(trace.D2, 50, 1), 2)
	bad := []Config{
		{Partitions: []int{2, 2}, FeaturesPerSubtree: 2, NumClasses: 4,
			WindowBounds: pkt.Bounds{0.5}}, // wrong arity
		{Partitions: []int{2, 2}, FeaturesPerSubtree: 2, NumClasses: 4,
			WindowBounds: pkt.Bounds{0.9, 0.5}}, // not increasing
	}
	for i, cfg := range bad {
		if _, err := Train(samples, cfg); err == nil {
			t.Errorf("config %d: invalid bounds accepted", i)
		}
	}
}
