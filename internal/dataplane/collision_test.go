package dataplane

import (
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/trace"
)

// collisionFixture builds a deployment template plus a workload engineered
// to contend for `groups` direct-table indices of a `slots`-slot table, at
// a load factor ≥ 0.5 — the regime where the direct scheme couples flows.
func collisionFixture(t *testing.T, slots, groups int) (Config, []trace.LabeledFlow) {
	t.Helper()
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	pl, _, _ := deploy(t, trace.D2, 300, cfg, slots)
	dcfg := pl.cfg
	// More flows than half the table, all contending for `groups` slots.
	return dcfg, trace.Colliding(trace.D2, 56, 9, slots, groups)
}

// replayScheme runs the workload through a fresh pipeline of the given
// scheme, returning the digest multiset, final stats, and the peak
// concurrent occupancy observed (for the load-factor bound).
func replayScheme(t *testing.T, dcfg Config, scheme TableScheme, pkts []trace.LabeledFlow) (map[Digest]int, Stats, int) {
	t.Helper()
	cfg := dcfg
	cfg.Table = scheme
	pl, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", scheme, err)
	}
	digests := make(map[Digest]int)
	peak := 0
	for _, p := range trace.Interleave(pkts, 50*time.Microsecond) {
		if d := pl.Process(p); d != nil {
			digests[*d]++
		}
		if a := pl.ActiveFlows(); a > peak {
			peak = a
		}
	}
	return digests, pl.Stats(), peak
}

// sameDigests reports whether two digest multisets are identical.
func sameDigests(a, b map[Digest]int) bool {
	if len(a) != len(b) {
		return false
	}
	for d, n := range a {
		if b[d] != n {
			return false
		}
	}
	return true
}

// TestCuckooMatchesOracleUnderCollisions is the scheme's headline
// single-pipeline property: on a workload engineered to collide in a small
// table at load factor ≥ 0.5, the cuckoo scheme's digests and inference
// counters are exactly the unbounded oracle's — collisions no longer couple
// flows — while the direct scheme demonstrably diverges on the same
// packets (the regression leg that proves the workload bites).
func TestCuckooMatchesOracleUnderCollisions(t *testing.T) {
	const slots, groups = 96, 2
	dcfg, flows := collisionFixture(t, slots, groups)

	oracleDigests, oracleStats, peak := replayScheme(t, dcfg, TableOracle, flows)
	if peak*2 < slots {
		t.Fatalf("workload too sparse: peak %d concurrent flows on a %d-slot table (LF %.2f < 0.5)",
			peak, slots, float64(peak)/float64(slots))
	}
	if oracleStats.Collisions != 0 {
		t.Fatalf("oracle counted %d collisions", oracleStats.Collisions)
	}

	cuckooDigests, cuckooStats, _ := replayScheme(t, dcfg, TableCuckoo, flows)
	if cuckooStats.Collisions != 0 {
		t.Fatalf("cuckoo rejected flows on the colliding workload: %d collision packets (stats %+v)",
			cuckooStats.Collisions, cuckooStats)
	}
	if !sameDigests(cuckooDigests, oracleDigests) {
		t.Fatalf("cuckoo digest multiset diverges from oracle: %d distinct vs %d",
			len(cuckooDigests), len(oracleDigests))
	}
	// The inference counters must agree too (placement counters excluded:
	// the oracle never kicks or stashes).
	if cuckooStats.Packets != oracleStats.Packets ||
		cuckooStats.ControlPackets != oracleStats.ControlPackets ||
		cuckooStats.Digests != oracleStats.Digests ||
		cuckooStats.RecircBytes != oracleStats.RecircBytes {
		t.Fatalf("cuckoo inference stats diverge from oracle:\n%+v\n%+v", cuckooStats, oracleStats)
	}

	directDigests, directStats, _ := replayScheme(t, dcfg, TableDirect, flows)
	if directStats.Collisions == 0 {
		t.Fatal("direct scheme saw no collisions on the engineered workload")
	}
	if sameDigests(directDigests, oracleDigests) {
		t.Fatal("direct scheme matched the oracle under collisions — the regression leg lost its teeth")
	}
}

// TestTableSchemeValidation covers the Config.Table knob's contract:
// parseable names, rejection of unknown schemes and negative geometry, and
// the cuckoo capacity guarantee (at least FlowSlots bucket cells).
func TestTableSchemeValidation(t *testing.T) {
	for _, s := range []string{"", "direct", "cuckoo", "oracle"} {
		if _, err := ParseTableScheme(s); err != nil {
			t.Fatalf("ParseTableScheme(%q): %v", s, err)
		}
	}
	if _, err := ParseTableScheme("lossy"); err == nil {
		t.Fatal("unknown scheme accepted")
	}

	dcfg, _ := ageingDeploy(t, 1000, 0, 0)
	bad := dcfg
	bad.Table = "lossy"
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted an unknown table scheme")
	}
	neg := dcfg
	neg.Table = TableCuckoo
	neg.Ways = -1
	if _, err := New(neg); err == nil {
		t.Fatal("New accepted negative ways")
	}

	// Negative Stash is the documented stash-less deployment, not an error.
	bare := dcfg
	bare.Table = TableCuckoo
	bare.Ways = 4
	bare.Stash = -1
	pb, err := New(bare)
	if err != nil {
		t.Fatalf("New(stash-less cuckoo): %v", err)
	}
	if got := pb.TableCap(); got != 1000 {
		t.Fatalf("stash-less TableCap = %d, want 1000 (bucket cells only)", got)
	}

	cuckoo := dcfg
	cuckoo.Table = TableCuckoo
	cuckoo.Ways = 4
	cuckoo.Stash = 8
	pl, err := New(cuckoo)
	if err != nil {
		t.Fatalf("New(cuckoo): %v", err)
	}
	// 1000 slots round up to 250 4-way buckets plus the stash.
	if got := pl.TableCap(); got != 1000+8 {
		t.Fatalf("cuckoo TableCap = %d, want 1008", got)
	}
	if pl.TableStats().Occupied != 0 {
		t.Fatalf("fresh table occupied %d", pl.TableStats().Occupied)
	}
}

// TestCuckooShardsSplitBudget pins NewShards on the cuckoo scheme: the
// FlowSlots budget still splits with the remainder distributed, each shard
// rounding its share up to whole buckets.
func TestCuckooShardsSplitBudget(t *testing.T) {
	dcfg, _ := ageingDeploy(t, 1000, 0, 0)
	dcfg.Table = TableCuckoo
	dcfg.Ways = 4
	dcfg.Stash = 4
	shards, err := NewShards(dcfg, 3)
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	// 1000/3 → 334, 333, 333; each rounds up to whole 4-way buckets (336,
	// 336, 336) plus 4 stash lines.
	for i, s := range shards {
		if got := s.TableCap(); got != 336+4 {
			t.Fatalf("shard %d TableCap = %d, want 340", i, got)
		}
	}
}
