package dataplane

import (
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/trace"
)

// findEarlyExit returns a test flow that exits the model before its final
// packet — the shape whose register slot parks at doneSID until the flow's
// last packet arrives. Fed through a clean large pipeline, such a flow's
// digest reports fewer packets than the flow carries.
func findEarlyExit(t *testing.T, cfg Config, flows []trace.LabeledFlow) trace.LabeledFlow {
	t.Helper()
	pl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, f := range flows {
		var d *Digest
		for _, p := range f.Packets {
			if got := pl.Process(p); got != nil {
				d = got
			}
		}
		if d != nil && d.Packets < len(f.Packets) {
			return f
		}
	}
	t.Fatal("no early-exiting flow in the test set; ageing tests need one")
	return trace.LabeledFlow{}
}

// ageingDeploy builds a deployment for the ageing tests plus its held-out
// flows.
func ageingDeploy(t *testing.T, slots int, idle time.Duration, stripe int) (Config, []trace.LabeledFlow) {
	t.Helper()
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	pl, _, testFlows := deploy(t, trace.D2, 300, cfg, slots)
	dcfg := pl.cfg
	dcfg.IdleTimeout = idle
	dcfg.SweepStripe = stripe
	return dcfg, testFlows
}

// sweepFullPass runs enough Sweep calls to cover the whole register array
// once, returning the total evicted.
func sweepFullPass(pl *Pipeline, now time.Duration) int {
	evicted := 0
	calls := (pl.TableCap() + pl.cfg.SweepStripe - 1) / pl.cfg.SweepStripe
	for i := 0; i < calls; i++ {
		evicted += pl.Sweep(now)
	}
	return evicted
}

// TestSweepReclaimsIdleAndParked is the core ageing property: a live slot
// whose flow went quiet and a parked early-exit slot whose tail never
// arrived (the blocked-flow leak) are both reclaimed once idle for the
// timeout, and not a packet-time earlier.
func TestSweepReclaimsIdleAndParked(t *testing.T) {
	const idle = 30 * time.Second // longer than any intra-workload gap
	dcfg, testFlows := ageingDeploy(t, 1<<12, idle, 64)

	early := findEarlyExit(t, dcfg, testFlows)
	pl, err := New(dcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Park a slot: early-exited flow with its flow-end packet withheld —
	// exactly what happens when a controller blocks the flow and the
	// dispatcher drops its tail.
	for _, p := range early.Packets[:len(early.Packets)-1] {
		pl.Process(p)
	}
	// A live-idle slot: another flow's first packet only.
	var other trace.LabeledFlow
	for _, f := range testFlows {
		if f.Key != early.Key {
			other = f
			break
		}
	}
	pl.Process(other.Packets[0])
	if pl.ActiveFlows() != 2 {
		t.Fatalf("ActiveFlows = %d, want 2 (parked + live-idle)", pl.ActiveFlows())
	}

	// At the current packet clock nothing has been idle for the timeout.
	if got := sweepFullPass(pl, pl.Clock()); got != 0 {
		t.Fatalf("sweep at current clock evicted %d slots, want 0", got)
	}
	if pl.ActiveFlows() != 2 || pl.Stats().Evictions != 0 {
		t.Fatalf("premature eviction: active=%d evictions=%d", pl.ActiveFlows(), pl.Stats().Evictions)
	}

	// One timeout later both slots are reclaimable.
	if got := sweepFullPass(pl, pl.Clock()+idle); got != 2 {
		t.Fatalf("sweep after timeout evicted %d slots, want 2", got)
	}
	if pl.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after sweep, want 0", pl.ActiveFlows())
	}
	if pl.ActiveFlows() != pl.countActiveSlots() {
		t.Fatalf("incremental ActiveFlows %d != scanned %d after sweep", pl.ActiveFlows(), pl.countActiveSlots())
	}
	if got := pl.Stats().Evictions; got != 2 {
		t.Fatalf("Stats.Evictions = %d, want 2", got)
	}

	// A reclaimed slot is a fresh slot: the parked flow's key can activate
	// again.
	pl.Process(early.Packets[0])
	if pl.ActiveFlows() != 1 {
		t.Fatalf("reclaimed slot did not reactivate: active=%d", pl.ActiveFlows())
	}
}

// TestSweepDisabled pins that IdleTimeout zero keeps the pre-ageing
// behaviour: Sweep is a no-op regardless of how stale the slots are.
func TestSweepDisabled(t *testing.T) {
	dcfg, testFlows := ageingDeploy(t, 1<<12, 0, 64)
	pl, err := New(dcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pl.Process(testFlows[0].Packets[0])
	if got := sweepFullPass(pl, pl.Clock()+time.Hour); got != 0 {
		t.Fatalf("disabled sweep evicted %d slots", got)
	}
	if pl.ActiveFlows() != 1 || pl.Stats().Evictions != 0 {
		t.Fatalf("disabled ageing mutated state: active=%d evictions=%d", pl.ActiveFlows(), pl.Stats().Evictions)
	}
	if !(&Pipeline{cfg: Config{IdleTimeout: time.Second}}).AgeingEnabled() {
		t.Fatal("AgeingEnabled false with a timeout set")
	}
	if pl.AgeingEnabled() {
		t.Fatal("AgeingEnabled true with timeout zero")
	}
}

// TestEvictExplicit covers the controller-initiated reclaim path: the
// owner's eviction frees the slot (ageing disabled included), a colliding
// non-owner's does not, and eviction is idempotent.
func TestEvictExplicit(t *testing.T) {
	dcfg, testFlows := ageingDeploy(t, 1<<12, 0, 64)
	dcfg.FlowSlots = 1 // force both flows onto one slot
	pl, err := New(dcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := testFlows[0], testFlows[1]
	pl.Process(a.Packets[0])
	if pl.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1", pl.ActiveFlows())
	}
	// b hashes onto the same (only) slot but does not own it: evicting b
	// must not free a's state.
	if pl.Evict(b.Key) {
		t.Fatal("evicting a non-owner reclaimed the slot")
	}
	if !pl.Evict(a.Key) {
		t.Fatal("owner eviction failed")
	}
	if pl.ActiveFlows() != 0 || pl.Stats().Evictions != 1 {
		t.Fatalf("after evict: active=%d evictions=%d, want 0/1", pl.ActiveFlows(), pl.Stats().Evictions)
	}
	if pl.Evict(a.Key) {
		t.Fatal("evicting an empty slot reported a reclaim")
	}
	// Direction symmetry: the reverse key evicts the same slot.
	pl.Process(a.Packets[0])
	if !pl.Evict(a.Key.Reverse()) {
		t.Fatal("reverse-direction eviction failed")
	}
}

// TestParkedSlotCollisionAccounting pins the hardware semantics of a
// doneSID slot (satellite of the ageing work): packets of a different flow
// that hash onto a parked slot are counted as collisions and otherwise
// ignored — no digest, no state perturbation, no slot-count change — until
// the owner's flow-end packet frees the slot, after which the colliding
// flow gets service again.
func TestParkedSlotCollisionAccounting(t *testing.T) {
	dcfg, testFlows := ageingDeploy(t, 1<<12, 0, 64)
	early := findEarlyExit(t, dcfg, testFlows)
	dcfg.FlowSlots = 1
	pl, err := New(dcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Park the only slot: early-exited owner, flow-end packet withheld.
	for _, p := range early.Packets[:len(early.Packets)-1] {
		pl.Process(p)
	}
	if pl.countActiveSlots() != 1 {
		t.Fatal("setup: slot not occupied")
	}
	var g trace.LabeledFlow
	for _, f := range testFlows {
		if f.Key != early.Key {
			g = f
			break
		}
	}

	before := pl.Stats()
	const n = 3
	for _, p := range g.Packets[:n] {
		if d := pl.Process(p); d != nil {
			t.Fatal("collider on a parked slot produced a digest")
		}
	}
	after := pl.Stats()
	if got := after.Collisions - before.Collisions; got != n {
		t.Fatalf("parked-slot collisions = %d, want %d (one per swallowed packet)", got, n)
	}
	if after.Packets-before.Packets != n {
		t.Fatal("swallowed packets must still count as processed")
	}
	if after.Digests != before.Digests || after.ControlPackets != before.ControlPackets {
		t.Fatal("collider perturbed parked-slot inference state")
	}
	if pl.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1 (collider must not re-activate a parked slot)", pl.ActiveFlows())
	}

	// The owner's flow-end packet frees the slot; the colliding flow's next
	// packet then claims it as a fresh activation.
	pl.Process(early.Packets[len(early.Packets)-1])
	if pl.ActiveFlows() != 0 {
		t.Fatalf("owner flow-end did not free the parked slot (active=%d)", pl.ActiveFlows())
	}
	pl.Process(g.Packets[n])
	if pl.ActiveFlows() != 1 {
		t.Fatal("collider not served after the parked slot freed")
	}
}

// TestSweepReclaimsParkedUnderCollisions pins that collider packets do not
// refresh a parked-dead slot's age: the owner is gone (tail dropped), the
// collider's packets are swallowed, and the sweep must still be able to
// free the slot so the collider finally gets service — idle is measured
// from the owner's last packet, not the collider's.
func TestSweepReclaimsParkedUnderCollisions(t *testing.T) {
	const idle = 2 * time.Second
	dcfg, testFlows := ageingDeploy(t, 1<<12, idle, 64)
	early := findEarlyExit(t, dcfg, testFlows)
	dcfg.FlowSlots = 1
	pl, err := New(dcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Park the slot, owner's tail withheld (the leak shape).
	for _, p := range early.Packets[:len(early.Packets)-1] {
		pl.Process(p)
	}
	parkClock := pl.Clock()

	// Collider traffic one second later: swallowed on the parked slot, and
	// it must not reset the slot's age.
	var g trace.LabeledFlow
	for _, f := range testFlows {
		if f.Key != early.Key {
			g = f
			break
		}
	}
	collide := g.Packets[0]
	collide.TS = parkClock + time.Second
	pl.Process(collide)

	// Two seconds after the owner's last packet — but only one second after
	// the collider's — the slot is idle for the timeout and must go. Had
	// the collider refreshed the stamp, this sweep would free nothing.
	if got := sweepFullPass(pl, parkClock+idle); got != 1 {
		t.Fatalf("sweep evicted %d slots, want 1 (collider kept the dead parked slot alive)", got)
	}
	if pl.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after sweep, want 0", pl.ActiveFlows())
	}
	// The collider finally gets the slot.
	next := g.Packets[1]
	next.TS = parkClock + idle
	pl.Process(next)
	if pl.ActiveFlows() != 1 || pl.countActiveSlots() != 1 {
		t.Fatal("collider not served after the dead parked slot was reclaimed")
	}
}

// TestNewShardsRemainder pins the register-budget fix: FlowSlots that do
// not divide evenly by the shard count must still be fully distributed
// (first shards take the remainder), not silently truncated.
func TestNewShardsRemainder(t *testing.T) {
	dcfg, _ := ageingDeploy(t, 1000, 0, 0)
	cases := []struct {
		slots, n int
		want     []int
	}{
		{1000, 3, []int{334, 333, 333}},
		{1000, 7, []int{143, 143, 143, 143, 143, 143, 142}},
		{5, 3, []int{2, 2, 1}},
		{2, 4, []int{1, 1, 1, 1}}, // budget < shards: every shard still gets a slot
		{1 << 16, 4, []int{1 << 14, 1 << 14, 1 << 14, 1 << 14}},
	}
	for _, tc := range cases {
		cfg := dcfg
		cfg.FlowSlots = tc.slots
		shards, err := NewShards(cfg, tc.n)
		if err != nil {
			t.Fatalf("NewShards(%d slots, %d shards): %v", tc.slots, tc.n, err)
		}
		total := 0
		for i, s := range shards {
			if got := s.TableCap(); got != tc.want[i] {
				t.Fatalf("%d slots / %d shards: shard %d has %d slots, want %d",
					tc.slots, tc.n, i, got, tc.want[i])
			}
			total += s.TableCap()
		}
		if tc.slots >= tc.n && total != tc.slots {
			t.Fatalf("%d slots / %d shards: distributed %d, lost %d",
				tc.slots, tc.n, total, tc.slots-total)
		}
	}
}
