package dataplane

import (
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// lifetimeDeploy trains a per-class-lifetime model on a heavy-tailed
// workload (LongIATFraction of the flows rewritten into keepalive patterns
// with 0.6–2s gaps) and returns a deployment config plus the packet stream.
// Training sees the same heavy-tailed flows, so the leaves their windows
// route to learn multi-second idle budgets.
func lifetimeDeploy(t *testing.T) (Config, []trace.LabeledFlow) {
	t.Helper()
	flows := trace.GenerateWith(trace.D3, 120, 33, trace.GenConfig{LongIATFraction: 0.3})
	samples := trace.BuildSamples(flows, 2)
	m, err := core.Train(samples, core.Config{
		Partitions: []int{3, 2}, FeaturesPerSubtree: 4, NumClasses: 13,
		Lifetimes: true,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if c.MaxLifetime() <= 0 {
		t.Fatal("trained model carries no leaf lifetimes")
	}
	return Config{
		Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 1 << 16,
	}, flows
}

// runExpiry replays the interleaved stream through one pipeline, driving
// expiry from packet time once per 16-packet burst — the engine's schedule.
func runExpiry(t *testing.T, cfg Config, flows []trace.LabeledFlow) Stats {
	t.Helper()
	pl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, p := range trace.Interleave(flows, time.Millisecond) {
		pl.Process(p)
		if i%16 == 15 {
			pl.Sweep(pl.Clock())
		}
	}
	return pl.Stats()
}

// TestSweepEvictsKeepalivesWheelKeeps is the per-class-lifetime headline
// pin. Every flow in the workload runs to completion, so its final packet
// releases its entry — any expiry eviction reclaims a LIVE flow. Under a
// global idle timeout tuned for the chatty traffic (300ms, well over its
// IATs), the striped sweep demonstrably evicts the heavy-tailed keepalive
// flows mid-gap (their idle periods are 0.6–2s by construction). The timer
// wheel on the same timeout, armed with the per-leaf lifetimes trained from
// those same gaps, keeps every flow alive to its natural end — and emits
// exactly the digest stream of an expiry-free pipeline.
func TestSweepEvictsKeepalivesWheelKeeps(t *testing.T) {
	cfg, flows := lifetimeDeploy(t)
	const timeout = 300 * time.Millisecond

	// Baseline: no expiry at all — the digest stream ageing must not alter.
	base := runExpiry(t, cfg, flows)
	if base.Evictions != 0 {
		t.Fatalf("baseline evicted %d entries with expiry disabled", base.Evictions)
	}

	scfg := cfg
	scfg.Expiry = ExpirySweep
	scfg.IdleTimeout = timeout
	scfg.SweepStripe = 1 << 16 // full pass per packet: laziness is not the pin
	sweep := runExpiry(t, scfg, flows)
	if sweep.Evictions == 0 {
		t.Fatal("global-timeout sweep evicted nothing; the keepalive workload is not exercising expiry")
	}

	wcfg := cfg
	wcfg.Expiry = ExpiryWheel
	wcfg.IdleTimeout = timeout
	wheel := runExpiry(t, wcfg, flows)
	if wheel.Evictions != 0 || wheel.WheelExpiries != 0 {
		t.Fatalf("wheel evicted %d live flows (%d expiries) despite per-class lifetimes",
			wheel.Evictions, wheel.WheelExpiries)
	}
	if wheel.Digests != base.Digests || wheel.Packets != base.Packets ||
		wheel.ControlPackets != base.ControlPackets {
		t.Fatalf("wheel expiry perturbed inference:\nbase  %+v\nwheel %+v", base, wheel)
	}
	// The sweep's mid-gap evictions are visible in the digest stream: each
	// evicted keepalive restarts at the root subtree and classifies again.
	if sweep.Digests <= base.Digests {
		t.Fatalf("sweep digests %d <= baseline %d: evictions did not hit live flows",
			sweep.Digests, base.Digests)
	}
}
