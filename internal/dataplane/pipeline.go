// Package dataplane simulates the RMT switch pipeline SpliDT deploys onto —
// the reproduction's stand-in for the paper's Tofino1 testbed.
//
// The pipeline executes compiled SpliDT programs with the mechanism of §3.1:
// packets are parsed into PHV fields, the 5-tuple hash locates the flow's
// state in the flow table, reserved registers track the subtree ID (SID) and
// packet count, feature state accumulates through the dependency chain, and
// at each window boundary the match-key generator tables produce range marks
// that the model table matches to either a class (emitted as a digest) or
// the next SID (propagated by a recirculated control packet that also clears
// the flow's feature and dependency-chain registers).
//
// The flow table itself is a first-class subsystem (internal/flowtable) with
// a scheme knob: Config.Table selects the paper's direct-mapped register
// array (the default — colliding flows share state, as on real register
// hardware) or a d-way cuckoo table with a bounded stash whose verified
// lookups keep flows exact well past the collision-free regime.
//
// Flow-table ageing is likewise first-class, as on real packet processors:
// entries carry a packet-time touch stamp, Sweep incrementally reclaims
// entries idle past Config.IdleTimeout (one bounded stripe per call,
// amortised O(1) per packet), and Evict reclaims a specific flow's entry on
// a controller verdict. Reclaims are counted in Stats.Evictions.
//
// Expiry has a scheme knob of its own (Config.Expiry): the striped sweep
// above (the default), or a hierarchical timer wheel (internal/timerwheel)
// that arms a per-entry deadline re-armed on every touch with the flow's
// per-class lifetime — the idle budget its current decision-tree leaf
// learned from training IAT statistics — so chatty classes reclaim fast
// while long-IAT keepalive classes survive gaps a global timeout would
// evict them over.
//
// Resource budgets are enforced at construction through the same
// resources.Profile model the design search uses, so a pipeline that
// constructs is a pipeline that fits the target.
package dataplane

import (
	"fmt"
	"time"

	"splidt/internal/core"
	"splidt/internal/flow"
	"splidt/internal/flowtable"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/timerwheel"
	"splidt/internal/trace"
)

// TableScheme selects the flow-state store the pipeline deploys
// (internal/flowtable).
type TableScheme string

// The flow-table schemes.
const (
	// TableDirect is the direct-mapped register array of the paper's
	// deployment: one slot per hash index, colliding flows share state.
	// The zero value of Config.Table selects it, so existing deployments
	// behave exactly as before the flow-table subsystem existed.
	TableDirect TableScheme = "direct"
	// TableCuckoo is the d-way set-associative store with cuckoo
	// displacement and a bounded stash: full-key verification per entry, so
	// flows never couple and exactness extends to high load factors.
	TableCuckoo TableScheme = "cuckoo"
	// TableOracle is the unbounded exact map — physically unbuildable,
	// allocates per flow, and exists as the ground truth the equivalence
	// tests compare the bounded schemes against.
	TableOracle TableScheme = "oracle"
)

// ParseTableScheme validates a scheme name ("" selects TableDirect).
func ParseTableScheme(s string) (TableScheme, error) {
	switch TableScheme(s) {
	case "", TableDirect:
		return TableDirect, nil
	case TableCuckoo:
		return TableCuckoo, nil
	case TableOracle:
		return TableOracle, nil
	default:
		return "", fmt.Errorf("unknown table scheme %q (valid: %s, %s, %s)",
			s, TableDirect, TableCuckoo, TableOracle)
	}
}

// ExpiryScheme selects the flow-expiry mechanism — how idle entries are
// found and reclaimed.
type ExpiryScheme string

// The expiry schemes.
const (
	// ExpirySweep is the striped scan: Sweep examines SweepStripe cells per
	// call with a wrapping cursor and reclaims entries idle past IdleTimeout.
	// The zero value of Config.Expiry selects it, so existing deployments
	// behave exactly as before the timer-wheel subsystem existed. Reclaim is
	// lazy — an idle entry survives until the cursor next visits its cell —
	// and the timeout is global: every flow gets the same idle budget.
	ExpirySweep ExpiryScheme = "sweep"
	// ExpiryWheel is the hierarchical timer wheel: every live entry carries
	// an armed deadline, touches re-arm it with the flow's per-class
	// lifetime (the current leaf's trained lifetime once classified onto
	// one, the deployment base lifetime before that), and Sweep advances the
	// wheel to the caller's packet time, firing exactly the entries whose
	// deadlines elapsed — O(expired) per advance rather than O(stripe) per
	// call. Requires IdleTimeout > 0 (the base lifetime).
	ExpiryWheel ExpiryScheme = "wheel"
)

// ParseExpiryScheme validates a scheme name ("" selects ExpirySweep).
func ParseExpiryScheme(s string) (ExpiryScheme, error) {
	switch ExpiryScheme(s) {
	case "", ExpirySweep:
		return ExpirySweep, nil
	case ExpiryWheel:
		return ExpiryWheel, nil
	default:
		return "", fmt.Errorf("unknown expiry scheme %q (valid: %s, %s)",
			s, ExpirySweep, ExpiryWheel)
	}
}

// Config assembles a deployment: the hardware target, the trained model and
// its compiled tables, and the flow-table geometry (concurrent flow slots,
// scheme, associativity).
type Config struct {
	Profile  resources.Profile
	Model    *core.Model
	Compiled *rangemark.Compiled
	// FlowSlots is the flow-table register budget: the slot-array length
	// for the direct scheme (flows hash onto slots, collisions share state,
	// as on real hardware), or the bucket-cell budget for the cuckoo scheme
	// (rounded up to a whole number of Ways-wide buckets).
	FlowSlots int
	// Table selects the flow-table scheme; the zero value is TableDirect,
	// preserving the pre-flowtable pipeline exactly.
	Table TableScheme
	// Ways is the cuckoo bucket associativity (default
	// flowtable.DefaultWays). Direct and oracle schemes ignore it.
	Ways int
	// Stash is the cuckoo overflow stash size in entries: 0 selects
	// flowtable.DefaultStash, negative disables the stash (pure bucket
	// table — overflow rejects immediately). Direct and oracle schemes
	// ignore it.
	Stash int
	// Workload, when set, is used for the recirculation budget check.
	Workload trace.Workload
	// IdleTimeout enables flow-table ageing: an entry untouched for at
	// least this long (measured in packet time, not wall clock) becomes
	// reclaimable by Sweep — both live-idle entries and parked early-exit
	// entries whose flow tail never arrived (e.g. because the dispatcher
	// drops a blocked flow's remaining packets). Zero disables ageing:
	// Sweep is a no-op and the pipeline behaves exactly as before the
	// ageing subsystem existed.
	IdleTimeout time.Duration
	// SweepStripe is the number of flow-table cells one Sweep call examines
	// (default 128). Bounding per-call work lets a caller interleave one
	// Sweep per packet burst and keep ageing amortised O(1) per packet,
	// the way hardware flow-table sweep engines share the pipeline with
	// traffic.
	SweepStripe int
	// Expiry selects the flow-expiry mechanism; the zero value is
	// ExpirySweep, preserving the pre-timerwheel pipeline exactly.
	// ExpiryWheel requires IdleTimeout > 0: the timeout becomes the base
	// lifetime armed on flows not yet classified onto a leaf with a trained
	// per-class lifetime (though a compiled model whose largest leaf
	// lifetime exceeds it raises the base to that, so no class is evicted
	// faster than its own training data says it idles).
	Expiry ExpiryScheme
}

// defaultSweepStripe is the SweepStripe applied when the config leaves it
// zero.
const defaultSweepStripe = 128

// Digest is the classification record the pipeline sends to the controller
// when a flow exits the model (§3.1.2).
type Digest struct {
	Key     flow.Key
	Class   int
	At      time.Duration // absolute time of the classifying packet
	Started time.Duration // absolute time of the flow's first packet
	Packets int           // packets observed when classified
	// Epoch is the deployment epoch of the tree that classified the flow: 0
	// for the deployment the pipeline was built with, incremented by each
	// Redeploy. A controller draining a stream across a hitless swap can
	// attribute every digest to the exact tree that produced it.
	Epoch uint64
}

// TTD returns the flow's time-to-detection.
func (d Digest) TTD() time.Duration { return d.At - d.Started }

// Stats aggregates pipeline counters.
type Stats struct {
	Packets        int // data packets processed
	ControlPackets int // recirculated subtree transitions
	Digests        int // classifications emitted
	// Collisions counts packets that could not get exclusive flow state:
	// for the direct scheme, packets that hit a slot owned by another flow
	// (the flows share registers); for the cuckoo scheme, packets of flows
	// the table rejected outright (no bucket way, no displacement path, no
	// stash line — the packet passes through with no state).
	Collisions  int
	RecircBytes int // control-channel bytes
	Evictions   int // flow-table entries reclaimed by Sweep or Evict
	// Kicks counts cuckoo displacements: resident entries moved to their
	// alternate bucket to clear an insertion path (zero for other schemes).
	Kicks int
	// StashInserts counts cuckoo inserts that overflowed into the bounded
	// stash (zero for other schemes).
	StashInserts int
	// WheelExpiries counts entries reclaimed by the timer wheel's expiry
	// callback (wheel expiry only; each is also counted in Evictions, which
	// stays the scheme-neutral reclaim total).
	WheelExpiries int
	// WheelCascades[l-1] counts wheel nodes re-filed downward out of level l
	// when that level's window wrapped (wheel expiry only). High counts in
	// the upper indices mean deadlines routinely land far beyond the lower
	// levels' spans — a signal the tick or slot count is mis-sized for the
	// deployment's lifetimes.
	WheelCascades [timerwheel.DefaultLevels - 1]int
}

// Add folds another pipeline's counters into s. Every Stats field is a
// plain sum, so per-shard counters merge into exactly the totals one
// pipeline would have reported over the union of the traffic. splidt-vet's
// statsmerge analyzer enforces that every Stats field appears here, so a new
// counter cannot silently drop out of the per-shard merge.
//
//splidt:stats-complete Stats
func (s *Stats) Add(o Stats) {
	s.Packets += o.Packets
	s.ControlPackets += o.ControlPackets
	s.Digests += o.Digests
	s.Collisions += o.Collisions
	s.RecircBytes += o.RecircBytes
	s.Evictions += o.Evictions
	s.Kicks += o.Kicks
	s.StashInserts += o.StashInserts
	s.WheelExpiries += o.WheelExpiries
	for i := range s.WheelCascades {
		s.WheelCascades[i] += o.WheelCascades[i]
	}
}

// MergeStats sums per-shard counters into one aggregate.
func MergeStats(shards ...Stats) Stats {
	var out Stats
	for _, s := range shards {
		out.Add(s)
	}
	return out
}

// doneSID parks an entry after an early exit: the flow is classified but
// still has packets in flight, so the entry stays owned (no further
// inference) until the final packet frees it.
const doneSID = 0xFFFF

// Pipeline is one simulated switch pipeline with a deployed SpliDT program.
type Pipeline struct {
	cfg   Config
	parts int
	table flowtable.Store
	stats Stats
	marks []uint32 // per-window scratch, reused so Process never allocates
	// wheel is the hierarchical expiry timer (nil under sweep expiry — the
	// guard every wheel touch point branches on, keeping the sweep hot path
	// identical to the pre-timerwheel pipeline).
	wheel *timerwheel.Wheel
	// baseLifetime is the deadline armed on flows not yet classified onto a
	// leaf with a trained lifetime: max(IdleTimeout, largest compiled leaf
	// lifetime) — conservative before classification, refined per-leaf at
	// window boundaries.
	baseLifetime time.Duration
	// clock is the highest packet timestamp Process has seen. Entries are
	// touch-stamped with it (not the raw packet TS) so ageing stays
	// monotone even when a source replays a trace from time zero — the
	// hardware analogue is the switch's free-running timestamp register.
	clock time.Duration
	// epoch is the deployment epoch of the currently deployed tree (0 at
	// construction, set by Redeploy), stamped into every digest.
	epoch uint64
}

// validate runs the deployment feasibility checks New and NewShards share:
// it fails exactly when the design search's feasibility test would, using
// the same resources model.
func validate(cfg Config) error {
	if cfg.Model == nil || cfg.Compiled == nil {
		return fmt.Errorf("dataplane: model and compiled tables required")
	}
	if cfg.FlowSlots <= 0 {
		return fmt.Errorf("dataplane: non-positive flow slots")
	}
	if _, err := ParseTableScheme(string(cfg.Table)); err != nil {
		return fmt.Errorf("dataplane: %w", err)
	}
	if cfg.Ways < 0 {
		return fmt.Errorf("dataplane: negative table ways")
	}
	expiry, err := ParseExpiryScheme(string(cfg.Expiry))
	if err != nil {
		return fmt.Errorf("dataplane: %w", err)
	}
	if expiry == ExpiryWheel && cfg.IdleTimeout <= 0 {
		return fmt.Errorf("dataplane: wheel expiry requires a positive IdleTimeout (the base flow lifetime)")
	}
	w := cfg.Workload
	if w.Name == "" {
		w = trace.Webserver
	}
	u := resources.EstimateSpliDT(cfg.Model, cfg.Compiled, cfg.FlowSlots, w)
	if err := cfg.Profile.Feasible(u); err != nil {
		return fmt.Errorf("dataplane: deployment infeasible: %w", err)
	}
	return nil
}

// newStore builds the configured flow-table scheme over the FlowSlots
// budget.
func newStore(cfg Config) flowtable.Store {
	switch cfg.Table {
	case TableCuckoo:
		return flowtable.NewCuckoo(flowtable.CuckooConfig{
			Capacity: cfg.FlowSlots,
			Ways:     cfg.Ways,
			Stash:    cfg.Stash,
		})
	case TableOracle:
		return flowtable.NewOracle()
	default:
		return flowtable.NewDirect(cfg.FlowSlots)
	}
}

// newPipeline assembles a pipeline over an already-validated config.
func newPipeline(cfg Config) *Pipeline {
	pl := &Pipeline{
		cfg:   cfg,
		parts: cfg.Model.NumPartitions(),
		table: newStore(cfg),
		marks: make([]uint32, cfg.Compiled.K),
	}
	if cfg.Expiry == ExpiryWheel {
		pl.baseLifetime = cfg.IdleTimeout
		if ml := cfg.Compiled.MaxLifetime(); ml > pl.baseLifetime {
			pl.baseLifetime = ml
		}
		pl.wheel = timerwheel.New(timerwheel.Config{OnExpire: pl.expire})
	}
	return pl
}

// expire is the wheel's expiry callback: an armed entry's deadline elapsed
// without a touch re-arming it, so its flow has been idle for at least its
// (per-class) lifetime. The wheel has already unlinked the node; recover the
// entry through the back-pointer and free its cell.
//
//splidt:hotpath
func (pl *Pipeline) expire(n *timerwheel.Node) {
	e := n.Data.(*flowtable.Entry)
	pl.table.Release(e)
	pl.stats.Evictions++
	pl.stats.WheelExpiries++
}

// New validates the deployment against the hardware profile and builds the
// pipeline.
func New(cfg Config) (*Pipeline, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if cfg.SweepStripe <= 0 {
		cfg.SweepStripe = defaultSweepStripe
	}
	return newPipeline(cfg), nil
}

// NewShards validates the deployment once and builds n pipeline replicas of
// it, together owning exactly the cfg.FlowSlots register budget: each shard
// gets FlowSlots / n slots and the first FlowSlots % n shards take one
// extra, so no slot of the budget is lost to integer division (a shard
// still gets at least 1 slot when FlowSlots < n). The replicas share the
// compiled tables read-only — the tables are frozen here so concurrent
// lookups never mutate them — and each replica keeps a private flow table,
// so a dispatcher that keys flows onto shards with flow.Key.Shard
// preserves single-pipeline per-flow semantics. This is the multi-pipe
// construction the sharded engine runs.
func NewShards(cfg Config, n int) ([]*Pipeline, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataplane: non-positive shard count %d", n)
	}
	// Feasibility is per shard: each replica is its own pipeline with its
	// own register budget, so what must fit the profile is the largest
	// shard's slice of the slot budget, not the total — that is the whole
	// point of scaling flow capacity out across pipes.
	shardMax := cfg
	shardMax.FlowSlots = cfg.FlowSlots / n
	if cfg.FlowSlots%n != 0 {
		shardMax.FlowSlots++
	}
	if shardMax.FlowSlots < 1 {
		shardMax.FlowSlots = 1
	}
	if err := validate(shardMax); err != nil {
		return nil, err
	}
	if cfg.SweepStripe <= 0 {
		cfg.SweepStripe = defaultSweepStripe
	}
	cfg.Compiled.Freeze()
	per, rem := cfg.FlowSlots/n, cfg.FlowSlots%n
	shards := make([]*Pipeline, n)
	for i := range shards {
		slots := per
		if i < rem {
			slots++
		}
		if slots < 1 {
			slots = 1
		}
		shardCfg := cfg
		shardCfg.FlowSlots = slots
		shards[i] = newPipeline(shardCfg)
	}
	return shards, nil
}

// Process runs one packet through the pipeline. It returns a non-nil Digest
// when the packet triggered a final classification.
//
//splidt:hotpath
func (pl *Pipeline) Process(p pkt.Packet) *Digest {
	pl.stats.Packets++
	if p.TS > pl.clock {
		pl.clock = p.TS
	}
	ck := p.Key.Canonical()
	e, st := pl.table.Acquire(ck)
	switch st {
	case flowtable.StatusFresh:
		// Fresh entry: activate the root subtree. Under wheel expiry the
		// flow starts on the base lifetime — the most conservative trained
		// lifetime — until a window boundary classifies it onto a leaf.
		e.SID = 1
		e.Started = p.TS
		e.State.Reset()
		e.PktCount = 0
		if pl.wheel != nil {
			e.Lifetime = pl.baseLifetime
		}
	case flowtable.StatusShared:
		// Direct-scheme hash collision: on register hardware the flows
		// silently share state. Count it and proceed with shared registers.
		pl.stats.Collisions++
	case flowtable.StatusFull:
		// Cuckoo-scheme insert rejection: the table and stash are full, so
		// the flow gets no state and the packet passes through
		// unclassified. Count it as a collision — a packet denied exclusive
		// flow state — and move on; a later packet retries the insert once
		// entries free up.
		pl.stats.Collisions++
		return nil
	}
	if e.SID == doneSID {
		// Parked entry: the early-exited owner holds the registers until its
		// flow-end packet arrives. This mirrors the hardware semantics: the
		// SID register reads doneSID for every packet that reaches it, which
		// gates the feature and model tables off, so a colliding flow's
		// packets pass through unclassified and leave no state — they are
		// counted above as collisions and otherwise ignored. The colliding
		// flow gets no inference until the entry frees (flow end of the
		// owner, Evict, or an idle-timeout Sweep). Only the owner refreshes
		// the parked entry's age: collider packets are not folded into its
		// state, and letting them keep a dead parked entry fresh would
		// starve the collider of its slot forever — the sweep must be able
		// to reclaim a parked entry whose owner went away even while
		// colliders still hash onto it. (Verified schemes never share, so
		// there st is always Owner here.)
		if st != flowtable.StatusShared {
			e.Touched = pl.clock
			if p.Seq >= p.FlowSize {
				pl.table.Release(e)
			} else if pl.wheel != nil {
				pl.wheel.Schedule(e.Timer(), pl.clock+e.Lifetime)
			}
		}
		return nil
	}
	// Live entry: every packet that reaches it refreshes its age, direct-
	// scheme colliders included — they genuinely share the registers (their
	// packets fold into the window state below), so the entry is live as
	// long as anything hits it, like the hardware timestamp register
	// written on access.
	e.Touched = pl.clock
	if pl.wheel != nil {
		// Re-arm the deadline one lifetime out. O(1): unlink from the old
		// slot, relink into the new one.
		pl.wheel.Schedule(e.Timer(), pl.clock+e.Lifetime)
	}

	// Feature collection and engineering: fold the packet into the window
	// registers (simple accumulators, dependency chain, k feature slots).
	e.State.Update(p)
	e.PktCount++

	if !pl.windowEnd(p) {
		return nil
	}

	// Subtree model prediction: key generators → range marks → model table.
	vec := e.State.Snapshot()
	marks := pl.cfg.Compiled.MarksInto(int(e.SID), vec[:], pl.marks)
	rule, ok := pl.cfg.Compiled.Lookup(int(e.SID), marks)
	if !ok {
		// Model tables partition the mark space; a miss means the deployed
		// rules are corrupt.
		//splidt:allow fmt,box — cold panic path: corrupt deployment, never taken per-packet
		panic(fmt.Sprintf("dataplane: model table miss at SID %d marks %v", e.SID, marks))
	}

	if p.Seq >= p.FlowSize || rule.Exit {
		//splidt:allow alloc — one digest per classified flow, the pipeline's output value
		d := &Digest{
			Key:     ck,
			Class:   rule.Class,
			At:      p.TS,
			Started: e.Started,
			Packets: int(e.PktCount),
			Epoch:   pl.epoch,
		}
		pl.stats.Digests++
		if p.Seq >= p.FlowSize {
			pl.table.Release(e) // flow over: free the entry
		} else {
			e.SID = doneSID // early exit: park until the flow ends
			e.State.Reset()
			if pl.wheel != nil {
				// The flow is now classified: park it on its leaf's trained
				// lifetime so a dead tail frees the cell on the class's own
				// idle budget, not the global one.
				if rule.Lifetime > 0 {
					e.Lifetime = rule.Lifetime
				}
				pl.wheel.Schedule(e.Timer(), pl.clock+e.Lifetime)
			}
		}
		return d
	}

	// In-band control channel: one resubmitted packet updates the SID and
	// clears the feature and dependency-chain registers (§3.1.3).
	pl.stats.ControlPackets++
	pl.stats.RecircBytes += pkt.ControlPacketBytes
	e.SID = uint16(rule.Next)
	e.State.Reset()
	if pl.wheel != nil {
		// Window boundary: adopt the leaf's per-class lifetime (if trained)
		// and re-arm — the packet's earlier touch armed the old lifetime.
		if rule.Lifetime > 0 {
			e.Lifetime = rule.Lifetime
		}
		pl.wheel.Schedule(e.Timer(), pl.clock+e.Lifetime)
	}
	return nil
}

// ProcessBytes parses a serialised data packet (pkt.Marshal layout) and
// runs it through the pipeline — the path a wire-attached traffic source
// would take. ts is the capture timestamp. Control packets (pipeline-
// internal) are rejected: the simulator generates its own recirculations.
func (pl *Pipeline) ProcessBytes(data []byte, ts time.Duration) (*Digest, error) {
	if pkt.IsControl(data) {
		return nil, fmt.Errorf("dataplane: control packets are pipeline-internal")
	}
	p, err := pkt.Unmarshal(data, ts)
	if err != nil {
		return nil, err
	}
	return pl.Process(p), nil
}

// windowEnd applies the model's window policy: uniform partitions by
// default, non-uniform boundaries for adaptive-window models.
//
//splidt:hotpath
func (pl *Pipeline) windowEnd(p pkt.Packet) bool {
	if b := pl.cfg.Model.Cfg.WindowBounds; b != nil {
		return p.IsWindowEndBounds(b)
	}
	return p.IsWindowEnd(pl.parts)
}

// Stats returns a copy of the counters, folding in the flow table's
// placement counters (kicks, stash inserts) so they merge and delta like
// every other pipeline counter.
func (pl *Pipeline) Stats() Stats {
	s := pl.stats
	ts := pl.table.Stats()
	s.Kicks = ts.Kicks
	s.StashInserts = ts.StashInserts
	if pl.wheel != nil {
		ws := pl.wheel.Stats()
		for i := 0; i < len(s.WheelCascades) && i < len(ws.Cascades); i++ {
			s.WheelCascades[i] = ws.Cascades[i]
		}
	}
	return s
}

// TableStats returns the flow table's own counters — occupancy and stash
// gauges included, which have no place in the monotone Stats counters.
func (pl *Pipeline) TableStats() flowtable.Stats { return pl.table.Stats() }

// ActiveFlows returns the number of occupied flow-table entries. The count
// is maintained incrementally by the store, so reading it is O(1) — cheap
// enough for the engine's per-burst live snapshots.
func (pl *Pipeline) ActiveFlows() int { return pl.table.Occupied() }

// Sweep advances the flow-table ageing engine by one stripe: it examines
// the next cfg.SweepStripe flow-table cells (wrapping around the table) and
// frees every occupied entry whose last touch is at least IdleTimeout
// before now — live entries of flows that went quiet as well as parked
// early-exit entries whose tail was dropped upstream and would otherwise
// leak forever (stash lines included, under the cuckoo scheme). now is
// packet time (the caller's monotone view of the traffic clock, e.g. the
// newest timestamp a shard worker has processed), never wall clock, so
// sweeping is deterministic for a given packet sequence and sweep schedule.
// It returns how many entries it reclaimed and counts them in
// Stats.Evictions. With IdleTimeout zero, ageing is disabled and Sweep does
// nothing. Sweep never allocates; a full pass over the table costs
// ceil(Cap/SweepStripe) calls, which callers amortise to O(1) work per
// packet by sweeping once per burst, like hardware sweep engines that
// steal idle pipeline cycles.
//
// Under wheel expiry, Sweep is the same "drive expiry from packet time"
// entry point but delegates to the wheel: it advances the wheel to now,
// firing exactly the entries whose armed deadlines elapsed — O(expired) plus
// O(ticks crossed) bookkeeping, instead of a stripe scan. Reclaims are
// counted by the expiry callback (Stats.Evictions and Stats.WheelExpiries).
//
//splidt:hotpath
func (pl *Pipeline) Sweep(now time.Duration) int {
	if pl.wheel != nil {
		return pl.wheel.Advance(now)
	}
	if pl.cfg.IdleTimeout <= 0 {
		return 0
	}
	n := pl.table.Sweep(now, pl.cfg.IdleTimeout, pl.cfg.SweepStripe)
	pl.stats.Evictions += n
	return n
}

// Evict frees the flow's table entry immediately if the flow currently
// owns one, returning whether a reclaim happened. This is the
// controller-initiated ageing path: when policy blocks a flow whose tail
// will be dropped upstream, the entry would otherwise stay parked until an
// idle-timeout sweep finds it. Evict works with ageing disabled, and it is
// a no-op when the flow holds no entry — including the direct-scheme case
// of a slot held by a colliding flow (the slot is that flow's state now;
// evicting it would punish an innocent bystander).
func (pl *Pipeline) Evict(k flow.Key) bool {
	if !pl.table.Evict(k.Canonical()) {
		return false
	}
	pl.stats.Evictions++
	return true
}

// Clock returns the pipeline's packet-time clock: the newest timestamp
// Process has seen. It is the natural `now` for Sweep.
func (pl *Pipeline) Clock() time.Duration { return pl.clock }

// Epoch returns the deployment epoch of the currently deployed tree.
func (pl *Pipeline) Epoch() uint64 { return pl.epoch }

// CheckRedeploy runs the same feasibility validation New would on this
// pipeline's deployment with the model and compiled tables swapped for the
// candidate pair — the admission check a hitless redeploy performs before
// touching any replica. Geometry (slots, scheme, expiry) is the deployed
// one; only the tree changes.
func (pl *Pipeline) CheckRedeploy(m *core.Model, c *rangemark.Compiled) error {
	cfg := pl.cfg
	cfg.Model = m
	cfg.Compiled = c
	return validate(cfg)
}

// Redeploy swaps a freshly compiled tree into the running pipeline — the
// per-replica half of the engine's hitless redeploy. The caller must be the
// goroutine that owns the pipeline (the shard worker, at a burst boundary)
// and must have validated the pair with CheckRedeploy and frozen the
// compiled tables.
//
// Flow state carries across the swap: every live entry keeps its SID, packet
// count, window registers, touch stamp, and armed timer, so flows mid-tree
// continue exactly where they were — the new tables are a superset-compatible
// drop-in when the tree is unchanged. Entries whose SID does not exist in the
// new tree (the tree shrank or was restructured) are reset to the root
// subtree with cleared window state: they re-classify under the new tree
// rather than hitting a model-table miss. Parked early-exit entries (doneSID)
// are left alone — they are already classified and only wait for their flow
// tail. Under wheel expiry the base lifetime is recomputed from the new
// tree's trained per-leaf budgets; per-entry lifetimes re-adopt the new
// leaves' budgets naturally at each flow's next window boundary.
func (pl *Pipeline) Redeploy(m *core.Model, c *rangemark.Compiled, epoch uint64) {
	pl.cfg.Model = m
	pl.cfg.Compiled = c
	pl.parts = m.NumPartitions()
	if c.K != len(pl.marks) {
		pl.marks = make([]uint32, c.K)
	}
	if pl.wheel != nil {
		pl.baseLifetime = pl.cfg.IdleTimeout
		if ml := c.MaxLifetime(); ml > pl.baseLifetime {
			pl.baseLifetime = ml
		}
	}
	pl.table.Walk(func(e *flowtable.Entry) {
		if e.SID == doneSID || c.HasSID(int(e.SID)) {
			return
		}
		// Orphaned SID: the new tree has no such subtree. Restart the flow's
		// inference at the root, on the (new) base lifetime.
		e.SID = 1
		e.State.Reset()
		e.PktCount = 0
		if pl.wheel != nil {
			e.Lifetime = pl.baseLifetime
			pl.wheel.Schedule(e.Timer(), pl.clock+e.Lifetime)
		}
	})
	pl.epoch = epoch
}

// AgeingEnabled reports whether the deployment configured an idle timeout.
// Wheel-expiry deployments always age (they require one).
func (pl *Pipeline) AgeingEnabled() bool { return pl.cfg.IdleTimeout > 0 }

// Expiry returns the deployment's expiry scheme, normalised.
func (pl *Pipeline) Expiry() ExpiryScheme {
	if pl.wheel != nil {
		return ExpiryWheel
	}
	return ExpirySweep
}

// TableCap returns the flow table's total cell count (slot-array length
// for direct; bucket cells plus stash for cuckoo).
func (pl *Pipeline) TableCap() int { return pl.table.Cap() }

// countActiveSlots rescans the flow table; tests use it to cross-check the
// incremental ActiveFlows counter.
func (pl *Pipeline) countActiveSlots() int { return pl.table.ScanOccupied() }

// Replay interleaves labelled flows (flow i shifted by i × spacing), runs
// every packet through the pipeline in timestamp order, and returns the
// digests in emission order keyed back to ground truth.
type ReplayResult struct {
	Digest Digest
	Label  int // ground-truth class of the digested flow
}

// Replay processes complete flows through the pipeline.
func (pl *Pipeline) Replay(flows []trace.LabeledFlow, spacing time.Duration) []ReplayResult {
	labels := make(map[flow.Key]int, len(flows))
	for _, f := range flows {
		labels[f.Key] = f.Label
	}
	var out []ReplayResult
	for _, p := range trace.Interleave(flows, spacing) {
		if d := pl.Process(p); d != nil {
			out = append(out, ReplayResult{Digest: *d, Label: labels[d.Key]})
		}
	}
	return out
}
