// Package dataplane simulates the RMT switch pipeline SpliDT deploys onto —
// the reproduction's stand-in for the paper's Tofino1 testbed.
//
// The pipeline executes compiled SpliDT programs with the mechanism of §3.1:
// packets are parsed into PHV fields, the 5-tuple CRC32 locates the flow's
// register slot, reserved registers track the subtree ID (SID) and packet
// count, feature state accumulates through the dependency chain, and at each
// window boundary the match-key generator tables produce range marks that
// the model table matches to either a class (emitted as a digest) or the
// next SID (propagated by a recirculated control packet that also clears the
// flow's feature and dependency-chain registers).
//
// Flow-table ageing is a first-class subsystem, as on real packet
// processors: slots carry a packet-time touch stamp, Sweep incrementally
// reclaims slots idle past Config.IdleTimeout (one bounded stripe per
// call, amortised O(1) per packet), and Evict reclaims a specific flow's
// slot on a controller verdict. Reclaims are counted in Stats.Evictions.
//
// Resource budgets are enforced at construction through the same
// resources.Profile model the design search uses, so a pipeline that
// constructs is a pipeline that fits the target.
package dataplane

import (
	"fmt"
	"time"

	"splidt/internal/core"
	"splidt/internal/features"
	"splidt/internal/flow"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// Config assembles a deployment: the hardware target, the trained model and
// its compiled tables, and the register array size (concurrent flow slots).
type Config struct {
	Profile  resources.Profile
	Model    *core.Model
	Compiled *rangemark.Compiled
	// FlowSlots is the register array length; flows hash onto slots with
	// CRC32, so it bounds concurrent flows (collisions share state, as on
	// real hardware).
	FlowSlots int
	// Workload, when set, is used for the recirculation budget check.
	Workload trace.Workload
	// IdleTimeout enables flow-table ageing: a slot untouched for at least
	// this long (measured in packet time, not wall clock) becomes
	// reclaimable by Sweep — both live-idle slots and parked early-exit
	// slots whose flow tail never arrived (e.g. because the dispatcher
	// drops a blocked flow's remaining packets). Zero disables ageing:
	// Sweep is a no-op and the pipeline behaves exactly as before the
	// ageing subsystem existed.
	IdleTimeout time.Duration
	// SweepStripe is the number of register slots one Sweep call examines
	// (default 128). Bounding per-call work lets a caller interleave one
	// Sweep per packet burst and keep ageing amortised O(1) per packet,
	// the way hardware flow-table sweep engines share the pipeline with
	// traffic.
	SweepStripe int
}

// defaultSweepStripe is the SweepStripe applied when the config leaves it
// zero.
const defaultSweepStripe = 128

// Digest is the classification record the pipeline sends to the controller
// when a flow exits the model (§3.1.2).
type Digest struct {
	Key     flow.Key
	Class   int
	At      time.Duration // absolute time of the classifying packet
	Started time.Duration // absolute time of the flow's first packet
	Packets int           // packets observed when classified
}

// TTD returns the flow's time-to-detection.
func (d Digest) TTD() time.Duration { return d.At - d.Started }

// Stats aggregates pipeline counters.
type Stats struct {
	Packets        int // data packets processed
	ControlPackets int // recirculated subtree transitions
	Digests        int // classifications emitted
	Collisions     int // packets that hit a slot owned by another flow
	RecircBytes    int // control-channel bytes
	Evictions      int // register slots reclaimed by Sweep or Evict
}

// Add folds another pipeline's counters into s. Every Stats field is a
// plain sum, so per-shard counters merge into exactly the totals one
// pipeline would have reported over the union of the traffic.
func (s *Stats) Add(o Stats) {
	s.Packets += o.Packets
	s.ControlPackets += o.ControlPackets
	s.Digests += o.Digests
	s.Collisions += o.Collisions
	s.RecircBytes += o.RecircBytes
	s.Evictions += o.Evictions
}

// MergeStats sums per-shard counters into one aggregate.
func MergeStats(shards ...Stats) Stats {
	var out Stats
	for _, s := range shards {
		out.Add(s)
	}
	return out
}

type slot struct {
	sid      uint16
	pktCount uint32
	owner    flow.Key
	started  time.Duration
	touched  time.Duration // pipeline clock when a packet last hit the slot
	state    features.FlowState
}

// doneSID parks a slot after an early exit: the flow is classified but still
// has packets in flight, so the slot stays owned (no further inference)
// until the final packet frees it.
const doneSID = 0xFFFF

// Pipeline is one simulated switch pipeline with a deployed SpliDT program.
type Pipeline struct {
	cfg    Config
	parts  int
	slots  []slot
	stats  Stats
	active int      // occupied slots, maintained incrementally by Process
	marks  []uint32 // per-window scratch, reused so Process never allocates
	// clock is the highest packet timestamp Process has seen. Slots are
	// touch-stamped with it (not the raw packet TS) so ageing stays
	// monotone even when a source replays a trace from time zero — the
	// hardware analogue is the switch's free-running timestamp register.
	clock time.Duration
	// sweepPos is the ageing engine's cursor into the register array; each
	// Sweep call advances it by one stripe, wrapping around.
	sweepPos int
}

// validate runs the deployment feasibility checks New and NewShards share:
// it fails exactly when the design search's feasibility test would, using
// the same resources model.
func validate(cfg Config) error {
	if cfg.Model == nil || cfg.Compiled == nil {
		return fmt.Errorf("dataplane: model and compiled tables required")
	}
	if cfg.FlowSlots <= 0 {
		return fmt.Errorf("dataplane: non-positive flow slots")
	}
	w := cfg.Workload
	if w.Name == "" {
		w = trace.Webserver
	}
	u := resources.EstimateSpliDT(cfg.Model, cfg.Compiled, cfg.FlowSlots, w)
	if err := cfg.Profile.Feasible(u); err != nil {
		return fmt.Errorf("dataplane: deployment infeasible: %w", err)
	}
	return nil
}

// New validates the deployment against the hardware profile and builds the
// pipeline.
func New(cfg Config) (*Pipeline, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if cfg.SweepStripe <= 0 {
		cfg.SweepStripe = defaultSweepStripe
	}
	return &Pipeline{
		cfg:   cfg,
		parts: cfg.Model.NumPartitions(),
		slots: make([]slot, cfg.FlowSlots),
		marks: make([]uint32, cfg.Compiled.K),
	}, nil
}

// NewShards validates the deployment once and builds n pipeline replicas of
// it, together owning exactly the cfg.FlowSlots register budget: each shard
// gets FlowSlots / n slots and the first FlowSlots % n shards take one
// extra, so no slot of the budget is lost to integer division (a shard
// still gets at least 1 slot when FlowSlots < n). The replicas share the
// compiled tables read-only — the tables are frozen here so concurrent
// lookups never mutate them — and each replica keeps private register
// state, so a dispatcher that keys flows onto shards with flow.Key.Shard
// preserves single-pipeline per-flow semantics. This is the multi-pipe
// construction the sharded engine runs.
func NewShards(cfg Config, n int) ([]*Pipeline, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataplane: non-positive shard count %d", n)
	}
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if cfg.SweepStripe <= 0 {
		cfg.SweepStripe = defaultSweepStripe
	}
	cfg.Compiled.Freeze()
	per, rem := cfg.FlowSlots/n, cfg.FlowSlots%n
	shards := make([]*Pipeline, n)
	for i := range shards {
		slots := per
		if i < rem {
			slots++
		}
		if slots < 1 {
			slots = 1
		}
		shardCfg := cfg
		shardCfg.FlowSlots = slots
		shards[i] = &Pipeline{
			cfg:   shardCfg,
			parts: cfg.Model.NumPartitions(),
			slots: make([]slot, slots),
			marks: make([]uint32, cfg.Compiled.K),
		}
	}
	return shards, nil
}

// Process runs one packet through the pipeline. It returns a non-nil Digest
// when the packet triggered a final classification.
func (pl *Pipeline) Process(p pkt.Packet) *Digest {
	pl.stats.Packets++
	if p.TS > pl.clock {
		pl.clock = p.TS
	}
	ck := p.Key.Canonical()
	idx := int(p.Key.SymHash() % uint32(len(pl.slots)))
	s := &pl.slots[idx]

	if s.sid == 0 {
		// Fresh slot: activate the root subtree.
		s.sid = 1
		s.owner = ck
		s.started = p.TS
		s.state.Reset()
		s.pktCount = 0
		pl.active++
	} else if s.owner != ck {
		// Hash collision: on hardware the flows would silently share
		// registers. Count it and proceed with shared state.
		pl.stats.Collisions++
	}
	if s.sid == doneSID {
		// Parked slot: the early-exited owner holds the registers until its
		// flow-end packet arrives. This mirrors the hardware semantics: the
		// SID register reads doneSID for every packet that hashes here,
		// which gates the feature and model tables off, so a colliding
		// flow's packets pass through unclassified and leave no state —
		// they are counted above as collisions and otherwise ignored. The
		// colliding flow gets no inference until the slot frees (flow end
		// of the owner, Evict, or an idle-timeout Sweep). Only the owner
		// refreshes the parked slot's age: collider packets are not folded
		// into its state, and letting them keep a dead parked slot fresh
		// would starve the collider of its slot forever — the sweep must be
		// able to reclaim a parked slot whose owner went away even while
		// colliders still hash onto it.
		if s.owner == ck {
			s.touched = pl.clock
			if p.Seq >= p.FlowSize {
				*s = slot{}
				pl.active--
			}
		}
		return nil
	}
	// Live slot: every packet that hashes here refreshes its age, colliders
	// included — they genuinely share the registers (their packets fold
	// into the window state below), so the slot is live as long as anything
	// hits it, like the hardware timestamp register written on access.
	s.touched = pl.clock

	// Feature collection and engineering: fold the packet into the window
	// registers (simple accumulators, dependency chain, k feature slots).
	s.state.Update(p)
	s.pktCount++

	if !pl.windowEnd(p) {
		return nil
	}

	// Subtree model prediction: key generators → range marks → model table.
	vec := s.state.Snapshot()
	marks := pl.cfg.Compiled.MarksInto(int(s.sid), vec[:], pl.marks)
	rule, ok := pl.cfg.Compiled.Lookup(int(s.sid), marks)
	if !ok {
		// Model tables partition the mark space; a miss means the deployed
		// rules are corrupt.
		panic(fmt.Sprintf("dataplane: model table miss at SID %d marks %v", s.sid, marks))
	}

	if p.Seq >= p.FlowSize || rule.Exit {
		d := &Digest{
			Key:     ck,
			Class:   rule.Class,
			At:      p.TS,
			Started: s.started,
			Packets: int(s.pktCount),
		}
		pl.stats.Digests++
		if p.Seq >= p.FlowSize {
			*s = slot{} // flow over: free the slot
			pl.active--
		} else {
			s.sid = doneSID // early exit: park until the flow ends
			s.state.Reset()
		}
		return d
	}

	// In-band control channel: one resubmitted packet updates the SID and
	// clears the feature and dependency-chain registers (§3.1.3).
	pl.stats.ControlPackets++
	pl.stats.RecircBytes += pkt.ControlPacketBytes
	s.sid = uint16(rule.Next)
	s.state.Reset()
	return nil
}

// ProcessBytes parses a serialised data packet (pkt.Marshal layout) and
// runs it through the pipeline — the path a wire-attached traffic source
// would take. ts is the capture timestamp. Control packets (pipeline-
// internal) are rejected: the simulator generates its own recirculations.
func (pl *Pipeline) ProcessBytes(data []byte, ts time.Duration) (*Digest, error) {
	if pkt.IsControl(data) {
		return nil, fmt.Errorf("dataplane: control packets are pipeline-internal")
	}
	p, err := pkt.Unmarshal(data, ts)
	if err != nil {
		return nil, err
	}
	return pl.Process(p), nil
}

// windowEnd applies the model's window policy: uniform partitions by
// default, non-uniform boundaries for adaptive-window models.
func (pl *Pipeline) windowEnd(p pkt.Packet) bool {
	if b := pl.cfg.Model.Cfg.WindowBounds; b != nil {
		return p.IsWindowEndBounds(b)
	}
	return p.IsWindowEnd(pl.parts)
}

// Stats returns a copy of the counters.
func (pl *Pipeline) Stats() Stats { return pl.stats }

// ActiveFlows returns the number of occupied slots. The count is maintained
// incrementally by Process, so reading it is O(1) — cheap enough for the
// engine's per-burst live snapshots.
func (pl *Pipeline) ActiveFlows() int { return pl.active }

// Sweep advances the flow-table ageing engine by one stripe: it examines
// the next cfg.SweepStripe register slots (wrapping around the array) and
// frees every occupied slot whose last touch is at least IdleTimeout before
// now — live slots of flows that went quiet as well as parked early-exit
// slots whose tail was dropped upstream and would otherwise leak forever.
// now is packet time (the caller's monotone view of the traffic clock, e.g.
// the newest timestamp a shard worker has processed), never wall clock, so
// sweeping is deterministic for a given packet sequence and sweep schedule.
// It returns how many slots it reclaimed and counts them in
// Stats.Evictions. With IdleTimeout zero, ageing is disabled and Sweep does
// nothing. Sweep never allocates; a full pass over the array costs
// ceil(FlowSlots/SweepStripe) calls, which callers amortise to O(1) work
// per packet by sweeping once per burst, like hardware sweep engines that
// steal idle pipeline cycles.
func (pl *Pipeline) Sweep(now time.Duration) int {
	if pl.cfg.IdleTimeout <= 0 {
		return 0
	}
	stripe := pl.cfg.SweepStripe
	if stripe > len(pl.slots) {
		stripe = len(pl.slots)
	}
	evicted := 0
	for i := 0; i < stripe; i++ {
		s := &pl.slots[pl.sweepPos]
		pl.sweepPos++
		if pl.sweepPos == len(pl.slots) {
			pl.sweepPos = 0
		}
		if s.sid != 0 && now-s.touched >= pl.cfg.IdleTimeout {
			*s = slot{}
			pl.active--
			pl.stats.Evictions++
			evicted++
		}
	}
	return evicted
}

// Evict frees the flow's register slot immediately if the flow currently
// owns it, returning whether a slot was reclaimed. This is the
// controller-initiated ageing path: when policy blocks a flow whose tail
// will be dropped upstream, the slot would otherwise stay parked until an
// idle-timeout sweep finds it. Evict works with ageing disabled, and it is
// a no-op when the slot is empty or owned by a colliding flow (the slot is
// that flow's state now — evicting it would punish an innocent bystander).
func (pl *Pipeline) Evict(k flow.Key) bool {
	ck := k.Canonical()
	s := &pl.slots[int(k.SymHash()%uint32(len(pl.slots)))]
	if s.sid == 0 || s.owner != ck {
		return false
	}
	*s = slot{}
	pl.active--
	pl.stats.Evictions++
	return true
}

// Clock returns the pipeline's packet-time clock: the newest timestamp
// Process has seen. It is the natural `now` for Sweep.
func (pl *Pipeline) Clock() time.Duration { return pl.clock }

// AgeingEnabled reports whether the deployment configured an idle timeout.
func (pl *Pipeline) AgeingEnabled() bool { return pl.cfg.IdleTimeout > 0 }

// countActiveSlots scans the register array; tests use it to cross-check
// the incremental ActiveFlows counter.
func (pl *Pipeline) countActiveSlots() int {
	n := 0
	for i := range pl.slots {
		if pl.slots[i].sid != 0 {
			n++
		}
	}
	return n
}

// Replay interleaves labelled flows (flow i shifted by i × spacing), runs
// every packet through the pipeline in timestamp order, and returns the
// digests in emission order keyed back to ground truth.
type ReplayResult struct {
	Digest Digest
	Label  int // ground-truth class of the digested flow
}

// Replay processes complete flows through the pipeline.
func (pl *Pipeline) Replay(flows []trace.LabeledFlow, spacing time.Duration) []ReplayResult {
	labels := make(map[flow.Key]int, len(flows))
	for _, f := range flows {
		labels[f.Key] = f.Label
	}
	var out []ReplayResult
	for _, p := range trace.Interleave(flows, spacing) {
		if d := pl.Process(p); d != nil {
			out = append(out, ReplayResult{Digest: *d, Label: labels[d.Key]})
		}
	}
	return out
}
