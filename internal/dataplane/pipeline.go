// Package dataplane simulates the RMT switch pipeline SpliDT deploys onto —
// the reproduction's stand-in for the paper's Tofino1 testbed.
//
// The pipeline executes compiled SpliDT programs with the mechanism of §3.1:
// packets are parsed into PHV fields, the 5-tuple CRC32 locates the flow's
// register slot, reserved registers track the subtree ID (SID) and packet
// count, feature state accumulates through the dependency chain, and at each
// window boundary the match-key generator tables produce range marks that
// the model table matches to either a class (emitted as a digest) or the
// next SID (propagated by a recirculated control packet that also clears the
// flow's feature and dependency-chain registers).
//
// Resource budgets are enforced at construction through the same
// resources.Profile model the design search uses, so a pipeline that
// constructs is a pipeline that fits the target.
package dataplane

import (
	"fmt"
	"time"

	"splidt/internal/core"
	"splidt/internal/features"
	"splidt/internal/flow"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// Config assembles a deployment: the hardware target, the trained model and
// its compiled tables, and the register array size (concurrent flow slots).
type Config struct {
	Profile  resources.Profile
	Model    *core.Model
	Compiled *rangemark.Compiled
	// FlowSlots is the register array length; flows hash onto slots with
	// CRC32, so it bounds concurrent flows (collisions share state, as on
	// real hardware).
	FlowSlots int
	// Workload, when set, is used for the recirculation budget check.
	Workload trace.Workload
}

// Digest is the classification record the pipeline sends to the controller
// when a flow exits the model (§3.1.2).
type Digest struct {
	Key     flow.Key
	Class   int
	At      time.Duration // absolute time of the classifying packet
	Started time.Duration // absolute time of the flow's first packet
	Packets int           // packets observed when classified
}

// TTD returns the flow's time-to-detection.
func (d Digest) TTD() time.Duration { return d.At - d.Started }

// Stats aggregates pipeline counters.
type Stats struct {
	Packets        int // data packets processed
	ControlPackets int // recirculated subtree transitions
	Digests        int // classifications emitted
	Collisions     int // packets that hit a slot owned by another flow
	RecircBytes    int // control-channel bytes
}

// Add folds another pipeline's counters into s. Every Stats field is a
// plain sum, so per-shard counters merge into exactly the totals one
// pipeline would have reported over the union of the traffic.
func (s *Stats) Add(o Stats) {
	s.Packets += o.Packets
	s.ControlPackets += o.ControlPackets
	s.Digests += o.Digests
	s.Collisions += o.Collisions
	s.RecircBytes += o.RecircBytes
}

// MergeStats sums per-shard counters into one aggregate.
func MergeStats(shards ...Stats) Stats {
	var out Stats
	for _, s := range shards {
		out.Add(s)
	}
	return out
}

type slot struct {
	sid      uint16
	pktCount uint32
	owner    flow.Key
	started  time.Duration
	state    features.FlowState
}

// doneSID parks a slot after an early exit: the flow is classified but still
// has packets in flight, so the slot stays owned (no further inference)
// until the final packet frees it.
const doneSID = 0xFFFF

// Pipeline is one simulated switch pipeline with a deployed SpliDT program.
type Pipeline struct {
	cfg    Config
	parts  int
	slots  []slot
	stats  Stats
	active int      // occupied slots, maintained incrementally by Process
	marks  []uint32 // per-window scratch, reused so Process never allocates
}

// validate runs the deployment feasibility checks New and NewShards share:
// it fails exactly when the design search's feasibility test would, using
// the same resources model.
func validate(cfg Config) error {
	if cfg.Model == nil || cfg.Compiled == nil {
		return fmt.Errorf("dataplane: model and compiled tables required")
	}
	if cfg.FlowSlots <= 0 {
		return fmt.Errorf("dataplane: non-positive flow slots")
	}
	w := cfg.Workload
	if w.Name == "" {
		w = trace.Webserver
	}
	u := resources.EstimateSpliDT(cfg.Model, cfg.Compiled, cfg.FlowSlots, w)
	if err := cfg.Profile.Feasible(u); err != nil {
		return fmt.Errorf("dataplane: deployment infeasible: %w", err)
	}
	return nil
}

// New validates the deployment against the hardware profile and builds the
// pipeline.
func New(cfg Config) (*Pipeline, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	return &Pipeline{
		cfg:   cfg,
		parts: cfg.Model.NumPartitions(),
		slots: make([]slot, cfg.FlowSlots),
		marks: make([]uint32, cfg.Compiled.K),
	}, nil
}

// NewShards validates the deployment once and builds n pipeline replicas of
// it, each owning an equal share of the register budget (cfg.FlowSlots / n
// slots, at least 1). The replicas share the compiled tables read-only —
// the tables are frozen here so concurrent lookups never mutate them — and
// each replica keeps private register state, so a dispatcher that keys
// flows onto shards with flow.Key.Shard preserves single-pipeline per-flow
// semantics. This is the multi-pipe construction the sharded engine runs.
func NewShards(cfg Config, n int) ([]*Pipeline, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataplane: non-positive shard count %d", n)
	}
	if err := validate(cfg); err != nil {
		return nil, err
	}
	cfg.Compiled.Freeze()
	per := cfg.FlowSlots / n
	if per < 1 {
		per = 1
	}
	shardCfg := cfg
	shardCfg.FlowSlots = per
	shards := make([]*Pipeline, n)
	for i := range shards {
		shards[i] = &Pipeline{
			cfg:   shardCfg,
			parts: cfg.Model.NumPartitions(),
			slots: make([]slot, per),
			marks: make([]uint32, cfg.Compiled.K),
		}
	}
	return shards, nil
}

// Process runs one packet through the pipeline. It returns a non-nil Digest
// when the packet triggered a final classification.
func (pl *Pipeline) Process(p pkt.Packet) *Digest {
	pl.stats.Packets++
	ck := p.Key.Canonical()
	idx := int(p.Key.SymHash() % uint32(len(pl.slots)))
	s := &pl.slots[idx]

	if s.sid == 0 {
		// Fresh slot: activate the root subtree.
		s.sid = 1
		s.owner = ck
		s.started = p.TS
		s.state.Reset()
		s.pktCount = 0
		pl.active++
	} else if s.owner != ck {
		// Hash collision: on hardware the flows would silently share
		// registers. Count it and proceed with shared state.
		pl.stats.Collisions++
	}

	if s.sid == doneSID {
		// Flow already classified via early exit; drain remaining packets
		// and free the slot at flow end.
		if s.owner == ck && p.Seq >= p.FlowSize {
			*s = slot{}
			pl.active--
		}
		return nil
	}

	// Feature collection and engineering: fold the packet into the window
	// registers (simple accumulators, dependency chain, k feature slots).
	s.state.Update(p)
	s.pktCount++

	if !pl.windowEnd(p) {
		return nil
	}

	// Subtree model prediction: key generators → range marks → model table.
	vec := s.state.Snapshot()
	marks := pl.cfg.Compiled.MarksInto(int(s.sid), vec[:], pl.marks)
	rule, ok := pl.cfg.Compiled.Lookup(int(s.sid), marks)
	if !ok {
		// Model tables partition the mark space; a miss means the deployed
		// rules are corrupt.
		panic(fmt.Sprintf("dataplane: model table miss at SID %d marks %v", s.sid, marks))
	}

	if p.Seq >= p.FlowSize || rule.Exit {
		d := &Digest{
			Key:     ck,
			Class:   rule.Class,
			At:      p.TS,
			Started: s.started,
			Packets: int(s.pktCount),
		}
		pl.stats.Digests++
		if p.Seq >= p.FlowSize {
			*s = slot{} // flow over: free the slot
			pl.active--
		} else {
			s.sid = doneSID // early exit: park until the flow ends
			s.state.Reset()
		}
		return d
	}

	// In-band control channel: one resubmitted packet updates the SID and
	// clears the feature and dependency-chain registers (§3.1.3).
	pl.stats.ControlPackets++
	pl.stats.RecircBytes += pkt.ControlPacketBytes
	s.sid = uint16(rule.Next)
	s.state.Reset()
	return nil
}

// ProcessBytes parses a serialised data packet (pkt.Marshal layout) and
// runs it through the pipeline — the path a wire-attached traffic source
// would take. ts is the capture timestamp. Control packets (pipeline-
// internal) are rejected: the simulator generates its own recirculations.
func (pl *Pipeline) ProcessBytes(data []byte, ts time.Duration) (*Digest, error) {
	if pkt.IsControl(data) {
		return nil, fmt.Errorf("dataplane: control packets are pipeline-internal")
	}
	p, err := pkt.Unmarshal(data, ts)
	if err != nil {
		return nil, err
	}
	return pl.Process(p), nil
}

// windowEnd applies the model's window policy: uniform partitions by
// default, non-uniform boundaries for adaptive-window models.
func (pl *Pipeline) windowEnd(p pkt.Packet) bool {
	if b := pl.cfg.Model.Cfg.WindowBounds; b != nil {
		return p.IsWindowEndBounds(b)
	}
	return p.IsWindowEnd(pl.parts)
}

// Stats returns a copy of the counters.
func (pl *Pipeline) Stats() Stats { return pl.stats }

// ActiveFlows returns the number of occupied slots. The count is maintained
// incrementally by Process, so reading it is O(1) — cheap enough for the
// engine's per-burst live snapshots.
func (pl *Pipeline) ActiveFlows() int { return pl.active }

// countActiveSlots scans the register array; tests use it to cross-check
// the incremental ActiveFlows counter.
func (pl *Pipeline) countActiveSlots() int {
	n := 0
	for i := range pl.slots {
		if pl.slots[i].sid != 0 {
			n++
		}
	}
	return n
}

// Replay interleaves labelled flows (flow i shifted by i × spacing), runs
// every packet through the pipeline in timestamp order, and returns the
// digests in emission order keyed back to ground truth.
type ReplayResult struct {
	Digest Digest
	Label  int // ground-truth class of the digested flow
}

// Replay processes complete flows through the pipeline.
func (pl *Pipeline) Replay(flows []trace.LabeledFlow, spacing time.Duration) []ReplayResult {
	labels := make(map[flow.Key]int, len(flows))
	for _, f := range flows {
		labels[f.Key] = f.Label
	}
	var out []ReplayResult
	for _, p := range trace.Interleave(flows, spacing) {
		if d := pl.Process(p); d != nil {
			out = append(out, ReplayResult{Digest: *d, Label: labels[d.Key]})
		}
	}
	return out
}
