package dataplane

import (
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

func deploy(t *testing.T, id trace.DatasetID, n int, cfg core.Config, slots int) (*Pipeline, *core.Model, []trace.LabeledFlow) {
	t.Helper()
	flows := trace.Generate(id, n, 33)
	samples := trace.BuildSamples(flows, len(cfg.Partitions))
	train, _ := trace.Split(samples, 0.7)
	m, err := core.Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pl, err := New(Config{
		Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: slots,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Test on the held-out 30% of the underlying flows.
	testFlows := flows[int(float64(n)*0.7):]
	return pl, m, testFlows
}

func TestPipelineMatchesSoftwareModel(t *testing.T) {
	// The headline equivalence: per-packet pipeline execution must classify
	// every flow exactly as the software model does on its windows.
	cfg := core.Config{Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13}
	pl, m, testFlows := deploy(t, trace.D3, 400, cfg, 1<<16)
	for _, f := range testFlows {
		var got *Digest
		for _, p := range f.Packets {
			if d := pl.Process(p); d != nil {
				if got != nil {
					t.Fatal("flow digested twice")
				}
				dd := *d
				got = &dd
			}
		}
		if got == nil {
			t.Fatal("flow never digested")
		}
		want := m.Classify(trace.BuildSamples([]trace.LabeledFlow{f}, len(cfg.Partitions))[0].Windows)
		if got.Class != want {
			t.Fatalf("pipeline class %d != software %d", got.Class, want)
		}
	}
}

func TestRecirculationCounts(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 4}
	pl, m, testFlows := deploy(t, trace.D2, 300, cfg, 1<<16)
	for _, f := range testFlows {
		before := pl.Stats().ControlPackets
		for _, p := range f.Packets {
			pl.Process(p)
		}
		transitions := m.Transitions(trace.BuildSamples([]trace.LabeledFlow{f}, 3)[0].Windows)
		if got := pl.Stats().ControlPackets - before; got != transitions {
			t.Fatalf("control packets %d != software transitions %d", got, transitions)
		}
	}
	s := pl.Stats()
	if s.RecircBytes != s.ControlPackets*64 {
		t.Fatalf("recirc bytes %d != %d × 64", s.RecircBytes, s.ControlPackets)
	}
	if s.ControlPackets >= s.Packets {
		t.Fatal("control packets should be far fewer than data packets")
	}
}

func TestSlotFreedAfterDigest(t *testing.T) {
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	pl, _, testFlows := deploy(t, trace.D2, 200, cfg, 1<<16)
	f := testFlows[0]
	for _, p := range f.Packets {
		pl.Process(p)
	}
	if pl.ActiveFlows() != 0 {
		t.Fatalf("%d slots still active after flow completed", pl.ActiveFlows())
	}
}

func TestCollisionCounting(t *testing.T) {
	// Two distinct flows forced into one slot (array of size 1).
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	flows := trace.Generate(trace.D2, 100, 7)
	samples := trace.BuildSamples(flows, 1)
	m, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(Config{Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := flows[0], flows[1]
	pl.Process(a.Packets[0])
	pl.Process(b.Packets[0]) // same slot, different owner
	if pl.Stats().Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestReplayAccuracy(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4}
	pl, _, testFlows := deploy(t, trace.D2, 400, cfg, 1<<18)
	results := pl.Replay(testFlows, 10*time.Millisecond)
	if len(results) != len(testFlows) {
		t.Fatalf("%d digests for %d flows", len(results), len(testFlows))
	}
	conf := metrics.NewConfusion(4)
	for _, r := range results {
		conf.Add(r.Label, r.Digest.Class)
	}
	if f1 := conf.MacroF1(); f1 < 0.5 {
		t.Fatalf("replay F1 %.3f too low", f1)
	}
	for _, r := range results {
		if r.Digest.TTD() < 0 {
			t.Fatal("negative TTD")
		}
		if r.Digest.Packets <= 0 {
			t.Fatal("digest without packets")
		}
	}
}

func TestInfeasibleDeploymentRejected(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 6, NumClasses: 4}
	flows := trace.Generate(trace.D2, 100, 7)
	samples := trace.BuildSamples(flows, 2)
	m, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// 100M flows at k=6 cannot fit Tofino1's register SRAM.
	if _, err := New(Config{
		Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 100_000_000,
	}); err == nil {
		t.Fatal("infeasible deployment accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	flows := trace.Generate(trace.D2, 60, 7)
	m, _ := core.Train(trace.BuildSamples(flows, 1), cfg)
	c, _ := rangemark.Compile(m)
	if _, err := New(Config{Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 0}); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestDigestTTDPositiveOnOffsetFlows(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	pl, _, testFlows := deploy(t, trace.D2, 200, cfg, 1<<16)
	results := pl.Replay(testFlows, time.Second)
	for _, r := range results {
		d := r.Digest
		if d.At < d.Started {
			t.Fatalf("digest at %v before flow start %v", d.At, d.Started)
		}
	}
}

func BenchmarkProcess(b *testing.B) {
	cfg := core.Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4}
	flows := trace.Generate(trace.D2, 400, 33)
	samples := trace.BuildSamples(flows, 2)
	m, err := core.Train(samples, cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := New(Config{Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	var pkts []int
	_ = pkts
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		f := flows[i%len(flows)]
		p := f.Packets[n%len(f.Packets)]
		pl.Process(p)
		if n%len(f.Packets) == len(f.Packets)-1 {
			i++
		}
	}
}

func TestProcessBytes(t *testing.T) {
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	pl, _, testFlows := deploy(t, trace.D2, 200, cfg, 1<<16)
	f := testFlows[0]
	var got *Digest
	for _, p := range f.Packets {
		d, err := pl.ProcessBytes(pkt.Marshal(p, nil), p.TS)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			got = d
		}
	}
	if got == nil {
		t.Fatal("wire-fed flow never digested")
	}
	// Control packets are pipeline-internal.
	ctrl := pkt.MarshalControl(pkt.Control{NextSID: 2}, nil)
	if _, err := pl.ProcessBytes(ctrl, 0); err == nil {
		t.Fatal("control packet accepted from the wire")
	}
	if _, err := pl.ProcessBytes([]byte{1, 2, 3}, 0); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAdaptiveWindowPipelineMatchesSoftware(t *testing.T) {
	bounds := pkt.Bounds{0.2, 0.6, 1}
	flows := trace.Generate(trace.D2, 300, 33)
	samples := trace.BuildSamplesBounds(flows, bounds)
	train, _ := trace.Split(samples, 0.7)
	m, err := core.Train(train, core.Config{
		Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 4,
		WindowBounds: bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(Config{Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows[210:] {
		var got *Digest
		for _, p := range f.Packets {
			if d := pl.Process(p); d != nil {
				got = d
			}
		}
		if got == nil {
			t.Fatal("adaptive-window flow never digested")
		}
		want := m.Classify(trace.BuildSamplesBounds([]trace.LabeledFlow{f}, bounds)[0].Windows)
		if got.Class != want {
			t.Fatalf("adaptive pipeline class %d != software %d", got.Class, want)
		}
	}
}

func TestStatsAddAndMerge(t *testing.T) {
	a := Stats{Packets: 10, ControlPackets: 2, Digests: 3, Collisions: 1, RecircBytes: 128}
	b := Stats{Packets: 5, ControlPackets: 1, Digests: 2, Collisions: 0, RecircBytes: 64}
	want := Stats{Packets: 15, ControlPackets: 3, Digests: 5, Collisions: 1, RecircBytes: 192}
	if got := MergeStats(a, b); got != want {
		t.Fatalf("MergeStats = %+v, want %+v", got, want)
	}
	a.Add(b)
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	if got := MergeStats(); got != (Stats{}) {
		t.Fatalf("MergeStats() = %+v, want zero", got)
	}
}

func TestNewShards(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13}
	flows := trace.Generate(trace.D3, 400, 33)
	samples := trace.BuildSamples(flows, len(cfg.Partitions))
	train, _ := trace.Split(samples, 0.7)
	m, err := core.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	testFlows := flows[int(float64(len(flows))*0.7):]
	dcfg := Config{Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: 1 << 16}

	shards, err := NewShards(dcfg, 4)
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	for i, s := range shards {
		if got := s.TableCap(); got != 1<<14 {
			t.Fatalf("shard %d has %d slots, want %d (even split)", i, got, 1<<14)
		}
	}

	// Each replica independently classifies exactly like a solo pipeline.
	f := testFlows[0]
	var a, b *Digest
	for _, p := range f.Packets {
		if d := shards[0].Process(p); d != nil {
			a = d
		}
	}
	for _, p := range f.Packets {
		if d := shards[1].Process(p); d != nil {
			b = d
		}
	}
	if a == nil || b == nil || a.Class != b.Class {
		t.Fatalf("replicas disagree: %+v vs %+v", a, b)
	}

	if _, err := NewShards(dcfg, 0); err == nil {
		t.Fatal("NewShards(0) did not error")
	}
	bad := dcfg
	bad.Model = nil
	if _, err := NewShards(bad, 2); err == nil {
		t.Fatal("NewShards with nil model did not error")
	}
}

func TestActiveFlowsCounterMatchesScan(t *testing.T) {
	// ActiveFlows is maintained incrementally so live engine snapshots can
	// read it in O(1); it must agree with a register-array scan at every
	// point of a replay, including early-exit parking and slot frees.
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	pl, _, testFlows := deploy(t, trace.D2, 300, cfg, 1<<16)
	for _, p := range trace.Interleave(testFlows, time.Millisecond) {
		pl.Process(p)
		if pl.ActiveFlows() != pl.countActiveSlots() {
			t.Fatalf("incremental ActiveFlows %d != scanned %d", pl.ActiveFlows(), pl.countActiveSlots())
		}
	}
	if pl.ActiveFlows() != 0 {
		t.Fatalf("%d flows active after all flows completed", pl.ActiveFlows())
	}
}
