// Package resources models the hardware budgets of programmable data planes
// (stages, TCAM bits, per-stage register SRAM, recirculation bandwidth) and
// provides the estimation and feasibility tests SpliDT's design search and
// simulator share (§3.2.1 "Resource Estimation and Feasibility Testing").
//
// The model is analytic and deliberately explicit: per-flow state occupies
// register SRAM spread over pipeline stages; match-action logic occupies
// stages and TCAM bits; recirculation occupies resubmission bandwidth. A
// configuration is feasible when all four budgets hold simultaneously —
// this single code path backs the feasibility bit in the BO loop, the
// capacity checks in the RMT simulator, and the resource columns of the
// paper's tables.
package resources

import (
	"fmt"
	"math"
	"math/rand"

	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// Profile describes one hardware target.
type Profile struct {
	Name string
	// Stages is the number of match-action pipeline stages.
	Stages int
	// OverheadStages are consumed by parsing, hashing, and bookkeeping.
	OverheadStages int
	// TCAMBits is the total ternary match capacity.
	TCAMBits int64
	// RegisterBitsPerStage is the stateful SRAM available to register arrays
	// in one stage.
	RegisterBitsPerStage int64
	// RecircBps is the resubmission channel capacity in bits/sec.
	RecircBps float64
	// MATsPerStage bounds parallel match tables in one stage.
	MATsPerStage int
}

// Tofino1 models the paper's primary target (Table 3: 6.4 Mbit TCAM, 12
// stages; 100 Gbps recirculation). The per-stage register SRAM is calibrated
// so the k-versus-flows trade of the paper's footnote 1 and Table 3 emerges:
// top-k systems fit k≈6 at 100K flows, k≈4 at 500K, and only k≈2 at 1M.
func Tofino1() Profile {
	return Profile{
		Name:                 "tofino1",
		Stages:               12,
		OverheadStages:       1,
		TCAMBits:             6_400_000,
		RegisterBitsPerStage: 16 << 20, // 16 Mbit of stateful SRAM per stage
		RecircBps:            100e9,
		MATsPerStage:         16,
	}
}

// Tofino2 doubles most budgets (20 stages on the real part).
func Tofino2() Profile {
	p := Tofino1()
	p.Name = "tofino2"
	p.Stages = 20
	p.TCAMBits *= 2
	p.RegisterBitsPerStage *= 2
	p.RecircBps = 200e9
	return p
}

// X2 approximates the Xsight Labs X2 switch.
func X2() Profile {
	p := Tofino1()
	p.Name = "x2"
	p.Stages = 16
	p.TCAMBits = 8_000_000
	return p
}

// Pensando approximates an AMD Pensando DPU-class SmartNIC: fewer stages and
// less state (the paper notes ~40K flows at k=6 versus 65K on Tofino1).
func Pensando() Profile {
	return Profile{
		Name:                 "pensando",
		Stages:               8,
		OverheadStages:       1,
		TCAMBits:             2_000_000,
		RegisterBitsPerStage: 20 << 20,
		RecircBps:            50e9,
		MATsPerStage:         8,
	}
}

// Profiles lists the builtin targets.
func Profiles() []Profile { return []Profile{Tofino1(), Tofino2(), X2(), Pensando()} }

// SIDBits is the subtree-ID register width.
const SIDBits = 16

// ReservedBits is the per-flow reserved state (§3.1.1): the subtree ID
// register plus the packet counter. The counter counts within the current
// window (it resets at every boundary and feeds the pkt_count feature), so
// it is a feature register and scales with the deployment's value width —
// this is what lets 8-bit deployments reach 4M flows in Figure 12.
func ReservedBits(valueBits int) int { return SIDBits + valueBits }

// Usage captures one deployment candidate's resource demands.
type Usage struct {
	// Flows is the number of concurrent flows the deployment must support.
	Flows int
	// FeatureRegisterBits is the per-flow feature register footprint
	// (k × value width) — the "Register Size (bits)" column of Table 3.
	FeatureRegisterBits int
	// StateBitsPerFlow is the complete per-flow state: feature registers,
	// reserved registers, and the dependency chain.
	StateBitsPerFlow int
	// DepChainDepth is the longest feature dependency chain (pipeline
	// stages needed in sequence to compute features).
	DepChainDepth int
	// LogicStages is the number of stages the match-action program needs
	// beyond state storage.
	LogicStages int
	// TCAMEntries and TCAMBits are the rule count and ternary bit usage.
	TCAMEntries int
	TCAMBits    int64
	// RecircMeanBps is the steady-state recirculation load.
	RecircMeanBps float64
}

// StateStages returns the stages consumed by per-flow state: SRAM volume
// and dependency-chain sequencing both bound it from below.
func (p Profile) StateStages(u Usage) int {
	bits := int64(u.Flows) * int64(u.StateBitsPerFlow)
	n := int((bits + p.RegisterBitsPerStage - 1) / p.RegisterBitsPerStage)
	if n < u.DepChainDepth {
		n = u.DepChainDepth
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Feasible reports whether the usage fits the profile, with a reason when it
// does not.
func (p Profile) Feasible(u Usage) error {
	if u.Flows <= 0 {
		return fmt.Errorf("resources: non-positive flow target")
	}
	if u.TCAMBits > p.TCAMBits {
		return fmt.Errorf("resources: TCAM %d bits exceeds budget %d", u.TCAMBits, p.TCAMBits)
	}
	stages := p.OverheadStages + p.StateStages(u) + u.LogicStages
	if stages > p.Stages {
		return fmt.Errorf("resources: %d stages needed, %d available", stages, p.Stages)
	}
	if u.RecircMeanBps > p.RecircBps {
		return fmt.Errorf("resources: recirculation %.0f bps exceeds %.0f", u.RecircMeanBps, p.RecircBps)
	}
	return nil
}

// MaxFlows returns the largest concurrent flow count the profile can hold
// for a given per-flow state footprint and logic stage demand (0 when the
// logic alone does not fit).
func (p Profile) MaxFlows(stateBitsPerFlow, depChain, logicStages int) int {
	free := p.Stages - p.OverheadStages - logicStages
	if depChain > free {
		return 0
	}
	if free <= 0 || stateBitsPerFlow <= 0 {
		return 0
	}
	return int(int64(free) * p.RegisterBitsPerStage / int64(stateBitsPerFlow))
}

// RecircMeanBps returns the steady-state recirculation bandwidth of a
// deployment: by Little's law, flows complete at rate N/T, and each flow
// emits one control packet per partition transition (partitions−1 in
// total), §3.1.3.
func RecircMeanBps(flows, partitions int, w trace.Workload) float64 {
	if partitions <= 1 {
		return 0
	}
	perFlow := float64(partitions - 1)
	return w.CompletionRate(flows) * perFlow * pkt.ControlPacketBytes * 8
}

// RecircStats estimates mean and standard deviation of recirculation
// bandwidth in bits/sec over one-second windows, modelling diurnal/bursty
// rate modulation as a lognormal factor (the paper reports mean ± std in
// Tables 1 and 5).
func RecircStats(flows, partitions int, w trace.Workload, seed int64) (mean, std float64) {
	base := RecircMeanBps(flows, partitions, w)
	if base == 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	const windows = 256
	const sigma = 0.45 // workload burstiness of the completion process
	var sum, sum2 float64
	for i := 0; i < windows; i++ {
		f := math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
		x := base * f
		sum += x
		sum2 += x * x
	}
	mean = sum / windows
	v := sum2/windows - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

// Mbps converts bits/sec to Mbps for reporting.
func Mbps(bps float64) float64 { return bps / 1e6 }
