package resources

import (
	"splidt/internal/core"
	"splidt/internal/features"
	"splidt/internal/rangemark"
	"splidt/internal/trace"
)

// SpliDTLogicStages is the match-action stage demand of the SpliDT program
// beyond state storage: operator-selection MATs, the k match-key generator
// tables (parallel within a stage), and the model table (§3.1).
const SpliDTLogicStages = 3

// ValueBits returns the register width of a model's features.
func ValueBits(m *core.Model) int {
	if b := m.Cfg.QuantizeBits; b > 0 && b < 32 {
		return b
	}
	return 32
}

// DepChainDepth returns the longest feature dependency chain across all
// features the model consults (§3.1.1; the paper observes at most 3).
func DepChainDepth(m *core.Model) int {
	depth := 1
	for _, f := range m.TotalFeatures() {
		if f < features.NumTotal {
			if d := features.ID(f).DependencyDepth(); d > depth {
				depth = d
			}
		}
	}
	return depth
}

// StateBitsPerFlow returns a SpliDT deployment's complete per-flow state:
// k feature registers at the value width, the reserved SID/counter
// registers, and one intermediate register per dependency-chain stage
// beyond the first.
func StateBitsPerFlow(k, valueBits, depChain int) int {
	chain := 0
	if depChain > 1 {
		chain = (depChain - 1) * valueBits
	}
	return k*valueBits + ReservedBits(valueBits) + chain
}

// EstimateSpliDT builds the resource usage of a compiled SpliDT model at a
// concurrency target under a workload — the numbers the feasibility test
// consumes and Tables 1/3/5 report.
func EstimateSpliDT(m *core.Model, c *rangemark.Compiled, flows int, w trace.Workload) Usage {
	vb := ValueBits(m)
	k := m.Cfg.FeaturesPerSubtree
	chain := DepChainDepth(m)
	mean := RecircMeanBps(flows, m.NumPartitions(), w)
	return Usage{
		Flows:               flows,
		FeatureRegisterBits: k * vb,
		StateBitsPerFlow:    StateBitsPerFlow(k, vb, chain),
		DepChainDepth:       chain,
		LogicStages:         SpliDTLogicStages,
		TCAMEntries:         c.Entries(),
		TCAMBits:            int64(c.Bits()),
		RecircMeanBps:       mean,
	}
}

// MaxFlowsSpliDT returns the flow capacity of a SpliDT configuration on a
// profile (ignoring TCAM, which Feasible checks separately).
func MaxFlowsSpliDT(p Profile, k, valueBits, depChain int) int {
	return p.MaxFlows(StateBitsPerFlow(k, valueBits, depChain), depChain, SpliDTLogicStages)
}

// EstimateRecirc returns recirculation statistics for a model under a
// workload at a flow target (Tables 1 and 5).
func EstimateRecirc(m *core.Model, flows int, w trace.Workload, seed int64) (meanBps, stdBps float64) {
	return RecircStats(flows, m.NumPartitions(), w, seed)
}
