package resources

import (
	"testing"

	"splidt/internal/core"
	"splidt/internal/rangemark"
	"splidt/internal/trace"
)

func TestProfilesSane(t *testing.T) {
	for _, p := range Profiles() {
		if p.Stages <= p.OverheadStages {
			t.Errorf("%s: no usable stages", p.Name)
		}
		if p.TCAMBits <= 0 || p.RegisterBitsPerStage <= 0 || p.RecircBps <= 0 {
			t.Errorf("%s: non-positive budget", p.Name)
		}
	}
}

func TestTofino1MatchesPaperBudget(t *testing.T) {
	p := Tofino1()
	if p.TCAMBits != 6_400_000 || p.Stages != 12 {
		t.Fatalf("Tofino1 = %d bits / %d stages, want 6.4Mb / 12 (Table 3)", p.TCAMBits, p.Stages)
	}
}

func TestStateStages(t *testing.T) {
	p := Tofino1()
	u := Usage{Flows: 1_000_000, StateBitsPerFlow: 64, DepChainDepth: 1}
	// 64 Mbit / 16 Mbit per stage = 4 stages.
	if got := p.StateStages(u); got != 4 {
		t.Fatalf("StateStages = %d, want 4", got)
	}
	u = Usage{Flows: 1000, StateBitsPerFlow: 64, DepChainDepth: 3}
	if got := p.StateStages(u); got != 3 {
		t.Fatalf("dep chain must floor stages at 3, got %d", got)
	}
}

func TestFeasible(t *testing.T) {
	p := Tofino1()
	good := Usage{
		Flows: 100_000, FeatureRegisterBits: 128, StateBitsPerFlow: 224,
		DepChainDepth: 2, LogicStages: 3, TCAMEntries: 5_000,
		TCAMBits: 1_000_000, RecircMeanBps: 10e6,
	}
	if err := p.Feasible(good); err != nil {
		t.Fatalf("good config infeasible: %v", err)
	}
	bad := good
	bad.TCAMBits = p.TCAMBits + 1
	if p.Feasible(bad) == nil {
		t.Fatal("TCAM overflow accepted")
	}
	bad = good
	bad.RecircMeanBps = p.RecircBps * 2
	if p.Feasible(bad) == nil {
		t.Fatal("recirc overflow accepted")
	}
	bad = good
	bad.Flows = 100_000_000 // state alone needs > 12 stages
	if p.Feasible(bad) == nil {
		t.Fatal("stage overflow accepted")
	}
	bad = good
	bad.Flows = 0
	if p.Feasible(bad) == nil {
		t.Fatal("zero flows accepted")
	}
}

func TestMaxFlowsMonotoneInState(t *testing.T) {
	p := Tofino1()
	small := p.MaxFlows(64, 1, 3)
	big := p.MaxFlows(256, 1, 3)
	if small <= big {
		t.Fatalf("more state per flow should lower capacity: %d vs %d", small, big)
	}
	if p.MaxFlows(64, 20, 3) != 0 {
		t.Fatal("impossible dep chain should yield 0 flows")
	}
	if p.MaxFlows(0, 1, 3) != 0 {
		t.Fatal("zero state bits should yield 0 (guard)")
	}
}

func TestMaxFlowsSupportsMillions(t *testing.T) {
	// SpliDT at k=2, 32-bit, shallow dependency chain: the paper scales to
	// 1M flows on Tofino1.
	got := MaxFlowsSpliDT(Tofino1(), 2, 32, 1)
	if got < 1_000_000 {
		t.Fatalf("k=2 capacity %d < 1M flows", got)
	}
	// At k=6 the same target cannot hold 1M flows (footnote 1's trade).
	if MaxFlowsSpliDT(Tofino1(), 6, 32, 1) >= 1_000_000 {
		t.Fatal("k=6 should not reach 1M flows on Tofino1")
	}
}

func TestFewerFeaturesMoreFlows(t *testing.T) {
	// The k-vs-flows trade (paper footnote 1).
	p := Tofino1()
	k4 := MaxFlowsSpliDT(p, 4, 32, 2)
	k6 := MaxFlowsSpliDT(p, 6, 32, 2)
	if k6 >= k4 {
		t.Fatalf("k=6 capacity %d not below k=4 capacity %d", k6, k4)
	}
}

func TestLowerPrecisionMoreFlows(t *testing.T) {
	// Figure 12: halving precision roughly doubles capacity.
	p := Tofino1()
	b32 := MaxFlowsSpliDT(p, 4, 32, 1)
	b16 := MaxFlowsSpliDT(p, 4, 16, 1)
	b8 := MaxFlowsSpliDT(p, 4, 8, 1)
	if b16 <= b32 || b8 <= b16 {
		t.Fatalf("precision scaling broken: 32→%d, 16→%d, 8→%d", b32, b16, b8)
	}
}

func TestRecircMeanBps(t *testing.T) {
	// 1M flows, 7 partitions, Hadoop: 1e6/60 completions/s × 6 × 512 bits.
	got := RecircMeanBps(1_000_000, 7, trace.Hadoop)
	want := 1e6 / 60.0 * 6 * 512
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("recirc = %v, want ≈ %v", got, want)
	}
	if RecircMeanBps(1_000_000, 1, trace.Hadoop) != 0 {
		t.Fatal("single partition must not recirculate")
	}
}

func TestRecircWithinPaperEnvelope(t *testing.T) {
	// Table 5's worst case is ~60 Mbps (D7, HD, 1M flows, ~6 partitions):
	// ≤ 0.05% of the 100 Gbps channel.
	bps := RecircMeanBps(1_000_000, 7, trace.Hadoop)
	if Mbps(bps) > 100 {
		t.Fatalf("recirc %v Mbps implausibly high", Mbps(bps))
	}
	if bps/Tofino1().RecircBps > 0.001 {
		t.Fatalf("recirc fraction %.5f above 0.1%%", bps/Tofino1().RecircBps)
	}
}

func TestHadoopRecircExceedsWebserver(t *testing.T) {
	hd := RecircMeanBps(500_000, 5, trace.Hadoop)
	ws := RecircMeanBps(500_000, 5, trace.Webserver)
	if hd <= ws {
		t.Fatalf("HD %v ≤ WS %v; shorter flows must recirculate more", hd, ws)
	}
}

func TestRecircStats(t *testing.T) {
	mean, std := RecircStats(1_000_000, 5, trace.Hadoop, 1)
	if mean <= 0 || std <= 0 {
		t.Fatalf("stats = %v ± %v, want positive", mean, std)
	}
	base := RecircMeanBps(1_000_000, 5, trace.Hadoop)
	if mean < base*0.7 || mean > base*1.3 {
		t.Fatalf("stat mean %v far from analytic %v", mean, base)
	}
	m0, s0 := RecircStats(1_000_000, 1, trace.Hadoop, 1)
	if m0 != 0 || s0 != 0 {
		t.Fatal("single partition stats must be zero")
	}
}

func TestStateBitsPerFlow(t *testing.T) {
	// k=4 × 32 bits + (16 SID + 32 counter) reserved + 1 chain register.
	if got := StateBitsPerFlow(4, 32, 2); got != 4*32+ReservedBits(32)+32 {
		t.Fatalf("StateBitsPerFlow = %d", got)
	}
	if got := StateBitsPerFlow(4, 32, 1); got != 4*32+ReservedBits(32) {
		t.Fatalf("chainless StateBitsPerFlow = %d", got)
	}
	// The counter scales with register precision (Figure 12's 4M point):
	// an 8-bit k=1 deployment needs 8 + 16 + 8 = 32 bits per flow.
	if got := StateBitsPerFlow(1, 8, 1); got != 32 {
		t.Fatalf("8-bit StateBitsPerFlow = %d, want 32", got)
	}
}

func TestEightBitReachesFourMillionFlows(t *testing.T) {
	if got := MaxFlowsSpliDT(Tofino1(), 1, 8, 1); got < 4_000_000 {
		t.Fatalf("8-bit k=1 capacity %d < 4M (Figure 12)", got)
	}
}

func TestEstimateSpliDT(t *testing.T) {
	flows := trace.Generate(trace.D2, 300, 5)
	samples := trace.BuildSamples(flows, 3)
	m, err := core.Train(samples, core.Config{
		Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	u := EstimateSpliDT(m, c, 500_000, trace.Webserver)
	if u.FeatureRegisterBits != 4*32 {
		t.Fatalf("feature register bits = %d, want 128", u.FeatureRegisterBits)
	}
	if u.TCAMEntries != c.Entries() {
		t.Fatal("TCAM entries mismatch")
	}
	if u.DepChainDepth < 1 || u.DepChainDepth > 3 {
		t.Fatalf("dep chain %d outside [1,3]", u.DepChainDepth)
	}
	if err := Tofino1().Feasible(u); err != nil {
		t.Fatalf("typical config infeasible: %v", err)
	}
}

func TestValueBits(t *testing.T) {
	m := &core.Model{Cfg: core.Config{QuantizeBits: 16}}
	if ValueBits(m) != 16 {
		t.Fatal("quantised value bits")
	}
	m.Cfg.QuantizeBits = 0
	if ValueBits(m) != 32 {
		t.Fatal("default value bits")
	}
}

func TestMbps(t *testing.T) {
	if Mbps(5e6) != 5 {
		t.Fatal("Mbps conversion")
	}
}
