package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"splidt/internal/baselines"
	"splidt/internal/bo"
	"splidt/internal/dataplane"
	"splidt/internal/flow"
	"splidt/internal/metrics"
	"splidt/internal/trace"
)

// TTDCurve is one system's time-to-detection distribution with its F1.
type TTDCurve struct {
	System string
	F1     float64
	ECDF   *metrics.ECDF // observations in milliseconds
}

// Quantile returns the q-th TTD quantile in milliseconds.
func (c TTDCurve) Quantile(q float64) float64 { return c.ECDF.Quantile(q) }

// Figure10Result reproduces Figure 10 for one dataset and environment:
// per-flow time-to-detection ECDFs of SpliDT (measured on the simulated
// pipeline) and the baselines (classification at their final inference
// point).
type Figure10Result struct {
	Dataset trace.DatasetID
	Env     string
	Curves  []TTDCurve
}

// Figure10 replays workload-shaped test traffic through a deployed SpliDT
// pipeline and compares detection-time distributions against the baselines.
func Figure10(env *Env, w trace.Workload) (Figure10Result, error) {
	out := Figure10Result{Dataset: env.Dataset, Env: w.Name}

	// Train SpliDT (multi-partition winner) and deploy it on the simulator.
	res, store := env.Search(bo.DefaultSpace())
	tp, ok := BestAtFlows(res, store, 100_000)
	if !ok {
		return out, fmt.Errorf("figure10: no feasible SpliDT config")
	}
	pl, err := dataplane.New(dataplane.Config{
		Profile: env.Profile, Model: tp.Model, Compiled: tp.Compiled,
		FlowSlots: 1 << 18, Workload: w,
	})
	if err != nil {
		return out, fmt.Errorf("figure10: deploy: %w", err)
	}

	// Replay the test flows unmodified (the model was trained on this
	// timing), then shape detection times to the environment: each flow
	// draws a lifetime from the workload distribution, and its measured
	// TTD scales by target/original duration — detection happens at the
	// same *fraction* of the flow regardless of how long the flow lives.
	_, testFlows := env.FlowSplit()
	rng := rand.New(rand.NewSource(env.Seed ^ 0xF16))
	targets := make(map[flowKeyT]time.Duration, len(testFlows))
	origDur := make(map[flowKeyT]time.Duration, len(testFlows))
	for _, f := range testFlows {
		targets[f.Key] = w.SampleDuration(rng)
		n := len(f.Packets)
		origDur[f.Key] = f.Packets[n-1].TS - f.Packets[0].TS
	}

	results := pl.Replay(testFlows, time.Millisecond)
	var ttdMS []float64
	conf := metrics.NewConfusion(env.Classes)
	for _, r := range results {
		ttd := scaleTTD(r.Digest.TTD(), origDur[r.Digest.Key], targets[r.Digest.Key])
		ttdMS = append(ttdMS, float64(ttd)/float64(time.Millisecond))
		conf.Add(r.Label, r.Digest.Class)
	}
	out.Curves = append(out.Curves, TTDCurve{
		System: "SpliDT", F1: conf.MacroF1(), ECDF: metrics.NewECDF(ttdMS),
	})

	// Baselines: NetBeacon's final inference lands on its last exponential
	// phase boundary (2^⌊log2 n⌋ packets); Leo's on the flow's last packet.
	trainS, testS := env.Split(1)
	nb, err := baselines.TrainNetBeacon(trainS, testS, baselines.Options{
		Classes: env.Classes, FlowTarget: 100_000, Profile: env.Profile,
	})
	if err != nil {
		return out, fmt.Errorf("figure10: NB: %w", err)
	}
	leo, err := baselines.TrainLeo(trainS, testS, baselines.Options{
		Classes: env.Classes, FlowTarget: 100_000, Profile: env.Profile,
	})
	if err != nil {
		return out, fmt.Errorf("figure10: Leo: %w", err)
	}

	var nbTTD, leoTTD []float64
	for _, f := range testFlows {
		n := len(f.Packets)
		phase := 1
		for phase*2 <= n {
			phase *= 2
		}
		nbAt := f.Packets[phase-1].TS - f.Packets[0].TS
		nbScaled := scaleTTD(nbAt, origDur[f.Key], targets[f.Key])
		nbTTD = append(nbTTD, float64(nbScaled)/float64(time.Millisecond))
		leoTTD = append(leoTTD, float64(targets[f.Key])/float64(time.Millisecond))
	}
	out.Curves = append(out.Curves,
		TTDCurve{System: "NetBeacon", F1: nb.F1, ECDF: metrics.NewECDF(nbTTD)},
		TTDCurve{System: "Leo", F1: leo.F1, ECDF: metrics.NewECDF(leoTTD)},
	)
	return out, nil
}

// Render prints TTD quantiles per system.
func (r Figure10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — %v time-to-detection ECDF, %s environment\n", r.Dataset, r.Env)
	t := newTable("System", "F1", "p25 (ms)", "p50 (ms)", "p75 (ms)", "p90 (ms)", "p99 (ms)")
	for _, c := range r.Curves {
		t.add(c.System, c.F1,
			fmt.Sprintf("%.1f", c.Quantile(0.25)),
			fmt.Sprintf("%.1f", c.Quantile(0.50)),
			fmt.Sprintf("%.1f", c.Quantile(0.75)),
			fmt.Sprintf("%.1f", c.Quantile(0.90)),
			fmt.Sprintf("%.1f", c.Quantile(0.99)))
	}
	b.WriteString(t.String())
	return b.String()
}

// flowKeyT aliases the flow key type used for per-flow lookups.
type flowKeyT = flow.Key

// scaleTTD maps a detection time measured on the original trace onto the
// environment's flow lifetime: same detection fraction, workload-shaped
// duration.
func scaleTTD(ttd, orig, target time.Duration) time.Duration {
	if orig <= 0 {
		return ttd
	}
	return time.Duration(float64(ttd) * float64(target) / float64(orig))
}
