package experiments

import (
	"fmt"
	"time"

	"splidt/internal/bo"
	"splidt/internal/core"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// Figure7Result is the BO convergence curve: best feasible F1 through each
// iteration.
type Figure7Result struct {
	Dataset trace.DatasetID
	BestF1  []float64
}

// Figure7 runs the design search from scratch (no warm-start anchors — the
// study measures how fast BO converges on its own) and records the curve.
func Figure7(env *Env) Figure7Result {
	prev := env.DisableWarmstart
	env.DisableWarmstart = true
	defer func() { env.DisableWarmstart = prev }()
	res, _ := env.Search(bo.DefaultSpace())
	return Figure7Result{Dataset: env.Dataset, BestF1: res.BestByIteration}
}

// ConvergedAt returns the first iteration (1-based) reaching within eps of
// the final best, and the final best.
func (r Figure7Result) ConvergedAt(eps float64) (int, float64) {
	if len(r.BestF1) == 0 {
		return 0, 0
	}
	final := r.BestF1[len(r.BestF1)-1]
	for i, v := range r.BestF1 {
		if v >= final-eps {
			return i + 1, final
		}
	}
	return len(r.BestF1), final
}

// Render prints the convergence series.
func (r Figure7Result) Render() string {
	t := newTable("Iteration", "Best F1")
	for i, v := range r.BestF1 {
		t.add(i+1, v)
	}
	it, final := r.ConvergedAt(0.005)
	return fmt.Sprintf("Figure 7 — %v BO convergence (peak %.3f reached by iteration %d)\n%s",
		r.Dataset, final, it, t)
}

// Table4Result is the per-iteration stage cost breakdown of the framework
// (Table 4): dataset fetch, partitioned training, optimizer, rule
// generation, and backend (resource estimation / feasibility).
type Table4Result struct {
	Dataset   trace.DatasetID
	Fetch     time.Duration
	Training  time.Duration
	Optimizer time.Duration
	Rulegen   time.Duration
	Backend   time.Duration
}

// Total returns the summed per-iteration time.
func (r Table4Result) Total() time.Duration {
	return r.Fetch + r.Training + r.Optimizer + r.Rulegen + r.Backend
}

// Table4 times one representative iteration of the framework on a mid-size
// configuration.
func Table4(env *Env) (Table4Result, error) {
	out := Table4Result{Dataset: env.Dataset}
	p := bo.Point{Depth: 9, K: 4, Partitions: []int{3, 3, 3}}

	start := time.Now()
	train, test := env.Split(len(p.Partitions))
	out.Fetch = time.Since(start)

	start = time.Now()
	m, err := core.Train(train, core.Config{
		Partitions: p.Partitions, FeaturesPerSubtree: p.K, NumClasses: env.Classes,
	})
	if err != nil {
		return out, fmt.Errorf("table4: %w", err)
	}
	for _, s := range test {
		m.Classify(s.Windows)
	}
	out.Training = time.Since(start)

	// Optimizer stage: one surrogate fit + acquisition over a synthetic
	// history the size of a warm BO loop.
	start = time.Now()
	X := make([][]float64, 64)
	y := make([]float64, 64)
	for i := range X {
		X[i] = []float64{float64(i % 30), float64(i % 7), float64(i % 5), 1, float64(i % 9)}
		y[i] = float64(i%10) / 10
	}
	f := bo.FitForest(X, y, bo.DefaultForestConfig(), env.Seed)
	for i := range X {
		f.Predict(X[i])
		f.Uncertainty(X[i])
	}
	out.Optimizer = time.Since(start)

	start = time.Now()
	c, err := rangemark.Compile(m)
	if err != nil {
		return out, fmt.Errorf("table4: %w", err)
	}
	out.Rulegen = time.Since(start)

	start = time.Now()
	u := resources.EstimateSpliDT(m, c, 500_000, trace.Webserver)
	_ = env.Profile.Feasible(u)
	out.Backend = time.Since(start)
	return out, nil
}

// Render prints the stage timings in the paper's layout.
func (r Table4Result) Render() string {
	t := newTable("Stage", r.Dataset.String())
	t.add("Fetch", r.Fetch.String())
	t.add("Training", r.Training.String())
	t.add("Optimizer", r.Optimizer.String())
	t.add("Rulegen", r.Rulegen.String())
	t.add("Backend", r.Backend.String())
	t.add("Time", r.Total().String())
	return fmt.Sprintf("Table 4 — average time per iteration across framework stages\n%s", t)
}
