package experiments

import (
	"fmt"
	"strings"

	"splidt/internal/bo"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// Table5Cell is one recirculation measurement (Mbps, mean ± std).
type Table5Cell struct {
	Flows      int
	Mean, Std  float64
	Partitions int
}

// Table5Result reproduces Table 5 for one dataset: maximum recirculation
// bandwidth across environments and flow scales, using the partition count
// of the best configuration at each scale (single-partition winners
// recirculate nothing — the paper's 0.0 ± 0.0 rows).
type Table5Result struct {
	Dataset trace.DatasetID
	WS, HD  []Table5Cell
}

// Table5 derives recirculation loads from the design search's per-target
// winners.
func Table5(env *Env) (Table5Result, error) {
	out := Table5Result{Dataset: env.Dataset}
	res, store := env.Search(bo.DefaultSpace())
	for _, flows := range FlowTargets {
		tp, ok := BestAtFlows(res, store, flows)
		if !ok {
			return out, fmt.Errorf("table5: no feasible config at %d flows", flows)
		}
		parts := tp.Model.NumPartitions()
		for _, w := range trace.Workloads() {
			mean, std := resources.RecircStats(flows, parts, w, env.Seed)
			cell := Table5Cell{
				Flows: flows, Partitions: parts,
				Mean: resources.Mbps(mean), Std: resources.Mbps(std),
			}
			if w.Name == "WS" {
				out.WS = append(out.WS, cell)
			} else {
				out.HD = append(out.HD, cell)
			}
		}
	}
	return out, nil
}

// MaxMbps returns the largest mean cell across both environments.
func (r Table5Result) MaxMbps() float64 {
	m := 0.0
	for _, c := range append(append([]Table5Cell(nil), r.WS...), r.HD...) {
		if c.Mean > m {
			m = c.Mean
		}
	}
	return m
}

// Render prints the table in the paper's layout.
func (r Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — %v max recirculation bandwidth (Mbps)\n", r.Dataset)
	t := newTable("Env", "Data", "100K", "500K", "1M")
	row := func(envName string, cells []Table5Cell) {
		vals := make([]interface{}, 0, 5)
		vals = append(vals, envName, r.Dataset.String())
		for _, c := range cells {
			vals = append(vals, fmt.Sprintf("%.1f ± %.1f", c.Mean, c.Std))
		}
		t.add(vals...)
	}
	row("WS", r.WS)
	row("HD", r.HD)
	b.WriteString(t.String())
	return b.String()
}
