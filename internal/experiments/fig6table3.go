package experiments

import (
	"fmt"
	"strings"

	"splidt/internal/baselines"
	"splidt/internal/bo"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// SystemRow is one system's measurement at one flow target — a point of
// Figure 6's frontier and a cell group of Table 3.
type SystemRow struct {
	System       string
	Flows        int
	F1           float64
	Depth        int
	Partitions   int
	Features     int // total distinct stateful features used
	TCAMEntries  int
	RegisterBits int
}

// Fig6Table3Result carries, for one dataset, the per-target rows of all
// three systems (Figure 6's frontier points and Table 3's rows) plus
// SpliDT's full Pareto frontier from the design search.
type Fig6Table3Result struct {
	Dataset trace.DatasetID
	Rows    []SystemRow // NB, Leo, SpliDT at each flow target
	Pareto  []bo.Evaluation
}

// Fig6Table3 runs the head-to-head evaluation: one SpliDT design search and
// one baseline design search per flow target.
func Fig6Table3(env *Env) (Fig6Table3Result, error) {
	out := Fig6Table3Result{Dataset: env.Dataset}
	trainS, testS := env.Split(1)

	res, store := env.Search(bo.DefaultSpace())
	out.Pareto = res.Pareto

	for _, flows := range FlowTargets {
		nb, err := baselines.TrainNetBeacon(trainS, testS, baselines.Options{
			Classes: env.Classes, FlowTarget: flows, Profile: env.Profile,
		})
		if err != nil {
			return out, fmt.Errorf("fig6: NB at %d: %w", flows, err)
		}
		out.Rows = append(out.Rows, SystemRow{
			System: "NB", Flows: flows, F1: nb.F1, Depth: nb.Depth, Partitions: 1,
			Features: nb.K, TCAMEntries: nb.TCAMEntries, RegisterBits: nb.RegisterBits,
		})

		leo, err := baselines.TrainLeo(trainS, testS, baselines.Options{
			Classes: env.Classes, FlowTarget: flows, Profile: env.Profile,
		})
		if err != nil {
			return out, fmt.Errorf("fig6: Leo at %d: %w", flows, err)
		}
		out.Rows = append(out.Rows, SystemRow{
			System: "Leo", Flows: flows, F1: leo.F1, Depth: leo.Depth, Partitions: 1,
			Features: leo.K, TCAMEntries: leo.TCAMEntries, RegisterBits: leo.RegisterBits,
		})

		if tp, ok := BestAtFlows(res, store, flows); ok {
			m := tp.Model
			out.Rows = append(out.Rows, SystemRow{
				System: "SpliDT", Flows: flows, F1: tp.F1,
				Depth:        m.Cfg.Depth(),
				Partitions:   m.NumPartitions(),
				Features:     len(m.TotalFeatures()),
				TCAMEntries:  tp.Compiled.Entries(),
				RegisterBits: m.Cfg.FeaturesPerSubtree * resources.ValueBits(m),
			})
		} else {
			out.Rows = append(out.Rows, SystemRow{System: "SpliDT", Flows: flows})
		}
	}
	return out, nil
}

// SpliDTRow returns the SpliDT row at a flow target (ok=false if absent).
func (r Fig6Table3Result) SpliDTRow(flows int) (SystemRow, bool) {
	for _, row := range r.Rows {
		if row.System == "SpliDT" && row.Flows == flows {
			return row, true
		}
	}
	return SystemRow{}, false
}

// RowOf returns a named system's row at a flow target.
func (r Fig6Table3Result) RowOf(system string, flows int) (SystemRow, bool) {
	for _, row := range r.Rows {
		if row.System == system && row.Flows == flows {
			return row, true
		}
	}
	return SystemRow{}, false
}

// Render prints both artifacts: the frontier series (Figure 6) and the
// resource table (Table 3).
func (r Fig6Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — %v Pareto frontier (F1 at #flows)\n", r.Dataset)
	ft := newTable("#Flows", "NB", "Leo", "SpliDT")
	for _, flows := range FlowTargets {
		nb, _ := r.RowOf("NB", flows)
		leo, _ := r.RowOf("Leo", flows)
		sp, _ := r.RowOf("SpliDT", flows)
		ft.add(flowLabel(flows), nb.F1, leo.F1, sp.F1)
	}
	b.WriteString(ft.String())

	fmt.Fprintf(&b, "\nTable 3 — %v model performance vs resource usage\n", r.Dataset)
	t := newTable("#Flows", "System", "F1", "Depth/#Part", "#Features", "#TCAM", "Reg(bits)")
	for _, flows := range FlowTargets {
		for _, sys := range []string{"NB", "Leo", "SpliDT"} {
			row, ok := r.RowOf(sys, flows)
			if !ok {
				continue
			}
			dp := fmt.Sprint(row.Depth)
			if sys == "SpliDT" {
				dp = fmt.Sprintf("%d / %d", row.Depth, row.Partitions)
			}
			t.add(flowLabel(flows), sys, row.F1, dp, row.Features, row.TCAMEntries, row.RegisterBits)
		}
	}
	b.WriteString(t.String())
	return b.String()
}
