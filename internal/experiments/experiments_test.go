package experiments

import (
	"strings"
	"testing"

	"splidt/internal/bo"
	"splidt/internal/trace"
)

// smallEnv keeps unit tests fast: a light dataset and a tiny search budget.
func smallEnv(t *testing.T, id trace.DatasetID) *Env {
	t.Helper()
	env := NewEnv(id, 240)
	env.BOIterations = 5
	env.BOParallel = 4
	return env
}

func TestEvaluatePoint(t *testing.T) {
	env := smallEnv(t, trace.D2)
	tp := env.EvaluatePoint(bo.Point{Depth: 6, K: 4, Partitions: []int{3, 3}})
	if tp.Model == nil || tp.Compiled == nil {
		t.Fatal("missing artifacts")
	}
	if tp.F1 <= 0 || tp.F1 > 1 {
		t.Fatalf("F1 %v out of range", tp.F1)
	}
	if !tp.Feasible || tp.MaxFlows <= 0 {
		t.Fatalf("typical point infeasible: flows=%d", tp.MaxFlows)
	}
}

func TestSearchAndBestAtFlows(t *testing.T) {
	env := smallEnv(t, trace.D2)
	res, store := env.Search(bo.DefaultSpace())
	if len(res.Evaluations) == 0 {
		t.Fatal("no evaluations")
	}
	tp, ok := BestAtFlows(res, store, 100_000)
	if !ok {
		t.Fatal("no feasible point at 100K flows")
	}
	if tp.MaxFlows < 100_000 {
		t.Fatalf("selected point supports %d < 100K flows", tp.MaxFlows)
	}
	// Higher targets can only lower (or keep) the achievable F1.
	if tp2, ok2 := BestAtFlows(res, store, 1_000_000); ok2 && tp2.F1 > tp.F1+1e-9 {
		t.Fatalf("1M-flow best F1 %.3f exceeds 100K best %.3f", tp2.F1, tp.F1)
	}
}

func TestFigure2Shape(t *testing.T) {
	env := smallEnv(t, trace.D2)
	r, err := Figure2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TopK) != len(FlowTargets) || len(r.SpliDT) != len(FlowTargets) {
		t.Fatal("missing series points")
	}
	// The paper's headline shape: ideal ≥ SpliDT ≥ top-k at scale, and
	// per-packet trails stateful models.
	if r.IdealF1 <= 0.5 {
		t.Fatalf("ideal F1 %.3f too low", r.IdealF1)
	}
	sp1m := r.SpliDT[len(r.SpliDT)-1].F1
	nb1m := r.TopK[len(r.TopK)-1].F1
	if sp1m < nb1m-0.05 {
		t.Fatalf("SpliDT at 1M (%.3f) clearly below top-k (%.3f)", sp1m, nb1m)
	}
	if r.PerPacketF1 > r.IdealF1 {
		t.Fatal("per-packet beat ideal")
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestTable1Shape(t *testing.T) {
	env := smallEnv(t, trace.D1)
	r, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerSubtreeMean <= 0 || r.PerSubtreeMean > 40 {
		t.Fatalf("per-subtree density %.1f%% outside sparse band", r.PerSubtreeMean)
	}
	if r.PerPartitionMean < r.PerSubtreeMean-1e-9 {
		t.Fatal("partition density below subtree density")
	}
	if r.HDMean < r.WSMean {
		t.Fatal("HD recirculation should exceed WS")
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFig6Table3Shape(t *testing.T) {
	env := smallEnv(t, trace.D3)
	r, err := Fig6Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*len(FlowTargets) {
		t.Fatalf("%d rows, want %d", len(r.Rows), 3*len(FlowTargets))
	}
	sp, ok := r.SpliDTRow(1_000_000)
	if !ok {
		t.Fatal("missing SpliDT row at 1M")
	}
	nb, _ := r.RowOf("NB", 1_000_000)
	if sp.F1 < nb.F1-0.08 {
		t.Fatalf("SpliDT at 1M (%.3f) clearly below NB (%.3f)", sp.F1, nb.F1)
	}
	// Feature scaling: SpliDT's total features should exceed its k-slots
	// and generally the baselines' top-k at 100K.
	sp100, _ := r.SpliDTRow(100_000)
	nb100, _ := r.RowOf("NB", 100_000)
	if sp100.Features < nb100.Features {
		t.Fatalf("SpliDT features %d below NB top-k %d at 100K", sp100.Features, nb100.Features)
	}
	if !strings.Contains(r.Render(), "Table 3") {
		t.Fatal("render missing table")
	}
}

func TestFigure7Converges(t *testing.T) {
	env := smallEnv(t, trace.D2)
	r := Figure7(env)
	if len(r.BestF1) != env.BOIterations {
		t.Fatalf("curve has %d points, want %d", len(r.BestF1), env.BOIterations)
	}
	for i := 1; i < len(r.BestF1); i++ {
		if r.BestF1[i] < r.BestF1[i-1] {
			t.Fatal("convergence curve not monotone")
		}
	}
	it, final := r.ConvergedAt(0.005)
	if it < 1 || it > env.BOIterations || final <= 0 {
		t.Fatalf("ConvergedAt = %d, %.3f", it, final)
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Fatal("render missing title")
	}
}

func TestTable4Stages(t *testing.T) {
	env := smallEnv(t, trace.D2)
	r, err := Table4(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.Training <= 0 || r.Rulegen <= 0 || r.Backend <= 0 {
		t.Fatalf("non-positive stage times: %+v", r)
	}
	// Training dominates (the paper reports ~88% of iteration time).
	if r.Training < r.Backend {
		t.Fatal("training cheaper than backend — implausible")
	}
	if r.Total() < r.Training {
		t.Fatal("total below training")
	}
	if !strings.Contains(r.Render(), "Table 4") {
		t.Fatal("render missing title")
	}
}

func TestTable5Shape(t *testing.T) {
	env := smallEnv(t, trace.D2)
	r, err := Table5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WS) != len(FlowTargets) || len(r.HD) != len(FlowTargets) {
		t.Fatal("missing cells")
	}
	// The paper's envelope: worst case well under 100 Mbps (≤0.05% of the
	// 100 Gbps channel was ~50 Mbps).
	if r.MaxMbps() > 150 {
		t.Fatalf("max recirc %.1f Mbps implausibly high", r.MaxMbps())
	}
	for i := range r.WS {
		if r.WS[i].Partitions > 1 && r.HD[i].Mean < r.WS[i].Mean {
			t.Fatal("HD below WS at same partitions")
		}
		if r.WS[i].Partitions == 1 && (r.WS[i].Mean != 0 || r.HD[i].Mean != 0) {
			t.Fatal("single-partition winner must not recirculate")
		}
	}
	if !strings.Contains(r.Render(), "Table 5") {
		t.Fatal("render missing title")
	}
}

func TestFigure8Sweeps(t *testing.T) {
	env := smallEnv(t, trace.D2)
	r, err := Figure8(env, "features", []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatal("missing series")
	}
	f1k1, ok1 := r.At(1, 100_000)
	f1k3, ok3 := r.At(3, 100_000)
	if !ok1 || !ok3 {
		t.Fatal("missing points")
	}
	// More features per subtree should not hurt at low flow counts.
	if f1k3 < f1k1-0.1 {
		t.Fatalf("k=3 (%.3f) far below k=1 (%.3f) at 100K", f1k3, f1k1)
	}
	if _, err := Figure8(env, "bogus", []int{1}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Fatal("render missing title")
	}
}

func TestFigure9Shape(t *testing.T) {
	env := smallEnv(t, trace.D2)
	r, err := Figure9(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SpliDT) == 0 || len(r.NB) == 0 {
		t.Fatal("missing series")
	}
	// Monotone: more entries can only help.
	last := 0.0
	for _, budget := range entryBudgets {
		f1 := BestUnder(r.NB, budget)
		if f1 < last-1e-9 {
			t.Fatal("BestUnder not monotone")
		}
		last = f1
	}
	if !strings.Contains(r.Render(), "Figure 9") {
		t.Fatal("render missing title")
	}
}

func TestFigure10Shape(t *testing.T) {
	env := smallEnv(t, trace.D3)
	r, err := Figure10(env, trace.Hadoop)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(r.Curves))
	}
	for _, c := range r.Curves {
		if c.ECDF.Len() == 0 {
			t.Fatalf("%s: empty ECDF", c.System)
		}
		if c.Quantile(0.5) < 0 {
			t.Fatalf("%s: negative median TTD", c.System)
		}
	}
	// SpliDT's median TTD must be within the same order of magnitude as the
	// baselines' (the paper: "closely matches").
	sp := r.Curves[0].Quantile(0.5)
	leo := r.Curves[2].Quantile(0.5)
	if leo > 0 && (sp > 10*leo) {
		t.Fatalf("SpliDT median TTD %.1fms an order above Leo %.1fms", sp, leo)
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Fatal("render missing title")
	}
}

func TestFigure11Analytic(t *testing.T) {
	r := Figure11(50, []int{1, 2, 3, 4})
	if len(r.Series) != 5 {
		t.Fatalf("%d series, want 5", len(r.Series))
	}
	// SpliDT:k flat; NB/Leo linear.
	for _, s := range r.Series[:4] {
		if s.Bits[0] != s.Bits[len(s.Bits)-1] {
			t.Fatalf("%s not constant", s.System)
		}
	}
	nb := r.Series[4]
	if nb.Bits[49] != 50*32 || nb.Bits[0] != 32 {
		t.Fatalf("NB/Leo line wrong: %d..%d", nb.Bits[0], nb.Bits[49])
	}
	if !strings.Contains(r.Render(), "Figure 11") {
		t.Fatal("render missing title")
	}
}

func TestFigure12Shape(t *testing.T) {
	env := smallEnv(t, trace.D3)
	env.BOIterations = 4
	r, err := Figure12(env, []int{32, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(r.Rows))
	}
	// 16-bit precision reaches 2M flows.
	if _, ok := r.BestAt(16, 2_000_000); !ok {
		t.Fatal("missing 16-bit 2M point")
	}
	f32, _ := r.BestAt(32, 100_000)
	f16, _ := r.BestAt(16, 100_000)
	// Reduced precision costs some accuracy but must not collapse.
	if f16 < f32-0.3 {
		t.Fatalf("16-bit F1 %.3f collapsed vs 32-bit %.3f", f16, f32)
	}
	if !strings.Contains(r.Render(), "Figure 12") {
		t.Fatal("render missing title")
	}
}
