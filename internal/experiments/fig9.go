package experiments

import (
	"fmt"
	"sort"
	"strings"

	"splidt/internal/baselines"
	"splidt/internal/bo"
	"splidt/internal/trace"
)

// EntryPoint is one (TCAM entries, F1) measurement.
type EntryPoint struct {
	Entries int
	F1      float64
}

// Figure9Result reproduces Figure 9: classification F1 as a function of
// installed TCAM entries for SpliDT and the baselines.
type Figure9Result struct {
	Dataset trace.DatasetID
	NB      []EntryPoint
	Leo     []EntryPoint
	SpliDT  []EntryPoint
}

// entryBudgets sweeps 10^1..10^5 in half-decades (the paper sweeps to 10^7;
// rule counts saturate well before that on both sides).
var entryBudgets = []int{10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000}

// Figure9 sweeps TCAM entry budgets. Baselines re-run their design search
// per budget; SpliDT's points come from its design-search evaluations
// (each evaluated configuration contributes its own entry count).
func Figure9(env *Env) (Figure9Result, error) {
	out := Figure9Result{Dataset: env.Dataset}
	trainS, testS := env.Split(1)

	for _, budget := range entryBudgets {
		nb, err := baselines.TrainNetBeacon(trainS, testS, baselines.Options{
			Classes: env.Classes, FlowTarget: 100_000, Profile: env.Profile,
			EntryBudget: budget,
		})
		if err == nil {
			out.NB = append(out.NB, EntryPoint{Entries: nb.TCAMEntries, F1: nb.F1})
		}
		leo, err := baselines.TrainLeo(trainS, testS, baselines.Options{
			Classes: env.Classes, FlowTarget: 100_000, Profile: env.Profile,
			EntryBudget: budget,
		})
		if err == nil {
			out.Leo = append(out.Leo, EntryPoint{Entries: leo.TCAMEntries, F1: leo.F1})
		}
	}

	res, store := env.Search(bo.DefaultSpace())
	for _, ev := range res.Evaluations {
		if !ev.Feasible {
			continue
		}
		v, ok := store.Load(pointID(ev.Point))
		if !ok {
			continue
		}
		tp := v.(TrainedPoint)
		if tp.Compiled == nil {
			continue
		}
		out.SpliDT = append(out.SpliDT, EntryPoint{Entries: tp.Compiled.Entries(), F1: tp.F1})
	}
	sortEntries(out.NB)
	sortEntries(out.Leo)
	sortEntries(out.SpliDT)
	return out, nil
}

func sortEntries(ps []EntryPoint) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Entries < ps[j].Entries })
}

// BestUnder returns the best F1 among a system's points with at most the
// given entry count.
func BestUnder(ps []EntryPoint, entries int) float64 {
	best := 0.0
	for _, p := range ps {
		if p.Entries <= entries && p.F1 > best {
			best = p.F1
		}
	}
	return best
}

// Render prints the per-system frontier of F1 against entries.
func (r Figure9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — %v F1 vs #TCAM entries\n", r.Dataset)
	t := newTable("#Entries ≤", "NB", "Leo", "SpliDT")
	for _, budget := range entryBudgets {
		t.add(budget, BestUnder(r.NB, budget), BestUnder(r.Leo, budget), BestUnder(r.SpliDT, budget))
	}
	b.WriteString(t.String())
	return b.String()
}
