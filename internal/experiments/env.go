// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each artifact has one driver returning a structured
// result plus a text rendering in the paper's row/series format; the
// per-experiment index lives in DESIGN.md and the recorded outcomes in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"splidt/internal/bo"
	"splidt/internal/core"
	"splidt/internal/metrics"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// FlowTargets are the concurrency levels the paper reports (Tables 3/5,
// Figures 2/6/8).
var FlowTargets = []int{100_000, 500_000, 1_000_000}

// Env bundles everything one experiment needs: the dataset, its windowed
// sample cache, the hardware profile, and search budgets. Use NewEnv.
type Env struct {
	Dataset trace.DatasetID
	Classes int
	Profile resources.Profile
	Seed    int64

	// NFlows is the number of generated flows (train+test).
	NFlows int
	// TrainFrac splits samples (default 0.7).
	TrainFrac float64
	// BO budget for design searches.
	BOIterations int
	BOParallel   int
	// DisableWarmstart removes the anchor grid from the search — used by
	// the Figure 7 convergence study, which measures how fast BO finds good
	// configurations from scratch.
	DisableWarmstart bool
	// MaxPartitions bounds the window count (paper: 7).
	MaxPartitions int
	// ValueBits is the feature register precision (32 unless sweeping).
	ValueBits int

	set  *trace.SampleSet
	once sync.Once
}

// NewEnv builds an environment with reproduction-scale defaults. nFlows <= 0
// selects a class-proportional default.
func NewEnv(id trace.DatasetID, nFlows int) *Env {
	classes := trace.NumClasses(id)
	if nFlows <= 0 {
		nFlows = 60 * classes
		if nFlows < 400 {
			nFlows = 400
		}
	}
	return &Env{
		Dataset:       id,
		Classes:       classes,
		Profile:       resources.Tofino1(),
		Seed:          1,
		NFlows:        nFlows,
		TrainFrac:     0.7,
		BOIterations:  16,
		BOParallel:    8,
		MaxPartitions: 7,
		ValueBits:     32,
	}
}

// SampleSet lazily generates and caches the windowed datasets.
func (e *Env) SampleSet() *trace.SampleSet {
	e.once.Do(func() {
		e.set = trace.NewSampleSet(e.Dataset, e.NFlows, e.MaxPartitions, e.Seed)
	})
	return e.set
}

// Split returns the train/test windowed samples for a partition count.
func (e *Env) Split(parts int) (train, test []trace.Sample) {
	return trace.Split(e.SampleSet().For(parts), e.TrainFrac)
}

// FlowSplit returns the train/test labelled flows (for per-packet baselines
// and simulator replay).
func (e *Env) FlowSplit() (train, test []trace.LabeledFlow) {
	flows := e.SampleSet().Flows()
	cut := int(float64(len(flows)) * e.TrainFrac)
	return flows[:cut], flows[cut:]
}

// TrainedPoint is one evaluated SpliDT configuration with its artifacts.
type TrainedPoint struct {
	Point    bo.Point
	Model    *core.Model
	Compiled *rangemark.Compiled
	F1       float64
	MaxFlows int
	Feasible bool
}

// EvaluatePoint trains, compiles, scores, and sizes one configuration —
// the black box inside the BO loop (train → rulegen → resource estimation →
// feasibility, Figure 5).
func (e *Env) EvaluatePoint(p bo.Point) TrainedPoint {
	train, test := e.Split(len(p.Partitions))
	q := 0
	if e.ValueBits > 0 && e.ValueBits < 32 {
		q = e.ValueBits
	}
	m, err := core.Train(train, core.Config{
		Partitions:         p.Partitions,
		FeaturesPerSubtree: p.K,
		NumClasses:         e.Classes,
		QuantizeBits:       q,
	})
	if err != nil {
		return TrainedPoint{Point: p}
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		return TrainedPoint{Point: p}
	}

	predicted := make([]int, len(test))
	actual := make([]int, len(test))
	for i, s := range test {
		predicted[i] = m.Classify(s.Windows)
		actual[i] = s.Label
	}
	f1 := metrics.MacroF1Of(actual, predicted, e.Classes)

	vb := resources.ValueBits(m)
	chain := resources.DepChainDepth(m)
	maxFlows := resources.MaxFlowsSpliDT(e.Profile, p.K, vb, chain)
	feasible := maxFlows > 0 && int64(c.Bits()) <= e.Profile.TCAMBits
	return TrainedPoint{
		Point: p, Model: m, Compiled: c,
		F1: f1, MaxFlows: maxFlows, Feasible: feasible,
	}
}

// Objective adapts EvaluatePoint to the BO loop, memoising trained artifacts
// so post-search reporting can recover the winning models.
func (e *Env) Objective(store *sync.Map) bo.Objective {
	return func(p bo.Point) bo.Evaluation {
		tp := e.EvaluatePoint(p)
		if store != nil {
			store.Store(pointID(p), tp)
		}
		return bo.Evaluation{Point: p, F1: tp.F1, Flows: tp.MaxFlows, Feasible: tp.Feasible}
	}
}

func pointID(p bo.Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%dk%dp", p.Depth, p.K)
	for _, x := range p.Partitions {
		fmt.Fprintf(&b, "-%d", x)
	}
	return b.String()
}

// Search runs the design search over a space and returns the result plus
// the store of trained artifacts. A warm-start grid anchors the surrogate
// with coverage of the low-k corner (required by high flow targets) through
// deep multi-partition configurations.
func (e *Env) Search(space bo.Space) (bo.Result, *sync.Map) {
	var store sync.Map
	cfg := bo.Config{
		Iterations: e.BOIterations,
		Parallel:   e.BOParallel,
		InitRandom: max(2, e.BOIterations/8),
		Seed:       e.Seed,
		Forest:     bo.DefaultForestConfig(),
	}
	if !e.DisableWarmstart {
		cfg.Warmstart = warmstartGrid(space)
	}
	res := bo.Search(space, e.Objective(&store), cfg)
	return res, &store
}

// warmstartGrid returns a small spread of configurations adapted to the
// space's fixed dimensions.
func warmstartGrid(space bo.Space) []bo.Point {
	base := []bo.Point{
		{Depth: 3, K: 1, Partitions: []int{3}},
		{Depth: 4, K: 2, Partitions: []int{4}},
		{Depth: 6, K: 2, Partitions: []int{3, 3}},
		{Depth: 8, K: 2, Partitions: []int{2, 3, 3}},
		{Depth: 6, K: 4, Partitions: []int{3, 3}},
		{Depth: 9, K: 4, Partitions: []int{3, 3, 3}},
		{Depth: 10, K: 2, Partitions: []int{2, 2, 2, 2, 2}},
		{Depth: 12, K: 6, Partitions: []int{4, 4, 4}},
		{Depth: 20, K: 6, Partitions: []int{4, 4, 4, 4, 4}},
	}
	out := make([]bo.Point, 0, len(base))
	for _, p := range base {
		if space.FixedK != 0 {
			p.K = space.FixedK
		}
		if space.FixedDepth != 0 {
			p.Depth = space.FixedDepth
		}
		nPart := len(p.Partitions)
		if space.FixedPartitions != 0 {
			nPart = space.FixedPartitions
		}
		if nPart > p.Depth {
			nPart = p.Depth
		}
		p.Partitions = evenComposition(p.Depth, nPart)
		out = append(out, p)
	}
	return out
}

// evenComposition splits depth into nPart near-equal positive parts.
func evenComposition(depth, nPart int) []int {
	parts := make([]int, nPart)
	for i := range parts {
		parts[i] = depth / nPart
	}
	for i := 0; i < depth%nPart; i++ {
		parts[i]++
	}
	return parts
}

// BestAtFlows picks, from a finished search, the best-F1 feasible trained
// point that supports at least the given flow count (Table 3's selection).
func BestAtFlows(res bo.Result, store *sync.Map, flows int) (TrainedPoint, bool) {
	return bestWhere(res, store, flows, func(TrainedPoint) bool { return true })
}

// bestPartitionedAtFlows restricts the selection to multi-partition models.
func bestPartitionedAtFlows(res bo.Result, store *sync.Map, flows int) (TrainedPoint, bool) {
	return bestWhere(res, store, flows, func(tp TrainedPoint) bool {
		return tp.Model != nil && tp.Model.NumPartitions() >= 2
	})
}

func bestWhere(res bo.Result, store *sync.Map, flows int, keep func(TrainedPoint) bool) (TrainedPoint, bool) {
	var best TrainedPoint
	found := false
	for _, ev := range res.Evaluations {
		if !ev.Feasible || ev.Flows < flows {
			continue
		}
		v, ok := store.Load(pointID(ev.Point))
		if !ok {
			continue
		}
		tp := v.(TrainedPoint)
		if !keep(tp) {
			continue
		}
		if !found || tp.F1 > best.F1 {
			best = tp
			found = true
		}
	}
	return best, found
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
