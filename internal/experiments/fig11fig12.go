package experiments

import (
	"fmt"
	"strings"

	"splidt/internal/baselines"
	"splidt/internal/bo"
	"splidt/internal/trace"
)

// Figure11Series is register footprint as a function of total model
// features for one system variant.
type Figure11Series struct {
	System string
	// BitsAt[i] is the per-flow register bits needed to support Features[i]
	// total distinct features.
	Features []int
	Bits     []int
}

// Figure11Result reproduces Figure 11: SpliDT:k holds a constant register
// footprint regardless of total feature count (features multiplex through k
// slots), while one-shot systems grow linearly.
type Figure11Result struct {
	Series []Figure11Series
}

// Figure11 is analytic: it evaluates the register-allocation rule of each
// system over a feature-count sweep.
func Figure11(maxFeatures int, ks []int) Figure11Result {
	if maxFeatures < 1 {
		maxFeatures = 50
	}
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 4}
	}
	var out Figure11Result
	counts := make([]int, 0, maxFeatures)
	for n := 1; n <= maxFeatures; n++ {
		counts = append(counts, n)
	}
	for _, k := range ks {
		s := Figure11Series{System: fmt.Sprintf("SpliDT:%d", k), Features: counts}
		for range counts {
			s.Bits = append(s.Bits, k*32) // constant in total features
		}
		out.Series = append(out.Series, s)
	}
	nb := Figure11Series{System: "NB/Leo", Features: counts}
	for _, n := range counts {
		nb.Bits = append(nb.Bits, n*32) // one register per feature, upfront
	}
	out.Series = append(out.Series, nb)
	return out
}

// Render prints the register-bits series at selected feature counts.
func (r Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11 — register bits vs number of model features\n")
	marks := []int{1, 2, 4, 6, 8, 10, 20, 50}
	header := []string{"#Features"}
	for _, s := range r.Series {
		header = append(header, s.System)
	}
	t := newTable(header...)
	for _, n := range marks {
		row := []interface{}{n}
		for _, s := range r.Series {
			if n <= len(s.Bits) {
				row = append(row, s.Bits[n-1])
			} else {
				row = append(row, "-")
			}
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// PrecisionRow is one bit-precision operating point of Figure 12.
type PrecisionRow struct {
	Bits     int
	Flows    int
	NBF1     float64
	LeoF1    float64
	SpliDTF1 float64
}

// Figure12Result reproduces Figure 12: Pareto frontiers under 32-, 16-, and
// 8-bit feature precision; halving precision roughly doubles flow capacity
// at a modest accuracy cost.
type Figure12Result struct {
	Dataset trace.DatasetID
	Rows    []PrecisionRow
}

// Figure12 sweeps feature bit precision.
func Figure12(env *Env, bitsList []int) (Figure12Result, error) {
	if len(bitsList) == 0 {
		bitsList = []int{32, 16, 8}
	}
	out := Figure12Result{Dataset: env.Dataset}
	for _, bits := range bitsList {
		sub := NewEnv(env.Dataset, env.NFlows)
		sub.Seed = env.Seed
		sub.Profile = env.Profile
		sub.BOIterations = env.BOIterations
		sub.BOParallel = env.BOParallel
		sub.ValueBits = bits

		// Narrower registers scale the reachable flow targets (1M → 2M at
		// 16 bits → 4M at 8 bits).
		scale := 32 / bits
		targets := []int{100_000, 500_000 * scale, 1_000_000 * scale}

		trainS, testS := sub.Split(1)
		res, store := sub.Search(bo.DefaultSpace())
		for _, flows := range targets {
			row := PrecisionRow{Bits: bits, Flows: flows}
			if nb, err := baselines.TrainNetBeacon(trainS, testS, baselines.Options{
				Classes: sub.Classes, FlowTarget: flows, Profile: sub.Profile, ValueBits: bits,
			}); err == nil {
				row.NBF1 = nb.F1
			}
			if leo, err := baselines.TrainLeo(trainS, testS, baselines.Options{
				Classes: sub.Classes, FlowTarget: flows, Profile: sub.Profile, ValueBits: bits,
			}); err == nil {
				row.LeoF1 = leo.F1
			}
			if tp, ok := BestAtFlows(res, store, flows); ok {
				row.SpliDTF1 = tp.F1
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// BestAt returns SpliDT's F1 at the given precision and flow target.
func (r Figure12Result) BestAt(bits, flows int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Bits == bits && row.Flows == flows {
			return row.SpliDTF1, true
		}
	}
	return 0, false
}

// Render prints the precision panels.
func (r Figure12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — %v Pareto frontier vs bit precision\n", r.Dataset)
	t := newTable("Bits", "#Flows", "NB", "Leo", "SpliDT")
	for _, row := range r.Rows {
		t.add(row.Bits, flowLabel(row.Flows), row.NBF1, row.LeoF1, row.SpliDTF1)
	}
	b.WriteString(t.String())
	return b.String()
}
