package experiments

import (
	"fmt"

	"splidt/internal/baselines"
	"splidt/internal/bo"
	"splidt/internal/dt"
	"splidt/internal/metrics"
	"splidt/internal/trace"
)

// Figure2Point is one (flows, F1) measurement of one system.
type Figure2Point struct {
	Flows int
	F1    float64
}

// Figure2Result reproduces Figure 2 for one dataset: SpliDT versus the
// top-k (k ≤ 7) one-shot model versus the ideal unlimited-resource model,
// with the per-packet peak noted in the caption.
type Figure2Result struct {
	Dataset      trace.DatasetID
	TopK         []Figure2Point
	SpliDT       []Figure2Point
	IdealF1      float64
	PerPacketF1  float64
	SpliDTSearch bo.Result
}

// Figure2 runs the comparison across the paper's flow targets.
func Figure2(env *Env) (Figure2Result, error) {
	out := Figure2Result{Dataset: env.Dataset}

	// Ideal: every feature, unbounded depth/resources, whole-flow stats.
	trainS, testS := env.Split(1)
	Xtr, ytr := wholeRows(trainS)
	Xte, yte := wholeRows(testS)
	ideal := dt.Train(Xtr, ytr, env.Classes, dt.Config{MaxDepth: 16, MinSamplesLeaf: 2})
	pred := make([]int, len(Xte))
	for i, row := range Xte {
		pred[i] = ideal.Predict(row)
	}
	out.IdealF1 = metrics.MacroF1Of(yte, pred, env.Classes)

	// Per-packet peak (stateless fields only).
	trainF, testF := env.FlowSplit()
	pp, err := baselines.TrainPerPacket(trainF, testF, env.Classes, 10, 16)
	if err != nil {
		return out, fmt.Errorf("figure2: per-packet: %w", err)
	}
	out.PerPacketF1 = pp.F1

	// One SpliDT design search reused across flow targets.
	res, store := env.Search(bo.DefaultSpace())
	out.SpliDTSearch = res

	for _, flows := range FlowTargets {
		nb, err := baselines.TrainNetBeacon(trainS, testS, baselines.Options{
			Classes: env.Classes, FlowTarget: flows, Profile: env.Profile,
		})
		if err != nil {
			return out, fmt.Errorf("figure2: top-k at %d flows: %w", flows, err)
		}
		out.TopK = append(out.TopK, Figure2Point{Flows: flows, F1: nb.F1})

		if tp, ok := BestAtFlows(res, store, flows); ok {
			out.SpliDT = append(out.SpliDT, Figure2Point{Flows: flows, F1: tp.F1})
		} else {
			out.SpliDT = append(out.SpliDT, Figure2Point{Flows: flows, F1: 0})
		}
	}
	return out, nil
}

// Render prints the figure's series as rows.
func (r Figure2Result) Render() string {
	t := newTable("#Flows", "Top-k F1", "SpliDT F1", "Ideal F1", "PerPacket F1")
	for i := range r.TopK {
		t.add(flowLabel(r.TopK[i].Flows), r.TopK[i].F1, r.SpliDT[i].F1, r.IdealF1, r.PerPacketF1)
	}
	return fmt.Sprintf("Figure 2 — %v: SpliDT vs top-k vs ideal\n%s", r.Dataset, t)
}

func wholeRows(samples []trace.Sample) ([][]float64, []int) {
	X := make([][]float64, len(samples))
	y := make([]int, len(samples))
	for i, s := range samples {
		v := s.WholeFlow()
		row := make([]float64, len(v))
		copy(row, v[:])
		X[i] = row
		y[i] = s.Label
	}
	return X, y
}
