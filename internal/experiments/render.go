package experiments

import (
	"fmt"
	"strings"
)

// table renders fixed-width rows for terminal output in the paper's
// row/series style.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// flowLabel renders a flow target the way the paper does (100K, 500K, 1M).
func flowLabel(flows int) string {
	switch {
	case flows >= 1_000_000 && flows%1_000_000 == 0:
		return fmt.Sprintf("%dM", flows/1_000_000)
	case flows >= 1_000:
		return fmt.Sprintf("%dK", flows/1_000)
	default:
		return fmt.Sprint(flows)
	}
}
