package experiments

import (
	"fmt"
	"strings"

	"splidt/internal/bo"
	"splidt/internal/trace"
)

// Fig8Series is one constrained frontier: the swept dimension's value plus
// the best F1 at each flow target.
type Fig8Series struct {
	Value  int
	Points []Figure2Point
}

// Figure8Result reproduces one panel of Figure 8: Pareto frontiers of
// SpliDT under a fixed tree depth (a), fixed partition count (b), or fixed
// features per subtree (c).
type Figure8Result struct {
	Dataset   trace.DatasetID
	Dimension string // "depth", "partitions", or "features"
	Series    []Fig8Series
}

// Figure8 sweeps the named dimension over the given values, running one
// constrained design search per value.
func Figure8(env *Env, dimension string, values []int) (Figure8Result, error) {
	out := Figure8Result{Dataset: env.Dataset, Dimension: dimension}
	for _, v := range values {
		space := bo.DefaultSpace()
		switch dimension {
		case "depth":
			space.FixedDepth = v
		case "partitions":
			space.FixedPartitions = v
		case "features":
			space.FixedK = v
		default:
			return out, fmt.Errorf("figure8: unknown dimension %q", dimension)
		}
		res, store := env.Search(space)
		s := Fig8Series{Value: v}
		for _, flows := range FlowTargets {
			if tp, ok := BestAtFlows(res, store, flows); ok {
				s.Points = append(s.Points, Figure2Point{Flows: flows, F1: tp.F1})
			} else {
				s.Points = append(s.Points, Figure2Point{Flows: flows, F1: 0})
			}
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// At returns the F1 of a series value at a flow target.
func (r Figure8Result) At(value, flows int) (float64, bool) {
	for _, s := range r.Series {
		if s.Value != value {
			continue
		}
		for _, p := range s.Points {
			if p.Flows == flows {
				return p.F1, true
			}
		}
	}
	return 0, false
}

// Render prints the panel's series.
func (r Figure8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (%s) — %v Pareto frontiers under fixed %s\n",
		r.Dimension, r.Dataset, r.Dimension)
	header := []string{"#Flows"}
	for _, s := range r.Series {
		header = append(header, fmt.Sprintf("%s=%d", r.Dimension, s.Value))
	}
	t := newTable(header...)
	for i, flows := range FlowTargets {
		row := []interface{}{flowLabel(flows)}
		for _, s := range r.Series {
			row = append(row, s.Points[i].F1)
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}
