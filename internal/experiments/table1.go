package experiments

import (
	"fmt"

	"splidt/internal/bo"
	"splidt/internal/features"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// Table1Result reproduces Table 1 for one dataset: feature density across
// partitions and subtrees of a trained SpliDT tree, and the maximum
// recirculation bandwidth under the Webserver and Hadoop environments.
type Table1Result struct {
	Dataset trace.DatasetID

	PerPartitionMean, PerPartitionStd float64
	PerSubtreeMean, PerSubtreeStd     float64

	// Recirculation bandwidth (Mbps, mean ± std) per environment at the
	// representative 500K-flow operating point.
	WSMean, WSStd float64
	HDMean, HDStd float64

	Partitions int
	Subtrees   int
}

// Table1 trains a representative multi-partition configuration (the best
// 500K-capable point of a small design search) and measures its feature
// density and recirculation profile.
func Table1(env *Env) (Table1Result, error) {
	out := Table1Result{Dataset: env.Dataset}

	res, store := env.Search(bo.DefaultSpace())
	// Table 1 characterises partitioned trees, so prefer the best
	// multi-partition point; fall back progressively.
	tp, ok := bestPartitionedAtFlows(res, store, 500_000)
	if !ok {
		if tp, ok = BestAtFlows(res, store, 500_000); !ok {
			if tp, ok = BestAtFlows(res, store, 1); !ok {
				return out, fmt.Errorf("table1: no feasible configuration for %v", env.Dataset)
			}
		}
	}
	m := tp.Model
	out.Partitions = m.NumPartitions()
	out.Subtrees = len(m.Subtrees)
	out.PerSubtreeMean, out.PerSubtreeStd, out.PerPartitionMean, out.PerPartitionStd =
		m.FeatureDensity(features.NumStateful)

	const flows = 500_000
	wsm, wss := resources.EstimateRecirc(m, flows, trace.Webserver, env.Seed)
	hdm, hds := resources.EstimateRecirc(m, flows, trace.Hadoop, env.Seed)
	out.WSMean, out.WSStd = resources.Mbps(wsm), resources.Mbps(wss)
	out.HDMean, out.HDStd = resources.Mbps(hdm), resources.Mbps(hds)
	return out, nil
}

// Render prints the table row in the paper's format.
func (r Table1Result) Render() string {
	t := newTable("Data", "Density/Partition(%)", "Density/Subtree(%)", "WS (Mbps)", "HD (Mbps)")
	t.add(r.Dataset.String(),
		fmt.Sprintf("%.2f ± %.2f", r.PerPartitionMean, r.PerPartitionStd),
		fmt.Sprintf("%.2f ± %.2f", r.PerSubtreeMean, r.PerSubtreeStd),
		fmt.Sprintf("%.2f ± %.2f", r.WSMean, r.WSStd),
		fmt.Sprintf("%.2f ± %.2f", r.HDMean, r.HDStd))
	return fmt.Sprintf("Table 1 — feature density and recirculation bandwidth\n%s", t)
}
