package flowtable

import (
	"math/rand"
	"testing"

	"splidt/internal/flow"
)

// benchKeys draws n distinct canonical keys at random (fixed seed, so every
// run measures the same placement work — sequential keys would inherit
// CRC32's linearity and undersell the displacement path).
func benchKeys(n int) []flow.Key {
	rng := rand.New(rand.NewSource(17))
	idx := make(map[int]bool, n)
	keys := make([]flow.Key, 0, n)
	for len(keys) < n {
		i := rng.Intn(1 << 26)
		if !idx[i] {
			idx[i] = true
			keys = append(keys, testKey(i))
		}
	}
	return keys
}

// benchFlowTable measures the two store operations on the per-packet path:
// lookup (Acquire of a resident flow — every packet after a flow's first)
// and insert churn (Evict + Acquire — flow turnover at a steady load
// factor). The table holds 64Ki cells at a 0.7 load factor, roughly the
// regime a deployed shard runs at.
func benchFlowTable(b *testing.B, mk func(capacity int) Store) {
	const capacity = 1 << 16
	keys := benchKeys(capacity * 7 / 10)
	build := func() Store {
		s := mk(capacity)
		for _, k := range keys {
			if e, st := s.Acquire(k); st == StatusFresh {
				e.SID = 1
			}
		}
		return s
	}

	b.Run("lookup", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e, _ := s.Acquire(keys[i%len(keys)]); e == nil {
				b.Fatal("resident flow not found")
			}
		}
	})

	b.Run("insert", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			s.Evict(k)
			if e, st := s.Acquire(k); st == StatusFresh {
				e.SID = 1
			}
		}
	})
}

func BenchmarkFlowTableDirect(b *testing.B) {
	benchFlowTable(b, func(capacity int) Store { return NewDirect(capacity) })
}

func BenchmarkFlowTableCuckoo(b *testing.B) {
	benchFlowTable(b, func(capacity int) Store {
		return NewCuckoo(CuckooConfig{Capacity: capacity})
	})
}
