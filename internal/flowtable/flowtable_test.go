package flowtable

import (
	"math/rand"
	"testing"
	"time"

	"splidt/internal/flow"
)

// testKey builds the i-th distinct canonical key of the test universe
// (10.x source below 172.x destination, so keys are canonical as built).
func testKey(i int) flow.Key {
	return flow.Key{
		SrcIP:   flow.AddrFrom4(10, byte(i>>16), byte(i>>8), byte(i)),
		DstIP:   flow.AddrFrom4(172, 16, 0, 1),
		SrcPort: uint16(1024 + i%50000),
		DstPort: 443,
		Proto:   flow.ProtoTCP,
	}
}

// findKey scans the test-key universe from *cursor for a key whose bucket
// pair is exactly (b1, b2), advancing the cursor so repeated calls yield
// distinct keys.
func findKey(t *testing.T, tab *Cuckoo, cursor *int, b1, b2 int) flow.Key {
	t.Helper()
	for ; *cursor < 1<<22; *cursor++ {
		k := testKey(*cursor)
		g1, g2 := tab.bucketPair(k)
		if g1 == b1 && g2 == b2 {
			*cursor++
			return k
		}
	}
	t.Fatalf("no key with bucket pair (%d, %d)", b1, b2)
	return flow.Key{}
}

// activate claims an entry the way the pipeline does: Acquire then set a
// live SID (the store's occupied marker).
func activate(t *testing.T, s Store, k flow.Key) *Entry {
	t.Helper()
	e, st := s.Acquire(k)
	if st != StatusFresh {
		t.Fatalf("Acquire(%v) = %v, want fresh", k, st)
	}
	e.SID = 1
	return e
}

// TestDirectSemantics pins the direct-mapped scheme's hardware contract:
// fresh claim, owner recognition, shared collision (same entry pointer, no
// key verification), owner-only eviction.
func TestDirectSemantics(t *testing.T) {
	d := NewDirect(1) // one slot: any two keys collide
	a, b := testKey(1), testKey(2)

	ea := activate(t, d, a)
	if e, st := d.Acquire(a); st != StatusOwner || e != ea {
		t.Fatalf("owner re-acquire = (%p, %v), want (%p, owner)", e, st, ea)
	}
	if e, st := d.Acquire(b); st != StatusShared || e != ea {
		t.Fatalf("collider acquire = (%p, %v), want shared pointer %p", e, st, ea)
	}
	if d.Occupied() != 1 || d.ScanOccupied() != 1 {
		t.Fatalf("occupied = %d/%d, want 1/1", d.Occupied(), d.ScanOccupied())
	}
	if d.Evict(b) {
		t.Fatal("non-owner eviction reclaimed the slot")
	}
	if !d.Evict(a) || d.Occupied() != 0 {
		t.Fatal("owner eviction failed")
	}
	if st := d.Stats(); st.Kicks != 0 || st.Stashed != 0 || st.StashInserts != 0 || st.Rejects != 0 {
		t.Fatalf("direct scheme reported associative counters: %+v", st)
	}
	if d.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", d.Cap())
	}
}

// TestCuckooVerifiedEntriesNeverShare is the scheme's reason to exist:
// flows that would couple in a direct table each get a private, full-key-
// verified entry.
func TestCuckooVerifiedEntriesNeverShare(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 4, Ways: 4, Stash: 2}) // one bucket
	if c.Buckets() != 1 || c.Ways() != 4 {
		t.Fatalf("geometry %d×%d, want 1×4", c.Buckets(), c.Ways())
	}
	keys := []flow.Key{testKey(1), testKey(2), testKey(3), testKey(4)}
	entries := make(map[*Entry]flow.Key)
	for _, k := range keys {
		e := activate(t, c, k)
		if prev, dup := entries[e]; dup {
			t.Fatalf("keys %v and %v share entry %p", prev, k, e)
		}
		entries[e] = k
	}
	for _, k := range keys {
		e, st := c.Acquire(k)
		if st != StatusOwner {
			t.Fatalf("Acquire(%v) = %v, want owner", k, st)
		}
		if e.Key() != k {
			t.Fatalf("entry key %v, want %v (verification failed)", e.Key(), k)
		}
	}
	if c.Occupied() != 4 || c.ScanOccupied() != 4 {
		t.Fatalf("occupied = %d/%d, want 4/4", c.Occupied(), c.ScanOccupied())
	}
}

// TestCuckooKickDisplacesToAlternate forces a displacement: with 1-way
// buckets, a flow whose both candidate buckets are {0} must kick the
// resident of bucket 0 to its alternate bucket.
func TestCuckooKickDisplacesToAlternate(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 2, Ways: 1, Stash: 2})
	if c.Buckets() != 2 {
		t.Fatalf("buckets = %d, want 2", c.Buckets())
	}
	cursor := 0
	resident := findKey(t, c, &cursor, 0, 1) // home 0, alternate 1
	insister := findKey(t, c, &cursor, 0, 0) // both choices are bucket 0

	er := activate(t, c, resident)
	er.PktCount = 99 // state that must survive the move
	ei := activate(t, c, insister)
	if got := c.Stats().Kicks; got != 1 {
		t.Fatalf("Kicks = %d, want 1", got)
	}
	if c.Stats().StashInserts != 0 {
		t.Fatalf("displacement used the stash: %+v", c.Stats())
	}
	if ei != &c.entries[0] {
		t.Fatal("insister did not land in its only candidate bucket")
	}
	// The displaced resident kept its state, now in bucket 1.
	moved, st := c.Acquire(resident)
	if st != StatusOwner || moved.PktCount != 99 {
		t.Fatalf("displaced resident lost state: (%v, pktCount %d)", st, moved.PktCount)
	}
	if moved != &c.entries[1] {
		t.Fatal("displaced resident is not in its alternate bucket")
	}
}

// TestCuckooStashOverflowEvictReject covers the full overflow ladder on a
// degenerate 1×1 table: bucket, then stash lines, then visible rejection —
// and pins that evicting or releasing a stash resident frees its line for
// the next overflow (the stash-leak property).
func TestCuckooStashOverflowEvictReject(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 1, Ways: 1, Stash: 2})
	k1, k2, k3, k4 := testKey(1), testKey(2), testKey(3), testKey(4)

	activate(t, c, k1)
	e2 := activate(t, c, k2) // no bucket way, no displacement path → stash
	e3 := activate(t, c, k3)
	st := c.Stats()
	if st.StashInserts != 2 || st.Stashed != 2 || st.Occupied != 3 {
		t.Fatalf("after overflow: %+v, want 2 stash inserts, 2 stashed, 3 occupied", st)
	}
	if !c.inStash(e2) || !c.inStash(e3) {
		t.Fatal("overflow entries are not stash lines")
	}

	// Table and stash full: the next flow is rejected, visibly.
	if e, status := c.Acquire(k4); e != nil || status != StatusFull {
		t.Fatalf("Acquire on full table = (%v, %v), want (nil, full)", e, status)
	}
	if got := c.Stats().Rejects; got != 1 {
		t.Fatalf("Rejects = %d, want 1", got)
	}
	// Rejection must not have perturbed resident flows.
	for _, k := range []flow.Key{k1, k2, k3} {
		if _, status := c.Acquire(k); status != StatusOwner {
			t.Fatalf("resident %v lost after rejection: %v", k, status)
		}
	}

	// Evicting a stash resident frees its line...
	if !c.Evict(k2) {
		t.Fatal("stash-resident eviction failed")
	}
	if st := c.Stats(); st.Stashed != 1 || st.Occupied != 2 {
		t.Fatalf("after stash evict: %+v, want 1 stashed, 2 occupied", st)
	}
	// ...and the freed line takes the next overflow.
	if e4 := activate(t, c, k4); !c.inStash(e4) {
		t.Fatal("freed stash line not reused")
	}
	// Release (the flow-end path) frees a stash line just like Evict.
	e3b, _ := c.Acquire(k3)
	c.Release(e3b)
	if st := c.Stats(); st.Stashed != 1 || st.Occupied != 2 {
		t.Fatalf("after stash release: %+v, want 1 stashed, 2 occupied", st)
	}
	if c.ScanOccupied() != c.Occupied() {
		t.Fatalf("scan %d != occupied %d", c.ScanOccupied(), c.Occupied())
	}
}

// TestCuckooStashDisabled: a negative Stash builds a pure bucket table —
// overflow rejects immediately (no stash lines, StashInserts stays zero),
// both when placement genuinely fails with free cells elsewhere and via the
// full-table fast path.
func TestCuckooStashDisabled(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 2, Ways: 1, Stash: -1})
	if c.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2 (no stash lines)", c.Cap())
	}
	cursor := 0
	a := findKey(t, c, &cursor, 0, 0)
	b := findKey(t, c, &cursor, 0, 0)
	activate(t, c, a)
	// b's only candidate bucket is full and unkickable (a's alternate is the
	// same bucket); bucket 1 is still free, so this is the partial-table
	// reject path, not the full-table short-circuit.
	if e, st := c.Acquire(b); e != nil || st != StatusFull {
		t.Fatalf("stash-less overflow = (%v, %v), want (nil, full)", e, st)
	}
	st := c.Stats()
	if st.Rejects != 1 || st.StashInserts != 0 || st.Stashed != 0 {
		t.Fatalf("stash-less reject stats: %+v", st)
	}
	// A flow homed on the free bucket still places...
	other := findKey(t, c, &cursor, 1, 1)
	activate(t, c, other)
	// ...after which the table is truly full and the fast path rejects
	// without searching.
	if _, status := c.Acquire(findKey(t, c, &cursor, 0, 1)); status != StatusFull {
		t.Fatalf("full-table Acquire = %v, want full", status)
	}
	if got := c.Stats().Rejects; got != 2 {
		t.Fatalf("Rejects = %d, want 2", got)
	}
}

// TestCuckooSweepReclaimsStashLines pins the ageing arm on the stash: an
// aged-out stash resident is reclaimed by the striped sweep and its line
// freed, exactly like a bucket cell.
func TestCuckooSweepReclaimsStashLines(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 1, Ways: 1, Stash: 2})
	const idle = 10 * time.Second
	stamp := func(e *Entry, at time.Duration) { e.Touched = at }

	stamp(activate(t, c, testKey(1)), 0)           // bucket resident
	stamp(activate(t, c, testKey(2)), time.Second) // stash resident, fresher

	// Sweep one full pass at a time where only the bucket resident is idle.
	if got := c.Sweep(idle, idle, c.Cap()); got != 1 {
		t.Fatalf("sweep reclaimed %d, want 1 (bucket resident only)", got)
	}
	if st := c.Stats(); st.Stashed != 1 || st.Occupied != 1 {
		t.Fatalf("after first sweep: %+v", st)
	}
	// One second later the stash resident is idle too.
	if got := c.Sweep(idle+time.Second, idle, c.Cap()); got != 1 {
		t.Fatalf("sweep reclaimed %d, want 1 (stash resident)", got)
	}
	if st := c.Stats(); st.Stashed != 0 || st.Occupied != 0 {
		t.Fatalf("stash line leaked through sweep: %+v", st)
	}
	// The reclaimed line is usable again.
	activate(t, c, testKey(3))
	activate(t, c, testKey(4))
	if c.Occupied() != 2 {
		t.Fatalf("occupied = %d after refill, want 2", c.Occupied())
	}
}

// TestCuckooChurnScanConsistency cross-checks the incremental gauges
// against full scans under a deterministic insert/release/evict churn at
// high load.
func TestCuckooChurnScanConsistency(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 64, Ways: 4, Stash: 4})
	rng := rand.New(rand.NewSource(11))
	live := make(map[flow.Key]bool)
	next := 0
	for step := 0; step < 4000; step++ {
		switch {
		case rng.Intn(3) != 0 && len(live) < 60:
			k := testKey(next)
			next++
			if e, st := c.Acquire(k); st == StatusFresh {
				e.SID = 1
				live[k] = true
			} else if st != StatusFull {
				t.Fatalf("step %d: Acquire(new) = %v", step, st)
			}
		case len(live) > 0:
			for k := range live {
				if !c.Evict(k) {
					t.Fatalf("step %d: live key %v not evictable", step, k)
				}
				delete(live, k)
				break
			}
		}
		if c.Occupied() != len(live) || c.ScanOccupied() != len(live) {
			t.Fatalf("step %d: occupied %d / scan %d, want %d",
				step, c.Occupied(), c.ScanOccupied(), len(live))
		}
	}
	// Every survivor is still found, with its own verified entry.
	for k := range live {
		if e, st := c.Acquire(k); st != StatusOwner || e.Key() != k {
			t.Fatalf("survivor %v: (%v, key %v)", k, st, e.Key())
		}
	}
}

// TestCuckooHighLoadFactorPlacesEverything pins the headline capacity win:
// at a 0.94 load factor — a regime where the direct scheme couples flows
// massively — the cuckoo scheme places every flow (no rejects, kicks doing
// real work) and verifies every lookup. Keys are drawn at random (fixed
// seed): sequential test keys inherit CRC32's linearity and spread
// unrealistically evenly, which would leave the displacement path idle.
func TestCuckooHighLoadFactorPlacesEverything(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 1024, Ways: 4, Stash: 8})
	rng := rand.New(rand.NewSource(3))
	idx := make(map[int]bool)
	for len(idx) < 960 { // LF 0.9375 of bucket cells
		idx[rng.Intn(1<<22)] = true
	}
	for i := range idx {
		e, st := c.Acquire(testKey(i))
		if st != StatusFresh {
			t.Fatalf("flow %d: %v (stats %+v)", i, st, c.Stats())
		}
		e.SID = 1
	}
	st := c.Stats()
	if st.Rejects != 0 {
		t.Fatalf("high-load fill rejected %d flows: %+v", st.Rejects, st)
	}
	if st.Occupied != len(idx) {
		t.Fatalf("occupied %d, want %d", st.Occupied, len(idx))
	}
	if st.Kicks == 0 {
		t.Fatal("a 0.94 load factor fill performed no displacements — kick path untested")
	}
	for i := range idx {
		if e, status := c.Acquire(testKey(i)); status != StatusOwner || e.Key() != testKey(i) {
			t.Fatalf("flow %d lost after fill: %v", i, status)
		}
	}
}

// TestCuckooDeterministic pins that placement is a pure function of the
// insert sequence — the property that keeps engine digests reproducible.
func TestCuckooDeterministic(t *testing.T) {
	build := func() Stats {
		c := NewCuckoo(CuckooConfig{Capacity: 128, Ways: 2, Stash: 4})
		for i := 0; i < 120; i++ {
			if e, st := c.Acquire(testKey(i)); st == StatusFresh {
				e.SID = 1
			}
		}
		for i := 0; i < 120; i += 3 {
			c.Evict(testKey(i))
		}
		for i := 200; i < 260; i++ {
			if e, st := c.Acquire(testKey(i)); st == StatusFresh {
				e.SID = 1
			}
		}
		return c.Stats()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same sequence, different stats: %+v vs %+v", a, b)
	}
}

// TestOracleExactness: the oracle never shares, never rejects, and releases
// cleanly.
func TestOracleExactness(t *testing.T) {
	o := NewOracle()
	for i := 0; i < 1000; i++ {
		activate(t, o, testKey(i))
	}
	if o.Occupied() != 1000 || o.ScanOccupied() != 1000 {
		t.Fatalf("occupied %d/%d, want 1000", o.Occupied(), o.ScanOccupied())
	}
	if st := o.Stats(); st.Kicks != 0 || st.Rejects != 0 || st.Stashed != 0 {
		t.Fatalf("oracle reported bounded-scheme counters: %+v", st)
	}
	e, st := o.Acquire(testKey(7))
	if st != StatusOwner || e.Key() != testKey(7) {
		t.Fatalf("oracle lookup: %v", st)
	}
	o.Release(e)
	if o.Evict(testKey(7)) {
		t.Fatal("released entry still evictable")
	}
	if !o.Evict(testKey(8)) || o.Occupied() != 998 {
		t.Fatal("oracle eviction failed")
	}
	// Sweep reclaims everything idle, whole-map per call: refresh the first
	// 500 keys (re-activating the two freed above), leave the rest stale.
	for i := 0; i < 500; i++ {
		e, st := o.Acquire(testKey(i))
		if st == StatusFresh {
			e.SID = 1
		}
		e.Touched = time.Hour
	}
	got := o.Sweep(time.Hour+time.Minute, 30*time.Minute, 1)
	if got != 500 || o.Occupied() != 500 {
		t.Fatalf("oracle sweep reclaimed %d (occupied %d), want 500 (500)", got, o.Occupied())
	}
}

// TestBucketHashMatchesDispatchHash pins bucketPair's documented
// derivation: for canonical keys, the second hash must be exactly the high
// half of the dispatch hash (flow.Key.ShardHash), so the decorrelation
// argument — h2 independent of both h1 and shard choice — stays true.
func TestBucketHashMatchesDispatchHash(t *testing.T) {
	c := NewCuckoo(CuckooConfig{Capacity: 4096, Ways: 4})
	for i := 0; i < 2000; i++ {
		k := testKey(i)
		_, b2 := c.bucketPair(k)
		want := int(uint32(k.ShardHash()>>32) % uint32(c.Buckets()))
		if b2 != want {
			t.Fatalf("key %v: b2 = %d, want %d (mix64 drifted from flow.Key.ShardHash)", k, b2, want)
		}
	}
}

// TestStatusString covers the diagnostic names.
func TestStatusString(t *testing.T) {
	want := map[Status]string{
		StatusOwner: "owner", StatusFresh: "fresh",
		StatusShared: "shared", StatusFull: "full", Status(99): "status(?)",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(st), st.String(), s)
		}
	}
}
