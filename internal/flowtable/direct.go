package flowtable

import (
	"time"

	"splidt/internal/flow"
)

// Direct is the direct-mapped register array: one slot per CRC32 hash
// index. It reproduces the hardware (and pre-flowtable pipeline) semantics
// exactly: a flow's slot is slots[hash % len], a colliding flow shares the
// owner's registers (StatusShared), and nothing verifies the full key on
// the packet path. It exists so the `direct` table scheme stays
// byte-for-byte what every PR 1–4 equivalence test pinned.
type Direct struct {
	entries  []Entry
	occupied int
	sweepPos int
	stats    Stats
}

// NewDirect builds a direct-mapped store with the given slot count.
// size must be positive.
func NewDirect(size int) *Direct {
	if size <= 0 {
		panic("flowtable: non-positive direct table size")
	}
	return &Direct{entries: make([]Entry, size)}
}

// slotOf maps a canonical key onto its one slot — flow.Key.Index, the same
// function the pipeline indexed registers with before the store existed.
//
//splidt:hotpath
func (d *Direct) slotOf(k flow.Key) *Entry {
	return &d.entries[k.Index(len(d.entries))]
}

// Acquire implements Store: claim an empty slot, recognise the owner, or
// report a shared collision — never nil.
//
//splidt:hotpath
func (d *Direct) Acquire(k flow.Key) (*Entry, Status) {
	e := d.slotOf(k)
	if e.SID == 0 {
		e.key = k
		e.timer.Data = e
		d.occupied++
		return e, StatusFresh
	}
	if e.key != k {
		return e, StatusShared
	}
	return e, StatusOwner
}

// Release implements Store.
//
//splidt:hotpath
func (d *Direct) Release(e *Entry) {
	e.free()
	d.occupied--
}

// Evict implements Store: only the owning flow's eviction frees the slot.
//
//splidt:hotpath
func (d *Direct) Evict(k flow.Key) bool {
	e := d.slotOf(k)
	if e.SID == 0 || e.key != k {
		return false
	}
	d.Release(e)
	return true
}

// Sweep implements Store: one bounded stripe of the slot array per call,
// wrapping cursor, exactly the ageing walk the pipeline ran before the
// store was extracted.
//
//splidt:hotpath
func (d *Direct) Sweep(now, timeout time.Duration, stripe int) int {
	if stripe > len(d.entries) {
		stripe = len(d.entries)
	}
	evicted := 0
	for i := 0; i < stripe; i++ {
		e := &d.entries[d.sweepPos]
		d.sweepPos++
		if d.sweepPos == len(d.entries) {
			d.sweepPos = 0
		}
		if e.SID != 0 && now-e.Touched >= timeout {
			d.Release(e)
			evicted++
		}
	}
	return evicted
}

// Occupied implements Store.
func (d *Direct) Occupied() int { return d.occupied }

// Cap implements Store.
func (d *Direct) Cap() int { return len(d.entries) }

// Walk implements Store.
func (d *Direct) Walk(fn func(*Entry)) {
	for i := range d.entries {
		if d.entries[i].SID != 0 {
			fn(&d.entries[i])
		}
	}
}

// ScanOccupied implements Store.
func (d *Direct) ScanOccupied() int {
	n := 0
	for i := range d.entries {
		if d.entries[i].SID != 0 {
			n++
		}
	}
	return n
}

// Stats implements Store. Direct never kicks, stashes, or rejects.
func (d *Direct) Stats() Stats {
	s := d.stats
	s.Occupied = d.occupied
	return s
}
