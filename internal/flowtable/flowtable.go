// Package flowtable is the associative flow-state store of the data plane:
// the register structure that maps a flow's 5-tuple onto its per-flow
// inference state (subtree ID, packet count, window feature registers).
//
// Three schemes implement one Store contract:
//
//   - Direct is the classic direct-mapped register array SpliDT's paper
//     deploys on Tofino: one slot per CRC32 hash index, no key verification
//     beyond ownership tracking, so colliding flows silently share state
//     (the hardware semantics the PR 1–4 equivalence tests pin).
//   - Cuckoo is a d-way set-associative table with cuckoo-style displacement
//     and a small bounded stash — the shape production flow tables take
//     (NDN-DPDK's PCCT, hardware cuckoo match engines). Every entry carries
//     its full key and lookups verify it, so flows never couple; inserts
//     displace resident entries along a bounded breadth-first eviction path
//     and overflow into the stash before giving up. Exactness extends from
//     the collision-free regime to high load factors.
//   - Oracle is an unbounded exact map — no real switch can build it, but it
//     is the ground truth the equivalence tests compare the bounded schemes
//     against.
//
// All schemes are single-writer by design, like the pipeline that owns them:
// one shard worker mutates one store. Steady-state operations (Acquire of a
// resident flow, Release, Evict, Sweep) never allocate; only Oracle
// allocates on first-packet insert, which is why it is the test oracle and
// not a deployment scheme.
//
// Contract: Acquire claims an Entry for a canonical flow key. A fresh entry
// is returned zeroed with its key recorded; the caller must set SID non-zero
// immediately (SID == 0 is the store's "free cell" marker, exactly as a
// zero subtree ID marks a free register slot on hardware). Release, Evict,
// and Sweep clear entries back to zero, disarming the entry's embedded
// timer node first — a cell is never recycled with a stale wheel deadline
// still linked to it.
package flowtable

import (
	"time"

	"splidt/internal/features"
	"splidt/internal/flow"
	"splidt/internal/timerwheel"
)

// Entry is one flow's register state. Field layout mirrors the register
// arrays of the simulated pipeline: the subtree ID and packet count the
// model tables key on, the window feature state, the ageing touch stamp,
// and — under wheel expiry — the embedded timer node and the per-class
// idle lifetime the pipeline last armed it with. The owning key is
// store-managed (set at Acquire, verified on lookup) and read through Key.
type Entry struct {
	SID      uint16
	PktCount uint32
	Started  time.Duration
	Touched  time.Duration
	// Lifetime is the idle lifetime the entry's deadline is re-armed with
	// on every touch under wheel expiry: the flow's current leaf's
	// per-class lifetime once classified onto one, the deployment's base
	// lifetime before that. Zero under sweep expiry.
	Lifetime time.Duration
	State    features.FlowState

	// timer is the entry's intrusive wheel node. The stores own its
	// lifecycle edges — claim sets its back-pointer, every free path
	// disarms it, cuckoo displacement relinks it — while the pipeline owns
	// arming (Wheel.Schedule with the entry's deadline).
	timer timerwheel.Node

	key flow.Key
	// hb1/hb2 cache the entry's candidate bucket pair (cuckoo scheme only,
	// set at claim time) so displacement searches never rehash residents.
	hb1, hb2 int32
}

// Key returns the flow that owns the entry.
func (e *Entry) Key() flow.Key { return e.key }

// Timer returns the entry's intrusive wheel node, for the pipeline to arm
// (timerwheel.Wheel.Schedule). The node's Data back-pointer is maintained
// by the store; an expiry callback recovers the entry with
// n.Data.(*flowtable.Entry).
//
//splidt:hotpath
func (e *Entry) Timer() *timerwheel.Node { return &e.timer }

// free disarms the entry's timer and zeroes it — the one free path every
// store reclaim (Release, Evict, Sweep, wheel expiry) must go through:
// zeroing an armed entry without unlinking would leave its slot-list
// neighbours pointing at a recycled cell, and a stale deadline could then
// expire whatever flow claims the cell next.
//
//splidt:hotpath
func (e *Entry) free() {
	e.timer.Unlink()
	*e = Entry{}
}

// Status reports how Acquire satisfied a lookup.
type Status int

const (
	// StatusOwner: the flow already owns the entry (verified key match for
	// associative schemes; hash-slot ownership for Direct).
	StatusOwner Status = iota
	// StatusFresh: the entry was just claimed for the flow; the caller must
	// activate it (set SID non-zero).
	StatusFresh
	// StatusShared: Direct only — the slot is owned by a different flow and
	// the two now share its registers, the hardware collision semantics.
	StatusShared
	// StatusFull: associative schemes only — no bucket way, no displacement
	// path, and no stash line could take the flow. Acquire returned nil; the
	// packet passes through with no flow state.
	StatusFull
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOwner:
		return "owner"
	case StatusFresh:
		return "fresh"
	case StatusShared:
		return "shared"
	case StatusFull:
		return "full"
	default:
		return "status(?)"
	}
}

// Stats are the store's first-class occupancy and placement counters.
// Occupied and Stashed are gauges; the rest are monotone counters, so
// per-session deltas and per-shard sums compose the way pipeline counters
// do.
type Stats struct {
	// Occupied is the number of live entries (gauge).
	Occupied int
	// Stashed is the number of entries currently resident in the overflow
	// stash (gauge; zero for Direct and Oracle).
	Stashed int
	// Kicks counts cuckoo displacements: one per entry moved to its
	// alternate bucket while clearing an insertion path.
	Kicks int
	// StashInserts counts inserts that found no bucket way or displacement
	// path and landed in the stash.
	StashInserts int
	// Rejects counts inserts refused outright: kick budget exhausted and
	// stash full. The rejected flow gets no state; the pipeline counts its
	// packets as collisions.
	Rejects int
}

// Store is the flow-state table contract the pipeline programs against.
// Implementations are not safe for concurrent use; each pipeline replica
// owns one store, mutated only by its shard worker.
type Store interface {
	// Acquire locates or claims the entry for a canonical flow key. It
	// returns the entry and how it was satisfied; on StatusFull the entry is
	// nil. Keys must be canonical (direction-normalised) — the pipeline
	// canonicalises once per packet.
	//
	//splidt:hotpath
	Acquire(k flow.Key) (*Entry, Status)
	// Release frees an entry obtained from Acquire (flow end). The pointer
	// must be one this store returned.
	//
	//splidt:hotpath
	Release(e *Entry)
	// Evict frees the entry owned by the flow, if any, reporting whether a
	// reclaim happened. For Direct this is a no-op when the slot is held by
	// a colliding flow (the slot is that flow's state now).
	//
	//splidt:hotpath
	Evict(k flow.Key) bool
	// Sweep examines up to stripe cells (advancing a wrapping cursor) and
	// frees every entry whose Touched stamp is at least timeout before now,
	// returning how many it reclaimed. Oracle scans its whole map per call;
	// its stripe parameter is ignored.
	//
	//splidt:hotpath
	Sweep(now, timeout time.Duration, stripe int) int
	// Occupied returns the live-entry count, maintained incrementally (O(1)).
	Occupied() int
	// Cap returns the store's total cell count (buckets × ways + stash for
	// Cuckoo, the slot-array length for Direct). Oracle reports the current
	// entry count — it has no fixed capacity.
	Cap() int
	// ScanOccupied recounts live entries by full scan; tests cross-check it
	// against Occupied.
	ScanOccupied() int
	// Walk calls fn for every live entry (SID != 0). fn may mutate the
	// entry's register state in place but must not free it or change its
	// key. Not a hot-path operation: the pipeline uses it for whole-table
	// maintenance (redeploy SID fixup), one call per reconfiguration, never
	// per packet.
	Walk(fn func(*Entry))
	// Stats returns a copy of the store's counters.
	Stats() Stats
}
