package flowtable

import (
	"time"

	"splidt/internal/flow"
)

// Oracle is the unbounded exact store: every flow gets a private entry, no
// collisions, no displacement, no capacity. It is physically unbuildable —
// registers on a switch are finite — which is exactly why it exists: the
// high-collision equivalence tests run the bounded schemes against it as
// ground truth. Unlike Direct and Cuckoo it allocates on first-packet
// insert (map growth plus one entry), so it is a test instrument, not a
// deployment scheme.
type Oracle struct {
	flows map[flow.Key]*Entry
	stats Stats
}

// NewOracle builds an unbounded exact store.
func NewOracle() *Oracle {
	return &Oracle{flows: make(map[flow.Key]*Entry)}
}

// Acquire implements Store: always Owner or Fresh, never Shared or Full.
func (o *Oracle) Acquire(k flow.Key) (*Entry, Status) {
	if e, ok := o.flows[k]; ok {
		return e, StatusOwner
	}
	e := &Entry{key: k}
	e.timer.Data = e
	o.flows[k] = e
	return e, StatusFresh
}

// Release implements Store.
func (o *Oracle) Release(e *Entry) {
	delete(o.flows, e.key)
	e.free()
}

// Evict implements Store.
func (o *Oracle) Evict(k flow.Key) bool {
	e, ok := o.flows[k]
	if !ok || e.SID == 0 {
		return false
	}
	o.Release(e)
	return true
}

// Sweep implements Store. The oracle has no cell array to stripe over; each
// call scans the whole map (stripe is ignored) and frees every idle entry —
// the same reclaim set an exact table of infinite stripe would produce.
// Iteration order is irrelevant because eviction is a per-entry predicate.
func (o *Oracle) Sweep(now, timeout time.Duration, _ int) int {
	evicted := 0
	for _, e := range o.flows {
		if e.SID != 0 && now-e.Touched >= timeout {
			o.Release(e)
			evicted++
		}
	}
	return evicted
}

// Occupied implements Store.
func (o *Oracle) Occupied() int { return len(o.flows) }

// Cap implements Store: the oracle is unbounded, so its capacity is
// whatever it currently holds.
func (o *Oracle) Cap() int { return len(o.flows) }

// Walk implements Store.
func (o *Oracle) Walk(fn func(*Entry)) {
	for _, e := range o.flows {
		if e.SID != 0 {
			fn(e)
		}
	}
}

// ScanOccupied implements Store.
func (o *Oracle) ScanOccupied() int {
	n := 0
	for _, e := range o.flows {
		if e.SID != 0 {
			n++
		}
	}
	return n
}

// Stats implements Store.
func (o *Oracle) Stats() Stats {
	s := o.stats
	s.Occupied = len(o.flows)
	return s
}
