package flowtable

import (
	"time"

	"splidt/internal/flow"
)

// Cuckoo scheme defaults.
const (
	// DefaultWays is the bucket associativity: 4-way buckets are the
	// standard cuckoo sweet spot (load factors past 0.9 with two hashes).
	DefaultWays = 4
	// DefaultStash is the overflow stash capacity — a handful of lines, the
	// way hardware cuckoo engines back their tables with a tiny CAM.
	DefaultStash = 8
	// DefaultMaxProbe bounds the breadth-first displacement search: the
	// number of cells one insert may examine before falling back to the
	// stash. It bounds insert latency the way bounded kick chains do in
	// rte_hash/libcuckoo.
	DefaultMaxProbe = 128
)

// CuckooConfig sizes a cuckoo store.
type CuckooConfig struct {
	// Capacity is the target number of bucket cells (the register budget the
	// deployment allocates). It is rounded up to a whole number of buckets,
	// so the built table holds at least Capacity entries before the stash.
	Capacity int
	// Ways is the bucket associativity (default DefaultWays).
	Ways int
	// Stash is the overflow stash line count: 0 selects DefaultStash, any
	// negative value disables the stash entirely (a pure bucket table, e.g.
	// to model hardware with no CAM backing or to measure the stash's
	// contribution — overflow then rejects immediately).
	Stash int
	// MaxProbe is the displacement-search cell budget per insert (default
	// DefaultMaxProbe).
	MaxProbe int
}

// Cuckoo is a d-way set-associative flow table with cuckoo-style
// displacement and a bounded overflow stash. Each flow has two candidate
// buckets derived from the dispatch hash (h1 is the same CRC32 index the
// direct scheme uses; h2 is the high half of the splitmix64-scrambled
// dispatch hash, statistically independent of both h1 and shard choice).
// Every entry stores its full key and every lookup verifies it, so flows
// never share state: where the direct scheme silently couples colliding
// flows, Cuckoo either places a flow in one of its 2×Ways cells (displacing
// residents along a bounded breadth-first eviction path), parks it in the
// stash, or — only when all of that fails — rejects it, visibly, in
// Stats.Rejects.
type Cuckoo struct {
	ways     int
	buckets  int
	entries  []Entry // buckets × ways; bucket b is entries[b*ways:(b+1)*ways]
	stash    []Entry
	occupied int
	stashed  int
	sweepPos int // wrapping cursor over entries then stash
	maxProbe int
	stats    Stats

	// Displacement-search scratch, preallocated so inserts never allocate.
	queue  []int32 // BFS frontier: indices of occupied cells to free
	parent []int32 // queue index whose occupant's alternate bucket holds this cell
	seen   []bool  // per-cell enqueued marker, cleared after each search
}

// StashLines resolves a configured stash size to the line count a cuckoo
// store will actually build: 0 selects DefaultStash, negative disables the
// stash. Exported so front ends can report the effective geometry without
// re-implementing the rule.
func StashLines(configured int) int {
	if configured < 0 {
		return 0
	}
	if configured == 0 {
		return DefaultStash
	}
	return configured
}

// NewCuckoo builds a cuckoo store.
func NewCuckoo(cfg CuckooConfig) *Cuckoo {
	if cfg.Capacity <= 0 {
		panic("flowtable: non-positive cuckoo capacity")
	}
	ways := cfg.Ways
	if ways <= 0 {
		ways = DefaultWays
	}
	stash := StashLines(cfg.Stash)
	probe := cfg.MaxProbe
	if probe <= 0 {
		probe = DefaultMaxProbe
	}
	buckets := (cfg.Capacity + ways - 1) / ways
	t := &Cuckoo{
		ways:     ways,
		buckets:  buckets,
		entries:  make([]Entry, buckets*ways),
		stash:    make([]Entry, stash),
		maxProbe: probe,
	}
	t.queue = make([]int32, 0, probe)
	t.parent = make([]int32, 0, probe)
	t.seen = make([]bool, len(t.entries))
	return t
}

// bucketPair derives the two candidate buckets from the canonical key with
// a single CRC pass. h1 is the raw register hash (the direct scheme's index
// function); h2 is the high half of the dispatch hash — splitmix64(h1),
// exactly k.ShardHash() for a canonical key — whose low half drives shard
// selection, so h2 stays decorrelated from both h1 and the shard. The pair
// is cached on the entry at claim time, so displacement searches never
// rehash residents.
//
//splidt:hotpath
func (t *Cuckoo) bucketPair(k flow.Key) (int, int) {
	h1 := k.Hash()
	b1 := int(h1 % uint32(t.buckets))
	b2 := int(uint32(flow.Mix64(uint64(h1))>>32) % uint32(t.buckets))
	return b1, b2
}

// altBucket returns the other candidate bucket of a resident entry, read
// from the pair cached at claim time.
//
//splidt:hotpath
func (t *Cuckoo) altBucket(e *Entry, cur int) int {
	if cur == int(e.hb1) {
		return int(e.hb2)
	}
	return int(e.hb1)
}

// lookup finds the flow's entry in its candidate buckets (or the stash)
// with full key verification, or nil.
//
//splidt:hotpath
func (t *Cuckoo) lookup(k flow.Key, b1, b2 int) *Entry {
	base := b1 * t.ways
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if e.SID != 0 && e.key == k {
			return e
		}
	}
	if b2 != b1 {
		base = b2 * t.ways
		for w := 0; w < t.ways; w++ {
			e := &t.entries[base+w]
			if e.SID != 0 && e.key == k {
				return e
			}
		}
	}
	if t.stashed > 0 {
		for i := range t.stash {
			e := &t.stash[i]
			if e.SID != 0 && e.key == k {
				return e
			}
		}
	}
	return nil
}

// freeWay returns an empty cell in the bucket, or nil.
//
//splidt:hotpath
func (t *Cuckoo) freeWay(b int) *Entry {
	base := b * t.ways
	for w := 0; w < t.ways; w++ {
		if t.entries[base+w].SID == 0 {
			return &t.entries[base+w]
		}
	}
	return nil
}

// insert claims a cell for k: a free way in either candidate bucket, a cell
// cleared by displacing residents along a breadth-first eviction path
// (bounded by maxProbe examined cells), or a stash line. Returns nil when
// all three fail. The search phase is read-only, so a failed insert never
// perturbs resident flows — an entry is only ever moved to a cell it is
// about to occupy, which is what keeps rejection safe under a full stash.
//
// A completely full table short-circuits before any scan: under sustained
// overload every packet of every stateless flow retries its insert, and
// paying the bounded BFS budget per packet just to rediscover that zero
// cells exist would cut hot-path throughput exactly when the table is
// saturated. (A partially full table still pays the search — a failed
// search for one key says nothing about another key's buckets.)
//
//splidt:hotpath
func (t *Cuckoo) insert(k flow.Key, b1, b2 int) *Entry {
	if t.occupied == len(t.entries)+len(t.stash) {
		t.stats.Rejects++
		return nil
	}
	e := t.freeWay(b1)
	if e == nil && b2 != b1 {
		e = t.freeWay(b2)
	}
	if e == nil {
		e = t.searchAndKick(b1, b2)
	}
	if e == nil {
		for i := range t.stash {
			if t.stash[i].SID == 0 {
				e = &t.stash[i]
				t.stashed++
				t.stats.StashInserts++
				break
			}
		}
	}
	if e == nil {
		t.stats.Rejects++
		return nil
	}
	e.key = k
	e.hb1, e.hb2 = int32(b1), int32(b2)
	e.timer.Data = e
	return e
}

// searchAndKick runs the bounded breadth-first displacement search from the
// two (fully occupied) candidate buckets and, if it finds a path to a free
// cell, applies the chain of moves — each resident hops to a free cell in
// its own alternate bucket — and returns the freed root cell. nil when no
// path exists within the probe budget.
//
//splidt:hotpath
func (t *Cuckoo) searchAndKick(b1, b2 int) *Entry {
	q, par := t.queue[:0], t.parent[:0]
	enqueue := func(b int, p int32) {
		base := b * t.ways
		for w := 0; w < t.ways && len(q) < t.maxProbe; w++ {
			ci := int32(base + w)
			if !t.seen[ci] {
				t.seen[ci] = true
				// Both appends land in scratch preallocated to maxProbe cap
				// (NewCuckoo) and the loop guard caps len(q) below it, so the
				// backing arrays never grow.
				q = append(q, ci) //splidt:allow append — bounded by maxProbe into preallocated scratch
				par = append(par, p)
			}
		}
	}
	enqueue(b1, -1)
	if b2 != b1 {
		enqueue(b2, -1)
	}
	hit, free := -1, int32(-1)
search:
	for i := 0; i < len(q); i++ {
		alt := t.altBucket(&t.entries[q[i]], int(q[i])/t.ways)
		base := alt * t.ways
		for w := 0; w < t.ways; w++ {
			if t.entries[base+w].SID == 0 {
				hit, free = i, int32(base+w)
				break search
			}
		}
		enqueue(alt, int32(i))
	}
	var root *Entry
	if hit >= 0 {
		// Apply the path back to front: the hit cell's occupant moves to the
		// free cell, each ancestor's occupant moves into the cell its child
		// vacated, and the root cell (in b1 or b2) ends up free.
		cur, dst := hit, free
		for {
			src := q[cur]
			t.entries[dst] = t.entries[src]
			// The copy carries the entry's armed timer node; repoint the
			// node's back-pointer and its list neighbours at the new cell
			// before the stale source is zeroed (plain zero, never Unlink —
			// the links now belong to the copy).
			moved := &t.entries[dst]
			moved.timer.Data = moved
			moved.timer.Relink()
			t.entries[src] = Entry{}
			t.stats.Kicks++
			dst = src
			if par[cur] < 0 {
				break
			}
			cur = int(par[cur])
		}
		root = &t.entries[dst]
	}
	for _, ci := range q {
		t.seen[ci] = false
	}
	t.queue, t.parent = q[:0], par[:0]
	return root
}

// Acquire implements Store: verified lookup, then placement. The bucket
// pair is derived once per call and threaded through both phases.
//
//splidt:hotpath
func (t *Cuckoo) Acquire(k flow.Key) (*Entry, Status) {
	b1, b2 := t.bucketPair(k)
	if e := t.lookup(k, b1, b2); e != nil {
		return e, StatusOwner
	}
	if e := t.insert(k, b1, b2); e != nil {
		t.occupied++
		return e, StatusFresh
	}
	return nil, StatusFull
}

// inStash reports whether the entry pointer is a stash line.
//
//splidt:hotpath
func (t *Cuckoo) inStash(e *Entry) bool {
	for i := range t.stash {
		if e == &t.stash[i] {
			return true
		}
	}
	return false
}

// Release implements Store; freeing a stash-resident entry frees its stash
// line for the next overflow.
//
//splidt:hotpath
func (t *Cuckoo) Release(e *Entry) {
	if t.inStash(e) {
		t.stashed--
	}
	e.free()
	t.occupied--
}

// Evict implements Store: verified, so only the owning flow's entry —
// bucket- or stash-resident — is reclaimed.
//
//splidt:hotpath
func (t *Cuckoo) Evict(k flow.Key) bool {
	b1, b2 := t.bucketPair(k)
	e := t.lookup(k, b1, b2)
	if e == nil {
		return false
	}
	t.Release(e)
	return true
}

// Sweep implements Store: a bounded stripe of the flat cell space (bucket
// cells, then stash lines) per call, with a wrapping cursor — stash
// residents age out exactly like bucket residents, freeing their lines.
//
//splidt:hotpath
func (t *Cuckoo) Sweep(now, timeout time.Duration, stripe int) int {
	cells := len(t.entries) + len(t.stash)
	if stripe > cells {
		stripe = cells
	}
	evicted := 0
	for i := 0; i < stripe; i++ {
		var e *Entry
		stashLine := t.sweepPos >= len(t.entries)
		if stashLine {
			e = &t.stash[t.sweepPos-len(t.entries)]
		} else {
			e = &t.entries[t.sweepPos]
		}
		t.sweepPos++
		if t.sweepPos == cells {
			t.sweepPos = 0
		}
		if e.SID != 0 && now-e.Touched >= timeout {
			if stashLine {
				t.stashed--
			}
			e.free()
			t.occupied--
			evicted++
		}
	}
	return evicted
}

// Occupied implements Store.
func (t *Cuckoo) Occupied() int { return t.occupied }

// Cap implements Store: every cell a flow could occupy.
func (t *Cuckoo) Cap() int { return len(t.entries) + len(t.stash) }

// Ways returns the bucket associativity.
func (t *Cuckoo) Ways() int { return t.ways }

// Buckets returns the bucket count.
func (t *Cuckoo) Buckets() int { return t.buckets }

// Walk implements Store: bucket cells first, then the stash.
func (t *Cuckoo) Walk(fn func(*Entry)) {
	for i := range t.entries {
		if t.entries[i].SID != 0 {
			fn(&t.entries[i])
		}
	}
	for i := range t.stash {
		if t.stash[i].SID != 0 {
			fn(&t.stash[i])
		}
	}
}

// ScanOccupied implements Store.
func (t *Cuckoo) ScanOccupied() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].SID != 0 {
			n++
		}
	}
	for i := range t.stash {
		if t.stash[i].SID != 0 {
			n++
		}
	}
	return n
}

// Stats implements Store.
func (t *Cuckoo) Stats() Stats {
	s := t.stats
	s.Occupied = t.occupied
	s.Stashed = t.stashed
	return s
}
