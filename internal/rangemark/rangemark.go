// Package rangemark compiles trained SpliDT models into data-plane match
// tables using the Range Marking algorithm of NetBeacon (§3.2.1 of the
// paper): per-feature TCAM tables translate register values into compact
// range marks, and a model table matches (subtree ID, marks) to either the
// next subtree ID or a class label — one rule per decision-tree leaf,
// avoiding the cross-product rule explosion of naive encodings.
package rangemark

import (
	"fmt"
	"sort"
	"time"

	"splidt/internal/core"
	"splidt/internal/dt"
	"splidt/internal/features"
	"splidt/internal/tcam"
)

// SIDBits is the width of the subtree-ID match field.
const SIDBits = 16

// Compiled is the full data-plane artifact of one model: k feature tables
// (match-key generators), the model table, and the operator-selection
// assignment of features to register slots per subtree.
//
// For quantised models (ValueBits < 32), each feature's register holds
// v >> shift(f) in a ValueBits-wide field, where shift(f) comes from the
// model's per-feature training-range scaling; thresholds shift identically,
// which is exactly equivalent to comparing the low-bit-zeroed values the
// software model classifies on.
type Compiled struct {
	K         int
	ValueBits int // feature value precision / register width (32, 16, or 8)

	// shifts is the model's per-feature register scaling (nil at 32-bit).
	shifts []uint

	// FeatureTables[slot] matches (SID exact, feature value ternary) and
	// returns the slot's range mark.
	FeatureTables []*tcam.Table

	// slotFeature[sid][slot] is the feature ID the slot holds while the
	// subtree is active, or -1 for unused slots — the contents of the
	// operator-selection MATs.
	slotFeature map[int][]int

	// modelRules holds one rule per leaf across all subtrees, in priority
	// order (rules of one subtree are disjoint, so order within a subtree is
	// immaterial).
	modelRules []ModelRule

	// markBits[slot] is the mark field width of each slot in the model key.
	markBits []int
}

// ModelRule is one row of the model table: an exact SID match plus one
// inclusive mark interval per slot. Range marking encodes each interval in
// a single TCAM entry, so Entries accounting counts each ModelRule once.
type ModelRule struct {
	SID    int
	Lo, Hi []uint32 // per-slot inclusive mark interval
	Exit   bool     // true: classify; false: transition
	// Class is the leaf's majority class. For Exit rules it is the final
	// label; for transition rules it is the fallback label emitted when the
	// flow ends before the next partition completes.
	Class int
	Next  int // next SID when !Exit
	// Lifetime is the leaf's per-class idle flow lifetime (0 = none): the
	// deadline the wheel-expiry data plane re-arms a flow with once it is
	// classified onto this leaf. Carried verbatim from dt.Node.Lifetime.
	Lifetime time.Duration
}

// Compile lowers a trained model to tables. valueBits selects feature
// precision (32 unless the model was trained quantised).
func Compile(m *core.Model) (*Compiled, error) {
	valueBits := 32
	if b := m.Cfg.QuantizeBits; b > 0 && b < 32 {
		valueBits = b
	}
	k := m.Cfg.FeaturesPerSubtree
	c := &Compiled{
		K:           k,
		ValueBits:   valueBits,
		shifts:      m.Shifts,
		slotFeature: make(map[int][]int, len(m.Subtrees)),
		markBits:    make([]int, k),
	}
	for slot := 0; slot < k; slot++ {
		c.FeatureTables = append(c.FeatureTables,
			tcam.New(fmt.Sprintf("feature[%d]", slot), SIDBits, valueBits))
	}

	maxMarks := make([]uint32, k)
	for _, st := range m.Subtrees {
		if st.SID > (1<<SIDBits)-1 {
			return nil, fmt.Errorf("rangemark: SID %d exceeds %d-bit field", st.SID, SIDBits)
		}
		feats := st.Features()
		if len(feats) > k {
			return nil, fmt.Errorf("rangemark: subtree %d uses %d features > k=%d",
				st.SID, len(feats), k)
		}
		slots := make([]int, k)
		for i := range slots {
			slots[i] = -1
		}
		slotOf := make(map[int]int, len(feats))
		for i, f := range feats {
			slots[i] = f
			slotOf[f] = i
		}
		c.slotFeature[st.SID] = slots

		// Integer thresholds per feature, shifted into each register's value
		// space and deduplicated.
		thresholds := make(map[int][]uint32, len(feats))
		for f, ts := range st.Tree.Thresholds() {
			thresholds[f] = floorDedup(ts, c.shiftOf(f), valueBits)
		}

		// Feature-table rules: one prefix set per range per used feature.
		for f, us := range thresholds {
			slot := slotOf[f]
			marks := len(us) + 1
			if uint32(marks-1) > maxMarks[slot] {
				maxMarks[slot] = uint32(marks - 1)
			}
			lim := fieldMax(valueBits)
			lo := uint32(0)
			for mark := 0; mark < marks; mark++ {
				hi := lim
				if mark < len(us) {
					hi = us[mark]
				}
				if hi < lo {
					continue // empty range after flooring collisions
				}
				for _, p := range tcam.ExpandRange(lo, hi, valueBits) {
					c.FeatureTables[slot].Insert(tcam.Entry{
						Value:    []uint32{uint32(st.SID), p.Value},
						Mask:     []uint32{fieldMax(SIDBits), p.Mask},
						Priority: 0,
						Action:   mark,
					})
				}
				lo = hi + 1
			}
		}

		// Model rules: one per leaf, intervals gathered along the root path.
		full := func() ([]uint32, []uint32) {
			lo := make([]uint32, k)
			hi := make([]uint32, k)
			for i := range hi {
				hi[i] = ^uint32(0)
			}
			return lo, hi
		}
		var walk func(n *dt.Node, lo, hi []uint32)
		walk = func(n *dt.Node, lo, hi []uint32) {
			if n.Leaf {
				rule := ModelRule{
					SID:      st.SID,
					Lo:       append([]uint32(nil), lo...),
					Hi:       append([]uint32(nil), hi...),
					Class:    n.Class,
					Lifetime: n.Lifetime,
				}
				if next, ok := st.Next[n.LeafID]; ok {
					rule.Next = next
				} else {
					rule.Exit = true
				}
				c.modelRules = append(c.modelRules, rule)
				return
			}
			slot := slotOf[n.Feature]
			us := thresholds[n.Feature]
			mk := markIndex(us, n.Threshold, c.shiftOf(n.Feature), valueBits)
			// Left: mark <= mk. Right: mark >= mk+1.
			llo, lhi := clone(lo), clone(hi)
			if uint32(mk) < lhi[slot] {
				lhi[slot] = uint32(mk)
			}
			walk(n.Left, llo, lhi)
			rlo, rhi := clone(lo), clone(hi)
			if uint32(mk+1) > rlo[slot] {
				rlo[slot] = uint32(mk + 1)
			}
			walk(n.Right, rlo, rhi)
		}
		lo, hi := full()
		walk(st.Tree.Root, lo, hi)
	}

	for slot := 0; slot < k; slot++ {
		c.markBits[slot] = bitsFor(maxMarks[slot])
	}
	return c, nil
}

func clone(xs []uint32) []uint32 { return append([]uint32(nil), xs...) }

func fieldMax(bits int) uint32 {
	if bits >= 32 {
		return ^uint32(0)
	}
	return 1<<uint(bits) - 1
}

func bitsFor(maxVal uint32) int {
	b := 1
	for v := maxVal; v > 1; v >>= 1 {
		b++
	}
	return b
}

// shiftOf returns the register scaling of a feature (0 at full precision).
//
//splidt:hotpath
func (c *Compiled) shiftOf(f int) uint {
	if f < len(c.shifts) {
		return c.shifts[f]
	}
	return 0
}

// floorDedup floors thresholds, shifts them into the register value space,
// and removes duplicates.
func floorDedup(ts []float64, shift uint, valueBits int) []uint32 {
	out := make([]uint32, 0, len(ts))
	for _, t := range ts {
		out = append(out, features.RegValue(t, shift, valueBits))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dst := out[:0]
	for i, u := range out {
		if i == 0 || dst[len(dst)-1] != u {
			dst = append(dst, u)
		}
	}
	return dst
}

// markIndex returns the index of t's shifted floor in the deduped threshold
// list us: value <= t ⟺ mark <= markIndex.
func markIndex(us []uint32, t float64, shift uint, valueBits int) int {
	u := features.RegValue(t, shift, valueBits)
	return sort.Search(len(us), func(i int) bool { return us[i] >= u })
}

// SlotFeatures returns the per-slot feature assignment of a subtree (-1 for
// unused slots) — the operator-selection MAT contents.
//
//splidt:hotpath
func (c *Compiled) SlotFeatures(sid int) []int {
	s, ok := c.slotFeature[sid] //splidt:allow map — read-only after Freeze; the operator-selection MAT is a map by design
	if !ok {
		//splidt:allow fmt,box — cold panic path: corrupt deployment
		panic(fmt.Sprintf("rangemark: unknown SID %d", sid))
	}
	return s
}

// HasSID reports whether the compiled model contains the subtree.
func (c *Compiled) HasSID(sid int) bool {
	_, ok := c.slotFeature[sid]
	return ok
}

// Freeze sorts every feature table into its final priority order. After
// Freeze, Marks/MarksInto/Lookup perform no writes, so one Compiled can be
// shared read-only by concurrent pipeline replicas (the sharded engine
// deploys one compiled program across all of its workers).
func (c *Compiled) Freeze() {
	for _, t := range c.FeatureTables {
		t.Freeze()
	}
}

// Marks runs the k match-key generator tables for the active subtree over a
// full feature row, returning the per-slot range marks.
func (c *Compiled) Marks(sid int, row []float64) []uint32 {
	return c.MarksInto(sid, row, make([]uint32, c.K))
}

// MarksInto is Marks with a caller-provided destination of length K,
// enabling an allocation-free per-window hot path. It returns dst.
//
//splidt:hotpath
func (c *Compiled) MarksInto(sid int, row []float64, dst []uint32) []uint32 {
	slots := c.SlotFeatures(sid)
	if len(dst) != c.K {
		//splidt:allow fmt,box — cold panic path: caller bug
		panic(fmt.Sprintf("rangemark: marks destination length %d, want %d", len(dst), c.K))
	}
	for slot := range dst {
		dst[slot] = 0
	}
	for slot, f := range slots {
		if f < 0 {
			continue
		}
		v := features.RegValue(row[f], c.shiftOf(f), c.ValueBits)
		if a, ok := c.FeatureTables[slot].Lookup(uint32(sid), v); ok {
			dst[slot] = uint32(a)
		}
	}
	return dst
}

// Lookup matches the model table: exact SID plus per-slot mark intervals.
//
//splidt:hotpath
func (c *Compiled) Lookup(sid int, marks []uint32) (ModelRule, bool) {
	for _, r := range c.modelRules {
		if r.SID != sid {
			continue
		}
		hit := true
		for slot := 0; slot < c.K; slot++ {
			if marks[slot] < r.Lo[slot] || marks[slot] > r.Hi[slot] {
				hit = false
				break
			}
		}
		if hit {
			return r, true
		}
	}
	return ModelRule{}, false
}

// ModelRules exposes the model-table rules.
func (c *Compiled) ModelRules() []ModelRule { return c.modelRules }

// MaxLifetime returns the largest per-leaf lifetime across the model table,
// or 0 when the model carries none. Wheel-expiry deployments use it as the
// base lifetime for flows not yet classified onto a leaf — conservative by
// construction, since no leaf would keep the flow longer.
func (c *Compiled) MaxLifetime() time.Duration {
	var max time.Duration
	for _, r := range c.modelRules {
		if r.Lifetime > max {
			max = r.Lifetime
		}
	}
	return max
}

// FeatureEntries returns the total entry count across feature tables.
func (c *Compiled) FeatureEntries() int {
	n := 0
	for _, t := range c.FeatureTables {
		n += t.Len()
	}
	return n
}

// Entries returns the model's total TCAM entry count: feature-table entries
// plus one model-table entry per leaf (range marking's 1:1 leaf encoding).
func (c *Compiled) Entries() int { return c.FeatureEntries() + len(c.modelRules) }

// ModelKeyBits returns the model table's match key width: SID plus the mark
// fields of all k slots.
func (c *Compiled) ModelKeyBits() int {
	n := SIDBits
	for _, b := range c.markBits {
		n += b
	}
	return n
}

// Bits returns total TCAM bit consumption: feature tables at their key
// widths plus model rules at the model key width.
func (c *Compiled) Bits() int {
	n := 0
	for _, t := range c.FeatureTables {
		n += t.Bits()
	}
	n += len(c.modelRules) * c.ModelKeyBits()
	return n
}

// NaiveEntries estimates the entry count of a naive (no range marking)
// encoding, where each leaf's per-feature value intervals are prefix-
// expanded and crossed — the ablation baseline for the range-marking design
// choice. Counts are capped at 1<<40 to avoid overflow on deep trees.
func NaiveEntries(m *core.Model) int64 {
	valueBits := 32
	if b := m.Cfg.QuantizeBits; b > 0 && b < 32 {
		valueBits = b
	}
	var total int64
	for _, st := range m.Subtrees {
		var walk func(n *dt.Node, spans map[int][2]uint32)
		walk = func(n *dt.Node, spans map[int][2]uint32) {
			if n.Leaf {
				prod := int64(1)
				for _, span := range spans {
					ps := tcam.ExpandRange(span[0], span[1], valueBits)
					prod *= int64(len(ps))
					if prod > 1<<40 {
						prod = 1 << 40
						break
					}
				}
				total += prod
				if total > 1<<40 {
					total = 1 << 40
				}
				return
			}
			u := features.RegValue(n.Threshold, shiftAt(m.Shifts, n.Feature), valueBits)
			l := cloneSpans(spans)
			s := l[n.Feature]
			if _, ok := l[n.Feature]; !ok {
				s = [2]uint32{0, fieldMax(valueBits)}
			}
			ls := s
			if u < ls[1] {
				ls[1] = u
			}
			l[n.Feature] = ls
			walk(n.Left, l)
			r := cloneSpans(spans)
			s2, ok := r[n.Feature]
			if !ok {
				s2 = [2]uint32{0, fieldMax(valueBits)}
			}
			if u+1 > s2[0] {
				s2[0] = u + 1
			}
			r[n.Feature] = s2
			walk(n.Right, r)
		}
		walk(st.Tree.Root, map[int][2]uint32{})
	}
	return total
}

// shiftAt reads a per-feature shift from a possibly-nil shift table.
func shiftAt(shifts []uint, f int) uint {
	if f < len(shifts) {
		return shifts[f]
	}
	return 0
}

func cloneSpans(m map[int][2]uint32) map[int][2]uint32 {
	out := make(map[int][2]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
