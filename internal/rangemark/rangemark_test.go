package rangemark

import (
	"testing"

	"splidt/internal/core"
	"splidt/internal/features"
	"splidt/internal/trace"
)

func trainModel(t *testing.T, id trace.DatasetID, n int, cfg core.Config) (*core.Model, []trace.Sample) {
	t.Helper()
	flows := trace.Generate(id, n, 21)
	samples := trace.BuildSamples(flows, len(cfg.Partitions))
	train, test := trace.Split(samples, 0.7)
	m, err := core.Train(train, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, test
}

// rows renders a sample's windows at the model's register precision.
func rows(s trace.Sample, m *core.Model) [][]float64 {
	out := make([][]float64, len(s.Windows))
	for i, w := range s.Windows {
		row := make([]float64, len(w))
		copy(row, w[:])
		if m.Shifts != nil {
			row = features.QuantizeRow(row, m.Shifts)
		}
		out[i] = row
	}
	return out
}

func TestCompileBasic(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _ := trainModel(t, trace.D2, 300, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if c.K != 4 || len(c.FeatureTables) != 4 {
		t.Fatalf("K/tables = %d/%d, want 4/4", c.K, len(c.FeatureTables))
	}
	if c.Entries() <= 0 {
		t.Fatal("no TCAM entries")
	}
	if c.FeatureEntries()+len(c.ModelRules()) != c.Entries() {
		t.Fatal("Entries() accounting mismatch")
	}
	leaves := 0
	for _, st := range m.Subtrees {
		leaves += st.Tree.NumLeaves()
	}
	if len(c.ModelRules()) != leaves {
		t.Fatalf("model rules %d != total leaves %d (range marking is 1:1)",
			len(c.ModelRules()), leaves)
	}
}

func TestCompiledMatchesSoftware(t *testing.T) {
	// The load-bearing equivalence: table-driven inference must agree with
	// the software model on every test sample.
	cfg := core.Config{Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13}
	m, test := trainModel(t, trace.D3, 650, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, s := range test {
		want := m.Classify(s.Windows)
		// Walk compiled tables with the same early-exit semantics as the
		// software model.
		sid := 1
		got := -1
		rws := rows(s, m)
		for i, row := range rws {
			marks := c.Marks(sid, row)
			rule, ok := c.Lookup(sid, marks)
			if !ok {
				t.Fatalf("model table miss at sid %d", sid)
			}
			if rule.Exit || i == len(rws)-1 {
				// Transition rules carry the leaf's majority class as the
				// fallback label for flows ending mid-model.
				got = rule.Class
				break
			}
			sid = rule.Next
		}
		if got != want {
			t.Fatalf("compiled %d != software %d", got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}

func TestModelRulesPartitionMarkSpace(t *testing.T) {
	// Within a subtree, exactly one rule must match any mark combination
	// that the feature tables can produce.
	cfg := core.Config{Partitions: []int{3}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, test := trainModel(t, trace.D2, 300, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range test {
		row := rows(s, m)[0]
		marks := c.Marks(1, row)
		n := 0
		for _, r := range c.ModelRules() {
			if r.SID != 1 {
				continue
			}
			hit := true
			for slot := 0; slot < c.K; slot++ {
				if marks[slot] < r.Lo[slot] || marks[slot] > r.Hi[slot] {
					hit = false
					break
				}
			}
			if hit {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("marks %v matched %d rules, want exactly 1", marks, n)
		}
	}
}

func TestSlotFeaturesWithinK(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 3, NumClasses: 19}
	m, _ := trainModel(t, trace.D1, 570, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Subtrees {
		slots := c.SlotFeatures(st.SID)
		if len(slots) != 3 {
			t.Fatalf("SID %d has %d slots, want 3", st.SID, len(slots))
		}
		used := 0
		for _, f := range slots {
			if f >= 0 {
				used++
			}
		}
		if used != len(st.Features()) {
			t.Fatalf("SID %d slot assignment covers %d features, want %d",
				st.SID, used, len(st.Features()))
		}
	}
}

func TestQuantizedCompile(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4, QuantizeBits: 16}
	m, test := trainModel(t, trace.D2, 300, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.ValueBits != 16 {
		t.Fatalf("ValueBits = %d, want 16", c.ValueBits)
	}
	// Spot equivalence on quantised rows.
	for _, s := range test[:10] {
		want := m.Classify(s.Windows)
		sid := 1
		rws := rows(s, m)
		got := -1
		for i, row := range rws {
			marks := c.Marks(sid, row)
			rule, ok := c.Lookup(sid, marks)
			if !ok {
				t.Fatal("model table miss")
			}
			if rule.Exit || i == len(rws)-1 {
				got = rule.Class
				break
			}
			sid = rule.Next
		}
		if got != want {
			t.Fatalf("quantised compiled %d != software %d", got, want)
		}
	}
}

func TestModelKeyBits(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4}
	m, _ := trainModel(t, trace.D2, 300, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if kb := c.ModelKeyBits(); kb < SIDBits+c.K || kb > SIDBits+32*c.K {
		t.Fatalf("ModelKeyBits = %d implausible", kb)
	}
	if c.Bits() <= 0 {
		t.Fatal("Bits() = 0")
	}
}

func TestNaiveEntriesAtLeastRangeMarking(t *testing.T) {
	cfg := core.Config{Partitions: []int{4, 3}, FeaturesPerSubtree: 4, NumClasses: 13}
	m, _ := trainModel(t, trace.D3, 650, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveEntries(m)
	if naive < int64(len(c.ModelRules())) {
		t.Fatalf("naive %d < range-marking model rules %d", naive, len(c.ModelRules()))
	}
}

func TestUnknownSIDPanics(t *testing.T) {
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	m, _ := trainModel(t, trace.D2, 100, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SlotFeatures(999) did not panic")
		}
	}()
	c.SlotFeatures(999)
}

func BenchmarkCompile(b *testing.B) {
	flows := trace.Generate(trace.D2, 300, 21)
	samples := trace.BuildSamples(flows, 2)
	m, err := core.Train(samples, core.Config{
		Partitions: []int{3, 3}, FeaturesPerSubtree: 4, NumClasses: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(m); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMarksIntoMatchesMarks: the allocation-free path must agree with the
// allocating one for every subtree, before and after Freeze.
func TestMarksIntoMatchesMarks(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	m, samples := trainModel(t, trace.D2, 300, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	dst := make([]uint32, c.K)
	check := func() {
		for _, st := range m.Subtrees {
			for _, s := range samples[:20] {
				row := s.Windows[0]
				want := c.Marks(st.SID, row[:])
				got := c.MarksInto(st.SID, row[:], dst)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("SID %d slot %d: MarksInto %d != Marks %d", st.SID, i, got[i], want[i])
					}
				}
			}
		}
	}
	check()
	c.Freeze()
	check()
}

func TestMarksIntoPanicsOnBadLength(t *testing.T) {
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	m, samples := trainModel(t, trace.D2, 200, cfg)
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short destination did not panic")
		}
	}()
	row := samples[0].Windows[0]
	c.MarksInto(m.Subtrees[0].SID, row[:], make([]uint32, c.K+1))
}
