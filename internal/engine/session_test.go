package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"splidt/internal/controller"
	"splidt/internal/dataplane"
	"splidt/internal/flow"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// TestStreamingMatchesBatch is the redesign's headline property: for the
// same trace, Start/Feed/Close must produce the same digest multiset and
// the same merged counters as Engine.Run, at every shard count. Run under
// -race this also exercises Feed/worker/sink concurrency.
func TestStreamingMatchesBatch(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	for _, shards := range []int{1, 2, 4, 8} {
		batch, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New batch (%d shards): %v", shards, err)
		}
		want, err := batch.Run(trace.NewStream(trace.D3, eqFlows, eqSeed, eqSpacing))
		if err != nil {
			t.Fatalf("Run (%d shards): %v", shards, err)
		}

		stream, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New stream (%d shards): %v", shards, err)
		}
		sess, err := stream.Start(context.Background())
		if err != nil {
			t.Fatalf("Start (%d shards): %v", shards, err)
		}
		src := trace.NewStream(trace.D3, eqFlows, eqSeed, eqSpacing)
		var stage []pkt.Packet
		for {
			p, ok := src.Next()
			if ok {
				stage = append(stage, p)
			}
			// Odd batch size exercises partial-burst flushes.
			if len(stage) >= 97 || (!ok && len(stage) > 0) {
				off := 0
				for off < len(stage) {
					n, err := sess.Feed(stage[off:])
					off += n
					if err == ErrBackpressure {
						time.Sleep(time.Microsecond)
						continue
					}
					if err != nil {
						t.Fatalf("Feed (%d shards): %v", shards, err)
					}
				}
				stage = stage[:0]
			}
			if !ok {
				break
			}
		}
		got, err := sess.Close()
		if err != nil {
			t.Fatalf("Close (%d shards): %v", shards, err)
		}

		if got.Stats != want.Stats {
			t.Errorf("%d shards: streaming stats %+v, want %+v", shards, got.Stats, want.Stats)
		}
		wantCounts := digestCounts(want.Digests)
		gotCounts := digestCounts(got.Digests)
		if len(got.Digests) != len(want.Digests) || len(gotCounts) != len(wantCounts) {
			t.Fatalf("%d shards: %d digests (%d distinct), want %d (%d distinct)",
				shards, len(got.Digests), len(gotCounts), len(want.Digests), len(wantCounts))
		}
		for d, n := range wantCounts {
			if gotCounts[d] != n {
				t.Fatalf("%d shards: digest %+v count %d, want %d", shards, d, gotCounts[d], n)
			}
		}
		// The deterministic final ordering must match Run's exactly.
		for i := range got.Digests {
			if got.Digests[i] != want.Digests[i] {
				t.Fatalf("%d shards: ordered stream diverges at %d", shards, i)
			}
		}
	}
}

// TestSessionBackpressure pins the non-blocking Feed contract: with the
// workers gated, flooding one shard must surface ErrBackpressure (not
// deadlock), and releasing the workers must let the remainder through with
// nothing lost.
func TestSessionBackpressure(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2, Burst: 4, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	for _, sh := range e.shards {
		sh.hold = hold
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	pkts := trace.Interleave(trace.Generate(trace.D3, 40, eqSeed), 0)
	fed := 0
	sawBackpressure := false
	for tries := 0; fed < len(pkts); tries++ {
		n, err := s.Feed(pkts[fed:])
		fed += n
		if err == ErrBackpressure {
			sawBackpressure = true
			break
		}
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	if !sawBackpressure {
		t.Fatal("gated workers never produced ErrBackpressure")
	}
	if snap := s.Snapshot(); snap.Backpressure == 0 {
		t.Fatal("backpressure not counted in snapshot")
	}

	// Release the workers; the rest of the workload must drain normally.
	close(hold)
	for fed < len(pkts) {
		n, err := s.Feed(pkts[fed:])
		fed += n
		if err == ErrBackpressure {
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("Feed after release: %v", err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets != len(pkts) {
		t.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
	}
}

// TestSessionBlockDropsMidRun feeds a workload twice through one session,
// blocking every flow after its first digest: the second wave must be
// dropped at the dispatch stage, visible in Snapshot and Result, without
// touching the pipelines.
func TestSessionBlockDropsMidRun(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), eqSpacing)

	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	// Drain wave 1's digests and block every classified flow.
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == len(pkts) })
	buf := make([]dataplane.Digest, 256)
	blocked := 0
	for {
		n := s.Poll(buf)
		if n == 0 {
			break
		}
		for _, d := range buf[:n] {
			s.Block(d.Key)
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("wave 1 produced no digests to block")
	}
	if snap := s.Snapshot(); snap.BlockedFlows != blocked {
		t.Fatalf("BlockedFlows = %d, want %d", snap.BlockedFlows, blocked)
	}

	// Wave 2: the same flows again. Every packet of a blocked flow must be
	// dropped before dispatch.
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no packets dropped for blocked flows")
	}
	if got := res.Stats.Packets + int(res.Dropped); got != 2*len(pkts) {
		t.Fatalf("processed+dropped = %d, want %d", got, 2*len(pkts))
	}
	if snap := s.Snapshot(); snap.Dropped != res.Dropped {
		t.Fatalf("snapshot dropped %d != result dropped %d", snap.Dropped, res.Dropped)
	}
}

// TestSessionControllerLoop wires Controller.Serve into a live session and
// checks the full detect→block path: flows of blocked classes stop
// consuming pipeline work on the second wave.
func TestSessionControllerLoop(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := controller.New(13, controller.BlockClasses(0, 1, 2, 3, 4, 5))
	served := make(chan int, 1)
	go func() {
		blocked, serveErr := ctrl.Serve(s)
		if serveErr != nil {
			t.Errorf("Serve reported a fault on a healthy session: %v", serveErr)
		}
		served <- blocked
	}()

	pkts := trace.Interleave(trace.Generate(trace.D3, 80, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	// Wait until wave 1 has fully resolved: every packet either processed
	// or dropped mid-run (the controller blocks early-exiting flows while
	// their tails are still arriving), and the controller has acted on
	// every digest.
	waitFor(t, func() bool {
		snap := s.Snapshot()
		return snap.Stats.Packets+int(snap.Dropped) == len(pkts)
	})
	waitFor(t, func() bool {
		snap := s.Snapshot()
		return snap.Stats.Digests > 0 && ctrl.Digests() >= snap.Stats.Digests
	})
	if s.Snapshot().BlockedFlows == 0 {
		t.Fatal("controller blocked no flows in wave 1")
	}
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	blocked := <-served
	if blocked == 0 {
		t.Fatal("Serve reported no block verdicts")
	}
	if res.Dropped == 0 {
		t.Fatal("blocked flows were not dropped at dispatch")
	}
	if acts := ctrl.ActionCounts(); acts[controller.ActionBlock] != blocked {
		t.Fatalf("controller block count %d != Serve's %d", acts[controller.ActionBlock], blocked)
	}
}

// TestSessionContextCancel: cancelling the context aborts the session; Feed
// starts failing and Close reports the context error.
func TestSessionContextCancel(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := e.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 10, eqSeed), 0)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Feed's error after the abort wraps the recorded cause: callers match
	// both the closed sentinel and the reason the session died.
	waitFor(t, func() bool {
		_, err := s.Feed(pkts[:1])
		return errors.Is(err, ErrSessionClosed)
	})
	if _, err := s.Feed(pkts[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Feed after cancel = %v, want the recorded context cause wrapped in", err)
	}
	if _, err := s.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel = %v, want context.Canceled", err)
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after cancel = %v, want context.Canceled", err)
	}
	// The engine must be reusable after an aborted session.
	if _, err := e.Run(trace.NewStream(trace.D3, 5, eqSeed, 0)); err != nil {
		t.Fatalf("Run after aborted session: %v", err)
	}
}

// TestSessionExclusive: one session at a time; Close releases the engine.
func TestSessionExclusive(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Start(context.Background()); err != ErrSessionActive {
		t.Fatalf("second Start = %v, want ErrSessionActive", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := e.Start(context.Background())
	if err != nil {
		t.Fatalf("Start after Close: %v", err)
	}
	if _, err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionDigestChannel consumes the live channel concurrently with the
// feed and checks every digest arrives exactly once, with ActiveFlows and
// Snapshot readable throughout.
func TestSessionDigestChannel(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var live []dataplane.Digest
	done := make(chan struct{})
	go func() {
		defer close(done)
		for d := range s.Digests() {
			live = append(live, d)
			_ = e.ActiveFlows() // must be safe mid-run
			_ = s.Snapshot()
		}
	}()
	pkts := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	want := digestCounts(res.Digests)
	got := digestCounts(live)
	if len(live) != len(res.Digests) || len(got) != len(want) {
		t.Fatalf("live stream carried %d digests, result has %d", len(live), len(res.Digests))
	}
	for d, n := range want {
		if got[d] != n {
			t.Fatalf("live stream digest %+v count %d, want %d", d, got[d], n)
		}
	}
	if e.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after drain", e.ActiveFlows())
	}
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// feedBlockingDigests drives the leak scenario: the workload is fed in
// small chunks and every digest is answered with blockFn mid-stream, so
// early-exited flows get their remaining packets dropped at the dispatcher
// while their register slots sit parked. It returns how many flows drew a
// block.
func feedBlockingDigests(t *testing.T, s *Session, pkts []pkt.Packet, blockFn func(flow.Key)) int {
	t.Helper()
	buf := make([]dataplane.Digest, 256)
	blocked := 0
	const chunk = 512
	for off := 0; off < len(pkts); off += chunk {
		end := off + chunk
		if end > len(pkts) {
			end = len(pkts)
		}
		if err := s.FeedAll(pkts[off:end]); err != nil {
			t.Fatalf("FeedAll: %v", err)
		}
		for {
			n := s.Poll(buf)
			if n == 0 {
				break
			}
			for _, d := range buf[:n] {
				blockFn(d.Key)
				blocked++
			}
		}
	}
	// Let the workers finish everything fed so far: every packet is either
	// processed or dropped at dispatch.
	waitFor(t, func() bool {
		snap := s.Snapshot()
		return int64(snap.Stats.Packets)+snap.Dropped == snap.Fed
	})
	return blocked
}

// shiftTS returns the packets with timestamps offset by d — a later traffic
// wave on the session's packet-time axis.
func shiftTS(pkts []pkt.Packet, d time.Duration) []pkt.Packet {
	out := make([]pkt.Packet, len(pkts))
	copy(out, pkts)
	for i := range out {
		out[i].TS += d
	}
	return out
}

// TestBlockedFlowLeakRegression is the ageing subsystem's reason to exist,
// in failing-then-fixed shape. PR 2's Block was a dispatch drop filter
// only: blocking a flow that had early-exited left its parked register
// slot waiting for a flow-end packet the dispatcher would now drop, so the
// slot leaked — ActiveFlows never returned to ~0. The test reproduces that
// exact behaviour through the internal filter (leg 1), then shows the
// idle-timeout sweep reclaiming the leak with ageing enabled (leg 2), and
// the new Block evicting it immediately even with ageing off (leg 3).
func TestBlockedFlowLeakRegression(t *testing.T) {
	wave1 := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), eqSpacing)
	// Wave 2: different flows (fresh seed) far enough into packet time that
	// everything wave 1 leaked has been idle for longer than the timeout.
	wave2 := shiftTS(trace.Interleave(trace.Generate(trace.D3, 60, eqSeed+1), eqSpacing), 40*time.Second)

	run := func(idle time.Duration, useFilterOnly bool) (leaked, final, evictions int) {
		cfg := deployCfg(t, 1<<14)
		cfg.IdleTimeout = idle
		cfg.SweepStripe = 1024
		e, err := New(Config{Deploy: cfg, Shards: 2, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		blockFn := s.Block
		if useFilterOnly {
			// PR-2 semantics: drop filter without eviction — the buggy shape.
			blockFn = func(k flow.Key) { s.filter.block(k) }
		}
		if blocked := feedBlockingDigests(t, s, wave1, blockFn); blocked == 0 {
			t.Fatal("wave 1 produced no digests to block")
		}
		// Give pending Block evictions a chance to land (they publish).
		waitFor(t, func() bool {
			snap := s.Snapshot()
			return useFilterOnly || snap.Stats.Evictions > 0 || snap.ActiveFlows == 0
		})
		leaked = s.Snapshot().ActiveFlows

		// Wave 2 drives packet time (and with it the per-shard sweeps)
		// forward; its own flows complete and free their slots.
		if err := s.FeedAll(wave2); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
		snap := s.Snapshot()
		return leaked, snap.ActiveFlows, snap.Stats.Evictions
	}

	// Leg 1 — the regression: ageing off, filter-only block. Early-exited
	// blocked flows leak their slots and nothing ever reclaims them.
	leaked, final, evictions := run(0, true)
	if leaked == 0 {
		t.Fatal("filter-only blocking leaked no slots; the regression scenario needs early-exited blocked flows")
	}
	if final < leaked {
		t.Fatalf("ageing off: leak shrank from %d to %d slots without any eviction mechanism", leaked, final)
	}
	if evictions != 0 {
		t.Fatalf("ageing off: %d evictions counted", evictions)
	}

	// Leg 2 — the fix, sweep arm: same buggy filter-only blocking, but the
	// idle-timeout sweep reclaims the parked-dead slots as wave 2's packet
	// time passes the timeout.
	leaked2, final2, evictions2 := run(10*time.Second, true)
	if leaked2 == 0 {
		t.Fatal("ageing on: wave 1 leaked nothing to reclaim")
	}
	if final2 >= leaked2 {
		t.Fatalf("sweep reclaimed nothing: %d leaked, %d still active", leaked2, final2)
	}
	if evictions2 < leaked2 {
		t.Fatalf("sweep evicted %d slots, want at least the %d leaked", evictions2, leaked2)
	}
	if final2 > 2 {
		t.Fatalf("ActiveFlows = %d after sweep, want ~0", final2)
	}

	// Leg 3 — the fix, eviction arm: Block reclaims the slot at verdict
	// time, ageing not required. The filter entry lands before the
	// eviction and the workers re-check it per packet, so tail packets
	// already queued in the shard rings cannot re-activate the freed slot.
	_, final3, evictions3 := run(0, false)
	if evictions3 == 0 {
		t.Fatal("evicting Block counted no evictions")
	}
	if final3 > 2 {
		t.Fatalf("ActiveFlows = %d at close with evicting Block, want ~0", final3)
	}

	// Leg 4 — the shipped configuration, both arms: evict-on-Block plus the
	// ageing sweep leave no leak at all.
	_, final4, evictions4 := run(10*time.Second, false)
	if final4 > 2 {
		t.Fatalf("ActiveFlows = %d with eviction and ageing, want ~0", final4)
	}
	if evictions4 == 0 {
		t.Fatal("no evictions counted with eviction and ageing enabled")
	}
}

// TestSessionBoundedDigestRetention pins both retention modes: by default a
// session keeps every digest for Close's complete deterministic Result even
// after delivering them through Poll; WithBoundedDigests drops digests once
// delivered, so the Result carries only the undelivered tail.
func TestSessionBoundedDigestRetention(t *testing.T) {
	pkts := trace.Interleave(trace.Generate(trace.D3, 40, eqSeed), 0)
	for _, bounded := range []bool{false, true} {
		cfg := deployCfg(t, eqSlots)
		e, err := New(Config{Deploy: cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		var opts []SessionOption
		if bounded {
			opts = append(opts, WithBoundedDigests())
		}
		s, err := e.Start(context.Background(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FeedAll(pkts); err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool { return s.Snapshot().Stats.Packets == len(pkts) })

		// Drain the full stream mid-session.
		buf := make([]dataplane.Digest, 64)
		var drained []dataplane.Digest
		waitFor(t, func() bool {
			for {
				n := s.Poll(buf)
				if n == 0 {
					break
				}
				drained = append(drained, buf[:n]...)
			}
			return len(drained) >= s.Snapshot().Stats.Digests
		})
		if len(drained) == 0 {
			t.Fatal("no digests to drain")
		}

		res, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if bounded {
			if len(res.Digests) != 0 {
				t.Fatalf("bounded mode: Result kept %d delivered digests, want 0", len(res.Digests))
			}
		} else {
			if len(res.Digests) != len(drained) {
				t.Fatalf("retain mode: Result has %d digests, drained %d — Close must keep the complete stream", len(res.Digests), len(drained))
			}
		}
		// Either way, exactly-once delivery through Poll: drained multiset
		// equals the processed digest count.
		if len(drained) != res.Stats.Digests {
			t.Fatalf("drained %d digests, stats counted %d", len(drained), res.Stats.Digests)
		}
	}
}

// TestSessionBoundedDigestChannel checks drop-after-delivery under channel
// consumption: the pump's compaction must not drop, duplicate, or reorder
// deliveries.
func TestSessionBoundedDigestChannel(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background(), WithBoundedDigests())
	if err != nil {
		t.Fatal(err)
	}
	var live []dataplane.Digest
	done := make(chan struct{})
	go func() {
		defer close(done)
		for d := range s.Digests() {
			live = append(live, d)
		}
	}()
	pkts := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if len(live) != res.Stats.Digests {
		t.Fatalf("channel delivered %d digests, stats counted %d", len(live), res.Stats.Digests)
	}
	// Result may only carry digests that were still undelivered at Close.
	liveCounts := digestCounts(live)
	for _, d := range res.Digests {
		if liveCounts[d] == 0 {
			t.Fatalf("Result digest %+v never reached the channel", d)
		}
	}
}
