package engine

import (
	"context"
	"testing"
	"time"

	"splidt/internal/controller"
	"splidt/internal/dataplane"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// TestStreamingMatchesBatch is the redesign's headline property: for the
// same trace, Start/Feed/Close must produce the same digest multiset and
// the same merged counters as Engine.Run, at every shard count. Run under
// -race this also exercises Feed/worker/sink concurrency.
func TestStreamingMatchesBatch(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	for _, shards := range []int{1, 2, 4, 8} {
		batch, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New batch (%d shards): %v", shards, err)
		}
		want, err := batch.Run(trace.NewStream(trace.D3, eqFlows, eqSeed, eqSpacing))
		if err != nil {
			t.Fatalf("Run (%d shards): %v", shards, err)
		}

		stream, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New stream (%d shards): %v", shards, err)
		}
		sess, err := stream.Start(context.Background())
		if err != nil {
			t.Fatalf("Start (%d shards): %v", shards, err)
		}
		src := trace.NewStream(trace.D3, eqFlows, eqSeed, eqSpacing)
		var stage []pkt.Packet
		for {
			p, ok := src.Next()
			if ok {
				stage = append(stage, p)
			}
			// Odd batch size exercises partial-burst flushes.
			if len(stage) >= 97 || (!ok && len(stage) > 0) {
				off := 0
				for off < len(stage) {
					n, err := sess.Feed(stage[off:])
					off += n
					if err == ErrBackpressure {
						time.Sleep(time.Microsecond)
						continue
					}
					if err != nil {
						t.Fatalf("Feed (%d shards): %v", shards, err)
					}
				}
				stage = stage[:0]
			}
			if !ok {
				break
			}
		}
		got, err := sess.Close()
		if err != nil {
			t.Fatalf("Close (%d shards): %v", shards, err)
		}

		if got.Stats != want.Stats {
			t.Errorf("%d shards: streaming stats %+v, want %+v", shards, got.Stats, want.Stats)
		}
		wantCounts := digestCounts(want.Digests)
		gotCounts := digestCounts(got.Digests)
		if len(got.Digests) != len(want.Digests) || len(gotCounts) != len(wantCounts) {
			t.Fatalf("%d shards: %d digests (%d distinct), want %d (%d distinct)",
				shards, len(got.Digests), len(gotCounts), len(want.Digests), len(wantCounts))
		}
		for d, n := range wantCounts {
			if gotCounts[d] != n {
				t.Fatalf("%d shards: digest %+v count %d, want %d", shards, d, gotCounts[d], n)
			}
		}
		// The deterministic final ordering must match Run's exactly.
		for i := range got.Digests {
			if got.Digests[i] != want.Digests[i] {
				t.Fatalf("%d shards: ordered stream diverges at %d", shards, i)
			}
		}
	}
}

// TestSessionBackpressure pins the non-blocking Feed contract: with the
// workers gated, flooding one shard must surface ErrBackpressure (not
// deadlock), and releasing the workers must let the remainder through with
// nothing lost.
func TestSessionBackpressure(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2, Burst: 4, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	for _, sh := range e.shards {
		sh.hold = hold
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	pkts := trace.Interleave(trace.Generate(trace.D3, 40, eqSeed), 0)
	fed := 0
	sawBackpressure := false
	for tries := 0; fed < len(pkts); tries++ {
		n, err := s.Feed(pkts[fed:])
		fed += n
		if err == ErrBackpressure {
			sawBackpressure = true
			break
		}
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	if !sawBackpressure {
		t.Fatal("gated workers never produced ErrBackpressure")
	}
	if snap := s.Snapshot(); snap.Backpressure == 0 {
		t.Fatal("backpressure not counted in snapshot")
	}

	// Release the workers; the rest of the workload must drain normally.
	close(hold)
	for fed < len(pkts) {
		n, err := s.Feed(pkts[fed:])
		fed += n
		if err == ErrBackpressure {
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("Feed after release: %v", err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets != len(pkts) {
		t.Fatalf("processed %d packets, want %d", res.Stats.Packets, len(pkts))
	}
}

// TestSessionBlockDropsMidRun feeds a workload twice through one session,
// blocking every flow after its first digest: the second wave must be
// dropped at the dispatch stage, visible in Snapshot and Result, without
// touching the pipelines.
func TestSessionBlockDropsMidRun(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), eqSpacing)

	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	// Drain wave 1's digests and block every classified flow.
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == len(pkts) })
	buf := make([]dataplane.Digest, 256)
	blocked := 0
	for {
		n := s.Poll(buf)
		if n == 0 {
			break
		}
		for _, d := range buf[:n] {
			s.Block(d.Key)
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("wave 1 produced no digests to block")
	}
	if snap := s.Snapshot(); snap.BlockedFlows != blocked {
		t.Fatalf("BlockedFlows = %d, want %d", snap.BlockedFlows, blocked)
	}

	// Wave 2: the same flows again. Every packet of a blocked flow must be
	// dropped before dispatch.
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no packets dropped for blocked flows")
	}
	if got := res.Stats.Packets + int(res.Dropped); got != 2*len(pkts) {
		t.Fatalf("processed+dropped = %d, want %d", got, 2*len(pkts))
	}
	if snap := s.Snapshot(); snap.Dropped != res.Dropped {
		t.Fatalf("snapshot dropped %d != result dropped %d", snap.Dropped, res.Dropped)
	}
}

// TestSessionControllerLoop wires Controller.Serve into a live session and
// checks the full detect→block path: flows of blocked classes stop
// consuming pipeline work on the second wave.
func TestSessionControllerLoop(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := controller.New(13, controller.BlockClasses(0, 1, 2, 3, 4, 5))
	served := make(chan int, 1)
	go func() { served <- ctrl.Serve(s) }()

	pkts := trace.Interleave(trace.Generate(trace.D3, 80, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	// Wait until wave 1 has fully resolved: every packet either processed
	// or dropped mid-run (the controller blocks early-exiting flows while
	// their tails are still arriving), and the controller has acted on
	// every digest.
	waitFor(t, func() bool {
		snap := s.Snapshot()
		return snap.Stats.Packets+int(snap.Dropped) == len(pkts)
	})
	waitFor(t, func() bool {
		snap := s.Snapshot()
		return snap.Stats.Digests > 0 && ctrl.Digests() >= snap.Stats.Digests
	})
	if s.Snapshot().BlockedFlows == 0 {
		t.Fatal("controller blocked no flows in wave 1")
	}
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	blocked := <-served
	if blocked == 0 {
		t.Fatal("Serve reported no block verdicts")
	}
	if res.Dropped == 0 {
		t.Fatal("blocked flows were not dropped at dispatch")
	}
	if acts := ctrl.ActionCounts(); acts[controller.ActionBlock] != blocked {
		t.Fatalf("controller block count %d != Serve's %d", acts[controller.ActionBlock], blocked)
	}
}

// TestSessionContextCancel: cancelling the context aborts the session; Feed
// starts failing and Close reports the context error.
func TestSessionContextCancel(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := e.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 10, eqSeed), 0)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	cancel()
	waitFor(t, func() bool {
		_, err := s.Feed(pkts[:1])
		return err == ErrSessionClosed
	})
	if _, err := s.Close(); err != context.Canceled {
		t.Fatalf("Close after cancel = %v, want context.Canceled", err)
	}
	// The engine must be reusable after an aborted session.
	if _, err := e.Run(trace.NewStream(trace.D3, 5, eqSeed, 0)); err != nil {
		t.Fatalf("Run after aborted session: %v", err)
	}
}

// TestSessionExclusive: one session at a time; Close releases the engine.
func TestSessionExclusive(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Start(context.Background()); err != ErrSessionActive {
		t.Fatalf("second Start = %v, want ErrSessionActive", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := e.Start(context.Background())
	if err != nil {
		t.Fatalf("Start after Close: %v", err)
	}
	if _, err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionDigestChannel consumes the live channel concurrently with the
// feed and checks every digest arrives exactly once, with ActiveFlows and
// Snapshot readable throughout.
func TestSessionDigestChannel(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var live []dataplane.Digest
	done := make(chan struct{})
	go func() {
		defer close(done)
		for d := range s.Digests() {
			live = append(live, d)
			_ = e.ActiveFlows() // must be safe mid-run
			_ = s.Snapshot()
		}
	}()
	pkts := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	want := digestCounts(res.Digests)
	got := digestCounts(live)
	if len(live) != len(res.Digests) || len(got) != len(want) {
		t.Fatalf("live stream carried %d digests, result has %d", len(live), len(res.Digests))
	}
	for d, n := range want {
		if got[d] != n {
			t.Fatalf("live stream digest %+v count %d, want %d", d, got[d], n)
		}
	}
	if e.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after drain", e.ActiveFlows())
	}
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
