package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// TestParallelFeedersMatchRun is the parallel-dispatch headline property:
// M concurrent feeders over a flow-disjoint partition of one workload must
// produce the same digest multiset and the same merged counters as
// Engine.Run over the interleaved whole, at every (feeders, shards)
// combination. Run under -race this also exercises the MPSC shard rings
// and the per-feeder free rings across real producer concurrency.
func TestParallelFeedersMatchRun(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	for _, shards := range []int{1, 4} {
		batch, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New batch (%d shards): %v", shards, err)
		}
		want, err := batch.Run(&SliceSource{Pkts: pkts})
		if err != nil {
			t.Fatalf("Run (%d shards): %v", shards, err)
		}
		for _, feeders := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("feeders=%d/shards=%d", feeders, shards), func(t *testing.T) {
				e, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
				if err != nil {
					t.Fatal(err)
				}
				s, err := e.Start(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				parts := trace.Partition(pkts, feeders)
				var wg sync.WaitGroup
				for _, part := range parts {
					f, err := s.NewFeeder()
					if err != nil {
						t.Fatal(err)
					}
					wg.Add(1)
					go func(part []pkt.Packet) {
						defer wg.Done()
						if err := f.FeedAll(part); err != nil {
							t.Errorf("FeedAll: %v", err)
						}
						f.Close()
					}(part)
				}
				wg.Wait()
				got, err := s.Close()
				if err != nil {
					t.Fatal(err)
				}
				if got.Stats != want.Stats {
					t.Errorf("stats %+v, want %+v", got.Stats, want.Stats)
				}
				wantCounts := digestCounts(want.Digests)
				gotCounts := digestCounts(got.Digests)
				if len(got.Digests) != len(want.Digests) || len(gotCounts) != len(wantCounts) {
					t.Fatalf("%d digests (%d distinct), want %d (%d distinct)",
						len(got.Digests), len(gotCounts), len(want.Digests), len(wantCounts))
				}
				for d, n := range wantCounts {
					if gotCounts[d] != n {
						t.Fatalf("digest %+v count %d, want %d", d, gotCounts[d], n)
					}
				}
				// The deterministic final ordering must match Run's exactly:
				// with packet-disjoint feeders the multiset is identical, and
				// sortDigests fixes a total order on it.
				for i := range got.Digests {
					if got.Digests[i] != want.Digests[i] {
						t.Fatalf("ordered stream diverges at %d", i)
					}
				}
			})
		}
	}
}

// TestFeederCloseFlushesStaged forces a burst to stay staged inside a
// feeder (workers gated, shard rings full, so Feed's best-effort flush
// cannot place it), then checks Feeder.Close delivers it once the workers
// resume — staged packets must never wait for Session.Close. Also pins the
// closed-feeder error and Close's idempotence.
func TestFeederCloseFlushesStaged(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2, Burst: 4, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	for _, sh := range e.shards {
		sh.hold = hold
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.NewFeeder()
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 40, eqSeed), 0)
	fed := 0
	for {
		n, err := f.Feed(pkts[fed:])
		fed += n
		if err == ErrBackpressure {
			break
		}
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
		if fed == len(pkts) {
			t.Fatal("gated workers accepted the whole workload; staged-burst scenario needs backpressure")
		}
	}
	staged := false
	f.mu.Lock()
	for _, b := range f.cur {
		if b != nil && len(b.pkts) > 0 {
			staged = true
		}
	}
	f.mu.Unlock()
	if !staged {
		t.Fatal("backpressure left nothing staged in the feeder")
	}
	close(hold) // workers resume; Close's flush can land
	f.Close()
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == fed })
	if _, err := f.Feed(pkts); err != ErrFeederClosed {
		t.Fatalf("Feed after Close = %v, want ErrFeederClosed", err)
	}
	f.Close() // idempotent
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets != fed {
		t.Fatalf("processed %d packets, want the %d accepted", res.Stats.Packets, fed)
	}
}

// TestFeederSessionCloseInterleavings hammers the shutdown interlock: many
// feeders feeding and closing themselves while Session.Close runs
// concurrently. Nothing may deadlock, double-deliver, or lose accounting:
// processed + dropped must equal fed whichever side wins each race.
func TestFeederSessionCloseInterleavings(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	pkts := trace.Interleave(trace.Generate(trace.D3, 80, eqSeed), 0)
	for round := 0; round < 8; round++ {
		e, err := New(Config{Deploy: cfg, Shards: 4, Burst: 8, Queue: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		parts := trace.Partition(pkts, 4)
		var wg sync.WaitGroup
		for i, part := range parts {
			f, err := s.NewFeeder()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(f *Feeder, part []pkt.Packet, closeSelf bool) {
				defer wg.Done()
				off := 0
				for off < len(part) {
					n, err := f.Feed(part[off:])
					off += n
					if err == ErrBackpressure {
						runtime.Gosched()
						continue
					}
					if err != nil {
						// The session (or this feeder) was closed under us —
						// an allowed interleaving; already-accepted packets
						// stay accounted for.
						return
					}
				}
				if closeSelf {
					f.Close()
				}
			}(f, part, i%2 == 0) // half close themselves, half are left to Session.Close
		}
		// Close the session concurrently with the feeders on even rounds;
		// after a clean drain on odd ones.
		if round%2 == 1 {
			wg.Wait()
		}
		res, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		snap := s.Snapshot()
		if int64(res.Stats.Packets)+res.Dropped != snap.Fed {
			t.Fatalf("round %d: processed %d + dropped %d != fed %d",
				round, res.Stats.Packets, res.Dropped, snap.Fed)
		}
		// After a full (uncontended) drain every packet must be there.
		if round%2 == 1 && res.Stats.Packets != len(pkts) {
			t.Fatalf("round %d: processed %d packets, want %d", round, res.Stats.Packets, len(pkts))
		}
		if _, err := s.NewFeeder(); err != ErrSessionClosed {
			t.Fatalf("NewFeeder after Close = %v, want ErrSessionClosed", err)
		}
	}
}

// TestFeederFlushRotation pins the flush-fairness fix: with shard 0's ring
// wedged full, bursts staged for the other shards must still flush on the
// next flush attempts — the rotation must not depend on shard 0 ever
// draining.
func TestFeederFlushRotation(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4, Burst: 16, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	for _, sh := range e.shards {
		sh.hold = hold
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.NewFeeder()
	if err != nil {
		t.Fatal(err)
	}
	// One real packet per shard, so every shard has a non-empty staged
	// burst to flush.
	pkts := trace.Interleave(trace.Generate(trace.D3, 60, eqSeed), 0)
	perShard := make([]pkt.Packet, len(e.shards))
	seen := 0
	for _, p := range pkts {
		si := p.Shard(len(e.shards))
		if perShard[si] == (pkt.Packet{}) {
			perShard[si] = p
			if seen++; seen == len(e.shards) {
				break
			}
		}
	}
	if seen != len(e.shards) {
		t.Fatalf("workload covers only %d of %d shards", seen, len(e.shards))
	}
	f.mu.Lock()
	for i, p := range perShard {
		b, ok := f.free[i].tryPop()
		if !ok {
			t.Fatal("fresh feeder has no free bursts")
		}
		b.pkts = append(b.pkts, p)
		f.cur[i] = b
	}
	// Wedge shard 0: fill its input ring with filler bursts that recycle to
	// a throwaway home ring (the gated worker drains them later).
	dummy := newRing(8)
	for e.shards[0].in.tryPush(&burst{home: dummy}) {
	}
	for i := 0; i < len(f.cur); i++ {
		f.flushStaged()
	}
	for i := 1; i < len(f.cur); i++ {
		if f.cur[i] != nil {
			t.Fatalf("shard %d staged burst starved behind wedged shard 0", i)
		}
	}
	if f.cur[0] == nil {
		t.Fatal("shard 0's burst flushed into a full ring")
	}
	f.mu.Unlock()
	close(hold)
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
