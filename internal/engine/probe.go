package engine

// RingAllocProbe returns one steady-state transfer cycle over the burst
// rings — push+pop on an SPSC free ring and on an MPSC shard ring, plus the
// per-burst pending-deployment poll — for the consolidated allocation test
// in internal/analysis, which pins every //splidt:hotpath function to zero
// allocations but cannot reach the unexported types from outside the
// package.
func RingAllocProbe() func() {
	sp := newRing(4)
	mp := newMPSCRing(4)
	b := &burst{}
	sh := &shardState{}
	return func() {
		if !sp.tryPush(b) {
			panic("spsc ring full")
		}
		if _, ok := sp.tryPop(); !ok {
			panic("spsc ring empty")
		}
		if !mp.tryPush(b) {
			panic("mpsc ring full")
		}
		if _, ok := mp.tryPop(); !ok {
			panic("mpsc ring empty")
		}
		if sh.pendingDeploy() != nil {
			panic("phantom pending deployment")
		}
	}
}
