package engine

import (
	"context"
	"testing"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// wheelEqWorkload builds the expiry-equivalence packet stream: a normal
// interleaved workload where every third flow is truncated (its tail never
// arrives, so its entry can only leave the table through expiry), followed
// by a late cohort of complete flows shifted well past the idle timeout.
// The late cohort advances every shard's packet-time clock far beyond the
// truncated flows' last touches and supplies the bursts that drive the
// expiry engines, so both schemes reclaim every leaked entry before the
// stream ends. It returns the packets and the number of truncated flows.
func wheelEqWorkload(timeout time.Duration) ([]pkt.Packet, int) {
	flows := trace.Generate(trace.D3, 120, 9)
	truncated := 0
	for i := range flows {
		if i%3 != 0 {
			continue
		}
		keep := len(flows[i].Packets) * 6 / 10
		if keep < 2 {
			keep = 2
		}
		if keep == len(flows[i].Packets) {
			continue
		}
		flows[i].Packets = flows[i].Packets[:keep]
		truncated++
	}
	pkts := trace.Interleave(flows, time.Millisecond)
	var maxTS time.Duration
	for _, p := range pkts {
		if p.TS > maxTS {
			maxTS = p.TS
		}
	}
	late := trace.Generate(trace.D3, 8, 77)
	shift := maxTS + timeout + time.Second
	for i := range late {
		for j := range late[i].Packets {
			late[i].Packets[j].TS += shift
		}
	}
	pkts = append(pkts, trace.Interleave(late, time.Millisecond)...)
	return pkts, truncated
}

// TestWheelMatchesSweep is the expiry subsystem's equivalence pin: with a
// uniform lifetime class (no trained per-leaf lifetimes, so the wheel arms
// every flow with the same base lifetime the sweep uses as its global
// timeout), the wheel-expiry engine must produce exactly the digest
// multiset, inference counters, and eviction totals of the sweep-expiry
// engine — across both table schemes and at 1 and 4 shards, under -race in
// CI. The timeout exceeds every intra-flow gap, so neither mechanism may
// reclaim a live flow; the truncated flows guarantee the eviction totals
// are non-trivial.
func TestWheelMatchesSweep(t *testing.T) {
	const timeout = 2 * time.Second
	pkts, truncated := wheelEqWorkload(timeout)
	if truncated == 0 {
		t.Fatal("workload has no truncated flows; the eviction comparison would be vacuous")
	}

	base := deployCfg(t, 1<<12)
	base.IdleTimeout = timeout
	base.SweepStripe = 1 << 12 // full-table sweep pass per burst

	// Burst 1 pins the expiry schedule: workers drive Sweep/Advance once per
	// burst, and burst grouping depends on scheduling — with larger bursts,
	// whether a leaked entry is reclaimed at a burst boundary before a late
	// packet collides onto its slot varies run to run (in BOTH schemes,
	// identically distributed). One packet per burst means expiry runs after
	// every packet in either engine, so the comparison is exact.
	for _, scheme := range []dataplane.TableScheme{dataplane.TableDirect, dataplane.TableCuckoo} {
		for _, shards := range []int{1, 4} {
			scfg := base
			scfg.Table = scheme
			scfg.Expiry = dataplane.ExpirySweep
			se, err := New(Config{Deploy: scfg, Shards: shards, Burst: 1, Queue: 64})
			if err != nil {
				t.Fatalf("%s/%d: New(sweep): %v", scheme, shards, err)
			}
			sres, err := se.Run(&SliceSource{Pkts: pkts})
			if err != nil {
				t.Fatalf("%s/%d: Run(sweep): %v", scheme, shards, err)
			}

			wcfg := base
			wcfg.Table = scheme
			wcfg.Expiry = dataplane.ExpiryWheel
			we, err := New(Config{Deploy: wcfg, Shards: shards, Burst: 1, Queue: 64})
			if err != nil {
				t.Fatalf("%s/%d: New(wheel): %v", scheme, shards, err)
			}
			wres, err := we.Run(&SliceSource{Pkts: pkts})
			if err != nil {
				t.Fatalf("%s/%d: Run(wheel): %v", scheme, shards, err)
			}

			// Most truncated flows must reclaim through expiry. Not all:
			// a shard whose late-cohort share is empty stops advancing its
			// clock, and a direct-scheme collider completing on a truncated
			// flow's slot releases it — both identically in either scheme.
			if sres.Stats.Evictions < truncated/2 {
				t.Fatalf("%s/%d: sweep reclaimed %d entries, want >= %d (half the truncated flows)",
					scheme, shards, sres.Stats.Evictions, truncated/2)
			}
			if wres.Stats.Evictions != sres.Stats.Evictions {
				t.Fatalf("%s/%d: wheel evicted %d entries, sweep %d",
					scheme, shards, wres.Stats.Evictions, sres.Stats.Evictions)
			}
			if wres.Stats.WheelExpiries != wres.Stats.Evictions {
				t.Fatalf("%s/%d: wheel expiries %d != evictions %d (no Block ran, so every reclaim is an expiry)",
					scheme, shards, wres.Stats.WheelExpiries, wres.Stats.Evictions)
			}
			if sres.Stats.WheelExpiries != 0 {
				t.Fatalf("%s/%d: sweep leg counted %d wheel expiries", scheme, shards, sres.Stats.WheelExpiries)
			}
			if sres.Stats.Packets != wres.Stats.Packets ||
				sres.Stats.ControlPackets != wres.Stats.ControlPackets ||
				sres.Stats.Digests != wres.Stats.Digests ||
				sres.Stats.Collisions != wres.Stats.Collisions ||
				sres.Stats.RecircBytes != wres.Stats.RecircBytes {
				t.Fatalf("%s/%d: inference counters diverge:\nsweep %+v\nwheel %+v",
					scheme, shards, sres.Stats, wres.Stats)
			}
			want := digestCounts(sres.Digests)
			got := digestCounts(wres.Digests)
			if len(got) != len(want) || len(wres.Digests) != len(sres.Digests) {
				t.Fatalf("%s/%d: wheel %d digests (%d distinct), sweep %d (%d distinct)",
					scheme, shards, len(wres.Digests), len(got), len(sres.Digests), len(want))
			}
			for d, n := range want {
				if got[d] != n {
					t.Fatalf("%s/%d: digest %+v count %d, want %d", scheme, shards, d, got[d], n)
				}
			}
		}
	}
}

// TestBlockedWheelFlowNotResurrected mirrors TestBlockedStashFlowNotResurrected
// under wheel expiry: blocking a stash-resident flow must disarm its timer
// node along with freeing the line. The pinned hazard is a stale deadline —
// if Evict freed the cell without unlinking the node, the next flow to
// claim the line would inherit a timer due at the blocked flow's old
// deadline, and the wheel would expire the live successor the moment the
// clock passed it.
func TestBlockedWheelFlowNotResurrected(t *testing.T) {
	const timeout = time.Second
	cfg := deployCfg(t, 1) // one bucket cell, so the second flow must stash
	cfg.Table = dataplane.TableCuckoo
	cfg.Ways = 1
	cfg.Stash = 1
	cfg.IdleTimeout = timeout
	cfg.Expiry = dataplane.ExpiryWheel
	e, err := New(Config{Deploy: cfg, Shards: 1, Burst: 32, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{}, 8)
	e.shards[0].hold = hold
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	flows := trace.Generate(trace.D3, 3, eqSeed)
	a, b, c := flows[0], flows[1], flows[2]

	// Burst 1: A claims the bucket cell, B the stash line; both arm timers.
	if _, err := s.Feed([]pkt.Packet{a.Packets[0], b.Packets[0]}); err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{}
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == 2 })
	snap := s.Snapshot()
	if snap.Stats.StashInserts != 1 || snap.ActiveFlows != 2 {
		t.Fatalf("setup: stashInserts=%d active=%d, want 1/2 (B in the stash)",
			snap.Stats.StashInserts, snap.ActiveFlows)
	}

	// Block B while its timer is armed, then feed C in the next burst: the
	// worker drains the eviction (which must disarm B's node) right before
	// processing C, so C claims the freed stash line. C is stamped just
	// past B's first packet, leaving B's stale deadline (had it survived)
	// ahead of the clock for now.
	s.Block(b.Key)
	c0 := c.Packets[0]
	c0.TS = b.Packets[0].TS + 100*time.Millisecond
	if _, err := s.Feed([]pkt.Packet{c0}); err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{}
	waitFor(t, func() bool {
		sn := s.Snapshot()
		return sn.Stats.Packets == 3 && sn.Stats.Evictions == 1
	})
	snap = s.Snapshot()
	if snap.Stats.Collisions != 0 || snap.Stats.StashInserts != 2 || snap.ActiveFlows != 2 {
		t.Fatalf("stash reuse: collisions=%d stashInserts=%d active=%d, want 0/2/2",
			snap.Stats.Collisions, snap.Stats.StashInserts, snap.ActiveFlows)
	}

	// Drive the wheel past B's stale deadline (and A's — A legitimately
	// expires, proving the advance actually crossed the window) with a
	// late C packet. C itself was touched at c0.TS and re-arms here, so
	// with B's node disarmed exactly one expiry may fire.
	c1 := c.Packets[1]
	c1.TS = c0.TS + timeout + 200*time.Millisecond
	if _, err := s.Feed([]pkt.Packet{c1}); err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{}
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == 4 })
	snap = s.Snapshot()
	if snap.Stats.WheelExpiries != 1 {
		t.Fatalf("wheel fired %d expiries, want 1 (A only — a second firing means B's stale deadline reclaimed C's line)",
			snap.Stats.WheelExpiries)
	}
	if snap.ActiveFlows != 1 {
		t.Fatalf("ActiveFlows = %d after advance, want 1 (C alive in the reused stash line)", snap.ActiveFlows)
	}

	// C must still own its entry: another packet is an owner hit, not a
	// fresh insert.
	c2 := c.Packets[2]
	c2.TS = c1.TS + time.Millisecond
	if _, err := s.Feed([]pkt.Packet{c2}); err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{}
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == 5 })
	snap = s.Snapshot()
	if snap.Stats.Collisions != 0 || snap.Stats.StashInserts != 2 {
		t.Fatalf("C lost its entry: collisions=%d stashInserts=%d, want 0/2",
			snap.Stats.Collisions, snap.Stats.StashInserts)
	}

	close(hold)
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
