package engine

// This file is deliberately outside the //splidt:packettime regime:
// Redeploy's adoption wait is management-plane code bounded by wall-clock
// deadline. The per-shard adoption itself (shardState.adopt/pendingDeploy)
// lives in engine.go under the packet-time rules.

import (
	"errors"
	"fmt"
	"time"

	"splidt/internal/core"
	"splidt/internal/rangemark"
)

// deployment is one compiled tree queued for per-shard adoption: the unit
// Session.Redeploy publishes and each shard worker swaps in at a burst
// boundary. Immutable once published.
type deployment struct {
	model    *core.Model
	compiled *rangemark.Compiled
	epoch    uint64
}

// Redeploy swaps a freshly compiled tree into the running session without
// stopping traffic — the hitless upgrade path. It validates the pair against
// the deployed geometry (same feasibility check construction runs), freezes
// the compiled tables, assigns the next deployment epoch, and publishes the
// deployment to every shard; each worker adopts it at its next burst
// boundary (or promptly while idle), so no packet ever observes a
// half-swapped tree and per-shard digest streams switch epochs atomically at
// a burst edge.
//
// Flow state carries across the swap: live entries keep their SIDs, packet
// counts, window registers, touch stamps, and armed timers; entries whose
// SID the new tree does not define restart at the root; per-flow lifetimes
// re-adopt the new tree's trained per-leaf budgets at each flow's next
// window boundary (see dataplane.Pipeline.Redeploy). Digests emitted after a
// shard's adoption carry the new epoch.
//
// Redeploy returns the new deployment epoch once every live shard has
// adopted it. Quarantined shards are skipped — their replicas are frozen.
// If adoption does not complete within the engine's ShutdownTimeout (a
// stalled worker), it returns ErrRedeployTimeout with the epoch still
// pending: shards that did adopt keep the new tree, and the stragglers
// adopt if they ever resume. Concurrent Redeploy calls serialise; epochs
// are strictly increasing in call-completion order.
func (s *Session) Redeploy(m *core.Model, c *rangemark.Compiled) (uint64, error) {
	if m == nil || c == nil {
		return 0, errors.New("engine: Redeploy requires a model and its compiled tables")
	}
	s.redeployMu.Lock()
	defer s.redeployMu.Unlock()
	s.lifeMu.Lock()
	closed := s.closed
	s.lifeMu.Unlock()
	if closed {
		return 0, s.closedErr()
	}
	// Shard 0 holds the largest slice of the slot budget (dataplane.NewShards),
	// so feasibility against its replica is the binding check.
	if err := s.e.shards[0].pl.CheckRedeploy(m, c); err != nil {
		return 0, fmt.Errorf("engine: redeploy rejected: %w", err)
	}
	c.Freeze()
	dep := &deployment{model: m, compiled: c, epoch: s.e.deployEpoch.Add(1)}
	for _, sh := range s.e.shards {
		sh.pendingDep.Store(dep)
	}
	deadline := time.Now().Add(s.e.cfg.ShutdownTimeout)
	for {
		adopted := true
		for _, sh := range s.e.shards {
			if HealthState(sh.health.Load()) == ShardQuarantined {
				continue
			}
			if sh.epoch.Load() < dep.epoch {
				adopted = false
				break
			}
		}
		if adopted {
			return dep.epoch, nil
		}
		s.lifeMu.Lock()
		closed = s.closed
		s.lifeMu.Unlock()
		if closed {
			// Shutdown raced the handoff; workers may have exited without
			// adopting. The next session adopts the pending deployment at
			// Start, so the swap still lands — just not hitlessly.
			return dep.epoch, s.closedErr()
		}
		if time.Now().After(deadline) {
			return dep.epoch, fmt.Errorf("engine: epoch %d: %w", dep.epoch, ErrRedeployTimeout)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
