package engine

import (
	"splidt/internal/dataplane"
	"splidt/internal/pkt"
)

// TestHooks are the engine's deterministic fault-injection seams: callbacks
// the session invokes at the three points where a fault plan can perturb a
// run (internal/faultinject builds seeded plans against them). Every field
// is optional, and a session started without WithTestHooks carries a nil
// hook set — the production paths pay one predictable nil-check branch and
// nothing else.
type TestHooks struct {
	// BeforePacket runs on the shard worker immediately before each packet
	// enters the replica. It may panic (worker-panic containment), sleep
	// (shard stall), or mutate the packet in place (clock jump). The packet
	// pointer is the burst's own slot — mutations are seen by the pipeline.
	BeforePacket func(shard int, p *pkt.Packet)
	// SinkDigest runs on the sink goroutine for each digest before it is
	// recorded (digest-sink stall).
	SinkDigest func(d *dataplane.Digest)
	// PushRefuse runs on the feeder before each attempt to push a burst into
	// shard's input ring; returning true makes the attempt behave as if the
	// ring were full (synthetic overflow → backpressure). Shutdown flushes
	// bypass it so an overflow plan cannot wedge a close.
	PushRefuse func(shard int) bool
}

// WithTestHooks installs fault-injection hooks for the session. Test-only:
// hooks run inline on the hot path and exist to make containment behavior
// reproducible, not to extend the engine.
func WithTestHooks(h *TestHooks) SessionOption {
	return func(s *Session) { s.hooks = h }
}
