// Package engine is the sharded multi-worker execution layer of the SpliDT
// reproduction: it drives N independent dataplane.Pipeline replicas at once,
// the software analogue of a multi-pipe switch ASIC (or an RSS-sharded
// software dataplane à la ndn-dpdk's forwarder).
//
// Architecture: packets enter through a Session (Engine.Start), via one or
// more producer handles (Session.NewFeeder; Session.Feed wraps a default
// one). Each feeder assigns each packet to a shard by its precomputed
// direction-symmetric dispatch hash — so every packet of a flow (and hence
// all of its register state and its digest) lives on exactly one shard —
// and accumulates them into fixed-size bursts in private per-shard staging.
// Bursts move to shard workers through bounded multi-producer
// single-consumer rings (CAS-reserved slots, the rte_ring MP shape);
// drained bursts recycle back through the owning feeder's private SPSC free
// ring, so the steady-state path allocates nothing and concurrent producers
// share no lock. Each worker owns one pipeline replica and processes bursts
// in arrival order, which — with each flow confined to one feeder —
// preserves per-flow packet order end to end. Digests flow from the workers
// into an incremental sink stage that merges the per-shard streams while
// traffic is still moving, so a controller can consume them live
// (Session.Digests / Session.Poll) and push ActionBlock verdicts back into
// the dispatch stage's drop filter (Session.Block) mid-run. Blocking also
// evicts the flow's register slot via a per-shard eviction mailbox, and
// workers drive the dataplane's flow-table ageing sweep once per burst
// from a monotone packet-time clock — so long-lived sessions reclaim slots
// of blocked and dead flows instead of leaking them (Stats.Evictions).
//
// Engine.Run remains as a thin batch wrapper over Start/Feed/Close: it
// drains a Source through a session and returns the merged Result, with a
// digest stream multiset-identical to what the streaming path emits.
//
// Correctness contract: because flows never cross shards and per-flow order
// is preserved, an engine run is digest-equivalent to feeding the same
// workload through one pipeline, as long as register-slot collisions do not
// couple flows that land on different shards (collision-free operation is
// the regime the equivalence tests pin down; Stats.Collisions reports it).
// Close returns digests merged into a single deterministic stream ordered
// by classification time, and per-shard Stats sum into the totals a single
// pipeline would have counted.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/flow"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
	"splidt/internal/telemetry/flight"
)

// Source yields packets in global arrival order. trace.Stream implements it
// lazily; SliceSource adapts a pre-materialised sequence.
type Source interface {
	Next() (pkt.Packet, bool)
}

// SliceSource is a Source over an in-memory packet sequence (benchmarks use
// it to keep generation cost out of the measured path).
type SliceSource struct {
	Pkts []pkt.Packet
	pos  int
}

// Next returns the next packet until the slice is exhausted.
func (s *SliceSource) Next() (pkt.Packet, bool) {
	if s.pos >= len(s.Pkts) {
		return pkt.Packet{}, false
	}
	p := s.Pkts[s.pos]
	s.pos++
	return p, true
}

// ShiftSource wraps a Source, offsetting every packet timestamp by a fixed
// Offset — how a driver replays one trace as successive later waves. The
// flow-table ageing sweep runs on packet time, so a wave re-fed with its
// original timestamps would leave the monotone sweep clock frozen at the
// previous wave's end and the sweep inert; shifting each wave past the
// last keeps packet time advancing the way real repeat traffic would.
// Max reports the highest shifted timestamp yielded so far — after a wave
// drains, it is the natural Offset for the next one.
type ShiftSource struct {
	Src    Source
	Offset time.Duration
	max    time.Duration
}

// Next yields the next packet with its timestamp shifted.
func (s *ShiftSource) Next() (pkt.Packet, bool) {
	p, ok := s.Src.Next()
	if !ok {
		return p, false
	}
	p.TS += s.Offset
	if p.TS > s.max {
		s.max = p.TS
	}
	return p, true
}

// Max returns the highest shifted timestamp Next has yielded.
func (s *ShiftSource) Max() time.Duration { return s.max }

// Config sizes an engine.
type Config struct {
	// Deploy is the deployment every shard replicates. Its FlowSlots is the
	// total register budget, divided evenly among shards (dataplane.NewShards).
	Deploy dataplane.Config
	// Shards is the worker/replica count. Default: GOMAXPROCS.
	Shards int
	// Burst is the packets-per-burst batch size. Default 32 (the DPDK
	// convention).
	Burst int
	// Queue is the per-shard queue depth in bursts. It bounds feed-side
	// runahead: a full queue backpressures Feed. Default 8.
	Queue int
	// DigestBuffer is the capacity of the live digest channel a session
	// exposes through Digests(). Default 256.
	DigestBuffer int
	// ShutdownTimeout bounds every session teardown wait — Close/abort
	// waiting on workers, a feeder flush pushing into a stuck shard, a
	// Redeploy waiting for adoption. On expiry the wait is abandoned with a
	// typed cause error (ErrShutdownTimeout / ErrRedeployTimeout) instead of
	// wedging the caller. Default 5s.
	ShutdownTimeout time.Duration
	// WatchdogInterval is the wall-clock period of the session health
	// watchdog, which marks shards degraded when a full interval passes with
	// input queued but no burst completed (Session.Health). Default 20ms.
	WatchdogInterval time.Duration
	// FlightRecorder is the per-shard flight-recorder depth in events
	// (internal/telemetry/flight), rounded up to a power of two. The
	// recorder logs burst boundaries, sweep reclaims, eviction batches,
	// epoch adoptions, watchdog flags, and quarantines; Engine.FlightLog
	// snapshots it live, and a shard panic dumps it into
	// ShardPanicError.Postmortem. 0 selects flight.DefaultDepth (256);
	// negative disables recording entirely.
	FlightRecorder int
}

// Result is one engine run's (or closed session's) merged output.
type Result struct {
	// Digests from all shards in one deterministic stream, ordered by
	// classification time (ties broken by flow key), independent of worker
	// scheduling.
	Digests []dataplane.Digest
	// Stats is the sum of per-shard counters for this run.
	Stats dataplane.Stats
	// PerShard holds each shard's counters for this run, indexed by shard.
	PerShard []dataplane.Stats
	// Throughput reports wall-clock rates for this run.
	Throughput metrics.Throughput
	// Dropped counts packets discarded because their flow was blocked
	// (Session.Block) while the session ran — at the dispatch stage, or at
	// a worker for packets already queued when the verdict landed.
	Dropped int64
}

// shardPub is a worker's last published observation of its pipeline; the
// worker stores a fresh one after every burst (and on exit), so stats and
// active-flow reads are safe — and coherent per shard — while the run is in
// flight.
type shardPub struct {
	stats   dataplane.Stats
	active  int
	stashed int // flows currently parked in the flow table's stash
}

type shardState struct {
	pl   *dataplane.Pipeline
	in   *mpscRing // filled bursts: feeders (many) → worker (one)
	done atomic.Bool

	pub atomic.Pointer[shardPub]

	// Eviction mailbox: Session.Block/Evict enqueue flow keys here from any
	// goroutine; the worker — the only goroutine allowed to touch its
	// pipeline — drains it between bursts (and while idle, so blocking
	// frees state even when no traffic is flowing). evictN is the
	// emptiness fast path the worker checks each iteration.
	evictMu      sync.Mutex
	evictQ       []flow.Key
	evictScratch []flow.Key // worker-owned drain buffer, reused
	evictN       atomic.Int64

	// sweepNow is the worker's monotone packet-time clock: the newest
	// timestamp it has processed, fed to the pipeline's ageing Sweep after
	// each burst. Worker-private.
	sweepNow time.Duration

	// filterEpoch/filterCheck cache the worker's last per-burst view of the
	// session's drop filter (epoch and non-emptiness), amortising the
	// per-packet atomic load to one load per burst on unblocked workloads.
	// Worker-private; reset by Start for each session's fresh filter.
	filterEpoch uint64
	filterCheck bool

	// latHist, when non-nil, is this session's digest-latency histogram for
	// the shard (WithDigestLatency): the worker records feeder-handoff →
	// digest-emission wall time for every digest it emits. Worker-writes,
	// observer-reads — Hist.Record is a lone atomic add, so live quantile
	// reads need no coordination. Set by Start, nil when latency is off.
	latHist *metrics.Hist

	// hold, when non-nil, gates the worker before each burst — a test hook
	// that makes backpressure deterministic. Always nil in production.
	hold chan struct{}

	// health is the shard's observable lifecycle state (HealthState values).
	// The worker stores ShardQuarantined on panic; the session watchdog
	// exchanges ShardRunning and ShardDegraded on stall evidence. Reset by
	// Start (quarantine does not outlive the session that panicked —
	// whatever state the panic left in the replica is the same state a
	// crashed-and-restarted pipe would resume from).
	health atomic.Int32
	// quarDrops counts packets this shard discarded while quarantined: the
	// remainder of the burst the panic interrupted plus every packet drained
	// from the ring afterwards.
	quarDrops atomic.Int64
	// progress counts completed bursts — the watchdog's liveness signal.
	progress atomic.Uint64
	// lastTS publishes the worker's packet-time clock (sweepNow) at its last
	// completed burst, for Health.LastProgress.
	lastTS atomic.Int64
	// pendingDep is the deployment published by Session.Redeploy and not yet
	// adopted by this worker; nil otherwise. epoch is the deployment epoch
	// the shard's replica currently runs.
	pendingDep atomic.Pointer[deployment]
	epoch      atomic.Uint64

	// rec is the shard's flight recorder (nil when disabled by config).
	// Written by the worker at burst/sweep/evict/adopt boundaries and —
	// rarely — by the session watchdog and the panic fence; the ring's
	// fetch-add claim keeps those safe without locking the worker.
	rec *flight.Ring
}

// evict enqueues a controller-initiated slot reclaim for the worker to
// apply. Safe from any goroutine.
func (s *shardState) evict(k flow.Key) {
	s.evictMu.Lock()
	s.evictQ = append(s.evictQ, k)
	s.evictMu.Unlock()
	s.evictN.Add(1)
}

// drainEvictions applies every queued eviction to the shard's pipeline.
// Worker-only. Returns how many slots it reclaimed (so the caller knows to
// publish a fresh snapshot when the count is non-zero).
func (s *shardState) drainEvictions() int {
	if s.evictN.Load() == 0 {
		return 0
	}
	s.evictMu.Lock()
	keys := append(s.evictScratch[:0], s.evictQ...)
	s.evictQ = s.evictQ[:0]
	s.evictN.Store(0)
	s.evictMu.Unlock()
	s.evictScratch = keys[:0]
	freed := 0
	for _, k := range keys {
		if s.pl.Evict(k) {
			freed++
		}
	}
	if freed > 0 && s.rec != nil {
		s.rec.Record(flight.KindEvict, s.sweepNow, int64(freed), int64(len(keys)))
	}
	return freed
}

// Engine drives sharded pipeline replicas. Construct with New. An Engine
// supports any number of sequential sessions (flow state persists across
// them, like a switch that stays up between traces) but at most one session
// at a time; all concurrency lives inside the session.
type Engine struct {
	cfg    Config
	shards []*shardState
	active atomic.Bool // a session is running

	// deployEpoch is the monotone deployment-epoch counter: 0 is the tree
	// the engine was built with, each Session.Redeploy takes the next value.
	// Engine-scoped (not per session) so epochs stay unique across a
	// session boundary that races a redeploy.
	deployEpoch atomic.Uint64

	// defFree is the engine-owned burst pool every session's default feeder
	// recycles through, built on first Start. Sessions are exclusive and a
	// closed session's workers have recycled every burst home, so reuse
	// across sequential sessions is safe — Run/Start-per-call patterns stay
	// allocation-free after the first session, as they were before feeders.
	defFree []*spscRing
}

// New validates the deployment and builds one pipeline replica per shard
// (sharing the frozen compiled tables). Burst pools are per producer, so
// they are allocated when a session constructs its feeders (NewFeeder),
// not here; the steady-state feed path still allocates nothing.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 32
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 8
	}
	if cfg.DigestBuffer <= 0 {
		cfg.DigestBuffer = 256
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 5 * time.Second
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = 20 * time.Millisecond
	}
	pls, err := dataplane.NewShards(cfg.Deploy, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{cfg: cfg, shards: make([]*shardState, cfg.Shards)}
	for i, pl := range pls {
		s := &shardState{
			pl: pl,
			in: newMPSCRing(cfg.Queue),
		}
		if cfg.FlightRecorder >= 0 {
			s.rec = flight.New(cfg.FlightRecorder)
		}
		s.pub.Store(&shardPub{})
		e.shards[i] = s
	}
	return e, nil
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// ActiveFlows sums occupied register slots across shards. It reads the
// workers' published per-burst snapshots, so it is safe to call while a
// session is running (the value trails live state by at most one burst per
// shard).
func (e *Engine) ActiveFlows() int {
	n := 0
	for _, s := range e.shards {
		n += s.pub.Load().active
	}
	return n
}

// TableCap sums the shards' flow-table capacities — the denominator for
// occupancy gauges (ActiveFlows / TableCap).
func (e *Engine) TableCap() int {
	n := 0
	for _, s := range e.shards {
		n += s.pl.TableCap()
	}
	return n
}

// FlightLog snapshots a shard's flight-recorder ring: the last events (up
// to the configured depth) its worker, the session watchdog, and — on
// panic — the quarantine fence recorded. Lock-free and safe at any time,
// including mid-session; every returned event is internally consistent.
// Returns nil when the recorder is disabled or the shard is out of range.
func (e *Engine) FlightLog(shard int) []flight.Event {
	if shard < 0 || shard >= len(e.shards) || e.shards[shard].rec == nil {
		return nil
	}
	return e.shards[shard].rec.Snapshot(nil)
}

// runChunk is the batch size Run uses when feeding a generic Source through
// a session.
const runChunk = 2048

// Run drains the source through a session and returns the merged result —
// the batch facade over Start/Feed/Close. It is digest-multiset-identical
// to consuming the same source through the streaming API (it is the
// streaming API), and remains backward compatible with pre-session callers.
func (e *Engine) Run(src Source) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("engine: nil source")
	}
	s, err := e.Start(context.Background())
	if err != nil {
		return nil, err
	}
	if ss, ok := src.(*SliceSource); ok {
		// Fast path: feed the remaining slice directly, no per-packet copy
		// into a staging chunk.
		pkts := ss.Pkts[ss.pos:]
		ss.pos = len(ss.Pkts)
		if err := s.FeedAll(pkts); err != nil {
			s.Close()
			return nil, err
		}
		return s.Close()
	}
	if err := s.FeedSource(src); err != nil {
		s.Close()
		return nil, err
	}
	return s.Close()
}

// work is one shard's consumer loop: pop a burst, apply queued evictions,
// run the burst through the replica, advance the ageing sweep by one stripe
// of packet time, stream digests to the sink, hand the burst back to its
// owning feeder's free ring, publish a fresh stats snapshot. Exits when the
// feed side has signalled done and the queue is drained.
//
// filter re-checks close the dispatch race: the feeders already drop
// blocked flows, but packets queued in the ring before a verdict landed
// would otherwise slip past — and after Block evicts the flow's slot, such
// a straggler would re-activate the slot and leak it again. The check is
// amortised per burst: the worker reloads the filter's epoch once per burst
// (after applying evictions) and walks packets through the filter only
// while that view says the filter has entries. The invariant that keeps
// eviction safe survives the amortisation because evictions are applied
// only at these same per-burst boundaries: Block installs the filter entry
// (bumping the epoch) before enqueueing the eviction, so by the time
// drainEvictions has applied it, the epoch refresh that follows must
// observe the bump and turn per-packet checks on — every packet processed
// after an applied eviction still sees the filter, and a blocked flow can
// never resurrect its register state. A verdict landing mid-burst whose
// eviction has not yet been applied may let that burst's stragglers through
// to the pipeline (they are dropped from the next burst on), which only
// moves a few packets from the dropped count to the processed count —
// exactly the dispatch race the Block contract already allows.
// only wall-clock reads are the allow-listed digest-latency stamps below.
//
//splidt:packettime — ageing sweeps advance on burst packet timestamps; the
func (s *shardState) work(sess *Session, shard int) {
	defer sess.wg.Done()
	idle := 0
	for {
		b, ok := s.in.tryPop()
		if !ok {
			if s.done.Load() {
				// done is published after the final push; one more pop
				// closes the race with a flush that landed in between.
				if b, ok = s.in.tryPop(); !ok {
					s.drainEvictions()
					s.publish()
					return
				}
			} else {
				// Adopt a pending redeploy while idle: an idle shard must
				// not hold the epoch handoff hostage to its next packet.
				if dep := s.pendingDeploy(); dep != nil {
					s.adopt(dep)
				}
				// Apply evictions while idle so a controller block frees
				// register state even when no traffic is flowing.
				if s.drainEvictions() > 0 {
					s.publish()
				}
				// Spin briefly, then sleep: a live session can sit idle for
				// long stretches and must not burn a core per shard.
				if idle++; idle > idleSpins {
					time.Sleep(idleSleep)
				} else {
					runtime.Gosched()
				}
				continue
			}
		}
		idle = 0
		if s.hold != nil {
			<-s.hold
		}
		// Burst boundary: the only place a new deployment may land, so no
		// packet ever observes a half-swapped tree and the shard's digest
		// stream switches epochs exactly at a burst edge.
		if dep := s.pendingDeploy(); dep != nil {
			s.adopt(dep)
		}
		s.drainEvictions()
		if !s.processBurst(sess, shard, b) {
			// The burst panicked the replica: the deferred fence recorded
			// the fault and recycled the burst; freeze the replica and fall
			// into the quarantine drain until session end.
			s.quarantine()
			return
		}
	}
}

// processBurst runs one burst through the replica under the quarantine
// fence: a panic anywhere in the per-packet path (pipeline, flow table,
// timer wheel, injected fault) is contained to this shard. On panic the
// fence records the session's cause error, marks the shard quarantined,
// counts the burst's unprocessed remainder as quarantine drops, and still
// recycles the burst home so the owning feeder's pool stays whole. Returns
// whether the burst completed normally.
func (s *shardState) processBurst(sess *Session, shard int, b *burst) (ok bool) {
	i := 0
	if s.rec != nil {
		s.rec.Record(flight.KindBurstStart, s.sweepNow, int64(len(b.pkts)), int64(s.epoch.Load()))
	}
	defer func() {
		if r := recover(); r != nil {
			dropped := int64(len(b.pkts) - i)
			var pm []flight.Event
			if s.rec != nil {
				// Record the quarantine itself, then freeze the shard's last
				// moments into the fault report: the postmortem every
				// ShardPanicError ships instead of losing them with the
				// goroutine.
				s.rec.Record(flight.KindQuarantine, s.sweepNow, dropped, 0)
				pm = s.rec.Snapshot(nil)
			}
			sess.recordFault(&ShardPanicError{Shard: shard, Value: r, Stack: debug.Stack(), Postmortem: pm})
			s.health.Store(int32(ShardQuarantined))
			s.quarDrops.Add(dropped)
			b.pkts = b.pkts[:0]
			b.home.push(b)
			s.publish()
		}
	}()
	hooks := sess.hooks
	// Refresh the cached filter view once per burst — after the eviction
	// drain, so an applied eviction's filter entry is always observed.
	filter := &sess.filter
	if e := filter.ep.Load(); e != s.filterEpoch {
		s.filterEpoch = e
		s.filterCheck = filter.size() > 0
	}
	if s.filterCheck {
		for ; i < len(b.pkts); i++ {
			if filter.blocked(b.pkts[i].Key) {
				sess.dropped.Add(1)
				continue
			}
			if hooks != nil && hooks.BeforePacket != nil {
				hooks.BeforePacket(shard, &b.pkts[i])
			}
			if d := s.pl.Process(b.pkts[i]); d != nil {
				if s.latHist != nil {
					//splidt:allow wallclock — digest latency is a harness metric measured in wall time by design
					s.latHist.RecordDur(time.Since(b.fedAt))
				}
				sess.sinkCh <- *d
			}
		}
	} else {
		for ; i < len(b.pkts); i++ {
			if hooks != nil && hooks.BeforePacket != nil {
				hooks.BeforePacket(shard, &b.pkts[i])
			}
			if d := s.pl.Process(b.pkts[i]); d != nil {
				if s.latHist != nil {
					//splidt:allow wallclock — digest latency is a harness metric measured in wall time by design
					s.latHist.RecordDur(time.Since(b.fedAt))
				}
				sess.sinkCh <- *d
			}
		}
	}
	npkts := len(b.pkts)
	if npkts > 0 {
		// Drive flow-table ageing from packet time, never wall clock:
		// one bounded sweep stripe per burst keeps the reclaim cost
		// amortised O(1) per packet and the schedule deterministic for
		// a given burst sequence. The clock is monotone across replayed
		// waves (a re-streamed trace restarts at time zero).
		if ts := b.pkts[npkts-1].TS; ts > s.sweepNow {
			s.sweepNow = ts
		}
		if reclaimed := s.pl.Sweep(s.sweepNow); reclaimed > 0 && s.rec != nil {
			s.rec.Record(flight.KindSweep, s.sweepNow, int64(reclaimed), 0)
		}
	}
	b.pkts = b.pkts[:0]
	b.home.push(b)
	s.lastTS.Store(int64(s.sweepNow))
	s.progress.Add(1)
	s.publish()
	if s.rec != nil {
		s.rec.Record(flight.KindBurstEnd, s.sweepNow, int64(npkts), int64(s.pub.Load().stats.Digests))
	}
	return true
}

// quarantine is a panicked worker's terminal loop: the replica is frozen
// (never touched again — the panic may have left it mid-mutation), but the
// input ring keeps draining to the drop counter so feeders pushing at the
// dead shard never wedge, and bursts keep recycling home. Exits when the
// session signals done and the ring is empty, completing the worker's
// wg contribution so Close still drains cleanly.
func (s *shardState) quarantine() {
	idle := 0
	for {
		b, ok := s.in.tryPop()
		if !ok {
			if s.done.Load() {
				if b, ok = s.in.tryPop(); !ok {
					return
				}
			} else {
				if idle++; idle > idleSpins {
					time.Sleep(idleSleep)
				} else {
					runtime.Gosched()
				}
				continue
			}
		}
		idle = 0
		s.quarDrops.Add(int64(len(b.pkts)))
		b.pkts = b.pkts[:0]
		b.home.push(b)
	}
}

// adopt swaps the pending deployment into the shard's replica — the
// per-shard half of Session.Redeploy's epoch handoff. Worker-only, called
// at burst boundaries and while idle. Publishing the epoch after the swap
// is what Redeploy's adoption wait observes.
func (s *shardState) adopt(dep *deployment) {
	s.pendingDep.CompareAndSwap(dep, nil)
	s.pl.Redeploy(dep.model, dep.compiled, dep.epoch)
	s.epoch.Store(dep.epoch)
	if s.rec != nil {
		s.rec.Record(flight.KindAdopt, s.sweepNow, int64(dep.epoch), 0)
	}
	s.publish()
}

// pendingDeploy returns the deployment waiting for this shard, nil when
// none is — the only cost hitless redeploy adds to the steady-state worker
// loop: one atomic pointer load per burst.
//
//splidt:hotpath
func (s *shardState) pendingDeploy() *deployment {
	return s.pendingDep.Load()
}

const (
	idleSpins = 256
	idleSleep = 100 * time.Microsecond
)

// publish refreshes the shard's observable snapshot; all fields are O(1)
// reads off the pipeline.
func (s *shardState) publish() {
	s.pub.Store(&shardPub{
		stats:   s.pl.Stats(),
		active:  s.pl.ActiveFlows(),
		stashed: s.pl.TableStats().Stashed,
	})
}

// subStats returns now − prev field-wise (one session's deltas).
//
//splidt:stats-complete dataplane.Stats
func subStats(now, prev dataplane.Stats) dataplane.Stats {
	d := dataplane.Stats{
		Packets:        now.Packets - prev.Packets,
		ControlPackets: now.ControlPackets - prev.ControlPackets,
		Digests:        now.Digests - prev.Digests,
		Collisions:     now.Collisions - prev.Collisions,
		RecircBytes:    now.RecircBytes - prev.RecircBytes,
		Evictions:      now.Evictions - prev.Evictions,
		Kicks:          now.Kicks - prev.Kicks,
		StashInserts:   now.StashInserts - prev.StashInserts,
		WheelExpiries:  now.WheelExpiries - prev.WheelExpiries,
	}
	for i := range d.WheelCascades {
		d.WheelCascades[i] = now.WheelCascades[i] - prev.WheelCascades[i]
	}
	return d
}

// sortDigests fixes a deterministic total order on the merged stream:
// classification time, then flow key, then the remaining fields (two
// digests can share a timestamp only across shards, so the key breaks the
// tie; the full tuple makes the order total even under key collisions).
func sortDigests(ds []dataplane.Digest) {
	sort.Slice(ds, func(a, b int) bool {
		x, y := ds[a], ds[b]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Key != y.Key {
			kx, ky := x.Key, y.Key
			if kx.SrcIP != ky.SrcIP {
				return kx.SrcIP < ky.SrcIP
			}
			if kx.DstIP != ky.DstIP {
				return kx.DstIP < ky.DstIP
			}
			if kx.SrcPort != ky.SrcPort {
				return kx.SrcPort < ky.SrcPort
			}
			if kx.DstPort != ky.DstPort {
				return kx.DstPort < ky.DstPort
			}
			return kx.Proto < ky.Proto
		}
		if x.Started != y.Started {
			return x.Started < y.Started
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		if x.Packets != y.Packets {
			return x.Packets < y.Packets
		}
		return x.Epoch < y.Epoch
	})
}
