// Package engine is the sharded multi-worker execution layer of the SpliDT
// reproduction: it drives N independent dataplane.Pipeline replicas at once,
// the software analogue of a multi-pipe switch ASIC (or an RSS-sharded
// software dataplane à la ndn-dpdk's forwarder).
//
// Architecture: a single dispatcher goroutine pulls packets from a Source,
// assigns each to a shard by flow.Key.Shard — a direction-symmetric hash, so
// every packet of a flow (and hence all of its register state and its
// digest) lives on exactly one shard — and accumulates them into fixed-size
// bursts. Full bursts move to shard workers through bounded single-producer
// single-consumer rings; drained bursts recycle back through a free ring,
// so the steady-state path allocates nothing. Each worker owns one pipeline
// replica and processes bursts in arrival order, which preserves per-flow
// packet order end to end.
//
// Correctness contract: because flows never cross shards and per-flow order
// is preserved, an engine run is digest-equivalent to feeding the same
// workload through one pipeline, as long as register-slot collisions do not
// couple flows that land on different shards (collision-free operation is
// the regime the equivalence tests pin down; Stats.Collisions reports it).
// Digests are merged into a single deterministic stream ordered by
// classification time, and per-shard Stats sum into the totals a single
// pipeline would have counted.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
)

// Source yields packets in global arrival order. trace.Stream implements it
// lazily; SliceSource adapts a pre-materialised sequence.
type Source interface {
	Next() (pkt.Packet, bool)
}

// SliceSource is a Source over an in-memory packet sequence (benchmarks use
// it to keep generation cost out of the measured path).
type SliceSource struct {
	Pkts []pkt.Packet
	pos  int
}

// Next returns the next packet until the slice is exhausted.
func (s *SliceSource) Next() (pkt.Packet, bool) {
	if s.pos >= len(s.Pkts) {
		return pkt.Packet{}, false
	}
	p := s.Pkts[s.pos]
	s.pos++
	return p, true
}

// Config sizes an engine.
type Config struct {
	// Deploy is the deployment every shard replicates. Its FlowSlots is the
	// total register budget, divided evenly among shards (dataplane.NewShards).
	Deploy dataplane.Config
	// Shards is the worker/replica count. Default: GOMAXPROCS.
	Shards int
	// Burst is the packets-per-burst batch size. Default 32 (the DPDK
	// convention).
	Burst int
	// Queue is the per-shard queue depth in bursts. It bounds dispatcher
	// runahead: a full queue backpressures the dispatcher. Default 8.
	Queue int
}

// Result is one engine run's merged output.
type Result struct {
	// Digests from all shards in one deterministic stream, ordered by
	// classification time (ties broken by flow key), independent of worker
	// scheduling.
	Digests []dataplane.Digest
	// Stats is the sum of per-shard counters for this run.
	Stats dataplane.Stats
	// PerShard holds each shard's counters for this run, indexed by shard.
	PerShard []dataplane.Stats
	// Throughput reports wall-clock rates for this run.
	Throughput metrics.Throughput
}

type shardState struct {
	pl   *dataplane.Pipeline
	in   *spscRing // filled bursts: dispatcher → worker
	free *spscRing // empty bursts: worker → dispatcher
	cur  *burst    // dispatcher's partially filled burst
	done atomic.Bool

	digests []dataplane.Digest
	prev    dataplane.Stats // counters at the start of the current run
}

// Engine drives sharded pipeline replicas. Construct with New; an Engine
// supports any number of sequential Run calls (flow state persists across
// runs, like a switch that stays up between traces) but is not itself
// concurrency-safe — all concurrency lives inside Run.
type Engine struct {
	cfg    Config
	shards []*shardState
}

// New validates the deployment, builds one pipeline replica per shard
// (sharing the frozen compiled tables), and preallocates every burst the
// run will use.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 32
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 8
	}
	pls, err := dataplane.NewShards(cfg.Deploy, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{cfg: cfg, shards: make([]*shardState, cfg.Shards)}
	for i, pl := range pls {
		s := &shardState{
			pl:   pl,
			in:   newRing(cfg.Queue),
			free: newRing(cfg.Queue + 2),
		}
		// One burst per queue slot, one for the worker to hold, one for the
		// dispatcher's partial fill — enough that neither side ever waits on
		// an allocation.
		for j := 0; j < cfg.Queue+2; j++ {
			s.free.push(&burst{pkts: make([]pkt.Packet, 0, cfg.Burst)})
		}
		e.shards[i] = s
	}
	return e, nil
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// ActiveFlows sums occupied register slots across shards. Only meaningful
// between runs (workers own the pipelines while a run is in flight).
func (e *Engine) ActiveFlows() int {
	n := 0
	for _, s := range e.shards {
		n += s.pl.ActiveFlows()
	}
	return n
}

// Run drains the source through the shards and returns the merged result.
// The dispatcher runs on the calling goroutine; one worker goroutine per
// shard processes bursts until the source is exhausted and queues drain.
func (e *Engine) Run(src Source) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("engine: nil source")
	}
	n := len(e.shards)
	for _, s := range e.shards {
		s.done.Store(false)
		s.digests = s.digests[:0]
		s.prev = s.pl.Stats()
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(n)
	for _, s := range e.shards {
		go s.work(&wg)
	}

	// Dispatch: route, batch, push. Single producer per ring.
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		s := e.shards[p.Key.Shard(n)]
		if s.cur == nil {
			s.cur = s.takeFree()
		}
		s.cur.pkts = append(s.cur.pkts, p)
		if len(s.cur.pkts) == e.cfg.Burst {
			s.in.push(s.cur)
			s.cur = nil
		}
	}
	// Flush partial bursts, then signal completion. done is set after the
	// final push, so a worker that observes it and then finds the ring
	// empty has seen everything.
	for _, s := range e.shards {
		if s.cur != nil && len(s.cur.pkts) > 0 {
			s.in.push(s.cur)
			s.cur = nil
		}
		s.done.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{PerShard: make([]dataplane.Stats, n)}
	for i, s := range e.shards {
		res.PerShard[i] = subStats(s.pl.Stats(), s.prev)
		res.Stats.Add(res.PerShard[i])
		res.Digests = append(res.Digests, s.digests...)
	}
	sortDigests(res.Digests)
	res.Throughput = metrics.Throughput{
		Packets:        res.Stats.Packets,
		Digests:        res.Stats.Digests,
		Recirculations: res.Stats.ControlPackets,
		Elapsed:        elapsed,
	}
	return res, nil
}

// work is one shard's consumer loop: pop a burst, run it through the
// replica, hand the burst back. Exits when the dispatcher has signalled
// done and the queue is drained.
func (s *shardState) work(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		b, ok := s.in.tryPop()
		if !ok {
			if s.done.Load() {
				// done is published after the final push; one more pop
				// closes the race with a flush that landed in between.
				if b, ok = s.in.tryPop(); !ok {
					return
				}
			} else {
				runtime.Gosched()
				continue
			}
		}
		for i := range b.pkts {
			if d := s.pl.Process(b.pkts[i]); d != nil {
				s.digests = append(s.digests, *d)
			}
		}
		b.pkts = b.pkts[:0]
		s.free.push(b)
	}
}

// takeFree blocks until the worker returns a recycled burst.
func (s *shardState) takeFree() *burst {
	for {
		if b, ok := s.free.tryPop(); ok {
			return b
		}
		runtime.Gosched()
	}
}

// subStats returns now − prev field-wise (one run's deltas).
func subStats(now, prev dataplane.Stats) dataplane.Stats {
	return dataplane.Stats{
		Packets:        now.Packets - prev.Packets,
		ControlPackets: now.ControlPackets - prev.ControlPackets,
		Digests:        now.Digests - prev.Digests,
		Collisions:     now.Collisions - prev.Collisions,
		RecircBytes:    now.RecircBytes - prev.RecircBytes,
	}
}

// sortDigests fixes a deterministic total order on the merged stream:
// classification time, then flow key, then the remaining fields (two
// digests can share a timestamp only across shards, so the key breaks the
// tie; the full tuple makes the order total even under key collisions).
func sortDigests(ds []dataplane.Digest) {
	sort.Slice(ds, func(a, b int) bool {
		x, y := ds[a], ds[b]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Key != y.Key {
			kx, ky := x.Key, y.Key
			if kx.SrcIP != ky.SrcIP {
				return kx.SrcIP < ky.SrcIP
			}
			if kx.DstIP != ky.DstIP {
				return kx.DstIP < ky.DstIP
			}
			if kx.SrcPort != ky.SrcPort {
				return kx.SrcPort < ky.SrcPort
			}
			if kx.DstPort != ky.DstPort {
				return kx.DstPort < ky.DstPort
			}
			return kx.Proto < ky.Proto
		}
		if x.Started != y.Started {
			return x.Started < y.Started
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		return x.Packets < y.Packets
	})
}
