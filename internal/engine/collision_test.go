package engine

import (
	"context"
	"testing"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// TestHighCollisionCuckooMatchesOracle is the flow-table subsystem's
// headline engine pin: on a workload engineered to contend for two direct-
// table indices of a 96-slot table at load factor ≥ 0.5, the cuckoo scheme
// run through the sharded engine — at 1 and at 4 shards, under -race in CI
// — produces exactly the digest multiset and inference counters of an
// exact-oracle pipeline (unbounded map), while the direct scheme on the
// same packets demonstrably diverges. Exactness no longer ends at the
// collision-free regime.
//
// The table size is a multiple of every shard count under test, so the
// engineered collisions survive the per-shard table split (see
// trace.Colliding).
func TestHighCollisionCuckooMatchesOracle(t *testing.T) {
	const slots, groups = 96, 2
	cfg := deployCfg(t, slots)
	flows := trace.Colliding(trace.D3, 56, 9, slots, groups)
	pkts := trace.Interleave(flows, 50*time.Microsecond)

	// Ground truth: one unbounded exact pipeline over the same packets.
	ocfg := cfg
	ocfg.Table = dataplane.TableOracle
	opl, err := dataplane.New(ocfg)
	if err != nil {
		t.Fatalf("New(oracle): %v", err)
	}
	var oracleDigests []dataplane.Digest
	peak := 0
	for _, p := range pkts {
		if d := opl.Process(p); d != nil {
			oracleDigests = append(oracleDigests, *d)
		}
		if a := opl.ActiveFlows(); a > peak {
			peak = a
		}
	}
	if peak*2 < slots {
		t.Fatalf("workload too sparse: peak %d concurrent flows on %d slots (LF < 0.5)", peak, slots)
	}
	oracleStats := opl.Stats()
	wantCounts := digestCounts(oracleDigests)

	for _, shards := range []int{1, 4} {
		// Cuckoo leg: exact under collisions, per shard.
		ccfg := cfg
		ccfg.Table = dataplane.TableCuckoo
		e, err := New(Config{Deploy: ccfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New cuckoo engine (%d shards): %v", shards, err)
		}
		res, err := e.Run(&SliceSource{Pkts: pkts})
		if err != nil {
			t.Fatalf("Run cuckoo (%d shards): %v", shards, err)
		}
		if res.Stats.Collisions != 0 {
			t.Fatalf("%d shards: cuckoo rejected flows (%d collision packets, stats %+v)",
				shards, res.Stats.Collisions, res.Stats)
		}
		gotCounts := digestCounts(res.Digests)
		if len(gotCounts) != len(wantCounts) || len(res.Digests) != len(oracleDigests) {
			t.Fatalf("%d shards: cuckoo %d digests (%d distinct), oracle %d (%d distinct)",
				shards, len(res.Digests), len(gotCounts), len(oracleDigests), len(wantCounts))
		}
		for d, n := range wantCounts {
			if gotCounts[d] != n {
				t.Fatalf("%d shards: digest %+v count %d, want %d", shards, d, gotCounts[d], n)
			}
		}
		if res.Stats.Packets != oracleStats.Packets ||
			res.Stats.ControlPackets != oracleStats.ControlPackets ||
			res.Stats.Digests != oracleStats.Digests ||
			res.Stats.RecircBytes != oracleStats.RecircBytes {
			t.Fatalf("%d shards: cuckoo inference stats diverge from oracle:\n%+v\n%+v",
				shards, res.Stats, oracleStats)
		}

		// Direct leg: the same packets through the same-size direct table
		// must diverge — the regression proof that the workload actually
		// collides and that the cuckoo result above is not vacuous.
		de, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
		if err != nil {
			t.Fatalf("New direct engine (%d shards): %v", shards, err)
		}
		dres, err := de.Run(&SliceSource{Pkts: pkts})
		if err != nil {
			t.Fatalf("Run direct (%d shards): %v", shards, err)
		}
		if dres.Stats.Collisions == 0 {
			t.Fatalf("%d shards: direct scheme saw no collisions on the engineered workload", shards)
		}
		dCounts := digestCounts(dres.Digests)
		same := len(dCounts) == len(wantCounts)
		if same {
			for d, n := range wantCounts {
				if dCounts[d] != n {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%d shards: direct scheme matched the oracle under collisions", shards)
		}
	}
}

// TestBlockedStashFlowNotResurrected pins the Block/Evict/straggler
// contract on a stash-resident entry: blocking a flow that lives in the
// cuckoo stash must free its stash line (not leak it), and tail packets of
// that flow already queued in the shard ring must not re-activate the
// entry. The single stash line makes the pin sharp: a leaked line would
// surface as a rejected (collision-counted) insert for the next flow.
func TestBlockedStashFlowNotResurrected(t *testing.T) {
	cfg := deployCfg(t, 1) // one bucket cell, so the second flow must stash
	cfg.Table = dataplane.TableCuckoo
	cfg.Ways = 1
	cfg.Stash = 1
	e, err := New(Config{Deploy: cfg, Shards: 1, Burst: 32, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{}, 8)
	e.shards[0].hold = hold
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	flows := trace.Generate(trace.D3, 3, eqSeed)
	a, b, c := flows[0], flows[1], flows[2]

	// Burst 1: first packets of A (bucket cell) and B (stash line).
	if _, err := s.Feed([]pkt.Packet{a.Packets[0], b.Packets[0]}); err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{}
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == 2 })
	snap := s.Snapshot()
	if snap.Stats.StashInserts != 1 || snap.ActiveFlows != 2 {
		t.Fatalf("setup: stashInserts=%d active=%d, want 1/2 (B in the stash)",
			snap.Stats.StashInserts, snap.ActiveFlows)
	}

	// Burst 2: B's tail, queued while the worker is gated...
	if _, err := s.Feed([]pkt.Packet{b.Packets[1], b.Packets[2]}); err != nil {
		t.Fatal(err)
	}
	// ...then the verdict: filter entry first, eviction mailbox second.
	s.Block(b.Key)
	hold <- struct{}{}
	waitFor(t, func() bool { return s.Snapshot().Dropped == 2 })
	snap = s.Snapshot()
	if snap.Stats.Evictions != 1 {
		t.Fatalf("blocking the stash resident evicted %d entries, want 1", snap.Stats.Evictions)
	}
	if snap.ActiveFlows != 1 {
		t.Fatalf("ActiveFlows = %d after block, want 1 (stragglers resurrected the stash entry)",
			snap.ActiveFlows)
	}
	if snap.Stats.Packets != 2 {
		t.Fatalf("stragglers reached the pipeline: %d packets processed", snap.Stats.Packets)
	}

	// The freed stash line must be reusable: flow C overflows into it. A
	// leaked line would reject C — visible as a collision-counted packet.
	if _, err := s.Feed([]pkt.Packet{c.Packets[0]}); err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{}
	waitFor(t, func() bool { return s.Snapshot().Stats.Packets == 3 })
	snap = s.Snapshot()
	if snap.Stats.Collisions != 0 {
		t.Fatalf("freed stash line not reused: flow C rejected (%d collisions)", snap.Stats.Collisions)
	}
	if snap.Stats.StashInserts != 2 || snap.ActiveFlows != 2 {
		t.Fatalf("stash reuse: stashInserts=%d active=%d, want 2/2",
			snap.Stats.StashInserts, snap.ActiveFlows)
	}

	close(hold)
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
