package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/flow"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
)

// Feed and session lifecycle errors.
var (
	// ErrBackpressure reports that a shard queue is full: the workers are
	// behind the producer. Feed returns it together with the number of
	// packets it did accept; the caller retries with the remainder (or
	// sheds load) — the producer side never blocks silently.
	ErrBackpressure = errors.New("engine: backpressure: shard queue full")
	// ErrSessionClosed reports a Feed after Close (or after the session's
	// context was cancelled).
	ErrSessionClosed = errors.New("engine: session closed")
	// ErrSessionActive reports a Start while another session is running.
	ErrSessionActive = errors.New("engine: a session is already active")
)

// Snapshot is a live view of a running (or closed) session, assembled from
// the workers' per-burst published stats — reading one never touches state
// a worker owns, so it is safe at any time, including mid-run under -race.
type Snapshot struct {
	// Stats is the merged per-shard counter deltas since Start. It trails
	// live state by at most one in-flight burst per shard. Stats.Evictions
	// counts register slots reclaimed this session by flow-table ageing
	// sweeps and Block/Evict-initiated eviction.
	Stats dataplane.Stats
	// PerShard is the per-shard split of Stats.
	PerShard []dataplane.Stats
	// ActiveFlows is the number of occupied register slots across shards.
	ActiveFlows int
	// Fed counts packets accepted by Feed (including ones later dropped by
	// the block filter; excluding ones refused with ErrBackpressure).
	Fed int64
	// Dropped counts packets discarded because their flow was blocked —
	// at the dispatch stage, or at a worker for packets that were already
	// queued when the verdict landed.
	Dropped int64
	// Backpressure counts Feed calls that returned ErrBackpressure.
	Backpressure int64
	// BlockedFlows is the current size of the drop filter.
	BlockedFlows int
	// StashedFlows is the number of flows currently parked in the flow
	// tables' stashes across shards (cuckoo scheme only; 0 otherwise). A
	// persistently non-zero value under churn means the table is operating
	// in its overflow regime — the occupancy headroom gauge the load
	// harness watches during collision storms.
	StashedFlows int
	// QuarantineDropped counts packets drained to the drop counter by
	// quarantined shards (worker-panic containment): the remainder of each
	// panicking burst plus every packet the dead shard's ring drained
	// afterwards. Zero in healthy sessions.
	QuarantineDropped int64
	// DiscardedStaged counts packets in staged bursts that a
	// deadline-bounded shutdown flush abandoned because a shard's ring
	// stayed full past the shutdown deadline (stuck worker). Zero in
	// healthy sessions — even quarantined shards keep draining their rings.
	DiscardedStaged int64
}

// Session is a long-lived streaming run of an Engine: packets go in through
// Feed, digests come out through Digests or Poll while traffic is still
// flowing, Snapshot observes live merged stats, Block installs mid-run drop
// verdicts, and Close drains everything and returns the deterministic final
// Result.
//
// Concurrency: Feed may be called from multiple goroutines (calls
// serialise on the session's default Feeder), and every other method is
// safe concurrently with Feed and with each other. Producers that want
// dispatch parallelism instead of serialisation take a private handle each
// via NewFeeder — M feeders push into the shard workers' multi-producer
// rings with no shared lock on the hot path (Feed/FeedAll/FeedSource are
// thin wrappers over the default feeder, so one feeder behaves exactly as
// the session always has). Digests and Poll are alternative drain modes —
// the first Digests call switches the session to channel delivery; consume
// through one of them, not both at once, or interleaving order across flows
// is unspecified (each digest is still delivered exactly once, and
// Close's Result always carries the complete ordered stream).
type Session struct {
	e     *Engine
	start time.Time

	lifeMu sync.Mutex // guards closed (session lifecycle, not the feed path)
	closed bool       // under lifeMu: session shut down, Evict is a no-op

	// Feeder registry: shutdown seals it, then force-closes every feeder
	// still open so staged bursts are delivered (or discarded, on abort)
	// exactly once.
	feederMu      sync.Mutex
	feeders       map[*Feeder]struct{}
	feedersSealed bool
	def           *Feeder // backs Session.Feed/FeedAll/FeedSource

	fed          atomic.Int64
	dropped      atomic.Int64
	backpressure atomic.Int64
	discarded    atomic.Int64 // staged packets abandoned by a deadline-bounded flush

	// fault is the session's first recorded cause error (worker panic, ctx
	// cancellation, shutdown timeout) — Session.Err. First fault wins.
	faultMu sync.Mutex
	fault   error

	// redeployMu serialises Session.Redeploy callers (epoch handoffs must
	// not interleave).
	redeployMu sync.Mutex

	// hooks are the fault-injection seams (WithTestHooks); nil in
	// production.
	hooks *TestHooks

	filter dropFilter

	sinkCh   chan dataplane.Digest // workers → sink (many producers)
	out      chan dataplane.Digest // sink/pump → consumer (channel mode)
	sinkDone chan struct{}         // sink exited: all digests recorded

	mu          sync.Mutex         // guards all/delivered/sinkClosed
	cond        *sync.Cond         // pump wakeup, signalled under mu
	all         []dataplane.Digest // undelivered + (retain mode) delivered digests, in sink-arrival order
	delivered   int                // all[:delivered] has gone out via Poll/Digests
	sinkClosed  bool
	channelMode atomic.Bool
	pumpOnce    sync.Once
	bounded     bool // drop digests once delivered (WithBoundedDigests)

	latency  bool            // record digest latency (WithDigestLatency)
	latHists []*metrics.Hist // per-shard digest-latency hists; nil when off

	prev []dataplane.Stats // per-shard counters at Start, owned by this session

	wg        sync.WaitGroup // shard workers
	watchStop chan struct{}  // releases the context watcher

	closeOnce sync.Once
	result    *Result
	resErr    error
}

// SessionOption configures a Session at Start.
type SessionOption func(*Session)

// WithBoundedDigests switches the session to drop-after-delivery digest
// retention: a digest handed out through Digests() or Poll is released
// rather than kept for Close, so a long-lived session's memory is bounded
// by the undelivered backlog instead of growing with every classification.
// The trade-off: Close's Result.Digests then carries only the digests not
// yet delivered at Close time (still deterministically ordered) — sessions
// that need the complete stream in the final Result use the default retain
// mode.
func WithBoundedDigests() SessionOption {
	return func(s *Session) { s.bounded = true }
}

// WithDigestLatency turns on digest-latency attribution: feeders stamp each
// burst with its wall-clock handoff time, shard workers record handoff →
// digest-emission latency into per-shard histograms, and DigestLatency()
// exposes the merged distribution (p50/p99/p999) live while the session
// runs. Off by default: the stamped clock read (one per burst) and the
// per-digest record are skipped entirely, so existing sessions pay nothing.
func WithDigestLatency() SessionOption {
	return func(s *Session) { s.latency = true }
}

// Start begins a streaming session: one worker goroutine per shard plus a
// digest sink that merges per-shard digest streams incrementally. At most
// one session runs per engine at a time. Cancelling ctx aborts the session:
// staged partial bursts are discarded (already-queued bursts still drain),
// Feed starts failing, and Close reports the context error. Close alone
// performs a fully graceful drain.
func (e *Engine) Start(ctx context.Context, opts ...SessionOption) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !e.active.CompareAndSwap(false, true) {
		return nil, ErrSessionActive
	}
	s := &Session{
		e:         e,
		start:     time.Now(),
		feeders:   make(map[*Feeder]struct{}),
		sinkCh:    make(chan dataplane.Digest, e.cfg.DigestBuffer),
		out:       make(chan dataplane.Digest, e.cfg.DigestBuffer),
		sinkDone:  make(chan struct{}),
		watchStop: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.cond = sync.NewCond(&s.mu)
	if s.latency {
		s.latHists = make([]*metrics.Hist, len(e.shards))
		for i := range s.latHists {
			s.latHists[i] = &metrics.Hist{}
		}
	}
	s.prev = make([]dataplane.Stats, len(e.shards))
	for i, sh := range e.shards {
		sh.done.Store(false)
		s.prev[i] = sh.pl.Stats()
		// Fresh per-session latency hist (nil when latency is off — the
		// worker's nil check is what keeps the default path free).
		sh.latHist = nil
		if s.latHists != nil {
			sh.latHist = s.latHists[i]
		}
		// Evictions enqueued after the previous session's workers exited
		// belong to that session's filter state; drop them.
		sh.evictMu.Lock()
		sh.evictQ = sh.evictQ[:0]
		sh.evictN.Store(0)
		sh.evictMu.Unlock()
		// This session's drop filter starts empty at epoch zero; reset the
		// worker's cached per-burst view to match.
		sh.filterEpoch = 0
		sh.filterCheck = false
		// Health is per session: a quarantine does not outlive the session
		// whose worker panicked (the replica restarts from whatever state
		// the panic left, like a crashed-and-restarted pipe).
		sh.health.Store(int32(ShardRunning))
		sh.quarDrops.Store(0)
		sh.progress.Store(0)
		sh.lastTS.Store(int64(sh.pl.Clock()))
		// A deployment published by a Redeploy that raced the previous
		// session's shutdown may still be pending; adopt it here, before
		// the worker starts, so shards never run mixed trees across a
		// session boundary.
		if dep := sh.pendingDep.Swap(nil); dep != nil {
			sh.pl.Redeploy(dep.model, dep.compiled, dep.epoch)
			sh.epoch.Store(dep.epoch)
		}
		sh.pub.Store(&shardPub{
			stats:   s.prev[i],
			active:  sh.pl.ActiveFlows(),
			stashed: sh.pl.TableStats().Stashed,
		})
	}
	if e.defFree == nil {
		e.defFree = newBurstPool(len(e.shards), e.cfg)
	}
	var err error
	if s.def, err = s.newFeeder(e.defFree); err != nil {
		e.active.Store(false)
		return nil, err
	}
	s.wg.Add(len(e.shards))
	for i, sh := range e.shards {
		go sh.work(s, i)
	}
	go s.sink()
	go s.watchdog(e.cfg.WatchdogInterval)
	go func() {
		select {
		case <-ctx.Done():
			s.shutdown(false, ctx.Err())
		case <-s.watchStop:
		}
	}()
	return s, nil
}

// Feed dispatches packets to the shard workers through the session's
// default Feeder and returns how many it accepted. It never blocks: when a
// shard's queue is full (the workers are behind) it stops at the first
// unplaceable packet and returns the count consumed so far with
// ErrBackpressure — retry with pkts[n:]. Accepted packets are fully handed
// off (partial bursts are flushed best-effort at the end of each call and
// unconditionally at Close), and the caller keeps ownership of the slice.
// Packets of blocked flows count as accepted but are dropped before
// dispatch. Concurrent callers serialise; producers that want real
// dispatch parallelism take a private Feeder each (NewFeeder).
func (s *Session) Feed(pkts []pkt.Packet) (int, error) {
	n, err := s.def.Feed(pkts)
	if err == ErrFeederClosed {
		// The default feeder closes only when the session does; surface why
		// (ctx cancellation, worker panic, shutdown timeout) when a cause
		// was recorded.
		err = s.closedErr()
	}
	return n, err
}

// FeedAll feeds the whole slice, yielding through backpressure until every
// packet is accepted and handed to the workers — unlike bare Feed it does
// not leave a trailing partial burst staged, so "FeedAll returned" means
// the workers will process every packet without further calls. Any error
// other than ErrBackpressure aborts the loop and is returned. Callers that
// would rather shed load than wait use Feed directly.
func (s *Session) FeedAll(pkts []pkt.Packet) error {
	err := s.def.FeedAll(pkts)
	if err == ErrFeederClosed {
		err = s.closedErr()
	}
	return err
}

// FeedSource drains a Source through the session in staged chunks,
// yielding through backpressure — the one home for the pull-stage-FeedAll
// loop Run, the CLI, and the examples all need.
func (s *Session) FeedSource(src Source) error {
	err := s.def.FeedSource(src)
	if err == ErrFeederClosed {
		err = s.closedErr()
	}
	return err
}

// closedErr is the error the Feed family returns once the session has
// closed: bare ErrSessionClosed after a graceful Close, or ErrSessionClosed
// wrapping the recorded cause (Session.Err) after a fault — errors.Is
// matches both the sentinel and the cause, and errors.As recovers a
// ShardPanicError.
func (s *Session) closedErr() error {
	if cause := s.Err(); cause != nil {
		return fmt.Errorf("%w: %w", ErrSessionClosed, cause)
	}
	return ErrSessionClosed
}

// Digests returns the live merged digest stream. The first call switches
// the session to channel delivery: a pump goroutine forwards digests in
// sink-arrival order (per-flow order preserved) and closes the channel
// after the session ends and every digest has been delivered. Consumers
// must drain until close, or use Poll instead.
func (s *Session) Digests() <-chan dataplane.Digest {
	s.pumpOnce.Do(func() {
		s.channelMode.Store(true)
		go s.pump()
	})
	return s.out
}

// Poll drains up to len(buf) pending digests into buf without blocking and
// returns how many it wrote. After Close it keeps returning the remaining
// undelivered tail until the stream is empty.
func (s *Session) Poll(buf []dataplane.Digest) int {
	n := 0
	if s.channelMode.Load() {
		// Channel mode: the pump owns pending; serve from the channel.
		for n < len(buf) {
			select {
			case d, ok := <-s.out:
				if !ok {
					return n
				}
				buf[n] = d
				n++
			default:
				return n
			}
		}
		return n
	}
	s.mu.Lock()
	n = copy(buf, s.all[s.delivered:])
	s.delivered += n
	s.compactLocked()
	s.mu.Unlock()
	return n
}

// compactLocked releases delivered digests in bounded mode by shifting the
// undelivered tail to the front of the backing array, so memory tracks the
// backlog, not the session's lifetime output. Called with mu held; a no-op
// in retain mode, where s.all must keep the complete stream for Close.
func (s *Session) compactLocked() {
	if !s.bounded || s.delivered == 0 {
		return
	}
	n := copy(s.all, s.all[s.delivered:])
	s.all = s.all[:n]
	s.delivered = 0
}

// Snapshot assembles a live view of the session from the workers' published
// per-burst stats. Safe to call at any time, from any goroutine.
//
//splidt:stats-complete Snapshot
func (s *Session) Snapshot() Snapshot {
	snap := Snapshot{
		PerShard:        make([]dataplane.Stats, len(s.e.shards)),
		Fed:             s.fed.Load(),
		Dropped:         s.dropped.Load(),
		Backpressure:    s.backpressure.Load(),
		BlockedFlows:    s.filter.size(),
		DiscardedStaged: s.discarded.Load(),
	}
	for i, sh := range s.e.shards {
		pub := sh.pub.Load()
		snap.PerShard[i] = subStats(pub.stats, s.prev[i])
		snap.Stats.Add(snap.PerShard[i])
		snap.ActiveFlows += pub.active
		snap.StashedFlows += pub.stashed
		snap.QuarantineDropped += sh.quarDrops.Load()
	}
	return snap
}

// DigestLatency returns the merged feeder-handoff → digest-emission latency
// distribution for sessions started WithDigestLatency, nil otherwise. Safe
// to call live: it merges the per-shard histograms into a fresh snapshot
// (workers keep recording into their own), so successive calls give
// monotonically growing counts and a caller can Sub an earlier snapshot for
// a phase delta.
func (s *Session) DigestLatency() *metrics.Hist {
	if s.latHists == nil {
		return nil
	}
	m := &metrics.Hist{}
	for _, h := range s.latHists {
		m.Merge(h)
	}
	return m
}

// Block installs a drop verdict for the flow (both directions): subsequent
// packets of the flow are discarded at the dispatch stage, before they
// consume a burst slot or pipeline work, and packets already queued in the
// shard ring are discarded by the worker before processing. This is the
// data-plane half of the controller's detect→block loop. Block also evicts
// the flow's register slot (see Evict): once the flow's remaining packets
// are dropped, an early-exited flow's parked slot would never see the
// flow-end packet that frees it, so blocking without evicting leaks a slot
// per blocked flow in a long-lived session. The filter entry is installed
// before the eviction is enqueued, so the freed slot cannot be
// re-activated by in-flight stragglers of the same flow.
func (s *Session) Block(k flow.Key) {
	s.filter.block(k)
	s.Evict(k)
}

// Evict asynchronously reclaims the flow's register slot on its owning
// shard — the controller-initiated arm of flow-table ageing, effective
// even with IdleTimeout unset. The reclaim is handed to the shard's worker
// (the only goroutine that may touch its pipeline) and applied before the
// worker's next burst, or promptly while it idles; it is a no-op if the
// flow does not currently own its slot. Safe from any goroutine. After the
// session has closed, Evict does nothing: the shard mailboxes belong to
// the next session by then, and a stale verdict must not reclaim a live
// flow's slot there.
func (s *Session) Evict(k flow.Key) {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return
	}
	s.e.shards[k.Shard(len(s.e.shards))].evict(k)
}

// Unblock removes a flow's drop verdict.
func (s *Session) Unblock(k flow.Key) { s.filter.unblock(k) }

// Blocked reports whether the flow is currently blocked.
func (s *Session) Blocked(k flow.Key) bool { return s.filter.blocked(k) }

// Close gracefully drains the session: it flushes staged bursts, waits for
// the workers to finish every queued packet, merges the per-shard digest
// streams into one deterministically ordered Result, and releases the
// engine for the next session. Close is idempotent; every call returns the
// same Result. For sessions started WithBoundedDigests, Result.Digests
// holds only the digests not yet delivered through Digests()/Poll.
//
// Close returns the session's recorded cause (Session.Err) as its error:
// nil for a healthy session, the context's error after a cancellation, a
// ShardPanicError after a quarantine — the run's digests and stats are
// still returned either way. Every wait is bounded by the engine's
// ShutdownTimeout: if a worker is stuck past the deadline, Close abandons
// it, returns ErrShutdownTimeout with stats from the workers' last
// published snapshots, and poisons the engine (the stuck worker still owns
// its replica, so no further session may start).
func (s *Session) Close() (*Result, error) {
	s.shutdown(true, nil)
	return s.result, s.resErr
}

// shutdown runs the started→fed→drained state machine's final transition
// exactly once. flush selects graceful drain (Close) versus abort (context
// cancellation).
func (s *Session) shutdown(flush bool, cause error) {
	s.closeOnce.Do(func() {
		// Record the cause first so concurrent Feed callers fail with it
		// from the first moment the session reads as closed.
		s.recordFault(cause)
		s.lifeMu.Lock()
		s.closed = true
		s.lifeMu.Unlock()

		// Every teardown wait below shares one deadline: shutdown must
		// return even when a worker is stuck mid-burst.
		deadline := time.Now().Add(s.e.cfg.ShutdownTimeout)

		// Seal the registry (no new feeders), then force-close every feeder
		// still open: each seal acquires that feeder's private lock, so no
		// push can be in flight once the loop completes, and every staged
		// burst has been delivered (flush) or discarded (abort). Feeders
		// closing themselves concurrently just win the race and no-op here.
		s.feederMu.Lock()
		s.feedersSealed = true
		open := make([]*Feeder, 0, len(s.feeders))
		for f := range s.feeders {
			open = append(open, f)
		}
		s.feederMu.Unlock()
		for _, f := range open {
			f.closeForShutdown(flush, deadline)
		}
		// done is set after the final push, so a worker that observes it
		// and then finds its ring empty has seen everything.
		for _, sh := range s.e.shards {
			sh.done.Store(true)
		}

		workersDone := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(workersDone)
		}()
		timedOut := false
		select {
		case <-workersDone:
			// All workers exited (quarantined ones drain their rings and
			// exit too): the sink channel has no more producers, so closing
			// it and waiting for the sink is safe and prompt.
			close(s.sinkCh)
			<-s.sinkDone
		case <-time.After(time.Until(deadline)):
			// A worker is stuck. Abandon it: sinkCh must stay open (the
			// straggler may still send on it if it ever wakes) and the sink
			// goroutine keeps consuming, so the engine is poisoned — active
			// stays set and no further session can start.
			timedOut = true
			s.recordFault(ErrShutdownTimeout)
		}
		close(s.watchStop)

		res := &Result{PerShard: make([]dataplane.Stats, len(s.e.shards))}
		for i, sh := range s.e.shards {
			if timedOut {
				// The stuck worker still owns its pipeline; read the last
				// published snapshot instead of racing it.
				res.PerShard[i] = subStats(sh.pub.Load().stats, s.prev[i])
			} else {
				res.PerShard[i] = subStats(sh.pl.Stats(), s.prev[i])
			}
			res.Stats.Add(res.PerShard[i])
		}
		// Sort a copy: s.all stays in arrival order so Poll/Digests can
		// still deliver the undrained tail after Close. In bounded mode
		// the Result carries exactly the undelivered backlog — s.all may
		// still hold a delivered-but-uncompacted prefix (the pump compacts
		// in batches), so slice past the delivered cursor. The pump may be
		// mutating concurrently — snapshot under mu.
		s.mu.Lock()
		tail := s.all
		if s.bounded {
			tail = s.all[s.delivered:]
		}
		res.Digests = append([]dataplane.Digest(nil), tail...)
		s.mu.Unlock()
		sortDigests(res.Digests)
		res.Dropped = s.dropped.Load()
		res.Throughput = metrics.Throughput{
			Packets:        res.Stats.Packets,
			Digests:        res.Stats.Digests,
			Recirculations: res.Stats.ControlPackets,
			Elapsed:        time.Since(s.start),
		}
		s.result = res
		// The session's error is its recorded cause: the shutdown trigger
		// (ctx cancellation) if there was one, else the first internal
		// fault (worker panic, shutdown timeout), else nil.
		s.resErr = s.Err()
		if !timedOut {
			s.e.active.Store(false)
		}
	})
}

// sink is the merge stage: it serialises the per-shard digest streams into
// the session's single arrival-ordered record, which both the live
// delivery path (Poll/pump, via the delivered cursor) and Close's final
// Result read — each digest is stored once. It runs until every worker has
// exited and the channel drained.
func (s *Session) sink() {
	for d := range s.sinkCh {
		if h := s.hooks; h != nil && h.SinkDigest != nil {
			h.SinkDigest(&d)
		}
		s.mu.Lock()
		s.all = append(s.all, d)
		s.mu.Unlock()
		s.cond.Signal()
	}
	s.mu.Lock()
	s.sinkClosed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	close(s.sinkDone)
}

// pump forwards undelivered digests to the out channel in order (channel
// mode only). It keeps delivering after shutdown until the backlog is
// empty, then closes the channel — so a consumer ranging over Digests()
// sees every digest exactly once.
func (s *Session) pump() {
	for {
		s.mu.Lock()
		for s.delivered == len(s.all) && !s.sinkClosed {
			s.cond.Wait()
		}
		if s.delivered == len(s.all) {
			s.mu.Unlock()
			close(s.out)
			return
		}
		d := s.all[s.delivered]
		s.delivered++
		// Compact periodically, not per digest: the copy is O(backlog), so
		// a threshold keeps pump delivery amortised O(1) while still
		// bounding memory in drop-after-delivery mode.
		if s.delivered >= pumpCompactThreshold || s.delivered == len(s.all) {
			s.compactLocked()
		}
		s.mu.Unlock()
		s.out <- d
	}
}

// pumpCompactThreshold is how many delivered digests the pump lets
// accumulate before compacting a bounded session's buffer.
const pumpCompactThreshold = 256

// dropFilter is the dispatch-stage blocklist: a direction-symmetric flow
// set with an atomic emptiness fast path, so an unblocked workload pays one
// atomic load per packet and nothing else. ep advances on every change to
// the set, letting shard workers amortise even that load to once per burst:
// a worker caches (epoch, non-empty) and re-checks packets individually
// only while its cached view says the filter has entries — see work.
type dropFilter struct {
	n   atomic.Int64
	ep  atomic.Uint64
	mu  sync.RWMutex
	set map[flow.Key]struct{}
}

func (f *dropFilter) block(k flow.Key) {
	c := k.Canonical()
	f.mu.Lock()
	if f.set == nil {
		f.set = make(map[flow.Key]struct{})
	}
	if _, ok := f.set[c]; !ok {
		f.set[c] = struct{}{}
		f.n.Add(1)
		f.ep.Add(1)
	}
	f.mu.Unlock()
}

func (f *dropFilter) unblock(k flow.Key) {
	c := k.Canonical()
	f.mu.Lock()
	if _, ok := f.set[c]; ok {
		delete(f.set, c)
		f.n.Add(-1)
		f.ep.Add(1)
	}
	f.mu.Unlock()
}

func (f *dropFilter) blocked(k flow.Key) bool {
	if f.n.Load() == 0 {
		return false
	}
	c := k.Canonical()
	f.mu.RLock()
	_, ok := f.set[c]
	f.mu.RUnlock()
	return ok
}

func (f *dropFilter) size() int { return int(f.n.Load()) }
