package engine

import (
	"context"
	"testing"
	"time"

	"splidt/internal/trace"
)

// TestDigestLatencyDisabledByDefault pins the zero-cost default: without
// WithDigestLatency no histogram exists, no shard records, and the session
// behaves exactly as before.
func TestDigestLatencyDisabledByDefault(t *testing.T) {
	e, err := New(Config{Deploy: deployCfg(t, 512), Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if h := s.DigestLatency(); h != nil {
		t.Fatalf("DigestLatency() = %v without WithDigestLatency, want nil", h)
	}
	for _, sh := range e.shards {
		if sh.latHist != nil {
			t.Fatal("shard latHist set without WithDigestLatency")
		}
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 100, 5), 40*time.Microsecond)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatalf("FeedAll: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if h := s.DigestLatency(); h != nil {
		t.Fatal("DigestLatency() non-nil after Close of a default session")
	}
}

// TestDigestLatencyRecorded pins the attribution contract: every digest the
// session emits lands exactly one observation in the merged histogram, and
// the distribution is readable both live (mid-run snapshot) and after Close.
func TestDigestLatencyRecorded(t *testing.T) {
	e, err := New(Config{Deploy: deployCfg(t, 512), Shards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := e.Start(context.Background(), WithDigestLatency())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 400, 11), 40*time.Microsecond)
	half := len(pkts) / 2
	if err := s.FeedAll(pkts[:half]); err != nil {
		t.Fatalf("FeedAll: %v", err)
	}
	live := s.DigestLatency()
	if live == nil {
		t.Fatal("DigestLatency() nil with WithDigestLatency")
	}
	if err := s.FeedAll(pkts[half:]); err != nil {
		t.Fatalf("FeedAll: %v", err)
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res.Stats.Digests == 0 {
		t.Fatal("workload produced no digests; test is vacuous")
	}
	final := s.DigestLatency()
	if final.Count() != int64(res.Stats.Digests) {
		t.Fatalf("latency observations = %d, digests = %d; want equal",
			final.Count(), res.Stats.Digests)
	}
	if live.Count() > final.Count() {
		t.Fatalf("live snapshot count %d exceeds final %d", live.Count(), final.Count())
	}
	if final.Max() <= 0 {
		t.Fatalf("max latency %v, want > 0 (feeder handoff to emission takes time)", final.Max())
	}
	if p50, p999 := final.Quantile(0.50), final.Quantile(0.999); p50 > p999 {
		t.Fatalf("p50 %v > p999 %v", p50, p999)
	}
	// Sanity ceiling: each observation is a wall-clock span inside this
	// test, so it cannot exceed a generous bound on the test's runtime.
	if max := final.QuantileDur(1); max > time.Minute {
		t.Fatalf("implausible max latency %v", max)
	}

	// DigestLatency returns snapshots: merging the live per-shard hists
	// again must reproduce the same totals, and Sub of the earlier snapshot
	// is a valid phase delta.
	again := s.DigestLatency()
	if again.Count() != final.Count() {
		t.Fatalf("repeated DigestLatency diverged: %d vs %d", again.Count(), final.Count())
	}
	delta := final.Clone()
	delta.Sub(live)
	if got := delta.Count(); got != final.Count()-live.Count() {
		t.Fatalf("phase delta count %d, want %d", got, final.Count()-live.Count())
	}
}

// TestDigestLatencyPerShardMerge pins that the merged histogram is exactly
// the fold of the per-shard worker histograms — same bucket contents
// regardless of which side does the merging.
func TestDigestLatencyPerShardMerge(t *testing.T) {
	e, err := New(Config{Deploy: deployCfg(t, 512), Shards: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := e.Start(context.Background(), WithDigestLatency())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, 300, 21), 40*time.Microsecond)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatalf("FeedAll: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	merged := s.DigestLatency()
	var fold, perShard int64
	byHand := s.latHists[0].Clone()
	for i, sh := range e.shards {
		if sh.latHist != s.latHists[i] {
			t.Fatalf("shard %d latHist not this session's", i)
		}
		perShard += sh.latHist.Count()
		if i > 0 {
			byHand.Merge(sh.latHist)
		}
	}
	fold = byHand.Count()
	if merged.Count() != perShard || fold != perShard {
		t.Fatalf("merge mismatch: session %d, hand fold %d, per-shard sum %d",
			merged.Count(), fold, perShard)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if a, b := merged.Quantile(q), byHand.Quantile(q); a != b {
			t.Fatalf("q=%v: session merge %d, hand fold %d", q, a, b)
		}
	}
}

// TestSnapshotStashedFlows pins the stash gauge plumbing: after Close the
// snapshot's StashedFlows equals the sum of the pipelines' own stash gauges
// (workers publish a final snapshot on exit).
func TestSnapshotStashedFlows(t *testing.T) {
	const slots, groups = 96, 2
	e, err := New(Config{Deploy: deployCfg(t, slots), Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A colliding workload concentrates keys into few buckets, the regime
	// that exercises the stash; whether any flow is parked at close is
	// workload-dependent, so the assertion is gauge consistency, not > 0.
	flows := trace.Colliding(trace.D3, 56, 9, slots, groups)
	if err := s.FeedAll(trace.Interleave(flows, 50*time.Microsecond)); err != nil {
		t.Fatalf("FeedAll: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := 0
	for _, sh := range e.shards {
		want += sh.pl.TableStats().Stashed
	}
	if got := s.Snapshot().StashedFlows; got != want {
		t.Fatalf("Snapshot().StashedFlows = %d, pipelines report %d", got, want)
	}
}
