package engine

// Chaos suite: seeded fault plans (internal/faultinject) injected through
// the session's TestHooks, pinning the tentpole robustness properties —
// delay-only faults never change what the engine emits, a worker panic
// quarantines exactly one shard, shutdown is deadline-bounded even against
// a stuck worker, and a mid-run Redeploy carries flow state across the
// swap. Everything is deterministic in its seeds, so any failure
// reproduces from the test name alone, including under -race.

import (
	"context"
	"errors"
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/faultinject"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/trace"
)

// settleSession waits until every fed packet is accounted for: processed,
// dropped by the block filter, or drained by a quarantined shard.
func settleSession(t *testing.T, s *Session) Snapshot {
	t.Helper()
	var snap Snapshot
	waitFor(t, func() bool {
		snap = s.Snapshot()
		return int64(snap.Stats.Packets)+snap.Dropped+snap.QuarantineDropped+snap.DiscardedStaged == snap.Fed
	})
	return snap
}

// normalizeEpochs zeroes the deploy-epoch stamp on a digest stream copy so
// multisets compare across runs that swapped trees at different times.
func normalizeEpochs(ds []dataplane.Digest) []dataplane.Digest {
	out := append([]dataplane.Digest(nil), ds...)
	for i := range out {
		out[i].Epoch = 0
	}
	return out
}

// mustMatchMultiset fails unless the two digest streams are
// multiset-identical.
func mustMatchMultiset(t *testing.T, name string, got, want []dataplane.Digest) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d digests, want %d", name, len(got), len(want))
	}
	wantCounts := digestCounts(want)
	for d, n := range digestCounts(got) {
		if wantCounts[d] != n {
			t.Fatalf("%s: digest %+v count %d, want %d", name, d, n, wantCounts[d])
		}
	}
}

// TestChaosScheduleEquivalence is the chaos headline: under any non-lossy
// seeded fault plan (shard stalls, sink stalls, synthetic ring overflows),
// at 1 and 4 shards, over both the direct and cuckoo flow tables, the
// engine's digest multiset and merged counters are exactly what the
// fault-free run produces. Delay faults may reorder arrival and force the
// backpressure path, but must never change what is computed.
func TestChaosScheduleEquivalence(t *testing.T) {
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	for _, scheme := range []dataplane.TableScheme{dataplane.TableDirect, dataplane.TableCuckoo} {
		cfg := deployCfg(t, eqSlots)
		cfg.Table = scheme
		for _, shards := range []int{1, 4} {
			base, err := mustEngine(t, cfg, shards).Run(&SliceSource{Pkts: pkts})
			if err != nil {
				t.Fatalf("%s/%d: baseline Run: %v", scheme, shards, err)
			}
			for _, seed := range []int64{11, 23} {
				plan := faultinject.NonLossy(seed, shards)
				for _, f := range plan.Faults() {
					if f.Kind.Lossy() {
						t.Fatalf("plan %v contains lossy fault %v", plan, f)
					}
				}
				s, err := mustEngine(t, cfg, shards).Start(context.Background(),
					WithTestHooks(&TestHooks{
						BeforePacket: plan.BeforePacket,
						SinkDigest:   plan.SinkDigest,
						PushRefuse:   plan.PushRefuse,
					}))
				if err != nil {
					t.Fatalf("%s/%d/seed%d: Start: %v", scheme, shards, seed, err)
				}
				if err := s.FeedAll(pkts); err != nil {
					t.Fatalf("%s/%d/seed%d: FeedAll: %v", scheme, shards, seed, err)
				}
				res, err := s.Close()
				if err != nil {
					t.Fatalf("%s/%d/seed%d (%v): Close: %v", scheme, shards, seed, plan, err)
				}
				name := string(scheme) + "/faulted"
				if res.Stats != base.Stats {
					t.Fatalf("%s/%d/seed%d (%v): stats %+v, want %+v",
						scheme, shards, seed, plan, res.Stats, base.Stats)
				}
				mustMatchMultiset(t, name, res.Digests, base.Digests)
				if err := s.Err(); err != nil {
					t.Fatalf("%s/%d/seed%d: session recorded fault %v under non-lossy plan", scheme, shards, seed, err)
				}
			}
		}
	}
}

func mustEngine(t *testing.T, cfg dataplane.Config, shards int) *Engine {
	t.Helper()
	e, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatalf("New(%d shards): %v", shards, err)
	}
	return e
}

// TestQuarantineIsolation injects a worker panic on one shard mid-run and
// pins the containment contract: only that shard is quarantined (its
// backlog drains to a drop counter), every other shard keeps processing and
// emitting, Health and Err surface the fault, a private Feeder's Close does
// not deadlock against the dead shard, Session.Close returns promptly with
// the recorded cause, and the engine is reusable afterwards (quarantine is
// per session).
func TestQuarantineIsolation(t *testing.T) {
	const panicShard, panicAt = 2, 40
	cfg := deployCfg(t, eqSlots)
	e := mustEngine(t, cfg, 4)
	plan := faultinject.New(4, faultinject.Fault{
		Kind: faultinject.WorkerPanic, Shard: panicShard, At: panicAt,
	})
	s, err := e.Start(context.Background(), WithTestHooks(&TestHooks{
		BeforePacket: plan.BeforePacket,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Feed through a private Feeder: its Close must flush cleanly even with
	// a quarantined shard in the dispatch fan-out (the dead shard's ring
	// keeps draining, so nothing wedges).
	f, err := s.NewFeeder()
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	if err := f.FeedAll(pkts); err != nil {
		t.Fatalf("FeedAll across a quarantined shard: %v", err)
	}
	f.Close()
	snap := settleSession(t, s)
	if snap.QuarantineDropped == 0 {
		t.Fatal("quarantined shard drained no packets to the drop counter")
	}

	h := s.Health()
	if h.Err == nil {
		t.Fatal("Health.Err nil after worker panic")
	}
	for i, sh := range h.Shards {
		if i == panicShard {
			if sh.State != ShardQuarantined {
				t.Fatalf("shard %d state %v, want quarantined", i, sh.State)
			}
			if sh.Dropped == 0 {
				t.Fatalf("shard %d reports no quarantine drops", i)
			}
		} else if sh.State == ShardQuarantined {
			t.Fatalf("healthy shard %d reads quarantined — containment leaked", i)
		}
	}
	var spe *ShardPanicError
	if err := s.Err(); !errors.As(err, &spe) || spe.Shard != panicShard {
		t.Fatalf("Err = %v, want ShardPanicError for shard %d", err, panicShard)
	}
	if len(spe.Stack) == 0 {
		t.Fatal("panic cause carries no stack")
	}

	begin := time.Now()
	res, err := s.Close()
	if closeTook := time.Since(begin); closeTook > 3*time.Second {
		t.Fatalf("Close took %v with a quarantined shard (deadline-bounded drain broken)", closeTook)
	}
	if !errors.As(err, &spe) {
		t.Fatalf("Close error = %v, want the recorded ShardPanicError", err)
	}
	for i, st := range res.PerShard {
		if i == panicShard {
			continue
		}
		if st.Digests == 0 {
			t.Fatalf("healthy shard %d emitted no digests after the panic", i)
		}
	}
	// Feed after the fault fails with the cause wrapped into the closed
	// error: callers match either the sentinel or the panic.
	if _, err := s.Feed(pkts[:1]); !errors.Is(err, ErrSessionClosed) || !errors.As(err, &spe) {
		t.Fatalf("Feed after faulted close = %v, want ErrSessionClosed wrapping ShardPanicError", err)
	}
	if err := s.FeedAll(pkts[:1]); !errors.As(err, &spe) {
		t.Fatalf("FeedAll after faulted close = %v, want wrapped ShardPanicError", err)
	}

	// Quarantine is per session: the engine restarts the shard's worker over
	// the replica as the panic left it, like a crashed-and-restarted pipe.
	s2, err := e.Start(context.Background())
	if err != nil {
		t.Fatalf("Start after quarantined session: %v", err)
	}
	if h := s2.Health(); h.Shards[panicShard].State != ShardRunning {
		t.Fatalf("restarted shard %d state %v, want running", panicShard, h.Shards[panicShard].State)
	}
	if _, err := s2.Close(); err != nil {
		t.Fatalf("clean session after quarantine: %v", err)
	}
}

// TestShutdownDeadline sticks a worker mid-burst and pins the bounded
// teardown: Close returns within the configured ShutdownTimeout with
// ErrShutdownTimeout, and the engine is poisoned (the stuck worker still
// owns its replica, so no further session may start).
func TestShutdownDeadline(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2, Burst: 16, Queue: 4,
		ShutdownTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	unstick := make(chan struct{})
	t.Cleanup(func() { close(unstick) }) // let the stuck goroutine die after the test
	s, err := e.Start(context.Background(), WithTestHooks(&TestHooks{
		BeforePacket: func(shard int, _ *pkt.Packet) {
			if shard == 0 {
				<-unstick
			}
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Feed only as much as the stuck shard can absorb (its input ring plus
	// the feeder's staging pool). Backpressure is deliberately unbounded —
	// FeedAll against a permanently wedged worker spins forever — so the
	// bounded thing under test here is shutdown, not feeding.
	pkts := trace.Interleave(trace.Generate(trace.D3, 20, eqSeed), eqSpacing)[:40]
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	_, err = s.Close()
	elapsed := time.Since(begin)
	if !errors.Is(err, ErrShutdownTimeout) {
		t.Fatalf("Close = %v after %v, want ErrShutdownTimeout", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Close took %v, deadline was 150ms", elapsed)
	}
	if !errors.Is(s.Err(), ErrShutdownTimeout) {
		t.Fatalf("Err = %v, want ErrShutdownTimeout", s.Err())
	}
	if _, err := e.Start(context.Background()); !errors.Is(err, ErrSessionActive) {
		t.Fatalf("Start on poisoned engine = %v, want ErrSessionActive", err)
	}
	if _, err := s.Feed(pkts[:1]); !errors.Is(err, ErrShutdownTimeout) {
		t.Fatalf("Feed after timed-out close = %v, want wrapped ErrShutdownTimeout", err)
	}
}

// TestRedeployStateCarry pins the hitless-swap contract. Same tree swapped
// mid-run: the digest multiset (deploy-epoch stamps normalised) must equal
// the single-deploy baseline's — flow state carried across the epoch
// handoff bit-for-bit, zero flows dropped — and digests split across both
// epochs. A different tree swapped mid-run: orphaned subtree states restart
// at the root and the session still accounts for every packet.
func TestRedeployStateCarry(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	half := len(pkts) / 2

	base, err := mustEngine(t, cfg, 4).Run(&SliceSource{Pkts: pkts})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("same-tree", func(t *testing.T) {
		s, err := mustEngine(t, cfg, 4).Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FeedAll(pkts[:half]); err != nil {
			t.Fatal(err)
		}
		settleSession(t, s)
		epoch, err := s.Redeploy(cfg.Model, cfg.Compiled)
		if err != nil {
			t.Fatalf("Redeploy: %v", err)
		}
		if epoch == 0 {
			t.Fatal("Redeploy returned epoch 0 (reserved for the construction deployment)")
		}
		if err := s.FeedAll(pkts[half:]); err != nil {
			t.Fatal(err)
		}
		res, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		if res.Dropped != 0 {
			t.Fatalf("%d packets dropped across a same-tree redeploy", res.Dropped)
		}
		if snap := s.Snapshot(); snap.QuarantineDropped != 0 || snap.DiscardedStaged != 0 {
			t.Fatalf("redeploy lost packets: %+v", snap)
		}
		mustMatchMultiset(t, "same-tree redeploy", normalizeEpochs(res.Digests), normalizeEpochs(base.Digests))
		var pre, post int
		for _, d := range res.Digests {
			if d.Epoch == epoch {
				post++
			} else {
				pre++
			}
		}
		if pre == 0 || post == 0 {
			t.Fatalf("digest epochs not split across the swap: %d pre, %d post", pre, post)
		}
		if h := s.Health(); h.Shards[0].Epoch != epoch {
			t.Fatalf("Health reports epoch %d, want %d", h.Shards[0].Epoch, epoch)
		}
	})

	t.Run("different-tree", func(t *testing.T) {
		// An independently trained tree of the same architecture: live
		// entries whose subtree IDs it does not define must restart at the
		// root instead of indexing a stale table.
		flows2 := trace.Generate(trace.D3, 400, 99)
		train2, _ := trace.Split(trace.BuildSamples(flows2, 3), 0.7)
		m2, err := core.Train(train2, core.Config{
			Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13,
		})
		if err != nil {
			t.Fatalf("retrain: %v", err)
		}
		c2, err := rangemark.Compile(m2)
		if err != nil {
			t.Fatalf("recompile: %v", err)
		}
		s, err := mustEngine(t, cfg, 4).Start(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FeedAll(pkts[:half]); err != nil {
			t.Fatal(err)
		}
		epoch, err := s.Redeploy(m2, c2)
		if err != nil {
			t.Fatalf("Redeploy(different tree): %v", err)
		}
		if err := s.FeedAll(pkts[half:]); err != nil {
			t.Fatal(err)
		}
		res, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		if res.Dropped != 0 {
			t.Fatalf("%d packets dropped across a different-tree redeploy", res.Dropped)
		}
		if int64(res.Stats.Packets) != s.Snapshot().Fed {
			t.Fatalf("processed %d of %d fed packets", res.Stats.Packets, s.Snapshot().Fed)
		}
		if res.Stats.Digests == 0 {
			t.Fatal("no digests after a different-tree redeploy")
		}
		for _, sh := range s.Health().Shards {
			if sh.Epoch != epoch {
				t.Fatalf("shard still on epoch %d, want %d", sh.Epoch, epoch)
			}
		}
	})
}

// TestRedeployValidates: a redeploy that fails the deployed geometry's
// feasibility check is rejected atomically — no shard adopts anything.
func TestRedeployValidates(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	s, err := mustEngine(t, cfg, 2).Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Redeploy(nil, nil); err == nil {
		t.Fatal("Redeploy(nil, nil) accepted")
	}
	for i, sh := range s.Health().Shards {
		if sh.Epoch != 0 {
			t.Fatalf("shard %d adopted epoch %d from a rejected redeploy", i, sh.Epoch)
		}
	}
}
