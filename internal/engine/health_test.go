package engine

// Combined fault + redeploy health sequences, and the flight-recorder
// postmortem contract: every quarantine ships the shard's last recorded
// events inside its ShardPanicError, and Session.Health stays coherent
// when faults and epoch handoffs overlap.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"splidt/internal/pkt"
	"splidt/internal/telemetry/flight"
	"splidt/internal/trace"
)

// panicOnShard returns hooks that panic the given shard on its nth packet.
func panicOnShard(shard int, nth int64) (*TestHooks, *atomic.Int64) {
	var hits atomic.Int64
	return &TestHooks{BeforePacket: func(sh int, _ *pkt.Packet) {
		if sh == shard && hits.Add(1) == nth {
			panic("injected health-test fault")
		}
	}}, &hits
}

// TestQuarantinePostmortem pins the flight-recorder postmortem: a worker
// panic produces a ShardPanicError whose Postmortem carries the shard's
// last events — non-empty, strictly seq-ordered, containing the burst
// activity that preceded the fault, and terminated by the quarantine event
// itself. Engine.FlightLog serves the same ring live.
func TestQuarantinePostmortem(t *testing.T) {
	const panicShard = 1
	cfg := deployCfg(t, eqSlots)
	e := mustEngine(t, cfg, 2)
	hooks, _ := panicOnShard(panicShard, 25)
	s, err := e.Start(context.Background(), WithTestHooks(hooks))
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	settleSession(t, s)

	var pe *ShardPanicError
	if !errors.As(s.Err(), &pe) {
		t.Fatalf("Err() = %v, want ShardPanicError", s.Err())
	}
	if pe.Shard != panicShard {
		t.Fatalf("fault on shard %d, want %d", pe.Shard, panicShard)
	}
	if len(pe.Postmortem) == 0 {
		t.Fatal("ShardPanicError.Postmortem is empty")
	}
	last := pe.Postmortem[len(pe.Postmortem)-1]
	if last.Kind != flight.KindQuarantine {
		t.Fatalf("postmortem ends with %v, want quarantine", last.Kind)
	}
	sawBurst := false
	for i, ev := range pe.Postmortem {
		if i > 0 && ev.Seq <= pe.Postmortem[i-1].Seq {
			t.Fatalf("postmortem seqs not increasing: %d after %d", ev.Seq, pe.Postmortem[i-1].Seq)
		}
		if ev.Kind == flight.KindBurstStart {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Error("postmortem carries no burst-start events before the fault")
	}

	// The live view serves the same ring; out-of-range shards return nil.
	if evs := e.FlightLog(panicShard); len(evs) == 0 {
		t.Error("FlightLog empty for the quarantined shard")
	}
	if evs := e.FlightLog(99); evs != nil {
		t.Errorf("FlightLog(99) = %d events, want nil", len(evs))
	}
	if _, err := s.Close(); err == nil {
		t.Fatal("Close after quarantine returned nil error")
	}
}

// TestRecorderDisabled: FlightRecorder < 0 compiles the recorder out —
// postmortems are empty, FlightLog returns nil, and the quarantine path
// still works.
func TestRecorderDisabled(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 2, Burst: 16, Queue: 4, FlightRecorder: -1})
	if err != nil {
		t.Fatal(err)
	}
	hooks, _ := panicOnShard(0, 10)
	s, err := e.Start(context.Background(), WithTestHooks(hooks))
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	if err := s.FeedAll(pkts); err != nil {
		t.Fatal(err)
	}
	settleSession(t, s)
	var pe *ShardPanicError
	if !errors.As(s.Err(), &pe) {
		t.Fatalf("Err() = %v, want ShardPanicError", s.Err())
	}
	if len(pe.Postmortem) != 0 {
		t.Errorf("disabled recorder produced a %d-event postmortem", len(pe.Postmortem))
	}
	if evs := e.FlightLog(0); evs != nil {
		t.Errorf("FlightLog = %d events with recorder disabled", len(evs))
	}
	s.Close()
}

// TestQuarantineThenRedeploy: a shard quarantines, then the session
// redeploys. The adoption wait must not be held hostage by the dead shard:
// Redeploy completes via the live shards, which adopt the new epoch, while
// the quarantined shard stays frozen on its old epoch — and Health reports
// the split view.
func TestQuarantineThenRedeploy(t *testing.T) {
	const panicShard = 0
	cfg := deployCfg(t, eqSlots)
	e := mustEngine(t, cfg, 2)
	hooks, _ := panicOnShard(panicShard, 10)
	s, err := e.Start(context.Background(), WithTestHooks(hooks))
	if err != nil {
		t.Fatal(err)
	}
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	half := len(pkts) / 2
	if err := s.FeedAll(pkts[:half]); err != nil {
		t.Fatal(err)
	}
	settleSession(t, s)
	if st := HealthState(e.shards[panicShard].health.Load()); st != ShardQuarantined {
		t.Fatalf("shard %d state %v before redeploy, want quarantined", panicShard, st)
	}

	epoch, err := s.Redeploy(cfg.Model, cfg.Compiled)
	if err != nil {
		t.Fatalf("Redeploy with a quarantined shard: %v", err)
	}
	if err := s.FeedAll(pkts[half:]); err != nil {
		t.Fatal(err)
	}
	settleSession(t, s)

	h := s.Health()
	var pe *ShardPanicError
	if !errors.As(h.Err, &pe) || pe.Shard != panicShard {
		t.Fatalf("Health.Err = %v, want ShardPanicError on shard %d", h.Err, panicShard)
	}
	if got := h.Shards[panicShard]; got.State != ShardQuarantined || got.Epoch != 0 {
		t.Fatalf("quarantined shard health = %+v, want frozen on epoch 0", got)
	}
	if got := h.Shards[1]; got.State != ShardRunning || got.Epoch != epoch {
		t.Fatalf("live shard health = %+v, want running on epoch %d", got, epoch)
	}
	if h.Shards[panicShard].Dropped == 0 {
		t.Error("quarantined shard reports no drops despite traffic after the fault")
	}
	s.Close()
}

// TestQuarantineDuringAdoption: the quarantine lands while a Redeploy's
// adoption wait is in flight. The held shard wakes with the new deployment
// pending, adopts it at the burst boundary, then panics processing the
// burst — Redeploy must still return success (every shard adopted), and
// Health shows the shard quarantined on the new epoch.
func TestQuarantineDuringAdoption(t *testing.T) {
	const heldShard = 0
	cfg := deployCfg(t, eqSlots)
	e := mustEngine(t, cfg, 2)
	hold := make(chan struct{})
	e.shards[heldShard].hold = hold

	var armed atomic.Bool
	hooks := &TestHooks{BeforePacket: func(sh int, _ *pkt.Packet) {
		if sh == heldShard && armed.Load() {
			panic("injected mid-adoption fault")
		}
	}}
	s, err := e.Start(context.Background(), WithTestHooks(hooks))
	if err != nil {
		t.Fatal(err)
	}
	// Feed from a goroutine: the held shard's queue fills and FeedAll
	// yields through backpressure until the hold dance below lets the
	// shard drain (quarantined shards drain their backlog to drops, so
	// the feed completes either way).
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	feedDone := make(chan error, 1)
	go func() { feedDone <- s.FeedAll(pkts) }()

	type redeployResult struct {
		epoch uint64
		err   error
	}
	done := make(chan redeployResult, 1)
	go func() {
		ep, rerr := s.Redeploy(cfg.Model, cfg.Compiled)
		done <- redeployResult{ep, rerr}
	}()
	// Wait until the deployment reached the held shard: either it is
	// pending (the worker is parked at the hold gate with a burst in hand)
	// or the worker adopted it from the idle path, which does not pass the
	// gate. Both orderings end with the panic firing on the new epoch.
	deadline := time.Now().Add(5 * time.Second)
	for e.shards[heldShard].pendingDep.Load() == nil && e.shards[heldShard].epoch.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("redeploy never published to the held shard")
		}
		time.Sleep(time.Millisecond)
	}
	armed.Store(true)
	hold <- struct{}{} // release one burst: adopt, then panic

	res := <-done
	if res.err != nil {
		t.Fatalf("Redeploy: %v", res.err)
	}
	// The feed may surface the fault (Feed errors wrap the panic once the
	// session records it); either way it must return before settling.
	<-feedDone
	settleSession(t, s)
	h := s.Health()
	if got := h.Shards[heldShard]; got.State != ShardQuarantined || got.Epoch != res.epoch {
		t.Fatalf("held shard health = %+v, want quarantined on epoch %d", got, res.epoch)
	}
	var pe *ShardPanicError
	if !errors.As(h.Err, &pe) {
		t.Fatalf("Health.Err = %v, want ShardPanicError", h.Err)
	}
	// The postmortem must show the adoption immediately preceding the
	// quarantine — the whole point of shipping the shard's last moments.
	sawAdopt := false
	for _, ev := range pe.Postmortem {
		if ev.Kind == flight.KindAdopt && ev.A == int64(res.epoch) {
			sawAdopt = true
		}
	}
	if !sawAdopt {
		t.Error("postmortem does not show the epoch adoption before the fault")
	}
	s.Close()
}

// TestWatchdogStallDuringRedeploy: one shard stalls with backlog (watchdog
// flags it degraded, and records the flag in its flight log) while a
// redeploy waits on it; releasing the stall lets the shard adopt, the
// redeploy complete, and the watchdog flip the shard back to running.
func TestWatchdogStallDuringRedeploy(t *testing.T) {
	const heldShard = 0
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{
		Deploy: cfg, Shards: 2, Burst: 16, Queue: 4,
		WatchdogInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	e.shards[heldShard].hold = hold
	s, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Feed from a goroutine: the held shard's queue fills and FeedAll
	// yields through backpressure until close(hold) un-stalls the worker.
	pkts := trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing)
	feedDone := make(chan error, 1)
	go func() { feedDone <- s.FeedAll(pkts) }()

	// The held shard has queued bursts and makes no progress: the watchdog
	// must flag it degraded within a few intervals.
	deadline := time.Now().Add(5 * time.Second)
	for s.Health().Shards[heldShard].State != ShardDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never flagged the stalled shard: %+v", s.Health().Shards)
		}
		time.Sleep(time.Millisecond)
	}
	flagged := false
	for _, ev := range e.FlightLog(heldShard) {
		if ev.Kind == flight.KindWatchdog && ev.A == 1 {
			flagged = true
		}
	}
	if !flagged {
		t.Error("no watchdog-degraded event in the stalled shard's flight log")
	}

	done := make(chan error, 1)
	go func() {
		_, rerr := s.Redeploy(cfg.Model, cfg.Compiled)
		done <- rerr
	}()
	select {
	case rerr := <-done:
		t.Fatalf("Redeploy returned (%v) while a live shard was stalled pre-adoption", rerr)
	case <-time.After(50 * time.Millisecond):
		// Still waiting on the degraded-but-live shard — as it must.
	}

	close(hold) // un-stall: every future hold check falls through
	if rerr := <-done; rerr != nil {
		t.Fatalf("Redeploy after release: %v", rerr)
	}
	if ferr := <-feedDone; ferr != nil {
		t.Fatalf("FeedAll: %v", ferr)
	}
	settleSession(t, s)
	deadline = time.Now().Add(5 * time.Second)
	for s.Health().Shards[heldShard].State != ShardRunning {
		if time.Now().After(deadline) {
			t.Fatalf("stalled shard never recovered: %+v", s.Health().Shards)
		}
		time.Sleep(time.Millisecond)
	}
	if res, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	} else if res.Stats.Packets == 0 {
		t.Fatal("no packets processed")
	}
}
