package engine

import (
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// deployCfg trains and compiles a small model and returns the deployment
// template every test engine replicates.
func deployCfg(t testing.TB, slots int) dataplane.Config {
	t.Helper()
	flows := trace.Generate(trace.D3, 400, 33)
	samples := trace.BuildSamples(flows, 3)
	train, _ := trace.Split(samples, 0.7)
	m, err := core.Train(train, core.Config{
		Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return dataplane.Config{
		Profile: resources.Tofino1(), Model: m, Compiled: c, FlowSlots: slots,
	}
}

const (
	eqFlows   = 150
	eqSeed    = 7
	eqSpacing = time.Millisecond
	eqSlots   = 1 << 18
)

// digestCounts builds the multiset of a digest stream.
func digestCounts(ds []dataplane.Digest) map[dataplane.Digest]int {
	m := make(map[dataplane.Digest]int, len(ds))
	for _, d := range ds {
		m[d]++
	}
	return m
}

func runEngine(t *testing.T, cfg dataplane.Config, shards int) *Result {
	t.Helper()
	e, err := New(Config{Deploy: cfg, Shards: shards, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatalf("New(%d shards): %v", shards, err)
	}
	res, err := e.Run(trace.NewStream(trace.D3, eqFlows, eqSeed, eqSpacing))
	if err != nil {
		t.Fatalf("Run(%d shards): %v", shards, err)
	}
	return res
}

// TestEngineMatchesSinglePipeline is the subsystem's headline correctness
// property: on one workload, a 1-shard engine, an 8-shard engine, and the
// plain single-threaded pipeline must produce identical digest multisets
// and identical merged counters. Run with -race, this also exercises the
// SPSC rings and the shared frozen tables under the race detector.
func TestEngineMatchesSinglePipeline(t *testing.T) {
	cfg := deployCfg(t, eqSlots)

	// Baseline: one pipeline over the interleaved packet sequence.
	pl, err := dataplane.New(cfg)
	if err != nil {
		t.Fatalf("dataplane.New: %v", err)
	}
	var base []dataplane.Digest
	for _, p := range trace.Interleave(trace.Generate(trace.D3, eqFlows, eqSeed), eqSpacing) {
		if d := pl.Process(p); d != nil {
			base = append(base, *d)
		}
	}
	baseStats := pl.Stats()
	if baseStats.Collisions != 0 {
		t.Fatalf("baseline has %d collisions; equivalence needs a collision-free workload (grow eqSlots)", baseStats.Collisions)
	}

	res1 := runEngine(t, cfg, 1)
	res8 := runEngine(t, cfg, 8)

	for _, tc := range []struct {
		name string
		res  *Result
	}{{"1-shard", res1}, {"8-shard", res8}} {
		if tc.res.Stats.Collisions != 0 {
			t.Fatalf("%s: %d collisions; equivalence needs a collision-free workload", tc.name, tc.res.Stats.Collisions)
		}
		if tc.res.Stats != baseStats {
			t.Errorf("%s merged stats = %+v, want %+v", tc.name, tc.res.Stats, baseStats)
		}
		want := digestCounts(base)
		got := digestCounts(tc.res.Digests)
		if len(got) != len(want) || len(tc.res.Digests) != len(base) {
			t.Fatalf("%s: %d digests (%d distinct), want %d (%d distinct)",
				tc.name, len(tc.res.Digests), len(got), len(base), len(want))
		}
		for d, n := range want {
			if got[d] != n {
				t.Fatalf("%s: digest %+v count %d, want %d", tc.name, d, got[d], n)
			}
		}
	}

	// The per-shard split must sum to the merged totals.
	if merged := dataplane.MergeStats(res8.PerShard...); merged != res8.Stats {
		t.Errorf("per-shard stats sum %+v != merged %+v", merged, res8.Stats)
	}
	if len(base) != eqFlows {
		t.Errorf("digested %d flows, want %d", len(base), eqFlows)
	}
}

// TestEngineDeterministic: two independent 8-shard runs over equal streams
// yield byte-identical ordered digest streams, regardless of scheduling.
func TestEngineDeterministic(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	a := runEngine(t, cfg, 8)
	b := runEngine(t, cfg, 8)
	if len(a.Digests) != len(b.Digests) {
		t.Fatalf("runs disagree: %d vs %d digests", len(a.Digests), len(b.Digests))
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			t.Fatalf("ordered stream diverges at %d: %+v vs %+v", i, a.Digests[i], b.Digests[i])
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats disagree: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestEngineReuse: a second Run on the same engine reports that run's
// deltas, not cumulative counters.
func TestEngineReuse(t *testing.T) {
	cfg := deployCfg(t, eqSlots)
	e, err := New(Config{Deploy: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Run(trace.NewStream(trace.D3, 40, 5, eqSpacing))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(trace.NewStream(trace.D3, 40, 5, eqSpacing))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Packets == 0 || r2.Stats.Packets != r1.Stats.Packets {
		t.Fatalf("second run packets %d, want %d (per-run deltas)", r2.Stats.Packets, r1.Stats.Packets)
	}
	if r2.Throughput.Packets != r2.Stats.Packets {
		t.Fatalf("throughput packets %d != stats packets %d", r2.Throughput.Packets, r2.Stats.Packets)
	}
}

// TestEngineDefaultsAndErrors covers config defaulting and failure paths.
func TestEngineDefaultsAndErrors(t *testing.T) {
	cfg := deployCfg(t, 1<<12)
	e, err := New(Config{Deploy: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() < 1 {
		t.Fatalf("defaulted shard count %d", e.Shards())
	}
	if _, err := e.Run(nil); err == nil {
		t.Fatal("Run(nil) did not error")
	}
	bad := cfg
	bad.Model = nil
	if _, err := New(Config{Deploy: bad, Shards: 2}); err == nil {
		t.Fatal("New with nil model did not error")
	}
	if _, err := New(Config{Deploy: cfg, Shards: -1}); err != nil {
		t.Fatalf("negative shards should default, got error: %v", err)
	}
}

// TestSliceSource checks the adapter drains exactly once.
func TestSliceSource(t *testing.T) {
	pkts := trace.Interleave(trace.Generate(trace.D2, 3, 1), 0)
	src := &SliceSource{Pkts: pkts}
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != len(pkts) {
		t.Fatalf("drained %d packets, want %d", n, len(pkts))
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded a packet")
	}
}

// TestShiftSource checks the wave-replay wrapper: timestamps shift by the
// offset, everything else passes through, and Max tracks the shifted end.
func TestShiftSource(t *testing.T) {
	pkts := trace.Interleave(trace.Generate(trace.D2, 3, 1), time.Millisecond)
	const off = 10 * time.Second
	src := &ShiftSource{Src: &SliceSource{Pkts: pkts}, Offset: off}
	n := 0
	var max time.Duration
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		if want := pkts[n].TS + off; p.TS != want {
			t.Fatalf("packet %d TS = %v, want %v", n, p.TS, want)
		}
		p.TS = pkts[n].TS
		if p != pkts[n] {
			t.Fatalf("packet %d mutated beyond TS", n)
		}
		if p.TS+off > max {
			max = p.TS + off
		}
		n++
	}
	if n != len(pkts) {
		t.Fatalf("yielded %d packets, want %d", n, len(pkts))
	}
	if src.Max() != max {
		t.Fatalf("Max = %v, want %v", src.Max(), max)
	}
}
