package engine

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"splidt/internal/pkt"
)

// ErrFeederClosed reports a Feed on a Feeder after its Close (Session.Feed
// translates it to ErrSessionClosed for the default feeder, whose lifetime
// is the session's).
var ErrFeederClosed = errors.New("engine: feeder closed")

// Feeder is one producer's private handle into a session's dispatch stage.
// Where Session.Feed serialises every caller on one lock, each Feeder owns
// its own per-shard staging bursts and its own per-shard free rings, so M
// feeders dispatch into the shard workers' MPSC input rings with no shared
// lock anywhere on the hot path — the per-producer staging of a DPDK-style
// forwarder's input threads.
//
// A Feeder is meant to be driven by a single goroutine: its methods
// serialise on a private mutex, uncontended in that use, so the lock's job
// is to make Feeder-close and Session.Close interleavings safe. (The one
// deliberate exception is the session's default feeder, whose lock is what
// serialises concurrent Session.Feed callers — that contention is the
// pre-feeder contract, not a fast path.) Packet-disjointness is the caller's
// contract: per-flow packet order is preserved only when all packets of a
// flow go through the same Feeder (trace.Partition splits a workload that
// way); flows split across feeders may reorder, and the digest multiset
// guarantee then degrades the same way any cross-producer reordering would.
//
// Close flushes the feeder's staged bursts to the workers and retires the
// handle. Session.Close force-closes any feeder still open, so abandoning a
// Feeder leaks nothing.
type Feeder struct {
	s *Session

	mu     sync.Mutex // private to this feeder; see the concurrency note above
	closed bool       // under mu: no further Feeds accepted

	cur  []*burst    // per-shard staged partial burst
	free []*spscRing // per-shard private free ring (worker → this feeder)

	// rot rotates the starting shard of each staged-burst flush so one
	// shard with a persistently full ring cannot starve the others' staged
	// bursts behind a fixed retry order.
	rot int
}

// NewFeeder returns a new producer handle with its own burst pool: Queue+2
// bursts per shard (enough to fill a shard's input ring single-handedly,
// plus one in flight at the worker and one staging), recycled through the
// feeder's private SPSC free rings. Construction is the only allocation a
// feeder ever performs; the Feed hot path is allocation-free. It fails
// after the session has closed.
func (s *Session) NewFeeder() (*Feeder, error) {
	return s.newFeeder(nil)
}

// newFeeder registers a feeder over the given burst pool, building a fresh
// one when free is nil. The seal check runs before the pool is built, so a
// NewFeeder racing Session.Close never allocates for nothing; holding
// feederMu across construction keeps check-and-register atomic (shutdown
// contends on it only once, at seal time).
func (s *Session) newFeeder(free []*spscRing) (*Feeder, error) {
	s.feederMu.Lock()
	defer s.feederMu.Unlock()
	if s.feedersSealed {
		return nil, ErrSessionClosed
	}
	if free == nil {
		free = newBurstPool(len(s.e.shards), s.e.cfg)
	}
	f := &Feeder{
		s:    s,
		cur:  make([]*burst, len(s.e.shards)),
		free: free,
	}
	s.feeders[f] = struct{}{}
	return f, nil
}

// newBurstPool builds one free ring per shard, each pre-filled with
// Queue+2 bursts that recycle home to it.
func newBurstPool(nShards int, cfg Config) []*spscRing {
	free := make([]*spscRing, nShards)
	pool := cfg.Queue + 2
	for i := range free {
		r := newRing(pool)
		for j := 0; j < pool; j++ {
			r.push(&burst{pkts: make([]pkt.Packet, 0, cfg.Burst), home: r})
		}
		free[i] = r
	}
	return free
}

// Feed dispatches packets to the shard workers through this feeder's
// private staging and returns how many it accepted — the same non-blocking
// contract as Session.Feed (stop at the first unplaceable packet, return
// the count with ErrBackpressure, caller retries with pkts[n:]). Packets of
// blocked flows count as accepted but are dropped before dispatch. The
// caller keeps ownership of the slice.
func (f *Feeder) Feed(pkts []pkt.Packet) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrFeederClosed
	}
	s := f.s
	n := len(s.e.shards)
	burstCap := s.e.cfg.Burst
	for i := range pkts {
		p := &pkts[i]
		if s.filter.blocked(p.Key) {
			s.dropped.Add(1)
			s.fed.Add(1)
			continue
		}
		si := p.Shard(n)
		cur := f.cur[si]
		if cur != nil && len(cur.pkts) == burstCap {
			if s.latHists != nil {
				cur.fedAt = time.Now()
			}
			if !f.tryPush(si, cur) {
				s.backpressure.Add(1)
				f.flushStaged()
				return i, ErrBackpressure
			}
			f.cur[si] = nil
			cur = nil
		}
		if cur == nil {
			b, ok := f.free[si].tryPop()
			if !ok {
				s.backpressure.Add(1)
				f.flushStaged()
				return i, ErrBackpressure
			}
			f.cur[si] = b
			cur = b
		}
		cur.pkts = append(cur.pkts, *p)
		s.fed.Add(1)
	}
	f.flushStaged()
	return len(pkts), nil
}

// flushStaged hands partial bursts to the workers, best-effort, so a
// pausing (or shedding) producer does not strand already-accepted packets
// until its next Feed. Runs on every Feed exit — backpressure returns
// included — with the feeder locked; a full ring just leaves that burst
// staged for the next call or Close. The walk starts at a rotating shard:
// with a fixed order, a shard whose ring stays full would be retried first
// on every flush while later shards' staged bursts wait behind it.
func (f *Feeder) flushStaged() {
	n := len(f.cur)
	start := f.rot
	f.rot++
	if f.rot >= n {
		f.rot = 0
	}
	var now time.Time // one clock read per flush, only when latency is on
	if f.s.latHists != nil {
		now = time.Now()
	}
	for k := 0; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		if b := f.cur[i]; b != nil && len(b.pkts) > 0 {
			b.fedAt = now
			if f.tryPush(i, b) {
				f.cur[i] = nil
			}
		}
	}
}

// tryPush is the feeder's one push point into a shard's input ring, with
// the session's fault-injection refuse hook applied first (nil in
// production — one predictable branch).
func (f *Feeder) tryPush(si int, b *burst) bool {
	if h := f.s.hooks; h != nil && h.PushRefuse != nil && h.PushRefuse(si) {
		return false
	}
	return f.s.e.shards[si].in.tryPush(b)
}

// pushDeadline delivers b to shard si's ring, giving up at the deadline: a
// worker stuck mid-burst would otherwise wedge the closing caller forever.
// On expiry the burst is abandoned — its packets are counted as discarded
// staged work and the burst leaves the pool (acceptable: the session is
// being declared wedged, and the pool dies with it). Injected overflow
// hooks are bypassed: shutdown flushes must not be refusable. Quarantined
// shards keep draining their rings, so only a truly stuck worker ever
// expires this.
func (f *Feeder) pushDeadline(si int, b *burst, deadline time.Time) {
	in := f.s.e.shards[si].in
	for !in.tryPush(b) {
		if time.Now().After(deadline) {
			f.s.discarded.Add(int64(len(b.pkts)))
			return
		}
		runtime.Gosched()
	}
}

// FeedAll feeds the whole slice, yielding through backpressure until every
// packet is accepted and handed to the workers — unlike bare Feed it does
// not leave a trailing partial burst staged. Any error other than
// ErrBackpressure aborts the loop and is returned; a concurrent close takes
// over delivery of anything still staged, and FeedAll then returns nil for
// the already-accepted packets exactly as Session.FeedAll always has.
func (f *Feeder) FeedAll(pkts []pkt.Packet) error {
	off := 0
	for off < len(pkts) {
		n, err := f.Feed(pkts[off:])
		off += n
		switch err {
		case nil:
		case ErrBackpressure:
			runtime.Gosched()
		default:
			return err
		}
	}
	// Guaranteed trailing flush: Feed's end-of-call flush is best-effort,
	// so spin until no shard holds a staged non-empty burst.
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return nil
		}
		f.flushStaged()
		staged := false
		for _, b := range f.cur {
			if b != nil && len(b.pkts) > 0 {
				staged = true
				break
			}
		}
		f.mu.Unlock()
		if !staged {
			return nil
		}
		runtime.Gosched()
	}
}

// FeedSource drains a Source through the feeder in staged chunks, yielding
// through backpressure.
func (f *Feeder) FeedSource(src Source) error {
	chunk := make([]pkt.Packet, 0, runChunk)
	for {
		p, ok := src.Next()
		if ok {
			chunk = append(chunk, p)
		}
		if len(chunk) == cap(chunk) || (!ok && len(chunk) > 0) {
			if err := f.FeedAll(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
		if !ok {
			return nil
		}
	}
}

// Close flushes the feeder's staged bursts to the workers and retires the
// handle: subsequent Feeds fail with ErrFeederClosed. The flush may wait on
// busy workers but cannot wedge: the session's shutdown acquires this
// feeder's lock before it stops the workers, so they are live for as long
// as Close needs them, and even a quarantined shard keeps draining its
// ring — only a worker stuck mid-burst leaves a ring full, and that wait
// is bounded by the engine's ShutdownTimeout (abandoned packets are
// counted in Snapshot.DiscardedStaged). Close is idempotent and safe
// concurrently with Session.Close (whichever wins flushes; the other
// no-ops).
func (f *Feeder) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	deadline := time.Now().Add(f.s.e.cfg.ShutdownTimeout)
	for i, b := range f.cur {
		if b != nil {
			if f.s.latHists != nil {
				b.fedAt = time.Now()
			}
			f.pushDeadline(i, b, deadline)
			f.cur[i] = nil
		}
	}
	f.mu.Unlock()
	f.s.feederMu.Lock()
	delete(f.s.feeders, f)
	f.s.feederMu.Unlock()
}

// closeForShutdown is Session shutdown's arm of Close: it seals the feeder
// and either flushes (graceful Close) or discards (context abort) whatever
// is staged, bounded by the shutdown deadline. Caller must not hold the
// feeder's lock. The burst still travels through the in ring even when
// discarded: the shard worker is the home ring's only producer, and it
// recycles this burst like any other (a zero-length burst just recycles).
func (f *Feeder) closeForShutdown(flush bool, deadline time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for i, b := range f.cur {
		if b != nil {
			if !flush {
				b.pkts = b.pkts[:0]
			}
			if f.s.latHists != nil {
				b.fedAt = time.Now()
			}
			f.pushDeadline(i, b, deadline)
			f.cur[i] = nil
		}
	}
}
