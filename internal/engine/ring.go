package engine

import (
	"runtime"
	"sync/atomic"

	"splidt/internal/pkt"
)

// burst is a fixed-capacity packet batch — the unit that moves between the
// dispatcher and a shard worker. Bursts are allocated once per shard at
// engine construction and recycled through the shard's free ring, so the
// steady-state hot path performs no allocation.
type burst struct {
	pkts []pkt.Packet // len == n valid packets, cap == engine burst size
}

// spscRing is a bounded single-producer single-consumer ring of bursts.
// head is owned by the consumer and tail by the producer; each side only
// ever stores its own index, so plain atomic loads/stores give a correct
// lock-free queue (the standard DPDK/ndn-dpdk rte_ring SP/SC shape).
// Capacity is a power of two so index reduction is a mask.
type spscRing struct {
	buf  []*burst
	mask uint64

	// head and tail sit on separate cache lines so the producer and
	// consumer cores do not false-share.
	_    [64]byte
	head atomic.Uint64 // next index to pop (consumer-owned)
	_    [64]byte
	tail atomic.Uint64 // next index to push (producer-owned)
	_    [64]byte
}

// newRing builds a ring with capacity rounded up to a power of two (≥ 2).
func newRing(capacity int) *spscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]*burst, n), mask: uint64(n - 1)}
}

// tryPush enqueues b, reporting false when the ring is full.
func (r *spscRing) tryPush(b *burst) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = b
	r.tail.Store(tail + 1)
	return true
}

// tryPop dequeues the oldest burst, reporting false when the ring is empty.
func (r *spscRing) tryPop() (*burst, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil, false
	}
	b := r.buf[head&r.mask]
	r.buf[head&r.mask] = nil
	r.head.Store(head + 1)
	return b, true
}

// push spins until b fits. Backpressure: a full ring means the worker is
// behind, so the producer yields its timeslice rather than busy-burning.
func (r *spscRing) push(b *burst) {
	for !r.tryPush(b) {
		runtime.Gosched()
	}
}
