package engine

//splidt:packettime — ring transfer sits on the per-packet path; bursts carry packet timestamps, never wall-clock reads

import (
	"runtime"
	"sync/atomic"
	"time"

	"splidt/internal/pkt"
)

// burst is a fixed-capacity packet batch — the unit that moves between a
// feeder and a shard worker. Bursts are allocated once per (feeder, shard)
// pair at feeder construction and recycled through that pair's private free
// ring (home), so the steady-state hot path performs no allocation.
type burst struct {
	pkts []pkt.Packet // len == n valid packets, cap == engine burst size
	// fedAt is the wall-clock instant the feeder handed this burst to a
	// shard ring — the start of the digest-latency clock. Stamped only for
	// sessions started WithDigestLatency; stale otherwise (bursts recycle),
	// which is fine because the worker reads it only when latency is on.
	fedAt time.Time
	// home is the free ring this burst recycles through: the SPSC ring of
	// the (feeder, shard) pair that owns it. The shard's worker is its only
	// producer and the owning feeder its only consumer.
	home *spscRing
}

// spscRing is a bounded single-producer single-consumer ring of bursts.
// head is owned by the consumer and tail by the producer; each side only
// ever stores its own index, so plain atomic loads/stores give a correct
// lock-free queue (the standard DPDK/ndn-dpdk rte_ring SP/SC shape).
// Capacity is a power of two so index reduction is a mask.
type spscRing struct {
	buf  []*burst
	mask uint64

	// head and tail sit on separate cache lines so the producer and
	// consumer cores do not false-share.
	_    [64]byte
	head atomic.Uint64 // next index to pop (consumer-owned)
	_    [64]byte
	tail atomic.Uint64 // next index to push (producer-owned)
	_    [64]byte
}

// newRing builds a ring with capacity rounded up to a power of two (≥ 2).
func newRing(capacity int) *spscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]*burst, n), mask: uint64(n - 1)}
}

// tryPush enqueues b, reporting false when the ring is full.
//
//splidt:hotpath
func (r *spscRing) tryPush(b *burst) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = b
	r.tail.Store(tail + 1)
	return true
}

// tryPop dequeues the oldest burst, reporting false when the ring is empty.
//
//splidt:hotpath
func (r *spscRing) tryPop() (*burst, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil, false
	}
	b := r.buf[head&r.mask]
	r.buf[head&r.mask] = nil
	r.head.Store(head + 1)
	return b, true
}

// push spins until b fits. Backpressure: a full ring means the worker is
// behind, so the producer yields its timeslice rather than busy-burning.
func (r *spscRing) push(b *burst) {
	for !r.tryPush(b) {
		runtime.Gosched()
	}
}

// mpscSlot is one cell of an mpscRing: the burst plus the slot's sequence
// number, which encodes whose turn the cell is on (producer lap vs consumer
// lap) without any shared lock.
type mpscSlot struct {
	seq atomic.Uint64
	b   *burst
}

// mpscRing is a bounded multi-producer single-consumer ring of bursts — the
// shard input queue once multiple feeders dispatch concurrently. Producers
// reserve a slot by CAS on tail (the rte_ring MP reservation, cf.
// ndn-dpdk's input-thread → forwarder rings), then publish the burst by
// advancing the slot's sequence number; the consumer side is unchanged from
// the SPSC shape: it spins nowhere, owns head outright, and observes each
// slot's sequence to know when its burst is published. This is the classic
// Vyukov bounded-queue discipline restricted to one consumer.
//
// Per-producer FIFO holds: a producer's successive pushes reserve strictly
// increasing slot indices, and the consumer pops in slot order — so bursts
// from one feeder never reorder, which is what keeps per-flow packet order
// intact when each flow is confined to one feeder.
type mpscRing struct {
	slots []mpscSlot
	mask  uint64

	// tail is shared by all producers (CAS); head is consumer-private.
	// Separate cache lines so producers and the consumer do not false-share.
	_    [64]byte
	tail atomic.Uint64 // next slot index to reserve (producers, CAS)
	_    [64]byte
	head uint64 // next slot index to pop (consumer-owned, no atomics needed)
	// pops mirrors head for observers: the consumer publishes its pop count
	// here so the health watchdog can read backlog() without touching the
	// consumer-private head. One extra atomic store per pop, no contention.
	pops atomic.Uint64
	_    [64]byte
}

// newMPSCRing builds a ring with capacity rounded up to a power of two
// (≥ 2). Slot i starts at sequence i, meaning "free for the producer whose
// reservation lands on index i".
func newMPSCRing(capacity int) *mpscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &mpscRing{slots: make([]mpscSlot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush enqueues b, reporting false when the ring is full. Safe from any
// number of concurrent producers.
//
//splidt:hotpath
func (r *mpscRing) tryPush(b *burst) bool {
	for {
		tail := r.tail.Load()
		s := &r.slots[tail&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == tail:
			// Slot free this lap: reserve it. A CAS loss means another
			// producer took the index — retry at the new tail.
			if r.tail.CompareAndSwap(tail, tail+1) {
				s.b = b
				s.seq.Store(tail + 1) // publish: consumer may now take it
				return true
			}
		case seq < tail:
			// Slot still holds last lap's unconsumed burst: ring is full.
			return false
		default:
			// tail moved between the two loads; retry with a fresh view.
		}
	}
}

// tryPop dequeues the oldest published burst, reporting false when none is
// ready. Single consumer only. A slot whose producer has reserved but not
// yet published reads as not-ready, preserving slot order.
//
//splidt:hotpath
func (r *mpscRing) tryPop() (*burst, bool) {
	s := &r.slots[r.head&r.mask]
	if s.seq.Load() != r.head+1 {
		return nil, false
	}
	b := s.b
	s.b = nil
	// Release the slot for the producer one lap ahead.
	s.seq.Store(r.head + uint64(len(r.slots)))
	r.head++
	r.pops.Store(r.head)
	return b, true
}

// backlog reports how many bursts are enqueued but not yet popped. Safe from
// any goroutine: it reads only the producers' tail and the consumer's
// published pop count, never the consumer-private head. The two loads are not
// a snapshot, so the result can transiently overshoot by in-flight pushes —
// fine for the health watchdog, which only needs "is work piling up".
func (r *mpscRing) backlog() int {
	t := r.tail.Load()
	p := r.pops.Load()
	if t <= p {
		return 0
	}
	return int(t - p)
}

// push spins until b fits, yielding the timeslice while the consumer is
// behind.
func (r *mpscRing) push(b *burst) {
	for !r.tryPush(b) {
		runtime.Gosched()
	}
}
