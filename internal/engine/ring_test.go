package engine

import (
	"runtime"
	"sync"
	"testing"

	"splidt/internal/pkt"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(4)
	if len(r.buf) != 4 {
		t.Fatalf("capacity %d, want 4", len(r.buf))
	}
	bursts := []*burst{{}, {}, {}, {}}
	for _, b := range bursts {
		if !r.tryPush(b) {
			t.Fatal("push into non-full ring failed")
		}
	}
	if r.tryPush(&burst{}) {
		t.Fatal("push into full ring succeeded")
	}
	for i, want := range bursts {
		got, ok := r.tryPop()
		if !ok || got != want {
			t.Fatalf("pop %d: got %p, want %p", i, got, want)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}} {
		if r := newRing(tc.ask); len(r.buf) != tc.want {
			t.Errorf("newRing(%d) capacity %d, want %d", tc.ask, len(r.buf), tc.want)
		}
	}
}

func TestMPSCRingFIFO(t *testing.T) {
	r := newMPSCRing(4)
	if len(r.slots) != 4 {
		t.Fatalf("capacity %d, want 4", len(r.slots))
	}
	bursts := []*burst{{}, {}, {}, {}}
	for _, b := range bursts {
		if !r.tryPush(b) {
			t.Fatal("push into non-full ring failed")
		}
	}
	if r.tryPush(&burst{}) {
		t.Fatal("push into full ring succeeded")
	}
	for i, want := range bursts {
		got, ok := r.tryPop()
		if !ok || got != want {
			t.Fatalf("pop %d: got %p, want %p", i, got, want)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	// The ring must keep working across laps (sequence numbers recycle).
	for lap := 0; lap < 3; lap++ {
		for _, b := range bursts {
			if !r.tryPush(b) {
				t.Fatalf("lap %d: push failed", lap)
			}
		}
		for i, want := range bursts {
			if got, ok := r.tryPop(); !ok || got != want {
				t.Fatalf("lap %d pop %d: got %p, want %p", lap, i, got, want)
			}
		}
	}
}

// TestRingMPSCStress drives several producers into one small MPSC ring and
// checks, under the race detector, that nothing is lost or duplicated and
// that each producer's bursts arrive in that producer's push order — the
// per-producer FIFO property multi-feeder dispatch relies on for per-flow
// packet order.
func TestRingMPSCStress(t *testing.T) {
	const (
		producers = 4
		perProd   = 5_000
	)
	r := newMPSCRing(8)
	var wg sync.WaitGroup
	done := make(chan map[int]int, 1)
	go func() {
		next := make(map[int]int, producers) // producer → next expected seq
		got := 0
		for got < producers*perProd {
			b, ok := r.tryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			prod, seq := b.pkts[0].Seq, b.pkts[0].FlowSize
			if want := next[prod]; seq != want {
				t.Errorf("producer %d out of order: got %d, want %d", prod, seq, want)
				done <- nil
				return
			}
			next[prod]++
			got++
		}
		done <- next
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				r.push(&burst{pkts: []pkt.Packet{{Seq: p, FlowSize: i}}})
			}
		}(p)
	}
	wg.Wait()
	next := <-done
	for p := 0; p < producers; p++ {
		if next[p] != perProd {
			t.Fatalf("producer %d: consumer saw %d bursts, want %d", p, next[p], perProd)
		}
	}
}

// TestRingSPSCStress moves a long tagged sequence through a small ring with
// one producer and one consumer; ordering and completeness must hold under
// the race detector.
func TestRingSPSCStress(t *testing.T) {
	const n = 20_000
	r := newRing(8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		for next < n {
			b, ok := r.tryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if got := b.pkts[0].Seq; got != next {
				t.Errorf("out of order: got %d, want %d", got, next)
				return
			}
			next++
		}
	}()
	for i := 0; i < n; i++ {
		r.push(&burst{pkts: []pkt.Packet{{Seq: i}}})
	}
	wg.Wait()
}
