package engine

import (
	"runtime"
	"sync"
	"testing"

	"splidt/internal/pkt"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(4)
	if len(r.buf) != 4 {
		t.Fatalf("capacity %d, want 4", len(r.buf))
	}
	bursts := []*burst{{}, {}, {}, {}}
	for _, b := range bursts {
		if !r.tryPush(b) {
			t.Fatal("push into non-full ring failed")
		}
	}
	if r.tryPush(&burst{}) {
		t.Fatal("push into full ring succeeded")
	}
	for i, want := range bursts {
		got, ok := r.tryPop()
		if !ok || got != want {
			t.Fatalf("pop %d: got %p, want %p", i, got, want)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}} {
		if r := newRing(tc.ask); len(r.buf) != tc.want {
			t.Errorf("newRing(%d) capacity %d, want %d", tc.ask, len(r.buf), tc.want)
		}
	}
}

// TestRingSPSCStress moves a long tagged sequence through a small ring with
// one producer and one consumer; ordering and completeness must hold under
// the race detector.
func TestRingSPSCStress(t *testing.T) {
	const n = 20_000
	r := newRing(8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		for next < n {
			b, ok := r.tryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if got := b.pkts[0].Seq; got != next {
				t.Errorf("out of order: got %d, want %d", got, next)
				return
			}
			next++
		}
	}()
	for i := 0; i < n; i++ {
		r.push(&burst{pkts: []pkt.Packet{{Seq: i}}})
	}
	wg.Wait()
}
