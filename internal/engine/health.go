package engine

// This file is deliberately outside the //splidt:packettime regime: health
// observation and the watchdog are management-plane code that runs on wall
// clock, never on the per-packet path.

import (
	"errors"
	"fmt"
	"time"

	"splidt/internal/telemetry/flight"
)

// Session lifecycle fault errors. Both surface through Session.Err and wrap
// into the closed-session error Feed-family methods return, so errors.Is
// works against either the closed sentinel or the cause.
var (
	// ErrShutdownTimeout reports that Close (or a context abort) hit the
	// configured ShutdownTimeout with a worker still running — a stuck shard
	// the deadline-bounded shutdown refused to wait out. The engine stays
	// poisoned (no further sessions) because the stuck worker still owns its
	// replica.
	ErrShutdownTimeout = errors.New("engine: shutdown deadline exceeded: shard worker stuck")
	// ErrRedeployTimeout reports that Session.Redeploy hit the shutdown
	// deadline before every live shard adopted the new deployment.
	ErrRedeployTimeout = errors.New("engine: redeploy adoption deadline exceeded")
)

// ShardPanicError is the recorded cause when a shard worker panics: the
// shard is quarantined (replica frozen, input ring drained to a drop
// counter) and the rest of the session keeps running. Retrieve it with
// errors.As from Session.Err or from a wrapped Feed error.
type ShardPanicError struct {
	Shard int    // the quarantined shard
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
	// Postmortem is the shard's flight-recorder snapshot taken inside the
	// panic fence: the last ~Config.FlightRecorder events (burst
	// boundaries, sweep reclaims, eviction batches, epoch adoptions,
	// watchdog flags) preceding the fault, ending with the quarantine
	// event itself. Empty when the recorder is disabled.
	Postmortem []flight.Event
}

// Error implements error.
func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("engine: shard %d worker panicked: %v", e.Shard, e.Value)
}

// HealthState is one shard's lifecycle state in a Health snapshot.
type HealthState int32

// The shard health states.
const (
	// ShardRunning: the worker is live and keeping up with its input ring.
	ShardRunning HealthState = iota
	// ShardDegraded: the watchdog observed a full interval with input queued
	// but no burst completed — the worker is stalled or badly behind. The
	// state flips back to running as soon as progress resumes.
	ShardDegraded
	// ShardQuarantined: the worker panicked. Its replica is frozen exactly
	// as the panic left it, and its input ring drains to a drop counter so
	// feeders never wedge against the dead shard. Terminal for the session.
	ShardQuarantined
)

// String names the state.
func (h HealthState) String() string {
	switch h {
	case ShardRunning:
		return "running"
	case ShardDegraded:
		return "degraded"
	case ShardQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("HealthState(%d)", int32(h))
	}
}

// ShardHealth is one shard's entry in a Health snapshot.
type ShardHealth struct {
	// State is the shard's current lifecycle state.
	State HealthState
	// LastProgress is the shard's packet-time clock at its last completed
	// burst. A quarantined or stalled shard's stamp freezes while the other
	// shards' stamps keep advancing with traffic.
	LastProgress time.Duration
	// Backlog is the number of bursts queued in the shard's input ring and
	// not yet consumed.
	Backlog int
	// Dropped counts packets this shard discarded while quarantined (ring
	// drains plus the remainder of the burst the panic interrupted).
	Dropped int64
	// Epoch is the deployment epoch the shard currently runs: 0 for the
	// deployment the engine was built with, the Redeploy-returned epoch
	// after an adopted swap.
	Epoch uint64
}

// Health is a point-in-time view of a session's per-shard liveness, read
// entirely from published atomics — safe at any time, from any goroutine,
// including mid-run under -race.
type Health struct {
	// Err is the session's recorded cause (Session.Err): nil while healthy,
	// the first fault otherwise.
	Err error
	// Shards holds per-shard health, indexed by shard.
	Shards []ShardHealth
}

// Health assembles a live health snapshot of the session.
func (s *Session) Health() Health {
	h := Health{Err: s.Err(), Shards: make([]ShardHealth, len(s.e.shards))}
	for i, sh := range s.e.shards {
		h.Shards[i] = ShardHealth{
			State:        HealthState(sh.health.Load()),
			LastProgress: time.Duration(sh.lastTS.Load()),
			Backlog:      sh.in.backlog(),
			Dropped:      sh.quarDrops.Load(),
			Epoch:        sh.epoch.Load(),
		}
	}
	return h
}

// Err returns the session's first recorded fault: a ShardPanicError after a
// worker panic, the context's error after a cancellation, ErrShutdownTimeout
// after a wedged shutdown — or nil while the session is healthy. Feed-family
// methods wrap this cause into their closed-session error, and Close returns
// it as the session's final error.
func (s *Session) Err() error {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.fault
}

// recordFault records the session's cause error. The first fault wins:
// secondary faults (a timeout while shutting down after a panic, say) are
// symptoms of the first and would only obscure it.
func (s *Session) recordFault(err error) {
	if err == nil {
		return
	}
	s.faultMu.Lock()
	if s.fault == nil {
		s.fault = err
	}
	s.faultMu.Unlock()
}

// watchdog samples worker progress on a wall-clock interval and flips shards
// between running and degraded: a shard that completed no burst across a
// full interval while input sat queued is stalled (or badly behind); one
// that resumes completing bursts recovers. Quarantined shards are terminal
// and never touched — the CAS transitions only ever exchange running and
// degraded. Runs until shutdown closes watchStop.
func (s *Session) watchdog(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	last := make([]uint64, len(s.e.shards))
	for i, sh := range s.e.shards {
		last[i] = sh.progress.Load()
	}
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
			for i, sh := range s.e.shards {
				p := sh.progress.Load()
				switch {
				case p != last[i]:
					if sh.health.CompareAndSwap(int32(ShardDegraded), int32(ShardRunning)) && sh.rec != nil {
						sh.rec.Record(flight.KindWatchdog, time.Duration(sh.lastTS.Load()), 0, 0)
					}
				case sh.in.backlog() > 0:
					if sh.health.CompareAndSwap(int32(ShardRunning), int32(ShardDegraded)) && sh.rec != nil {
						sh.rec.Record(flight.KindWatchdog, time.Duration(sh.lastTS.Load()), 1, 0)
					}
				}
				last[i] = p
			}
		}
	}
}
