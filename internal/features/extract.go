package features

import (
	"sort"

	"splidt/internal/flow"
	"splidt/internal/pkt"
)

// WindowVectors computes the per-window feature vectors of a single flow's
// packets when the flow is divided into parts uniform windows — the
// behaviour of the paper's modified CICFlowMeter, which emits statistics at
// every window boundary and resets flow state afterwards (§5.1).
//
// Packets must belong to one flow (either direction) and be ordered by
// timestamp. The returned slice has one vector per non-empty window, in
// window order; flows shorter than parts packets produce fewer vectors.
func WindowVectors(packets []pkt.Packet, parts int) []Vector {
	if parts <= 0 {
		panic("features: non-positive partition count")
	}
	if len(packets) == 0 {
		return nil
	}
	var (
		out   []Vector
		state FlowState
		cur   = 0
	)
	for _, p := range packets {
		w := p.WindowOf(parts)
		if w != cur {
			if state.Packets() > 0 {
				out = append(out, state.Snapshot())
			}
			state.Reset()
			cur = w
		}
		state.Update(p)
	}
	if state.Packets() > 0 {
		out = append(out, state.Snapshot())
	}
	return out
}

// WindowVectorsBounds is WindowVectors under non-uniform window boundaries
// (adaptive window sizing, the paper's §6): the i-th window covers the flow
// fraction (bounds[i-1], bounds[i]].
func WindowVectorsBounds(packets []pkt.Packet, bounds pkt.Bounds) []Vector {
	if !bounds.Valid() {
		panic("features: invalid window bounds")
	}
	if len(packets) == 0 {
		return nil
	}
	var (
		out   []Vector
		state FlowState
		cur   = 0
	)
	for _, p := range packets {
		w := p.WindowOfBounds(bounds)
		if w != cur {
			if state.Packets() > 0 {
				out = append(out, state.Snapshot())
			}
			state.Reset()
			cur = w
		}
		state.Update(p)
	}
	if state.Packets() > 0 {
		out = append(out, state.Snapshot())
	}
	return out
}

// FlowVector computes the single whole-flow feature vector (parts = 1),
// which is what one-shot systems such as NetBeacon and Leo would observe
// with unlimited collection time.
func FlowVector(packets []pkt.Packet) Vector {
	vs := WindowVectors(packets, 1)
	if len(vs) == 0 {
		return Vector{}
	}
	return vs[0]
}

// PhaseVectors computes NetBeacon-style phase snapshots: cumulative feature
// vectors after 2, 4, 8, ... packets (exponential phase intervals, §5.1).
// Unlike SpliDT windows, flow statistics are retained across phases — no
// state reset — so each snapshot covers the flow prefix. Returns at most
// maxPhases snapshots; the final snapshot covers the largest power-of-two
// prefix that fits the flow.
func PhaseVectors(packets []pkt.Packet, maxPhases int) []Vector {
	if maxPhases <= 0 {
		panic("features: non-positive phase count")
	}
	if len(packets) == 0 {
		return nil
	}
	var (
		out      []Vector
		state    FlowState
		boundary = 2
	)
	for i, p := range packets {
		state.Update(p)
		if i+1 == boundary && len(out) < maxPhases {
			out = append(out, state.Snapshot())
			boundary *= 2
		}
	}
	if len(out) == 0 {
		// Flow shorter than the first phase: one snapshot at flow end.
		out = append(out, state.Snapshot())
	}
	return out
}

// GroupByFlow splits an interleaved packet trace into per-flow packet
// sequences keyed by canonical flow key, preserving arrival order within
// each flow. Flows are returned in first-arrival order for determinism.
func GroupByFlow(trace []pkt.Packet) []FlowPackets {
	idx := make(map[flow.Key]int)
	var out []FlowPackets
	for _, p := range trace {
		ck := p.Key.Canonical()
		i, ok := idx[ck]
		if !ok {
			i = len(out)
			idx[ck] = i
			out = append(out, FlowPackets{Key: ck})
		}
		out[i].Packets = append(out[i].Packets, p)
	}
	return out
}

// FlowPackets is one flow's packets in arrival order.
type FlowPackets struct {
	Key     flow.Key
	Packets []pkt.Packet
}

// SortByTS stably orders the packets by timestamp (traces from concurrent
// generators may need re-ordering before feature extraction).
func (f *FlowPackets) SortByTS() {
	sort.SliceStable(f.Packets, func(i, j int) bool {
		return f.Packets[i].TS < f.Packets[j].TS
	})
}
