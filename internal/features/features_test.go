package features

import (
	"testing"
	"testing/quick"
	"time"

	"splidt/internal/flow"
	"splidt/internal/pkt"
)

func mkKey() flow.Key {
	return flow.Key{
		SrcIP: flow.AddrFrom4(10, 0, 0, 1), DstIP: flow.AddrFrom4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: flow.ProtoTCP,
	}
}

func mkFlow(n int, lens []int, gap time.Duration) []pkt.Packet {
	k := mkKey()
	out := make([]pkt.Packet, n)
	for i := range out {
		l := 100
		if lens != nil {
			l = lens[i%len(lens)]
		}
		out[i] = pkt.Packet{
			Key: k, Len: l, TS: time.Duration(i) * gap,
			Seq: i + 1, FlowSize: n,
		}
	}
	return out
}

func TestVocabularySizes(t *testing.T) {
	if NumStateful != 41 {
		t.Fatalf("NumStateful = %d, want 41 (paper's N for D1)", NumStateful)
	}
	if NumTotal != NumStateful+5 {
		t.Fatalf("NumTotal = %d, want %d", NumTotal, NumStateful+5)
	}
	seen := map[string]bool{}
	for i := 0; i < NumTotal; i++ {
		n := ID(i).String()
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestStatelessPartition(t *testing.T) {
	for _, id := range AllStateful() {
		if id.Stateless() {
			t.Errorf("%v reported stateless", id)
		}
	}
	for _, id := range AllStateless() {
		if !id.Stateless() {
			t.Errorf("%v reported stateful", id)
		}
		if id.DependencyDepth() != 0 {
			t.Errorf("%v stateless but depth %d", id, id.DependencyDepth())
		}
	}
}

func TestDependencyDepthBounds(t *testing.T) {
	maxDepth := 0
	for i := 0; i < NumTotal; i++ {
		d := ID(i).DependencyDepth()
		if d < 0 || d > 3 {
			t.Fatalf("%v depth %d out of [0,3]", ID(i), d)
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 3 {
		t.Fatalf("max dependency depth = %d, want 3 (paper §3.1.1)", maxDepth)
	}
}

func TestBasicCounts(t *testing.T) {
	ps := mkFlow(10, []int{100, 200}, time.Millisecond)
	var s FlowState
	for _, p := range ps {
		s.Update(p)
	}
	v := s.Snapshot()
	if v[PktCount] != 10 {
		t.Errorf("pkt_count = %v, want 10", v[PktCount])
	}
	if v[ByteCount] != 1500 {
		t.Errorf("byte_count = %v, want 1500", v[ByteCount])
	}
	if v[MinPktLen] != 100 || v[MaxPktLen] != 200 {
		t.Errorf("min/max = %v/%v, want 100/200", v[MinPktLen], v[MaxPktLen])
	}
	if v[MeanPktLen] != 150 {
		t.Errorf("mean = %v, want 150", v[MeanPktLen])
	}
	if v[LenRange] != 100 {
		t.Errorf("len_range = %v, want 100", v[LenRange])
	}
	if v[FirstPktLen] != 100 {
		t.Errorf("first_len = %v, want 100", v[FirstPktLen])
	}
}

func TestIATStats(t *testing.T) {
	ps := mkFlow(5, nil, 2*time.Millisecond)
	var s FlowState
	for _, p := range ps {
		s.Update(p)
	}
	v := s.Snapshot()
	if v[MeanIAT] != 2000 {
		t.Errorf("mean_iat = %v us, want 2000", v[MeanIAT])
	}
	if v[MinIAT] != 2000 || v[MaxIAT] != 2000 {
		t.Errorf("min/max iat = %v/%v, want 2000", v[MinIAT], v[MaxIAT])
	}
	if v[StdIAT] != 0 {
		t.Errorf("std_iat = %v, want 0 for uniform gaps", v[StdIAT])
	}
	if v[Duration] != 8000 {
		t.Errorf("duration = %v us, want 8000", v[Duration])
	}
}

func TestFlagCounts(t *testing.T) {
	k := mkKey()
	var s FlowState
	s.Update(pkt.Packet{Key: k, Len: 60, Flags: pkt.FlagSYN, Seq: 1, FlowSize: 3})
	s.Update(pkt.Packet{Key: k, Len: 60, Flags: pkt.FlagSYN | pkt.FlagACK, Seq: 2, FlowSize: 3})
	s.Update(pkt.Packet{Key: k, Len: 60, Flags: pkt.FlagFIN | pkt.FlagACK, Seq: 3, FlowSize: 3})
	v := s.Snapshot()
	if v[SYNCount] != 2 || v[ACKCount] != 2 || v[FINCount] != 1 {
		t.Errorf("syn/ack/fin = %v/%v/%v, want 2/2/1", v[SYNCount], v[ACKCount], v[FINCount])
	}
	if v[FlagKinds] != 3 {
		t.Errorf("flag_kinds = %v, want 3", v[FlagKinds])
	}
}

func TestDirectionalCounters(t *testing.T) {
	k := mkKey() // canonical (10.0.0.1 < 10.0.0.2)
	if !k.IsCanonical() {
		t.Fatal("test key must be canonical")
	}
	var s FlowState
	s.Update(pkt.Packet{Key: k, Len: 100, Seq: 1, FlowSize: 4})
	s.Update(pkt.Packet{Key: k.Reverse(), Len: 400, TS: time.Millisecond, Seq: 2, FlowSize: 4})
	s.Update(pkt.Packet{Key: k, Len: 100, TS: 2 * time.Millisecond, Seq: 3, FlowSize: 4})
	s.Update(pkt.Packet{Key: k.Reverse(), Len: 600, TS: 3 * time.Millisecond, Seq: 4, FlowSize: 4})
	v := s.Snapshot()
	if v[FwdPktCount] != 2 || v[BwdPktCount] != 2 {
		t.Errorf("fwd/bwd pkts = %v/%v, want 2/2", v[FwdPktCount], v[BwdPktCount])
	}
	if v[FwdByteCount] != 200 || v[BwdByteCount] != 1000 {
		t.Errorf("fwd/bwd bytes = %v/%v, want 200/1000", v[FwdByteCount], v[BwdByteCount])
	}
	if v[BwdMeanLen] != 500 {
		t.Errorf("bwd_mean_len = %v, want 500", v[BwdMeanLen])
	}
	if v[DownUpRatio] != 100 {
		t.Errorf("down_up_ratio = %v, want 100 (scaled)", v[DownUpRatio])
	}
}

func TestResetClearsState(t *testing.T) {
	var s FlowState
	for _, p := range mkFlow(5, nil, time.Millisecond) {
		s.Update(p)
	}
	s.Reset()
	if s.Packets() != 0 {
		t.Fatal("Reset left packets")
	}
	v := s.Snapshot()
	for i, x := range v {
		if x != 0 {
			t.Fatalf("feature %v nonzero after reset: %v", ID(i), x)
		}
	}
}

func TestWindowVectorsCount(t *testing.T) {
	ps := mkFlow(12, nil, time.Millisecond)
	vs := WindowVectors(ps, 3)
	if len(vs) != 3 {
		t.Fatalf("got %d windows, want 3", len(vs))
	}
	for i, v := range vs {
		if v[PktCount] != 4 {
			t.Errorf("window %d pkt_count = %v, want 4", i, v[PktCount])
		}
	}
}

func TestWindowVectorsShortFlow(t *testing.T) {
	ps := mkFlow(2, nil, time.Millisecond)
	vs := WindowVectors(ps, 5)
	if len(vs) == 0 || len(vs) > 5 {
		t.Fatalf("short flow produced %d windows", len(vs))
	}
	total := 0.0
	for _, v := range vs {
		total += v[PktCount]
	}
	if total != 2 {
		t.Fatalf("windows cover %v packets, want 2", total)
	}
}

func TestWindowVectorsResetBetweenWindows(t *testing.T) {
	// Lengths differ per window; each window's max must reflect only its own.
	k := mkKey()
	ps := []pkt.Packet{
		{Key: k, Len: 1000, Seq: 1, FlowSize: 4},
		{Key: k, Len: 1000, TS: time.Millisecond, Seq: 2, FlowSize: 4},
		{Key: k, Len: 100, TS: 2 * time.Millisecond, Seq: 3, FlowSize: 4},
		{Key: k, Len: 100, TS: 3 * time.Millisecond, Seq: 4, FlowSize: 4},
	}
	vs := WindowVectors(ps, 2)
	if len(vs) != 2 {
		t.Fatalf("got %d windows, want 2", len(vs))
	}
	if vs[0][MaxPktLen] != 1000 || vs[1][MaxPktLen] != 100 {
		t.Fatalf("window maxes = %v/%v, want 1000/100 (state leaked)", vs[0][MaxPktLen], vs[1][MaxPktLen])
	}
}

func TestFlowVectorEqualsSinglePartition(t *testing.T) {
	ps := mkFlow(9, []int{80, 120, 1500}, time.Millisecond)
	fv := FlowVector(ps)
	wv := WindowVectors(ps, 1)
	if len(wv) != 1 || fv != wv[0] {
		t.Fatal("FlowVector != WindowVectors(_, 1)[0]")
	}
}

func TestGroupByFlow(t *testing.T) {
	k1 := mkKey()
	k2 := k1
	k2.DstPort = 443
	trace := []pkt.Packet{
		{Key: k1, Len: 10, Seq: 1, FlowSize: 2},
		{Key: k2, Len: 20, Seq: 1, FlowSize: 1},
		{Key: k1.Reverse(), Len: 30, Seq: 2, FlowSize: 2},
	}
	fs := GroupByFlow(trace)
	if len(fs) != 2 {
		t.Fatalf("got %d flows, want 2", len(fs))
	}
	if len(fs[0].Packets) != 2 {
		t.Fatalf("flow 1 has %d packets, want 2 (reverse direction merged)", len(fs[0].Packets))
	}
	if fs[0].Key != k1.Canonical() {
		t.Fatalf("flow key not canonical: %v", fs[0].Key)
	}
}

func TestSnapshotNonNegativeProperty(t *testing.T) {
	f := func(lens []uint16, gapsMS []uint8) bool {
		if len(lens) == 0 {
			return true
		}
		k := mkKey()
		var s FlowState
		ts := time.Duration(0)
		for i, l := range lens {
			if len(gapsMS) > 0 {
				ts += time.Duration(gapsMS[i%len(gapsMS)]) * time.Millisecond
			}
			s.Update(pkt.Packet{Key: k, Len: int(l%3000) + 40, TS: ts, Seq: i + 1, FlowSize: len(lens)})
		}
		v := s.Snapshot()
		for _, x := range v {
			if x < 0 || x > MaxValue {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantize(t *testing.T) {
	var v Vector
	v[PktCount] = 0xFFFF
	q := v.Quantize(8)
	// 8-bit precision keeps top 8 bits of 32: 0xFFFF >> 24 == 0, so value
	// quantises to 0? No: shift = 24, 0xFFFF>>24<<24 = 0.
	if q[PktCount] != 0 {
		t.Fatalf("quantize(8) of 0xFFFF = %v, want 0", q[PktCount])
	}
	v[PktCount] = float64(0xFF000000)
	q = v.Quantize(8)
	if q[PktCount] != float64(0xFF000000) {
		t.Fatalf("quantize(8) dropped significant bits: %v", q[PktCount])
	}
	if v.Quantize(32) != v {
		t.Fatal("quantize(32) must be identity")
	}
}

func TestQuantizeMonotoneProperty(t *testing.T) {
	f := func(x uint32, bits uint8) bool {
		b := int(bits%32) + 1
		var v Vector
		v[0] = float64(x)
		q := v.Quantize(b)[0]
		return q <= float64(x) && q >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantize(0) did not panic")
		}
	}()
	(Vector{}).Quantize(0)
}

func BenchmarkUpdate(b *testing.B) {
	ps := mkFlow(64, []int{100, 1500, 40}, 100*time.Microsecond)
	var s FlowState
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(ps[i%len(ps)])
	}
}

func BenchmarkSnapshot(b *testing.B) {
	var s FlowState
	for _, p := range mkFlow(64, []int{100, 1500, 40}, 100*time.Microsecond) {
		s.Update(p)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot()
	}
}
