package features

import (
	"math"
	"time"

	"splidt/internal/flow"
	"splidt/internal/pkt"
)

// FlowState accumulates the per-flow register state needed to compute every
// stateful feature over the current window. Its fields correspond one-to-one
// to register arrays in the data plane: simple counters, a dependency chain
// (previous timestamp), and second-moment accumulators.
//
// The zero FlowState is ready for the first packet of a window.
type FlowState struct {
	pkts     int
	bytes    int
	hdrBytes int
	payBytes int

	minLen, maxLen  int
	sumLen, sumLen2 float64
	firstLen        int

	firstTS, lastTS time.Duration
	haveTS          bool

	sumIAT, sumIAT2 float64
	minIAT, maxIAT  time.Duration
	iatCount        int
	bursts, idles   int

	syn, ack, fin, rst, psh, urg int
	flagBits                     pkt.TCPFlags

	fwdPkts, bwdPkts     int
	fwdBytes, bwdBytes   int
	fwdLastTS, bwdLastTS time.Duration
	fwdHaveTS, bwdHaveTS bool
	fwdSumIAT, bwdSumIAT float64
	fwdIATs, bwdIATs     int

	small, large int
	actPkts      int
	actBytes     int

	// lastPkt mirrors the PHV fields of the most recent packet so stateless
	// features can be read out of the same snapshot.
	lastKey   flow.Key
	lastLen   int
	lastFlags pkt.TCPFlags
}

const (
	burstIAT = 1 * time.Millisecond
	idleIAT  = 100 * time.Millisecond
)

// Update folds one packet into the window state. Forward direction is the
// canonical orientation of the flow key (CICFlowMeter uses first-packet
// direction; canonical orientation is equivalent for synthetic traces where
// the initiator always compares lower).
//
//splidt:hotpath
func (s *FlowState) Update(p pkt.Packet) {
	s.pkts++
	s.bytes += p.Len
	hdr := pkt.HeaderBytes
	if hdr > p.Len {
		hdr = p.Len
	}
	s.hdrBytes += hdr
	pay := p.Len - hdr
	s.payBytes += pay
	if pay > 0 {
		s.actPkts++
		s.actBytes += p.Len
	}

	if s.pkts == 1 {
		s.minLen, s.maxLen, s.firstLen = p.Len, p.Len, p.Len
		s.firstTS = p.TS
	} else {
		if p.Len < s.minLen {
			s.minLen = p.Len
		}
		if p.Len > s.maxLen {
			s.maxLen = p.Len
		}
	}
	s.sumLen += float64(p.Len)
	s.sumLen2 += float64(p.Len) * float64(p.Len)

	if s.haveTS {
		iat := p.TS - s.lastTS
		if iat < 0 {
			iat = 0
		}
		if s.iatCount == 0 {
			s.minIAT, s.maxIAT = iat, iat
		} else {
			if iat < s.minIAT {
				s.minIAT = iat
			}
			if iat > s.maxIAT {
				s.maxIAT = iat
			}
		}
		us := float64(iat) / float64(time.Microsecond)
		s.sumIAT += us
		s.sumIAT2 += us * us
		s.iatCount++
		if iat < burstIAT {
			s.bursts++
		}
		if iat > idleIAT {
			s.idles++
		}
	}
	s.lastTS = p.TS
	s.haveTS = true

	if p.Flags.Has(pkt.FlagSYN) {
		s.syn++
	}
	if p.Flags.Has(pkt.FlagACK) {
		s.ack++
	}
	if p.Flags.Has(pkt.FlagFIN) {
		s.fin++
	}
	if p.Flags.Has(pkt.FlagRST) {
		s.rst++
	}
	if p.Flags.Has(pkt.FlagPSH) {
		s.psh++
	}
	if p.Flags.Has(pkt.FlagURG) {
		s.urg++
	}
	s.flagBits |= p.Flags

	fwd := p.Key.IsCanonical()
	if fwd {
		s.fwdPkts++
		s.fwdBytes += p.Len
		if s.fwdHaveTS {
			s.fwdSumIAT += float64(p.TS-s.fwdLastTS) / float64(time.Microsecond)
			s.fwdIATs++
		}
		s.fwdLastTS, s.fwdHaveTS = p.TS, true
	} else {
		s.bwdPkts++
		s.bwdBytes += p.Len
		if s.bwdHaveTS {
			s.bwdSumIAT += float64(p.TS-s.bwdLastTS) / float64(time.Microsecond)
			s.bwdIATs++
		}
		s.bwdLastTS, s.bwdHaveTS = p.TS, true
	}

	if p.Len < 128 {
		s.small++
	}
	if p.Len > 1000 {
		s.large++
	}

	s.lastKey = p.Key
	s.lastLen = p.Len
	s.lastFlags = p.Flags
}

// Reset clears the window state, as the recirculated control packet does
// when transitioning to the next partition.
//
//splidt:hotpath
func (s *FlowState) Reset() { *s = FlowState{} }

// Packets returns the number of packets folded into the current window.
func (s *FlowState) Packets() int { return s.pkts }

// clampNonNeg clamps into [0, MaxValue] and floors to a whole number:
// switch registers hold unsigned integers, and integer-valued features make
// software classification exactly equivalent to TCAM range matching on the
// 32-bit register contents.
//
//splidt:hotpath
func clampNonNeg(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > MaxValue {
		return MaxValue
	}
	return math.Floor(x)
}

//
//splidt:hotpath
func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

//
//splidt:hotpath
func std(sum, sum2 float64, n int) float64 {
	if n < 2 {
		return 0
	}
	m := sum / float64(n)
	v := sum2/float64(n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Snapshot materialises the full feature vector for the current window.
//
//splidt:hotpath
func (s *FlowState) Snapshot() Vector {
	var v Vector
	durUS := float64(s.lastTS-s.firstTS) / float64(time.Microsecond)
	if s.pkts == 0 {
		durUS = 0
	}

	v[PktCount] = float64(s.pkts)
	v[ByteCount] = float64(s.bytes)
	v[MeanPktLen] = mean(s.sumLen, s.pkts)
	v[MinPktLen] = float64(s.minLen)
	v[MaxPktLen] = float64(s.maxLen)
	v[StdPktLen] = std(s.sumLen, s.sumLen2, s.pkts)
	v[Duration] = durUS
	v[MeanIAT] = mean(s.sumIAT, s.iatCount)
	v[MinIAT] = float64(s.minIAT) / float64(time.Microsecond)
	v[MaxIAT] = float64(s.maxIAT) / float64(time.Microsecond)
	v[StdIAT] = std(s.sumIAT, s.sumIAT2, s.iatCount)
	v[SYNCount] = float64(s.syn)
	v[ACKCount] = float64(s.ack)
	v[FINCount] = float64(s.fin)
	v[RSTCount] = float64(s.rst)
	v[PSHCount] = float64(s.psh)
	v[URGCount] = float64(s.urg)
	if durUS > 0 {
		v[PktRate] = float64(s.pkts) / (durUS / 1e6)
		v[ByteRate] = float64(s.bytes) / (durUS / 1e6)
	}
	v[FwdPktCount] = float64(s.fwdPkts)
	v[BwdPktCount] = float64(s.bwdPkts)
	v[FwdByteCount] = float64(s.fwdBytes)
	v[BwdByteCount] = float64(s.bwdBytes)
	if s.fwdPkts > 0 {
		v[FwdMeanLen] = float64(s.fwdBytes) / float64(s.fwdPkts)
		v[AvgFwdSeg] = v[FwdMeanLen]
	}
	if s.bwdPkts > 0 {
		v[BwdMeanLen] = float64(s.bwdBytes) / float64(s.bwdPkts)
		v[AvgBwdSeg] = v[BwdMeanLen]
	}
	if s.fwdPkts > 0 {
		v[DownUpRatio] = 100 * float64(s.bwdPkts) / float64(s.fwdPkts)
	}
	v[FwdIATMean] = mean(s.fwdSumIAT, s.fwdIATs)
	v[BwdIATMean] = mean(s.bwdSumIAT, s.bwdIATs)
	v[SmallPktCount] = float64(s.small)
	v[LargePktCount] = float64(s.large)
	v[FirstPktLen] = float64(s.firstLen)
	v[LenRange] = float64(s.maxLen - s.minLen)
	v[HdrByteCount] = float64(s.hdrBytes)
	v[PayloadByteCount] = float64(s.payBytes)
	v[MeanPayloadLen] = mean(float64(s.payBytes), s.pkts)
	v[BurstCount] = float64(s.bursts)
	v[IdleCount] = float64(s.idles)
	bits := 0
	for b := pkt.TCPFlags(1); b != 0; b <<= 1 {
		if s.flagBits.Has(b) {
			bits++
		}
	}
	v[FlagKinds] = float64(bits)
	if s.actPkts > 0 {
		v[ActMeanLen] = float64(s.actBytes) / float64(s.actPkts)
	}

	v[SrcPortField] = float64(s.lastKey.SrcPort)
	v[DstPortField] = float64(s.lastKey.DstPort)
	v[ProtoField] = float64(s.lastKey.Proto)
	v[PktLenField] = float64(s.lastLen)
	v[FlagsField] = float64(s.lastFlags)

	for i := range v {
		v[i] = clampNonNeg(v[i])
	}
	return v
}
