package features

import (
	"testing"
	"testing/quick"
)

func TestComputeShifts(t *testing.T) {
	rows := [][]float64{
		{1000, 3, 0},
		{70000, 5, 0},
	}
	s := ComputeShifts(rows, 8)
	// Column 0: max 70000 → bitlen 17 (+1 headroom) → shift 10.
	if s[0] != 10 {
		t.Fatalf("shift[0] = %d, want 10", s[0])
	}
	// Column 1: max 5 → bitlen 3 (+1) ≤ 8 → shift 0.
	if s[1] != 0 {
		t.Fatalf("shift[1] = %d, want 0", s[1])
	}
	// Column 2: all zero → shift 0.
	if s[2] != 0 {
		t.Fatalf("shift[2] = %d, want 0", s[2])
	}
}

func TestComputeShiftsEmpty(t *testing.T) {
	if ComputeShifts(nil, 8) != nil {
		t.Fatal("empty rows should return nil")
	}
}

func TestComputeShiftsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bits=0 did not panic")
		}
	}()
	ComputeShifts([][]float64{{1}}, 0)
}

func TestApplyShift(t *testing.T) {
	if got := ApplyShift(1023, 4); got != 1008 {
		t.Fatalf("ApplyShift(1023,4) = %v, want 1008", got)
	}
	if got := ApplyShift(77.9, 0); got != 77 {
		t.Fatalf("ApplyShift(77.9,0) = %v, want 77", got)
	}
	if got := ApplyShift(-5, 3); got != 0 {
		t.Fatalf("negative input should clamp to 0, got %v", got)
	}
}

func TestQuantizeRow(t *testing.T) {
	row := []float64{100, 200, 300}
	out := QuantizeRow(row, []uint{0, 4, 8})
	if out[0] != 100 || out[1] != 192 || out[2] != 256 {
		t.Fatalf("QuantizeRow = %v", out)
	}
	// nil shifts: identity (same slice allowed).
	same := QuantizeRow(row, nil)
	if &same[0] != &row[0] {
		t.Fatal("nil shifts should return the input row")
	}
}

func TestRegValue(t *testing.T) {
	if got := RegValue(1023, 4, 8); got != 63 {
		t.Fatalf("RegValue(1023,4,8) = %d, want 63", got)
	}
	// Saturation at the field limit.
	if got := RegValue(1e9, 0, 8); got != 255 {
		t.Fatalf("RegValue must saturate at 255, got %d", got)
	}
	if got := RegValue(-3, 2, 8); got != 0 {
		t.Fatalf("negative RegValue = %d", got)
	}
}

// TestShiftComparisonEquivalence is the property the data plane relies on:
// for thresholds drawn between quantised training values, comparing
// quantised values against the threshold equals comparing register values
// against the shifted threshold.
func TestShiftComparisonEquivalence(t *testing.T) {
	f := func(raw uint32, thrRaw uint32, shift8 uint8, bits8 uint8) bool {
		bits := int(bits8%24) + 8 // 8..31
		shift := uint(shift8 % 16)
		v := ApplyShift(float64(raw), shift)
		// Threshold as a midpoint between two quantised values.
		a := ApplyShift(float64(thrRaw), shift)
		thr := a + float64(uint64(1)<<shift)/2
		soft := v <= thr
		hard := RegValue(v, shift, bits) <= RegValue(thr, shift, bits)
		// Saturation can diverge only when both sides saturate; with both
		// saturated the comparison is <= and equality holds on the hard
		// side. Accept the case where both saturate.
		lim := uint32(1)<<uint(bits) - 1
		if RegValue(v, shift, bits) == lim && RegValue(thr, shift, bits) == lim {
			return true
		}
		return soft == hard
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyShiftIdempotent(t *testing.T) {
	f := func(raw uint32, shift8 uint8) bool {
		shift := uint(shift8 % 20)
		once := ApplyShift(float64(raw), shift)
		twice := ApplyShift(once, shift)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
