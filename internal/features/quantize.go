package features

import "math"

// Per-feature quantisation: when a deployment narrows registers to b bits
// (Figure 12), the compiler scales each feature into its register by a
// per-feature right shift chosen from the training range — exactly how a
// switch program would pack a wide counter into a narrow register. The
// quantised value keeps its original scale in software (low bits zeroed),
// while the data plane stores value >> shift in a b-bit field.

// ComputeShifts returns, for each column of the training rows, the right
// shift that fits the column's observed range into bits-wide registers with
// one bit of headroom: shift = max(0, bitlen(maxValue)+1 − bits). The
// headroom keeps register saturation equivalent between software and
// hardware: any test-time value that saturates the register is provably
// above every trained threshold, so both representations route it right.
func ComputeShifts(rows [][]float64, bits int) []uint {
	if bits < 1 || bits > 32 {
		panic("features: bits out of range")
	}
	if len(rows) == 0 {
		return nil
	}
	width := len(rows[0])
	shifts := make([]uint, width)
	for f := 0; f < width; f++ {
		maxV := uint64(0)
		for _, r := range rows {
			v := floorU64(r[f])
			if v > maxV {
				maxV = v
			}
		}
		bl := bitLen(maxV) + 1
		if bl > bits {
			shifts[f] = uint(bl - bits)
		}
	}
	return shifts
}

// ApplyShift quantises one value to the precision implied by the shift,
// keeping its scale: floor(v) with the low `shift` bits zeroed.
func ApplyShift(v float64, shift uint) float64 {
	if shift == 0 {
		return math.Floor(clampToU32Range(v))
	}
	u := floorU64(v)
	return float64(u >> shift << shift)
}

// QuantizeRow applies per-feature shifts to a full row in place-free style.
func QuantizeRow(row []float64, shifts []uint) []float64 {
	if len(shifts) == 0 {
		return row
	}
	out := make([]float64, len(row))
	for i, v := range row {
		s := uint(0)
		if i < len(shifts) {
			s = shifts[i]
		}
		out[i] = ApplyShift(v, s)
	}
	return out
}

// RegValue maps a (possibly already quantised) value to its register
// representation: floor(v) >> shift, saturating at the bits-wide maximum —
// test-time values beyond the training range clamp, as hardware would.
//
//splidt:hotpath
func RegValue(v float64, shift uint, bits int) uint32 {
	u := floorU64(v) >> shift
	lim := uint64(1)<<uint(bits) - 1
	if bits >= 32 {
		lim = 1<<32 - 1
	}
	if u > lim {
		u = lim
	}
	return uint32(u)
}

//
//splidt:hotpath
func floorU64(v float64) uint64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	f := math.Floor(v)
	if f > float64(^uint32(0)) {
		return uint64(^uint32(0))
	}
	return uint64(f)
}

func clampToU32Range(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > MaxValue {
		return MaxValue
	}
	return v
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
