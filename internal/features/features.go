// Package features implements SpliDT's feature collection and engineering
// substrate: the vocabulary of stateful flow features (CICFlowMeter-style),
// per-flow accumulator state, and windowed extraction with state reset at
// window boundaries — the modified-CICFlowMeter behaviour described in §5.1
// of the paper.
//
// Features are computed from integer accumulators exactly as a switch
// register file would hold them; Snapshot scales everything into uint32
// range so the same values can be matched by TCAM range rules.
package features

import "fmt"

// ID identifies one feature in the vocabulary.
type ID int

// The feature vocabulary. N = 41 stateful features (matching dataset D1 in
// the paper, where N=41) plus a handful of stateless per-packet fields used
// by the per-packet (IIsy-style) baseline.
const (
	PktCount ID = iota // packets observed in window
	ByteCount
	MeanPktLen
	MinPktLen
	MaxPktLen
	StdPktLen
	Duration // window duration, microseconds
	MeanIAT  // inter-arrival time stats, microseconds
	MinIAT
	MaxIAT
	StdIAT
	SYNCount
	ACKCount
	FINCount
	RSTCount
	PSHCount
	URGCount
	PktRate  // packets per second
	ByteRate // bytes per second
	FwdPktCount
	BwdPktCount
	FwdByteCount
	BwdByteCount
	FwdMeanLen
	BwdMeanLen
	DownUpRatio // bwd/fwd packet ratio, scaled by 100
	FwdIATMean
	BwdIATMean
	SmallPktCount // len < 128
	LargePktCount // len > 1000
	FirstPktLen
	LenRange // max-min
	HdrByteCount
	PayloadByteCount
	MeanPayloadLen
	BurstCount // runs of IAT < 1ms
	IdleCount  // gaps of IAT > 100ms
	FlagKinds  // number of distinct flag bits seen
	AvgFwdSeg  // fwd bytes per fwd packet
	AvgBwdSeg
	ActMeanLen // mean length of packets with payload
	// ---- stateless per-packet fields (not counted in NumStateful) ----
	SrcPortField
	DstPortField
	ProtoField
	PktLenField
	FlagsField

	numIDs
)

// NumStateful is the number of stateful features in the vocabulary (N).
const NumStateful = int(SrcPortField)

// NumTotal is the total vector width including stateless per-packet fields.
const NumTotal = int(numIDs)

var names = [...]string{
	"pkt_count", "byte_count", "mean_pkt_len", "min_pkt_len", "max_pkt_len",
	"std_pkt_len", "duration_us", "mean_iat_us", "min_iat_us", "max_iat_us",
	"std_iat_us", "syn_count", "ack_count", "fin_count", "rst_count",
	"psh_count", "urg_count", "pkt_rate", "byte_rate", "fwd_pkt_count",
	"bwd_pkt_count", "fwd_byte_count", "bwd_byte_count", "fwd_mean_len",
	"bwd_mean_len", "down_up_ratio", "fwd_iat_mean", "bwd_iat_mean",
	"small_pkt_count", "large_pkt_count", "first_pkt_len", "len_range",
	"hdr_byte_count", "payload_byte_count", "mean_payload_len", "burst_count",
	"idle_count", "flag_kinds", "avg_fwd_seg", "avg_bwd_seg", "act_mean_len",
	"src_port", "dst_port", "proto", "pkt_len", "flags",
}

// String returns the feature's snake_case name.
func (id ID) String() string {
	if id < 0 || int(id) >= len(names) {
		return fmt.Sprintf("feature(%d)", int(id))
	}
	return names[id]
}

// Stateless reports whether the feature is a per-packet header field that
// needs no register state (usable by IIsy/Mousika-style models).
func (id ID) Stateless() bool { return id >= SrcPortField && id < numIDs }

// DependencyDepth returns the length of the register dependency chain needed
// to compute the feature in the data plane (§3.1.1): 0 for stateless fields,
// 1 for simple accumulators, 2 for features needing a carried intermediate
// (e.g. previous timestamp for IATs), 3 for second-moment statistics that
// additionally carry a sum of squares. The paper reports a maximum observed
// chain of 3 stages.
func (id ID) DependencyDepth() int {
	switch {
	case id.Stateless():
		return 0
	case id == StdPktLen || id == StdIAT:
		return 3
	case id == MeanIAT || id == MinIAT || id == MaxIAT ||
		id == FwdIATMean || id == BwdIATMean || id == BurstCount || id == IdleCount:
		return 2
	default:
		return 1
	}
}

// AllStateful returns the stateful feature IDs in order.
func AllStateful() []ID {
	out := make([]ID, NumStateful)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}

// AllStateless returns the stateless per-packet field IDs.
func AllStateless() []ID {
	out := make([]ID, 0, NumTotal-NumStateful)
	for i := NumStateful; i < NumTotal; i++ {
		out = append(out, ID(i))
	}
	return out
}

// Vector is one feature vector: NumTotal values, indexed by ID. Values are
// non-negative and bounded by MaxValue so they fit the switch's 32-bit
// registers and TCAM match keys.
type Vector [NumTotal]float64

// MaxValue is the largest representable feature value (32-bit register).
const MaxValue = float64(1<<32 - 1)

// Quantize reduces every component to the given bit precision by dropping
// low-order bits of the 32-bit fixed-point representation, modelling the
// reduced-precision registers of Figure 12. bits must be in (0, 32].
func (v Vector) Quantize(bits int) Vector {
	if bits <= 0 || bits > 32 {
		panic("features: bits out of range")
	}
	if bits == 32 {
		return v
	}
	shift := uint(32 - bits)
	var out Vector
	for i, x := range v {
		if x < 0 {
			x = 0
		}
		if x > MaxValue {
			x = MaxValue
		}
		u := uint64(x)
		out[i] = float64(u >> shift << shift)
	}
	return out
}
