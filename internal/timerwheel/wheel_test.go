package timerwheel

import (
	"testing"
	"time"
)

// item mimics how the flow table embeds a Node inside a larger entry.
type item struct {
	timer Node
	id    int
}

// collect builds a wheel whose expiries append the fired item ids.
func collect(t *testing.T, cfg Config) (*Wheel, *[]int) {
	t.Helper()
	var fired []int
	cfg.OnExpire = func(n *Node) {
		fired = append(fired, n.Data.(*item).id)
	}
	return New(cfg), &fired
}

func arm(w *Wheel, it *item, deadline time.Duration) {
	it.timer.Data = it
	w.Schedule(&it.timer, deadline)
}

func TestWheelFiresAtDeadline(t *testing.T) {
	w, fired := collect(t, Config{})
	items := make([]item, 3)
	for i := range items {
		items[i].id = i
	}
	arm(w, &items[0], 5*time.Millisecond)
	arm(w, &items[1], 20*time.Millisecond)
	arm(w, &items[2], 20*time.Millisecond)

	if n := w.Advance(4 * time.Millisecond); n != 0 {
		t.Fatalf("fired %d nodes before any deadline", n)
	}
	if n := w.Advance(5 * time.Millisecond); n != 1 {
		t.Fatalf("Advance(5ms) fired %d, want 1", n)
	}
	if len(*fired) != 1 || (*fired)[0] != 0 {
		t.Fatalf("fired = %v, want [0]", *fired)
	}
	if items[0].timer.Armed() {
		t.Fatal("fired node still armed")
	}
	// A single advance covering both remaining deadlines fires both.
	if n := w.Advance(time.Second); n != 2 {
		t.Fatalf("Advance(1s) fired %d, want 2", n)
	}
	if st := w.Stats(); st.Expiries != 3 {
		t.Fatalf("Expiries = %d, want 3", st.Expiries)
	}
}

// TestWheelCascadeBoundaries arms deadlines straddling every level span
// boundary and checks each fires exactly when the clock passes it — the
// cascade re-files nodes downward rather than firing a whole upper slot at
// once.
func TestWheelCascadeBoundaries(t *testing.T) {
	w, _ := collect(t, Config{})
	tick := w.Tick()
	slots := int64(DefaultSlots)
	// Level spans in ticks: 64, 64², 64³. Probe each boundary ± 1 tick.
	var deadlines []time.Duration
	for _, span := range []int64{slots, slots * slots, slots * slots * slots} {
		for _, d := range []int64{span - 1, span, span + 1} {
			deadlines = append(deadlines, time.Duration(d)*tick)
		}
	}
	items := make([]item, len(deadlines))
	for i := range items {
		items[i].id = i
		arm(w, &items[i], deadlines[i])
	}
	for i, d := range deadlines {
		if w.Now() < d-tick {
			if n := w.Advance(d - tick); n != 0 {
				t.Fatalf("deadline %v: %d nodes fired a tick early", d, n)
			}
		}
		if items[i].timer.Armed() == false {
			t.Fatalf("deadline %v fired before the clock reached it", d)
		}
		if n := w.Advance(d); n != 1 {
			t.Fatalf("Advance(%v) fired %d, want exactly 1", d, n)
		}
	}
	st := w.Stats()
	if len(st.Cascades) != DefaultLevels-1 {
		t.Fatalf("Cascades has %d levels, want %d", len(st.Cascades), DefaultLevels-1)
	}
	// The 64²- and 64³-tick deadlines must have travelled through upper
	// levels.
	if st.Cascades[0] == 0 || st.Cascades[1] == 0 {
		t.Fatalf("cascade counters = %v, want levels 1 and 2 exercised", st.Cascades)
	}
}

func TestWheelRearm(t *testing.T) {
	w, fired := collect(t, Config{})
	it := &item{id: 7}
	arm(w, it, 10*time.Millisecond)
	// Push the deadline out (the touch path re-arms on every packet).
	w.Schedule(&it.timer, 50*time.Millisecond)
	if n := w.Advance(40 * time.Millisecond); n != 0 {
		t.Fatalf("stale deadline fired after re-arm (%d nodes)", n)
	}
	// Pull it back in.
	w.Schedule(&it.timer, 45*time.Millisecond)
	if n := w.Advance(45 * time.Millisecond); n != 1 {
		t.Fatalf("re-armed node did not fire at new deadline (%d fired)", n)
	}
	if n := w.Advance(time.Second); n != 0 {
		t.Fatalf("node fired twice after re-arms (%d extra)", n)
	}
	if len(*fired) != 1 {
		t.Fatalf("fired = %v, want exactly one firing", *fired)
	}
}

func TestWheelDisarm(t *testing.T) {
	w, fired := collect(t, Config{})
	items := make([]item, 3)
	for i := range items {
		items[i].id = i
		arm(w, &items[i], 10*time.Millisecond)
	}
	items[1].timer.Unlink()
	items[1].timer.Unlink() // idempotent
	var never Node
	never.Unlink() // safe on a node that was never armed
	if n := w.Advance(time.Second); n != 2 {
		t.Fatalf("Advance fired %d, want 2 (one disarmed)", n)
	}
	for _, id := range *fired {
		if id == 1 {
			t.Fatal("disarmed node fired")
		}
	}
}

// TestWheelLapWraparound drives the clock through several full level-0 laps,
// arming between laps: a slot index reused across laps must only fire the
// nodes due in the current lap.
func TestWheelLapWraparound(t *testing.T) {
	w, fired := collect(t, Config{})
	tick := w.Tick()
	lap := time.Duration(DefaultSlots) * tick
	items := make([]item, 5)
	for l := 0; l < len(items); l++ {
		items[l].id = l
		// Same level-0 slot index every lap (deadline ≡ 10 ticks mod 64).
		arm(w, &items[l], time.Duration(l)*lap+10*tick)
	}
	for l := 0; l < len(items); l++ {
		due := time.Duration(l)*lap + 10*tick
		if w.Now() < due-tick {
			if n := w.Advance(due - tick); n != 0 {
				t.Fatalf("lap %d: fired %d early", l, n)
			}
		}
		if n := w.Advance(due); n != 1 {
			t.Fatalf("lap %d: Advance fired %d, want 1", l, n)
		}
		if (*fired)[len(*fired)-1] != l {
			t.Fatalf("lap %d: fired %v out of lap order", l, *fired)
		}
	}
}

// TestWheelHorizonClamp: a deadline past the wheel's span fires at the
// horizon instead of being lost.
func TestWheelHorizonClamp(t *testing.T) {
	w, fired := collect(t, Config{Slots: 4, Levels: 2}) // horizon: 15 ticks
	it := &item{id: 1}
	arm(w, it, time.Hour)
	if n := w.Advance(w.Horizon() - w.Tick()); n != 0 {
		t.Fatalf("clamped node fired %d before the horizon", n)
	}
	if n := w.Advance(w.Horizon() + w.Tick()); n != 1 {
		t.Fatalf("clamped node did not fire at the horizon (fired %d)", n)
	}
	if len(*fired) != 1 || (*fired)[0] != 1 {
		t.Fatalf("fired = %v, want [1]", *fired)
	}
}

// TestWheelRelinkAfterCopy simulates cuckoo displacement: an armed entry is
// copied to another cell, Relink repairs the list, the stale source is
// zeroed without Unlink — and the wheel fires the relocated copy.
func TestWheelRelinkAfterCopy(t *testing.T) {
	var got *item
	w := New(Config{OnExpire: func(n *Node) { got = n.Data.(*item) }})
	cells := make([]item, 4)
	cells[0].id = 100
	arm(w, &cells[0], 30*time.Millisecond)

	// The container's relocation path: copy, repoint Data, Relink, zero src.
	cells[3] = cells[0]
	cells[3].timer.Data = &cells[3]
	cells[3].timer.Relink()
	cells[0] = item{}

	if n := w.Advance(time.Second); n != 1 {
		t.Fatalf("relocated node fired %d times, want 1", n)
	}
	if got != &cells[3] {
		t.Fatal("expiry callback saw the stale cell, not the relocated one")
	}
}

// TestWheelPastDeadlineFiresNext: a deadline at or before the wheel's
// current time fires on the next advancing tick, never silently parks.
func TestWheelPastDeadlineFiresNext(t *testing.T) {
	w, _ := collect(t, Config{})
	w.Advance(100 * time.Millisecond)
	it := &item{id: 1}
	arm(w, it, 50*time.Millisecond) // already past
	if n := w.Advance(100*time.Millisecond + w.Tick()); n != 1 {
		t.Fatalf("past deadline fired %d on next tick, want 1", n)
	}
}
