// Package timerwheel implements the hierarchical timing wheel the flow
// table's per-entry expiry runs on — the reproduction's analogue of
// NDN-DPDK's MinTmr (container/mintmr), where every PIT entry embeds an
// intrusive timer node and a per-forwarder wheel fires exact per-entry
// deadlines in O(1).
//
// The wheel is hashed-hierarchical (Varghese & Lauck scheme, the shape the
// Linux kernel and DPDK timer libraries use): L levels of 2^s slots each,
// level l spanning 2^(s·l) ticks per slot, so a deadline up to
// 2^(s·L) ticks out files in exactly one slot. Arming, disarming, and
// firing are O(1); advancing costs one slot visit per elapsed tick plus a
// cascade whenever a level wraps, which re-files each parked node one
// level down — O(expired + cascaded) total, independent of how many
// timers are armed.
//
// Nodes are intrusive: the caller embeds a Node inside its own entry
// struct and the wheel links nodes into per-slot circular lists through
// sentinel headers, so steady-state arm/advance/expire never allocates.
// Because embedding structs may relocate (the cuckoo flow table moves
// entries between cells during displacement), Node.Relink repairs the
// neighbour pointers after a memmove — the one operation a
// pointer-intrusive list needs to survive value copies.
//
// The wheel runs on the caller's clock — packet time here, never wall
// clock — so expiry is deterministic for a given packet sequence and
// advance schedule, exactly like the flow-table sweep it replaces.
package timerwheel

import (
	"fmt"
	"time"
)

// Default geometry: 4 levels of 64 slots at a 1ms tick span deadlines from
// 1ms to ~4.6h — wider than any flow lifetime the dataplane arms — while
// keeping the whole wheel at 256 slot headers.
const (
	// DefaultTick is the level-0 slot granularity.
	DefaultTick = time.Millisecond
	// DefaultSlots is the per-level slot count (must be a power of two).
	DefaultSlots = 64
	// DefaultLevels is the level count. Fixed-size per-level counters in
	// callers (dataplane.Stats.WheelCascades) are sized by it.
	DefaultLevels = 4
)

// Node is one intrusive timer. Embed it in the timed entry; the zero value
// is an unarmed node. A node must not be copied while armed except through
// the owning container's relocation path, which must call Relink on the
// copy (and never touch the stale source).
type Node struct {
	next, prev *Node
	// due is the absolute tick the node fires at (0 while unarmed).
	due int64
	// Data is an opaque back-pointer from the node to its embedding entry,
	// set by the container at claim time. Pointer payloads keep arming
	// allocation-free (a pointer-to-interface conversion does not allocate).
	Data any
}

// Armed reports whether the node is currently linked into a wheel.
//
//splidt:hotpath
func (n *Node) Armed() bool { return n.next != nil }

// Unlink disarms the node: it splices itself out of its slot list and
// zeroes its links. Safe (a no-op) on an unarmed node, so every store
// free path can call it unconditionally. O(1), needs no wheel reference —
// which is what lets the flow table disarm entries it reclaims without
// holding the wheel that armed them.
//
//splidt:hotpath
func (n *Node) Unlink() {
	if n.next == nil {
		return
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.next, n.prev = nil, nil
	n.due = 0
}

// Relink repairs the slot list after the embedding entry was copied to a
// new address (cuckoo displacement): the copy carries valid next/prev
// pointers, but the neighbours still point at the stale source. Call it on
// the copy; the stale source must then be zeroed without Unlink (its links
// now belong to the copy). A no-op for unarmed nodes.
//
//splidt:hotpath
func (n *Node) Relink() {
	if n.next == nil {
		return
	}
	n.prev.next = n
	n.next.prev = n
}

// Deadline returns the absolute expiry time the node was last armed with,
// or 0 if unarmed.
func (n *Node) Deadline(tick time.Duration) time.Duration {
	return time.Duration(n.due) * tick
}

// Config sizes a wheel.
type Config struct {
	// Tick is the level-0 slot granularity (default DefaultTick).
	Tick time.Duration
	// Slots is the per-level slot count; must be a power of two
	// (default DefaultSlots).
	Slots int
	// Levels is the hierarchy depth (default DefaultLevels).
	Levels int
	// OnExpire fires for every node whose deadline passes during Advance.
	// The node is already unlinked when the callback runs, so the callback
	// may free or rearm it. Required.
	OnExpire func(*Node)
}

// Stats are the wheel's monotone event counters.
type Stats struct {
	// Expiries counts nodes fired by Advance.
	Expiries int
	// Cascades[l-1] counts nodes re-filed out of level l when that level's
	// window wrapped (l in 1..Levels-1; level 0 nodes fire, never cascade).
	Cascades []int
}

// Wheel is one hierarchical timing wheel. Not safe for concurrent use: like
// the flow table it times, each wheel is owned by a single shard worker.
type Wheel struct {
	tick     time.Duration
	shift    uint  // log2(slots)
	mask     int64 // slots - 1
	levels   int
	slots    []Node // levels × 2^shift sentinel headers, flat
	cur      int64  // current tick: Advance has processed every tick <= cur
	expire   func(*Node)
	expiries int
	cascades []int
}

// New builds a wheel. The zero time is tick 0; the first Advance may jump
// the wheel arbitrarily far forward.
func New(cfg Config) *Wheel {
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Slots&(cfg.Slots-1) != 0 {
		panic(fmt.Sprintf("timerwheel: slot count %d not a power of two", cfg.Slots))
	}
	if cfg.Levels <= 0 {
		cfg.Levels = DefaultLevels
	}
	if cfg.OnExpire == nil {
		panic("timerwheel: OnExpire callback required")
	}
	shift := uint(0)
	for 1<<shift < cfg.Slots {
		shift++
	}
	if shift*uint(cfg.Levels) > 62 {
		panic("timerwheel: tick span overflows int64")
	}
	w := &Wheel{
		tick:     cfg.Tick,
		shift:    shift,
		mask:     int64(cfg.Slots - 1),
		levels:   cfg.Levels,
		slots:    make([]Node, cfg.Levels*cfg.Slots),
		expire:   cfg.OnExpire,
		cascades: make([]int, cfg.Levels-1),
	}
	for i := range w.slots {
		s := &w.slots[i]
		s.next, s.prev = s, s
	}
	return w
}

// Tick returns the wheel's level-0 granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Now returns the wheel's current time, quantised to ticks.
func (w *Wheel) Now() time.Duration { return time.Duration(w.cur) * w.tick }

// Horizon returns the furthest deadline the wheel can file without
// clamping (deadlines past it fire at the horizon instead — the dataplane
// re-arms entries on every touch, so a clamped deadline only ever fires
// early on a flow that went quiet for the whole horizon anyway).
func (w *Wheel) Horizon() time.Duration {
	return time.Duration(int64(1)<<(w.shift*uint(w.levels))-1) * w.tick
}

// Stats returns a copy of the wheel's counters.
func (w *Wheel) Stats() Stats {
	return Stats{Expiries: w.expiries, Cascades: append([]int(nil), w.cascades...)}
}

// slot returns the sentinel of (level, index).
//
//splidt:hotpath
func (w *Wheel) slot(level int, idx int64) *Node {
	return &w.slots[int64(level)<<w.shift+idx]
}

// Schedule arms (or re-arms) the node to fire once the wheel advances past
// deadline. A deadline at or before the wheel's current time fires on the
// next Advance that moves time forward. O(1); never allocates.
//
//splidt:hotpath
func (w *Wheel) Schedule(n *Node, deadline time.Duration) {
	n.Unlink()
	// Ceiling tick: the node must not fire before its deadline has fully
	// passed on the caller's clock.
	due := int64((deadline + w.tick - 1) / w.tick)
	if due <= w.cur {
		due = w.cur + 1
	}
	n.due = due
	w.place(n)
}

// place files a node by its absolute due tick: level l holds nodes due
// within (slots^l, slots^(l+1)] ticks, slot index is the due tick's level-l
// digit. Deadlines past the horizon clamp into the top level.
//
//splidt:hotpath
func (w *Wheel) place(n *Node) {
	dt := n.due - w.cur
	maxDt := int64(1) << (w.shift * uint(w.levels))
	if dt >= maxDt {
		n.due = w.cur + maxDt - 1
		dt = maxDt - 1
	}
	level := 0
	for dt >= int64(1)<<(w.shift*uint(level+1)) {
		level++
	}
	s := w.slot(level, (n.due>>(w.shift*uint(level)))&w.mask)
	n.prev = s
	n.next = s.next
	s.next.prev = n
	s.next = n
}

// Advance moves the wheel's clock to now, firing every node whose deadline
// has passed, and returns how many fired. Cost is one (usually empty) slot
// visit per elapsed tick plus O(1) per expired or cascaded node — O(expired)
// for the dense advance schedules the engine drives (one call per burst).
// now below the current wheel time is a no-op: the clock is monotone, like
// the packet-time clock that drives it.
//
//splidt:hotpath
func (w *Wheel) Advance(now time.Duration) int {
	target := int64(now / w.tick)
	fired := 0
	for w.cur < target {
		w.cur++
		// Cascade every level whose window wraps at this tick, lowest
		// first. Nodes re-file strictly below their source level (their
		// remaining delta is now under the level's span), or fire here if
		// their due tick is the current one.
		for l := 1; l < w.levels; l++ {
			if w.cur&(int64(1)<<(w.shift*uint(l))-1) != 0 {
				break
			}
			fired += w.cascade(l)
		}
		fired += w.fire(w.slot(0, w.cur&w.mask))
	}
	return fired
}

// cascade empties the level's current slot, re-filing each node downward
// (or firing it when its due tick is exactly now).
//
//splidt:hotpath
func (w *Wheel) cascade(level int) int {
	s := w.slot(level, (w.cur>>(w.shift*uint(level)))&w.mask)
	fired := 0
	for s.next != s {
		n := s.next
		due := n.due // Unlink zeroes the due tick; keep it for re-filing
		n.Unlink()
		w.cascades[level-1]++
		if due <= w.cur {
			w.expiries++
			fired++
			w.expire(n) //splidt:allow funcval — OnExpire callback; the dataplane's expire is itself //splidt:hotpath
			continue
		}
		n.due = due
		w.place(n)
	}
	return fired
}

// fire empties a level-0 slot. Every node in it is due exactly now: level-0
// residents always have distinct slot indices per due tick, so no
// lap check is needed.
//
//splidt:hotpath
func (w *Wheel) fire(s *Node) int {
	fired := 0
	for s.next != s {
		n := s.next
		n.Unlink()
		w.expiries++
		fired++
		w.expire(n) //splidt:allow funcval — OnExpire callback; the dataplane's expire is itself //splidt:hotpath
	}
	return fired
}
