package flight

import (
	"sync"
	"testing"
	"time"
)

func TestDepthRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultDepth}, {-3, DefaultDepth}, {1, 1}, {2, 2}, {3, 4},
		{255, 256}, {256, 256}, {257, 512},
	} {
		if got := New(tc.in).Depth(); got != tc.want {
			t.Errorf("New(%d).Depth() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestOverwriteOldest(t *testing.T) {
	r := New(8)
	for i := 1; i <= 20; i++ {
		r.Record(KindBurstStart, time.Duration(i), int64(i), int64(-i))
	}
	evs := r.Snapshot(nil)
	if len(evs) != 8 {
		t.Fatalf("snapshot has %d events, want 8", len(evs))
	}
	for j, ev := range evs {
		want := uint64(13 + j) // last 8 of 20
		if ev.Seq != want {
			t.Errorf("event %d: seq %d, want %d", j, ev.Seq, want)
		}
		if ev.Kind != KindBurstStart || ev.A != int64(ev.Seq) || ev.B != -int64(ev.Seq) || ev.TS != time.Duration(ev.Seq) {
			t.Errorf("event %d decoded inconsistently: %+v", j, ev)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	r := New(4)
	if evs := r.Snapshot(nil); len(evs) != 0 {
		t.Fatalf("empty ring snapshot returned %d events", len(evs))
	}
}

func TestSnapshotReusesBuffer(t *testing.T) {
	r := New(4)
	r.Record(KindSweep, 1, 2, 3)
	buf := make([]Event, 0, 8)
	evs := r.Snapshot(buf)
	if len(evs) != 1 || cap(evs) != 8 {
		t.Fatalf("snapshot into recycled buffer: len=%d cap=%d", len(evs), cap(evs))
	}
}

// TestConcurrentSnapshot hammers one writer against one reader; every
// event a snapshot returns must be internally consistent (payload derived
// from its seq), pinning the invalidate/publish protocol under -race.
func TestConcurrentSnapshot(t *testing.T) {
	r := New(16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= 50000; i++ {
			r.Record(KindBurstEnd, time.Duration(i), int64(i), int64(2*i))
		}
	}()
	var buf []Event
	for {
		buf = r.Snapshot(buf[:0])
		for _, ev := range buf {
			if ev.Kind != KindBurstEnd || ev.A != int64(ev.Seq) || ev.B != 2*int64(ev.Seq) {
				t.Fatalf("torn event escaped validation: %+v", ev)
			}
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

// TestMultiWriter pins the fetch-add claim: concurrent writers (the shard
// worker plus the watchdog, in the engine) never lose or duplicate
// positions.
func TestMultiWriter(t *testing.T) {
	r := New(64)
	const writers, per = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(KindWatchdog, 0, 1, 0)
			}
		}()
	}
	wg.Wait()
	if got := r.cur.Load(); got != writers*per {
		t.Fatalf("cursor at %d after %d records", got, writers*per)
	}
	evs := r.Snapshot(nil)
	if len(evs) != 64 {
		t.Fatalf("snapshot has %d events, want full ring 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs after quiescence: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindBurstStart: "burst-start", KindQuarantine: "quarantine",
		Kind(200): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := New(8)
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(KindBurstStart, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("Record allocates %v per call", n)
	}
}
