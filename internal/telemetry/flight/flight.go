// Package flight is the engine's per-shard flight recorder: a fixed-size,
// allocation-free, overwrite-oldest event ring written from the shard
// worker's burst loop and snapshotted lock-free by the management plane.
//
// The ring exists for two consumers. Live, the telemetry server serves it
// at /flightrecorder so an operator can see what a shard was doing moments
// ago (burst cadence, sweep reclaims, eviction batches, epoch adoptions,
// watchdog flags). Post-mortem, the engine's quarantine fence snapshots it
// into ShardPanicError, so every shard panic ships the last ~256 events
// preceding the fault instead of vanishing with the goroutine.
//
// Write protocol. Every slot field is an atomic; a writer claims a global
// position with a fetch-add on the cursor, invalidates the slot (seq←0),
// stores the payload fields, then publishes by storing seq←position+1.
// The fetch-add claim makes the rare non-worker writers (the session
// watchdog flagging a stall, the panic fence recording the quarantine
// itself) safe alongside the shard worker without giving the worker's fast
// path anything heavier than one uncontended atomic add. A reader accepts
// a slot only if seq matches the expected position both before and after
// loading the payload, so a snapshot taken mid-write drops the torn entry
// rather than reporting a frankenstein event. The only way a stale entry
// could pass both checks is a writer stalled for an exact multiple of a
// full lap around the ring — accepted as harmlessly improbable for a
// diagnostic stream.
//
// This package sits below internal/engine (the engine embeds a Ring per
// shard) and therefore imports nothing from the module.
package flight

import (
	"sync/atomic"
	"time"
)

// Kind classifies a recorded event. The zero value is reserved so an
// unpublished slot can never decode as a real event kind.
type Kind uint8

// The event kinds, with the meaning of the A/B payload fields for each.
const (
	// KindNone marks an unwritten slot; never returned by Snapshot.
	KindNone Kind = iota
	// KindBurstStart: the worker dequeued a burst. A = packets in the
	// burst, B = the shard's live deploy epoch.
	KindBurstStart
	// KindBurstEnd: the burst completed and stats published. A = packets
	// processed, B = digests emitted so far (cumulative).
	KindBurstEnd
	// KindSweep: a flow-table ageing sweep (or timer-wheel advance)
	// reclaimed state. A = entries reclaimed. Recorded only when A > 0;
	// per-burst no-op sweeps would drown everything else.
	KindSweep
	// KindEvict: a drained eviction batch (controller block decisions)
	// was applied. A = entries actually freed, B = batch size requested.
	KindEvict
	// KindAdopt: the shard adopted a pending deployment at a burst
	// boundary. A = the new deploy epoch.
	KindAdopt
	// KindWatchdog: the session watchdog flipped this shard's health.
	// A = 1 flagged degraded (backlog with no progress), 0 recovered.
	KindWatchdog
	// KindQuarantine: the worker panicked and the recover fence
	// quarantined the shard. A = packets dropped from the fatal burst.
	// Always the final event a shard records.
	KindQuarantine
)

var kindNames = [...]string{
	KindNone:       "none",
	KindBurstStart: "burst-start",
	KindBurstEnd:   "burst-end",
	KindSweep:      "sweep",
	KindEvict:      "evict",
	KindAdopt:      "adopt",
	KindWatchdog:   "watchdog",
	KindQuarantine: "quarantine",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// DefaultDepth is the ring depth used when the engine config leaves the
// flight-recorder knob at zero: enough history to reconstruct several
// thousand packets of context ahead of a quarantine, small enough that
// per-shard cost is a few KB.
const DefaultDepth = 256

// Event is one decoded flight-recorder entry as returned by Snapshot.
type Event struct {
	// Seq is the global record position (1-based, monotone per ring).
	// Gaps in a snapshot mean the writer lapped the reader mid-walk.
	Seq uint64
	// Kind says what happened; A and B are payload whose meaning is
	// documented per kind.
	Kind Kind
	// TS is the recording shard's packet-time clock at the event (the
	// highest packet timestamp it had swept to), not wall time.
	TS time.Duration
	A  int64
	B  int64
}

// slot is one ring cell. Every field is an atomic so concurrent
// Record/Snapshot stay exact under the race detector; seq doubles as the
// publication flag (0 = mid-write).
type slot struct {
	seq  atomic.Uint64
	kind atomic.Uint32
	ts   atomic.Int64
	a    atomic.Int64
	b    atomic.Int64
}

// Ring is a fixed-depth overwrite-oldest event log. One writer is expected
// to dominate (the shard worker), but any goroutine may Record; Snapshot
// never blocks either side.
type Ring struct {
	cur   atomic.Uint64
	mask  uint64
	slots []slot
}

// New builds a ring holding the last depth events, rounded up to a power
// of two; depth <= 0 selects DefaultDepth. All memory is allocated here —
// Record never allocates.
func New(depth int) *Ring {
	if depth <= 0 {
		depth = DefaultDepth
	}
	n := 1
	for n < depth {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Depth returns the ring's capacity in events.
func (r *Ring) Depth() int { return len(r.slots) }

// Record appends one event, overwriting the oldest. Wait-free for the
// writer: one fetch-add to claim a position, five plain atomic stores to
// fill and publish the slot.
//
//splidt:hotpath
func (r *Ring) Record(k Kind, ts time.Duration, a, b int64) {
	pos := r.cur.Add(1)
	s := &r.slots[(pos-1)&r.mask]
	s.seq.Store(0) // invalidate: readers reject the slot until republished
	s.kind.Store(uint32(k))
	s.ts.Store(int64(ts))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(pos)
}

// Snapshot appends the ring's current contents to dst (oldest first) and
// returns the extended slice. Lock-free and safe against concurrent
// Record: entries being overwritten mid-read fail seq validation and are
// skipped, so every returned event is internally consistent. Pass a nil
// dst to allocate, or a recycled buffer to avoid it.
func (r *Ring) Snapshot(dst []Event) []Event {
	hi := r.cur.Load()
	n := uint64(len(r.slots))
	lo := uint64(1)
	if hi > n {
		lo = hi - n + 1
	}
	for pos := lo; pos <= hi; pos++ {
		s := &r.slots[(pos-1)&r.mask]
		if s.seq.Load() != pos {
			continue // unpublished, torn, or already lapped
		}
		ev := Event{
			Seq:  pos,
			Kind: Kind(s.kind.Load()),
			TS:   time.Duration(s.ts.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
		}
		if s.seq.Load() != pos {
			continue // overwritten while we were reading the payload
		}
		dst = append(dst, ev)
	}
	return dst
}
