package telemetry

// The time-series sampler: a wall-clock ticker polling Snapshot()/Health()
// — both read only published atomics — and deriving the rates /metrics
// serves as first-class gauges. Entirely off the hot path: the workers
// never see the sampler, and a scrape reads the precomputed last sample
// instead of differentiating on demand.

import (
	"sync"
	"time"

	"splidt/internal/engine"
)

// Sample is one sampler observation.
type Sample struct {
	// At is the wall-clock sample time.
	At time.Time `json:"at"`
	// PktsPerSec / DigestsPerSec / EvictionsPerSec are deltas of the
	// session's cumulative counters over the sampling interval.
	PktsPerSec      float64 `json:"pkts_per_sec"`
	DigestsPerSec   float64 `json:"digests_per_sec"`
	EvictionsPerSec float64 `json:"evictions_per_sec"`
	// ActiveFlows is the occupied-slot gauge at the sample.
	ActiveFlows int `json:"active_flows"`
	// Backlog is the number of bursts queued across shard input rings.
	Backlog int `json:"backlog"`
	// Lag is fed-but-unaccounted packets: Fed minus processed, dropped,
	// quarantine-drained, and discarded — the in-flight/queued depth a
	// stalling worker lets grow.
	Lag int64 `json:"lag_packets"`
}

type sampler struct {
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	mu   sync.Mutex
	buf  []Sample // ring: next points at the oldest once full
	next int
	full bool

	// prev anchors the rate deltas; reset when the bound session changes
	// (a new session's counters restart from zero).
	prevSess *engine.Session
	prevSnap engine.Snapshot
	prevAt   time.Time
}

func newSampler(interval time.Duration, depth int) *sampler {
	return &sampler{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		buf:      make([]Sample, 0, depth),
	}
}

// run polls until close. Owned by Serve's goroutine.
func (m *sampler) run(srv *Server) {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			sess := srv.session()
			if sess == nil {
				m.mu.Lock()
				m.prevSess = nil
				m.mu.Unlock()
				continue
			}
			snap := sess.Snapshot()
			h := sess.Health()
			m.observe(sess, snap, h, now)
		}
	}
}

func (m *sampler) observe(sess *engine.Session, snap engine.Snapshot, h engine.Health, now time.Time) {
	backlog := 0
	for _, sh := range h.Shards {
		backlog += sh.Backlog
	}
	sm := Sample{
		At:          now,
		ActiveFlows: snap.ActiveFlows,
		Backlog:     backlog,
		Lag:         snap.Fed - int64(snap.Stats.Packets) - snap.Dropped - snap.QuarantineDropped - snap.DiscardedStaged,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prevSess == sess {
		if dt := now.Sub(m.prevAt).Seconds(); dt > 0 {
			sm.PktsPerSec = float64(snap.Stats.Packets-m.prevSnap.Stats.Packets) / dt
			sm.DigestsPerSec = float64(snap.Stats.Digests-m.prevSnap.Stats.Digests) / dt
			sm.EvictionsPerSec = float64(snap.Stats.Evictions-m.prevSnap.Stats.Evictions) / dt
		}
	}
	m.prevSess, m.prevSnap, m.prevAt = sess, snap, now
	if len(m.buf) < cap(m.buf) {
		m.buf = append(m.buf, sm)
		return
	}
	m.buf[m.next] = sm
	m.next = (m.next + 1) % len(m.buf)
	m.full = true
}

// last returns the most recent sample.
func (m *sampler) last() (Sample, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.buf) == 0 {
		return Sample{}, false
	}
	i := m.next - 1
	if !m.full && m.next == 0 {
		i = len(m.buf) - 1
	}
	if i < 0 {
		i = len(m.buf) - 1
	}
	return m.buf[i], true
}

// series returns all retained samples, oldest first.
func (m *sampler) series() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, 0, len(m.buf))
	if m.full {
		out = append(out, m.buf[m.next:]...)
		out = append(out, m.buf[:m.next]...)
	} else {
		out = append(out, m.buf...)
	}
	return out
}

func (m *sampler) close() {
	close(m.stop)
	<-m.done
}
