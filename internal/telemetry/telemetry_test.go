package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// deployCfg trains and compiles a small model once (the same fixture shape
// the engine and loadgen tests use) and re-slices it per call.
var (
	deployOnce sync.Once
	deployBase dataplane.Config
)

func deployCfg(t testing.TB, slots int) dataplane.Config {
	t.Helper()
	deployOnce.Do(func() {
		flows := trace.Generate(trace.D3, 400, 33)
		samples := trace.BuildSamples(flows, 3)
		train, _ := trace.Split(samples, 0.7)
		m, err := core.Train(train, core.Config{
			Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13,
		})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		c, err := rangemark.Compile(m)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		deployBase = dataplane.Config{Profile: resources.Tofino1(), Model: m, Compiled: c}
	})
	cfg := deployBase
	cfg.FlowSlots = slots
	return cfg
}

func testPackets(t testing.TB, flows int) []pkt.Packet {
	t.Helper()
	return trace.Interleave(trace.Generate(trace.D3, flows, 7), 100*time.Microsecond)
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// settle waits until the session has accounted for every fed packet
// (processed, dropped, quarantine-drained, or discarded).
func settle(t *testing.T, s *engine.Session) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Snapshot()
		if int64(snap.Stats.Packets)+snap.Dropped+snap.QuarantineDropped+snap.DiscardedStaged == snap.Fed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session did not settle: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMetricsLiveSession(t *testing.T) {
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, 1<<16), Shards: 2, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := e.Start(context.Background(), engine.WithDigestLatency())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := startServer(t, Config{Engine: e, Session: sess})

	if err := sess.FeedAll(testPackets(t, 300)); err != nil {
		t.Fatal(err)
	}
	settle(t, sess)

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE splidt_packets_total counter",
		`splidt_packets_total{shard="0"} `,
		`splidt_packets_total{shard="1"} `,
		`splidt_packets_total{shard="all"} `,
		`splidt_wheel_cascades_total{shard="all",level="1"} `,
		"splidt_shards 2\n",
		"splidt_up 1\n",
		`splidt_shard_state{shard="0"} 0`,
		`splidt_shard_epoch{shard="1"} 0`,
		"splidt_active_flows ",
		"splidt_fed_packets_total ",
		"# TYPE splidt_digest_latency_seconds histogram",
		`splidt_digest_latency_seconds_bucket{le="+Inf"} `,
		`splidt_digest_latency_quantile_seconds{quantile="0.99"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The per-shard packet counts must sum to the shard="all" merge.
	re := regexp.MustCompile(`splidt_packets_total\{shard="(\w+)"\} (\d+)`)
	sum, all := 0, -1
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		n := 0
		for _, ch := range m[2] {
			n = n*10 + int(ch-'0')
		}
		if m[1] == "all" {
			all = n
		} else {
			sum += n
		}
	}
	if all < 0 || sum != all {
		t.Errorf("per-shard packets sum %d != shard=all %d", sum, all)
	}

	// Every non-comment line must parse as `name{labels} value`.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

func TestHealthzLifecycle(t *testing.T) {
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, 1<<16), Shards: 2, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Engine: e})

	// No session bound yet: 503, status no-session.
	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"no-session"`) {
		t.Fatalf("unbound healthz = %d %q", code, body)
	}

	sess, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv.SetSession(sess)

	code, body = get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy healthz = %d %q", code, body)
	}
	var resp struct {
		Status string `json:"status"`
		Shards []struct {
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if resp.Status != "ok" || len(resp.Shards) != 2 || resp.Shards[0].State != "running" {
		t.Fatalf("healthz body: %+v", resp)
	}
}

// TestHealthzQuarantine injects a worker panic and pins that /healthz flips
// to 503 with the quarantined shard and fault visible, /metrics reports
// splidt_up 0 and the shard state gauge, and /flightrecorder ships the
// shard's last events ending in the quarantine record.
func TestHealthzQuarantine(t *testing.T) {
	const panicShard = 1
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, 1<<16), Shards: 2, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	hooks := &engine.TestHooks{BeforePacket: func(shard int, _ *pkt.Packet) {
		if shard == panicShard && hits.Add(1) == 20 {
			panic("telemetry test fault")
		}
	}}
	sess, err := e.Start(context.Background(), engine.WithTestHooks(hooks))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := startServer(t, Config{Engine: e, Session: sess})

	if err := sess.FeedAll(testPackets(t, 300)); err != nil {
		t.Fatal(err)
	}
	settle(t, sess)

	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined healthz status = %d", code)
	}
	for _, want := range []string{`"degraded"`, `"quarantined"`, "panicked", "telemetry test fault"} {
		if !strings.Contains(body, want) {
			t.Errorf("quarantined healthz missing %q: %s", want, body)
		}
	}

	_, metricsBody := get(t, "http://"+srv.Addr()+"/metrics")
	for _, want := range []string{
		"splidt_up 0\n",
		`splidt_shard_state{shard="1"} 2`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q after quarantine", want)
		}
	}

	code, frBody := get(t, "http://"+srv.Addr()+"/flightrecorder?shard=1")
	if code != http.StatusOK {
		t.Fatalf("/flightrecorder status %d", code)
	}
	var fr struct {
		Shard  int `json:"shard"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(frBody), &fr); err != nil {
		t.Fatalf("flightrecorder JSON: %v", err)
	}
	if len(fr.Events) == 0 {
		t.Fatal("flight recorder empty after quarantine")
	}
	if last := fr.Events[len(fr.Events)-1].Kind; last != "quarantine" {
		t.Errorf("last event kind %q, want quarantine", last)
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, 1<<16), Shards: 2, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := startServer(t, Config{Engine: e, Session: sess})

	if err := sess.FeedAll(testPackets(t, 100)); err != nil {
		t.Fatal(err)
	}
	settle(t, sess)

	if code, _ := get(t, "http://"+srv.Addr()+"/flightrecorder?shard=9"); code != http.StatusBadRequest {
		t.Errorf("out-of-range shard status = %d, want 400", code)
	}
	code, body := get(t, "http://"+srv.Addr()+"/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/flightrecorder status %d", code)
	}
	var all struct {
		Shards []struct {
			Events []struct {
				Kind string `json:"kind"`
				Seq  uint64 `json:"seq"`
			} `json:"events"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &all); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if len(all.Shards) != 2 {
		t.Fatalf("dump has %d shards", len(all.Shards))
	}
	sawBurst := false
	for _, sh := range all.Shards {
		for _, ev := range sh.Events {
			if ev.Kind == "burst-start" || ev.Kind == "burst-end" {
				sawBurst = true
			}
		}
	}
	if !sawBurst {
		t.Error("no burst events recorded after traffic")
	}
}

func TestSamplerSeries(t *testing.T) {
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, 1<<16), Shards: 2, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := e.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := startServer(t, Config{
		Engine: e, Session: sess, SampleInterval: 5 * time.Millisecond, SeriesDepth: 16,
	})

	if err := sess.FeedAll(testPackets(t, 200)); err != nil {
		t.Fatal(err)
	}
	settle(t, sess)

	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Series()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no samples")
		}
		time.Sleep(5 * time.Millisecond)
	}
	samples := srv.Series()
	if len(samples) > 16 {
		t.Fatalf("series exceeds depth: %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At.Before(samples[i-1].At) {
			t.Fatal("series out of order")
		}
	}

	code, body := get(t, "http://"+srv.Addr()+"/series")
	if code != http.StatusOK {
		t.Fatalf("/series status %d", code)
	}
	var ser struct {
		IntervalNS int64    `json:"interval_ns"`
		Samples    []Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &ser); err != nil {
		t.Fatalf("/series JSON: %v", err)
	}
	if ser.IntervalNS != int64(5*time.Millisecond) || len(ser.Samples) == 0 {
		t.Fatalf("/series body: interval %d, %d samples", ser.IntervalNS, len(ser.Samples))
	}

	_, metricsBody := get(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(metricsBody, "splidt_pkts_per_second ") {
		t.Error("/metrics missing sampler rate gauges")
	}
}

func TestPprofMounted(t *testing.T) {
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, 1<<16), Shards: 1, Burst: 16, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Engine: e})
	code, body := get(t, "http://"+srv.Addr()+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline = %d, %d bytes", code, len(body))
	}
}
