package telemetry

// The /metrics writers. Each counter-struct writer is annotated
// //splidt:stats-complete, extending the statsmerge analyzer's merge
// contract to the telemetry export: adding a field to dataplane.Stats,
// engine.Snapshot, engine.ShardHealth, or controller.Stats without
// exporting it here fails `make vet` — the scrape can never silently
// trail the counter set.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"splidt/internal/controller"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/metrics"
)

// typeHeader is the unconditional family metadata, written once per
// scrape. Conditional families (latency, controller, rates) write their
// own headers next to their samples.
const typeHeader = `# TYPE splidt_packets_total counter
# TYPE splidt_control_packets_total counter
# TYPE splidt_digests_total counter
# TYPE splidt_collisions_total counter
# TYPE splidt_recirc_bytes_total counter
# TYPE splidt_evictions_total counter
# TYPE splidt_kicks_total counter
# TYPE splidt_stash_inserts_total counter
# TYPE splidt_wheel_expiries_total counter
# TYPE splidt_wheel_cascades_total counter
# TYPE splidt_shards gauge
# TYPE splidt_table_slots gauge
# TYPE splidt_table_occupancy_ratio gauge
`

// writeStats emits every dataplane.Stats counter under one label set
// (`shard="K"` per shard, `shard="all"` for the session merge — sum the
// per-shard series, not the family, when aggregating in PromQL).
//
//splidt:stats-complete dataplane.Stats
func writeStats(w io.Writer, labels string, st dataplane.Stats) {
	fmt.Fprintf(w, "splidt_packets_total{%s} %d\n", labels, st.Packets)
	fmt.Fprintf(w, "splidt_control_packets_total{%s} %d\n", labels, st.ControlPackets)
	fmt.Fprintf(w, "splidt_digests_total{%s} %d\n", labels, st.Digests)
	fmt.Fprintf(w, "splidt_collisions_total{%s} %d\n", labels, st.Collisions)
	fmt.Fprintf(w, "splidt_recirc_bytes_total{%s} %d\n", labels, st.RecircBytes)
	fmt.Fprintf(w, "splidt_evictions_total{%s} %d\n", labels, st.Evictions)
	fmt.Fprintf(w, "splidt_kicks_total{%s} %d\n", labels, st.Kicks)
	fmt.Fprintf(w, "splidt_stash_inserts_total{%s} %d\n", labels, st.StashInserts)
	fmt.Fprintf(w, "splidt_wheel_expiries_total{%s} %d\n", labels, st.WheelExpiries)
	for lvl, n := range st.WheelCascades {
		// Cascades re-file from level lvl+1 down to lvl — label by source.
		fmt.Fprintf(w, "splidt_wheel_cascades_total{%s,level=\"%d\"} %d\n", labels, lvl+1, n)
	}
}

// writeSnapshot emits the session-level view: per-shard Stats families,
// the shard="all" merge, and every session counter/gauge.
//
//splidt:stats-complete engine.Snapshot
func writeSnapshot(w io.Writer, snap engine.Snapshot) {
	for i := range snap.PerShard {
		writeStats(w, `shard="`+strconv.Itoa(i)+`"`, snap.PerShard[i])
	}
	writeStats(w, `shard="all"`, snap.Stats)
	fmt.Fprintf(w, "# TYPE splidt_active_flows gauge\nsplidt_active_flows %d\n", snap.ActiveFlows)
	fmt.Fprintf(w, "# TYPE splidt_fed_packets_total counter\nsplidt_fed_packets_total %d\n", snap.Fed)
	fmt.Fprintf(w, "# TYPE splidt_dropped_packets_total counter\nsplidt_dropped_packets_total %d\n", snap.Dropped)
	fmt.Fprintf(w, "# TYPE splidt_backpressure_total counter\nsplidt_backpressure_total %d\n", snap.Backpressure)
	fmt.Fprintf(w, "# TYPE splidt_blocked_flows gauge\nsplidt_blocked_flows %d\n", snap.BlockedFlows)
	fmt.Fprintf(w, "# TYPE splidt_stashed_flows gauge\nsplidt_stashed_flows %d\n", snap.StashedFlows)
	fmt.Fprintf(w, "# TYPE splidt_quarantine_dropped_total counter\nsplidt_quarantine_dropped_total %d\n", snap.QuarantineDropped)
	fmt.Fprintf(w, "# TYPE splidt_discarded_staged_total counter\nsplidt_discarded_staged_total %d\n", snap.DiscardedStaged)
}

// writeShardHealth emits one shard's health gauges. The numeric state
// follows engine.HealthState (0 running, 1 degraded, 2 quarantined).
//
//splidt:stats-complete engine.ShardHealth
func writeShardHealth(w io.Writer, shard int, sh engine.ShardHealth) {
	labels := `shard="` + strconv.Itoa(shard) + `"`
	fmt.Fprintf(w, "splidt_shard_state{%s} %d\n", labels, int32(sh.State))
	fmt.Fprintf(w, "splidt_shard_last_progress_seconds{%s} %s\n", labels,
		strconv.FormatFloat(sh.LastProgress.Seconds(), 'g', -1, 64))
	fmt.Fprintf(w, "splidt_shard_backlog{%s} %d\n", labels, sh.Backlog)
	fmt.Fprintf(w, "splidt_shard_quarantine_dropped{%s} %d\n", labels, sh.Dropped)
	fmt.Fprintf(w, "splidt_shard_epoch{%s} %d\n", labels, sh.Epoch)
}

// writeController emits the controller's verdict counters — the
// detect→block loop's observable half.
//
//splidt:stats-complete controller.Stats
func writeController(w io.Writer, cs controller.Stats) {
	fmt.Fprintf(w, "# TYPE splidt_controller_digests_total counter\nsplidt_controller_digests_total %d\n", cs.Digests)
	fmt.Fprintf(w, "# TYPE splidt_controller_flows gauge\nsplidt_controller_flows %d\n", cs.Flows)
	fmt.Fprintf(w, "# TYPE splidt_controller_verdicts_total counter\n")
	fmt.Fprintf(w, "splidt_controller_verdicts_total{action=\"allow\"} %d\n", cs.Allowed)
	fmt.Fprintf(w, "splidt_controller_verdicts_total{action=\"block\"} %d\n", cs.Blocked)
	fmt.Fprintf(w, "splidt_controller_verdicts_total{action=\"mirror\"} %d\n", cs.Mirrored)
	fmt.Fprintf(w, "# TYPE splidt_controller_mean_ttd_seconds gauge\nsplidt_controller_mean_ttd_seconds %s\n",
		strconv.FormatFloat(cs.MeanTTD.Seconds(), 'g', -1, 64))
}

// writeMetrics assembles the whole exposition.
func (s *Server) writeMetrics(w io.Writer) {
	io.WriteString(w, typeHeader)
	fmt.Fprintf(w, "splidt_shards %d\n", s.eng.Shards())
	tableCap := s.eng.TableCap()
	fmt.Fprintf(w, "splidt_table_slots %d\n", tableCap)
	active := s.eng.ActiveFlows()
	occ := 0.0
	if tableCap > 0 {
		occ = float64(active) / float64(tableCap)
	}
	fmt.Fprintf(w, "splidt_table_occupancy_ratio %s\n", strconv.FormatFloat(occ, 'g', -1, 64))

	sess := s.session()
	up := 0
	if sess != nil {
		h := sess.Health()
		if h.Err == nil {
			up = 1
		}
		fmt.Fprintf(w, "# TYPE splidt_shard_state gauge\n# TYPE splidt_shard_last_progress_seconds gauge\n# TYPE splidt_shard_backlog gauge\n# TYPE splidt_shard_quarantine_dropped gauge\n# TYPE splidt_shard_epoch gauge\n")
		for i, sh := range h.Shards {
			writeShardHealth(w, i, sh)
		}
		writeSnapshot(w, sess.Snapshot())
		if lat := sess.DigestLatency(); lat != nil {
			fmt.Fprintf(w, "# TYPE splidt_digest_latency_seconds histogram\n")
			lat.WriteProm(w, "splidt_digest_latency_seconds", "", metrics.PromDefaultBuckets)
			fmt.Fprintf(w, "# TYPE splidt_digest_latency_quantile_seconds gauge\n")
			lat.WriteQuantiles(w, "splidt_digest_latency_quantile_seconds", "")
		}
	}
	fmt.Fprintf(w, "# TYPE splidt_up gauge\nsplidt_up %d\n", up)

	if c := s.ctrl.Load(); c != nil {
		writeController(w, c.Stats())
	}
	if smp, ok := s.smp.last(); ok {
		fmt.Fprintf(w, "# TYPE splidt_pkts_per_second gauge\nsplidt_pkts_per_second %s\n",
			strconv.FormatFloat(smp.PktsPerSec, 'g', -1, 64))
		fmt.Fprintf(w, "# TYPE splidt_digests_per_second gauge\nsplidt_digests_per_second %s\n",
			strconv.FormatFloat(smp.DigestsPerSec, 'g', -1, 64))
		fmt.Fprintf(w, "# TYPE splidt_evictions_per_second gauge\nsplidt_evictions_per_second %s\n",
			strconv.FormatFloat(smp.EvictionsPerSec, 'g', -1, 64))
		fmt.Fprintf(w, "# TYPE splidt_feed_lag_packets gauge\nsplidt_feed_lag_packets %d\n", smp.Lag)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Build the page before writing: a panic mid-exposition must not leak
	// a truncated 200 to the scraper.
	var buf bytes.Buffer
	s.writeMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}
