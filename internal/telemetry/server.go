// Package telemetry is the engine's live management plane: a stdlib-only
// HTTP server exposing the running session's counters, health, and flight
// recorders while traffic flows.
//
// Endpoints:
//
//	/metrics         Prometheus text exposition — every dataplane.Stats and
//	                 engine.Snapshot counter (per-shard labels plus the
//	                 shard="all" merge), shard health/epoch gauges, flow-table
//	                 occupancy, the digest-latency histogram as cumulative
//	                 buckets + quantile gauges, controller verdict counters,
//	                 and sampler-derived rates (pkts/s, evictions/s, lag).
//	/healthz         Session.Health() as JSON; HTTP 503 when any shard is
//	                 degraded or quarantined (or no session is bound), so the
//	                 endpoint doubles as a load-balancer health probe.
//	/flightrecorder  JSON dump of the per-shard flight-recorder rings
//	                 (?shard=K for one shard), the live view of what each
//	                 worker was just doing.
//	/series          The sampler's bounded time series as JSON.
//	/debug/pprof/    Standard pprof handlers.
//
// All reads go through the engine's published-snapshot surfaces
// (Session.Snapshot, Session.Health, Engine.FlightLog, the pub pointers) —
// the server never touches worker-owned state, so scraping costs the hot
// path nothing beyond the atomics it already pays.
//
// Sessions come and go while the server stays up (the loadgen harness
// starts its session after the listener is bound), so the bound session is
// an atomic pointer: Serve with Config.Session, or bind later with
// SetSession.
package telemetry

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"splidt/internal/controller"
	"splidt/internal/engine"
	"splidt/internal/telemetry/flight"

	"sync/atomic"
)

// Config wires the server to the subsystems it exports.
type Config struct {
	// Engine is required: shard count, table capacity, flight recorders.
	Engine *engine.Engine
	// Session, when non-nil, is the session to export. Optional at Serve
	// time — bind or rebind later with SetSession (the harness creates its
	// session after the server is up).
	Session *engine.Session
	// Controller, when non-nil, adds the verdict counters (allow / block /
	// mirror, mean TTD) to /metrics. Rebindable via SetController.
	Controller *controller.Controller
	// SampleInterval is the sampler's polling period. Default 1s.
	SampleInterval time.Duration
	// SeriesDepth bounds the sampler's ring of retained samples.
	// Default 512.
	SeriesDepth int
}

// Server is a running management-plane server. Construct with Serve.
type Server struct {
	eng  *engine.Engine
	sess atomic.Pointer[engine.Session]
	ctrl atomic.Pointer[controller.Controller]
	smp  *sampler
	ln   net.Listener
	hs   *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port, see Addr) and
// starts serving the management plane in a background goroutine. The
// caller owns the returned server and must Close it.
func Serve(addr string, cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("telemetry: Config.Engine is required")
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Second
	}
	if cfg.SeriesDepth <= 0 {
		cfg.SeriesDepth = 512
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng: cfg.Engine,
		smp: newSampler(cfg.SampleInterval, cfg.SeriesDepth),
		ln:  ln,
	}
	if cfg.Session != nil {
		s.sess.Store(cfg.Session)
	}
	if cfg.Controller != nil {
		s.ctrl.Store(cfg.Controller)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: mux}
	go func() {
		// ErrServerClosed is the normal Close path; anything else already
		// surfaced to clients as failed requests.
		_ = s.hs.Serve(ln)
	}()
	go s.smp.run(s)
	return s, nil
}

// Addr returns the bound listen address — the resolved port when Serve was
// given ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetSession binds (or rebinds) the session the server exports. Safe at
// any time; a nil session unbinds (endpoints report no-session).
func (s *Server) SetSession(sess *engine.Session) { s.sess.Store(sess) }

// SetController binds (or rebinds) the controller whose verdict counters
// /metrics exports.
func (s *Server) SetController(c *controller.Controller) { s.ctrl.Store(c) }

// Series returns the sampler's retained samples, oldest first.
func (s *Server) Series() []Sample { return s.smp.series() }

// Close stops the sampler and shuts the HTTP server down, closing the
// listener. In-flight requests are aborted (this is a diagnostics plane,
// not a draining proxy).
func (s *Server) Close() error {
	s.smp.close()
	return s.hs.Close()
}

// session returns the currently bound session, nil when none.
func (s *Server) session() *engine.Session { return s.sess.Load() }

// healthzShard is one shard's entry in the /healthz body.
type healthzShard struct {
	Shard          int    `json:"shard"`
	State          string `json:"state"`
	LastProgressNS int64  `json:"last_progress_ns"`
	Backlog        int    `json:"backlog"`
	Dropped        int64  `json:"dropped"`
	Epoch          uint64 `json:"epoch"`
}

// healthzResponse is the /healthz body: "ok" (200) only when a session is
// bound, has no recorded fault, and every shard is running.
type healthzResponse struct {
	Status string         `json:"status"`
	Error  string         `json:"error,omitempty"`
	Shards []healthzShard `json:"shards,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	sess := s.session()
	if sess == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(healthzResponse{Status: "no-session"})
		return
	}
	h := sess.Health()
	resp := healthzResponse{Status: "ok", Shards: make([]healthzShard, len(h.Shards))}
	for i, sh := range h.Shards {
		resp.Shards[i] = healthzShard{
			Shard:          i,
			State:          sh.State.String(),
			LastProgressNS: int64(sh.LastProgress),
			Backlog:        sh.Backlog,
			Dropped:        sh.Dropped,
			Epoch:          sh.Epoch,
		}
		if sh.State != engine.ShardRunning {
			resp.Status = "degraded"
		}
	}
	if h.Err != nil {
		resp.Status = "degraded"
		resp.Error = h.Err.Error()
	}
	if resp.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// frEvent is one flight-recorder event in the /flightrecorder body.
type frEvent struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	TSNS int64  `json:"ts_ns"` // the shard's packet-time clock at the event
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

type frShard struct {
	Shard  int       `json:"shard"`
	Events []frEvent `json:"events"`
}

func frEvents(evs []flight.Event) []frEvent {
	out := make([]frEvent, len(evs))
	for i, ev := range evs {
		out[i] = frEvent{Seq: ev.Seq, Kind: ev.Kind.String(), TSNS: int64(ev.TS), A: ev.A, B: ev.B}
	}
	return out
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if q := r.URL.Query().Get("shard"); q != "" {
		shard, err := strconv.Atoi(q)
		if err != nil || shard < 0 || shard >= s.eng.Shards() {
			http.Error(w, "bad shard", http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(frShard{Shard: shard, Events: frEvents(s.eng.FlightLog(shard))})
		return
	}
	all := struct {
		Shards []frShard `json:"shards"`
	}{Shards: make([]frShard, s.eng.Shards())}
	for i := range all.Shards {
		all.Shards[i] = frShard{Shard: i, Events: frEvents(s.eng.FlightLog(i))}
	}
	json.NewEncoder(w).Encode(all)
}

func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		IntervalNS int64    `json:"interval_ns"`
		Samples    []Sample `json:"samples"`
	}{IntervalNS: int64(s.smp.interval), Samples: s.smp.series()})
}
