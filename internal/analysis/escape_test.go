package analysis

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// escapeRE matches one compiler escape diagnostic:
//
//	internal/pkt/pkt.go:117:6: p escapes to heap
var escapeRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):\d+: (.+ (?:escapes to heap|moved to heap).*)$`)

// TestEscapeRegression is the escape-analysis regression harness: it runs
// the compiler with -gcflags=-m over the whole module, keeps only the
// "escapes to heap" / "moved to heap" diagnostics that land inside a
// //splidt:hotpath function, and compares that set against the golden list
// in testdata/escapes.golden.
//
// A new escape inside an annotated function fails the test — heap traffic
// crept onto a path the suite pins to zero allocations. A golden entry that
// no longer appears is only logged: deleting stale entries is routine
// maintenance, not a regression. Regenerate with
//
//	SPLIDT_UPDATE_ESCAPES=1 go test ./internal/analysis -run TestEscapeRegression
func TestEscapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short")
	}
	world, err := ParseAnnotated()
	if err != nil {
		t.Fatalf("ParseAnnotated: %v", err)
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}

	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m ./...: %v\n%s", err, out)
	}

	// Invert Spans into per-file line tables so each diagnostic resolves to
	// the annotated function containing it (if any).
	type span struct {
		beg, end int
		id       string
	}
	byFile := make(map[string][]span)
	for id, s := range world.Spans {
		rel, err := filepath.Rel(root, s.File)
		if err != nil {
			t.Fatalf("span file %s outside module root: %v", s.File, err)
		}
		byFile[rel] = append(byFile[rel], span{beg: s.Beg, end: s.End, id: id})
	}

	got := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		m := escapeRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		for _, s := range byFile[m[1]] {
			if line >= s.beg && line <= s.end {
				got[fmt.Sprintf("%s: %s", s.id, m[3])] = true
				break
			}
		}
	}

	golden := filepath.Join("testdata", "escapes.golden")
	if os.Getenv("SPLIDT_UPDATE_ESCAPES") != "" {
		var lines []string
		for e := range got {
			lines = append(lines, e)
		}
		sort.Strings(lines)
		body := "# Known heap escapes inside //splidt:hotpath functions, one per\n" +
			"# line as \"funcID: compiler message\". Every entry needs a matching\n" +
			"# //splidt:allow justification in the source; the consolidated\n" +
			"# AllocsPerRun suite proves none of them fire on the steady-state\n" +
			"# path. Regenerate: SPLIDT_UPDATE_ESCAPES=1 go test ./internal/analysis -run TestEscapeRegression\n"
		if len(lines) > 0 {
			body += strings.Join(lines, "\n") + "\n"
		}
		if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("wrote %s (%d entries)", golden, len(lines))
		return
	}

	want := make(map[string]bool)
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with SPLIDT_UPDATE_ESCAPES=1 to create): %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want[line] = true
	}

	var unexpected []string
	for e := range got {
		if !want[e] {
			unexpected = append(unexpected, e)
		}
	}
	sort.Strings(unexpected)
	for _, e := range unexpected {
		t.Errorf("new heap escape in a //splidt:hotpath function:\n  %s", e)
	}
	var stale []string
	for e := range want {
		if !got[e] {
			stale = append(stale, e)
		}
	}
	sort.Strings(stale)
	for _, e := range stale {
		t.Logf("golden entry no longer reported (safe to delete): %s", e)
	}
}
