package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Fixture loading: the analysistest-style golden harness. A fixture is one
// directory of Go files forming a single package; expectations are trailing
//
//	// want `regex` `regex...`
//
// comments on the lines where diagnostics must land. Each regex is matched
// against the rendered finding "[analyzer/category] message"; every
// diagnostic must be claimed by a want and every want must claim a
// diagnostic, so fixtures pin positives and negatives symmetrically.

// LoadFixture parses and type-checks the fixture package in dir under the
// given import path. Imports are resolved through the gc export data the go
// tool reports for the fixture's (std-only) import set, so fixtures
// type-check offline exactly like module packages do.
func LoadFixture(dir, importPath string) (*token.FileSet, *Package, *World, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("fixture %s: no Go files", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(names))
	importSet := make(map[string]bool)
	for _, path := range names {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s: bad import %s", path, imp.Path.Value)
			}
			importSet[p] = true
		}
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		root, err := ModuleRoot()
		if err != nil {
			return nil, nil, nil, err
		}
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(root, patterns)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	world := NewWorld()
	CollectDirectives(fset, importPath, files, world)
	world.ModulePkgs[importPath] = true

	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(exports))}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typecheck fixture %s: %w", dir, err)
	}
	return fset, &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, world, nil
}

// A Want is one expected diagnostic, parsed from a `// want` comment.
type Want struct {
	File    string
	Line    int
	RE      *regexp.Regexp
	Matched bool
}

// ParseWants extracts the expectations from every comment of the fixture.
// A comment's expectations anchor to the comment's own line (the trailing-
// comment convention analysistest uses).
func ParseWants(fset *token.FileSet, files []*ast.File) ([]*Want, error) {
	var wants []*Want
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquote %s: %w", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regex %q: %w", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &Want{File: pos.Filename, Line: pos.Line, RE: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}

// Claim marks the first unmatched want on the diagnostic's line whose regex
// matches the rendered finding, reporting whether one existed.
func Claim(wants []*Want, d Diagnostic) bool {
	rendered := fmt.Sprintf("[%s/%s] %s", d.Analyzer, d.Category, d.Message)
	for _, w := range wants {
		if w.Matched || w.File != d.Pos.Filename || w.Line != d.Pos.Line {
			continue
		}
		if w.RE.MatchString(rendered) {
			w.Matched = true
			return true
		}
	}
	return false
}
