package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Offline package loading. golang.org/x/tools/go/packages is unavailable, so
// the loader drives the go tool directly: `go list -deps -export -json`
// compiles every dependency into the build cache and reports the gc
// export-data file for each, and the stdlib gc importer reads those files via
// a lookup function. Module packages are then parsed from source (with
// comments, for the directives) and type-checked against that import graph.

// A Package is one module package, parsed and type-checked.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// ModuleRoot returns the directory containing go.mod for the current
// working directory's module.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// goList runs `go list -deps -export -json` in dir over the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list: decode: %w\n%s", err, stderr.String())
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	return pkgs, nil
}

// exportLookup adapts a map of export-data file paths to the gc importer's
// lookup interface.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadModule loads, parses and type-checks every module package matched by
// the patterns (plus their in-module dependencies, which `go list -deps`
// includes), and collects the cross-package directive world.
func LoadModule(patterns ...string) (*token.FileSet, []*Package, *World, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := ModuleRoot()
	if err != nil {
		return nil, nil, nil, err
	}
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	var module []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			module = append(module, p)
		}
	}

	fset := token.NewFileSet()
	world := NewWorld()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))

	var pkgs []*Package
	for _, lp := range module {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("parse %s: %w", path, err)
			}
			files = append(files, f)
		}
		CollectDirectives(fset, lp.ImportPath, files, world)
		world.ModulePkgs[lp.ImportPath] = true

		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return fset, pkgs, world, nil
}

// ParseAnnotated parses every module package (parse-only, no type checking)
// and returns the directive world. The consolidated allocation test uses this
// to guarantee its probe table covers exactly the annotated set, and the
// escape harness uses the spans.
func ParseAnnotated() (*World, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	listed, err := goListNoExport(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	world := NewWorld()
	for _, lp := range listed {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", path, err)
			}
			files = append(files, f)
		}
		CollectDirectives(fset, lp.ImportPath, files, world)
		world.ModulePkgs[lp.ImportPath] = true
	}
	return world, nil
}

// goListNoExport lists module packages only, without compiling.
func goListNoExport(dir string) ([]*listedPkg, error) {
	cmd := exec.Command("go", "list", "-json=ImportPath,Dir,GoFiles,Standard", "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if !p.Standard {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}
