package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer flags variables accessed both through sync/atomic
// functions and through plain loads/stores — the SPSC/MPSC ring and
// epoch-filter bug class, where one racy plain access silently voids the
// ordering the atomic calls were buying. Typed atomics (atomic.Int64 and
// friends) are immune by construction and are what the repo uses; this
// analyzer guards the legacy form should it reappear.
//
// A deliberate single-threaded plain access (e.g. initialisation before
// goroutines exist) is suppressible with //splidt:allow atomicmix.
//
// Category: atomicmix.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag variables mixing sync/atomic access with plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: every `&x` argument to a sync/atomic call marks x's object as
	// atomically accessed; the idents inside those arguments are exempt from
	// pass 2.
	atomicObjs := make(map[types.Object]token.Pos) // object → first atomic site
	exempt := make(map[*ast.Ident]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig := callee.Type().(*types.Signature); sig.Recv() != nil {
				return true // typed atomics: safe by construction
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := addressedObj(pass.Info, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
				markIdents(un.X, exempt)
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other use of those objects is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || exempt[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, hot := atomicObjs[obj]; hot {
				pass.Reportf(id.Pos(), "atomicmix",
					"%s is accessed with sync/atomic elsewhere; this plain access races", id.Name)
			}
			return true
		})
	}
}

// addressedObj resolves &expr to the field or variable object being
// addressed: x.f → the field f, x → the variable x.
func addressedObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.Ident:
		return info.Uses[e]
	case *ast.IndexExpr:
		return addressedObj(info, e.X)
	}
	return nil
}

// markIdents records every ident under expr as part of an atomic argument.
func markIdents(expr ast.Expr, exempt map[*ast.Ident]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			exempt[id] = true
		}
		return true
	})
}
