package analysis

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"splidt"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/features"
	"splidt/internal/flow"
	"splidt/internal/flowtable"
	"splidt/internal/loadgen"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
	"splidt/internal/tcam"
	"splidt/internal/telemetry/flight"
	"splidt/internal/timerwheel"
	"splidt/internal/trace"
)

// The consolidated zero-allocation suite: one table, one probe per cluster
// of //splidt:hotpath functions, and a completeness check that the union of
// the probes' covers lists equals the annotated set the analyzers enforce.
// Annotating a new function without adding it to a covers list fails
// TestAnnotatedAllocFree immediately — the runtime pin and the static
// annotation can never drift apart.
//
// This table replaces the scattered per-package AllocsPerRun tests
// (dataplane, flowtable, timerwheel, loadgen, metrics, pkt) that each pinned
// a slice of the hot path in isolation.

// allocProbe measures one cluster of annotated functions.
type allocProbe struct {
	name   string
	covers []string                  // FuncIDs this probe exercises (directly or transitively)
	runs   int                       // AllocsPerRun iterations (default 200)
	setup  func(t *testing.T) func() // builds state, returns the measured op
}

// ids prefixes names with the module package path to form FuncIDs.
func ids(pkg string, names ...string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = "splidt/internal/" + pkg + "." + n
	}
	return out
}

func concat(lists ...[]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// deployPipeline builds a small end-to-end deployment (the quickstart path)
// shared by the dataplane probes.
func deployPipeline(t *testing.T, scheme dataplane.TableScheme, expiry dataplane.ExpiryScheme) (*dataplane.Pipeline, []trace.LabeledFlow) {
	t.Helper()
	flows := splidt.Generate(splidt.D2, 300, 1)
	samples := splidt.BuildSamples(flows, 2)
	model, err := splidt.Train(samples, splidt.Config{
		Partitions:         []int{2, 2},
		FeaturesPerSubtree: 3,
		NumClasses:         splidt.NumClasses(splidt.D2),
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	compiled, err := splidt.Compile(model)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pl, err := splidt.Deploy(splidt.DeployConfig{
		Profile:     splidt.Tofino1(),
		Model:       model,
		Compiled:    compiled,
		FlowSlots:   1 << 12,
		Table:       scheme,
		Workload:    splidt.Webserver,
		IdleTimeout: time.Minute,
		SweepStripe: 64,
		Expiry:      expiry,
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return pl, flows
}

// midFlowPacket returns a packet that is never a window end: Seq 1 of a
// reasonably long flow — the overwhelmingly common per-packet case.
func midFlowPacket(t *testing.T, flows []trace.LabeledFlow) pkt.Packet {
	t.Helper()
	for _, f := range flows {
		if len(f.Packets) >= 8 {
			return f.Packets[0]
		}
	}
	t.Fatal("no flow with >= 8 packets in the generated trace")
	return pkt.Packet{}
}

// recordStream writes n data records interleaved with control frames and
// returns the raw bytes, for the record-reader and wire-source probes.
func recordStream(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pkt.NewRecordWriter(&buf)
	if err != nil {
		t.Fatalf("NewRecordWriter: %v", err)
	}
	for i := 0; i < n; i++ {
		p := pkt.Packet{
			Key: flow.Key{
				SrcIP: flow.AddrFrom4(10, 0, byte(i>>8), byte(i)), DstIP: flow.AddrFrom4(10, 1, 2, 3),
				SrcPort: uint16(1024 + i%1000), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Len: 100, Seq: 1 + i%7, FlowSize: 8, TS: time.Duration(i) * time.Microsecond,
		}
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
		if i%5 == 0 {
			if err := w.WriteControl(pkt.Control{NextSID: 1, FlowIndex: uint32(i)}, p.TS); err != nil {
				t.Fatalf("WriteControl: %v", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func allocProbes() []allocProbe {
	return []allocProbe{
		{
			name: "flow-key",
			covers: ids("flow",
				"AddrFrom4", "Key.Canonical", "Key.Hash", "Key.Index", "Key.IsCanonical",
				"Key.Reverse", "Key.ShardHash", "Key.SymHash", "Key.bytes", "Mix64"),
			setup: func(t *testing.T) func() {
				var sink uint64
				return func() {
					k := flow.Key{
						SrcIP: flow.AddrFrom4(10, 0, 0, 1), DstIP: flow.AddrFrom4(10, 0, 0, 2),
						SrcPort: 40000, DstPort: 443, Proto: flow.ProtoTCP,
					}
					c := k.Reverse().Canonical()
					if !c.IsCanonical() {
						t.Fatal("canonical key not canonical")
					}
					sink += uint64(c.Hash()) + uint64(c.Index(1<<12)) + uint64(c.SymHash()) +
						c.ShardHash() + flow.Mix64(sink)
				}
			},
		},
		{
			name: "features-state",
			covers: ids("features",
				"FlowState.Update", "FlowState.Reset", "FlowState.Snapshot",
				"RegValue", "clampNonNeg", "floorU64", "mean", "std"),
			setup: func(t *testing.T) func() {
				var st features.FlowState
				p := pkt.Packet{Len: 120, Flags: pkt.FlagACK, TS: time.Millisecond, Seq: 1, FlowSize: 9}
				var sink uint32
				return func() {
					st.Update(p)
					st.Update(p)
					v := st.Snapshot()
					sink += features.RegValue(v[0], 3, 16)
					st.Reset()
				}
			},
		},
		{
			name:   "metrics-hist",
			covers: ids("metrics", "Hist.Record", "Hist.RecordDur", "histIndex"),
			setup: func(t *testing.T) func() {
				h := &metrics.Hist{}
				return func() {
					h.Record(123456)
					h.RecordDur(85 * time.Microsecond)
				}
			},
		},
		{
			name:   "flight-recorder",
			covers: ids("telemetry/flight", "Ring.Record"),
			setup: func(t *testing.T) func() {
				r := flight.New(64)
				return func() {
					r.Record(flight.KindBurstStart, 123*time.Microsecond, 32, 1)
					r.Record(flight.KindBurstEnd, 125*time.Microsecond, 32, 7)
				}
			},
		},
		{
			name:   "tcam-lookup",
			covers: ids("tcam", "Table.Lookup"),
			setup: func(t *testing.T) func() {
				tb := tcam.New("probe", 16, 16)
				tb.Insert(tcam.Entry{Value: []uint32{7, 0}, Mask: []uint32{0xFFFF, 0}, Priority: 1, Action: 3})
				tb.Freeze()
				return func() {
					if _, ok := tb.Lookup(7, 99); !ok {
						t.Fatal("tcam lookup missed")
					}
				}
			},
		},
		{
			name: "rangemark-compiled",
			covers: ids("rangemark",
				"Compiled.Lookup", "Compiled.MarksInto", "Compiled.SlotFeatures", "Compiled.shiftOf"),
			setup: func(t *testing.T) func() {
				flows := splidt.Generate(splidt.D2, 300, 1)
				model, err := splidt.Train(splidt.BuildSamples(flows, 2), splidt.Config{
					Partitions:         []int{2, 2},
					FeaturesPerSubtree: 3,
					NumClasses:         splidt.NumClasses(splidt.D2),
				})
				if err != nil {
					t.Fatalf("Train: %v", err)
				}
				compiled, err := splidt.Compile(model)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				compiled.Freeze()
				row := make([]float64, features.NumTotal)
				marks := make([]uint32, compiled.K)
				sid := 0
				for sid < 4096 && !compiled.HasSID(sid) {
					sid++
				}
				if !compiled.HasSID(sid) {
					t.Fatal("no SID in the compiled model table")
				}
				return func() {
					marks = compiled.MarksInto(sid, row, marks)
					if _, ok := compiled.Lookup(sid, marks); !ok {
						t.Fatal("model table lookup missed")
					}
					if len(compiled.SlotFeatures(sid)) == 0 {
						t.Fatal("no slot features")
					}
				}
			},
		},
		{
			name: "timerwheel",
			covers: ids("timerwheel",
				"Node.Armed", "Node.Relink", "Node.Unlink",
				"Wheel.Advance", "Wheel.Schedule", "Wheel.cascade", "Wheel.fire",
				"Wheel.place", "Wheel.slot"),
			setup: func(t *testing.T) func() {
				type item struct {
					id    int
					timer timerwheel.Node
				}
				w := timerwheel.New(timerwheel.Config{OnExpire: func(n *timerwheel.Node) {}})
				items := make([]item, 64)
				var spare item
				for i := range items {
					items[i].timer.Data = &items[i]
				}
				now := time.Duration(0)
				return func() {
					for i := range items {
						w.Schedule(&items[i].timer, now+time.Duration(5+i)*time.Millisecond)
					}
					// Re-arm half (Schedule's internal unlink) and disarm one
					// explicitly (the store-reclaim Unlink path).
					for i := 0; i < len(items)/2; i++ {
						w.Schedule(&items[i].timer, now+time.Duration(70+i)*time.Millisecond)
					}
					items[2].timer.Unlink()
					// Relocate items[0] into the (unarmed) spare slot — the
					// cuckoo-displacement pattern Relink exists for: copy,
					// repair neighbours, zero the stale source.
					spare = items[0]
					spare.timer.Data = &spare
					spare.timer.Relink()
					items[0].timer = timerwheel.Node{}
					items[0].timer.Data = &items[0]
					if !spare.timer.Armed() {
						t.Fatal("relocated node must stay armed")
					}
					// A long advance crosses level-0 laps, forcing cascades,
					// and fires everything so the next run starts unarmed.
					now += 3 * time.Second
					w.Advance(now)
				}
			},
		},
		{
			name: "flowtable-direct",
			covers: concat(
				ids("flowtable",
					"Direct.Acquire", "Direct.Release", "Direct.Evict", "Direct.Sweep", "Direct.slotOf",
					"Entry.Timer", "Entry.free"),
				// The Store interface annotations are the contract these
				// probes (and the cuckoo ones) exercise through the interface.
				ids("flowtable", "Store.Acquire", "Store.Release", "Store.Evict", "Store.Sweep"),
			),
			setup: func(t *testing.T) func() { return storeProbe(t, flowtable.NewDirect(256)) },
		},
		{
			name: "flowtable-cuckoo",
			covers: ids("flowtable",
				"Cuckoo.Acquire", "Cuckoo.Release", "Cuckoo.Evict", "Cuckoo.Sweep",
				"Cuckoo.altBucket", "Cuckoo.bucketPair", "Cuckoo.freeWay", "Cuckoo.inStash",
				"Cuckoo.insert", "Cuckoo.lookup", "Cuckoo.searchAndKick"),
			setup: func(t *testing.T) func() {
				return storeProbe(t, flowtable.NewCuckoo(flowtable.CuckooConfig{Capacity: 256, Ways: 4, Stash: 8}))
			},
		},
		{
			name:   "dataplane-sweep-pipeline",
			covers: ids("dataplane", "Pipeline.Process", "Pipeline.Sweep", "Pipeline.windowEnd"),
			setup: func(t *testing.T) func() {
				pl, flows := deployPipeline(t, dataplane.TableCuckoo, dataplane.ExpirySweep)
				mid := midFlowPacket(t, flows)
				pl.Process(mid)
				return func() {
					pl.Process(mid)
					pl.Sweep(pl.Clock() + time.Minute)
				}
			},
		},
		{
			name:   "dataplane-wheel-expiry",
			covers: ids("dataplane", "Pipeline.expire"),
			setup: func(t *testing.T) func() {
				pl, flows := deployPipeline(t, dataplane.TableCuckoo, dataplane.ExpiryWheel)
				mid := midFlowPacket(t, flows)
				pl.Process(mid)
				now := pl.Clock()
				return func() {
					// Each call re-touches the flow then advances past its
					// lifetime, so the wheel fires and expire reclaims it.
					pl.Process(mid)
					now += time.Hour
					pl.Sweep(now)
				}
			},
		},
		{
			name: "pkt-wire",
			covers: ids("pkt",
				"Unmarshal", "TCPFlags.Has",
				"Packet.WindowOf", "Packet.IsWindowEnd",
				"Packet.WindowOfBounds", "Packet.IsWindowEndBounds",
				"Bounds.Valid", "Bounds.boundary"),
			setup: func(t *testing.T) func() {
				p := pkt.Packet{
					Key: flow.Key{
						SrcIP: flow.AddrFrom4(10, 0, 0, 1), DstIP: flow.AddrFrom4(10, 0, 0, 2),
						SrcPort: 40000, DstPort: 443, Proto: flow.ProtoTCP,
					},
					// Seq 4 of 9 sits strictly inside window 1 of 3 (boundaries
					// fall at seq 3, 6, 9), so it is never a window end.
					Len: 100, Seq: 4, FlowSize: 9, Flags: pkt.FlagACK | pkt.FlagPSH,
				}
				frame := pkt.Marshal(p, nil)
				ctrl := pkt.MarshalControl(pkt.Control{NextSID: 2, FlowIndex: 7}, nil)
				bounds := pkt.Uniform(3)
				if !bounds.Valid() {
					t.Fatal("uniform bounds invalid")
				}
				var sink int
				return func() {
					q, err := pkt.Unmarshal(frame, time.Millisecond)
					if err != nil {
						t.Fatalf("Unmarshal: %v", err)
					}
					if _, err := pkt.Unmarshal(ctrl, 0); err == nil {
						t.Fatal("control frame must reject")
					}
					if !q.Flags.Has(pkt.FlagACK) {
						t.Fatal("flags lost")
					}
					sink += q.WindowOf(3) + q.WindowOfBounds(bounds)
					if q.IsWindowEnd(3) || q.IsWindowEndBounds(bounds) {
						t.Fatal("mid-flow packet is not a window end")
					}
				}
			},
		},
		{
			name:   "pkt-record-reader",
			covers: ids("pkt", "RecordReader.Next"),
			runs:   1000,
			setup: func(t *testing.T) func() {
				raw := recordStream(t, 2200)
				r, err := pkt.NewRecordReader(bytes.NewReader(raw))
				if err != nil {
					t.Fatalf("NewRecordReader: %v", err)
				}
				if _, err := r.Next(); err != nil {
					t.Fatalf("warmup: %v", err)
				}
				return func() {
					if _, err := r.Next(); err != nil {
						t.Fatalf("Next: %v", err)
					}
				}
			},
		},
		{
			name:   "loadgen-wire-source",
			covers: ids("loadgen", "WireSource.Next"),
			runs:   1000,
			setup: func(t *testing.T) func() {
				raw := recordStream(t, 2200)
				src, err := loadgen.NewWireSource(bytes.NewReader(raw))
				if err != nil {
					t.Fatalf("NewWireSource: %v", err)
				}
				src.Next() // warm the decoder's frame buffer
				return func() {
					if _, ok := src.Next(); !ok {
						t.Fatalf("stream exhausted early: %v", src.Err())
					}
				}
			},
		},
		{
			name: "loadgen-churn",
			covers: ids("loadgen",
				"ChurnGen.Next", "ChurnGen.birth", "ChurnGen.emit", "ChurnGen.file", "ChurnGen.sift"),
			runs: 50_000,
			setup: func(t *testing.T) func() {
				g, err := loadgen.NewChurn(loadgen.ChurnConfig{Flows: 1000, Seed: 5, TimeScale: 3000})
				if err != nil {
					t.Fatalf("NewChurn: %v", err)
				}
				for i := 0; i < 200_000; i++ { // warm wheel buckets to steady size
					g.Next()
				}
				return func() {
					if _, ok := g.Next(); !ok {
						t.Fatal("churn source exhausted; must be endless")
					}
				}
			},
		},
		{
			name:   "trace-workload",
			covers: ids("trace", "Workload.SampleDuration", "Workload.SampleFlowSize"),
			setup: func(t *testing.T) func() {
				rng := rand.New(rand.NewSource(11))
				var sink int64
				return func() {
					sink += int64(trace.Webserver.SampleFlowSize(rng)) +
						int64(trace.Webserver.SampleDuration(rng))
				}
			},
		},
		{
			name: "engine-rings",
			covers: ids("engine",
				"spscRing.tryPush", "spscRing.tryPop", "mpscRing.tryPush", "mpscRing.tryPop",
				"shardState.pendingDeploy"),
			setup: func(t *testing.T) func() { return engine.RingAllocProbe() },
		},
	}
}

// storeProbe exercises one flow-table scheme through the Store interface:
// resident Acquire, Evict/re-Acquire churn, Release, entry timer access,
// and a sweep stripe. Half occupancy first, so cuckoo insertions displace.
func storeProbe(t *testing.T, s flowtable.Store) func() {
	t.Helper()
	key := func(i int) flow.Key {
		return flow.Key{
			SrcIP: flow.AddrFrom4(10, 0, byte(i>>8), byte(i)), DstIP: flow.AddrFrom4(10, 9, 9, 9),
			SrcPort: uint16(2000 + i), DstPort: 443, Proto: flow.ProtoTCP,
		}.Canonical()
	}
	for i := 0; i < 128; i++ {
		if e, st := s.Acquire(key(i)); st == flowtable.StatusFresh {
			e.SID = 1
		}
	}
	k := key(5)
	return func() {
		e, _ := s.Acquire(k)
		if e == nil {
			t.Fatal("resident flow not found")
		}
		if e.Timer().Armed() {
			t.Fatal("store-level entries must not arm timers")
		}
		s.Evict(k)
		e2, st := s.Acquire(k)
		if st == flowtable.StatusFresh {
			e2.SID = 1
		}
		s.Release(e2)
		if e3, st := s.Acquire(k); st == flowtable.StatusFresh {
			e3.SID = 1
		}
		s.Sweep(time.Hour, time.Minute, 64)
	}
}

// TestAnnotatedAllocFree is the consolidated allocation gate: every
// annotated hot-path function is claimed by exactly one probe table entry,
// and every probe runs allocation-free.
func TestAnnotatedAllocFree(t *testing.T) {
	world, err := ParseAnnotated()
	if err != nil {
		t.Fatalf("ParseAnnotated: %v", err)
	}
	annotated := make(map[string]bool)
	for _, id := range world.FuncIDs() {
		annotated[id] = true
	}
	probes := allocProbes()

	covered := make(map[string]string)
	for _, p := range probes {
		for _, id := range p.covers {
			if !annotated[id] {
				t.Errorf("probe %q covers %s, which is not //splidt:hotpath (stale covers entry?)", p.name, id)
			}
			covered[id] = p.name
		}
	}
	for _, id := range world.FuncIDs() {
		if covered[id] == "" {
			t.Errorf("annotated %s has no allocation probe; add it to a covers list", id)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	for _, p := range probes {
		t.Run(p.name, func(t *testing.T) {
			op := p.setup(t)
			runs := p.runs
			if runs == 0 {
				runs = 200
			}
			if avg := testing.AllocsPerRun(runs, op); avg != 0 {
				t.Fatalf("probe %q allocates %.2f/op, want 0 (covers %v)", p.name, avg, p.covers)
			}
		})
	}
}
