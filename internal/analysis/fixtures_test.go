package analysis

import (
	"path/filepath"
	"testing"
)

// TestAnalyzerFixtures runs the full suite over every fixture package under
// testdata/src and cross-checks the findings against the fixtures' `// want`
// expectations, both ways: an unclaimed diagnostic and an unmatched
// expectation are equally fatal. This is the golden coverage for all four
// analyzers — each fixture holds at least one failing (flagged) form and the
// negative forms that must stay silent.
func TestAnalyzerFixtures(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	seen := make(map[string]bool)
	for _, dir := range dirs {
		name := filepath.Base(dir)
		seen[name] = true
		t.Run(name, func(t *testing.T) {
			fset, pkg, world, err := LoadFixture(dir, name)
			if err != nil {
				t.Fatal(err)
			}
			var diags []Diagnostic
			for _, a := range Analyzers() {
				RunPackage(a, fset, pkg, world, &diags)
			}
			SortDiagnostics(diags)
			wants, err := ParseWants(fset, pkg.Files)
			if err != nil {
				t.Fatal(err)
			}
			if len(wants) == 0 {
				t.Errorf("fixture %s has no want expectations; every fixture must pin at least one finding", name)
			}
			for _, d := range diags {
				if !Claim(wants, d) {
					t.Errorf("unexpected diagnostic:\n  %s\n  rendered: [%s/%s] %s",
						d, d.Analyzer, d.Category, d.Message)
				}
			}
			for _, w := range wants {
				if !w.Matched {
					t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.File, w.Line, w.RE)
				}
			}
		})
	}
	// One fixture per analyzer, so a deleted fixture directory cannot silently
	// drop an analyzer's golden coverage.
	for _, a := range Analyzers() {
		if !seen[a.Name] {
			t.Errorf("no fixture package for analyzer %q under testdata/src", a.Name)
		}
	}
}

// TestDiagnosticString pins the rendering the driver prints and CI greps.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "hotpath", Category: "alloc", Message: "f: make allocates"}
	d.Pos.Filename = "x.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	got := d.String()
	want := "x.go: 3:7: [hotpath/alloc] f: make allocates"
	if got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}
