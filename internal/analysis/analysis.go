// Package analysis is splidt's repo-specific static-analysis suite: a small
// go/analysis-shaped framework plus four analyzers that prove the hot-path
// invariants the runtime tests can only sample.
//
// The framework is deliberately stdlib-only (go/ast, go/types, go/importer):
// the build environment is offline, so golang.org/x/tools is unavailable and
// cmd/splidt-vet is a standalone driver rather than a `go vet -vettool`
// plugin. The analyzer API mirrors go/analysis closely enough that porting to
// x/tools later is mechanical.
//
// Source annotations (comment directives) drive every analyzer:
//
//	//splidt:hotpath
//	    On a function/method declaration (or an interface method): the body
//	    must be allocation-free and lock-free, and may only call other
//	    annotated functions or a short allowlist of std packages.
//	//splidt:packettime
//	    Anywhere in a file: the file must not read the wall clock or use the
//	    global math/rand state. The dataplane, timerwheel and flowtable
//	    packages are packet-time in their entirety, pragma or not.
//	//splidt:stats-complete TYPE
//	    On a function declaration: every field of the named struct must be
//	    referenced in the body (merge/add/snapshot exhaustiveness).
//	//splidt:allow CATEGORY[,CATEGORY...] — reason
//	    On the flagged line, or the line above it: suppress those diagnostic
//	    categories. Every allow must carry a justification after the dash.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: [%s/%s] %s",
		d.Pos.Filename, lineCol(d.Pos), d.Analyzer, d.Category, d.Message)
}

func lineCol(p token.Position) string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	World    *World

	allow  map[string]map[int]map[string]bool // file → line → suppressed categories
	report func(Diagnostic)
}

// Reportf records a diagnostic unless an //splidt:allow comment on (or just
// above) the position's line suppresses the category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.allow[position.Filename]; ok {
		if cats, ok := lines[position.Line]; ok && (cats[category] || cats["all"]) {
			return
		}
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// World is the cross-package directive index: the loader collects it over
// every module package before any analyzer runs, so per-package passes can
// answer "is that callee annotated?" for callees outside the current package.
type World struct {
	// Annotated is the set of //splidt:hotpath functions, keyed by FuncID.
	Annotated map[string]bool
	// Spans maps each annotated FuncID to its source extent (used by the
	// escape-analysis harness to attribute compiler diagnostics).
	Spans map[string]Span
	// ModulePkgs is the set of in-module import paths. The hotpath analyzer
	// needs it to tell module callees (must be annotated) from std callees
	// (must be allowlisted) — the module path carries no dot, so the usual
	// "first path segment has a dot" heuristic cannot.
	ModulePkgs map[string]bool
}

// Span is the file extent of one annotated function declaration.
type Span struct {
	File      string // absolute path
	Beg, End  int    // 1-based line range, inclusive
	Pkg, Name string // package import path and bare declaration name
}

// FuncIDs returns the sorted annotated set.
func (w *World) FuncIDs() []string {
	ids := make([]string, 0, len(w.Annotated))
	for id := range w.Annotated {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Directive spellings.
const (
	dirHotpath       = "//splidt:hotpath"
	dirPacketTime    = "//splidt:packettime"
	dirStatsComplete = "//splidt:stats-complete"
	dirAllow         = "//splidt:allow"
)

// FuncID names a function the same way from either syntax or type
// information: "pkgpath.Name" for package functions, "pkgpath.T.name" for
// methods (receiver star stripped), and the same form for interface methods.
func FuncID(pkgPath string, fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		switch t := t.(type) {
		case *types.Named:
			return pkgPath + "." + t.Obj().Name() + "." + fn.Name()
		default:
			// Interface methods reach here when the receiver is the
			// interface type itself.
			return pkgPath + "." + types.TypeString(t, nil) + "." + fn.Name()
		}
	}
	return pkgPath + "." + fn.Name()
}

// funcDeclID derives the same FuncID from syntax alone (used by the
// parse-only directive collector, where no type information exists).
func funcDeclID(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
			continue
		case *ast.IndexExpr: // generic receiver T[P]
			t = u.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return pkgPath + "." + id.Name + "." + d.Name.Name
	}
	return pkgPath + "." + d.Name.Name
}

// hasDirective reports whether a doc comment group carries the directive.
func hasDirective(doc *ast.CommentGroup, dir string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == dir || strings.HasPrefix(text, dir+" ") {
			return true
		}
	}
	return false
}

// directiveArg returns the argument text after the directive, or "", false.
func directiveArg(doc *ast.CommentGroup, dir string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, dir+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, dir+" ")), true
		}
	}
	return "", false
}

// fileHasPragma reports whether any comment in the file is the pragma.
func fileHasPragma(f *ast.File, dir string) bool {
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == dir || strings.HasPrefix(text, dir+" ") {
				return true
			}
		}
	}
	return false
}

// collectAllow builds the suppression map for one file: an
// "//splidt:allow cat1,cat2 — reason" comment suppresses those categories on
// its own line (trailing comment) and on the following line (comment-above).
func collectAllow(fset *token.FileSet, f *ast.File, into map[string]map[int]map[string]bool) {
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, dirAllow+" ") {
				continue
			}
			rest := strings.TrimPrefix(text, dirAllow+" ")
			// Categories end at the justification dash (or end of comment).
			if i := strings.IndexAny(rest, "—-"); i >= 0 {
				rest = rest[:i]
			}
			pos := fset.Position(c.Pos())
			lines := into[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				into[pos.Filename] = lines
			}
			for _, cat := range strings.Split(rest, ",") {
				cat = strings.TrimSpace(cat)
				if cat == "" {
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					lines[line][cat] = true
				}
			}
		}
	}
}

// CollectDirectives scans parsed files of one package (import path pkgPath)
// and merges hotpath annotations into the world. It is parse-only so both the
// full loader and the drift-guard tests can share it.
func CollectDirectives(fset *token.FileSet, pkgPath string, files []*ast.File, w *World) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !hasDirective(d.Doc, dirHotpath) {
					continue
				}
				id := funcDeclID(pkgPath, d)
				w.Annotated[id] = true
				beg := fset.Position(d.Pos())
				end := fset.Position(d.End())
				w.Spans[id] = Span{File: beg.Filename, Beg: beg.Line, End: end.Line, Pkg: pkgPath, Name: d.Name.Name}
			case *ast.GenDecl:
				// Interface methods can be annotated too: the annotation is a
				// contract every implementation's hot path must honour, and it
				// lets annotated callers dispatch through the interface.
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					for _, m := range it.Methods.List {
						if len(m.Names) == 0 || !hasDirective(m.Doc, dirHotpath) {
							continue
						}
						for _, name := range m.Names {
							id := pkgPath + "." + ts.Name.Name + "." + name.Name
							w.Annotated[id] = true
							beg := fset.Position(m.Pos())
							end := fset.Position(m.End())
							w.Spans[id] = Span{File: beg.Filename, Beg: beg.Line, End: end.Line, Pkg: pkgPath, Name: name.Name}
						}
					}
				}
			}
		}
	}
}

// NewWorld returns an empty directive index.
func NewWorld() *World {
	return &World{
		Annotated:  make(map[string]bool),
		Spans:      make(map[string]Span),
		ModulePkgs: make(map[string]bool),
	}
}

// Analyzers is the full suite in the order the driver runs it.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotpathAnalyzer, WallclockAnalyzer, StatsMergeAnalyzer, AtomicMixAnalyzer}
}

// RunPackage runs one analyzer over one loaded package and appends findings.
func RunPackage(a *Analyzer, fset *token.FileSet, pkg *Package, world *World, sink *[]Diagnostic) {
	allow := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		collectAllow(fset, f, allow)
	}
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		World:    world,
		allow:    allow,
		report:   func(d Diagnostic) { *sink = append(*sink, d) },
	}
	a.Run(pass)
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
