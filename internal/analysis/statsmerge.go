package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatsMergeAnalyzer enforces struct-field exhaustiveness in merge/add/
// snapshot functions. A function annotated
//
//	//splidt:stats-complete TYPE
//
// (TYPE is a struct named in this package, or pkgname.Name for an imported
// one) must reference every field of that struct in its body — a selector, a
// keyed composite-literal entry, or an unkeyed literal (which the compiler
// already forces to be exhaustive). A field added to dataplane.Stats but not
// threaded through Add/MergeStats/engine subStats is a silent undercount,
// not a test failure; this turns it into a vet failure.
//
// Category: statsmerge.
var StatsMergeAnalyzer = &Analyzer{
	Name: "statsmerge",
	Doc:  "require //splidt:stats-complete functions to touch every struct field",
	Run:  runStatsMerge,
}

func runStatsMerge(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			typeName, ok := directiveArg(d.Doc, dirStatsComplete)
			if !ok {
				continue
			}
			st, label := resolveStruct(pass, typeName)
			if st == nil {
				pass.Reportf(d.Pos(), "statsmerge",
					"%s: //splidt:stats-complete %s: cannot resolve struct type", d.Name.Name, typeName)
				continue
			}
			missing := uncoveredFields(pass, d.Body, st)
			for _, field := range missing {
				pass.Reportf(d.Pos(), "statsmerge",
					"%s: field %s.%s is not referenced (silent undercount)", d.Name.Name, label, field)
			}
		}
	}
}

// resolveStruct resolves "Name" in the current package or "pkgname.Name"
// through the imports, returning the struct type and a display label.
func resolveStruct(pass *Pass, name string) (*types.Struct, string) {
	var obj types.Object
	if i := strings.IndexByte(name, '.'); i >= 0 {
		pkgName, typName := name[:i], name[i+1:]
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				obj = imp.Scope().Lookup(typName)
				break
			}
		}
	} else {
		obj = pass.Pkg.Scope().Lookup(name)
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, name
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, name
	}
	return st, name
}

// uncoveredFields returns the names of struct fields never referenced in the
// body, in declaration order.
func uncoveredFields(pass *Pass, body *ast.BlockStmt, st *types.Struct) []string {
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Covers plain selectors (s.Field) and keyed composite-literal
			// entries (Stats{Field: v}): both record the field object in Uses.
			if v, ok := pass.Info.Uses[n].(*types.Var); ok && v.IsField() {
				if _, tracked := fields[v]; tracked {
					fields[v] = true
				}
			}
		case *ast.CompositeLit:
			// An unkeyed struct literal must list every field to compile, so
			// it covers all of them.
			t := pass.Info.Types[n].Type
			if t == nil {
				return true
			}
			lst, ok := t.Underlying().(*types.Struct)
			if !ok || lst != st || len(n.Elts) == 0 {
				return true
			}
			if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
				for v := range fields {
					fields[v] = true
				}
			}
		}
		return true
	})
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		if !fields[st.Field(i)] {
			missing = append(missing, st.Field(i).Name())
		}
	}
	return missing
}
