package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer checks every //splidt:hotpath function for constructs that
// allocate, block, or escape into unaudited code. Categories (each
// independently suppressible with //splidt:allow):
//
//	alloc    make/new, &T{...}, slice/map literals, []byte(string)
//	append   any append (growth is a runtime property; justify or hoist)
//	map      map reads, writes, deletes and range
//	string   string concatenation and string([]byte) conversions
//	box      concrete non-pointer value converted to an interface
//	closure  func literal that escapes its defining statement
//	funcval  call through a func-typed field or package variable
//	chan     channel send/receive/close/select
//	go       goroutine launch
//	lock     sync package call (Mutex, RWMutex, Once, WaitGroup, ...)
//	fmt      any fmt call
//	call     call into a function that is neither annotated nor allowlisted
//
// Transitivity comes from the call rule: a hot function may only call other
// annotated functions (checked the same way) or a fixed allowlist of
// non-allocating std packages.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation, locks and unaudited calls in //splidt:hotpath functions",
	Run:  runHotpath,
}

// hotpathStdAllow lists std packages whose functions are callable from hot
// code: pure arithmetic/encoding helpers plus the buffered-IO surface the
// zero-copy record reader is built on. fmt is deliberately absent; sync is
// absent so lock ops get their own category.
var hotpathStdAllow = map[string]bool{
	"encoding/binary": true,
	"errors":          true,
	"hash/crc32":      true,
	"io":              true,
	"bufio":           true,
	"math":            true,
	"math/bits":       true,
	"math/rand":       true,
	"sync/atomic":     true,
	"time":            true, // Duration arithmetic; wallclock bans the clock reads
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil || !hasDirective(d.Doc, dirHotpath) {
				continue
			}
			w := &hotpathWalker{pass: pass, fn: d.Name.Name}
			w.walk(d.Body)
		}
	}
}

type hotpathWalker struct {
	pass *Pass
	fn   string
	// localFuncs tracks func-typed locals bound to a literal in this body:
	// calling one is fine because its body is walked inline.
	localFuncs map[types.Object]bool
}

func (w *hotpathWalker) walk(body *ast.BlockStmt) {
	w.localFuncs = make(map[types.Object]bool)
	// Pre-pass: find `name := func(...){...}` bindings so calls through them
	// are recognised regardless of statement order.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if _, ok := rhs.(*ast.FuncLit); ok && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := w.pass.Info.Defs[id]; obj != nil {
							w.localFuncs[obj] = true
						} else if obj := w.pass.Info.Uses[id]; obj != nil {
							w.localFuncs[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, w.visit)
}

func (w *hotpathWalker) visit(n ast.Node) bool {
	pass := w.pass
	switch n := n.(type) {
	case *ast.CallExpr:
		w.checkCall(n)
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			pass.Reportf(n.Pos(), "chan", "%s: channel receive in hot path", w.fn)
		case token.AND:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "alloc", "%s: &%s{...} allocates", w.fn, typeName(pass, cl))
			}
		}
	case *ast.SendStmt:
		pass.Reportf(n.Pos(), "chan", "%s: channel send in hot path", w.fn)
	case *ast.SelectStmt:
		pass.Reportf(n.Pos(), "chan", "%s: select in hot path", w.fn)
	case *ast.GoStmt:
		pass.Reportf(n.Pos(), "go", "%s: goroutine launch in hot path", w.fn)
	case *ast.CompositeLit:
		if t := pass.Info.Types[n].Type; t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "alloc", "%s: slice literal allocates", w.fn)
			case *types.Map:
				pass.Reportf(n.Pos(), "alloc", "%s: map literal allocates", w.fn)
			}
		}
	case *ast.IndexExpr:
		if t := pass.Info.Types[n.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map", "%s: map access in hot path", w.fn)
			}
		}
	case *ast.RangeStmt:
		if t := pass.Info.Types[n.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map", "%s: map iteration in hot path", w.fn)
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringExpr(pass, n.X) {
			pass.Reportf(n.Pos(), "string", "%s: string concatenation allocates", w.fn)
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
			pass.Reportf(n.Pos(), "string", "%s: string += allocates", w.fn)
		}
		w.checkAssignBoxing(n)
	case *ast.FuncLit:
		w.checkFuncLitEscape(n)
	case *ast.ReturnStmt:
		// Boxing on return is checked against the enclosing signature only
		// for the top-level function; keeping this pragmatic.
	}
	return true
}

// checkCall classifies one call expression.
func (w *hotpathWalker) checkCall(call *ast.CallExpr) {
	pass := w.pass

	// Builtins and conversions first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "alloc", "%s: make allocates", w.fn)
			case "new":
				pass.Reportf(call.Pos(), "alloc", "%s: new allocates", w.fn)
			case "append":
				pass.Reportf(call.Pos(), "append", "%s: append may grow its backing array", w.fn)
			case "delete":
				pass.Reportf(call.Pos(), "map", "%s: map delete in hot path", w.fn)
			case "close":
				pass.Reportf(call.Pos(), "chan", "%s: channel close in hot path", w.fn)
			case "print", "println":
				pass.Reportf(call.Pos(), "call", "%s: builtin %s in hot path", w.fn, b.Name())
			}
			return
		}
	}

	// Conversion T(x)?
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := pass.Info.Types[call.Args[0]].Type
			if isString(dst) && (isByteSlice(src) || isRuneSlice(src)) {
				pass.Reportf(call.Pos(), "string", "%s: string(%s) conversion allocates", w.fn, src)
			} else if (isByteSlice(dst) || isRuneSlice(dst)) && isString(src) {
				pass.Reportf(call.Pos(), "alloc", "%s: %s(string) conversion allocates", w.fn, dst)
			}
		}
		return
	}

	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		// Func value: field, package var, or local closure.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && w.localFuncs[obj] {
				w.checkArgBoxing(call, nil)
				return // local closure, body checked inline
			}
		}
		pass.Reportf(call.Pos(), "funcval", "%s: call through func value (target unaudited)", w.fn)
		return
	}

	pkg := callee.Pkg()
	switch {
	case pkg == nil:
		// Universe-scope methods (error.Error). Dispatch target unknown.
		pass.Reportf(call.Pos(), "call", "%s: call to %s (unaudited)", w.fn, callee.Name())
	case pass.World.ModulePkgs[pkg.Path()] || pkg == pass.Pkg:
		id := FuncID(pkg.Path(), callee)
		if !pass.World.Annotated[id] {
			pass.Reportf(call.Pos(), "call", "%s: call to %s, which is not //splidt:hotpath", w.fn, id)
		}
	default:
		switch {
		case pkg.Path() == "fmt":
			pass.Reportf(call.Pos(), "fmt", "%s: fmt.%s allocates", w.fn, callee.Name())
		case pkg.Path() == "sync":
			pass.Reportf(call.Pos(), "lock", "%s: sync.%s in hot path", w.fn, lockName(callee))
		case !hotpathStdAllow[pkg.Path()]:
			pass.Reportf(call.Pos(), "call", "%s: call into %s (not allowlisted for hot paths)", w.fn, pkg.Path())
		}
	}
	w.checkArgBoxing(call, callee)
}

// checkArgBoxing flags arguments whose concrete non-pointer value is
// implicitly converted to an interface parameter. Constants, nil, pointers
// and interface-to-interface conversions are exempt (no heap allocation), and
// panic arguments are exempt (cold path by definition).
func (w *hotpathWalker) checkArgBoxing(call *ast.CallExpr, callee *types.Func) {
	pass := w.pass
	sigTV, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		w.checkBoxed(arg, pt)
	}
}

// checkAssignBoxing flags assignments of concrete values into
// interface-typed variables or fields.
func (w *hotpathWalker) checkAssignBoxing(n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		if lt := w.pass.Info.Types[n.Lhs[i]].Type; lt != nil {
			w.checkBoxed(n.Rhs[i], lt)
		}
	}
}

func (w *hotpathWalker) checkBoxed(expr ast.Expr, dst types.Type) {
	pass := w.pass
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return // constant or nil: no runtime allocation
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the iface data word
	}
	pass.Reportf(expr.Pos(), "box", "%s: %s value boxed into interface", w.fn, src)
}

// checkFuncLitEscape flags func literals that escape the statement binding
// them. A literal bound to a local variable is fine (its body is walked as
// part of this function); anything else — call argument, return value, field
// store, collection element — escapes to the heap.
func (w *hotpathWalker) checkFuncLitEscape(lit *ast.FuncLit) {
	parent := w.parentOf(lit)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == lit && i < len(p.Lhs) {
				if _, ok := p.Lhs[i].(*ast.Ident); ok {
					return // bound to a local; checked inline
				}
			}
		}
	case *ast.ValueSpec:
		return
	case *ast.GoStmt:
		return // the go statement itself is already flagged
	case *ast.DeferStmt:
		return // open-coded defer of a literal does not allocate
	}
	w.pass.Reportf(lit.Pos(), "closure", "%s: func literal escapes its binding (allocates)", w.fn)
}

// parentOf finds the immediate parent of a node within the walked body. The
// walker has no parent links, so this re-walks; bodies are small.
func (w *hotpathWalker) parentOf(target ast.Node) ast.Node {
	var parent ast.Node
	var stack []ast.Node
	for _, f := range w.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if n == target && len(stack) > 0 {
				parent = stack[len(stack)-1]
				return false
			}
			stack = append(stack, n)
			return parent == nil
		})
		if parent != nil {
			break
		}
	}
	return parent
}

// calleeFunc resolves a call's static callee, or nil for func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil // field selection: func-typed field
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// lockName renders sync method calls as Type.Method for the message.
func lockName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

func typeName(pass *Pass, cl *ast.CompositeLit) string {
	if t := pass.Info.Types[cl].Type; t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	return "T"
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	return isString(pass.Info.Types[e].Type)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}
