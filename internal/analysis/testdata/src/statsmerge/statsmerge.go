// Package statsmerge exercises the statsmerge analyzer: annotated functions
// must reference every field of the named struct.
package statsmerge

type Stats struct {
	Packets int64
	Bytes   int64
	Drops   int64
}

// addComplete touches every field: no diagnostic.
//
//splidt:stats-complete Stats
func addComplete(dst *Stats, src Stats) {
	dst.Packets += src.Packets
	dst.Bytes += src.Bytes
	dst.Drops += src.Drops
}

//splidt:stats-complete Stats
func addIncomplete(dst *Stats, src Stats) { // want `field Stats\.Drops is not referenced \(silent undercount\)`
	dst.Packets += src.Packets
	dst.Bytes += src.Bytes
}

// unkeyedComplete covers all fields through an unkeyed literal, which the
// compiler already forces to be exhaustive: no diagnostic.
//
//splidt:stats-complete Stats
func unkeyedComplete(a, b Stats) Stats {
	return Stats{a.Packets + b.Packets, a.Bytes + b.Bytes, a.Drops + b.Drops}
}

//splidt:stats-complete Stats
func keyedIncomplete(a Stats) Stats { // want `field Stats\.Bytes is not referenced` `field Stats\.Drops is not referenced`
	return Stats{Packets: a.Packets}
}

//splidt:stats-complete Missing
func badType() { // want `//splidt:stats-complete Missing: cannot resolve struct type`
}
