// Package atomicmix exercises the atomicmix analyzer: a variable touched by
// package-level sync/atomic calls must never also be accessed plainly.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	calls int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	c.calls++ // never accessed atomically: fine
}

func (c *counters) read() int64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere; this plain access races`
}

func (c *counters) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits) // atomic read: fine
}

func (c *counters) reset() {
	c.hits = 0 //splidt:allow atomicmix — fixture: single-threaded reinitialisation
}

// typed atomics are immune by construction: no diagnostics anywhere below.
type safe struct {
	n atomic.Int64
}

func (s *safe) bump() { s.n.Add(1) }

func (s *safe) read() int64 { return s.n.Load() }
