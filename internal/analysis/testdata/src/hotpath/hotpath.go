// Package hotpath exercises the hotpath analyzer: each annotated function
// below trips exactly the categories its want comments pin, and the
// unannotated/allowlisted forms alongside them must stay silent.
package hotpath

import (
	"math/bits"
	"os"
	"sync"
)

type state struct {
	n   int
	buf []byte
}

//splidt:hotpath
func allocates(s *state) {
	s.buf = make([]byte, 64) // want `\[hotpath/alloc\] allocates: make allocates`
	_ = new(state)           // want `new allocates`
	s.buf = append(s.buf, 1) // want `append may grow its backing array`
	_ = &state{}             // want `&state\{\.\.\.\} allocates`
	_ = []int{1, 2, 3}       // want `slice literal allocates`
}

var (
	mu     sync.Mutex
	events chan int
	counts map[string]int
)

//splidt:hotpath
func locksAndChans() {
	mu.Lock()     // want `sync\.Mutex\.Lock in hot path`
	mu.Unlock()   // want `sync\.Mutex\.Unlock in hot path`
	events <- 1   // want `channel send in hot path`
	<-events      // want `channel receive in hot path`
	counts["x"]++ // want `map access in hot path`
	go leaf(1)    // want `goroutine launch in hot path`
}

//splidt:hotpath
func strings2(a, b string, p []byte) {
	_ = a + b     // want `string concatenation allocates`
	_ = string(p) // want `string\(\[\]byte\) conversion allocates`
	_ = []byte(a) // want `\[\]byte\(string\) conversion allocates`
}

var out any

//splidt:hotpath
func boxes(v int64, s *state) {
	out = v // want `int64 value boxed into interface`
	out = s // pointer-shaped: fits the iface word, no diagnostic
}

var hook func()

//splidt:hotpath
func closures(fns []func()) {
	f := func() {} // bound to a local: body is walked inline
	f()
	fns[0] = func() {} // want `func literal escapes its binding`
	hook()             // want `call through func value`
}

// helper is deliberately not annotated: calling it from hot code is the
// transitivity violation.
func helper() {}

//splidt:hotpath
func leaf(x int) int { return bits.OnesCount(uint(x)) }

//splidt:hotpath
func calls(x int) int {
	helper()        // want `call to hotpath\.helper, which is not //splidt:hotpath`
	_ = os.Getpid() // want `call into os \(not allowlisted for hot paths\)`
	return leaf(x)  // annotated callee: fine
}

// ops shows the interface-method form of the annotation: a call through
// Tick is a contract every implementation must honour; Other is unaudited.
type ops interface {
	//splidt:hotpath
	Tick(n int) int
	Other()
}

//splidt:hotpath
func dispatch(o ops) {
	o.Tick(1)
	o.Other() // want `call to hotpath\.ops\.Other, which is not //splidt:hotpath`
}

//splidt:hotpath
func allowed() []byte {
	return make([]byte, 8) //splidt:allow alloc — fixture: justified one-time buffer
}
