package wallclock

import "time"

// wallOK lives in a file without the //splidt:packettime pragma, so the
// wallclock analyzer must leave it alone.
func wallOK() time.Time { return time.Now() }
