// Package wallclock exercises the wallclock analyzer: the pragma'd file is
// packet-time (no wall-clock reads, no global math/rand), the plain file is
// exempt.
package wallclock

//splidt:packettime

import (
	"math/rand"
	"time"
)

func clockReads() time.Duration {
	t := time.Now()                    // want `\[wallclock/wallclock\] time\.Now in packet-time code`
	_ = time.Since(t)                  // want `time\.Since in packet-time code`
	ch := time.After(time.Millisecond) // want `time\.After in packet-time code`
	_ = ch
	return time.Duration(rand.Intn(10)) // want `\[wallclock/globalrand\] global rand\.Intn in packet-time code`
}

func seededOK(rng *rand.Rand) int {
	return rng.Intn(10) // method on a seeded generator: fine
}

func constructorsOK(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // seeded construction: fine
}

func sleepOK() {
	time.Sleep(time.Microsecond) // Sleep is deliberately allowed (idle backoff)
}

func allowedRead() time.Time {
	return time.Now() //splidt:allow wallclock — fixture: justified measurement point
}
