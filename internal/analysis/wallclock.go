package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallclockAnalyzer forbids wall-clock reads and global math/rand state in
// packet-time code. The dataplane, timerwheel and flowtable packages are
// packet-time in their entirety: the simulated switch advances on packet
// timestamps, and a single time.Now smuggled into them desynchronises replay
// from recorded traces. Other files opt in with a //splidt:packettime pragma
// (the engine worker loop, the churn generator's virtual clock, the trace
// samplers).
//
// Categories:
//
//	wallclock   time.Now / Since / Until / After / Tick / NewTimer / ...
//	globalrand  package-level math/rand functions (unseeded shared state)
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock reads and global math/rand in packet-time code",
	Run:  runWallclock,
}

// packetTimePkgs are whole packages under the packet-time regime.
var packetTimePkgs = map[string]bool{
	"splidt/internal/dataplane":  true,
	"splidt/internal/timerwheel": true,
	"splidt/internal/flowtable":  true,
}

// wallclockBanned are time-package functions that read the wall clock or
// arm wall-clock timers. time.Sleep is deliberately absent: packet-time code
// never calls it, and the engine's idle backoff (pragma'd file) legitimately
// does.
var wallclockBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandAllowed are math/rand package-level functions that construct
// seeded generators rather than touching the global one.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runWallclock(pass *Pass) {
	wholePkg := packetTimePkgs[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if !wholePkg && !fileHasPragma(f, dirPacketTime) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockBanned[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(sel.Pos(), "wallclock",
						"time.%s in packet-time code (use the packet clock)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				sig := fn.Type().(*types.Signature)
				if sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
					pass.Reportf(sel.Pos(), "globalrand",
						"global %s.%s in packet-time code (use a seeded *rand.Rand)",
						pkgBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
