// Package controller implements the control-plane side of a SpliDT
// deployment: it consumes the digests the data plane emits at final
// classification (§3.1.2), maintains the authoritative flow→class table,
// aggregates per-class telemetry, and invokes operator policy (e.g. block
// on attack classes). The paper's artifact pairs its P4 program with a
// bfrt-driven controller; this package plays that role against the
// simulated pipeline.
package controller

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/flow"
)

// Action is a policy verdict for a classified flow.
type Action int

// Policy verdicts.
const (
	ActionAllow Action = iota
	ActionBlock
	ActionMirror
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionBlock:
		return "block"
	case ActionMirror:
		return "mirror"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Policy maps a classification digest to an action.
type Policy func(dataplane.Digest) Action

// AllowAll is the default policy.
func AllowAll(dataplane.Digest) Action { return ActionAllow }

// BlockClasses returns a policy that blocks the listed classes.
func BlockClasses(classes ...int) Policy {
	set := make(map[int]bool, len(classes))
	for _, c := range classes {
		set[c] = true
	}
	return func(d dataplane.Digest) Action {
		if set[d.Class] {
			return ActionBlock
		}
		return ActionAllow
	}
}

// Record is the controller's view of one classified flow.
type Record struct {
	Class   int
	Action  Action
	At      time.Duration // absolute classification time
	TTD     time.Duration
	Packets int
}

// Controller is safe for concurrent use.
type Controller struct {
	classes int
	policy  Policy

	mu        sync.Mutex
	flows     map[flow.Key]Record
	perClass  []int
	perAction map[Action]int
	ttdSum    time.Duration
	digests   int
}

// New builds a controller for a deployment with the given class count.
// policy may be nil (AllowAll).
func New(classes int, policy Policy) *Controller {
	if classes < 2 {
		panic("controller: class count < 2")
	}
	if policy == nil {
		policy = AllowAll
	}
	return &Controller{
		classes:   classes,
		policy:    policy,
		flows:     make(map[flow.Key]Record),
		perClass:  make([]int, classes),
		perAction: make(map[Action]int),
	}
}

// HandleDigest ingests one data-plane digest and returns the policy action.
// Digests for out-of-range classes panic: they indicate corrupt rules.
func (c *Controller) HandleDigest(d dataplane.Digest) Action {
	if d.Class < 0 || d.Class >= c.classes {
		panic(fmt.Sprintf("controller: digest class %d out of range", d.Class))
	}
	act := c.policy(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flows[d.Key] = Record{
		Class: d.Class, Action: act, At: d.At, TTD: d.TTD(), Packets: d.Packets,
	}
	c.perClass[d.Class]++
	c.perAction[act]++
	c.ttdSum += d.TTD()
	c.digests++
	return act
}

// ClassOf returns the recorded classification of a flow.
func (c *Controller) ClassOf(k flow.Key) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.flows[k.Canonical()]
	return r, ok
}

// Forget drops a flow's record (e.g. on flow-table eviction).
func (c *Controller) Forget(k flow.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.flows, k.Canonical())
}

// Flows returns the number of tracked flows.
func (c *Controller) Flows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flows)
}

// Digests returns the number of digests ingested (flows may repeat).
func (c *Controller) Digests() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.digests
}

// ClassCounts returns a copy of the per-class digest counts.
func (c *Controller) ClassCounts() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.perClass))
	copy(out, c.perClass)
	return out
}

// ActionCounts returns per-action digest counts.
func (c *Controller) ActionCounts() map[Action]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Action]int, len(c.perAction))
	for k, v := range c.perAction {
		out[k] = v
	}
	return out
}

// Stats is a point-in-time snapshot of the controller's counters, taken
// under one lock acquisition — the coherent view the telemetry plane
// exports (the individual accessors would each lock separately and could
// disagree mid-digest).
type Stats struct {
	// Digests counts digests ingested; Flows counts distinct tracked flows.
	Digests int
	Flows   int
	// Allowed/Blocked/Mirrored count digests by the verdict the policy
	// returned (block decisions, the counters the ISSUE's telemetry loop
	// closes over).
	Allowed  int
	Blocked  int
	Mirrored int
	// MeanTTD is the mean time-to-detection across digests (0 when none).
	MeanTTD time.Duration
}

// Stats snapshots all counters coherently.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Digests:  c.digests,
		Flows:    len(c.flows),
		Allowed:  c.perAction[ActionAllow],
		Blocked:  c.perAction[ActionBlock],
		Mirrored: c.perAction[ActionMirror],
	}
	if c.digests > 0 {
		st.MeanTTD = c.ttdSum / time.Duration(c.digests)
	}
	return st
}

// MeanTTD returns the mean time-to-detection across digests.
func (c *Controller) MeanTTD() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.digests == 0 {
		return 0
	}
	return c.ttdSum / time.Duration(c.digests)
}

// TopClasses returns the n most frequent classes with counts, descending.
func (c *Controller) TopClasses(n int) []struct{ Class, Count int } {
	counts := c.ClassCounts()
	type cc struct{ Class, Count int }
	all := make([]cc, 0, len(counts))
	for cls, cnt := range counts {
		if cnt > 0 {
			all = append(all, cc{cls, cnt})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Class < all[j].Class
	})
	if n < len(all) {
		all = all[:n]
	}
	out := make([]struct{ Class, Count int }, len(all))
	for i, x := range all {
		out[i] = struct{ Class, Count int }{x.Class, x.Count}
	}
	return out
}

// Attach wires the controller to a replayed pipeline: it ingests every
// digest from the results and returns how many were blocked.
func (c *Controller) Attach(results []dataplane.ReplayResult) (blocked int) {
	for _, r := range results {
		if c.HandleDigest(r.Digest) == ActionBlock {
			blocked++
		}
	}
	return blocked
}

// DigestSession is the streaming-session surface Serve consumes —
// engine.Session satisfies it. Declaring the interface here keeps the
// control plane decoupled from the engine's concrete type, the same way
// bfrt keeps a controller decoupled from the switch driver.
type DigestSession interface {
	// Digests is the live merged digest stream; it closes after the
	// session ends and every digest has been delivered.
	Digests() <-chan dataplane.Digest
	// Poll drains pending digests without blocking (the tail after the
	// channel closes, or the only path for poll-mode sessions).
	Poll(buf []dataplane.Digest) int
	// Block installs a mid-run drop verdict for the flow.
	Block(k flow.Key)
	// Evict reclaims the flow's register slot in the data plane —
	// flow-table ageing's controller-initiated path. Must be idempotent: a
	// flow that no longer owns a slot is a no-op.
	Evict(k flow.Key)
	// Err reports why the session died: nil after a graceful close, the
	// recorded cause (context cancellation, quarantined worker, shutdown
	// timeout) otherwise. Read after the digest stream ends.
	Err() error
}

// Serve runs the live feedback loop against a streaming engine session: it
// consumes digests while traffic is still flowing, records them, and pushes
// every ActionBlock verdict back into the session's drop filter — so a
// blocked flow stops consuming pipeline work mid-run, the paper's
// detect→block path. Each block verdict also evicts the flow's register
// slot: with the flow's remaining packets dropped at the dispatcher, an
// early-exited flow's parked slot would never see the flow-end packet that
// frees it, so block-without-evict leaks a slot per blocked flow (the
// engine's Session.Block evicts on its own as well; the explicit Evict
// keeps the contract with any DigestSession implementation, and eviction
// is idempotent). Serve returns after the session's digest stream ends
// (i.e. after Session.Close drains), reporting how many digests drew a
// block verdict and why the stream died: err is nil after a graceful
// close and the session's recorded cause (context cancellation, a
// quarantined worker, a shutdown timeout) otherwise — so a supervising
// control loop can distinguish "run complete" from "data plane failed
// under me" without reaching into the engine. Run it on its own goroutine
// alongside the packet feed.
func (c *Controller) Serve(s DigestSession) (blocked int, err error) {
	apply := func(d dataplane.Digest) {
		if c.HandleDigest(d) == ActionBlock {
			s.Block(d.Key)
			s.Evict(d.Key)
			blocked++
		}
	}
	for d := range s.Digests() {
		apply(d)
	}
	// Drain any tail the channel did not carry (defensive: covers sessions
	// that were polled before Serve attached).
	var buf [64]dataplane.Digest
	for {
		n := s.Poll(buf[:])
		if n == 0 {
			return blocked, s.Err()
		}
		for _, d := range buf[:n] {
			apply(d)
		}
	}
}
