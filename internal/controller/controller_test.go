package controller

import (
	"errors"
	"sync"
	"testing"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/flow"
)

func key(i byte) flow.Key {
	return flow.Key{
		SrcIP: flow.AddrFrom4(10, 0, 0, i), DstIP: flow.AddrFrom4(172, 16, 0, 1),
		SrcPort: 1000 + uint16(i), DstPort: 80, Proto: flow.ProtoTCP,
	}
}

func digest(i byte, class int, ttd time.Duration) dataplane.Digest {
	return dataplane.Digest{
		Key: key(i).Canonical(), Class: class,
		Started: 0, At: ttd, Packets: 10,
	}
}

func TestHandleDigestRecords(t *testing.T) {
	c := New(4, nil)
	act := c.HandleDigest(digest(1, 2, time.Second))
	if act != ActionAllow {
		t.Fatalf("default policy = %v, want allow", act)
	}
	r, ok := c.ClassOf(key(1))
	if !ok || r.Class != 2 || r.TTD != time.Second {
		t.Fatalf("record = %+v, ok=%v", r, ok)
	}
	if c.Flows() != 1 || c.Digests() != 1 {
		t.Fatal("counts wrong")
	}
}

func TestBlockPolicy(t *testing.T) {
	c := New(4, BlockClasses(1, 3))
	if c.HandleDigest(digest(1, 1, 0)) != ActionBlock {
		t.Fatal("class 1 not blocked")
	}
	if c.HandleDigest(digest(2, 0, 0)) != ActionAllow {
		t.Fatal("class 0 blocked")
	}
	acts := c.ActionCounts()
	if acts[ActionBlock] != 1 || acts[ActionAllow] != 1 {
		t.Fatalf("action counts %v", acts)
	}
}

func TestClassCountsAndTop(t *testing.T) {
	c := New(5, nil)
	for i := 0; i < 5; i++ {
		c.HandleDigest(digest(byte(i), 2, 0))
	}
	for i := 5; i < 8; i++ {
		c.HandleDigest(digest(byte(i), 4, 0))
	}
	counts := c.ClassCounts()
	if counts[2] != 5 || counts[4] != 3 {
		t.Fatalf("counts %v", counts)
	}
	top := c.TopClasses(1)
	if len(top) != 1 || top[0].Class != 2 || top[0].Count != 5 {
		t.Fatalf("top = %+v", top)
	}
}

func TestMeanTTD(t *testing.T) {
	c := New(4, nil)
	c.HandleDigest(digest(1, 0, 2*time.Second))
	c.HandleDigest(digest(2, 0, 4*time.Second))
	if got := c.MeanTTD(); got != 3*time.Second {
		t.Fatalf("mean TTD = %v, want 3s", got)
	}
	empty := New(4, nil)
	if empty.MeanTTD() != 0 {
		t.Fatal("empty mean TTD")
	}
}

func TestForget(t *testing.T) {
	c := New(4, nil)
	c.HandleDigest(digest(1, 0, 0))
	c.Forget(key(1))
	if _, ok := c.ClassOf(key(1)); ok {
		t.Fatal("Forget did not remove the record")
	}
}

func TestClassOfBothDirections(t *testing.T) {
	c := New(4, nil)
	c.HandleDigest(digest(7, 1, 0))
	if _, ok := c.ClassOf(key(7).Reverse()); !ok {
		t.Fatal("reverse-direction lookup failed (keys must canonicalise)")
	}
}

func TestOutOfRangeClassPanics(t *testing.T) {
	c := New(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on class out of range")
		}
	}()
	c.HandleDigest(digest(1, 5, 0))
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on classes < 2")
		}
	}()
	New(1, nil)
}

func TestConcurrentDigests(t *testing.T) {
	c := New(4, BlockClasses(3))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.HandleDigest(digest(byte(g*32+i%32), i%4, time.Duration(i)))
			}
		}(g)
	}
	wg.Wait()
	if c.Digests() != 800 {
		t.Fatalf("digests = %d, want 800", c.Digests())
	}
	sum := 0
	for _, v := range c.ClassCounts() {
		sum += v
	}
	if sum != 800 {
		t.Fatalf("class counts sum %d", sum)
	}
}

func TestAttach(t *testing.T) {
	c := New(4, BlockClasses(2))
	results := []dataplane.ReplayResult{
		{Digest: digest(1, 2, 0), Label: 2},
		{Digest: digest(2, 0, 0), Label: 0},
		{Digest: digest(3, 2, 0), Label: 1},
	}
	if blocked := c.Attach(results); blocked != 2 {
		t.Fatalf("blocked = %d, want 2", blocked)
	}
}

func TestActionString(t *testing.T) {
	if ActionAllow.String() != "allow" || ActionBlock.String() != "block" ||
		ActionMirror.String() != "mirror" || Action(9).String() == "" {
		t.Fatal("Action.String broken")
	}
}

// fakeSession implements DigestSession over a canned digest stream.
type fakeSession struct {
	ch      chan dataplane.Digest
	tail    []dataplane.Digest // served through Poll after the channel closes
	blocked []flow.Key
	evicted []flow.Key
	err     error // cause Serve should report after the stream ends
}

func (f *fakeSession) Digests() <-chan dataplane.Digest { return f.ch }
func (f *fakeSession) Block(k flow.Key)                 { f.blocked = append(f.blocked, k.Canonical()) }
func (f *fakeSession) Evict(k flow.Key)                 { f.evicted = append(f.evicted, k.Canonical()) }
func (f *fakeSession) Err() error                       { return f.err }
func (f *fakeSession) Poll(buf []dataplane.Digest) int {
	n := copy(buf, f.tail)
	f.tail = f.tail[n:]
	return n
}

func TestServeBlocksAndDrainsTail(t *testing.T) {
	c := New(4, BlockClasses(3))
	fs := &fakeSession{
		ch:   make(chan dataplane.Digest, 4),
		tail: []dataplane.Digest{digest(9, 3, time.Second)},
	}
	fs.ch <- digest(1, 3, time.Second)
	fs.ch <- digest(2, 0, time.Second)
	fs.ch <- digest(3, 3, time.Second)
	close(fs.ch)

	blocked, err := c.Serve(fs)
	if err != nil {
		t.Fatalf("Serve error on healthy session: %v", err)
	}
	if blocked != 3 {
		t.Fatalf("Serve blocked %d digests, want 3", blocked)
	}
	if len(fs.blocked) != 3 {
		t.Fatalf("session received %d Block calls, want 3", len(fs.blocked))
	}
	// Every block verdict must also reclaim the flow's register slot, or
	// blocked early-exited flows leak their slots forever.
	if len(fs.evicted) != 3 {
		t.Fatalf("session received %d Evict calls, want 3", len(fs.evicted))
	}
	for i := range fs.blocked {
		if fs.evicted[i] != fs.blocked[i] {
			t.Fatalf("evict %d targeted %v, blocked %v", i, fs.evicted[i], fs.blocked[i])
		}
	}
	if c.Digests() != 4 {
		t.Fatalf("controller ingested %d digests, want 4 (tail included)", c.Digests())
	}
	if r, ok := c.ClassOf(key(9)); !ok || r.Action != ActionBlock {
		t.Fatalf("tail digest not recorded/blocked: %+v ok=%v", r, ok)
	}
}

func TestServeReportsSessionFault(t *testing.T) {
	c := New(4, nil)
	cause := errors.New("shard 2 worker panicked")
	fs := &fakeSession{ch: make(chan dataplane.Digest), err: cause}
	close(fs.ch)
	if _, err := c.Serve(fs); !errors.Is(err, cause) {
		t.Fatalf("Serve err = %v, want the session's recorded cause", err)
	}
}
