package trace

import (
	"testing"
	"time"

	"splidt/internal/flow"
	"splidt/internal/pkt"
)

// TestPartitionFlowDisjointOrderPreserving pins the properties multi-feeder
// dispatch depends on: partitions cover the input exactly (no packet lost,
// duplicated, or mutated), every flow — both directions — lives entirely in
// one partition, and each partition preserves the input's relative order.
func TestPartitionFlowDisjointOrderPreserving(t *testing.T) {
	pkts := Interleave(Generate(D3, 120, 5), time.Millisecond)
	for _, m := range []int{1, 2, 3, 4, 8} {
		parts := Partition(pkts, m)
		if len(parts) != m {
			t.Fatalf("m=%d: %d partitions", m, len(parts))
		}
		total := 0
		owner := make(map[flow.Key]int)
		for j, part := range parts {
			total += len(part)
			// Relative order within a partition must match the input's: the
			// part must be a subsequence of pkts.
			pos := 0
			for _, p := range part {
				for pos < len(pkts) && pkts[pos] != p {
					pos++
				}
				if pos == len(pkts) {
					t.Fatalf("m=%d part %d: not an order-preserving subsequence", m, j)
				}
				pos++
				c := p.Key.Canonical()
				if prev, ok := owner[c]; ok && prev != j {
					t.Fatalf("m=%d: flow %v split across partitions %d and %d", m, c, prev, j)
				}
				owner[c] = j
			}
		}
		if total != len(pkts) {
			t.Fatalf("m=%d: partitions carry %d packets, input has %d", m, total, len(pkts))
		}
		if m > 1 && len(parts[0]) == len(pkts) {
			t.Fatalf("m=%d: everything landed in one partition", m)
		}
	}
}

// TestPartitionHandBuiltPackets covers the ShardHash==0 fallback: packets
// without a precomputed dispatch hash must partition consistently with
// stamped ones.
func TestPartitionHandBuiltPackets(t *testing.T) {
	k := flow.Key{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	stamped := pkt.Packet{Key: k, ShardHash: k.ShardHash()}
	bare := pkt.Packet{Key: k}
	for _, m := range []int{2, 3, 7} {
		parts := Partition([]pkt.Packet{stamped, bare}, m)
		found := -1
		for j, part := range parts {
			if len(part) == 0 {
				continue
			}
			if len(part) != 2 {
				t.Fatalf("m=%d: stamped and bare packets of one flow split up", m)
			}
			found = j
		}
		if found < 0 {
			t.Fatalf("m=%d: packets vanished", m)
		}
	}
}

// TestPartitionPanicsOnBadCount pins the contract for a non-positive m.
func TestPartitionPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition(pkts, 0) did not panic")
		}
	}()
	Partition(nil, 0)
}
