package trace

import (
	"math/rand"
	"testing"
	"time"

	"splidt/internal/features"
)

func TestSpecsCover(t *testing.T) {
	specs := Specs()
	wantClasses := map[DatasetID]int{D1: 19, D2: 4, D3: 13, D4: 11, D5: 32, D6: 10, D7: 10}
	for id, want := range wantClasses {
		s, ok := specs[id]
		if !ok {
			t.Fatalf("missing spec for %v", id)
		}
		if s.Classes != want {
			t.Errorf("%v classes = %d, want %d (paper Table 2)", id, s.Classes, want)
		}
	}
	if len(AllDatasets()) != 7 {
		t.Fatal("AllDatasets must list 7 datasets")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(D2, 20, 7)
	b := Generate(D2, 20, 7)
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("lengths %d/%d, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Label != b[i].Label || len(a[i].Packets) != len(b[i].Packets) {
			t.Fatalf("flow %d differs across identical seeds", i)
		}
		for j := range a[i].Packets {
			if a[i].Packets[j] != b[i].Packets[j] {
				t.Fatalf("flow %d packet %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(D2, 10, 1)
	b := Generate(D2, 10, 2)
	same := true
	for i := range a {
		if len(a[i].Packets) != len(b[i].Packets) {
			same = false
			break
		}
	}
	if same && a[0].Key == b[0].Key {
		t.Fatal("different seeds produced identical flows")
	}
}

func TestGenerateClassBalance(t *testing.T) {
	n := 4 * 25
	fs := Generate(D2, n, 3)
	counts := map[int]int{}
	for _, f := range fs {
		counts[f.Label]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 25 {
			t.Fatalf("class %d has %d flows, want 25", c, counts[c])
		}
	}
}

func TestGeneratedFlowsWellFormed(t *testing.T) {
	for _, id := range AllDatasets() {
		fs := Generate(id, 2*NumClasses(id), 11)
		for _, f := range fs {
			if f.Label < 0 || f.Label >= NumClasses(id) {
				t.Fatalf("%v: label %d out of range", id, f.Label)
			}
			if len(f.Packets) < 4 {
				t.Fatalf("%v: flow with %d packets", id, len(f.Packets))
			}
			if !f.Key.IsCanonical() {
				t.Fatalf("%v: non-canonical flow key", id)
			}
			prev := time.Duration(-1)
			for i, p := range f.Packets {
				if p.Seq != i+1 {
					t.Fatalf("%v: packet seq %d at index %d", id, p.Seq, i)
				}
				if p.FlowSize != len(f.Packets) {
					t.Fatalf("%v: FlowSize %d != len %d", id, p.FlowSize, len(f.Packets))
				}
				if p.TS < prev {
					t.Fatalf("%v: timestamps not monotone", id)
				}
				prev = p.TS
				if p.Len < 40 || p.Len > 1500 {
					t.Fatalf("%v: packet length %d out of [40,1500]", id, p.Len)
				}
				if p.Key.Canonical() != f.Key {
					t.Fatalf("%v: packet key not of this flow", id)
				}
			}
		}
	}
}

func TestClassesAreSeparableByFlowFeatures(t *testing.T) {
	// Sanity: class centroids of at least one stateful feature must differ
	// markedly between some pair of classes (signal exists), while single
	// stateless fields stay overlapping (checked loosely via port pools).
	fs := Generate(D2, 200, 5)
	cent := make(map[int]features.Vector)
	cnt := make(map[int]int)
	for _, f := range fs {
		v := features.FlowVector(f.Packets)
		c := cent[f.Label]
		for i := range c {
			c[i] += v[i]
		}
		cent[f.Label] = c
		cnt[f.Label]++
	}
	maxRel := 0.0
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			va, vb := cent[a], cent[b]
			for i := 0; i < features.NumStateful; i++ {
				ma, mb := va[i]/float64(cnt[a]), vb[i]/float64(cnt[b])
				if ma+mb == 0 {
					continue
				}
				rel := (ma - mb) / (ma + mb)
				if rel < 0 {
					rel = -rel
				}
				if rel > maxRel {
					maxRel = rel
				}
			}
		}
	}
	if maxRel < 0.2 {
		t.Fatalf("no feature separates any class pair (max relative gap %.3f)", maxRel)
	}
}

func TestBuildSamplesWindows(t *testing.T) {
	fs := Generate(D2, 40, 9)
	samples := BuildSamples(fs, 4)
	if len(samples) != 40 {
		t.Fatalf("got %d samples, want 40", len(samples))
	}
	for _, s := range samples {
		if len(s.Windows) == 0 || len(s.Windows) > 4 {
			t.Fatalf("sample has %d windows", len(s.Windows))
		}
	}
}

func TestSplit(t *testing.T) {
	fs := Generate(D2, 40, 9)
	samples := BuildSamples(fs, 1)
	train, test := Split(samples, 0.75)
	if len(train) != 30 || len(test) != 10 {
		t.Fatalf("split sizes %d/%d, want 30/10", len(train), len(test))
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(-1) did not panic")
		}
	}()
	Split(nil, -0.5)
}

func TestSampleSetCaching(t *testing.T) {
	ss := NewSampleSet(D2, 24, 5, 77)
	a := ss.For(3)
	b := ss.For(3)
	if &a[0] != &b[0] {
		t.Fatal("SampleSet did not cache windowed samples")
	}
	if len(ss.Flows()) != 24 {
		t.Fatalf("Flows() = %d, want 24", len(ss.Flows()))
	}
	if ss.MaxParts() != 5 {
		t.Fatalf("MaxParts() = %d, want 5", ss.MaxParts())
	}
}

func TestSampleSetPanicsOutOfRange(t *testing.T) {
	ss := NewSampleSet(D2, 8, 3, 77)
	defer func() {
		if recover() == nil {
			t.Fatal("For(4) beyond maxParts did not panic")
		}
	}()
	ss.For(4)
}

func TestWorkloadDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range Workloads() {
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			s := w.SampleFlowSize(rng)
			if s < 2 {
				t.Fatalf("%s: flow size %d < 2", w.Name, s)
			}
			sum += float64(s)
		}
		mean := sum / float64(n)
		if mean < 0.6*w.MeanFlowPkts || mean > 1.6*w.MeanFlowPkts {
			t.Fatalf("%s: empirical mean size %.1f vs spec %.1f", w.Name, mean, w.MeanFlowPkts)
		}
	}
}

func TestWorkloadDurations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range Workloads() {
		var sum time.Duration
		n := 20000
		for i := 0; i < n; i++ {
			d := w.SampleDuration(rng)
			if d < time.Millisecond {
				t.Fatalf("%s: duration %v < 1ms", w.Name, d)
			}
			sum += d
		}
		mean := sum / time.Duration(n)
		if mean < w.MeanDuration/2 || mean > 2*w.MeanDuration {
			t.Fatalf("%s: empirical mean duration %v vs spec %v", w.Name, mean, w.MeanDuration)
		}
	}
}

func TestHadoopTurnsOverFasterThanWebserver(t *testing.T) {
	// The recirculation-bandwidth ratio in Table 5 (HD ≈ 2× WS) follows
	// from completion rates.
	if Hadoop.CompletionRate(1_000_000) <= Webserver.CompletionRate(1_000_000) {
		t.Fatal("Hadoop must complete flows faster than Webserver")
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(D2, 100, int64(i))
	}
}

func TestGeneratedPacketsCarryShardHash(t *testing.T) {
	// Every generated packet — both directions included — must carry the
	// flow's precomputed dispatch hash, so the engine's serial dispatch
	// stage never hashes. Stream and Generate share genFlow, so this covers
	// the lazy source too.
	for _, f := range Generate(D3, 50, 3) {
		want := f.Key.ShardHash()
		for _, p := range f.Packets {
			if p.ShardHash != want {
				t.Fatalf("flow %v: packet %d carries hash %d, want %d (dir reversed=%v)",
					f.Key, p.Seq, p.ShardHash, want, p.Key != f.Key)
			}
			if p.Shard(8) != f.Key.Shard(8) {
				t.Fatalf("flow %v: packet %d shards to %d, flow shards to %d",
					f.Key, p.Seq, p.Shard(8), f.Key.Shard(8))
			}
		}
	}
}
