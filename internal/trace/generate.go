package trace

//splidt:packettime — trace synthesis is deterministic per seed; all randomness flows through an explicit seeded rng

import (
	"math"
	"math/rand"
	"time"

	"splidt/internal/flow"
	"splidt/internal/pkt"
)

// LabeledFlow is one generated flow: its canonical key, packets in arrival
// order, and ground-truth class label.
type LabeledFlow struct {
	Key     flow.Key
	Packets []pkt.Packet
	Label   int
}

// Generate synthesises n labelled flows from the dataset's generative model.
// Flows are drawn class-balanced (round-robin over classes) so macro-F1 is
// meaningful even for the 32-class dataset. seed controls flow-level
// randomness; the class profiles themselves derive from the spec seed, so
// two calls with different seeds produce different flows from the same
// class-conditional distributions (train/test splits).
func Generate(id DatasetID, n int, seed int64) []LabeledFlow {
	spec := id.Spec()
	classes := buildClasses(spec)
	rng := genRNG(id, seed)
	out := make([]LabeledFlow, 0, n)
	for i := 0; i < n; i++ {
		c := classes[i%len(classes)]
		out = append(out, genFlow(rng, c, i))
	}
	return out
}

// GenConfig tunes optional deviations from the dataset's generative model.
// The zero value reproduces Generate exactly, byte for byte.
type GenConfig struct {
	// LongIATFraction selects this fraction of generated flows (uniformly,
	// class-independent) and rewrites their timelines into heavy-tailed
	// keepalive patterns: every inter-arrival gap is floored at a long idle
	// period (0.6–2s, drawn per gap). Such flows are alive for their whole
	// packet sequence but idle far past any global timeout tuned for chatty
	// traffic — the workload that separates per-class adaptive lifetimes
	// (trained on the same heavy-tailed samples, so their leaves learn
	// multi-second budgets) from a one-size-fits-all IdleTimeout, which
	// evicts them mid-flow. 0 disables the rewrite.
	LongIATFraction float64
}

// Keepalive gap bounds for GenConfig.LongIATFraction: each stretched gap is
// drawn uniformly from [longGapMin, longGapMin+longGapSpan).
const (
	longGapMin  = 600 * time.Millisecond
	longGapSpan = 1400 * time.Millisecond
)

// longIATSalt decorrelates the keepalive selection stream from flow-level
// randomness, so enabling the rewrite never perturbs which base flows are
// generated or how.
const longIATSalt = 0x5eefca11

// GenerateWith is Generate plus the GenConfig deviations, applied as a
// deterministic post-pass over the base flow sequence: GenerateWith(id, n,
// seed, GenConfig{}) is identical to Generate(id, n, seed), and the same
// non-zero config always rewrites the same flows the same way.
func GenerateWith(id DatasetID, n int, seed int64, cfg GenConfig) []LabeledFlow {
	flows := Generate(id, n, seed)
	if cfg.LongIATFraction <= 0 {
		return flows
	}
	aux := rand.New(rand.NewSource(seed ^ (int64(id) << 32) ^ longIATSalt))
	for i := range flows {
		if aux.Float64() >= cfg.LongIATFraction {
			continue
		}
		stretchIATs(aux, flows[i].Packets)
	}
	return flows
}

// stretchIATs rewrites a flow's timeline into a keepalive pattern: every
// inter-arrival gap shorter than a freshly drawn long idle period is
// stretched to it, and all later timestamps shift by the accumulated
// stretch, preserving arrival order.
func stretchIATs(rng *rand.Rand, packets []pkt.Packet) {
	var shift time.Duration
	prev := packets[0].TS // original (unshifted) predecessor timestamp
	for j := 1; j < len(packets); j++ {
		orig := packets[j].TS
		gap := orig - prev
		floor := longGapMin + time.Duration(rng.Float64()*float64(longGapSpan))
		if gap < floor {
			shift += floor - gap
		}
		packets[j].TS = orig + shift
		prev = orig
	}
}

// genRNG is the flow-level randomness source of a (dataset, seed) pair.
// Generate and NewStream share it so eager and lazy generation yield the
// same flow sequence.
func genRNG(id DatasetID, seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (int64(id) << 32)))
}

// genFlow draws one flow from a class profile. The flow-level knob vector is
// the profile's segment knobs plus within-class noise; packets then sample
// from per-packet distributions parameterised by the active segment.
func genFlow(rng *rand.Rand, c classProfile, flowIdx int) LabeledFlow {
	// Per-flow jitter: same jitter applies to all segments so temporal
	// structure is preserved.
	var jitter [numKnobs]float64
	for k := knob(0); k < numKnobs; k++ {
		jitter[k] = rng.NormFloat64() * c.noise * knobScale(k)
	}
	segs := make([]segment, len(c.segments))
	for i, s := range c.segments {
		for k := knob(0); k < numKnobs; k++ {
			segs[i].vals[k] = clampKnob(k, s.vals[k]+jitter[k])
		}
	}

	size := int(segs[0].vals[knobFlowSize] * math.Exp(rng.NormFloat64()*0.35))
	if size < 4 {
		size = 4
	}

	proto := flow.ProtoUDP
	if c.protoTCP {
		proto = flow.ProtoTCP
	}
	key := flow.Key{
		// Client address below server address so the initiating direction is
		// canonical-forward. Ports come from pools shared by every class.
		SrcIP:   flow.AddrFrom4(10, 1, byte(rng.Intn(250)), byte(1+rng.Intn(250))),
		DstIP:   flow.AddrFrom4(172, 16, byte(rng.Intn(250)), byte(1+rng.Intn(250))),
		SrcPort: uint16(1024 + rng.Intn(60000)),
		DstPort: wellKnownPorts[rng.Intn(len(wellKnownPorts))],
		Proto:   proto,
	}
	if !key.IsCanonical() {
		key.SrcIP, key.DstIP = key.DstIP, key.SrcIP
	}
	// Precompute the dispatch hash once per flow; it is direction-symmetric,
	// so reversed packets below carry the same value and the engine's serial
	// dispatch stage never hashes.
	shardHash := key.ShardHash()

	packets := make([]pkt.Packet, 0, size)
	ts := time.Duration(0)
	for i := 0; i < size; i++ {
		seg := segs[len(segs)*i/size]
		p := pkt.Packet{
			Key:       key,
			TS:        ts,
			Seq:       i + 1,
			FlowSize:  size,
			ShardHash: shardHash,
		}

		// Direction.
		if rng.Float64() < seg.vals[knobBwdRatio] && i > 0 {
			p.Key = key.Reverse()
		}

		// Length: mixture of small / normal / large.
		switch r := rng.Float64(); {
		case r < seg.vals[knobSmallFrac]:
			p.Len = 40 + rng.Intn(88)
		case r < seg.vals[knobSmallFrac]+seg.vals[knobLargeFrac]:
			p.Len = 1001 + rng.Intn(499)
		default:
			l := seg.vals[knobLenMean] + rng.NormFloat64()*seg.vals[knobLenStd]
			p.Len = int(clamp(l, 40, 1500))
		}
		if rng.Float64() > seg.vals[knobPayloadFrac] && p.Len > pkt.HeaderBytes {
			p.Len = pkt.HeaderBytes // pure-header packet (e.g. bare ACK)
		}

		// Flags.
		if proto == flow.ProtoTCP {
			switch {
			case i == 0:
				p.Flags = pkt.FlagSYN
			case i == 1 && !p.Key.IsCanonical():
				p.Flags = pkt.FlagSYN | pkt.FlagACK
			case i == size-1:
				p.Flags = pkt.FlagFIN | pkt.FlagACK
			default:
				p.Flags = pkt.FlagACK
				if rng.Float64() < seg.vals[knobPSHRate] {
					p.Flags |= pkt.FlagPSH
				}
				if rng.Float64() < seg.vals[knobURGRate] {
					p.Flags |= pkt.FlagURG
				}
				if rng.Float64() < seg.vals[knobRSTRate] {
					p.Flags |= pkt.FlagRST
				}
			}
		}

		packets = append(packets, p)

		// Inter-arrival to the next packet: lognormal with burst/idle
		// modulation.
		mu, sigma := seg.vals[knobIATMean], seg.vals[knobIATStd]
		iatUS := math.Exp(mu + rng.NormFloat64()*sigma)
		switch r := rng.Float64(); {
		case r < seg.vals[knobBurstiness]:
			iatUS = 50 + 900*rng.Float64() // sub-ms train
		case r < seg.vals[knobBurstiness]+seg.vals[knobIdleness]:
			iatUS = 110_000 + 400_000*rng.Float64() // idle gap
		}
		ts += time.Duration(iatUS * float64(time.Microsecond))
	}

	return LabeledFlow{Key: key, Packets: packets, Label: c.label}
}

// NumClasses returns the class count of the dataset.
func NumClasses(id DatasetID) int { return id.Spec().Classes }
