package trace

import (
	"testing"
	"time"
)

// TestStreamMatchesInterleave: the lazy stream must yield exactly the
// packet sequence Interleave produces over the eagerly generated flows —
// same flows, same global order, same tie-breaking.
func TestStreamMatchesInterleave(t *testing.T) {
	for _, spacing := range []time.Duration{0, time.Millisecond, 40 * time.Millisecond} {
		const n, seed = 60, 9
		want := Interleave(Generate(D2, n, seed), spacing)
		s := NewStream(D2, n, seed, spacing)
		for i, w := range want {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("spacing %v: stream ended at %d, want %d packets", spacing, i, len(want))
			}
			if got != w {
				t.Fatalf("spacing %v: packet %d = %+v, want %+v", spacing, i, got, w)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("spacing %v: stream yielded more than %d packets", spacing, len(want))
		}
		if s.Emitted() != len(want) {
			t.Fatalf("spacing %v: Emitted() = %d, want %d", spacing, s.Emitted(), len(want))
		}
	}
}

// TestStreamLabels: ground truth accumulates as flows are admitted and
// matches Generate's labels.
func TestStreamLabels(t *testing.T) {
	const n, seed = 40, 3
	flows := Generate(D3, n, seed)
	s := NewStream(D3, n, seed, time.Millisecond)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if s.Flows() != n {
		t.Fatalf("Flows() = %d, want %d", s.Flows(), n)
	}
	labels := s.Labels()
	for _, f := range flows {
		if got, ok := labels[f.Key]; !ok || got != f.Label {
			t.Fatalf("label of %v = %d (present %v), want %d", f.Key, got, ok, f.Label)
		}
	}
}

// TestStreamTimestampsMonotone: the merged output never goes back in time.
func TestStreamTimestampsMonotone(t *testing.T) {
	s := NewStream(D1, 50, 11, 500*time.Microsecond)
	prev := time.Duration(-1)
	for {
		p, ok := s.Next()
		if !ok {
			return
		}
		if p.TS < prev {
			t.Fatalf("timestamp regressed: %v after %v", p.TS, prev)
		}
		prev = p.TS
	}
}
