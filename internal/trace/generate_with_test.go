package trace

import "testing"

// A zero GenConfig must reproduce Generate byte for byte — GenerateWith is a
// post-pass, never a fork of the generative model.
func TestGenerateWithZeroConfigIdentical(t *testing.T) {
	a := Generate(D2, 30, 11)
	b := GenerateWith(D2, 30, 11, GenConfig{})
	if len(a) != len(b) {
		t.Fatalf("lengths %d/%d differ", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Label != b[i].Label || len(a[i].Packets) != len(b[i].Packets) {
			t.Fatalf("flow %d differs under zero GenConfig", i)
		}
		for j := range a[i].Packets {
			if a[i].Packets[j] != b[i].Packets[j] {
				t.Fatalf("flow %d packet %d differs under zero GenConfig", i, j)
			}
		}
	}
}

func TestGenerateWithLongIAT(t *testing.T) {
	base := Generate(D2, 40, 11)
	heavy := GenerateWith(D2, 40, 11, GenConfig{LongIATFraction: 0.5})
	again := GenerateWith(D2, 40, 11, GenConfig{LongIATFraction: 0.5})

	stretched, untouched := 0, 0
	for i := range heavy {
		// The rewrite never changes identity, labels, or packet counts.
		if heavy[i].Key != base[i].Key || heavy[i].Label != base[i].Label ||
			len(heavy[i].Packets) != len(base[i].Packets) {
			t.Fatalf("flow %d: rewrite changed non-timestamp state", i)
		}
		// Deterministic: same config, same flows, same timelines.
		for j := range heavy[i].Packets {
			if heavy[i].Packets[j] != again[i].Packets[j] {
				t.Fatalf("flow %d packet %d differs across identical configs", i, j)
			}
		}
		ps := heavy[i].Packets
		if ps[len(ps)-1].TS == base[i].Packets[len(ps)-1].TS {
			untouched++
			continue
		}
		stretched++
		for j := 1; j < len(ps); j++ {
			if gap := ps[j].TS - ps[j-1].TS; gap < longGapMin {
				t.Fatalf("flow %d gap %d is %v, want >= %v after stretch", i, j, gap, longGapMin)
			}
		}
	}
	if stretched == 0 || untouched == 0 {
		t.Fatalf("want a mix of stretched and untouched flows, got %d/%d", stretched, untouched)
	}
	// Roughly the requested fraction (binomial, n=40, p=0.5 — 6σ bounds).
	if stretched < 5 || stretched > 35 {
		t.Fatalf("stretched %d of 40 flows, far from LongIATFraction 0.5", stretched)
	}
}
