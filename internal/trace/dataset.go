// Package trace synthesises the labelled network traffic this reproduction
// uses in place of the paper's CIC datasets (D1–D7) and the Facebook
// datacenter workloads (Webserver, Hadoop).
//
// The generators are constructed to exhibit the two statistical properties
// the paper's results rest on (§2.2):
//
//  1. Class-discriminative signal is spread across many stateful features:
//     each class perturbs a small, class-specific subset of generator knobs,
//     so separating all classes requires a large union of features, while
//     any one decision region needs only a few — the feature-sparsity
//     property behind Table 1.
//  2. Per-packet (stateless) fields are weakly informative: knob shifts are
//     small relative to per-packet noise, so only windowed aggregates
//     separate classes — the gap behind Figure 2.
//
// All generation is deterministic given the dataset seed.
package trace

import (
	"fmt"
	"math/rand"
)

// DatasetID names one of the seven synthetic datasets standing in for the
// paper's D1–D7.
type DatasetID int

// The seven datasets. Class counts match the paper's Table 2.
const (
	D1 DatasetID = iota + 1 // CIC-IoMT2024 analogue: 19 classes
	D2                      // CIC-IoT2023-a analogue: 4 classes
	D3                      // ISCX-VPN2016 analogue: 13 classes
	D4                      // CampusTraffic analogue: 11 classes
	D5                      // CIC-IoT2023-b analogue: 32 classes
	D6                      // CIC-IDS2017 analogue: 10 classes
	D7                      // CIC-IDS2018 analogue: 10 classes
)

// String returns the dataset's short name.
func (d DatasetID) String() string {
	if d < D1 || d > D7 {
		return fmt.Sprintf("D?(%d)", int(d))
	}
	return fmt.Sprintf("D%d", int(d))
}

// AllDatasets lists D1–D7 in order.
func AllDatasets() []DatasetID { return []DatasetID{D1, D2, D3, D4, D5, D6, D7} }

// Spec describes a dataset's generative configuration.
type Spec struct {
	ID      DatasetID
	Name    string
	Classes int
	// Separation scales how far class signatures move from the base profile,
	// in units of within-class noise. Higher separation → higher attainable
	// F1 (the paper's D7 peaks near 0.99; D5 near 0.45).
	Separation float64
	// SignatureKnobs is the number of generator knobs each class perturbs —
	// kept small to preserve per-subtree feature sparsity.
	SignatureKnobs int
	// Segments is the maximum number of temporal segments per class. More
	// segments put signal into specific windows, rewarding partitioned
	// (window-specialised) models.
	Segments int
	// Seed drives procedural class-profile construction.
	Seed int64
}

// Specs returns the builtin specification for each dataset. The class counts
// follow the paper's Table 2; separation is tuned so peak model F1 tracks the
// relative ordering the paper reports (D7 ≳ D6 > D2 ≈ D3 > D4 > D1 > D5).
func Specs() map[DatasetID]Spec {
	return map[DatasetID]Spec{
		D1: {ID: D1, Name: "synth-iomt", Classes: 19, Separation: 1.4, SignatureKnobs: 4, Segments: 3, Seed: 101},
		D2: {ID: D2, Name: "synth-iot-a", Classes: 4, Separation: 2.4, SignatureKnobs: 4, Segments: 2, Seed: 102},
		D3: {ID: D3, Name: "synth-vpn", Classes: 13, Separation: 2.2, SignatureKnobs: 5, Segments: 3, Seed: 103},
		D4: {ID: D4, Name: "synth-campus", Classes: 11, Separation: 1.7, SignatureKnobs: 4, Segments: 2, Seed: 104},
		D5: {ID: D5, Name: "synth-iot-b", Classes: 32, Separation: 1.0, SignatureKnobs: 3, Segments: 3, Seed: 105},
		D6: {ID: D6, Name: "synth-ids17", Classes: 10, Separation: 3.0, SignatureKnobs: 5, Segments: 3, Seed: 106},
		D7: {ID: D7, Name: "synth-ids18", Classes: 10, Separation: 3.4, SignatureKnobs: 5, Segments: 2, Seed: 107},
	}
}

// Spec returns the builtin spec for id, panicking on unknown ids.
func (d DatasetID) Spec() Spec {
	s, ok := Specs()[d]
	if !ok {
		panic("trace: unknown dataset " + d.String())
	}
	return s
}

// knob indexes one generative parameter a class signature can perturb.
// Each knob influences a distinct group of stateful features, so spreading
// signatures across knobs spreads signal across the feature vocabulary.
type knob int

const (
	knobLenMean     knob = iota // mean packet length → len stats, byte counts
	knobLenStd                  // length dispersion → std_pkt_len, len_range
	knobIATMean                 // mean inter-arrival → IAT stats, rates, duration
	knobIATStd                  // IAT dispersion → std_iat, bursts, idles
	knobPSHRate                 // PSH flag probability → psh_count
	knobURGRate                 // URG flag probability → urg_count
	knobRSTRate                 // RST flag probability → rst_count
	knobBwdRatio                // backward-packet fraction → fwd/bwd stats, ratio
	knobSmallFrac               // fraction of tiny packets → small_pkt_count
	knobLargeFrac               // fraction of jumbo packets → large_pkt_count
	knobBurstiness              // probability of sub-ms trains → burst_count
	knobIdleness                // probability of >100ms gaps → idle_count
	knobPayloadFrac             // payload-bearing fraction → payload/act stats
	knobFlowSize                // flow length scale → pkt_count, duration
	numKnobs
)

// segment is one temporal phase of a class's flows, expressed as knob
// values. Flows play their segments in order, each covering an equal
// fraction of the flow's packets.
type segment struct {
	vals [numKnobs]float64
}

// classProfile is the complete generative model for one traffic class.
// Ports are deliberately NOT part of the profile: every class draws source
// and destination ports from the same shared pools, so stateless per-packet
// fields cannot identify a class on their own (the property behind the
// per-packet gap in Figure 2).
type classProfile struct {
	label    int
	segments []segment
	// noise scales within-class variation of knob values between flows.
	noise    float64
	protoTCP bool
}

// baseSegment returns the knob values every class starts from.
func baseSegment() segment {
	var s segment
	s.vals[knobLenMean] = 420    // bytes
	s.vals[knobLenStd] = 260     // bytes
	s.vals[knobIATMean] = 9.2    // ln(microseconds): e^9.2 ≈ 9.9ms
	s.vals[knobIATStd] = 0.9     // lognormal sigma
	s.vals[knobPSHRate] = 0.25   // probability
	s.vals[knobURGRate] = 0.02   // probability
	s.vals[knobRSTRate] = 0.01   // probability
	s.vals[knobBwdRatio] = 0.40  // fraction
	s.vals[knobSmallFrac] = 0.20 // fraction
	s.vals[knobLargeFrac] = 0.10 // fraction
	s.vals[knobBurstiness] = 0.15
	s.vals[knobIdleness] = 0.03
	s.vals[knobPayloadFrac] = 0.65
	s.vals[knobFlowSize] = 64 // packets (scale of geometric-ish law)
	return s
}

// knobScale returns the perturbation unit for each knob: signatures shift a
// knob by separation × knobScale, and flows jitter by noise × knobScale.
func knobScale(k knob) float64 {
	switch k {
	case knobLenMean:
		return 110
	case knobLenStd:
		return 70
	case knobIATMean:
		return 0.55
	case knobIATStd:
		return 0.25
	case knobPSHRate, knobBwdRatio, knobPayloadFrac:
		return 0.09
	case knobURGRate, knobRSTRate:
		return 0.035
	case knobSmallFrac, knobLargeFrac, knobBurstiness:
		return 0.08
	case knobIdleness:
		return 0.03
	case knobFlowSize:
		return 18
	default:
		return 0.1
	}
}

// clampKnob keeps knob values physically meaningful.
func clampKnob(k knob, v float64) float64 {
	switch k {
	case knobLenMean:
		return clamp(v, 60, 1400)
	case knobLenStd:
		return clamp(v, 10, 600)
	case knobIATMean:
		return clamp(v, 5.5, 13.5) // ~0.25ms .. ~730ms
	case knobIATStd:
		return clamp(v, 0.1, 2.2)
	case knobPSHRate, knobBwdRatio, knobSmallFrac, knobLargeFrac,
		knobBurstiness, knobPayloadFrac:
		return clamp(v, 0, 0.95)
	case knobURGRate, knobRSTRate, knobIdleness:
		return clamp(v, 0, 0.5)
	case knobFlowSize:
		return clamp(v, 12, 400)
	default:
		return v
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// buildClasses procedurally constructs the class profiles for a spec.
// Each class perturbs SignatureKnobs randomly chosen knobs by ±Separation
// scale units; multi-segment classes move part of their signature into a
// specific temporal segment so only window-aware models can read it.
func buildClasses(spec Spec) []classProfile {
	rng := rand.New(rand.NewSource(spec.Seed))
	classes := make([]classProfile, spec.Classes)
	for c := range classes {
		nSeg := 1 + rng.Intn(spec.Segments)
		segs := make([]segment, nSeg)
		base := baseSegment()
		for i := range segs {
			segs[i] = base
		}
		// Choose the signature knobs without replacement.
		perm := rng.Perm(int(numKnobs))
		sig := perm[:spec.SignatureKnobs]
		for _, ki := range sig {
			k := knob(ki)
			dir := 1.0
			if rng.Intn(2) == 0 {
				dir = -1
			}
			shift := dir * spec.Separation * knobScale(k) * (0.8 + 0.4*rng.Float64())
			// Apply the shift to one random segment (temporal signature) or
			// to all segments (global signature), 50/50.
			if nSeg > 1 && rng.Intn(2) == 0 {
				si := rng.Intn(nSeg)
				segs[si].vals[k] = clampKnob(k, segs[si].vals[k]+shift)
			} else {
				for i := range segs {
					segs[i].vals[k] = clampKnob(k, segs[i].vals[k]+shift)
				}
			}
		}
		classes[c] = classProfile{
			label:    c,
			segments: segs,
			noise:    0.55,
			protoTCP: rng.Float64() < 0.8,
		}
	}
	return classes
}

// wellKnownPorts is a small pool shared across classes so destination port
// alone cannot identify a class.
var wellKnownPorts = []uint16{80, 443, 53, 123, 1883, 8080, 8883, 5683}
