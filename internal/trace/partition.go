package trace

import "splidt/internal/pkt"

// Partition splits an interleaved packet sequence into m packet-disjoint
// subsequences by flow hash: every packet of a flow (both directions) lands
// in the same partition, and packets keep their relative order within each
// partition. This is the producer-side analogue of the engine's shard
// dispatch — it is what lets M concurrent feeders (engine.Session.NewFeeder)
// drive one session in parallel while preserving per-flow packet order, the
// precondition for the engine's digest-multiset equivalence.
//
// The partition index is taken from the upper bits of the flow's dispatch
// hash while shard selection reduces the full hash modulo the shard count,
// so partition choice stays statistically independent of shard choice: each
// feeder's traffic spreads across all shards instead of pinning feeder i to
// shard i whenever m equals the shard count.
//
// Partition copies packets into fresh slices; the input is not retained. m
// must be positive.
func Partition(pkts []pkt.Packet, m int) [][]pkt.Packet {
	if m <= 0 {
		panic("trace: non-positive partition count")
	}
	parts := make([][]pkt.Packet, m)
	if m == 1 {
		parts[0] = append([]pkt.Packet(nil), pkts...)
		return parts
	}
	counts := make([]int, m)
	for i := range pkts {
		counts[partitionOf(&pkts[i], m)]++
	}
	for i, c := range counts {
		parts[i] = make([]pkt.Packet, 0, c)
	}
	for i := range pkts {
		j := partitionOf(&pkts[i], m)
		parts[j] = append(parts[j], pkts[i])
	}
	return parts
}

// partitionOf maps a packet to its partition by the high half of the flow's
// direction-symmetric dispatch hash, falling back to recomputing the hash
// for hand-built packets that never had it stamped (mirroring pkt.Shard).
func partitionOf(p *pkt.Packet, m int) int {
	h := p.ShardHash
	if h == 0 {
		h = p.Key.ShardHash()
	}
	return int((h >> 32) % uint64(m))
}
