package trace

import (
	"sync"

	"splidt/internal/features"
	"splidt/internal/pkt"
)

// Sample is one flow rendered as training data: a feature vector per window
// plus the ground-truth label. Windows[i] is what the active subtree in
// partition i observes.
type Sample struct {
	Windows []features.Vector
	Label   int
}

// WholeFlow returns the one-shot (unwindowed) feature vector of the sample:
// Windows must have been built with parts = 1.
func (s Sample) WholeFlow() features.Vector {
	if len(s.Windows) == 0 {
		return features.Vector{}
	}
	return s.Windows[0]
}

// BuildSamples converts labelled flows into windowed samples with the given
// partition count — the offline preprocessing the paper performs with its
// modified CICFlowMeter (one stats emission per window boundary, state reset
// after each).
func BuildSamples(flows []LabeledFlow, parts int) []Sample {
	out := make([]Sample, 0, len(flows))
	for _, f := range flows {
		ws := features.WindowVectors(f.Packets, parts)
		if len(ws) == 0 {
			continue
		}
		out = append(out, Sample{Windows: ws, Label: f.Label})
	}
	return out
}

// BuildSamplesBounds windows labelled flows with non-uniform boundaries
// (adaptive window sizing): bounds are cumulative flow fractions.
func BuildSamplesBounds(flows []LabeledFlow, bounds pkt.Bounds) []Sample {
	out := make([]Sample, 0, len(flows))
	for _, f := range flows {
		ws := features.WindowVectorsBounds(f.Packets, bounds)
		if len(ws) == 0 {
			continue
		}
		out = append(out, Sample{Windows: ws, Label: f.Label})
	}
	return out
}

// Split partitions samples into train and test sets with the given train
// fraction, preserving order (generation is already shuffled across classes
// round-robin, so a prefix split is class-balanced).
func Split(samples []Sample, trainFrac float64) (train, test []Sample) {
	if trainFrac < 0 || trainFrac > 1 {
		panic("trace: train fraction out of [0,1]")
	}
	n := int(float64(len(samples)) * trainFrac)
	return samples[:n], samples[n:]
}

// SampleSet bundles pre-windowed datasets for every partition count a design
// search may request, so repeated BO iterations reuse the extraction work
// (the paper queries these from PostgreSQL; an in-memory cache plays the
// same role). For is safe for concurrent use — BO evaluates candidates in
// parallel.
type SampleSet struct {
	ID       DatasetID
	mu       sync.Mutex
	byParts  map[int][]Sample
	flows    []LabeledFlow
	maxParts int
}

// NewSampleSet generates nFlows labelled flows and prepares lazy windowed
// views for partition counts 1..maxParts.
func NewSampleSet(id DatasetID, nFlows, maxParts int, seed int64) *SampleSet {
	return &SampleSet{
		ID:       id,
		byParts:  make(map[int][]Sample, maxParts),
		flows:    Generate(id, nFlows, seed),
		maxParts: maxParts,
	}
}

// Flows exposes the underlying labelled flows (for simulator replay).
func (ss *SampleSet) Flows() []LabeledFlow { return ss.flows }

// MaxParts returns the largest partition count the set serves.
func (ss *SampleSet) MaxParts() int { return ss.maxParts }

// For returns the windowed samples for a partition count, computing and
// caching them on first use.
func (ss *SampleSet) For(parts int) []Sample {
	if parts <= 0 || parts > ss.maxParts {
		panic("trace: partition count out of range")
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s, ok := ss.byParts[parts]; ok {
		return s
	}
	s := BuildSamples(ss.flows, parts)
	ss.byParts[parts] = s
	return s
}
