package trace

//splidt:packettime — trace synthesis is deterministic per seed; all randomness flows through an explicit seeded rng

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"

	"splidt/internal/flow"
	"splidt/internal/pkt"
)

// Interleave flattens labelled flows into one packet sequence in global
// timestamp order, flow i shifted by i×spacing — the arrival order a
// capture point would see. Ties preserve (flow, packet) generation order,
// so the result is deterministic. Both Pipeline.Replay and the engine's
// pre-materialised benchmark sources build on this.
func Interleave(flows []LabeledFlow, spacing time.Duration) []pkt.Packet {
	n := 0
	for _, f := range flows {
		n += len(f.Packets)
	}
	out := make([]pkt.Packet, 0, n)
	for i, f := range flows {
		off := time.Duration(i) * spacing
		for _, p := range f.Packets {
			p.TS += off
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// Stream yields the packets of a generated dataset workload in global
// timestamp order — the same interleaving Interleave produces over
// Generate's flows — without materialising every flow up front. Flows are
// generated lazily as their start times approach and freed once drained, so
// memory scales with the number of concurrently active flows rather than
// the workload size. A Stream is deterministic in (dataset, n, seed,
// spacing): two streams with equal parameters yield identical packet
// sequences, which is what lets the engine equivalence tests feed the same
// workload to differently sharded engines.
//
// Stream is not safe for concurrent use; the engine reads it from a single
// dispatcher goroutine.
type Stream struct {
	classes []classProfile
	rng     *rand.Rand
	n       int
	spacing time.Duration

	next   int // next flow index to generate
	h      streamHeap
	labels map[flow.Key]int
	pkts   int
}

// NewStream builds a lazy packet source over n generated flows of the
// dataset, flow i starting at i×spacing. The flow sequence is identical to
// Generate(id, n, seed) — both draw from genRNG in flow-index order.
func NewStream(id DatasetID, n int, seed int64, spacing time.Duration) *Stream {
	spec := id.Spec()
	return &Stream{
		classes: buildClasses(spec),
		rng:     genRNG(id, seed),
		n:       n,
		spacing: spacing,
		labels:  make(map[flow.Key]int, n),
	}
}

// Next returns the next packet in global arrival order, or ok=false when
// the workload is exhausted.
func (s *Stream) Next() (p pkt.Packet, ok bool) {
	// Admit every flow whose start time is at or before the current head of
	// line; ties resolve by flow index, matching Interleave's stable order.
	for s.next < s.n && (s.h.Len() == 0 || time.Duration(s.next)*s.spacing <= s.h.entries[0].ts) {
		s.admit()
	}
	if s.h.Len() == 0 {
		return pkt.Packet{}, false
	}
	e := &s.h.entries[0]
	p = e.pkts[e.pos]
	e.pos++
	if e.pos < len(e.pkts) {
		e.ts = e.pkts[e.pos].TS
		heap.Fix(&s.h, 0)
	} else {
		heap.Pop(&s.h) // flow drained: release its packets
	}
	s.pkts++
	return p, true
}

// admit generates the next flow, offsets its timestamps, and enqueues it.
func (s *Stream) admit() {
	i := s.next
	s.next++
	f := genFlow(s.rng, s.classes[i%len(s.classes)], i)
	s.labels[f.Key] = f.Label
	off := time.Duration(i) * s.spacing
	for j := range f.Packets {
		f.Packets[j].TS += off
	}
	heap.Push(&s.h, streamEntry{ts: f.Packets[0].TS, idx: i, pkts: f.Packets})
}

// Labels returns ground truth for every flow admitted so far, keyed by
// canonical flow key (later flows win on the unlikely key collision, as in
// Pipeline.Replay).
func (s *Stream) Labels() map[flow.Key]int { return s.labels }

// Flows returns the total number of flows the stream will emit.
func (s *Stream) Flows() int { return s.n }

// Emitted returns the number of packets yielded so far.
func (s *Stream) Emitted() int { return s.pkts }

type streamEntry struct {
	ts   time.Duration // arrival time of the flow's next packet
	idx  int           // flow index, breaking timestamp ties stably
	pkts []pkt.Packet
	pos  int
}

type streamHeap struct {
	entries []streamEntry
}

func (h *streamHeap) Len() int { return len(h.entries) }
func (h *streamHeap) Less(a, b int) bool {
	if h.entries[a].ts != h.entries[b].ts {
		return h.entries[a].ts < h.entries[b].ts
	}
	return h.entries[a].idx < h.entries[b].idx
}
func (h *streamHeap) Swap(a, b int) { h.entries[a], h.entries[b] = h.entries[b], h.entries[a] }
func (h *streamHeap) Push(x any)    { h.entries = append(h.entries, x.(streamEntry)) }
func (h *streamHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	old[n-1] = streamEntry{}
	h.entries = old[:n-1]
	return e
}
