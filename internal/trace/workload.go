package trace

//splidt:packettime — trace synthesis is deterministic per seed; all randomness flows through an explicit seeded rng

import (
	"math"
	"math/rand"
	"time"
)

// Workload models a datacenter traffic environment — the flow-size and
// flow-duration distributions that drive recirculation-bandwidth and
// time-to-detection analyses (the paper's E1 Webserver and E2 Hadoop
// environments, after Roy et al., "Inside the Social Network's (Datacenter)
// Network").
type Workload struct {
	Name string
	// MeanFlowPkts is the mean flow length in packets. Webserver flows are
	// long-lived; Hadoop is dominated by short, bursty mice.
	MeanFlowPkts float64
	// SizeSigma is the lognormal shape of the flow-size distribution
	// (heavier tail for Webserver).
	SizeSigma float64
	// MeanDuration is the mean flow lifetime. Recirculation rate per flow is
	// (#partitions−1)/duration, so shorter-lived workloads recirculate more.
	MeanDuration time.Duration
	// DurSigma is the lognormal shape of the duration distribution.
	DurSigma float64
}

// Webserver (WS) and Hadoop (HD), the paper's two environments. Hadoop's
// shorter flow lifetimes give it roughly twice the recirculation bandwidth
// of Webserver at equal concurrency, matching the ratio in Table 5.
var (
	Webserver = Workload{
		Name:         "WS",
		MeanFlowPkts: 180,
		SizeSigma:    1.3,
		MeanDuration: 120 * time.Second,
		DurSigma:     1.6,
	}
	Hadoop = Workload{
		Name:         "HD",
		MeanFlowPkts: 35,
		SizeSigma:    0.8,
		MeanDuration: 60 * time.Second,
		DurSigma:     1.1,
	}
)

// Workloads returns the two builtin environments in paper order.
func Workloads() []Workload { return []Workload{Webserver, Hadoop} }

// SampleFlowSize draws a flow length in packets (≥ 2).
//
//splidt:hotpath
func (w Workload) SampleFlowSize(rng *rand.Rand) int {
	mu := math.Log(w.MeanFlowPkts) - w.SizeSigma*w.SizeSigma/2
	n := int(math.Exp(mu + rng.NormFloat64()*w.SizeSigma))
	if n < 2 {
		n = 2
	}
	return n
}

// SampleDuration draws a flow lifetime.
//
//splidt:hotpath
func (w Workload) SampleDuration(rng *rand.Rand) time.Duration {
	mu := math.Log(float64(w.MeanDuration)) - w.DurSigma*w.DurSigma/2
	d := time.Duration(math.Exp(mu + rng.NormFloat64()*w.DurSigma))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// CompletionRate returns the steady-state flow completion rate (flows/sec)
// when `concurrent` flows are active: by Little's law, N = λT.
func (w Workload) CompletionRate(concurrent int) float64 {
	return float64(concurrent) / w.MeanDuration.Seconds()
}
