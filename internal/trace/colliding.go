package trace

//splidt:packettime — trace synthesis is deterministic per seed; all randomness flows through an explicit seeded rng

import (
	"fmt"
	"math/rand"

	"splidt/internal/flow"
)

// collSalt decorrelates the key-resampling RNG from the flow-content RNG,
// so Colliding(id, n, seed, …) reuses exactly Generate(id, n, seed)'s flow
// bodies while drawing fresh 5-tuples.
const collSalt = 0x5bd1e995

// Colliding synthesises n labelled flows engineered to collide in a
// direct-mapped flow table of tableSize slots: every flow's
// direction-symmetric register hash (flow.Key.SymHash, the index function
// of the dataplane's direct table scheme) lands on one of the first
// `groups` table indices, so the whole workload contends for at most
// `groups` slots. With groups far below the concurrent flow count this is
// the adversarial regime where a direct-mapped table couples flows and
// diverges from exact inference, while an associative scheme (cuckoo +
// stash) keeps every flow's state private — the regime the high-collision
// equivalence tests pin.
//
// Flow contents — packet sizes, timing, flags, labels — are exactly
// Generate(id, n, seed)'s; only the 5-tuples are resampled (rejection
// sampling over the generator's address and port pools) until they hit the
// target index set, stay canonical, and stay pairwise distinct. Each
// packet's direction and precomputed dispatch hash are rewritten for its
// flow's new key.
//
// The collision property survives splitting the table across m shards
// (dataplane.NewShards gives each shard a tableSize/m-slot table) whenever
// m divides tableSize and groups ≤ tableSize/m: with r = SymHash%tableSize
// < groups, (tableSize/m) divides tableSize, so SymHash%(tableSize/m) =
// r%(tableSize/m) = r — every engineered flow keeps its low index inside
// whichever shard's table it lands in. Pick tableSize as a multiple of the
// shard counts under test.
//
// Panics on non-positive n or tableSize, or groups outside [1, tableSize].
func Colliding(id DatasetID, n int, seed int64, tableSize, groups int) []LabeledFlow {
	if n <= 0 {
		panic("trace: non-positive colliding flow count")
	}
	if tableSize <= 0 {
		panic("trace: non-positive table size")
	}
	if groups < 1 || groups > tableSize {
		panic(fmt.Sprintf("trace: colliding groups %d outside [1, %d]", groups, tableSize))
	}
	flows := Generate(id, n, seed)
	rng := rand.New(rand.NewSource(seed ^ collSalt ^ (int64(id) << 32)))
	used := make(map[flow.Key]bool, n)
	for i := range flows {
		f := &flows[i]
		old := f.Key
		k := old
		for tries := 0; ; tries++ {
			if tries > 1<<22 {
				panic("trace: colliding key resampling did not converge")
			}
			// Resample within the generator's pools: client 10.1/16 below
			// server 172.16/12, so the key stays canonical as built.
			k.SrcIP = flow.AddrFrom4(10, 1, byte(rng.Intn(250)), byte(1+rng.Intn(250)))
			k.SrcPort = uint16(1024 + rng.Intn(60000))
			if int(k.SymHash()%uint32(tableSize)) < groups && !used[k] {
				break
			}
		}
		used[k] = true
		f.Key = k
		hash := k.ShardHash()
		rev := k.Reverse()
		for j := range f.Packets {
			p := &f.Packets[j]
			if p.Key == old {
				p.Key = k
			} else {
				p.Key = rev
			}
			p.ShardHash = hash
		}
	}
	return flows
}
