package trace

import (
	"testing"
)

// TestCollidingHitsTargetIndices: every engineered flow must land on one of
// the first `groups` indices of the direct table, under the same symmetric
// hash the dataplane indexes with, with all keys distinct and canonical.
func TestCollidingHitsTargetIndices(t *testing.T) {
	const tableSize, groups = 96, 2
	flows := Colliding(D2, 56, 9, tableSize, groups)
	if len(flows) != 56 {
		t.Fatalf("got %d flows, want 56", len(flows))
	}
	seen := make(map[uint32]bool)
	keys := make(map[string]bool)
	for _, f := range flows {
		idx := f.Key.SymHash() % tableSize
		if int(idx) >= groups {
			t.Fatalf("flow %v hashes to index %d, want < %d", f.Key, idx, groups)
		}
		seen[idx] = true
		if !f.Key.IsCanonical() {
			t.Fatalf("flow key %v not canonical", f.Key)
		}
		if keys[f.Key.String()] {
			t.Fatalf("duplicate key %v", f.Key)
		}
		keys[f.Key.String()] = true
	}
	if len(seen) != groups {
		t.Fatalf("flows landed on %d distinct indices, want all %d groups used", len(seen), groups)
	}
	// Divisibility: the collision property must survive a 4-way shard split
	// (96 % 4 == 0, groups ≤ 96/4).
	for _, f := range flows {
		if idx := f.Key.SymHash() % (tableSize / 4); int(idx) >= groups {
			t.Fatalf("flow %v escapes the collision set on a 4-shard split (index %d)", f.Key, idx)
		}
	}
}

// TestCollidingPreservesFlowBodies: only the 5-tuples change — packet
// timing, sizes, flags, labels, and per-packet direction structure must be
// exactly Generate's, and every packet must carry its flow's rewritten key
// (or its reverse) plus the matching precomputed dispatch hash.
func TestCollidingPreservesFlowBodies(t *testing.T) {
	base := Generate(D2, 30, 5)
	coll := Colliding(D2, 30, 5, 64, 4)
	if len(base) != len(coll) {
		t.Fatalf("flow count %d != %d", len(coll), len(base))
	}
	for i := range base {
		b, c := base[i], coll[i]
		if b.Label != c.Label || len(b.Packets) != len(c.Packets) {
			t.Fatalf("flow %d: label/size changed (%d/%d vs %d/%d)",
				i, c.Label, len(c.Packets), b.Label, len(b.Packets))
		}
		rev := c.Key.Reverse()
		for j := range b.Packets {
			bp, cp := b.Packets[j], c.Packets[j]
			if bp.TS != cp.TS || bp.Len != cp.Len || bp.Seq != cp.Seq ||
				bp.FlowSize != cp.FlowSize || bp.Flags != cp.Flags {
				t.Fatalf("flow %d packet %d: body changed", i, j)
			}
			if cp.Key != c.Key && cp.Key != rev {
				t.Fatalf("flow %d packet %d: key %v is neither %v nor its reverse", i, j, cp.Key, c.Key)
			}
			// Direction preserved: forward stays forward.
			if (bp.Key == b.Key) != (cp.Key == c.Key) {
				t.Fatalf("flow %d packet %d: direction flipped", i, j)
			}
			if cp.ShardHash != c.Key.ShardHash() {
				t.Fatalf("flow %d packet %d: stale dispatch hash", i, j)
			}
		}
	}
}

// TestCollidingDeterministic: same arguments, same workload; different
// seeds, different keys.
func TestCollidingDeterministic(t *testing.T) {
	a := Colliding(D3, 20, 7, 128, 3)
	b := Colliding(D3, 20, 7, 128, 3)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("flow %d: keys differ across identical calls", i)
		}
	}
	c := Colliding(D3, 20, 8, 128, 3)
	same := 0
	for i := range a {
		if a[i].Key == c[i].Key {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical keys")
	}
}

// TestCollidingPanics covers the argument contract.
func TestCollidingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero flows":     func() { Colliding(D2, 0, 1, 16, 1) },
		"zero table":     func() { Colliding(D2, 4, 1, 0, 1) },
		"zero groups":    func() { Colliding(D2, 4, 1, 16, 0) },
		"groups > table": func() { Colliding(D2, 4, 1, 16, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
