// Package tcam implements the ternary content-addressable memory the
// data-plane pipeline matches against: multi-field value/mask entries with
// priorities, functional lookup, capacity accounting in TCAM bits, and the
// range-to-prefix expansion that converts decision-tree thresholds into
// ternary rules.
package tcam

import (
	"fmt"
	"sort"
)

// Entry is one ternary rule. A field matches when
// (input ^ Value[i]) & Mask[i] == 0; an entry matches when all fields match.
// Higher Priority wins among matching entries.
type Entry struct {
	Value    []uint32
	Mask     []uint32
	Priority int
	Action   int // opaque action identifier returned by Lookup
}

// Table is an ordered ternary match table over fixed-width fields.
type Table struct {
	Name      string
	FieldBits []int // per-field key width in bits (≤ 32 each)
	entries   []Entry
	sorted    bool
}

// New creates a table with the given per-field key widths.
func New(name string, fieldBits ...int) *Table {
	for _, b := range fieldBits {
		if b < 1 || b > 32 {
			panic(fmt.Sprintf("tcam: field width %d out of [1,32]", b))
		}
	}
	return &Table{Name: name, FieldBits: fieldBits}
}

// Insert adds an entry. Value/Mask lengths must equal the field count, and
// bits outside each field's width must be zero.
func (t *Table) Insert(e Entry) {
	if len(e.Value) != len(t.FieldBits) || len(e.Mask) != len(t.FieldBits) {
		panic(fmt.Sprintf("tcam(%s): entry arity %d/%d, want %d",
			t.Name, len(e.Value), len(e.Mask), len(t.FieldBits)))
	}
	for i, b := range t.FieldBits {
		lim := fieldLimit(b)
		if e.Value[i] > lim || e.Mask[i] > lim {
			panic(fmt.Sprintf("tcam(%s): field %d value/mask exceeds %d bits", t.Name, i, b))
		}
	}
	t.entries = append(t.entries, e)
	t.sorted = false
}

func fieldLimit(bits int) uint32 {
	if bits == 32 {
		return ^uint32(0)
	}
	return 1<<uint(bits) - 1
}

// Freeze sorts the entries into priority order eagerly. Lookup sorts lazily
// on first use, which mutates the table; a frozen table with no subsequent
// Insert is safe for concurrent Lookup from multiple goroutines (the
// sharded engine's pipeline replicas share one set of compiled tables).
func (t *Table) Freeze() {
	if !t.sorted {
		sort.SliceStable(t.entries, func(i, j int) bool {
			return t.entries[i].Priority > t.entries[j].Priority
		})
		t.sorted = true
	}
}

// Lookup returns the highest-priority matching entry's action.
//
//splidt:hotpath
func (t *Table) Lookup(fields ...uint32) (action int, ok bool) {
	if len(fields) != len(t.FieldBits) {
		//splidt:allow fmt,box — cold panic path: caller bug
		panic(fmt.Sprintf("tcam(%s): lookup arity %d, want %d", t.Name, len(fields), len(t.FieldBits)))
	}
	t.Freeze() //splidt:allow call — no-op once frozen; deployments freeze before traffic
	for i := range t.entries {
		e := &t.entries[i]
		hit := true
		for f, in := range fields {
			if (in^e.Value[f])&e.Mask[f] != 0 {
				hit = false
				break
			}
		}
		if hit {
			return e.Action, true
		}
	}
	return 0, false
}

// Len returns the entry count.
func (t *Table) Len() int { return len(t.entries) }

// KeyBits returns the total match-key width of one entry.
func (t *Table) KeyBits() int {
	n := 0
	for _, b := range t.FieldBits {
		n += b
	}
	return n
}

// Bits returns the table's total TCAM bit consumption (entries × key width).
func (t *Table) Bits() int { return t.Len() * t.KeyBits() }

// Entries returns a copy of the entries (post-sort order not guaranteed).
func (t *Table) Entries() []Entry {
	out := make([]Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Prefix is one value/mask pair produced by range expansion.
type Prefix struct {
	Value uint32
	Mask  uint32
}

// ExpandRange converts the inclusive integer range [lo, hi] over a width-bit
// field into a minimal set of ternary prefixes — the classic range-to-prefix
// expansion whose entry blow-up drives TCAM costs for decision-tree feature
// tables. Panics if lo > hi or hi exceeds the field limit.
func ExpandRange(lo, hi uint32, bits int) []Prefix {
	lim := fieldLimit(bits)
	if lo > hi {
		panic("tcam: lo > hi")
	}
	if hi > lim {
		panic("tcam: hi exceeds field width")
	}
	var out []Prefix
	expand(uint64(lo), uint64(hi), 0, uint64(lim), bits, &out)
	return out
}

// expand recursively covers [lo,hi] within the aligned block [blockLo,
// blockHi] of the given width.
func expand(lo, hi, blockLo, blockHi uint64, bits int, out *[]Prefix) {
	if lo == blockLo && hi == blockHi {
		// Whole block: one prefix. Mask covers the fixed high bits.
		size := blockHi - blockLo + 1
		var maskBits int
		for s := size; s > 1; s >>= 1 {
			maskBits++
		}
		mask := fieldLimit(bits) &^ uint32((uint64(1)<<uint(maskBits))-1)
		*out = append(*out, Prefix{Value: uint32(blockLo), Mask: mask})
		return
	}
	mid := blockLo + (blockHi-blockLo)/2
	if hi <= mid {
		expand(lo, hi, blockLo, mid, bits, out)
	} else if lo > mid {
		expand(lo, hi, mid+1, blockHi, bits, out)
	} else {
		expand(lo, mid, blockLo, mid, bits, out)
		expand(mid+1, hi, mid+1, blockHi, bits, out)
	}
}
