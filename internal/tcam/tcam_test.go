package tcam

import (
	"testing"
	"testing/quick"
)

func TestExactMatch(t *testing.T) {
	tb := New("exact", 8)
	tb.Insert(Entry{Value: []uint32{7}, Mask: []uint32{0xFF}, Priority: 1, Action: 42})
	if a, ok := tb.Lookup(7); !ok || a != 42 {
		t.Fatalf("Lookup(7) = %d,%v, want 42,true", a, ok)
	}
	if _, ok := tb.Lookup(8); ok {
		t.Fatal("Lookup(8) matched")
	}
}

func TestTernaryWildcard(t *testing.T) {
	tb := New("wild", 8)
	tb.Insert(Entry{Value: []uint32{0}, Mask: []uint32{0}, Priority: 0, Action: 1}) // match-all
	tb.Insert(Entry{Value: []uint32{0xF0}, Mask: []uint32{0xF0}, Priority: 5, Action: 2})
	if a, _ := tb.Lookup(0xF3); a != 2 {
		t.Fatalf("high-priority prefix should win, got action %d", a)
	}
	if a, _ := tb.Lookup(0x03); a != 1 {
		t.Fatalf("fallback should match, got action %d", a)
	}
}

func TestMultiField(t *testing.T) {
	tb := New("multi", 16, 8)
	tb.Insert(Entry{Value: []uint32{100, 3}, Mask: []uint32{0xFFFF, 0xFF}, Priority: 1, Action: 9})
	if a, ok := tb.Lookup(100, 3); !ok || a != 9 {
		t.Fatalf("multi-field exact failed: %d %v", a, ok)
	}
	if _, ok := tb.Lookup(100, 4); ok {
		t.Fatal("second field mismatch matched anyway")
	}
}

func TestPriorityOrdering(t *testing.T) {
	tb := New("prio", 4)
	tb.Insert(Entry{Value: []uint32{0}, Mask: []uint32{0}, Priority: 1, Action: 1})
	tb.Insert(Entry{Value: []uint32{0}, Mask: []uint32{0}, Priority: 9, Action: 2})
	tb.Insert(Entry{Value: []uint32{0}, Mask: []uint32{0}, Priority: 5, Action: 3})
	if a, _ := tb.Lookup(0); a != 2 {
		t.Fatalf("priority 9 should win, got %d", a)
	}
}

func TestBitsAccounting(t *testing.T) {
	tb := New("bits", 32, 8)
	if tb.KeyBits() != 40 {
		t.Fatalf("KeyBits = %d, want 40", tb.KeyBits())
	}
	tb.Insert(Entry{Value: []uint32{0, 0}, Mask: []uint32{0, 0}, Action: 1})
	tb.Insert(Entry{Value: []uint32{1, 1}, Mask: []uint32{0xFFFFFFFF, 0xFF}, Action: 2})
	if tb.Bits() != 80 {
		t.Fatalf("Bits = %d, want 80", tb.Bits())
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	tb := New("v", 8)
	cases := []Entry{
		{Value: []uint32{1, 2}, Mask: []uint32{0xFF, 0xFF}}, // arity
		{Value: []uint32{0x100}, Mask: []uint32{0xFF}},      // value too wide
		{Value: []uint32{1}, Mask: []uint32{0x1FF}},         // mask too wide
	}
	for i, e := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			tb.Insert(e)
		}()
	}
}

func TestNewPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 33-bit field did not panic")
		}
	}()
	New("bad", 33)
}

func TestExpandRangeFullDomain(t *testing.T) {
	ps := ExpandRange(0, 255, 8)
	if len(ps) != 1 || ps[0].Mask != 0 {
		t.Fatalf("full domain should be one wildcard prefix, got %v", ps)
	}
}

func TestExpandRangeSingleValue(t *testing.T) {
	ps := ExpandRange(77, 77, 8)
	if len(ps) != 1 || ps[0].Value != 77 || ps[0].Mask != 0xFF {
		t.Fatalf("single value expansion wrong: %v", ps)
	}
}

func TestExpandRangeKnown(t *testing.T) {
	// [1, 6] over 3 bits: classic worst-ish case → 001, 01x, 10x, 110.
	ps := ExpandRange(1, 6, 3)
	if len(ps) != 4 {
		t.Fatalf("[1,6] over 3 bits expanded to %d prefixes, want 4: %v", len(ps), ps)
	}
}

func covers(ps []Prefix, v uint32) bool {
	for _, p := range ps {
		if (v^p.Value)&p.Mask == 0 {
			return true
		}
	}
	return false
}

func TestExpandRangeExactCoverProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := uint32(a), uint32(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		ps := ExpandRange(lo, hi, 16)
		// Spot-check boundaries and a sample inside/outside.
		checks := []struct {
			v  uint32
			in bool
		}{
			{lo, true}, {hi, true}, {(lo + hi) / 2, true},
		}
		if lo > 0 {
			checks = append(checks, struct {
				v  uint32
				in bool
			}{lo - 1, false})
		}
		if hi < 0xFFFF {
			checks = append(checks, struct {
				v  uint32
				in bool
			}{hi + 1, false})
		}
		for _, c := range checks {
			if covers(ps, c.v) != c.in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandRangeExhaustiveSmall(t *testing.T) {
	// For every [lo,hi] over 6 bits, verify exact cover over all 64 values.
	for lo := uint32(0); lo < 64; lo++ {
		for hi := lo; hi < 64; hi++ {
			ps := ExpandRange(lo, hi, 6)
			for v := uint32(0); v < 64; v++ {
				want := v >= lo && v <= hi
				if covers(ps, v) != want {
					t.Fatalf("[%d,%d] v=%d cover=%v want %v", lo, hi, v, !want, want)
				}
			}
			if len(ps) > 2*6-2+1 {
				t.Fatalf("[%d,%d] expanded to %d prefixes (> 2w-1)", lo, hi, len(ps))
			}
		}
	}
}

func TestExpandRangePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { ExpandRange(5, 4, 8) },
		func() { ExpandRange(0, 256, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLookupArityPanics(t *testing.T) {
	tb := New("a", 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-arity lookup did not panic")
		}
	}()
	tb.Lookup(1)
}

func TestEntriesCopy(t *testing.T) {
	tb := New("c", 8)
	tb.Insert(Entry{Value: []uint32{1}, Mask: []uint32{0xFF}, Action: 1})
	es := tb.Entries()
	es[0].Action = 99
	if a, _ := tb.Lookup(1); a != 1 {
		t.Fatal("Entries() exposed internal state")
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New("bench", 32, 8)
	for i := 0; i < 200; i++ {
		tb.Insert(Entry{
			Value: []uint32{uint32(i * 1000), uint32(i % 7)},
			Mask:  []uint32{0xFFFFF000, 0xFF}, Priority: i, Action: i,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint32(i%200)*1000, uint32(i%7))
	}
}

func BenchmarkExpandRange(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ExpandRange(uint32(i%1000)+1, 1_000_000+uint32(i%5000), 32)
	}
}

// TestFreezeIdempotentAndEquivalent: freezing must not change lookup
// results, and a frozen table must answer correctly without further writes
// (the property the engine's shared compiled tables rely on).
func TestFreezeIdempotentAndEquivalent(t *testing.T) {
	mk := func() *Table {
		tb := New("freeze", 16, 16)
		for i := 0; i < 50; i++ {
			tb.Insert(Entry{
				Value:    []uint32{uint32(i), uint32(i % 5)},
				Mask:     []uint32{0xFFFF, 0xFFFF},
				Priority: i % 7,
				Action:   i,
			})
		}
		return tb
	}
	lazy, frozen := mk(), mk()
	frozen.Freeze()
	frozen.Freeze() // idempotent
	for i := 0; i < 50; i++ {
		la, lok := lazy.Lookup(uint32(i), uint32(i%5))
		fa, fok := frozen.Lookup(uint32(i), uint32(i%5))
		if la != fa || lok != fok {
			t.Fatalf("key %d: lazy (%d,%v) != frozen (%d,%v)", i, la, lok, fa, fok)
		}
	}
}
