package tcam

import "testing"

// FuzzExpandRange checks exact range coverage for arbitrary [lo, hi] pairs:
// every prefix set must cover the boundaries, exclude the neighbours, and
// stay within the worst-case prefix count.
func FuzzExpandRange(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(1), uint32(6))
	f.Add(uint32(0), uint32(^uint32(0)))
	f.Add(uint32(1000), uint32(1_000_000))
	f.Add(uint32(0x7FFFFFFF), uint32(0x80000001))
	f.Fuzz(func(t *testing.T, a, b uint32) {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		ps := ExpandRange(lo, hi, 32)
		if len(ps) == 0 || len(ps) > 62 {
			t.Fatalf("[%d,%d]: %d prefixes", lo, hi, len(ps))
		}
		check := func(v uint32, want bool) {
			got := false
			for _, p := range ps {
				if (v^p.Value)&p.Mask == 0 {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("[%d,%d]: cover(%d) = %v, want %v", lo, hi, v, got, want)
			}
		}
		check(lo, true)
		check(hi, true)
		check(lo+(hi-lo)/2, true)
		if lo > 0 {
			check(lo-1, false)
		}
		if hi < ^uint32(0) {
			check(hi+1, false)
		}
	})
}
