package flow

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func k(a, b Addr, sp, dp uint16, p Proto) Key {
	return Key{SrcIP: a, DstIP: b, SrcPort: sp, DstPort: dp, Proto: p}
}

func TestAddrFrom4(t *testing.T) {
	a := AddrFrom4(10, 0, 0, 1)
	if got := a.String(); got != "10.0.0.1" {
		t.Fatalf("Addr.String() = %q, want 10.0.0.1", got)
	}
	if a != Addr(0x0A000001) {
		t.Fatalf("AddrFrom4 = %#x, want 0x0A000001", uint32(a))
	}
}

func TestProtoString(t *testing.T) {
	cases := []struct {
		p    Proto
		want string
	}{
		{ProtoTCP, "tcp"},
		{ProtoUDP, "udp"},
		{ProtoICMP, "icmp"},
		{Proto(99), "proto(99)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Proto(%d).String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	key := k(AddrFrom4(10, 0, 0, 1), AddrFrom4(10, 0, 0, 2), 1234, 80, ProtoTCP)
	if key.Reverse().Reverse() != key {
		t.Fatal("Reverse is not an involution")
	}
	r := key.Reverse()
	if r.SrcIP != key.DstIP || r.DstPort != key.SrcPort {
		t.Fatalf("Reverse mixed fields: %v", r)
	}
}

func TestCanonicalSymmetric(t *testing.T) {
	key := k(AddrFrom4(192, 168, 1, 9), AddrFrom4(10, 0, 0, 2), 443, 51000, ProtoTCP)
	if key.Canonical() != key.Reverse().Canonical() {
		t.Fatal("Canonical differs across directions")
	}
	if !key.Canonical().IsCanonical() {
		t.Fatal("Canonical(key) not reported canonical")
	}
}

func TestCanonicalTieBreakOnPort(t *testing.T) {
	a := AddrFrom4(10, 0, 0, 1)
	key := k(a, a, 9000, 80, ProtoUDP)
	c := key.Canonical()
	if c.SrcPort != 80 {
		t.Fatalf("tie-break on equal IPs should order by port, got src port %d", c.SrcPort)
	}
}

func TestHashDeterministic(t *testing.T) {
	key := k(AddrFrom4(1, 2, 3, 4), AddrFrom4(5, 6, 7, 8), 10, 20, ProtoTCP)
	if key.Hash() != key.Hash() {
		t.Fatal("Hash not deterministic")
	}
	if key.Hash() == key.Reverse().Hash() {
		t.Fatal("directional Hash should (generically) differ across directions")
	}
}

func TestHashMatchesChecksumIEEE(t *testing.T) {
	// Hash's allocation-free table loop must compute exactly the CRC32
	// (IEEE) of the 13-byte wire tuple — the function Tofino exposes.
	f := func(a, b uint32, sp, dp uint16, pr uint8) bool {
		key := k(Addr(a), Addr(b), sp, dp, Proto(pr))
		var w [13]byte
		binary.BigEndian.PutUint32(w[0:4], a)
		binary.BigEndian.PutUint32(w[4:8], b)
		binary.BigEndian.PutUint16(w[8:10], sp)
		binary.BigEndian.PutUint16(w[10:12], dp)
		w[12] = pr
		return key.Hash() == crc32.ChecksumIEEE(w[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymHashSymmetric(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16) bool {
		key := k(Addr(a), Addr(b), sp, dp, ProtoTCP)
		return key.SymHash() == key.Reverse().SymHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16, pr uint8) bool {
		key := k(Addr(a), Addr(b), sp, dp, Proto(pr))
		c := key.Canonical()
		return c.Canonical() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexInRange(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16) bool {
		key := k(Addr(a), Addr(b), sp, dp, ProtoUDP)
		i := key.Index(65536)
		return i >= 0 && i < 65536
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index(0) did not panic")
		}
	}()
	k(1, 2, 3, 4, ProtoTCP).Index(0)
}

func TestKeyString(t *testing.T) {
	key := k(AddrFrom4(10, 0, 0, 1), AddrFrom4(10, 0, 0, 2), 1234, 80, ProtoTCP)
	want := "tcp 10.0.0.1:1234>10.0.0.2:80"
	if got := key.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func BenchmarkKeyHash(b *testing.B) {
	key := k(AddrFrom4(10, 0, 0, 1), AddrFrom4(10, 0, 0, 2), 1234, 80, ProtoTCP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = key.Hash()
	}
}

func TestShardSymmetric(t *testing.T) {
	key := k(AddrFrom4(10, 0, 0, 1), AddrFrom4(10, 0, 0, 2), 1234, 80, ProtoTCP)
	for _, n := range []int{1, 2, 3, 8, 13} {
		if got, rev := key.Shard(n), key.Reverse().Shard(n); got != rev {
			t.Fatalf("Shard(%d): forward %d != reverse %d", n, got, rev)
		}
		if s := key.Shard(n); s < 0 || s >= n {
			t.Fatalf("Shard(%d) = %d out of range", n, s)
		}
	}
}

func TestShardPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shard(0) did not panic")
		}
	}()
	k(1, 2, 3, 4, ProtoTCP).Shard(0)
}

// TestShardDecorrelatedFromIndex: when the slot count is a multiple of the
// shard count, a shard's flows must still spread over (nearly) all slot
// residues — the property the splitmix64 scramble exists for. A raw
// SymHash%n shard choice would pin each shard to exactly one residue class.
func TestShardDecorrelatedFromIndex(t *testing.T) {
	const shards, slots = 8, 1 << 12
	residues := make(map[int]map[int]bool)
	balance := make(map[int]int)
	for i := 0; i < 4000; i++ {
		key := k(
			AddrFrom4(10, byte(i>>8), byte(i), 1),
			AddrFrom4(172, 16, byte(i>>4), 2),
			uint16(1024+i), 443, ProtoTCP,
		)
		s := key.Shard(shards)
		balance[s]++
		if residues[s] == nil {
			residues[s] = make(map[int]bool)
		}
		residues[s][key.Canonical().Index(slots)%shards] = true
	}
	for s, res := range residues {
		if len(res) < shards/2 {
			t.Errorf("shard %d sees only %d of %d slot residues: correlated hashes", s, len(res), shards)
		}
	}
	for s := 0; s < shards; s++ {
		// Loose uniformity: each shard within 3x of the fair share.
		if balance[s] < 4000/shards/3 || balance[s] > 3*4000/shards {
			t.Errorf("shard %d holds %d of 4000 flows: badly unbalanced", s, balance[s])
		}
	}
}

func TestShardHashSymmetricAndConsistent(t *testing.T) {
	for i := 0; i < 200; i++ {
		key := k(
			AddrFrom4(10, byte(i), 3, 1), AddrFrom4(172, 16, byte(i>>2), 2),
			uint16(2000+i), 443, ProtoTCP,
		)
		if key.ShardHash() != key.Reverse().ShardHash() {
			t.Fatalf("ShardHash not direction-symmetric for %v", key)
		}
		for n := 1; n <= 8; n++ {
			if got, want := int(key.ShardHash()%uint64(n)), key.Shard(n); got != want {
				t.Fatalf("Shard(%d) = %d, but ShardHash reduction gives %d", n, want, got)
			}
		}
	}
}
