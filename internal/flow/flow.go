// Package flow defines flow identities for the data plane: 5-tuples,
// direction-normalised keys, and the CRC32-based register indexing used by
// SpliDT to locate per-flow state in switch register arrays.
//
// The design follows the gopacket Flow/Endpoint idiom: keys are fixed-size
// comparable values (usable as map keys, no allocation on construction) and
// carry a fast non-cryptographic hash for load balancing and register
// indexing.
package flow

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Proto is an IP protocol number.
type Proto uint8

// Protocol numbers used by the traffic generators and parsers.
const (
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
	ProtoICMP Proto = 1
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Addr is an IPv4 address in host byte order. A fixed-width integer keeps
// Key comparable and hashable without allocation.
type Addr uint32

// AddrFrom4 builds an Addr from dotted-quad octets.
//
//splidt:hotpath
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Key is a 5-tuple flow identity. It is comparable, so it can serve directly
// as a map key; the zero Key is invalid (protocol 0).
type Key struct {
	SrcIP   Addr
	DstIP   Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// String renders the key as "proto src:port>dst:port".
func (k Key) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", k.Proto, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// Reverse returns the key of the opposite direction.
//
//splidt:hotpath
func (k Key) Reverse() Key {
	return Key{
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
		Proto:   k.Proto,
	}
}

// Canonical returns a direction-normalised key: the (IP, port) pair that
// compares lower becomes the source. Both directions of a bidirectional
// conversation map to the same canonical key, mirroring how CICFlowMeter
// aggregates forward and backward packets into one flow record.
//
//splidt:hotpath
func (k Key) Canonical() Key {
	if k.SrcIP < k.DstIP || (k.SrcIP == k.DstIP && k.SrcPort <= k.DstPort) {
		return k
	}
	return k.Reverse()
}

// IsCanonical reports whether k equals its canonical form.
//
//splidt:hotpath
func (k Key) IsCanonical() bool { return k == k.Canonical() }

// bytes serialises the key into a 13-byte wire representation. The layout
// (src ip, dst ip, src port, dst port, proto) matches what a P4 parser would
// feed the switch CRC unit.
//
//splidt:hotpath
func (k Key) bytes() [13]byte {
	var b [13]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(k.SrcIP))
	binary.BigEndian.PutUint32(b[4:8], uint32(k.DstIP))
	binary.BigEndian.PutUint16(b[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], k.DstPort)
	b[12] = byte(k.Proto)
	return b
}

// ieeeTable backs Hash's explicit CRC32 loop.
var ieeeTable = crc32.MakeTable(crc32.IEEE)

// Hash returns the CRC32 (IEEE) of the 5-tuple, the same function Tofino
// exposes for register indexing. SpliDT hashes the 5-tuple on every packet
// to locate the flow's slot in each register array. The checksum is
// computed with an explicit table loop over the fixed-size tuple rather
// than crc32.ChecksumIEEE: the library's arch-dispatched entry point makes
// the 13-byte buffer escape to the heap, and this sits on the per-packet
// path of every pipeline (equality with ChecksumIEEE is pinned by tests).
//
//splidt:hotpath
func (k Key) Hash() uint32 {
	b := k.bytes()
	crc := ^uint32(0)
	for _, x := range b {
		crc = ieeeTable[byte(crc)^x] ^ (crc >> 8)
	}
	return ^crc
}

// Index maps the flow hash onto a register array of the given size.
// Size must be positive.
//
//splidt:hotpath
func (k Key) Index(size int) int {
	if size <= 0 {
		panic("flow: non-positive register array size")
	}
	return int(k.Hash() % uint32(size))
}

// SymHash returns a direction-symmetric hash: both directions of a
// conversation land in the same slot. Useful for bidirectional feature
// state (gopacket's Flow.FastHash has the same symmetry property).
//
//splidt:hotpath
func (k Key) SymHash() uint32 {
	c := k.Canonical()
	return c.Hash()
}

// Mix64 is the splitmix64 finalizer — a fast invertible scrambler that
// decorrelates the low bits of its output from those of its input. It is
// the scrambler behind ShardHash, exported so derived hash consumers (the
// cuckoo flow table's second bucket hash) share one implementation instead
// of drifting copies.
//
//splidt:hotpath
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardHash returns the direction-symmetric dispatch hash Shard reduces:
// the symmetric 5-tuple hash scrambled through a splitmix64 finalizer so
// that shard choice stays statistically independent of register-slot
// indexing (Index uses the raw hash; taking both modulo related sizes would
// otherwise confine each shard's flows to a fraction of its slots). Packet
// sources precompute it once per flow and carry it on pkt.Packet so the
// engine's serial dispatch stage does no hashing at all.
//
//splidt:hotpath
func (k Key) ShardHash() uint64 {
	return Mix64(uint64(k.SymHash()))
}

// Shard maps the flow onto one of n shards (RSS-style dispatch for the
// multi-worker engine). It is direction-symmetric, so both directions of a
// conversation — and therefore all of a flow's register state — land on the
// same shard. n must be positive.
func (k Key) Shard(n int) int {
	if n <= 0 {
		panic("flow: non-positive shard count")
	}
	return int(k.ShardHash() % uint64(n))
}
