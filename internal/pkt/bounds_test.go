package pkt

import (
	"testing"
	"testing/quick"
)

func TestBoundsValid(t *testing.T) {
	cases := []struct {
		b    Bounds
		want bool
	}{
		{Bounds{1}, true},
		{Bounds{0.25, 0.5, 1}, true},
		{Bounds{0.5, 0.5, 1}, false}, // not strictly increasing
		{Bounds{0.5, 0.9}, false},    // does not end at 1
		{Bounds{0, 1}, false},        // zero bound
		{Bounds{0.5, 1.2}, false},    // beyond 1
		{nil, false},
	}
	for i, c := range cases {
		if got := c.b.Valid(); got != c.want {
			t.Errorf("case %d: Valid(%v) = %v, want %v", i, c.b, got, c.want)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	b := Uniform(4)
	if !b.Valid() || len(b) != 4 {
		t.Fatalf("Uniform(4) = %v", b)
	}
	if b[0] != 0.25 || b[3] != 1 {
		t.Fatalf("Uniform(4) = %v", b)
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(0) did not panic")
		}
	}()
	Uniform(0)
}

func TestWindowOfBoundsMatchesUniform(t *testing.T) {
	// Uniform bounds must agree with the arithmetic WindowOf on window-end
	// structure: both must yield monotone windows covering the flow with
	// the same per-flow window-end count.
	for _, size := range []int{1, 4, 7, 12, 100} {
		for _, parts := range []int{1, 2, 3, 5} {
			b := Uniform(parts)
			endsA, endsB := 0, 0
			prev := -1
			for seq := 1; seq <= size; seq++ {
				p := Packet{FlowSize: size, Seq: seq}
				w := p.WindowOfBounds(b)
				if w < prev || w < 0 || w >= parts {
					t.Fatalf("size %d parts %d seq %d: window %d invalid", size, parts, seq, w)
				}
				prev = w
				if p.IsWindowEnd(parts) {
					endsA++
				}
				if p.IsWindowEndBounds(b) {
					endsB++
				}
			}
			wantEnds := parts
			if size < parts {
				wantEnds = size
			}
			if endsB != wantEnds {
				t.Fatalf("size %d parts %d: %d bound ends, want %d", size, parts, endsB, wantEnds)
			}
			_ = endsA
		}
	}
}

func TestFrontLoadedBounds(t *testing.T) {
	// Bounds {0.1, 0.3, 1}: a 100-packet flow ends windows at 10, 30, 100.
	b := Bounds{0.1, 0.3, 1}
	ends := []int{}
	for seq := 1; seq <= 100; seq++ {
		p := Packet{FlowSize: 100, Seq: seq}
		if p.IsWindowEndBounds(b) {
			ends = append(ends, seq)
		}
	}
	if len(ends) != 3 || ends[0] != 10 || ends[1] != 30 || ends[2] != 100 {
		t.Fatalf("front-loaded ends = %v, want [10 30 100]", ends)
	}
}

func TestBoundsEveryFlowTerminates(t *testing.T) {
	f := func(size uint8, cut uint8) bool {
		n := int(size%200) + 1
		c := 0.05 + float64(cut%80)/100
		b := Bounds{c, 1}
		last := Packet{FlowSize: n, Seq: n}
		return last.IsWindowEndBounds(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsPanicOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounds did not panic")
		}
	}()
	(Packet{FlowSize: 5, Seq: 1}).WindowOfBounds(Bounds{0.9, 0.5})
}
