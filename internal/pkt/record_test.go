package pkt

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"splidt/internal/flow"
)

func recKey(i int) flow.Key {
	return flow.Key{
		SrcIP: flow.AddrFrom4(10, 1, byte(i>>8), byte(i)), DstIP: flow.AddrFrom4(172, 16, 0, 1),
		SrcPort: uint16(1024 + i), DstPort: 443, Proto: flow.ProtoTCP,
	}
}

func recPacket(i int) Packet {
	return Packet{
		Key: recKey(i), Len: 100 + i%1400, Flags: FlagACK,
		TS: time.Duration(i) * time.Millisecond, FlowSize: 40, Seq: 1 + i%40,
	}
}

// TestRecordRoundTrip pins the codec contract: what WritePacket records,
// Next yields back — same fields, same order, same timestamps — with
// control frames interleaved and skipped.
func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRecordWriter(&buf)
	if err != nil {
		t.Fatalf("NewRecordWriter: %v", err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := w.WritePacket(recPacket(i)); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
		if i%7 == 0 {
			if err := w.WriteControl(Control{NextSID: uint16(i), FlowIndex: uint32(i)},
				time.Duration(i)*time.Millisecond); err != nil {
				t.Fatalf("WriteControl: %v", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r, err := NewRecordReader(&buf)
	if err != nil {
		t.Fatalf("NewRecordReader: %v", err)
	}
	for i := 0; i < n; i++ {
		p, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		want := recPacket(i)
		want.ShardHash = want.Key.ShardHash()
		if p != want {
			t.Fatalf("record %d: got %+v want %+v", i, p, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
	if r.Packets() != n {
		t.Fatalf("Packets() = %d, want %d", r.Packets(), n)
	}
	if want := int64((n + 6) / 7); r.Skipped() != want {
		t.Fatalf("Skipped() = %d, want %d", r.Skipped(), want)
	}
}

func TestRecordReaderErrors(t *testing.T) {
	// Bad magic.
	if _, err := NewRecordReader(bytes.NewReader([]byte("not a record file"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	// Empty stream.
	if _, err := NewRecordReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty stream: got %v", err)
	}

	// Truncated mid-record.
	var buf bytes.Buffer
	w, _ := NewRecordWriter(&buf)
	_ = w.WritePacket(recPacket(1))
	_ = w.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	r, err := NewRecordReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatalf("NewRecordReader: %v", err)
	}
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated record: got %v, want io.ErrUnexpectedEOF", err)
	}

	// Oversized frame length field.
	var big bytes.Buffer
	w2, _ := NewRecordWriter(&big)
	_ = w2.Flush()
	hdr := make([]byte, recordHdrBytes)
	hdr[16] = 0xFF
	hdr[17] = 0xFF
	hdr[18] = 0xFF
	hdr[19] = 0xFF
	big.Write(hdr)
	r2, _ := NewRecordReader(bytes.NewReader(big.Bytes()))
	if _, err := r2.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

// TestErrNotDataSentinel pins the sentinel contract: control frames and
// foreign EtherTypes both report ErrNotData through errors.Is, and the
// control-frame reject — the one a recorded stream hits at rate — does not
// allocate.
func TestErrNotDataSentinel(t *testing.T) {
	ctrl := MarshalControl(Control{NextSID: 3, FlowIndex: 9}, nil)
	if _, err := Unmarshal(ctrl, 0); !errors.Is(err, ErrNotData) {
		t.Fatalf("control frame: got %v, want ErrNotData", err)
	}
	foreign := Marshal(recPacket(0), nil)
	foreign[12], foreign[13] = 0x86, 0xDD // IPv6 EtherType
	_, err := Unmarshal(foreign, 0)
	if !errors.Is(err, ErrNotData) {
		t.Fatalf("foreign EtherType: got %v, want ErrNotData", err)
	}
	var nd notDataError
	if !errors.As(err, &nd) || nd.EtherType() != 0x86DD {
		t.Fatalf("EtherType not carried: %v", err)
	}
	// Short frame stays a distinct error.
	if _, err := Unmarshal(make([]byte, 10), 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short frame: got %v, want ErrTruncated", err)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := Unmarshal(ctrl, 0); !errors.Is(err, ErrNotData) {
			t.Fatal("reject path broke")
		}
	})
	if allocs != 0 {
		t.Fatalf("control reject path allocates %v per op, want 0", allocs)
	}
}

// TestRecordWriterAllocationFree pins the encoder's steady-state contract.
func TestRecordWriterAllocationFree(t *testing.T) {
	w, err := NewRecordWriter(io.Discard)
	if err != nil {
		t.Fatalf("NewRecordWriter: %v", err)
	}
	p := recPacket(3)
	_ = w.WritePacket(p) // warm the frame buffer
	allocs := testing.AllocsPerRun(1000, func() {
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WritePacket allocates %v per op, want 0", allocs)
	}
}
