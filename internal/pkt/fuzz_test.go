package pkt

import "testing"

// FuzzUnmarshal feeds arbitrary bytes to the packet parser: it must never
// panic, and whatever parses must re-serialise to an equivalent packet.
func FuzzUnmarshal(f *testing.F) {
	f.Add(make([]byte, HeaderWireBytes))
	f.Add([]byte{})
	seed := Marshal(Packet{
		Key: wireKey(), Len: 1480, Flags: FlagSYN, FlowSize: 120, Seq: 7,
	}, nil)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data, 0)
		if err != nil {
			return
		}
		// Round trip: re-marshal and re-parse must agree.
		again, err := Unmarshal(Marshal(p, nil), 0)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again != p {
			t.Fatalf("round trip diverged: %+v vs %+v", again, p)
		}
	})
}

// FuzzUnmarshalControl exercises the control-packet parser the same way.
func FuzzUnmarshalControl(f *testing.F) {
	f.Add(make([]byte, 20))
	f.Add(MarshalControl(Control{NextSID: 9, FlowIndex: 1234}, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalControl(data)
		if err != nil {
			return
		}
		again, err := UnmarshalControl(MarshalControl(c, nil))
		if err != nil || again != c {
			t.Fatalf("control round trip diverged: %+v vs %+v (%v)", again, c, err)
		}
	})
}
