package pkt

import (
	"bytes"
	"testing"
	"time"
)

// FuzzUnmarshal feeds arbitrary bytes to the packet parser: it must never
// panic, and whatever parses must re-serialise to an equivalent packet.
func FuzzUnmarshal(f *testing.F) {
	f.Add(make([]byte, HeaderWireBytes))
	f.Add([]byte{})
	seed := Marshal(Packet{
		Key: wireKey(), Len: 1480, Flags: FlagSYN, FlowSize: 120, Seq: 7,
	}, nil)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data, 0)
		if err != nil {
			return
		}
		// Round trip: re-marshal and re-parse must agree.
		again, err := Unmarshal(Marshal(p, nil), 0)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again != p {
			t.Fatalf("round trip diverged: %+v vs %+v", again, p)
		}
	})
}

// FuzzRecordStream feeds arbitrary bytes to the zero-copy record decoder:
// it must never panic and never allocate unboundedly, and every packet it
// does yield must survive a Marshal round trip (what the decoder parses is
// exactly what the wire codec would re-serialise). Seeds include a valid
// recorded stream with interleaved control frames so the corpus starts on
// the happy path.
func FuzzRecordStream(f *testing.F) {
	var valid bytes.Buffer
	w, err := NewRecordWriter(&valid)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = w.WritePacket(Packet{
			Key: wireKey(), Len: 200 + i, Flags: FlagACK,
			TS: time.Duration(i) * time.Millisecond, FlowSize: 10, Seq: i + 1,
		})
		_ = w.WriteControl(Control{NextSID: uint16(i)}, time.Duration(i))
	}
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:RecordFileHeaderBytes])
	f.Add(valid.Bytes()[:valid.Len()-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewRecordReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			p, err := r.Next()
			if err != nil {
				return
			}
			// Round trip: the decoded packet re-marshals to a frame that
			// parses back identically. ShardHash is record metadata, not
			// frame bytes — an arbitrary stream may carry any value there
			// (zero is backfilled), so it is excluded from the comparison.
			again, err := Unmarshal(Marshal(p, nil), p.TS)
			if err != nil {
				t.Fatalf("re-parse of decoded packet failed: %v", err)
			}
			if p.ShardHash == 0 {
				t.Fatal("decoded packet left ShardHash unset")
			}
			again.ShardHash = p.ShardHash
			if again != p {
				t.Fatalf("record round trip diverged: %+v vs %+v", again, p)
			}
		}
	})
}

// FuzzUnmarshalControl exercises the control-packet parser the same way.
func FuzzUnmarshalControl(f *testing.F) {
	f.Add(make([]byte, 20))
	f.Add(MarshalControl(Control{NextSID: 9, FlowIndex: 1234}, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalControl(data)
		if err != nil {
			return
		}
		again, err := UnmarshalControl(MarshalControl(c, nil))
		if err != nil || again != c {
			t.Fatalf("control round trip diverged: %+v vs %+v (%v)", again, c, err)
		}
	})
}
