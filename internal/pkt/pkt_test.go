package pkt

import (
	"testing"
	"testing/quick"

	"splidt/internal/flow"
)

func TestTCPFlagsString(t *testing.T) {
	cases := []struct {
		f    TCPFlags
		want string
	}{
		{0, "-"},
		{FlagSYN, "SYN"},
		{FlagSYN | FlagACK, "SYN|ACK"},
		{FlagFIN | FlagPSH | FlagACK, "FIN|PSH|ACK"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("TCPFlags(%#x).String() = %q, want %q", uint8(c.f), got, c.want)
		}
	}
}

func TestHas(t *testing.T) {
	f := FlagSYN | FlagACK
	if !f.Has(FlagSYN) || !f.Has(FlagACK) || !f.Has(FlagSYN|FlagACK) {
		t.Fatal("Has failed on set flags")
	}
	if f.Has(FlagFIN) || f.Has(FlagSYN|FlagFIN) {
		t.Fatal("Has true for unset flags")
	}
}

func TestWindowOfUniform(t *testing.T) {
	// Flow of 12 packets in 3 partitions: windows of 4.
	for seq := 1; seq <= 12; seq++ {
		p := Packet{FlowSize: 12, Seq: seq}
		want := (seq - 1) / 4
		if got := p.WindowOf(3); got != want {
			t.Errorf("seq %d: WindowOf(3) = %d, want %d", seq, got, want)
		}
	}
}

func TestWindowOfOverflowClamps(t *testing.T) {
	p := Packet{FlowSize: 8, Seq: 20} // retransmissions past declared size
	if got := p.WindowOf(4); got != 3 {
		t.Fatalf("overflow packet window = %d, want 3", got)
	}
}

func TestWindowOfSinglePartition(t *testing.T) {
	p := Packet{FlowSize: 100, Seq: 57}
	if got := p.WindowOf(1); got != 0 {
		t.Fatalf("single partition window = %d, want 0", got)
	}
}

func TestIsWindowEnd(t *testing.T) {
	// 12 packets, 3 partitions: boundaries at seq 4, 8, 12.
	ends := map[int]bool{4: true, 8: true, 12: true}
	for seq := 1; seq <= 12; seq++ {
		p := Packet{FlowSize: 12, Seq: seq}
		if got := p.IsWindowEnd(3); got != ends[seq] {
			t.Errorf("seq %d: IsWindowEnd = %v, want %v", seq, got, ends[seq])
		}
	}
}

func TestIsWindowEndUnevenFlow(t *testing.T) {
	// 7 packets in 3 partitions: every packet must fall in exactly one
	// window and the final packet must end the final window.
	last := Packet{FlowSize: 7, Seq: 7}
	if !last.IsWindowEnd(3) {
		t.Fatal("final packet must end a window")
	}
	count := 0
	for seq := 1; seq <= 7; seq++ {
		if (Packet{FlowSize: 7, Seq: seq}).IsWindowEnd(3) {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("uneven flow had %d window ends, want 3", count)
	}
}

func TestWindowMonotonicProperty(t *testing.T) {
	f := func(size uint8, parts uint8) bool {
		n := int(size%200) + 1
		p := int(parts%7) + 1
		prev := -1
		for seq := 1; seq <= n; seq++ {
			w := (Packet{FlowSize: n, Seq: seq}).WindowOf(p)
			if w < prev || w < 0 || w >= p {
				return false
			}
			prev = w
		}
		// Final packet lands in last window only if n >= p; always valid range.
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEndCountEqualsPartitions(t *testing.T) {
	// For flows at least as long as the partition count, there are exactly
	// `parts` window-end packets.
	f := func(size uint8, parts uint8) bool {
		p := int(parts%7) + 1
		n := int(size%200) + p // ensure n >= p
		count := 0
		for seq := 1; seq <= n; seq++ {
			if (Packet{FlowSize: n, Seq: seq}).IsWindowEnd(p) {
				count++
			}
		}
		return count == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroFlowSize(t *testing.T) {
	p := Packet{FlowSize: 0, Seq: 3}
	if p.WindowOf(4) != 0 {
		t.Fatal("unknown flow size should map to window 0")
	}
	if p.IsWindowEnd(4) {
		t.Fatal("unknown flow size should never signal a window end")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{
		Key: flow.Key{SrcIP: flow.AddrFrom4(10, 0, 0, 1), DstIP: flow.AddrFrom4(10, 0, 0, 2),
			SrcPort: 1, DstPort: 2, Proto: flow.ProtoTCP},
		Len: 100, Flags: FlagSYN, Seq: 1, FlowSize: 10,
	}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestWindowOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WindowOf(0) did not panic")
		}
	}()
	(Packet{FlowSize: 5, Seq: 1}).WindowOf(0)
}

func TestPacketShard(t *testing.T) {
	key := flow.Key{SrcIP: flow.AddrFrom4(10, 0, 0, 1), DstIP: flow.AddrFrom4(172, 16, 0, 2),
		SrcPort: 1234, DstPort: 443, Proto: flow.ProtoTCP}
	with := Packet{Key: key, ShardHash: key.ShardHash()}
	without := Packet{Key: key} // hand-built packet: lazy fallback path
	reversed := Packet{Key: key.Reverse(), ShardHash: key.Reverse().ShardHash()}
	for n := 1; n <= 8; n++ {
		want := key.Shard(n)
		if with.Shard(n) != want || without.Shard(n) != want || reversed.Shard(n) != want {
			t.Fatalf("Shard(%d): precomputed=%d fallback=%d reversed=%d, want %d",
				n, with.Shard(n), without.Shard(n), reversed.Shard(n), want)
		}
	}
}

func TestPacketShardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shard(0) did not panic")
		}
	}()
	(Packet{}).Shard(0)
}
