package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"splidt/internal/flow"
)

// Wire codec: the byte layout the generated P4 parser consumes. A data
// packet carries Ethernet + IPv4 + L4 ports + the SpliDT transport header
// (flow size and sequence, Homa/NDP-style); a control packet carries the
// in-band SpliDT control header (next SID and flow index) used by
// recirculation. Payload bytes beyond the headers are not materialised —
// Len records the wire length, as a switch pipeline only sees headers plus
// a byte count.

// Wire sizes.
const (
	ethBytes    = 14
	ipv4Bytes   = 20
	portBytes   = 4
	splidtBytes = 13 // flow_size(4) seq(4) flags(1) wire_len(4)
	// HeaderWireBytes is the serialised header length of a data packet.
	HeaderWireBytes = ethBytes + ipv4Bytes + portBytes + splidtBytes

	// ctrlMagic distinguishes control packets in the EtherType field.
	ctrlMagic = 0x88B5 // local experimental EtherType
	dataMagic = 0x0800 // IPv4
)

// ErrNotData reports a frame whose EtherType is not the data-packet
// EtherType — a control packet, or a foreign frame in a recorded stream.
// It is a sentinel so hot ingest paths can test it with errors.Is and
// skip the frame without allocating: Unmarshal returns pre-boxed wrapped
// instances for the EtherTypes a recorded stream actually carries.
var ErrNotData = errors.New("pkt: not a data packet")

// ErrTruncated reports a frame shorter than the wire header layout.
var ErrTruncated = errors.New("pkt: truncated frame")

// notDataError wraps ErrNotData with the offending EtherType. The value is
// the EtherType itself, so the two instances the hot path sees (control
// frames, and the zero value for degenerate frames) are boxed once below
// and returning them never allocates.
type notDataError uint16

func (e notDataError) Error() string {
	return fmt.Sprintf("pkt: not a data packet (ethertype %#04x)", uint16(e))
}

// Is makes errors.Is(err, ErrNotData) true for every notDataError.
func (e notDataError) Is(target error) bool { return target == ErrNotData }

// EtherType returns the frame's EtherType field.
func (e notDataError) EtherType() uint16 { return uint16(e) }

// errCtrlNotData is the pre-boxed rejection for control frames — the one
// non-data EtherType a recorded stream interleaves at rate. Keeping it
// boxed makes the reject path allocation-free.
var errCtrlNotData error = notDataError(ctrlMagic)

// Marshal serialises the packet's headers into buf, returning the slice
// written (length HeaderWireBytes). buf may be nil.
func Marshal(p Packet, buf []byte) []byte {
	if cap(buf) < HeaderWireBytes {
		buf = make([]byte, HeaderWireBytes)
	}
	buf = buf[:HeaderWireBytes]
	// Ethernet: addresses zeroed (the simulator routes on IP), EtherType
	// marks a data packet.
	for i := 0; i < 12; i++ {
		buf[i] = 0
	}
	binary.BigEndian.PutUint16(buf[12:14], dataMagic)

	ip := buf[ethBytes:]
	ip[0] = 0x45 // v4, ihl 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(clampU16(p.Len)))
	binary.BigEndian.PutUint16(ip[4:6], 0)
	binary.BigEndian.PutUint16(ip[6:8], 0)
	ip[8] = 64 // ttl
	ip[9] = byte(p.Key.Proto)
	binary.BigEndian.PutUint16(ip[10:12], 0) // checksum (simulator ignores)
	binary.BigEndian.PutUint32(ip[12:16], uint32(p.Key.SrcIP))
	binary.BigEndian.PutUint32(ip[16:20], uint32(p.Key.DstIP))

	l4 := ip[ipv4Bytes:]
	binary.BigEndian.PutUint16(l4[0:2], p.Key.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], p.Key.DstPort)

	sp := l4[portBytes:]
	binary.BigEndian.PutUint32(sp[0:4], uint32(p.FlowSize))
	binary.BigEndian.PutUint32(sp[4:8], uint32(p.Seq))
	sp[8] = byte(p.Flags)
	binary.BigEndian.PutUint32(sp[9:13], uint32(p.Len))
	return buf
}

// Unmarshal parses a data packet's headers. ts supplies the capture
// timestamp (timestamps are capture metadata, not wire bytes).
//
//splidt:hotpath
func Unmarshal(buf []byte, ts time.Duration) (Packet, error) {
	if len(buf) < HeaderWireBytes {
		if len(buf) >= 14 {
			// Long enough to read the EtherType: classify the reject so a
			// streaming decoder can skip control frames allocation-free.
			if et := binary.BigEndian.Uint16(buf[12:14]); et != dataMagic {
				if et == ctrlMagic {
					return Packet{}, errCtrlNotData
				}
				return Packet{}, notDataError(et)
			}
		}
		return Packet{}, ErrTruncated
	}
	if et := binary.BigEndian.Uint16(buf[12:14]); et != dataMagic {
		if et == ctrlMagic {
			return Packet{}, errCtrlNotData
		}
		return Packet{}, notDataError(et)
	}
	ip := buf[ethBytes:]
	if ip[0]>>4 != 4 {
		//splidt:allow fmt — cold reject path: malformed frame, not the streaming skip path
		return Packet{}, fmt.Errorf("pkt: not IPv4")
	}
	l4 := ip[ipv4Bytes:]
	sp := l4[portBytes:]
	p := Packet{
		Key: flow.Key{
			SrcIP:   flow.Addr(binary.BigEndian.Uint32(ip[12:16])),
			DstIP:   flow.Addr(binary.BigEndian.Uint32(ip[16:20])),
			SrcPort: binary.BigEndian.Uint16(l4[0:2]),
			DstPort: binary.BigEndian.Uint16(l4[2:4]),
			Proto:   flow.Proto(ip[9]),
		},
		FlowSize: int(binary.BigEndian.Uint32(sp[0:4])),
		Seq:      int(binary.BigEndian.Uint32(sp[4:8])),
		Flags:    TCPFlags(sp[8]),
		Len:      int(binary.BigEndian.Uint32(sp[9:13])),
		TS:       ts,
	}
	return p, nil
}

// Control is the in-band control packet recirculated at subtree
// transitions: the next subtree ID and the flow's register index.
type Control struct {
	NextSID   uint16
	FlowIndex uint32
}

// controlWireBytes is the serialised control packet length (padded to the
// 64-byte minimum frame the recirculation accounting uses).
const controlWireBytes = ControlPacketBytes

// MarshalControl serialises a control packet.
func MarshalControl(c Control, buf []byte) []byte {
	if cap(buf) < controlWireBytes {
		buf = make([]byte, controlWireBytes)
	}
	buf = buf[:controlWireBytes]
	for i := range buf {
		buf[i] = 0
	}
	binary.BigEndian.PutUint16(buf[12:14], ctrlMagic)
	binary.BigEndian.PutUint16(buf[14:16], c.NextSID)
	binary.BigEndian.PutUint32(buf[16:20], c.FlowIndex)
	return buf
}

// UnmarshalControl parses a control packet.
func UnmarshalControl(buf []byte) (Control, error) {
	if len(buf) < 20 {
		return Control{}, fmt.Errorf("pkt: short control packet: %d bytes", len(buf))
	}
	if et := binary.BigEndian.Uint16(buf[12:14]); et != ctrlMagic {
		return Control{}, fmt.Errorf("pkt: not a control packet (ethertype %#x)", et)
	}
	return Control{
		NextSID:   binary.BigEndian.Uint16(buf[14:16]),
		FlowIndex: binary.BigEndian.Uint32(buf[16:20]),
	}, nil
}

// IsControl reports whether the buffer holds a control packet.
func IsControl(buf []byte) bool {
	return len(buf) >= 14 && binary.BigEndian.Uint16(buf[12:14]) == ctrlMagic
}

func clampU16(v int) int {
	if v < 0 {
		return 0
	}
	if v > 0xFFFF {
		return 0xFFFF
	}
	return v
}
