package pkt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Record codec: a pcap-style container for wire-format frames, the
// recorded-trace input of the load harness. The file is a fixed header
// followed by length-prefixed records; each record is a capture timestamp
// plus one frame in the Marshal/MarshalControl wire layout. Like pcap, the
// timestamp is capture metadata, not frame bytes.
//
// The decoder is streaming and zero-copy in the sense that matters for an
// open-loop generator: one reusable frame buffer, one bufio read layer, no
// per-record allocation — frames are parsed in place and only the fixed-size
// Packet value leaves the reader, so ingest throughput is bounded by the
// parse, not the allocator.

// Record file layout constants.
const (
	// recordMagic opens every record file ("SPLT" big-endian).
	recordMagic uint32 = 0x53504C54
	// recordVersion is the current file-format version.
	recordVersion uint16 = 1
	// RecordFileHeaderBytes is the length of the file header:
	// magic(4) version(2) reserved(2).
	RecordFileHeaderBytes = 8
	// recordHdrBytes is the per-record header: ts-nanos(8) dispatch-hash(8)
	// frame-len(4). The dispatch hash is capture metadata, like the
	// timestamp: recording it costs 8 bytes per record and lets replay skip
	// the per-packet key hash — the hot 60% of a decode otherwise.
	recordHdrBytes = 20
	// MaxFrameBytes bounds a record's frame length — far above any frame
	// the codec writes, and low enough that a corrupt (or adversarial)
	// length field cannot force a huge buffer.
	MaxFrameBytes = 1 << 16
)

// Record-stream errors.
var (
	// ErrBadMagic reports a stream that does not open with the record file
	// header.
	ErrBadMagic = errors.New("pkt: not a record stream (bad magic)")
	// ErrFrameTooLarge reports a record whose declared frame length exceeds
	// MaxFrameBytes.
	ErrFrameTooLarge = errors.New("pkt: record frame exceeds MaxFrameBytes")
)

// RecordWriter streams packets into a record file. Construct with
// NewRecordWriter; call Flush before closing the underlying writer. The
// steady-state WritePacket path reuses one frame buffer and allocates
// nothing.
type RecordWriter struct {
	w     *bufio.Writer
	frame []byte
	hdr   [recordHdrBytes]byte
	n     int64
}

// NewRecordWriter writes the file header and returns a writer positioned at
// the first record.
func NewRecordWriter(w io.Writer) (*RecordWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var h [RecordFileHeaderBytes]byte
	binary.BigEndian.PutUint32(h[0:4], recordMagic)
	binary.BigEndian.PutUint16(h[4:6], recordVersion)
	if _, err := bw.Write(h[:]); err != nil {
		return nil, err
	}
	return &RecordWriter{w: bw, frame: make([]byte, 0, HeaderWireBytes)}, nil
}

// WritePacket appends one data packet as a record. The packet's TS becomes
// the record's capture timestamp, and its dispatch hash (computed here if
// the source didn't stamp one) is recorded alongside so replay never
// rehashes.
func (rw *RecordWriter) WritePacket(p Packet) error {
	rw.frame = Marshal(p, rw.frame)
	h := p.ShardHash
	if h == 0 {
		h = p.Key.ShardHash()
	}
	return rw.writeRecord(p.TS, h, rw.frame)
}

// WriteControl appends one control packet as a record at the given capture
// timestamp. The harness's decoder skips control frames (they are
// pipeline-internal), so interleaving them exercises the reject path the
// way a switch-port capture would.
func (rw *RecordWriter) WriteControl(c Control, ts time.Duration) error {
	rw.frame = MarshalControl(c, rw.frame)
	return rw.writeRecord(ts, 0, rw.frame)
}

func (rw *RecordWriter) writeRecord(ts time.Duration, hash uint64, frame []byte) error {
	binary.BigEndian.PutUint64(rw.hdr[0:8], uint64(ts))
	binary.BigEndian.PutUint64(rw.hdr[8:16], hash)
	binary.BigEndian.PutUint32(rw.hdr[16:20], uint32(len(frame)))
	if _, err := rw.w.Write(rw.hdr[:]); err != nil {
		return err
	}
	if _, err := rw.w.Write(frame); err != nil {
		return err
	}
	rw.n++
	return nil
}

// Records returns the number of records written.
func (rw *RecordWriter) Records() int64 { return rw.n }

// Flush forces buffered records to the underlying writer.
func (rw *RecordWriter) Flush() error { return rw.w.Flush() }

// RecordReader streams packets out of a record file. Construct with
// NewRecordReader. Next yields data packets only, silently skipping
// control and foreign frames (counted by Skipped); every yielded packet
// carries its record's capture timestamp and a precomputed dispatch hash,
// so it is ready for the engine's feed path with no further per-packet
// work. The read path reuses one frame buffer and allocates nothing per
// record.
type RecordReader struct {
	r       *bufio.Reader
	frame   []byte
	hdr     [recordHdrBytes]byte
	pkts    int64
	skipped int64
}

// NewRecordReader validates the file header and returns a reader positioned
// at the first record.
func NewRecordReader(r io.Reader) (*RecordReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var h [RecordFileHeaderBytes]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrBadMagic
		}
		return nil, err
	}
	if binary.BigEndian.Uint32(h[0:4]) != recordMagic {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(h[4:6]); v != recordVersion {
		return nil, fmt.Errorf("pkt: record stream version %d, want %d", v, recordVersion)
	}
	return &RecordReader{r: br, frame: make([]byte, HeaderWireBytes)}, nil
}

// Next returns the next data packet in the stream. It skips records whose
// frame is not a data packet (control frames, foreign EtherTypes) without
// allocating, returns io.EOF at a clean end of stream, and
// io.ErrUnexpectedEOF when the stream ends mid-record.
//
// The fast path parses each record in place in the bufio buffer
// (Peek/Discard, no copy); only a record too large for the buffer falls
// back to copying through the reusable frame buffer.
//
//splidt:hotpath
func (rr *RecordReader) Next() (Packet, error) {
	for {
		var ts time.Duration
		var frame []byte
		// Whole record (header + frame) visible in the buffer: parse in
		// place. Peek refills across the boundary as needed and only fails
		// outright when the record exceeds the buffer size.
		if buf, err := rr.r.Peek(recordHdrBytes); err == nil {
			n := binary.BigEndian.Uint32(buf[16:20])
			if n > MaxFrameBytes {
				return Packet{}, ErrFrameTooLarge
			}
			rec := recordHdrBytes + int(n)
			if buf, err = rr.r.Peek(rec); err == nil {
				ts = time.Duration(binary.BigEndian.Uint64(buf[0:8]))
				hash := binary.BigEndian.Uint64(buf[8:16])
				frame = buf[recordHdrBytes:rec]
				p, err := Unmarshal(frame, ts)
				rr.r.Discard(rec)
				if err != nil {
					if errors.Is(err, ErrNotData) {
						rr.skipped++
						continue
					}
					return Packet{}, err
				}
				// The recorded dispatch hash makes the packet feed-ready with
				// no further per-packet work — parity with the in-memory
				// generators, which stamp it at flow birth. A recording
				// without one (foreign tooling) is backfilled here.
				if hash == 0 {
					hash = p.Key.ShardHash()
				}
				p.ShardHash = hash
				rr.pkts++
				return p, nil
			} else if err == io.ErrUnexpectedEOF || err == io.EOF {
				return Packet{}, io.ErrUnexpectedEOF
			}
			// bufio.ErrBufferFull: record straddles more than one buffer;
			// fall through to the copying path.
		} else if err != bufio.ErrBufferFull {
			if err == io.ErrUnexpectedEOF {
				return Packet{}, io.ErrUnexpectedEOF
			}
			if err == io.EOF {
				if _, err2 := rr.r.Peek(1); err2 == io.EOF {
					return Packet{}, io.EOF // clean end of stream
				}
				return Packet{}, io.ErrUnexpectedEOF
			}
			return Packet{}, err
		}

		if _, err := io.ReadFull(rr.r, rr.hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Packet{}, io.ErrUnexpectedEOF
			}
			return Packet{}, err // io.EOF: clean end of stream
		}
		ts = time.Duration(binary.BigEndian.Uint64(rr.hdr[0:8]))
		hash := binary.BigEndian.Uint64(rr.hdr[8:16])
		n := binary.BigEndian.Uint32(rr.hdr[16:20])
		if n > MaxFrameBytes {
			return Packet{}, ErrFrameTooLarge
		}
		if int(n) > cap(rr.frame) {
			//splidt:allow alloc — slow path only: record straddles the 64KiB bufio buffer; the buffer is reused after
			rr.frame = make([]byte, n)
		}
		rr.frame = rr.frame[:n]
		if _, err := io.ReadFull(rr.r, rr.frame); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Packet{}, err
		}
		p, err := Unmarshal(rr.frame, ts)
		if err != nil {
			if errors.Is(err, ErrNotData) {
				rr.skipped++
				continue
			}
			return Packet{}, err
		}
		if hash == 0 {
			hash = p.Key.ShardHash()
		}
		p.ShardHash = hash
		rr.pkts++
		return p, nil
	}
}

// Packets returns the number of data packets yielded so far.
func (rr *RecordReader) Packets() int64 { return rr.pkts }

// Skipped returns the number of non-data records skipped so far.
func (rr *RecordReader) Skipped() int64 { return rr.skipped }
