package pkt

import (
	"testing"
	"testing/quick"
	"time"

	"splidt/internal/flow"
)

func wireKey() flow.Key {
	return flow.Key{
		SrcIP: flow.AddrFrom4(10, 1, 2, 3), DstIP: flow.AddrFrom4(172, 16, 9, 8),
		SrcPort: 44123, DstPort: 443, Proto: flow.ProtoTCP,
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := Packet{
		Key: wireKey(), Len: 1480, Flags: FlagSYN | FlagACK,
		TS: 5 * time.Millisecond, FlowSize: 120, Seq: 7,
	}
	buf := Marshal(p, nil)
	if len(buf) != HeaderWireBytes {
		t.Fatalf("marshal length %d, want %d", len(buf), HeaderWireBytes)
	}
	got, err := Unmarshal(buf, p.TS)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestMarshalReusesBuffer(t *testing.T) {
	p := Packet{Key: wireKey(), Len: 100, Seq: 1, FlowSize: 2}
	buf := make([]byte, HeaderWireBytes)
	out := Marshal(p, buf)
	if &out[0] != &buf[0] {
		t.Fatal("Marshal allocated despite sufficient buffer")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10), 0); err == nil {
		t.Fatal("short buffer accepted")
	}
	p := Packet{Key: wireKey(), Len: 100, Seq: 1, FlowSize: 2}
	buf := Marshal(p, nil)
	buf[12], buf[13] = 0xDE, 0xAD
	if _, err := Unmarshal(buf, 0); err == nil {
		t.Fatal("bad ethertype accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16, l uint16, fl uint8, size, seq uint16) bool {
		p := Packet{
			Key: flow.Key{SrcIP: flow.Addr(a), DstIP: flow.Addr(b),
				SrcPort: sp, DstPort: dp, Proto: flow.ProtoUDP},
			Len: int(l), Flags: TCPFlags(fl),
			FlowSize: int(size), Seq: int(seq),
		}
		got, err := Unmarshal(Marshal(p, nil), 0)
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControlRoundTrip(t *testing.T) {
	c := Control{NextSID: 17, FlowIndex: 0xDEADBEEF}
	buf := MarshalControl(c, nil)
	if len(buf) != ControlPacketBytes {
		t.Fatalf("control length %d, want %d", len(buf), ControlPacketBytes)
	}
	got, err := UnmarshalControl(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("control round trip: got %+v, want %+v", got, c)
	}
}

func TestIsControl(t *testing.T) {
	data := Marshal(Packet{Key: wireKey(), Seq: 1, FlowSize: 1}, nil)
	ctrl := MarshalControl(Control{NextSID: 2}, nil)
	if IsControl(data) {
		t.Fatal("data packet misidentified as control")
	}
	if !IsControl(ctrl) {
		t.Fatal("control packet not identified")
	}
	if _, err := UnmarshalControl(data); err == nil {
		t.Fatal("data packet parsed as control")
	}
	if IsControl(nil) {
		t.Fatal("nil identified as control")
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := Packet{Key: wireKey(), Len: 1480, Flags: FlagACK, FlowSize: 100, Seq: 5}
	buf := make([]byte, HeaderWireBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(p, buf)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf := Marshal(Packet{Key: wireKey(), Len: 1480, FlowSize: 100, Seq: 5}, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
