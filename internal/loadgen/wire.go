package loadgen

//splidt:packettime — replay advances on recorded capture timestamps

import (
	"io"

	"splidt/internal/pkt"
)

// WireSource adapts a recorded wire-format stream (pkt.RecordReader) to the
// engine's Source interface: packets are decoded in place off one reusable
// frame buffer — the zero-copy ingest path — with non-data frames skipped,
// so driving the engine from a recorded file costs one parse per packet and
// no allocation. Record a workload with `splidt-engine -record` (or
// pkt.RecordWriter) and replay it here.
type WireSource struct {
	r   *pkt.RecordReader
	err error
}

// NewWireSource validates the stream header and returns a source positioned
// at the first record.
func NewWireSource(r io.Reader) (*WireSource, error) {
	rr, err := pkt.NewRecordReader(r)
	if err != nil {
		return nil, err
	}
	return &WireSource{r: rr}, nil
}

// Next yields the next data packet, or ok=false at end of stream — clean or
// not; Err distinguishes.
//
//splidt:hotpath
func (s *WireSource) Next() (pkt.Packet, bool) {
	if s.err != nil {
		return pkt.Packet{}, false
	}
	p, err := s.r.Next()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return pkt.Packet{}, false
	}
	return p, true
}

// Err returns the decode error that ended the stream, nil on clean EOF.
func (s *WireSource) Err() error { return s.err }

// Packets returns the number of data packets yielded so far.
func (s *WireSource) Packets() int64 { return s.r.Packets() }

// Skipped returns the number of non-data records skipped so far.
func (s *WireSource) Skipped() int64 { return s.r.Skipped() }
