package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/pkt"
)

// BenchmarkChurnNext measures the in-memory generation path — the number to
// beat for wire ingest (decoding a recording must not be slower than
// generating the same packets).
func BenchmarkChurnNext(b *testing.B) {
	g, err := NewChurn(churnTestCfg(100_000, 1))
	if err != nil {
		b.Fatalf("NewChurn: %v", err)
	}
	for i := 0; i < 200_000; i++ { // warm wheel buckets to steady size
		g.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("exhausted")
		}
	}
}

// BenchmarkWireNext measures zero-copy wire ingest: per-packet cost of
// decoding a recorded stream back into engine-ready packets.
func BenchmarkWireNext(b *testing.B) {
	g, err := NewChurn(churnTestCfg(10_000, 2))
	if err != nil {
		b.Fatalf("NewChurn: %v", err)
	}
	var buf bytes.Buffer
	w, err := pkt.NewRecordWriter(&buf)
	if err != nil {
		b.Fatalf("NewRecordWriter: %v", err)
	}
	for i := 0; i < 100_000; i++ {
		p, _ := g.Next()
		if err := w.WritePacket(p); err != nil {
			b.Fatalf("WritePacket: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatalf("Flush: %v", err)
	}
	data := buf.Bytes()

	rd := bytes.NewReader(data)
	src, err := NewWireSource(rd)
	if err != nil {
		b.Fatalf("NewWireSource: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := src.Next()
		if !ok {
			if src.Err() != nil {
				b.Fatalf("wire source: %v", src.Err())
			}
			rd.Reset(data) // recording exhausted: rewind (amortised)
			if src, err = NewWireSource(rd); err != nil {
				b.Fatalf("NewWireSource: %v", err)
			}
			p, ok = src.Next()
			if !ok {
				b.Fatal("empty recording")
			}
		}
		_ = p
	}
}

// BenchmarkHarnessSteady measures the whole loop end to end — generate,
// feed, classify, digest — unpaced, one feeder, including session start and
// drain (amortised at benchmark N).
func BenchmarkHarnessSteady(b *testing.B) {
	e := testEngine(b, 1<<16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := Run(context.Background(), Config{
		Engine: e,
		Churn:  churnTestCfg(20_000, 4),
		Phases: []Phase{{Name: "bench", Packets: int64(b.N)}},
	})
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
	if rep.Total.Elapsed > 0 {
		b.ReportMetric(float64(rep.Total.Packets)/rep.Total.Elapsed.Seconds(), "pkts/s")
	}
}

// TestMillionFlowValidation is the headline scale run: a 1.2M-flow churning
// population over a 4M-slot deployment, driven through steady, collision-
// storm, and block-storm phases, asserting the table sustains over a
// million concurrent flows at every phase boundary. ~10M packets on one
// CPU; gated behind SPLIDT_LOADGEN_1M=1 so the ordinary suite stays fast.
func TestMillionFlowValidation(t *testing.T) {
	if os.Getenv("SPLIDT_LOADGEN_1M") == "" {
		t.Skip("set SPLIDT_LOADGEN_1M=1 to run the million-flow validation")
	}
	// A single pipeline's per-flow state is stage-bounded (≈280K flows fit
	// Tofino1's register stages at ~480 bits/flow), so the million-flow
	// table is 8 shard pipelines splitting a 2^21-slot budget — 262K slots
	// each.
	const (
		flows  = 1_200_000
		slots  = 1 << 21 // total across shards
		shards = 8
	)
	dcfg := deployCfg(t, slots)
	dcfg.Table = dataplane.TableCuckoo // direct mapping collision-couples at this load
	dcfg.Expiry = dataplane.ExpiryWheel
	dcfg.IdleTimeout = 10 * time.Millisecond // virtual time; see ChurnConfig.TimeScale
	e, err := engine.New(engine.Config{Deploy: dcfg, Shards: shards})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	churn := ChurnConfig{
		Flows:           flows,
		Seed:            2025,
		TimeScale:       3000,
		LongIATFraction: 0.05,
		CollisionTable:  slots,
		CollisionGroups: 64,
		PoolSize:        1024,
	}
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Engine:  e,
		Feeders: 2,
		Churn:   churn,
		Phases: []Phase{
			{Name: "steady", Packets: 4_000_000},
			{Name: "storm", Packets: 3_000_000, CollisionFrac: 0.5},
			{Name: "blockstorm", Packets: 3_000_000, BlockEvery: 2000},
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, pr := range rep.Phases {
		t.Logf("%v", pr)
		if pr.ActiveFlows < 1_000_000 {
			t.Errorf("phase %s: %d active flows at phase end, want ≥ 1M",
				pr.Name, pr.ActiveFlows)
		}
	}
	t.Logf("%v", rep.Total)
	t.Logf("wall %v, %0.f pkts/s overall", time.Since(start), rep.Total.PktsPerSec)
	// Benchstat-format lines for BENCH_engine.json (make bench-1m): one per
	// phase plus the run total, on stdout so `grep ^Benchmark` collects them.
	for _, pr := range append(rep.Phases, rep.Total) {
		fmt.Printf("BenchmarkLoadgenMillionFlow/%s \t%d\t%d ns/op\t%.0f pkts/s\t%d active-flows\t%d p50-ns\t%d p99-ns\t%d p999-ns\t%.3f occupancy\n",
			pr.Name, pr.Packets, pr.Elapsed.Nanoseconds(), pr.PktsPerSec,
			pr.ActiveFlows, pr.P50.Nanoseconds(), pr.P99.Nanoseconds(),
			pr.P999.Nanoseconds(), pr.Occupancy)
	}
	if rep.Total.LatencyCount != rep.Total.Digests {
		t.Errorf("latency observations %d != digests %d",
			rep.Total.LatencyCount, rep.Total.Digests)
	}
	if rep.Total.Births == 0 {
		t.Error("no churn at million-flow scale")
	}
}
