package loadgen

//splidt:packettime — emission advances a virtual tick clock; all randomness flows through the generator's seeded rng

import (
	"fmt"
	"math/rand"
	"time"

	"splidt/internal/flow"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// ChurnGen is an endless packet source over a fixed-size population of
// concurrently live flows: every flow that emits its last packet is reborn
// in place under a fresh 5-tuple, so the concurrent flow count stays at the
// configured population while flow identities churn continuously — the
// steady-state regime a flow table actually faces, as opposed to a replayed
// finite trace whose population only ramps up and drains.
//
// Scheduling is a single-level timing wheel over a virtual clock: each live
// flow is filed under its next packet's due tick, Next pops the earliest
// due flow, emits its packet, and re-files it one inter-arrival gap later.
// Far-future deadlines (heavy-tailed keepalive gaps) park in their due
// tick's bucket modulo the wheel span and are re-filed on each lap until
// their lap arrives — the park-and-recheck discipline that keeps the wheel
// single-level. The steady-state Next path allocates nothing: flow state
// lives in one flat array, wheel buckets recycle their backing arrays, and
// packets are returned by value.
//
// Flow shapes come from the paper's datacenter workload models
// (trace.Workload): lognormal flow sizes and lifetimes, a per-flow base
// inter-arrival gap derived from the two, uniform per-packet jitter, and an
// optional heavy-tailed keepalive fraction whose gaps are floored at long
// idle periods (the regime trace.GenConfig.LongIATFraction models).
//
// Adversarial churn: a precomputed pool of colliding keys — rejection-
// sampled at construction so storms cost nothing at emission time — lets a
// phase direct a fraction of rebirths into few flow-table buckets
// (SetCollisionFrac), the trace.Colliding regime under churn.
//
// A ChurnGen is single-goroutine, like every engine.Source; partition a
// population across parallel feeders by building one generator per feeder
// (PerFeeder), which also keeps each flow confined to one feeder as the
// engine's ordering contract requires.
type ChurnGen struct {
	cfg   ChurnConfig
	rng   *rand.Rand
	flows []churnFlow

	wheel [][]int32 // bucket b holds indices of flows due at ticks ≡ b
	ready []int32   // flows due exactly at cur, pending emission
	cur   uint64    // current virtual tick

	pool     []flow.Key // precomputed colliding keys (storm rebirths)
	poolNext int
	collFrac float64

	births  int64 // rebirths (population turnover; initial births excluded)
	emitted int64
}

// churnFlow is one live flow's compact generator state (~48 B; a
// million-flow population costs tens of MB, not GB).
type churnFlow struct {
	key       flow.Key
	shardHash uint64
	due       uint64  // absolute tick of the next packet
	size      int32   // total packets this incarnation will emit
	seq       int32   // packets emitted so far
	iat       float32 // mean inter-arrival gap, in ticks
	long      bool    // keepalive flow: gaps floored at long idle periods
}

// Wheel geometry. One tick of virtual time is tickDur; the wheel spans
// wheelSize ticks (≈6.6 s) before far deadlines must park-and-recheck.
const (
	tickDur   = 100 * time.Microsecond
	wheelBits = 16
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Keepalive gap bounds for ChurnConfig.LongIATFraction, matching
// trace.GenConfig's regime: each long gap is uniform in [600ms, 2s) of
// virtual time (before TimeScale compression).
const (
	longGapMin  = 600 * time.Millisecond
	longGapSpan = 1400 * time.Millisecond
)

// ChurnConfig sizes a ChurnGen.
type ChurnConfig struct {
	// Flows is the steady concurrent flow population. Required.
	Flows int
	// Seed drives all generator randomness; equal configs are replayable.
	Seed int64
	// Workload supplies the flow-size and lifetime distributions. Zero
	// value: trace.Webserver.
	Workload trace.Workload
	// LongIATFraction of flows are heavy-tailed keepalives: every gap is
	// floored at a long idle period, so they sit live-but-quiet far past
	// chatty-traffic timeouts.
	LongIATFraction float64
	// TimeScale compresses virtual time: lifetimes and gaps are divided by
	// it, so a harness run covers TimeScale× more flow churn per emitted
	// packet. Default 1.
	TimeScale float64
	// RebirthDelay is the mean virtual-time gap between a flow's death and
	// its rebirth — the population's birth-rate knob (births/sec ≈
	// Flows/(lifetime+RebirthDelay)). Default 1ms.
	RebirthDelay time.Duration
	// CollisionTable enables the adversarial key pool: pool keys satisfy
	// SymHash % CollisionTable < CollisionGroups, concentrating them into
	// few flow-table buckets (pass the deployment's total flow-slot count;
	// see trace.Colliding for how the property survives sharding). 0
	// disables storms.
	CollisionTable int
	// CollisionGroups is the number of target buckets. Default 256 —
	// rejection sampling costs CollisionTable/CollisionGroups tries per
	// pool key, so very small groups against a large table make
	// construction slow.
	CollisionGroups int
	// PoolSize is how many colliding keys to precompute. Default 1024;
	// rebirths cycle through the pool.
	PoolSize int
}

func (c *ChurnConfig) defaults() error {
	if c.Flows <= 0 {
		return fmt.Errorf("loadgen: non-positive flow population %d", c.Flows)
	}
	if c.Workload.MeanFlowPkts == 0 {
		c.Workload = trace.Webserver
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.RebirthDelay <= 0 {
		c.RebirthDelay = time.Millisecond
	}
	if c.CollisionTable > 0 {
		if c.CollisionGroups <= 0 {
			c.CollisionGroups = 256
		}
		if c.CollisionGroups > c.CollisionTable {
			c.CollisionGroups = c.CollisionTable
		}
		if c.PoolSize <= 0 {
			c.PoolSize = 1024
		}
	}
	return nil
}

// NewChurn builds a generator with its full population live: each flow's
// first packet is spread uniformly over a couple of mean inter-arrival gaps
// — the due-time mix a population in steady state actually shows — so the
// opening regime is neither a thundering herd at tick zero nor a ramp that
// scales with the wheel span (which would cost a million-flow run billions
// of warm-up packets).
func NewChurn(cfg ChurnConfig) (*ChurnGen, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	g := &ChurnGen{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		flows: make([]churnFlow, cfg.Flows),
		wheel: make([][]int32, wheelSize),
	}
	if cfg.CollisionTable > 0 {
		g.pool = collidingPool(g.rng, cfg.PoolSize, cfg.CollisionTable, cfg.CollisionGroups)
	}
	meanIAT := cfg.Workload.MeanDuration.Seconds() / cfg.TimeScale /
		cfg.Workload.MeanFlowPkts / tickDur.Seconds()
	window := int(2 * meanIAT)
	if window < 2 {
		window = 2
	}
	if window > wheelSize/2 {
		window = wheelSize / 2
	}
	for i := range g.flows {
		g.birth(int32(i), false)
		g.flows[i].due = uint64(g.rng.Intn(window))
		g.file(int32(i))
	}
	return g, nil
}

// PerFeeder splits a population config into n per-feeder configs: the flow
// count divides (remainder to the first) and seeds decorrelate, so parallel
// feeders drive disjoint flow sets — the engine's per-flow ordering
// contract.
func PerFeeder(cfg ChurnConfig, n int) []ChurnConfig {
	out := make([]ChurnConfig, n)
	per := cfg.Flows / n
	for i := range out {
		out[i] = cfg
		out[i].Flows = per
		out[i].Seed = cfg.Seed + int64(i)*0x6a09e667f3bcc909
	}
	out[0].Flows += cfg.Flows - per*n
	return out
}

// collidingPool rejection-samples keys whose direction-symmetric register
// hash lands in the first `groups` of `table` indices — the trace.Colliding
// property, paid once at construction so storm rebirths are O(1).
func collidingPool(rng *rand.Rand, size, table, groups int) []flow.Key {
	pool := make([]flow.Key, 0, size)
	k := flow.Key{DstPort: 443, Proto: flow.ProtoTCP}
	for len(pool) < size {
		k.SrcIP = flow.AddrFrom4(10, 1, byte(rng.Intn(250)), byte(1+rng.Intn(250)))
		k.DstIP = flow.AddrFrom4(172, 16, byte(rng.Intn(250)), byte(1+rng.Intn(250)))
		k.SrcPort = uint16(1024 + rng.Intn(60000))
		if int(k.SymHash()%uint32(table)) < groups {
			pool = append(pool, k)
		}
	}
	return pool
}

// SetCollisionFrac directs this fraction of subsequent rebirths to draw
// their key from the colliding pool (no-op without a pool). A phase knob:
// call between phases from the goroutine that drives Next.
func (g *ChurnGen) SetCollisionFrac(f float64) {
	if g.pool == nil {
		f = 0
	}
	g.collFrac = f
}

// birth (re)initialises flow slot i with a fresh identity and shape. reuse
// marks rebirths (counted as churn) versus initial population fill.
//
//splidt:hotpath
func (g *ChurnGen) birth(i int32, reuse bool) {
	f := &g.flows[i]
	if reuse && g.collFrac > 0 && g.rng.Float64() < g.collFrac {
		f.key = g.pool[g.poolNext]
		g.poolNext++
		if g.poolNext == len(g.pool) {
			g.poolNext = 0
		}
	} else {
		f.key = flow.Key{
			SrcIP:   flow.AddrFrom4(10, 1, byte(g.rng.Intn(250)), byte(1+g.rng.Intn(250))),
			DstIP:   flow.AddrFrom4(172, 16, byte(g.rng.Intn(250)), byte(1+g.rng.Intn(250))),
			SrcPort: uint16(1024 + g.rng.Intn(60000)),
			DstPort: wellKnownPorts[g.rng.Intn(len(wellKnownPorts))],
			Proto:   flow.ProtoTCP,
		}
	}
	f.shardHash = f.key.ShardHash()
	size := g.cfg.Workload.SampleFlowSize(g.rng)
	f.size = int32(size)
	f.seq = 0
	life := float64(g.cfg.Workload.SampleDuration(g.rng)) / g.cfg.TimeScale
	f.iat = float32(life / float64(size) / float64(tickDur))
	if f.iat < 1 {
		f.iat = 1
	}
	f.long = g.cfg.LongIATFraction > 0 && g.rng.Float64() < g.cfg.LongIATFraction
	if reuse {
		g.births++
	}
}

// wellKnownPorts mirrors the trace generator's server-port pool.
var wellKnownPorts = []uint16{53, 80, 123, 443, 1883, 5222, 8080, 8443}

// file places flow i into the wheel bucket of its due tick. Deadlines past
// the wheel span land in their bucket modulo the span and are re-filed on
// each lap (see sift).
//
//splidt:hotpath
func (g *ChurnGen) file(i int32) {
	f := &g.flows[i]
	if f.due <= g.cur {
		g.ready = append(g.ready, i) //splidt:allow append — recycled ready list; steady-state capacity is the population bound
		f.due = g.cur
		return
	}
	b := f.due & wheelMask
	g.wheel[b] = append(g.wheel[b], i) //splidt:allow append — recycled wheel bucket; capacity converges after warm-up
}

// Next returns the next packet in virtual-arrival order. It never exhausts
// (ok is always true): the harness bounds a run by packet budget, not by
// source length.
//
//splidt:hotpath
func (g *ChurnGen) Next() (pkt.Packet, bool) {
	for len(g.ready) == 0 {
		g.cur++
		g.sift()
	}
	i := g.ready[len(g.ready)-1]
	g.ready = g.ready[:len(g.ready)-1]
	return g.emit(i), true
}

// sift splits the current tick's wheel bucket into due-now flows (moved to
// ready) and parked future laps (re-filed). The in-place re-append is safe:
// when element j is being read, at most j earlier elements have been
// re-appended to this bucket, so writes never pass the read cursor.
//
//splidt:hotpath
func (g *ChurnGen) sift() {
	b := g.cur & wheelMask
	bucket := g.wheel[b]
	g.wheel[b] = bucket[:0]
	for _, i := range bucket {
		if g.flows[i].due == g.cur {
			g.ready = append(g.ready, i) //splidt:allow append — recycled ready list; steady-state capacity is the population bound
		} else {
			// A later lap of this bucket (or a re-filed long deadline):
			// park again; its lap will come around.
			g.wheel[g.flows[i].due&wheelMask] = append(g.wheel[g.flows[i].due&wheelMask], i) //splidt:allow append — recycled wheel bucket; capacity converges after warm-up
		}
	}
}

// emit produces flow i's next packet and schedules its successor — or its
// rebirth, when this incarnation just finished.
//
//splidt:hotpath
func (g *ChurnGen) emit(i int32) pkt.Packet {
	f := &g.flows[i]
	f.seq++
	g.emitted++
	p := pkt.Packet{
		Key:       f.key,
		TS:        time.Duration(g.cur) * tickDur,
		Seq:       int(f.seq),
		FlowSize:  int(f.size),
		ShardHash: f.shardHash,
	}
	// Direction and length: a cheap sketch of the trace generator's mixes —
	// reverse ~30% of non-initial packets, tri-modal lengths.
	r := g.rng.Float64()
	if f.seq > 1 && r < 0.3 {
		p.Key = f.key.Reverse()
	}
	switch {
	case r < 0.45:
		p.Len = 40 + g.rng.Intn(88)
	case r < 0.6:
		p.Len = 1001 + g.rng.Intn(499)
	default:
		p.Len = 200 + g.rng.Intn(800)
	}
	switch {
	case f.seq == 1:
		p.Flags = pkt.FlagSYN
	case f.seq == f.size:
		p.Flags = pkt.FlagFIN | pkt.FlagACK
	default:
		p.Flags = pkt.FlagACK
		if r > 0.8 {
			p.Flags |= pkt.FlagPSH
		}
	}

	if f.seq == f.size {
		// Incarnation complete: rebirth in place after the configured mean
		// delay (exponential jitter keeps births unsynchronised).
		g.birth(i, true)
		delay := g.rng.ExpFloat64() * float64(g.cfg.RebirthDelay) / g.cfg.TimeScale
		f.due = g.cur + 1 + uint64(delay/float64(tickDur))
	} else {
		gap := float64(f.iat) * (0.5 + g.rng.Float64()) // ±50% jitter
		if f.long {
			floor := (float64(longGapMin) + g.rng.Float64()*float64(longGapSpan)) /
				g.cfg.TimeScale / float64(tickDur)
			if gap < floor {
				gap = floor
			}
		}
		if gap < 1 {
			gap = 1
		}
		f.due = g.cur + uint64(gap)
	}
	g.file(i)
	return p
}

// SampleActive returns the key of a uniformly random live flow — the
// block-storm target sampler. Same-goroutine as Next, like every method.
func (g *ChurnGen) SampleActive() flow.Key {
	return g.flows[g.rng.Intn(len(g.flows))].key
}

// Births returns how many flows have been reborn (population turnover).
func (g *ChurnGen) Births() int64 { return g.births }

// Emitted returns how many packets Next has produced.
func (g *ChurnGen) Emitted() int64 { return g.emitted }

// Flows returns the concurrent flow population.
func (g *ChurnGen) Flows() int { return len(g.flows) }

// VirtualTime returns the generator's current virtual clock.
func (g *ChurnGen) VirtualTime() time.Duration {
	return time.Duration(g.cur) * tickDur
}
