// Package loadgen is the open-loop load harness: it drives an engine with a
// continuously churning flow population (or a recorded wire-format stream)
// through parallel per-producer feeders at a target offered rate, walks a
// schedule of phases — steady state, heavy-tailed mixes, collision storms,
// block storms, hitless mid-run redeploys — and reports per-phase
// digest-latency percentiles
// (p50/p99/p999 off the engine's merged histograms), flow-table occupancy
// and stash gauges, eviction/reject counters, and achieved packet rates.
//
// Open-loop means the offered schedule never adapts to the system: each
// feeder paces against an absolute schedule (packet k is due at start +
// k/rate) and never sheds — when the engine backpressures, the feeder
// retries until accepted and the slip is reported as lag, so overload shows
// up as growing lag and latency rather than silently reduced load (the
// coordinated-omission trap a closed loop falls into).
package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/flow"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
)

// Phase is one stretch of a harness run: a packet budget driven under one
// knob setting. Zero-valued knobs give plain steady-state load.
type Phase struct {
	// Name labels the phase in the report.
	Name string
	// Packets is the phase's offered packet budget, split across feeders.
	Packets int64
	// RateFactor scales the harness target rate for this phase (0 → 1):
	// >1 models a surge, <1 a lull.
	RateFactor float64
	// CollisionFrac directs this fraction of flow rebirths to draw
	// colliding keys from the generator's precomputed pool — a collision
	// storm (requires ChurnConfig.CollisionTable; ignored in wire mode).
	CollisionFrac float64
	// BlockEvery installs a block verdict on a random live flow every this
	// many offered packets per feeder, modelling a controller blocking at
	// rate during the phase — a block storm keeping the dispatch drop
	// filter adversarially hot. Outstanding verdicts are bounded by
	// Config.BlockRing (oldest unblocked first) and cleared at phase end.
	// 0 disables. Ignored in wire mode.
	BlockEvery int64
	// Redeploy fires a hitless tree swap concurrently with this phase's
	// load: Config.Redeploy supplies a freshly compiled tree and the
	// harness calls Session.Redeploy while the feeders keep offering, so
	// the epoch handoff happens under pressure rather than at an idle
	// boundary. The adopted epoch lands in the phase's report.
	Redeploy bool
}

// Config sizes a harness run.
type Config struct {
	// Engine to drive. Required; the harness runs one session on it.
	Engine *engine.Engine
	// Feeders is the number of parallel producer goroutines, each with a
	// private engine.Feeder and (in churn mode) its own generator over a
	// disjoint slice of the population. Default 1.
	Feeders int
	// Rate is the total offered packet rate across feeders, packets/sec.
	// 0 disables pacing: feeders offer as fast as the engine accepts.
	Rate float64
	// Churn configures the generated population (Flows is the total across
	// feeders). Ignored when Source is set.
	Churn ChurnConfig
	// Source, when non-nil, replaces the churn generators with a single
	// externally supplied packet source — a WireSource over a recorded
	// stream, typically. Wire mode is single-feeder and ignores the
	// generator knobs (CollisionFrac, BlockEvery); a phase ends early if
	// the source is exhausted.
	Source engine.Source
	// Phases is the schedule, run in order. Required.
	Phases []Phase
	// BlockRing bounds outstanding block verdicts per feeder during block
	// storms. Default 1024.
	BlockRing int
	// Redeploy supplies the tree for a Phase.Redeploy swap — typically a
	// retrain on fresh traffic followed by a compile. Required when any
	// phase sets Redeploy; called once per such phase, from the harness's
	// redeploy goroutine, while the feeders are live.
	Redeploy func() (*core.Model, *rangemark.Compiled, error)
	// OnSession, when non-nil, is called with the harness's session right
	// after it starts, before any phase runs — the hook the telemetry
	// management plane uses to bind /metrics and /healthz to the live run
	// (the session does not exist until Run is underway).
	OnSession func(*engine.Session)
}

// PhaseReport is one phase's measurements. Counters are deltas over the
// phase; gauges are sampled at phase end. Engine snapshots trail live state
// by at most one in-flight burst per shard, so back-to-back phases may
// shift a handful of boundary packets between adjacent reports.
type PhaseReport struct {
	Name    string
	Packets int64 // offered (fed) this phase, blocked-and-dropped included
	Elapsed time.Duration
	// PktsPerSec is the achieved offered rate; Offered the target (0 if
	// unpaced).
	PktsPerSec float64
	Offered    float64
	// Lag is the worst feeder's schedule slip at phase end — how far
	// behind the absolute open-loop schedule it finished (0 unpaced).
	Lag time.Duration
	// Digest latency distribution over the phase (feeder handoff →
	// digest emission), from the engine's merged histograms.
	LatencyCount        int64
	P50, P99, P999, Max time.Duration

	Digests      int64
	Dropped      int64 // packets of blocked flows discarded
	Backpressure int64 // Feed calls refused (each retried; open loop)
	Evictions    int64 // flow-table slots reclaimed (sweep + Block/Evict)
	Rejects      int64 // packets the flow table refused state for
	Births       int64 // flow rebirths across generators (churn mode)

	// WheelExpiries counts flows reclaimed by timer-wheel expiry this
	// phase; WheelCascades counts wheel nodes re-filed to a finer level
	// (summed over levels). Both 0 under sweep-mode expiry.
	WheelExpiries int64
	WheelCascades int64

	ActiveFlows  int     // live flow-table entries at phase end
	Occupancy    float64 // ActiveFlows / table capacity
	StashedFlows int     // cuckoo stash residents at phase end
	BlockedFlows int     // drop-filter size at phase end

	Redeploys int    // hitless tree swaps fired during the phase (0 or 1)
	Epoch     uint64 // deploy epoch live at phase end (0 = construction tree)
}

// Report is a whole run's output.
type Report struct {
	Flows    int // concurrent flow population (0 in wire mode)
	Feeders  int
	TableCap int
	Rate     float64 // configured total target rate (0 unpaced)
	Phases   []PhaseReport
	// Total aggregates the phases: counter sums, overall rate, and the
	// run-wide latency distribution (not a sum of phase percentiles).
	Total PhaseReport
}

// feeder is one producer goroutine's state.
type feeder struct {
	f   *engine.Feeder
	gen *ChurnGen     // nil in wire mode
	src engine.Source // gen, or the shared wire source
	buf []pkt.Packet

	blocked []flow.Key // bounded ring of outstanding block verdicts
	blkPos  int
	blkLen  int

	lag       time.Duration
	exhausted bool // wire source ran dry mid-phase
}

// feedBurst is how many packets a feeder pulls from its source per pacing
// check.
const feedBurst = 256

// Run executes the schedule and returns the report. The context aborts the
// run: feeders stop at the next burst and Run returns the context's error.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("loadgen: nil engine")
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: empty phase schedule")
	}
	for i, ph := range cfg.Phases {
		if ph.Packets <= 0 {
			return nil, fmt.Errorf("loadgen: phase %d (%q) has no packet budget", i, ph.Name)
		}
		if ph.Redeploy && cfg.Redeploy == nil {
			return nil, fmt.Errorf("loadgen: phase %d (%q) requests a redeploy but Config.Redeploy is nil", i, ph.Name)
		}
	}
	if cfg.Feeders <= 0 {
		cfg.Feeders = 1
	}
	if cfg.Source != nil {
		cfg.Feeders = 1
	}
	if cfg.BlockRing <= 0 {
		cfg.BlockRing = 1024
	}

	feeders := make([]*feeder, cfg.Feeders)
	if cfg.Source == nil {
		for i, c := range PerFeeder(cfg.Churn, cfg.Feeders) {
			g, err := NewChurn(c)
			if err != nil {
				return nil, err
			}
			feeders[i] = &feeder{gen: g, src: g}
		}
	} else {
		feeders[0] = &feeder{src: cfg.Source}
	}

	s, err := cfg.Engine.Start(ctx, engine.WithDigestLatency(), engine.WithBoundedDigests())
	if err != nil {
		return nil, err
	}
	for _, fd := range feeders {
		if fd.f, err = s.NewFeeder(); err != nil {
			s.Close()
			return nil, err
		}
		fd.buf = make([]pkt.Packet, feedBurst)
		fd.blocked = make([]flow.Key, cfg.BlockRing)
	}
	// Drain digests as they arrive so a long run's memory stays bounded
	// (the session is in drop-after-delivery mode).
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range s.Digests() {
		}
	}()
	if cfg.OnSession != nil {
		cfg.OnSession(s)
	}

	rep := &Report{
		Feeders:  cfg.Feeders,
		TableCap: cfg.Engine.TableCap(),
		Rate:     cfg.Rate,
	}
	if cfg.Source == nil {
		rep.Flows = cfg.Churn.Flows
	}

	runStart := time.Now()
	var runErr error
	var liveEpoch uint64 // deploy epoch currently live (0 = construction tree)
	prevSnap := s.Snapshot()
	prevLat := s.DigestLatency()
	prevBirths := int64(0)
	for _, ph := range cfg.Phases {
		rate := cfg.Rate
		if ph.RateFactor > 0 {
			rate *= ph.RateFactor
		}
		for _, fd := range feeders {
			if fd.gen != nil {
				fd.gen.SetCollisionFrac(ph.CollisionFrac)
			}
		}
		t0 := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, len(feeders))
		per := ph.Packets / int64(len(feeders))
		for i, fd := range feeders {
			quota := per
			if i == 0 {
				quota += ph.Packets - per*int64(len(feeders))
			}
			wg.Add(1)
			go func(i int, fd *feeder) {
				defer wg.Done()
				errs[i] = fd.runPhase(ctx, s, ph, quota, rate/float64(len(feeders)))
			}(i, fd)
		}
		// A redeploy phase swaps the tree while the feeders above are live —
		// the whole point is that the epoch handoff happens under load. The
		// join after wg.Wait orders the epoch read for the report.
		var (
			redeployed   chan struct{}
			redeployErr  error
			phaseEpoch   uint64
			phaseSwapped int
		)
		if ph.Redeploy {
			redeployed = make(chan struct{})
			go func() {
				defer close(redeployed)
				m, c, err := cfg.Redeploy()
				if err == nil {
					phaseEpoch, err = s.Redeploy(m, c)
					phaseSwapped = 1
				}
				redeployErr = err
			}()
		}
		wg.Wait()
		if redeployed != nil {
			<-redeployed
			if redeployErr != nil && runErr == nil {
				runErr = fmt.Errorf("loadgen: phase %q redeploy: %w", ph.Name, redeployErr)
			}
			if phaseSwapped > 0 {
				liveEpoch = phaseEpoch
			}
		}
		for _, e := range errs {
			if e != nil && runErr == nil {
				runErr = e
			}
		}
		elapsed := time.Since(t0)

		snap := s.Snapshot()
		lat := s.DigestLatency()
		phaseLat := lat.Clone()
		phaseLat.Sub(prevLat)
		var births int64
		for _, fd := range feeders {
			if fd.gen != nil {
				births += fd.gen.Births()
			}
		}
		pr := PhaseReport{
			Name:          ph.Name,
			Packets:       snap.Fed - prevSnap.Fed,
			Elapsed:       elapsed,
			Offered:       rate,
			LatencyCount:  phaseLat.Count(),
			P50:           phaseLat.QuantileDur(0.50),
			P99:           phaseLat.QuantileDur(0.99),
			P999:          phaseLat.QuantileDur(0.999),
			Max:           time.Duration(phaseLat.Max()),
			Digests:       int64(snap.Stats.Digests - prevSnap.Stats.Digests),
			Dropped:       snap.Dropped - prevSnap.Dropped,
			Backpressure:  snap.Backpressure - prevSnap.Backpressure,
			Evictions:     int64(snap.Stats.Evictions - prevSnap.Stats.Evictions),
			Rejects:       int64(snap.Stats.Collisions - prevSnap.Stats.Collisions),
			Births:        births - prevBirths,
			WheelExpiries: int64(snap.Stats.WheelExpiries - prevSnap.Stats.WheelExpiries),
			WheelCascades: sumCascades(snap.Stats) - sumCascades(prevSnap.Stats),
			ActiveFlows:   snap.ActiveFlows,
			StashedFlows:  snap.StashedFlows,
			BlockedFlows:  snap.BlockedFlows,
			Redeploys:     phaseSwapped,
			Epoch:         liveEpoch,
		}
		if elapsed > 0 {
			pr.PktsPerSec = float64(pr.Packets) / elapsed.Seconds()
		}
		if rep.TableCap > 0 {
			pr.Occupancy = float64(snap.ActiveFlows) / float64(rep.TableCap)
		}
		for _, fd := range feeders {
			if fd.lag > pr.Lag {
				pr.Lag = fd.lag
			}
			// Clear outstanding block verdicts so phases stay independent.
			fd.drainBlocks(s)
		}
		rep.Phases = append(rep.Phases, pr)
		prevSnap, prevLat, prevBirths = snap, lat, births
		if runErr != nil {
			break
		}
	}

	res, closeErr := s.Close()
	<-drained
	if runErr == nil {
		runErr = closeErr
	}
	if runErr == nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}

	total := PhaseReport{Name: "total", Elapsed: time.Since(runStart), Epoch: liveEpoch}
	for _, pr := range rep.Phases {
		total.Packets += pr.Packets
		total.Dropped += pr.Dropped
		total.Backpressure += pr.Backpressure
		total.Evictions += pr.Evictions
		total.Rejects += pr.Rejects
		total.Births += pr.Births
		total.WheelExpiries += pr.WheelExpiries
		total.WheelCascades += pr.WheelCascades
		total.Redeploys += pr.Redeploys
		if pr.Lag > total.Lag {
			total.Lag = pr.Lag
		}
	}
	total.Digests = int64(res.Stats.Digests)
	if total.Elapsed > 0 {
		total.PktsPerSec = float64(total.Packets) / total.Elapsed.Seconds()
	}
	total.Offered = cfg.Rate
	if final := s.DigestLatency(); final != nil {
		total.LatencyCount = final.Count()
		total.P50 = final.QuantileDur(0.50)
		total.P99 = final.QuantileDur(0.99)
		total.P999 = final.QuantileDur(0.999)
		total.Max = time.Duration(final.Max())
	}
	finalSnap := s.Snapshot()
	total.ActiveFlows = finalSnap.ActiveFlows
	total.StashedFlows = finalSnap.StashedFlows
	total.BlockedFlows = finalSnap.BlockedFlows
	if rep.TableCap > 0 {
		total.Occupancy = float64(finalSnap.ActiveFlows) / float64(rep.TableCap)
	}
	rep.Total = total
	return rep, runErr
}

// runPhase drives one feeder through one phase: pull a burst from the
// source, wait for its open-loop due time, hand it to the engine (retrying
// through backpressure — never shedding), fire block-storm events on
// schedule.
func (fd *feeder) runPhase(ctx context.Context, s *engine.Session, ph Phase,
	quota int64, rate float64) error {
	fd.lag = 0
	start := time.Now()
	var sent int64
	nextBlock := ph.BlockEvery
	for sent < quota {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := int64(len(fd.buf))
		if quota-sent < n {
			n = quota - sent
		}
		b := fd.buf[:n]
		filled := 0
		for i := range b {
			p, ok := fd.src.Next()
			if !ok {
				fd.exhausted = true
				break
			}
			b[i] = p
			filled++
		}
		b = b[:filled]
		if rate > 0 {
			due := start.Add(time.Duration(float64(sent) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		if len(b) > 0 {
			if err := fd.f.FeedAll(b); err != nil {
				return err
			}
			sent += int64(len(b))
		}
		if fd.exhausted {
			break
		}
		if ph.BlockEvery > 0 && fd.gen != nil && sent >= nextBlock {
			fd.blockOne(s)
			nextBlock += ph.BlockEvery
		}
	}
	if rate > 0 && sent > 0 {
		sched := time.Duration(float64(sent) / rate * float64(time.Second))
		if lag := time.Since(start) - sched; lag > 0 {
			fd.lag = lag
		}
	}
	return nil
}

// blockOne installs a block verdict on a random live flow, unblocking the
// oldest outstanding verdict first when the ring is full.
func (fd *feeder) blockOne(s *engine.Session) {
	k := fd.gen.SampleActive()
	if fd.blkLen == len(fd.blocked) {
		s.Unblock(fd.blocked[fd.blkPos])
		fd.blkPos = (fd.blkPos + 1) % len(fd.blocked)
		fd.blkLen--
	}
	s.Block(k)
	fd.blocked[(fd.blkPos+fd.blkLen)%len(fd.blocked)] = k
	fd.blkLen++
}

// drainBlocks lifts every outstanding verdict this feeder installed.
func (fd *feeder) drainBlocks(s *engine.Session) {
	for i := 0; i < fd.blkLen; i++ {
		s.Unblock(fd.blocked[(fd.blkPos+i)%len(fd.blocked)])
	}
	fd.blkPos, fd.blkLen = 0, 0
}

// String renders a phase report as one aligned summary line.
func (pr PhaseReport) String() string {
	s := fmt.Sprintf(
		"%-12s pkts=%d %.0f pkts/s (target %.0f, lag %v) digests=%d "+
			"p50=%v p99=%v p999=%v max=%v occ=%.1f%% (%d active, %d stashed) "+
			"dropped=%d bp=%d evic=%d rej=%d births=%d blocked=%d",
		pr.Name, pr.Packets, pr.PktsPerSec, pr.Offered, pr.Lag, pr.Digests,
		pr.P50, pr.P99, pr.P999, pr.Max, 100*pr.Occupancy, pr.ActiveFlows,
		pr.StashedFlows, pr.Dropped, pr.Backpressure, pr.Evictions,
		pr.Rejects, pr.Births, pr.BlockedFlows)
	if pr.WheelExpiries > 0 || pr.WheelCascades > 0 {
		s += fmt.Sprintf(" wheel=%d(casc %d)", pr.WheelExpiries, pr.WheelCascades)
	}
	if pr.Redeploys > 0 {
		s += fmt.Sprintf(" redeploy=%d(epoch %d)", pr.Redeploys, pr.Epoch)
	}
	return s
}

// sumCascades collapses the per-level cascade counters into one scalar
// for phase reporting; /metrics keeps the per-level breakdown.
func sumCascades(st dataplane.Stats) int64 {
	var n int64
	for _, c := range st.WheelCascades {
		n += int64(c)
	}
	return n
}

var _ engine.Source = (*ChurnGen)(nil)
var _ engine.Source = (*WireSource)(nil)
