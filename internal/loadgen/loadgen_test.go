package loadgen

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"splidt/internal/core"
	"splidt/internal/dataplane"
	"splidt/internal/engine"
	"splidt/internal/flow"
	"splidt/internal/pkt"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// deployCfg trains and compiles a small model once and returns the
// deployment template (same shape as the engine tests'), re-sliced per call
// for the requested flow-slot budget.
var (
	deployOnce sync.Once
	deployBase dataplane.Config
)

func deployCfg(t testing.TB, slots int) dataplane.Config {
	t.Helper()
	deployOnce.Do(func() {
		flows := trace.Generate(trace.D3, 400, 33)
		samples := trace.BuildSamples(flows, 3)
		train, _ := trace.Split(samples, 0.7)
		m, err := core.Train(train, core.Config{
			Partitions: []int{3, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 13,
		})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		c, err := rangemark.Compile(m)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		deployBase = dataplane.Config{
			Profile: resources.Tofino1(), Model: m, Compiled: c,
		}
	})
	cfg := deployBase
	cfg.FlowSlots = slots
	return cfg
}

func testEngine(t testing.TB, slots, shards int) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{Deploy: deployCfg(t, slots), Shards: shards})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return e
}

// churnTestCfg compresses flow lifetimes hard (120s mean → ~40ms virtual)
// so even a short pull sees real population turnover.
func churnTestCfg(flows int, seed int64) ChurnConfig {
	return ChurnConfig{Flows: flows, Seed: seed, TimeScale: 3000}
}

// TestChurnSteadyPopulation pins the generator's core invariants over a
// long pull: population constant, per-incarnation sequence numbers exact
// (SYN opens at 1, FIN closes at size), timestamps non-decreasing, and the
// population actually churns.
func TestChurnSteadyPopulation(t *testing.T) {
	const flows, pulls = 2000, 300_000
	g, err := NewChurn(churnTestCfg(flows, 1))
	if err != nil {
		t.Fatalf("NewChurn: %v", err)
	}
	type st struct{ seq, size int }
	live := make(map[flow.Key]*st)
	var lastTS time.Duration
	for i := 0; i < pulls; i++ {
		p, ok := g.Next()
		if !ok {
			t.Fatal("ChurnGen exhausted; must be endless")
		}
		if p.TS < lastTS {
			t.Fatalf("timestamp regressed: %v after %v", p.TS, lastTS)
		}
		lastTS = p.TS
		k := p.Key.Canonical()
		if p.ShardHash != p.Key.ShardHash() {
			t.Fatal("dispatch hash not precomputed correctly")
		}
		f := live[k]
		if p.Flags&pkt.FlagSYN != 0 {
			if p.Seq != 1 {
				t.Fatalf("SYN at seq %d", p.Seq)
			}
			live[k] = &st{seq: 1, size: p.FlowSize}
			continue
		}
		if f == nil {
			// First packets of the initial population may be mid-flow only
			// if generation started them at seq 1; everything opens SYN.
			t.Fatalf("packet for unknown flow %v seq=%d", k, p.Seq)
		}
		f.seq++
		if p.Seq != f.seq {
			t.Fatalf("flow %v: seq %d, want %d", k, p.Seq, f.seq)
		}
		if p.FlowSize != f.size {
			t.Fatalf("flow %v: size changed mid-incarnation", k)
		}
		if f.seq == f.size {
			if p.Flags&pkt.FlagFIN == 0 {
				t.Fatalf("flow %v: last packet missing FIN", k)
			}
			delete(live, k)
		} else if p.Flags&pkt.FlagFIN != 0 {
			t.Fatalf("flow %v: FIN at seq %d of %d", k, f.seq, f.size)
		}
	}
	if g.Births() == 0 {
		t.Fatal("no rebirths over a long compressed pull; churn inert")
	}
	if g.Emitted() != pulls {
		t.Fatalf("Emitted() = %d, want %d", g.Emitted(), pulls)
	}
	if g.Flows() != flows {
		t.Fatalf("Flows() = %d, want %d", g.Flows(), flows)
	}
}

// TestChurnDeterministic pins replayability: same config, same packets.
func TestChurnDeterministic(t *testing.T) {
	a, _ := NewChurn(churnTestCfg(500, 42))
	b, _ := NewChurn(churnTestCfg(500, 42))
	c, _ := NewChurn(churnTestCfg(500, 43))
	diverged := false
	for i := 0; i < 50_000; i++ {
		pa, _ := a.Next()
		pb, _ := b.Next()
		if pa != pb {
			t.Fatalf("same seed diverged at packet %d", i)
		}
		pc, _ := c.Next()
		if pa != pc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestChurnCollisionStorm pins the adversarial pool: with the knob at 1,
// every rebirth draws a key whose symmetric register hash lands in the
// target index group.
func TestChurnCollisionStorm(t *testing.T) {
	const table, groups = 1 << 12, 16
	cfg := churnTestCfg(500, 7)
	cfg.CollisionTable = table
	cfg.CollisionGroups = groups
	cfg.PoolSize = 64
	g, err := NewChurn(cfg)
	if err != nil {
		t.Fatalf("NewChurn: %v", err)
	}
	for _, k := range g.pool {
		if int(k.SymHash()%uint32(table)) >= groups {
			t.Fatalf("pool key %v misses the target group", k)
		}
		if !k.IsCanonical() {
			t.Fatalf("pool key %v not canonical", k)
		}
	}
	// With the knob at 1 every rebirth draws from the pool, so any flow
	// whose key changed since the knob flipped must now hold a pool key.
	g.SetCollisionFrac(1)
	initial := make(map[flow.Key]bool, len(g.flows))
	for i := range g.flows {
		initial[g.flows[i].key] = true
	}
	inPool := make(map[flow.Key]bool, len(g.pool))
	for _, k := range g.pool {
		inPool[k] = true
	}
	for g.Births() < 300 {
		g.Next()
	}
	reborn := 0
	for i := range g.flows {
		k := g.flows[i].key
		if initial[k] {
			continue
		}
		reborn++
		if !inPool[k] {
			t.Fatalf("storm rebirth key not from the pool: %v", k)
		}
	}
	if reborn == 0 {
		t.Fatal("no reborn flows observed despite recorded births")
	}
}

// TestHarnessPhases drives a small engine through all phase types and
// checks the report's accounting: budgets met, digests measured, storms and
// block storms visible in their counters.
func TestHarnessPhases(t *testing.T) {
	const slots = 1 << 13
	e := testEngine(t, slots, 2)
	churn := churnTestCfg(3000, 11)
	churn.LongIATFraction = 0.05
	churn.CollisionTable = slots
	churn.CollisionGroups = 32
	churn.PoolSize = 256
	rep, err := Run(context.Background(), Config{
		Engine:  e,
		Feeders: 2,
		Churn:   churn,
		Phases: []Phase{
			{Name: "steady", Packets: 30_000},
			{Name: "storm", Packets: 30_000, CollisionFrac: 0.8},
			{Name: "blockstorm", Packets: 30_000, BlockEvery: 200},
		},
		BlockRing: 64,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phase reports, want 3", len(rep.Phases))
	}
	var sum int64
	for _, pr := range rep.Phases {
		sum += pr.Packets
		if pr.PktsPerSec <= 0 {
			t.Fatalf("phase %s: no achieved rate", pr.Name)
		}
	}
	if sum != 90_000 {
		t.Fatalf("fed %d packets across phases, want 90000", sum)
	}
	if rep.Total.Packets != sum {
		t.Fatalf("total packets %d != phase sum %d", rep.Total.Packets, sum)
	}
	if rep.Total.Digests == 0 || rep.Total.LatencyCount == 0 {
		t.Fatal("no digests/latency observations; harness is measuring nothing")
	}
	if rep.Total.LatencyCount != rep.Total.Digests {
		t.Fatalf("latency observations %d != digests %d",
			rep.Total.LatencyCount, rep.Total.Digests)
	}
	if rep.Total.P50 <= 0 || rep.Total.P50 > rep.Total.P999 {
		t.Fatalf("implausible latency percentiles: p50=%v p999=%v",
			rep.Total.P50, rep.Total.P999)
	}
	if rep.Total.Births == 0 {
		t.Fatal("no churn during the run")
	}
	if rep.TableCap == 0 || rep.Phases[0].Occupancy <= 0 || rep.Phases[0].Occupancy > 1 {
		t.Fatalf("bad occupancy accounting: cap=%d occ=%v",
			rep.TableCap, rep.Phases[0].Occupancy)
	}
	bs := rep.Phases[2]
	if bs.BlockedFlows == 0 {
		t.Fatal("block storm left no verdicts visible at phase end")
	}
	if bs.Dropped == 0 {
		t.Fatal("block storm dropped nothing; filter never engaged")
	}
}

// TestHarnessRedeployPhase pins the redeploy phase: a mid-schedule hitless
// swap fires under live load, the adopted epoch lands in that phase's report
// and carries into later phases, and nothing is lost — the run's accounting
// stays exact across the handoff.
func TestHarnessRedeployPhase(t *testing.T) {
	e := testEngine(t, 1<<13, 2)
	supplied := 0
	rep, err := Run(context.Background(), Config{
		Engine:  e,
		Feeders: 2,
		Churn:   churnTestCfg(2000, 21),
		Phases: []Phase{
			{Name: "warm", Packets: 20_000},
			{Name: "redeploy", Packets: 20_000, Redeploy: true},
			{Name: "settle", Packets: 20_000},
		},
		Redeploy: func() (*core.Model, *rangemark.Compiled, error) {
			supplied++
			// Same tree recompiled: the swap machinery is what is under
			// test, not the retraining.
			cfg := deployCfg(t, 1<<13)
			c, err := rangemark.Compile(cfg.Model)
			return cfg.Model, c, err
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if supplied != 1 {
		t.Fatalf("Config.Redeploy called %d times, want 1", supplied)
	}
	if got := rep.Phases[1]; got.Redeploys != 1 || got.Epoch == 0 {
		t.Fatalf("redeploy phase report %+v: want Redeploys=1, Epoch>0", got)
	}
	if rep.Phases[0].Redeploys != 0 || rep.Phases[0].Epoch != 0 {
		t.Fatalf("warm phase report leaked a redeploy: %+v", rep.Phases[0])
	}
	if rep.Phases[2].Epoch != rep.Phases[1].Epoch {
		t.Fatalf("settle phase epoch %d, want %d carried forward",
			rep.Phases[2].Epoch, rep.Phases[1].Epoch)
	}
	if rep.Total.Redeploys != 1 || rep.Total.Epoch != rep.Phases[1].Epoch {
		t.Fatalf("total report %+v: redeploy not aggregated", rep.Total)
	}
	if rep.Total.Packets != 60_000 || rep.Total.Digests == 0 {
		t.Fatalf("accounting broke across the swap: %+v", rep.Total)
	}

	// A schedule that asks for a swap with no supplier must be rejected
	// before anything starts.
	_, err = Run(context.Background(), Config{
		Engine: testEngine(t, 1<<12, 1),
		Churn:  churnTestCfg(500, 5),
		Phases: []Phase{{Name: "bad", Packets: 1000, Redeploy: true}},
	})
	if err == nil {
		t.Fatal("Run accepted a redeploy phase without Config.Redeploy")
	}
}

// TestHarnessPacing pins open-loop pacing: a rate-limited run must take at
// least its scheduled duration and report near-target achieved rate.
func TestHarnessPacing(t *testing.T) {
	e := testEngine(t, 1<<12, 1)
	const packets, rate = 10_000, 50_000.0
	rep, err := Run(context.Background(), Config{
		Engine: e,
		Rate:   rate,
		Churn:  churnTestCfg(500, 3),
		Phases: []Phase{{Name: "paced", Packets: packets}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := time.Duration(float64(packets) / rate * float64(time.Second))
	if rep.Phases[0].Elapsed < want*8/10 {
		t.Fatalf("paced run finished in %v, scheduled %v — pacing inert",
			rep.Phases[0].Elapsed, want)
	}
	if got := rep.Phases[0].PktsPerSec; got > rate*1.3 {
		t.Fatalf("achieved %.0f pkts/s against target %.0f", got, rate)
	}
}

// TestHarnessWireSource pins wire-mode ingest: a recorded stream drives the
// harness end to end, counts match the recording, and exhaustion ends the
// phase cleanly.
func TestHarnessWireSource(t *testing.T) {
	flows := trace.Generate(trace.D3, 200, 17)
	pkts := trace.Interleave(flows, 30*time.Microsecond)
	var buf bytes.Buffer
	w, err := pkt.NewRecordWriter(&buf)
	if err != nil {
		t.Fatalf("NewRecordWriter: %v", err)
	}
	for i, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
		if i%9 == 0 { // interleave control noise the decoder must skip
			_ = w.WriteControl(pkt.Control{NextSID: 1}, p.TS)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	src, err := NewWireSource(&buf)
	if err != nil {
		t.Fatalf("NewWireSource: %v", err)
	}
	e := testEngine(t, 1<<13, 2)
	rep, err := Run(context.Background(), Config{
		Engine: e,
		Source: src,
		Phases: []Phase{{Name: "replay", Packets: int64(len(pkts)) + 1000}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if src.Err() != nil {
		t.Fatalf("wire source error: %v", src.Err())
	}
	if rep.Total.Packets != int64(len(pkts)) {
		t.Fatalf("fed %d packets from a %d-packet recording", rep.Total.Packets, len(pkts))
	}
	if src.Skipped() == 0 {
		t.Fatal("control records not skipped — decoder saw none")
	}
	if rep.Total.Digests == 0 {
		t.Fatal("replayed workload produced no digests")
	}

	// The replay is digest-count-identical to feeding the same packets from
	// memory (zero-copy ingest changes transport, not semantics).
	e2 := testEngine(t, 1<<13, 2)
	res, err := e2.Run(&engine.SliceSource{Pkts: pkts})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if int64(res.Stats.Digests) != rep.Total.Digests {
		t.Fatalf("wire replay digests %d != in-memory %d",
			rep.Total.Digests, res.Stats.Digests)
	}
}

// TestHarnessContextCancel pins abort behaviour: cancelling mid-run ends
// the harness with the context's error rather than wedging.
func TestHarnessContextCancel(t *testing.T) {
	e := testEngine(t, 1<<12, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = Run(ctx, Config{
			Engine: e,
			Rate:   1000, // slow enough that cancel lands mid-phase
			Churn:  churnTestCfg(200, 9),
			Phases: []Phase{{Name: "slow", Packets: 1_000_000}},
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("harness did not stop after context cancel")
	}
	if runErr == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
