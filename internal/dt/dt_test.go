package dt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// xorData builds a 2-feature dataset requiring both features: class =
// (x0>0.5) XOR (x1>0.5).
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b, rng.Float64()} // third feature is noise
		c := 0
		if (a > 0.5) != (b > 0.5) {
			c = 1
		}
		y[i] = c
	}
	return X, y
}

func accuracy(t *Tree, X [][]float64, y []int) float64 {
	ok := 0
	for i, x := range X {
		if t.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

func TestLearnsXOR(t *testing.T) {
	X, y := xorData(400, 1)
	tr := Train(X, y, 2, Config{MaxDepth: 6, MinSamplesLeaf: 2})
	if acc := accuracy(tr, X, y); acc < 0.95 {
		t.Fatalf("XOR training accuracy %.3f < 0.95", acc)
	}
	if d := tr.Depth(); d < 2 || d > 6 {
		t.Fatalf("depth %d outside [2,6]", d)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	X, y := xorData(400, 2)
	tr := Train(X, y, 2, Config{MaxDepth: 1})
	if tr.Depth() > 1 {
		t.Fatalf("depth %d > MaxDepth 1", tr.Depth())
	}
}

func TestFeatureBudgetRespected(t *testing.T) {
	// 6 informative features; budget of 2 must cap the distinct set.
	rng := rand.New(rand.NewSource(3))
	n := 600
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		c := 0
		for j := 0; j < 6; j++ {
			if row[j] > 0.5 {
				c ^= 1
			}
		}
		y[i] = c
	}
	tr := Train(X, y, 2, Config{MaxDepth: 8, MaxDistinctFeatures: 2})
	if got := len(tr.DistinctFeatures()); got > 2 {
		t.Fatalf("tree used %d distinct features, budget 2", got)
	}
}

func TestCandidateRestriction(t *testing.T) {
	X, y := xorData(300, 4)
	tr := Train(X, y, 2, Config{MaxDepth: 6, Features: []int{2}})
	for _, f := range tr.DistinctFeatures() {
		if f != 2 {
			t.Fatalf("tree split on feature %d outside candidate set", f)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	X, y := xorData(100, 5)
	tr := Train(X, y, 2, Config{MaxDepth: 10, MinSamplesLeaf: 10})
	for _, l := range tr.Leaves() {
		n := 0
		for _, c := range l.Counts {
			n += c
		}
		if n < 10 {
			t.Fatalf("leaf with %d samples < MinSamplesLeaf 10", n)
		}
	}
}

func TestPureNodeStops(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{0, 0, 0, 0}
	// All one class: the root must be a leaf even with depth available.
	// Need numClasses >= 2 even if only one appears.
	tr := Train(X, y, 2, Config{MaxDepth: 5})
	if !tr.Root.Leaf {
		t.Fatal("pure training set must produce a leaf root")
	}
	if tr.Root.Class != 0 {
		t.Fatalf("class = %d, want 0", tr.Root.Class)
	}
}

func TestLeafIDsDense(t *testing.T) {
	X, y := xorData(300, 6)
	tr := Train(X, y, 2, Config{MaxDepth: 4})
	ls := tr.Leaves()
	if len(ls) != tr.NumLeaves() {
		t.Fatal("Leaves()/NumLeaves mismatch")
	}
	for i, l := range ls {
		if l.LeafID != i {
			t.Fatalf("leaf %d has LeafID %d", i, l.LeafID)
		}
	}
}

func TestLeafRouting(t *testing.T) {
	X, y := xorData(300, 7)
	tr := Train(X, y, 2, Config{MaxDepth: 4})
	for _, x := range X {
		l := tr.Leaf(x)
		if !l.Leaf {
			t.Fatal("Leaf returned internal node")
		}
		if tr.Predict(x) != l.Class {
			t.Fatal("Predict disagrees with Leaf")
		}
	}
}

func TestThresholdsSortedDistinct(t *testing.T) {
	X, y := xorData(500, 8)
	tr := Train(X, y, 2, Config{MaxDepth: 6})
	for f, ts := range tr.Thresholds() {
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("feature %d thresholds not sorted distinct: %v", f, ts)
			}
		}
	}
}

func TestImportancesSumToOne(t *testing.T) {
	X, y := xorData(500, 9)
	tr := Train(X, y, 2, Config{MaxDepth: 6})
	imp := tr.Importances(3)
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	// The noise feature (2) must matter less than the signal features.
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Fatalf("noise feature ranked above signal: %v", imp)
	}
}

func TestTopKFeatures(t *testing.T) {
	X, y := xorData(500, 10)
	top := TopKFeatures(X, y, 2, 2, 6, nil)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d features, want 2", len(top))
	}
	for _, f := range top {
		if f == 2 {
			t.Fatalf("noise feature in top-2: %v", top)
		}
	}
}

func TestMinImpurityDecrease(t *testing.T) {
	X, y := xorData(300, 11)
	full := Train(X, y, 2, Config{MaxDepth: 8})
	pruned := Train(X, y, 2, Config{MaxDepth: 8, MinImpurityDecrease: 0.2})
	if pruned.NumNodes() >= full.NumNodes() {
		t.Fatalf("MinImpurityDecrease did not shrink tree: %d vs %d",
			pruned.NumNodes(), full.NumNodes())
	}
}

func TestValidate(t *testing.T) {
	X, y := xorData(100, 12)
	tr := Train(X, y, 2, Config{MaxDepth: 3})
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestStringNonEmpty(t *testing.T) {
	X, y := xorData(50, 13)
	tr := Train(X, y, 2, Config{MaxDepth: 2})
	if tr.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestTrainPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Train(nil, nil, 2, Config{MaxDepth: 1}) }},
		{"mismatch", func() { Train([][]float64{{1}}, []int{0, 1}, 2, Config{MaxDepth: 1}) }},
		{"classes", func() { Train([][]float64{{1}}, []int{0}, 1, Config{MaxDepth: 1}) }},
		{"depth", func() { Train([][]float64{{1}}, []int{0}, 2, Config{MaxDepth: 0}) }},
		{"badfeature", func() {
			Train([][]float64{{1}}, []int{0}, 2, Config{MaxDepth: 1, Features: []int{5}})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestPredictionsPartitionSpaceProperty(t *testing.T) {
	// Every input routes to exactly one leaf and predicted class is that
	// leaf's majority class.
	X, y := xorData(300, 14)
	tr := Train(X, y, 2, Config{MaxDepth: 5})
	f := func(a, b, c float64) bool {
		x := []float64{abs(a), abs(b), abs(c)}
		l := tr.Leaf(x)
		return l.Leaf && l.Class == argmax(l.Counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDeterministicTraining(t *testing.T) {
	X, y := xorData(300, 15)
	a := Train(X, y, 2, Config{MaxDepth: 5})
	b := Train(X, y, 2, Config{MaxDepth: 5})
	if a.String() != b.String() {
		t.Fatal("training is not deterministic")
	}
}

func BenchmarkTrain(b *testing.B) {
	X, y := xorData(1000, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Train(X, y, 2, Config{MaxDepth: 6})
	}
}

func BenchmarkPredict(b *testing.B) {
	X, y := xorData(1000, 17)
	tr := Train(X, y, 2, Config{MaxDepth: 6})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Predict(X[i%len(X)])
	}
}
