// Package dt implements the CART decision-tree learner SpliDT trains its
// subtrees with (the reproduction's stand-in for scikit-learn's
// DecisionTreeClassifier).
//
// Two capabilities beyond a textbook CART matter here:
//
//   - A distinct-feature budget (Config.MaxDistinctFeatures): the tree may
//     consult at most k different features in total, implementing the "≤ k
//     feature slots per subtree" condition of §2.2 natively during growth
//     rather than by post-hoc top-k filtering.
//   - Candidate restriction (Config.Features): baselines such as NetBeacon
//     and per-packet models train on fixed feature subsets.
//
// Trees split on axis-aligned thresholds (x[f] <= t goes left) chosen to
// maximise Gini impurity decrease.
package dt

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds tree depth (root is depth 0); values < 1 panic.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in each child of a split
	// (default 1).
	MinSamplesLeaf int
	// MaxDistinctFeatures bounds the number of different features the whole
	// tree may use; 0 means unlimited. This is SpliDT's per-subtree k.
	MaxDistinctFeatures int
	// Features, when non-nil, restricts candidate split features.
	Features []int
	// MinImpurityDecrease prunes splits with weighted Gini gain below this.
	MinImpurityDecrease float64
}

// Node is one tree node. Internal nodes route x[Feature] <= Threshold to
// Left; leaves carry the predicted Class and the training class histogram.
type Node struct {
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	Leaf   bool
	Class  int
	Counts []int // training class histogram at this node
	LeafID int   // dense leaf index, assigned after growth
	// Lifetime is the leaf's per-class idle flow lifetime (leaves only;
	// 0 = none assigned). The partitioned trainer derives it from the IAT
	// statistics of the training samples routed to the leaf, and the
	// compiler threads it into the model table so wheel-mode expiry can
	// give each decision region its own deadline.
	Lifetime time.Duration
}

// Tree is a trained classifier.
type Tree struct {
	Root       *Node
	NumClasses int
	leaves     []*Node
	features   []int // distinct features used, sorted
}

// Train grows a tree on rows X (all rows must share a width) with labels y
// in [0, numClasses).
func Train(X [][]float64, y []int, numClasses int, cfg Config) *Tree {
	if len(X) == 0 {
		panic("dt: empty training set")
	}
	if len(X) != len(y) {
		panic("dt: len(X) != len(y)")
	}
	if numClasses < 2 {
		panic("dt: need at least 2 classes")
	}
	if cfg.MaxDepth < 1 {
		panic("dt: MaxDepth must be >= 1")
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	width := len(X[0])
	candidates := cfg.Features
	if candidates == nil {
		candidates = make([]int, width)
		for i := range candidates {
			candidates[i] = i
		}
	}
	for _, f := range candidates {
		if f < 0 || f >= width {
			panic(fmt.Sprintf("dt: candidate feature %d out of row width %d", f, width))
		}
	}

	g := &grower{
		X: X, y: y, classes: numClasses, cfg: cfg,
		candidates: candidates,
		used:       make(map[int]bool),
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	root := g.grow(idx, 0)
	t := &Tree{Root: root, NumClasses: numClasses}
	t.index()
	return t
}

type grower struct {
	X          [][]float64
	y          []int
	classes    int
	cfg        Config
	candidates []int
	used       map[int]bool
}

func (g *grower) hist(idx []int) []int {
	h := make([]int, g.classes)
	for _, i := range idx {
		h[g.y[i]]++
	}
	return h
}

func gini(h []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range h {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

func argmax(h []int) int {
	best, bi := -1, 0
	for i, c := range h {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

func pure(h []int) bool {
	nz := 0
	for _, c := range h {
		if c > 0 {
			nz++
		}
	}
	return nz <= 1
}

// splitCandidates returns the features this node may split on, honouring the
// distinct-feature budget: once the tree has consumed its k slots, only
// already-used features remain eligible.
func (g *grower) splitCandidates() []int {
	k := g.cfg.MaxDistinctFeatures
	if k == 0 || len(g.used) < k {
		return g.candidates
	}
	out := make([]int, 0, len(g.used))
	for _, f := range g.candidates {
		if g.used[f] {
			out = append(out, f)
		}
	}
	return out
}

type split struct {
	feature   int
	threshold float64
	gain      float64
	ok        bool
}

// bestSplit scans candidate features for the maximum Gini-gain threshold
// using sorted prefix histograms.
func (g *grower) bestSplit(idx []int, feats []int) split {
	n := len(idx)
	parentHist := g.hist(idx)
	parentGini := gini(parentHist, n)
	best := split{}

	vals := make([]float64, n)
	order := make([]int, n)
	left := make([]int, g.classes)

	for _, f := range feats {
		for j, i := range idx {
			vals[j] = g.X[i][f]
			order[j] = i
		}
		sort.Sort(&byVal{vals: vals, order: order})

		for c := range left {
			left[c] = 0
		}
		nl := 0
		for j := 0; j < n-1; j++ {
			left[g.y[order[j]]]++
			nl++
			if vals[j] == vals[j+1] {
				continue // no threshold between equal values
			}
			nr := n - nl
			if nl < g.cfg.MinSamplesLeaf || nr < g.cfg.MinSamplesLeaf {
				continue
			}
			right := make([]int, g.classes)
			for c := range right {
				right[c] = parentHist[c] - left[c]
			}
			gl := gini(left, nl)
			gr := gini(right, nr)
			gain := parentGini - (float64(nl)*gl+float64(nr)*gr)/float64(n)
			if gain > best.gain+1e-12 {
				best = split{
					feature:   f,
					threshold: (vals[j] + vals[j+1]) / 2,
					gain:      gain,
					ok:        true,
				}
			}
		}
	}
	if best.ok && best.gain < g.cfg.MinImpurityDecrease {
		best.ok = false
	}
	return best
}

type byVal struct {
	vals  []float64
	order []int
}

func (b *byVal) Len() int           { return len(b.vals) }
func (b *byVal) Less(i, j int) bool { return b.vals[i] < b.vals[j] }
func (b *byVal) Swap(i, j int) {
	b.vals[i], b.vals[j] = b.vals[j], b.vals[i]
	b.order[i], b.order[j] = b.order[j], b.order[i]
}

func (g *grower) grow(idx []int, depth int) *Node {
	h := g.hist(idx)
	if depth >= g.cfg.MaxDepth || len(idx) < 2*g.cfg.MinSamplesLeaf || pure(h) {
		return &Node{Leaf: true, Class: argmax(h), Counts: h}
	}
	sp := g.bestSplit(idx, g.splitCandidates())
	if !sp.ok {
		return &Node{Leaf: true, Class: argmax(h), Counts: h}
	}
	g.used[sp.feature] = true

	var li, ri []int
	for _, i := range idx {
		if g.X[i][sp.feature] <= sp.threshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &Node{
		Feature:   sp.feature,
		Threshold: sp.threshold,
		Counts:    h,
		Left:      g.grow(li, depth+1),
		Right:     g.grow(ri, depth+1),
	}
}

// index assigns dense LeafIDs in left-to-right order and collects metadata.
func (t *Tree) index() {
	t.leaves = t.leaves[:0]
	used := map[int]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			n.LeafID = len(t.leaves)
			t.leaves = append(t.leaves, n)
			return
		}
		used[n.Feature] = true
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	t.features = t.features[:0]
	for f := range used {
		t.features = append(t.features, f)
	}
	sort.Ints(t.features)
}

// Predict returns the predicted class for a row.
func (t *Tree) Predict(x []float64) int { return t.Leaf(x).Class }

// Leaf returns the leaf node the row routes to.
func (t *Tree) Leaf(x []float64) *Node {
	n := t.Root
	for !n.Leaf {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Leaves returns the leaves in LeafID order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// DistinctFeatures returns the sorted set of features the tree tests.
func (t *Tree) DistinctFeatures() []int { return t.features }

// Depth returns the maximum root-to-leaf edge count.
func (t *Tree) Depth() int {
	var d func(n *Node) int
	d = func(n *Node) int {
		if n.Leaf {
			return 0
		}
		l, r := d(n.Left), d(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(t.Root)
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int {
	var c func(n *Node) int
	c = func(n *Node) int {
		if n.Leaf {
			return 1
		}
		return 1 + c(n.Left) + c(n.Right)
	}
	return c(t.Root)
}

// Thresholds returns, per feature, the sorted distinct thresholds the tree
// tests — the inputs to range-marking rule generation.
func (t *Tree) Thresholds() map[int][]float64 {
	m := map[int]map[float64]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			return
		}
		if m[n.Feature] == nil {
			m[n.Feature] = map[float64]bool{}
		}
		m[n.Feature][n.Threshold] = true
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	out := make(map[int][]float64, len(m))
	for f, set := range m {
		ts := make([]float64, 0, len(set))
		for v := range set {
			ts = append(ts, v)
		}
		sort.Float64s(ts)
		out[f] = ts
	}
	return out
}

// String renders the tree for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.Leaf {
			fmt.Fprintf(&b, "%sleaf#%d -> class %d %v\n", indent, n.LeafID, n.Class, n.Counts)
			return
		}
		fmt.Fprintf(&b, "%sf%d <= %g\n", indent, n.Feature, n.Threshold)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(t.Root, 0)
	return b.String()
}

// Importances returns per-feature total Gini decrease, normalised to sum to
// 1 (zero vector if the tree is a single leaf). Used to derive the top-k
// feature sets of the NetBeacon/Leo baselines.
func (t *Tree) Importances(width int) []float64 {
	imp := make([]float64, width)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			return
		}
		nAll := 0
		for _, c := range n.Counts {
			nAll += c
		}
		nl := 0
		for _, c := range n.Left.Counts {
			nl += c
		}
		nr := nAll - nl
		g := gini(n.Counts, nAll)
		gl := gini(n.Left.Counts, nl)
		gr := gini(n.Right.Counts, nr)
		gain := g - (float64(nl)*gl+float64(nr)*gr)/float64(nAll)
		imp[n.Feature] += gain * float64(nAll)
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}

// TopKFeatures trains an unconstrained probe tree and returns the k features
// with the highest importance (fewer if the probe uses fewer) — the global
// top-k selection of NetBeacon and Leo.
func TopKFeatures(X [][]float64, y []int, numClasses, k, maxDepth int, candidates []int) []int {
	probe := Train(X, y, numClasses, Config{
		MaxDepth: maxDepth, MinSamplesLeaf: 2, Features: candidates,
	})
	imp := probe.Importances(len(X[0]))
	type fi struct {
		f   int
		imp float64
	}
	var fis []fi
	for _, f := range probe.DistinctFeatures() {
		fis = append(fis, fi{f, imp[f]})
	}
	sort.Slice(fis, func(i, j int) bool {
		if fis[i].imp != fis[j].imp {
			return fis[i].imp > fis[j].imp
		}
		return fis[i].f < fis[j].f
	})
	if len(fis) > k {
		fis = fis[:k]
	}
	out := make([]int, len(fis))
	for i, x := range fis {
		out[i] = x.f
	}
	sort.Ints(out)
	return out
}

// Prune no-op guard: ensure thresholds are finite (quantised training data
// can produce +Inf midpoints if values overflow; reject early).
func (t *Tree) Validate() error {
	var err error
	var walk func(n *Node)
	walk = func(n *Node) {
		if err != nil || n.Leaf {
			return
		}
		if math.IsInf(n.Threshold, 0) || math.IsNaN(n.Threshold) {
			err = fmt.Errorf("dt: non-finite threshold on feature %d", n.Feature)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return err
}
