// Package baselines implements the comparison systems of the paper's
// evaluation: NetBeacon and Leo (stateful top-k decision trees with one-shot
// feature collection) and a per-packet, stateless-feature system in the
// style of IIsy/Mousika.
//
// Both stateful baselines follow the paper's evaluation protocol (§5.1):
// given a concurrent-flow target and a hardware profile, each system's own
// design search enumerates its feasible (k, depth) configurations — all
// pipeline stages available, one-shot register allocation — trains the best
// tree, and reports its F1 plus resource usage. Their defining constraint
// is shared: every stateful feature is chosen up front (global top-k) and
// registers are held for the whole flow, so k and flow count trade off
// directly.
package baselines

import (
	"fmt"
	"math/bits"

	"splidt/internal/core"
	"splidt/internal/dt"
	"splidt/internal/features"
	"splidt/internal/metrics"
	"splidt/internal/rangemark"
	"splidt/internal/resources"
	"splidt/internal/trace"
)

// Result is one trained baseline deployment.
type Result struct {
	System string
	F1     float64
	K      int // stateful features used (top-k)
	Depth  int
	// TCAMEntries is the installed rule count (Leo rounds to its table
	// allocation granularity).
	TCAMEntries int
	// RegisterBits is the per-flow feature register footprint (k × width).
	RegisterBits int
	// Tree is the trained classifier (nil for the per-packet system, which
	// uses PacketTree).
	Tree *dt.Tree
	// Features is the global top-k feature set.
	Features []int
}

// Options configures a baseline's design search.
type Options struct {
	Classes    int
	FlowTarget int
	Profile    resources.Profile
	// MaxK and MaxDepth bound the enumeration (defaults 7 and 16, the
	// ranges prior work reports).
	MaxK     int
	MaxDepth int
	// ValueBits is the feature register width (32 unless sweeping
	// precision, Figure 12).
	ValueBits int
	// EntryBudget optionally caps TCAM entries below the profile's bit
	// budget (Figure 9's sweep); 0 means unlimited.
	EntryBudget int
}

func (o *Options) defaults() {
	if o.MaxK == 0 {
		o.MaxK = 7
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 16
	}
	if o.ValueBits == 0 {
		o.ValueBits = 32
	}
}

// statefulRows extracts whole-flow rows.
func statefulRows(samples []trace.Sample) ([][]float64, []int) {
	X := make([][]float64, 0, len(samples))
	y := make([]int, 0, len(samples))
	for _, s := range samples {
		v := s.WholeFlow()
		row := make([]float64, len(v))
		copy(row, v[:])
		X = append(X, row)
		y = append(y, s.Label)
	}
	return X, y
}

// quantizeRows applies per-feature register scaling (computed from the
// training rows) to both sets when the deployment narrows registers.
func quantizeRows(train, test [][]float64, valueBits int) (qtrain, qtest [][]float64, shifts []uint) {
	if valueBits <= 0 || valueBits >= 32 {
		return train, test, nil
	}
	shifts = features.ComputeShifts(train, valueBits)
	q := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = features.QuantizeRow(r, shifts)
		}
		return out
	}
	return q(train), q(test), shifts
}

// compileEntries wraps a single tree as a one-partition model and compiles
// it with range marking, returning its TCAM entry and bit counts. Both
// baselines use NetBeacon's range-marking encoding (Leo improves the
// stage mapping, not the encoding).
func compileEntries(tree *dt.Tree, k, classes, valueBits int, shifts []uint) (entries int, tcamBits int64, err error) {
	q := 0
	if valueBits > 0 && valueBits < 32 {
		q = valueBits
	}
	m := &core.Model{
		Cfg: core.Config{
			Partitions:         []int{maxInt(tree.Depth(), 1)},
			FeaturesPerSubtree: maxInt(k, 1),
			NumClasses:         classes,
			QuantizeBits:       q,
		},
		Subtrees: []*core.Subtree{{SID: 1, Partition: 0, Tree: tree, Next: map[int]int{}}},
		Shifts:   shifts,
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		return 0, 0, err
	}
	return c.Entries(), int64(c.Bits()), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// baselineStateBits is the one-shot per-flow state of a top-k system: k
// feature registers plus the packet counter and dependency-chain
// intermediates (no SID register — there are no partitions). The counter is
// a feature register and scales with the value width.
func baselineStateBits(k, valueBits, depChain int) int {
	chain := 0
	if depChain > 1 {
		chain = (depChain - 1) * valueBits
	}
	return k*valueBits + valueBits + chain
}

func depChainOf(feats []int) int {
	d := 1
	for _, f := range feats {
		if f < features.NumTotal {
			if c := features.ID(f).DependencyDepth(); c > d {
				d = c
			}
		}
	}
	return d
}

// trainTopK runs one baseline's design search: enumerate feasible (k,
// depth), train on the global top-k features, keep the best test F1.
// logicStages maps a depth to the system's match-action stage demand.
func trainTopK(name string, train, test []trace.Sample, opts Options,
	logicStages func(depth int) int, allocEntries func(raw int) int) (Result, error) {

	opts.defaults()
	if len(train) == 0 || len(test) == 0 {
		return Result{}, fmt.Errorf("baselines: empty train or test set")
	}
	X, y := statefulRows(train)
	Xt, yt := statefulRows(test)
	X, Xt, shifts := quantizeRows(X, Xt, opts.ValueBits)

	best := Result{System: name, F1: -1}
	for k := 1; k <= opts.MaxK; k++ {
		top := dt.TopKFeatures(X, y, opts.Classes, k, minInt(opts.MaxDepth, 12), nil)
		if len(top) == 0 {
			continue
		}
		chain := depChainOf(top)
		state := baselineStateBits(len(top), opts.ValueBits, chain)
		for depth := 2; depth <= opts.MaxDepth; depth++ {
			ls := logicStages(depth)
			u := resources.Usage{
				Flows:               opts.FlowTarget,
				FeatureRegisterBits: len(top) * opts.ValueBits,
				StateBitsPerFlow:    state,
				DepChainDepth:       chain,
				LogicStages:         ls,
			}
			// Stage feasibility first (cheap); TCAM after training.
			if opts.Profile.OverheadStages+opts.Profile.StateStages(u)+ls > opts.Profile.Stages {
				continue
			}
			tree := dt.Train(X, y, opts.Classes, dt.Config{
				MaxDepth: depth, MinSamplesLeaf: 2, Features: top,
			})
			rawEntries, tcamBits, err := compileEntries(tree, len(top), opts.Classes, opts.ValueBits, shifts)
			if err != nil {
				return Result{}, err
			}
			entries := allocEntries(rawEntries)
			if tcamBits > opts.Profile.TCAMBits {
				continue
			}
			if opts.EntryBudget > 0 && entries > opts.EntryBudget {
				continue
			}
			pred := make([]int, len(Xt))
			for i, row := range Xt {
				pred[i] = tree.Predict(row)
			}
			f1 := metrics.MacroF1Of(yt, pred, opts.Classes)
			if f1 > best.F1 {
				best = Result{
					System: name, F1: f1, K: len(top), Depth: tree.Depth(),
					TCAMEntries: entries, RegisterBits: len(top) * opts.ValueBits,
					Tree: tree, Features: top,
				}
			}
		}
	}
	if best.F1 < 0 {
		return Result{}, fmt.Errorf("baselines: no feasible %s configuration at %d flows",
			name, opts.FlowTarget)
	}
	return best, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TrainNetBeacon runs NetBeacon's design point: range-marking encoding with
// a fixed 3-stage match-action program (phase management, key generation,
// model table).
func TrainNetBeacon(train, test []trace.Sample, opts Options) (Result, error) {
	return trainTopK("NB", train, test, opts,
		func(int) int { return 3 },
		func(raw int) int { return raw },
	)
}

// leoAllocGranularity rounds entry counts up to Leo's power-of-two table
// allocation (its Table 3 footprints are 2048/8192/16384).
func leoAlloc(raw int) int {
	if raw <= 2048 {
		return 2048
	}
	return 1 << uint(bits.Len(uint(raw-1)))
}

// TrainLeo runs Leo's design point: deeper trees mapped across stages
// (one extra stage per three tree levels), power-of-two table allocation.
func TrainLeo(train, test []trace.Sample, opts Options) (Result, error) {
	return trainTopK("Leo", train, test, opts,
		func(depth int) int { return 1 + (depth+2)/3 },
		leoAlloc,
	)
}
