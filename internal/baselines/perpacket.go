package baselines

import (
	"fmt"

	"splidt/internal/dt"
	"splidt/internal/features"
	"splidt/internal/metrics"
	"splidt/internal/pkt"
	"splidt/internal/trace"
)

// PerPacketResult is a trained stateless (IIsy/Mousika-style) system: a tree
// over per-packet header fields, with flow labels decided by majority vote
// over packet predictions.
type PerPacketResult struct {
	F1    float64
	Depth int
	Tree  *dt.Tree
}

// packetRow renders one packet as a stateless feature row (full vector
// width, with stateful components zeroed — candidate restriction keeps the
// tree on the stateless fields).
func packetRow(p pkt.Packet) []float64 {
	row := make([]float64, features.NumTotal)
	row[features.SrcPortField] = float64(p.Key.SrcPort)
	row[features.DstPortField] = float64(p.Key.DstPort)
	row[features.ProtoField] = float64(p.Key.Proto)
	row[features.PktLenField] = float64(p.Len)
	row[features.FlagsField] = float64(p.Flags)
	return row
}

// statelessCandidates lists the per-packet fields the tree may consult.
func statelessCandidates() []int {
	ids := features.AllStateless()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// TrainPerPacket trains the stateless baseline on packets subsampled from
// the training flows (maxPerFlow packets each) and evaluates packet-level
// macro-F1 on the test flows — per-packet systems classify every packet
// independently, with no flow state to aggregate votes over.
func TrainPerPacket(trainFlows, testFlows []trace.LabeledFlow, classes, depth, maxPerFlow int) (PerPacketResult, error) {
	if len(trainFlows) == 0 || len(testFlows) == 0 {
		return PerPacketResult{}, fmt.Errorf("baselines: empty flow sets")
	}
	if depth < 1 {
		depth = 8
	}
	if maxPerFlow < 1 {
		maxPerFlow = 16
	}
	var X [][]float64
	var y []int
	for _, f := range trainFlows {
		step := 1
		if len(f.Packets) > maxPerFlow {
			step = len(f.Packets) / maxPerFlow
		}
		for i := 0; i < len(f.Packets); i += step {
			X = append(X, packetRow(f.Packets[i]))
			y = append(y, f.Label)
		}
	}
	tree := dt.Train(X, y, classes, dt.Config{
		MaxDepth: depth, MinSamplesLeaf: 2, Features: statelessCandidates(),
	})

	var actual, pred []int
	for _, f := range testFlows {
		step := 1
		if len(f.Packets) > maxPerFlow {
			step = len(f.Packets) / maxPerFlow
		}
		for i := 0; i < len(f.Packets); i += step {
			actual = append(actual, f.Label)
			pred = append(pred, tree.Predict(packetRow(f.Packets[i])))
		}
	}
	return PerPacketResult{
		F1:    metrics.MacroF1Of(actual, pred, classes),
		Depth: tree.Depth(),
		Tree:  tree,
	}, nil
}
