package baselines

import (
	"fmt"

	"splidt/internal/dt"
	"splidt/internal/features"
	"splidt/internal/metrics"
	"splidt/internal/trace"
)

// Phase-faithful NetBeacon: the system described in the paper's §5.1 trains
// one model per exponential phase (2, 4, 8, ... packets), retains flow
// statistics across phases (the same global top-k features throughout), and
// classifies a flow with the model of its final phase. This variant trades
// more TCAM (one tree per phase) for earlier usable predictions; the
// simpler whole-flow TrainNetBeacon is what the head-to-head experiments
// use, since it upper-bounds this variant's final accuracy.

// PhasedResult is a trained phase-based NetBeacon deployment.
type PhasedResult struct {
	F1     float64
	K      int
	Phases int
	// TCAMEntries sums entries across all phase trees.
	TCAMEntries int
	// RegisterBits is the per-flow footprint (phases share the top-k
	// registers; statistics are cumulative).
	RegisterBits int
	Trees        []*dt.Tree // indexed by phase
	Features     []int
}

// phaseRows renders per-phase rows: X[phase] holds the cumulative feature
// vectors of flows whose trace reaches that phase.
func phaseRows(flows []trace.LabeledFlow, maxPhases int) ([][][]float64, [][]int) {
	X := make([][][]float64, maxPhases)
	y := make([][]int, maxPhases)
	for _, f := range flows {
		vs := features.PhaseVectors(f.Packets, maxPhases)
		for p, v := range vs {
			row := make([]float64, len(v))
			copy(row, v[:])
			X[p] = append(X[p], row)
			y[p] = append(y[p], f.Label)
		}
	}
	return X, y
}

// TrainNetBeaconPhased trains the phase-based variant with a fixed k and
// depth (its design search mirrors TrainNetBeacon's; this entry point
// exposes the mechanism itself).
func TrainNetBeaconPhased(trainFlows, testFlows []trace.LabeledFlow, classes, k, depth, maxPhases int) (PhasedResult, error) {
	if len(trainFlows) == 0 || len(testFlows) == 0 {
		return PhasedResult{}, fmt.Errorf("baselines: empty flow sets")
	}
	if k < 1 || depth < 1 || maxPhases < 1 {
		return PhasedResult{}, fmt.Errorf("baselines: bad phased parameters k=%d depth=%d phases=%d", k, depth, maxPhases)
	}

	// Global top-k from whole-flow statistics (shared by every phase: the
	// registers are allocated once and retained).
	var wholeX [][]float64
	var wholeY []int
	for _, f := range trainFlows {
		v := features.FlowVector(f.Packets)
		row := make([]float64, len(v))
		copy(row, v[:])
		wholeX = append(wholeX, row)
		wholeY = append(wholeY, f.Label)
	}
	top := dt.TopKFeatures(wholeX, wholeY, classes, k, minInt(depth, 12), nil)
	if len(top) == 0 {
		return PhasedResult{}, fmt.Errorf("baselines: no informative features")
	}

	X, y := phaseRows(trainFlows, maxPhases)
	res := PhasedResult{K: len(top), Features: top, RegisterBits: len(top) * 32}
	for p := 0; p < maxPhases; p++ {
		if len(X[p]) < 4 {
			break
		}
		tree := dt.Train(X[p], y[p], classes, dt.Config{
			MaxDepth: depth, MinSamplesLeaf: 2, Features: top,
		})
		entries, _, err := compileEntries(tree, len(top), classes, 32, nil)
		if err != nil {
			return PhasedResult{}, err
		}
		res.Trees = append(res.Trees, tree)
		res.TCAMEntries += entries
	}
	res.Phases = len(res.Trees)
	if res.Phases == 0 {
		return PhasedResult{}, fmt.Errorf("baselines: no phase had enough samples")
	}

	// Evaluate: each test flow is classified by the tree of its final
	// reachable phase on its cumulative statistics.
	var actual, pred []int
	for _, f := range testFlows {
		vs := features.PhaseVectors(f.Packets, res.Phases)
		last := len(vs) - 1
		if last >= res.Phases {
			last = res.Phases - 1
		}
		actual = append(actual, f.Label)
		pred = append(pred, res.Trees[last].Predict(vs[last][:]))
	}
	res.F1 = metrics.MacroF1Of(actual, pred, classes)
	return res, nil
}

// ClassifyAtPhase classifies a flow's prefix with the given phase's model —
// the early-inference capability phases buy.
func (r PhasedResult) ClassifyAtPhase(f trace.LabeledFlow, phase int) (int, error) {
	if phase < 0 || phase >= r.Phases {
		return 0, fmt.Errorf("baselines: phase %d out of [0,%d)", phase, r.Phases)
	}
	vs := features.PhaseVectors(f.Packets, phase+1)
	if len(vs) <= phase {
		return 0, fmt.Errorf("baselines: flow too short for phase %d", phase)
	}
	return r.Trees[phase].Predict(vs[phase][:]), nil
}
