package baselines

import (
	"testing"

	"splidt/internal/resources"
	"splidt/internal/trace"
)

func dataset(t *testing.T, id trace.DatasetID, n int) ([]trace.Sample, []trace.Sample, []trace.LabeledFlow, []trace.LabeledFlow) {
	t.Helper()
	flows := trace.Generate(id, n, 55)
	samples := trace.BuildSamples(flows, 1)
	train, test := trace.Split(samples, 0.7)
	cut := int(float64(n) * 0.7)
	return train, test, flows[:cut], flows[cut:]
}

func TestNetBeaconTrains(t *testing.T) {
	train, test, _, _ := dataset(t, trace.D2, 400)
	r, err := TrainNetBeacon(train, test, Options{
		Classes: 4, FlowTarget: 100_000, Profile: resources.Tofino1(),
	})
	if err != nil {
		t.Fatalf("TrainNetBeacon: %v", err)
	}
	if r.F1 < 0.4 {
		t.Fatalf("NB F1 %.3f too low on separable data", r.F1)
	}
	if r.K < 1 || r.K > 7 {
		t.Fatalf("NB k = %d out of [1,7]", r.K)
	}
	if r.RegisterBits != r.K*32 {
		t.Fatalf("register bits %d != k×32", r.RegisterBits)
	}
	if r.TCAMEntries <= 0 || r.Tree == nil {
		t.Fatal("missing artifacts")
	}
}

func TestLeoTrains(t *testing.T) {
	train, test, _, _ := dataset(t, trace.D2, 400)
	r, err := TrainLeo(train, test, Options{
		Classes: 4, FlowTarget: 100_000, Profile: resources.Tofino1(),
	})
	if err != nil {
		t.Fatalf("TrainLeo: %v", err)
	}
	if r.F1 < 0.4 {
		t.Fatalf("Leo F1 %.3f too low", r.F1)
	}
	// Power-of-two allocation.
	e := r.TCAMEntries
	if e&(e-1) != 0 {
		t.Fatalf("Leo entries %d not a power of two", e)
	}
}

func TestFlowScalingShrinksK(t *testing.T) {
	// The core limitation SpliDT lifts: at 1M flows, top-k systems must
	// shed stateful features.
	train, test, _, _ := dataset(t, trace.D3, 650)
	at := func(flows int) int {
		r, err := TrainNetBeacon(train, test, Options{
			Classes: 13, FlowTarget: flows, Profile: resources.Tofino1(),
		})
		if err != nil {
			t.Fatalf("flows=%d: %v", flows, err)
		}
		return r.K
	}
	k100 := at(100_000)
	k1m := at(1_000_000)
	if k1m > k100 {
		t.Fatalf("k grew with flows: %d → %d", k100, k1m)
	}
	if k1m > 2 {
		t.Fatalf("at 1M flows k = %d, expected ≤ 2 (Table 3 shape)", k1m)
	}
}

func TestF1DegradesWithFlows(t *testing.T) {
	train, test, _, _ := dataset(t, trace.D3, 650)
	f1At := func(flows int) float64 {
		r, err := TrainNetBeacon(train, test, Options{
			Classes: 13, FlowTarget: flows, Profile: resources.Tofino1(),
		})
		if err != nil {
			t.Fatalf("flows=%d: %v", flows, err)
		}
		return r.F1
	}
	lo := f1At(100_000)
	hi := f1At(1_000_000)
	if hi > lo+0.02 {
		t.Fatalf("baseline F1 improved with more flows: %.3f → %.3f", lo, hi)
	}
}

func TestEntryBudgetRespected(t *testing.T) {
	train, test, _, _ := dataset(t, trace.D2, 400)
	r, err := TrainNetBeacon(train, test, Options{
		Classes: 4, FlowTarget: 100_000, Profile: resources.Tofino1(),
		EntryBudget: 100,
	})
	if err != nil {
		t.Fatalf("TrainNetBeacon: %v", err)
	}
	if r.TCAMEntries > 100 {
		t.Fatalf("entries %d exceed budget 100", r.TCAMEntries)
	}
}

func TestLeoAlloc(t *testing.T) {
	cases := []struct{ raw, want int }{
		{1, 2048}, {2048, 2048}, {2049, 4096}, {5000, 8192}, {8192, 8192},
	}
	for _, c := range cases {
		if got := leoAlloc(c.raw); got != c.want {
			t.Errorf("leoAlloc(%d) = %d, want %d", c.raw, got, c.want)
		}
	}
}

func TestPerPacketWeakerThanStateful(t *testing.T) {
	train, test, trainF, testF := dataset(t, trace.D2, 400)
	nb, err := TrainNetBeacon(train, test, Options{
		Classes: 4, FlowTarget: 100_000, Profile: resources.Tofino1(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := TrainPerPacket(trainF, testF, 4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pp.F1 <= 0 || pp.F1 > 1 {
		t.Fatalf("per-packet F1 %v out of range", pp.F1)
	}
	// Figure 2's gap: stateless models trail stateful ones markedly.
	if pp.F1 > nb.F1 {
		t.Fatalf("per-packet F1 %.3f beat stateful %.3f — stateless fields too informative",
			pp.F1, nb.F1)
	}
}

func TestPerPacketValidation(t *testing.T) {
	if _, err := TrainPerPacket(nil, nil, 4, 8, 16); err == nil {
		t.Fatal("empty flows accepted")
	}
}

func TestEmptySamplesRejected(t *testing.T) {
	if _, err := TrainNetBeacon(nil, nil, Options{Classes: 4, FlowTarget: 1000, Profile: resources.Tofino1()}); err == nil {
		t.Fatal("empty samples accepted")
	}
}

func TestBaselineStateBits(t *testing.T) {
	if got := baselineStateBits(4, 32, 1); got != 4*32+32 {
		t.Fatalf("stateBits = %d", got)
	}
	if got := baselineStateBits(4, 32, 3); got != 4*32+32+64 {
		t.Fatalf("stateBits with chain = %d", got)
	}
}

func BenchmarkTrainNetBeacon(b *testing.B) {
	flows := trace.Generate(trace.D2, 300, 55)
	samples := trace.BuildSamples(flows, 1)
	train, test := trace.Split(samples, 0.7)
	opts := Options{Classes: 4, FlowTarget: 100_000, Profile: resources.Tofino1(), MaxK: 4, MaxDepth: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainNetBeacon(train, test, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPhasedNetBeacon(t *testing.T) {
	_, _, trainF, testF := dataset(t, trace.D2, 400)
	r, err := TrainNetBeaconPhased(trainF, testF, 4, 4, 6, 6)
	if err != nil {
		t.Fatalf("TrainNetBeaconPhased: %v", err)
	}
	if r.Phases < 2 {
		t.Fatalf("only %d phases trained", r.Phases)
	}
	if r.F1 < 0.4 {
		t.Fatalf("phased NB F1 %.3f too low", r.F1)
	}
	if r.RegisterBits != r.K*32 {
		t.Fatal("phases must share the top-k registers")
	}
	sum := 0
	for _, tree := range r.Trees {
		e, _, err := compileEntries(tree, r.K, 4, 32, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += e
	}
	if sum != r.TCAMEntries {
		t.Fatalf("TCAM accounting: %d != %d", sum, r.TCAMEntries)
	}
}

func TestPhasedEarlyInference(t *testing.T) {
	_, _, trainF, testF := dataset(t, trace.D2, 400)
	r, err := TrainNetBeaconPhased(trainF, testF, 4, 4, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	long := testF[0]
	for _, f := range testF {
		if len(f.Packets) > len(long.Packets) {
			long = f
		}
	}
	c, err := r.ClassifyAtPhase(long, 0)
	if err != nil {
		t.Fatalf("early inference failed: %v", err)
	}
	if c < 0 || c >= 4 {
		t.Fatalf("class %d out of range", c)
	}
	if _, err := r.ClassifyAtPhase(long, 99); err == nil {
		t.Fatal("out-of-range phase accepted")
	}
}

func TestPhasedValidation(t *testing.T) {
	if _, err := TrainNetBeaconPhased(nil, nil, 4, 4, 6, 6); err == nil {
		t.Fatal("empty flows accepted")
	}
	_, _, trainF, testF := dataset(t, trace.D2, 100)
	if _, err := TrainNetBeaconPhased(trainF, testF, 4, 0, 6, 6); err == nil {
		t.Fatal("k=0 accepted")
	}
}
