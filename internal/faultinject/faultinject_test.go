package faultinject

import (
	"testing"
	"time"

	"splidt/internal/pkt"
)

// TestNonLossyDeterministic: same seed, same plan — the reproducibility
// contract the chaos tests lean on.
func TestNonLossyDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := NonLossy(seed, 4)
		b := NonLossy(seed, 4)
		if a.String() != b.String() {
			t.Fatalf("seed %d: plans differ:\n%s\n%s", seed, a, b)
		}
		if len(a.Faults()) < 2 {
			t.Fatalf("seed %d: only %d faults", seed, len(a.Faults()))
		}
		for _, f := range a.Faults() {
			if f.Kind.Lossy() {
				t.Fatalf("seed %d: NonLossy produced lossy fault %v", seed, f)
			}
		}
	}
	if NonLossy(1, 4).String() == NonLossy(2, 4).String() {
		t.Fatal("seeds 1 and 2 produced identical plans (suspicious)")
	}
}

// TestWorkerPanicFiresOnceAtOrdinal: the panic fires at exactly the
// scheduled per-shard packet ordinal, on the scheduled shard only, once.
func TestWorkerPanicFiresOnceAtOrdinal(t *testing.T) {
	p := New(2, Fault{Kind: WorkerPanic, Shard: 1, At: 3})
	var pk pkt.Packet
	// Shard 0 never panics, whatever its ordinal.
	for i := 0; i < 10; i++ {
		p.BeforePacket(0, &pk)
	}
	for i := 0; i < 3; i++ {
		p.BeforePacket(1, &pk) // ordinals 0..2: quiet
	}
	panicked := func() (v any) {
		defer func() { v = recover() }()
		p.BeforePacket(1, &pk) // ordinal 3: fires
		return nil
	}()
	if panicked == nil {
		t.Fatal("no panic at scheduled ordinal")
	}
	if p.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", p.Fired())
	}
	p.BeforePacket(1, &pk) // once-latch: no second panic
	if got := p.Packets(1); got != 5 {
		t.Fatalf("shard 1 packet ordinal = %d, want 5", got)
	}
}

// TestRingOverflowWindow: pushes are refused for exactly [At, At+Count).
func TestRingOverflowWindow(t *testing.T) {
	p := New(2, Fault{Kind: RingOverflow, Shard: 0, At: 2, Count: 3})
	want := []bool{false, false, true, true, true, false, false}
	for i, w := range want {
		if got := p.PushRefuse(0); got != w {
			t.Fatalf("push %d: refuse=%v, want %v", i, got, w)
		}
	}
	for i := 0; i < 7; i++ {
		if p.PushRefuse(1) {
			t.Fatal("refusal leaked onto untargeted shard")
		}
	}
}

// TestClockJumpShiftsFrom: timestamps step forward from the ordinal on.
func TestClockJumpShiftsFrom(t *testing.T) {
	p := New(1, Fault{Kind: ClockJump, Shard: 0, At: 2, Jump: time.Second})
	for i := 0; i < 4; i++ {
		pk := pkt.Packet{TS: time.Duration(i) * time.Millisecond}
		p.BeforePacket(0, &pk)
		wantJump := i >= 2
		if got := pk.TS >= time.Second; got != wantJump {
			t.Fatalf("packet %d: TS=%v, jumped=%v want %v", i, pk.TS, got, wantJump)
		}
	}
}

// TestStallsLatchOnce: a stall fault fires at its ordinal and only there.
func TestStallsLatchOnce(t *testing.T) {
	p := New(1,
		Fault{Kind: ShardStall, Shard: 0, At: 1, Stall: time.Microsecond},
		Fault{Kind: SinkStall, At: 0, Stall: time.Microsecond},
	)
	var pk pkt.Packet
	p.BeforePacket(0, &pk)
	p.BeforePacket(0, &pk)
	p.SinkDigest(nil)
	if p.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", p.Fired())
	}
}
