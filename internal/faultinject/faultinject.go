// Package faultinject builds deterministic fault plans for the engine's
// chaos tests: seeded schedules of worker panics, shard stalls, ring
// overflows, sink stalls, and packet-clock jumps, fired from the engine's
// test hooks at exact per-shard packet ordinals. Determinism is the whole
// point — a plan derived from a seed injects the same faults at the same
// ordinals on every run, including under -race, so a chaos failure
// reproduces from its seed alone.
//
// The package deliberately does not import the engine: the engine's
// in-package tests import faultinject, and the dependency must stay
// one-way. Instead, Plan exposes methods whose signatures match the
// engine's TestHooks fields (BeforePacket, SinkDigest, PushRefuse); a test
// wires them field by field.
package faultinject

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"splidt/internal/dataplane"
	"splidt/internal/pkt"
)

// Kind is a fault category.
type Kind int

// The fault kinds.
const (
	// WorkerPanic panics the shard's worker goroutine at packet ordinal
	// At — the engine must quarantine that shard and keep the rest alive.
	WorkerPanic Kind = iota
	// ShardStall blocks the shard's worker for Stall at packet ordinal At,
	// modelling a scheduling hiccup or a slow downstream call.
	ShardStall
	// RingOverflow refuses Count consecutive push attempts into the
	// shard's input ring starting at push ordinal At, forcing the feeder
	// through its backpressure path as if the ring were full.
	RingOverflow
	// SinkStall blocks the digest sink for Stall at digest ordinal At,
	// backing the merged digest stream up into the workers.
	SinkStall
	// ClockJump adds Jump to every packet timestamp on the shard from
	// packet ordinal At onward — a step in the packet clock, the kind of
	// discontinuity a replayed capture or a wrapped counter produces.
	ClockJump
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case WorkerPanic:
		return "worker-panic"
	case ShardStall:
		return "shard-stall"
	case RingOverflow:
		return "ring-overflow"
	case SinkStall:
		return "sink-stall"
	case ClockJump:
		return "clock-jump"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Lossy reports whether the kind can change what the engine emits.
// WorkerPanic drops the quarantined shard's traffic; ClockJump perturbs
// timestamps (and with them ageing and TTDs). The other kinds only delay —
// a non-lossy plan must leave the digest multiset exactly as a fault-free
// run produces it, which is what the chaos equivalence test pins.
func (k Kind) Lossy() bool { return k == WorkerPanic || k == ClockJump }

// Fault is one scheduled injection.
type Fault struct {
	Kind  Kind
	Shard int // target shard (ignored by SinkStall, which is global)

	// At is the zero-based ordinal that triggers the fault, counted in the
	// domain the kind observes: packets the shard's worker has seen
	// (WorkerPanic, ShardStall, ClockJump), push attempts into the shard's
	// ring (RingOverflow), or digests sunk (SinkStall).
	At uint64

	Stall time.Duration // ShardStall, SinkStall: how long to block
	Count uint64        // RingOverflow: consecutive attempts refused
	Jump  time.Duration // ClockJump: added to each timestamp from At on
}

// String renders the fault compactly, e.g. "shard-stall@s2:p100(2ms)".
func (f Fault) String() string {
	switch f.Kind {
	case WorkerPanic:
		return fmt.Sprintf("worker-panic@s%d:p%d", f.Shard, f.At)
	case ShardStall:
		return fmt.Sprintf("shard-stall@s%d:p%d(%v)", f.Shard, f.At, f.Stall)
	case RingOverflow:
		return fmt.Sprintf("ring-overflow@s%d:u%d(x%d)", f.Shard, f.At, f.Count)
	case SinkStall:
		return fmt.Sprintf("sink-stall@d%d(%v)", f.At, f.Stall)
	case ClockJump:
		return fmt.Sprintf("clock-jump@s%d:p%d(+%v)", f.Shard, f.At, f.Jump)
	default:
		return f.Kind.String()
	}
}

// Plan is an armed fault schedule. Its three hook methods are safe for the
// engine's concurrency (one worker per shard, one sink, many feeders) and
// carry no locks — per-shard ordinals are atomics advanced by their single
// observer, so injection points cost one atomic add when the plan is quiet.
type Plan struct {
	faults []Fault

	pkts    []atomic.Uint64 // per-shard packets observed by BeforePacket
	pushes  []atomic.Uint64 // per-shard push attempts observed by PushRefuse
	digests atomic.Uint64   // digests observed by SinkDigest
	fired   []atomic.Bool   // per-fault once-latch (stalls and panics)
}

// New arms a plan over an engine with the given shard count. Faults
// targeting shards outside [0, shards) panic immediately — a mis-addressed
// fault would otherwise silently never fire and the test would pass
// vacuously.
func New(shards int, faults ...Fault) *Plan {
	if shards < 1 {
		panic("faultinject: shards < 1")
	}
	for _, f := range faults {
		if f.Kind != SinkStall && (f.Shard < 0 || f.Shard >= shards) {
			panic(fmt.Sprintf("faultinject: fault %v targets shard %d of %d", f, f.Shard, shards))
		}
	}
	return &Plan{
		faults: faults,
		pkts:   make([]atomic.Uint64, shards),
		pushes: make([]atomic.Uint64, shards),
		fired:  make([]atomic.Bool, len(faults)),
	}
}

// NonLossy derives a seeded random plan from the delay-only kinds
// (ShardStall, SinkStall, RingOverflow): 2–4 faults at ordinals inside the
// first few hundred packets, stalls of 1–3ms, overflows of 1–16 refused
// pushes. Deterministic in (seed, shards); every plan it returns must
// leave the digest multiset untouched.
func NonLossy(seed int64, shards int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3)
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			faults = append(faults, Fault{
				Kind: ShardStall, Shard: rng.Intn(shards),
				At:    uint64(rng.Intn(400)),
				Stall: time.Duration(1+rng.Intn(3)) * time.Millisecond,
			})
		case 1:
			faults = append(faults, Fault{
				Kind:  SinkStall,
				At:    uint64(rng.Intn(400)),
				Stall: time.Duration(1+rng.Intn(3)) * time.Millisecond,
			})
		case 2:
			faults = append(faults, Fault{
				Kind: RingOverflow, Shard: rng.Intn(shards),
				At:    uint64(rng.Intn(300)),
				Count: uint64(1 + rng.Intn(16)),
			})
		}
	}
	return New(shards, faults...)
}

// Faults returns the plan's schedule (shared slice; do not mutate).
func (p *Plan) Faults() []Fault { return p.faults }

// String renders the full schedule.
func (p *Plan) String() string {
	parts := make([]string, len(p.faults))
	for i, f := range p.faults {
		parts[i] = f.String()
	}
	return "plan[" + strings.Join(parts, " ") + "]"
}

// Fired reports how many of the plan's once-faults (panics and stalls)
// have triggered — a test asserting a fault actually happened, not just
// that the run survived.
func (p *Plan) Fired() int {
	n := 0
	for i := range p.fired {
		if p.fired[i].Load() {
			n++
		}
	}
	return n
}

// Packets returns how many packets shard's worker has presented to the
// plan so far.
func (p *Plan) Packets(shard int) uint64 { return p.pkts[shard].Load() }

// BeforePacket is the engine's per-packet worker hook: it advances the
// shard's packet ordinal and fires any WorkerPanic, ShardStall, or
// ClockJump faults due at it.
func (p *Plan) BeforePacket(shard int, pk *pkt.Packet) {
	n := p.pkts[shard].Add(1) - 1
	for i := range p.faults {
		f := &p.faults[i]
		if f.Shard != shard || f.Kind == SinkStall || f.Kind == RingOverflow {
			continue
		}
		switch f.Kind {
		case WorkerPanic:
			if n == f.At && p.fired[i].CompareAndSwap(false, true) {
				panic(fmt.Sprintf("faultinject: %v", *f))
			}
		case ShardStall:
			if n == f.At && p.fired[i].CompareAndSwap(false, true) {
				time.Sleep(f.Stall)
			}
		case ClockJump:
			if n >= f.At {
				p.fired[i].Store(true)
				pk.TS += f.Jump
			}
		}
	}
}

// SinkDigest is the engine's digest-sink hook: it advances the digest
// ordinal and fires any SinkStall due at it.
func (p *Plan) SinkDigest(d *dataplane.Digest) {
	n := p.digests.Add(1) - 1
	for i := range p.faults {
		f := &p.faults[i]
		if f.Kind == SinkStall && n == f.At && p.fired[i].CompareAndSwap(false, true) {
			time.Sleep(f.Stall)
		}
	}
}

// PushRefuse is the feeder's ring-push hook: it advances the shard's push
// ordinal and reports whether a RingOverflow fault covers it — true means
// the feeder must treat the ring as full and take its backpressure path.
func (p *Plan) PushRefuse(shard int) bool {
	n := p.pushes[shard].Add(1) - 1
	refuse := false
	for i := range p.faults {
		f := &p.faults[i]
		if f.Kind == RingOverflow && f.Shard == shard && n >= f.At && n < f.At+f.Count {
			p.fired[i].Store(true)
			refuse = true
		}
	}
	return refuse
}
