package p4gen

import (
	"fmt"
	"strings"
	"testing"

	"splidt/internal/core"
	"splidt/internal/rangemark"
	"splidt/internal/trace"
)

func genFor(t *testing.T, cfg core.Config, opts Options) (*Generator, *core.Model, *rangemark.Compiled) {
	t.Helper()
	flows := trace.Generate(trace.D2, 300, 17)
	samples := trace.BuildSamples(flows, len(cfg.Partitions))
	m, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(m, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, m, c
}

func TestProgramStructure(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2, 2}, FeaturesPerSubtree: 4, NumClasses: 4}
	g, m, _ := genFor(t, cfg, Options{})
	src := g.Program()

	// Required architectural elements of Figure 4.
	wants := []string{
		"sid_reg", "pkt_count_reg", // reserved registers
		"feature_0_reg", "feature_3_reg", // k feature registers
		"op_select_0", "op_select_3", // operator selection MATs
		"table feature_0", "table feature_3", // match-key generators
		"table model",             // model table
		"resubmit()",              // in-band control channel
		"digest(",                 // controller report
		"header splidt_h",         // flow-size header
		"header splidt_ctrl_h",    // control header
		"hash_crc32",              // 5-tuple hashing
		"#include <tna.p4>",       // target include
		"transition_sid", "class", // actions
	}
	for _, w := range wants {
		if !strings.Contains(src, w) {
			t.Errorf("program missing %q", w)
		}
	}
	if strings.Contains(src, "feature_4_reg") {
		t.Error("emitted more feature registers than k")
	}
	if got := strings.Count(src, "Register<"); got < 4+2 {
		t.Errorf("only %d register declarations", got)
	}
	_ = m
}

func TestProgramBalancedBraces(t *testing.T) {
	cfg := core.Config{Partitions: []int{3, 3}, FeaturesPerSubtree: 3, NumClasses: 4}
	g, _, _ := genFor(t, cfg, Options{})
	src := g.Program()
	if o, c := strings.Count(src, "{"), strings.Count(src, "}"); o != c {
		t.Fatalf("unbalanced braces: %d open, %d close", o, c)
	}
}

func TestRulesMatchCompiledEntries(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	g, _, c := genFor(t, cfg, Options{})
	rules := g.Rules()
	if len(rules) != c.Entries() {
		t.Fatalf("%d rules, compiled %d entries", len(rules), c.Entries())
	}
	if g.EntryCount() != len(rules) {
		t.Fatal("EntryCount mismatch")
	}
	modelRules := 0
	for _, r := range rules {
		if !strings.HasPrefix(r, "table_add ") {
			t.Fatalf("rule %q missing table_add prefix", r)
		}
		if strings.Contains(r, "table_add model ") {
			modelRules++
		}
	}
	if modelRules != len(c.ModelRules()) {
		t.Fatalf("%d model rules, want %d", modelRules, len(c.ModelRules()))
	}
}

func TestRulesDeterministic(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 3, NumClasses: 4}
	g, _, _ := genFor(t, cfg, Options{})
	a := strings.Join(g.Rules(), "\n")
	b := strings.Join(g.Rules(), "\n")
	if a != b {
		t.Fatal("rule emission not deterministic")
	}
}

func TestQuantizedProgramWidths(t *testing.T) {
	cfg := core.Config{Partitions: []int{2, 2}, FeaturesPerSubtree: 2, NumClasses: 4, QuantizeBits: 16}
	g, _, _ := genFor(t, cfg, Options{})
	src := g.Program()
	if !strings.Contains(src, "bit<16> fval_0") {
		t.Fatal("quantised program should carry 16-bit feature values")
	}
	if strings.Contains(src, "bit<32> fval_0") {
		t.Fatal("32-bit fields in a 16-bit program")
	}
}

func TestOptionsDefaults(t *testing.T) {
	cfg := core.Config{Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4}
	g, _, _ := genFor(t, cfg, Options{})
	src := g.Program()
	if !strings.Contains(src, "SplidtIngress") {
		t.Fatal("default program name not applied")
	}
	g2, _, _ := genFor(t, cfg, Options{ProgramName: "myids", FlowSlots: 4096})
	src2 := g2.Program()
	if !strings.Contains(src2, "MyidsIngress") || !strings.Contains(src2, "(4096)") {
		t.Fatal("options not applied")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestTableSize(t *testing.T) {
	cases := []struct{ in, want int }{{0, 64}, {64, 64}, {65, 128}, {500, 512}}
	for _, c := range cases {
		if got := tableSize(c.in); got != c.want {
			t.Errorf("tableSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestGeneratedLineCountInPaperBallpark(t *testing.T) {
	// The paper's hand-written data plane is ~1,600 lines of P4; a
	// generated program for a realistic configuration should be the same
	// order of magnitude (hundreds of lines), not a stub.
	cfg := core.Config{Partitions: []int{3, 3, 3}, FeaturesPerSubtree: 6, NumClasses: 13}
	flows := trace.Generate(trace.D3, 400, 17)
	samples := trace.BuildSamples(flows, 3)
	m, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rangemark.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(m, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(g.Program(), "\n")
	if lines < 150 {
		t.Fatalf("generated program only %d lines", lines)
	}
}

func ExampleGenerator_Rules() {
	flows := trace.Generate(trace.D2, 200, 5)
	samples := trace.BuildSamples(flows, 1)
	m, _ := core.Train(samples, core.Config{
		Partitions: []int{2}, FeaturesPerSubtree: 2, NumClasses: 4,
	})
	c, _ := rangemark.Compile(m)
	g, _ := New(m, c, Options{})
	fmt.Println(len(g.Rules()) == c.Entries())
	// Output: true
}
