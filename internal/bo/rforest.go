// Package bo implements the design-space exploration engine of SpliDT's
// training framework (§3.2.1): multi-objective Bayesian optimisation with a
// random-forest surrogate (the reproduction's HyperMapper), feasibility
// constraint handling, and Pareto-frontier extraction over (F1, #flows).
package bo

import (
	"math"
	"math/rand"
	"sort"
)

// rtree is a regression tree with variance-reduction splits — the building
// block of the surrogate forest.
type rtree struct {
	feature   int
	threshold float64
	left      *rtree
	right     *rtree
	leaf      bool
	value     float64
}

type rtreeConfig struct {
	maxDepth       int
	minSamplesLeaf int
	// featureFrac subsamples candidate features at each split (the forest's
	// de-correlation knob).
	featureFrac float64
}

func trainRTree(X [][]float64, y []float64, cfg rtreeConfig, rng *rand.Rand) *rtree {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	return growR(X, y, idx, 0, cfg, rng)
}

func meanOf(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseOf(y []float64, idx []int) float64 {
	m := meanOf(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func growR(X [][]float64, y []float64, idx []int, depth int, cfg rtreeConfig, rng *rand.Rand) *rtree {
	if depth >= cfg.maxDepth || len(idx) < 2*cfg.minSamplesLeaf {
		return &rtree{leaf: true, value: meanOf(y, idx)}
	}
	parentSSE := sseOf(y, idx)
	if parentSSE < 1e-12 {
		return &rtree{leaf: true, value: meanOf(y, idx)}
	}

	width := len(X[0])
	nFeat := int(math.Ceil(cfg.featureFrac * float64(width)))
	if nFeat < 1 {
		nFeat = 1
	}
	feats := rng.Perm(width)[:nFeat]

	bestGain, bestF, bestT := 0.0, -1, 0.0
	n := len(idx)
	vals := make([]float64, n)
	order := make([]int, n)
	prefix := make([]float64, n+1)
	prefix2 := make([]float64, n+1)
	for _, f := range feats {
		for j, i := range idx {
			vals[j] = X[i][f]
			order[j] = i
		}
		sort.Sort(&pairSort{vals, order})
		// Prefix sums give an O(n) variance-reduction scan.
		for j := 0; j < n; j++ {
			v := y[order[j]]
			prefix[j+1] = prefix[j] + v
			prefix2[j+1] = prefix2[j] + v*v
		}
		total, total2 := prefix[n], prefix2[n]
		for j := cfg.minSamplesLeaf; j <= n-cfg.minSamplesLeaf; j++ {
			if vals[j-1] == vals[j] {
				continue // no threshold between equal values
			}
			nl, nr := float64(j), float64(n-j)
			sseL := prefix2[j] - prefix[j]*prefix[j]/nl
			sseR := (total2 - prefix2[j]) - (total-prefix[j])*(total-prefix[j])/nr
			gain := parentSSE - sseL - sseR
			if gain > bestGain+1e-12 {
				bestGain, bestF, bestT = gain, f, (vals[j-1]+vals[j])/2
			}
		}
	}
	if bestF < 0 {
		return &rtree{leaf: true, value: meanOf(y, idx)}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestF] <= bestT {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &rtree{leaf: true, value: meanOf(y, idx)}
	}
	return &rtree{
		feature: bestF, threshold: bestT,
		left:  growR(X, y, li, depth+1, cfg, rng),
		right: growR(X, y, ri, depth+1, cfg, rng),
	}
}

type pairSort struct {
	vals  []float64
	order []int
}

func (p *pairSort) Len() int           { return len(p.vals) }
func (p *pairSort) Less(i, j int) bool { return p.vals[i] < p.vals[j] }
func (p *pairSort) Swap(i, j int) {
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
	p.order[i], p.order[j] = p.order[j], p.order[i]
}

func (t *rtree) predict(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// Forest is a bootstrap-aggregated regression forest used as the BO
// surrogate: Predict returns the tree-ensemble mean, and Uncertainty the
// cross-tree standard deviation that drives exploration.
type Forest struct {
	trees []*rtree
}

// ForestConfig controls surrogate training.
type ForestConfig struct {
	Trees          int
	MaxDepth       int
	MinSamplesLeaf int
	FeatureFrac    float64
}

// DefaultForestConfig mirrors HyperMapper's modest defaults.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 24, MaxDepth: 8, MinSamplesLeaf: 2, FeatureFrac: 0.7}
}

// FitForest trains a surrogate on rows X with targets y.
func FitForest(X [][]float64, y []float64, cfg ForestConfig, seed int64) *Forest {
	if len(X) == 0 || len(X) != len(y) {
		panic("bo: bad training data")
	}
	if cfg.Trees < 1 {
		cfg = DefaultForestConfig()
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Forest{}
	n := len(X)
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i], by[i] = X[j], y[j]
		}
		f.trees = append(f.trees, trainRTree(bx, by, rtreeConfig{
			maxDepth:       cfg.MaxDepth,
			minSamplesLeaf: cfg.MinSamplesLeaf,
			featureFrac:    cfg.FeatureFrac,
		}, rng))
	}
	return f
}

// Predict returns the ensemble mean at x.
func (f *Forest) Predict(x []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// Uncertainty returns the cross-tree standard deviation at x.
func (f *Forest) Uncertainty(x []float64) float64 {
	m := f.Predict(x)
	s := 0.0
	for _, t := range f.trees {
		d := t.predict(x) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(f.trees)))
}
