package bo

import (
	"math/rand"
	"sort"
	"sync"
)

// Point is one SpliDT configuration in the search space: total tree depth,
// features per subtree, and the partition-size vector (summing to Depth).
type Point struct {
	Depth      int
	K          int
	Partitions []int
}

// encode maps a point into the surrogate's feature space.
func (p Point) encode() []float64 {
	return []float64{
		float64(p.Depth),
		float64(p.K),
		float64(len(p.Partitions)),
		float64(minPart(p.Partitions)),
		float64(maxPart(p.Partitions)),
	}
}

func minPart(ps []int) int {
	m := 1 << 30
	for _, p := range ps {
		if p < m {
			m = p
		}
	}
	if m == 1<<30 {
		return 0
	}
	return m
}

func maxPart(ps []int) int {
	m := 0
	for _, p := range ps {
		if p > m {
			m = p
		}
	}
	return m
}

// Space bounds the search. Fixed* values pin a dimension (the Figure 8
// ablations); zero leaves it free.
type Space struct {
	MaxDepth      int
	MaxK          int
	MaxPartitions int

	FixedDepth      int
	FixedK          int
	FixedPartitions int
}

// DefaultSpace mirrors the paper's ranges: depth to 30, k to 7, up to 7
// partitions (beyond 7 accuracy drops, §5.1).
func DefaultSpace() Space {
	return Space{MaxDepth: 30, MaxK: 7, MaxPartitions: 7}
}

// sample draws a random point from the space.
func (s Space) sample(rng *rand.Rand) Point {
	depth := s.FixedDepth
	if depth == 0 {
		depth = 2 + rng.Intn(s.MaxDepth-1)
	}
	nPart := s.FixedPartitions
	if nPart == 0 {
		maxP := s.MaxPartitions
		if maxP > depth {
			maxP = depth
		}
		nPart = 1 + rng.Intn(maxP)
	}
	if nPart > depth {
		nPart = depth
	}
	k := s.FixedK
	if k == 0 {
		k = 1 + rng.Intn(s.MaxK)
	}
	return Point{Depth: depth, K: k, Partitions: composition(depth, nPart, rng)}
}

// composition splits depth into nPart positive parts uniformly at random.
func composition(depth, nPart int, rng *rand.Rand) []int {
	parts := make([]int, nPart)
	for i := range parts {
		parts[i] = 1
	}
	for r := depth - nPart; r > 0; r-- {
		parts[rng.Intn(nPart)]++
	}
	return parts
}

// mutate perturbs a point within the space (local exploration around the
// current Pareto set).
func (s Space) mutate(p Point, rng *rand.Rand) Point {
	q := Point{Depth: p.Depth, K: p.K, Partitions: append([]int(nil), p.Partitions...)}
	switch rng.Intn(3) {
	case 0: // nudge k
		if s.FixedK == 0 {
			q.K += rng.Intn(3) - 1
			if q.K < 1 {
				q.K = 1
			}
			if q.K > s.MaxK {
				q.K = s.MaxK
			}
		}
	case 1: // nudge depth, keeping the composition shape
		if s.FixedDepth == 0 {
			d := q.Depth + rng.Intn(5) - 2
			if d < len(q.Partitions) {
				d = len(q.Partitions)
			}
			if d < 2 {
				d = 2
			}
			if d > s.MaxDepth {
				d = s.MaxDepth
			}
			q.Partitions = composition(d, len(q.Partitions), rng)
			q.Depth = d
		}
	default: // reshuffle partition sizes
		if s.FixedPartitions == 0 && q.Depth >= 2 {
			maxP := s.MaxPartitions
			if maxP > q.Depth {
				maxP = q.Depth
			}
			nPart := 1 + rng.Intn(maxP)
			q.Partitions = composition(q.Depth, nPart, rng)
		} else {
			q.Partitions = composition(q.Depth, len(q.Partitions), rng)
		}
	}
	return q
}

// Evaluation is one black-box result fed back into the loop.
type Evaluation struct {
	Point    Point
	F1       float64
	Flows    int // maximum supported concurrent flows
	Feasible bool
}

// Objective evaluates one candidate configuration: train the partitioned
// tree, score it, estimate resources, test feasibility.
type Objective func(Point) Evaluation

// Result is a completed search.
type Result struct {
	Evaluations []Evaluation
	// Pareto is the non-dominated feasible set over (F1, Flows), sorted by
	// descending flows.
	Pareto []Evaluation
	// BestByIteration[i] is the best feasible F1 seen through iteration i
	// (the convergence curve of Figure 7).
	BestByIteration []float64
}

// Config tunes the search loop.
type Config struct {
	Iterations int
	Parallel   int // candidates evaluated per iteration (paper: 16)
	InitRandom int // pure-random warmup iterations
	Seed       int64
	Forest     ForestConfig
	// Warmstart points are evaluated before any sampled batch, anchoring
	// the surrogate with known-coverage configurations (e.g. the low-k
	// corner that high flow targets require).
	Warmstart []Point
}

// DefaultConfig mirrors the paper's setup at reproduction scale.
func DefaultConfig() Config {
	return Config{Iterations: 30, Parallel: 8, InitRandom: 4, Seed: 1, Forest: DefaultForestConfig()}
}

// Search runs the BO loop: warmup with random sampling, then iterate
// surrogate-guided candidate selection (random-scalarisation acquisition
// over the two objectives, weighted by predicted feasibility), evaluating
// Parallel candidates concurrently per iteration.
func Search(space Space, obj Objective, cfg Config) Result {
	if cfg.Iterations < 1 || cfg.Parallel < 1 {
		panic("bo: non-positive iterations or parallelism")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	seen := map[string]bool{}

	evalBatch := func(points []Point) {
		evs := make([]Evaluation, len(points))
		var wg sync.WaitGroup
		for i := range points {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				evs[i] = obj(points[i])
			}(i)
		}
		wg.Wait()
		res.Evaluations = append(res.Evaluations, evs...)
	}

	uniquePoints := func(gen func() Point, n int) []Point {
		var out []Point
		for tries := 0; len(out) < n && tries < 50*n; tries++ {
			p := gen()
			key := pointKey(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, p)
		}
		return out
	}

	if len(cfg.Warmstart) > 0 {
		var batch []Point
		for _, p := range cfg.Warmstart {
			key := pointKey(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			batch = append(batch, p)
		}
		if len(batch) > 0 {
			evalBatch(batch)
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		var batch []Point
		if it < cfg.InitRandom || len(res.Evaluations) < 4 {
			batch = uniquePoints(func() Point { return space.sample(rng) }, cfg.Parallel)
		} else {
			batch = acquire(space, res.Evaluations, cfg, rng, seen)
		}
		if len(batch) == 0 {
			batch = uniquePoints(func() Point { return space.sample(rng) }, cfg.Parallel)
			if len(batch) == 0 {
				break // space exhausted
			}
		}
		evalBatch(batch)

		best := 0.0
		for _, e := range res.Evaluations {
			if e.Feasible && e.F1 > best {
				best = e.F1
			}
		}
		res.BestByIteration = append(res.BestByIteration, best)
	}

	res.Pareto = ParetoFront(res.Evaluations)
	return res
}

func pointKey(p Point) string {
	b := make([]byte, 0, 16)
	b = append(b, byte(p.Depth), byte(p.K))
	for _, x := range p.Partitions {
		b = append(b, byte(x))
	}
	return string(b)
}

// acquire fits surrogates on the history and returns the Parallel candidates
// with the best acquisition value from a large sampled pool.
func acquire(space Space, hist []Evaluation, cfg Config, rng *rand.Rand, seen map[string]bool) []Point {
	X := make([][]float64, len(hist))
	yF1 := make([]float64, len(hist))
	yFlows := make([]float64, len(hist))
	yFeas := make([]float64, len(hist))
	maxFlows := 1.0
	for _, e := range hist {
		if f := float64(e.Flows); f > maxFlows {
			maxFlows = f
		}
	}
	for i, e := range hist {
		X[i] = e.Point.encode()
		yF1[i] = e.F1
		yFlows[i] = float64(e.Flows) / maxFlows
		if e.Feasible {
			yFeas[i] = 1
		}
	}
	fF1 := FitForest(X, yF1, cfg.Forest, cfg.Seed+101)
	fFlows := FitForest(X, yFlows, cfg.Forest, cfg.Seed+202)
	fFeas := FitForest(X, yFeas, cfg.Forest, cfg.Seed+303)

	// Candidate pool: random samples plus mutations of the current Pareto.
	pool := make([]Point, 0, 256)
	for i := 0; i < 192; i++ {
		pool = append(pool, space.sample(rng))
	}
	for _, e := range ParetoFront(hist) {
		for i := 0; i < 8; i++ {
			pool = append(pool, space.mutate(e.Point, rng))
		}
	}

	// ParEGO-style random scalarisation with a UCB exploration bonus,
	// discounted by predicted feasibility.
	w := rng.Float64()
	type scored struct {
		p Point
		a float64
	}
	var ss []scored
	for _, p := range pool {
		if seen[pointKey(p)] {
			continue
		}
		x := p.encode()
		mu := w*fF1.Predict(x) + (1-w)*fFlows.Predict(x)
		sigma := w*fF1.Uncertainty(x) + (1-w)*fFlows.Uncertainty(x)
		feas := fFeas.Predict(x)
		if feas < 0.05 {
			feas = 0.05
		}
		ss = append(ss, scored{p, (mu + 1.5*sigma) * feas})
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].a > ss[j].a })

	var out []Point
	for _, s := range ss {
		key := pointKey(s.p)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s.p)
		if len(out) == cfg.Parallel {
			break
		}
	}
	return out
}

// ParetoFront extracts the non-dominated feasible evaluations over
// (F1, Flows), sorted by descending flow count.
func ParetoFront(evs []Evaluation) []Evaluation {
	var feas []Evaluation
	for _, e := range evs {
		if e.Feasible {
			feas = append(feas, e)
		}
	}
	var front []Evaluation
	for i, a := range feas {
		dominated := false
		for j, b := range feas {
			if i == j {
				continue
			}
			if b.F1 >= a.F1 && b.Flows >= a.Flows && (b.F1 > a.F1 || b.Flows > a.Flows) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	sort.SliceStable(front, func(i, j int) bool {
		if front[i].Flows != front[j].Flows {
			return front[i].Flows > front[j].Flows
		}
		return front[i].F1 > front[j].F1
	})
	// Deduplicate identical (F1, Flows) pairs.
	dst := front[:0]
	for i, e := range front {
		if i == 0 || e.Flows != front[i-1].Flows || e.F1 != front[i-1].F1 {
			dst = append(dst, e)
		}
	}
	return dst
}
