package bo

import (
	"math"
	"math/rand"
	"testing"
)

func TestForestFitsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{a, b}
		y[i] = 2*a + b
	}
	f := FitForest(X, y, DefaultForestConfig(), 7)
	sse := 0.0
	for i := range X {
		d := f.Predict(X[i]) - y[i]
		sse += d * d
	}
	rmse := math.Sqrt(sse / float64(n))
	if rmse > 2.0 {
		t.Fatalf("forest RMSE %.3f too high on linear target", rmse)
	}
}

func TestForestUncertaintyHigherOffData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a := rng.Float64() // confined to [0,1]
		X[i] = []float64{a}
		y[i] = a * a
	}
	f := FitForest(X, y, DefaultForestConfig(), 7)
	in := f.Uncertainty([]float64{0.5})
	out := f.Uncertainty([]float64{40})
	// Off-data uncertainty should not be smaller than a dense in-data point
	// (trees extrapolate differently at the fringe).
	if out < in/2 {
		t.Fatalf("uncertainty in=%.4f out=%.4f; exploration signal inverted", in, out)
	}
}

func TestForestPanicsOnBadData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty data")
		}
	}()
	FitForest(nil, nil, DefaultForestConfig(), 1)
}

func TestSampleRespectsSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := DefaultSpace()
	for i := 0; i < 500; i++ {
		p := s.sample(rng)
		if p.Depth < 2 || p.Depth > s.MaxDepth {
			t.Fatalf("depth %d out of range", p.Depth)
		}
		if p.K < 1 || p.K > s.MaxK {
			t.Fatalf("k %d out of range", p.K)
		}
		if len(p.Partitions) < 1 || len(p.Partitions) > s.MaxPartitions {
			t.Fatalf("%d partitions out of range", len(p.Partitions))
		}
		sum := 0
		for _, d := range p.Partitions {
			if d < 1 {
				t.Fatalf("partition depth %d < 1", d)
			}
			sum += d
		}
		if sum != p.Depth {
			t.Fatalf("partition sum %d != depth %d", sum, p.Depth)
		}
	}
}

func TestSampleFixedDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Space{MaxDepth: 30, MaxK: 7, MaxPartitions: 7, FixedDepth: 20, FixedK: 3, FixedPartitions: 5}
	for i := 0; i < 100; i++ {
		p := s.sample(rng)
		if p.Depth != 20 || p.K != 3 || len(p.Partitions) != 5 {
			t.Fatalf("fixed dimensions violated: %+v", p)
		}
	}
}

func TestMutateStaysInSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := DefaultSpace()
	p := s.sample(rng)
	for i := 0; i < 500; i++ {
		p = s.mutate(p, rng)
		sum := 0
		for _, d := range p.Partitions {
			sum += d
		}
		if sum != p.Depth || p.K < 1 || p.K > s.MaxK || p.Depth > s.MaxDepth {
			t.Fatalf("mutation left space: %+v", p)
		}
	}
}

// syntheticObjective has a known optimum: F1 grows with depth and k but
// feasibility requires k ≤ 4; flows fall with k.
func syntheticObjective(p Point) Evaluation {
	f1 := 0.3 + 0.015*float64(p.Depth) + 0.05*float64(p.K) + 0.01*float64(len(p.Partitions))
	if f1 > 1 {
		f1 = 1
	}
	return Evaluation{
		Point:    p,
		F1:       f1,
		Flows:    2_000_000 / (1 + p.K),
		Feasible: p.K <= 4,
	}
}

func TestSearchConvergesOnSynthetic(t *testing.T) {
	res := Search(DefaultSpace(), syntheticObjective, Config{
		Iterations: 12, Parallel: 8, InitRandom: 3, Seed: 9, Forest: DefaultForestConfig(),
	})
	if len(res.Evaluations) == 0 {
		t.Fatal("no evaluations")
	}
	if len(res.BestByIteration) != 12 {
		t.Fatalf("convergence curve has %d points, want 12", len(res.BestByIteration))
	}
	for i := 1; i < len(res.BestByIteration); i++ {
		if res.BestByIteration[i] < res.BestByIteration[i-1] {
			t.Fatal("best-so-far curve not monotone")
		}
	}
	// The best feasible point should approach the feasible optimum
	// (depth=30, k=4, partitions=7 → 0.3+0.45+0.2+0.07 = 1.0 capped).
	best := res.BestByIteration[len(res.BestByIteration)-1]
	if best < 0.85 {
		t.Fatalf("search reached %.3f, expected ≥ 0.85 on synthetic objective", best)
	}
}

func TestParetoFront(t *testing.T) {
	evs := []Evaluation{
		{F1: 0.9, Flows: 100, Feasible: true},
		{F1: 0.8, Flows: 200, Feasible: true},
		{F1: 0.7, Flows: 150, Feasible: true},   // dominated by (0.8, 200)
		{F1: 0.95, Flows: 300, Feasible: false}, // infeasible
		{F1: 0.6, Flows: 400, Feasible: true},
	}
	front := ParetoFront(evs)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3: %+v", len(front), front)
	}
	// Sorted by descending flows.
	if front[0].Flows != 400 || front[1].Flows != 200 || front[2].Flows != 100 {
		t.Fatalf("front order wrong: %+v", front)
	}
}

func TestParetoFrontDedup(t *testing.T) {
	evs := []Evaluation{
		{F1: 0.9, Flows: 100, Feasible: true},
		{F1: 0.9, Flows: 100, Feasible: true},
	}
	if got := len(ParetoFront(evs)); got != 1 {
		t.Fatalf("duplicate points kept: %d", got)
	}
}

func TestSearchDeterministic(t *testing.T) {
	cfg := Config{Iterations: 6, Parallel: 4, InitRandom: 2, Seed: 11, Forest: DefaultForestConfig()}
	a := Search(DefaultSpace(), syntheticObjective, cfg)
	b := Search(DefaultSpace(), syntheticObjective, cfg)
	if len(a.Evaluations) != len(b.Evaluations) {
		t.Fatal("evaluation counts differ across identical seeds")
	}
	for i := range a.Evaluations {
		if a.Evaluations[i].F1 != b.Evaluations[i].F1 {
			t.Fatal("evaluations differ across identical seeds")
		}
	}
}

func TestSearchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero iterations")
		}
	}()
	Search(DefaultSpace(), syntheticObjective, Config{Iterations: 0, Parallel: 1})
}

func BenchmarkForestFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = X[i][0] * X[i][1]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FitForest(X, y, DefaultForestConfig(), int64(i))
	}
}
