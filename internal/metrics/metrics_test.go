package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConfusionAccuracy(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(0, 1)
	if got := c.Accuracy(); got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if c.Total() != 4 {
		t.Fatalf("total = %d, want 4", c.Total())
	}
}

func TestPerfectF1(t *testing.T) {
	c := NewConfusion(4)
	for cls := 0; cls < 4; cls++ {
		for i := 0; i < 5; i++ {
			c.Add(cls, cls)
		}
	}
	if got := c.MacroF1(); got != 1.0 {
		t.Fatalf("macro F1 = %v, want 1.0", got)
	}
}

func TestKnownF1(t *testing.T) {
	// Binary case: TP=8, FN=2, FP=3, TN=7.
	c := NewConfusion(2)
	for i := 0; i < 8; i++ {
		c.Add(1, 1)
	}
	for i := 0; i < 2; i++ {
		c.Add(1, 0)
	}
	for i := 0; i < 3; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 7; i++ {
		c.Add(0, 0)
	}
	f1pos := c.ClassF1(1) // 2*8/(16+3+2) = 16/21
	want := 16.0 / 21.0
	if math.Abs(f1pos-want) > 1e-12 {
		t.Fatalf("class-1 F1 = %v, want %v", f1pos, want)
	}
}

func TestMacroF1SkipsAbsentClasses(t *testing.T) {
	c := NewConfusion(5)
	c.Add(0, 0)
	c.Add(1, 1)
	// Classes 2..4 never appear; macro over {0,1} only.
	if got := c.MacroF1(); got != 1.0 {
		t.Fatalf("macro F1 = %v, want 1.0 (absent classes skipped)", got)
	}
}

func TestMacroF1Of(t *testing.T) {
	actual := []int{0, 0, 1, 1}
	pred := []int{0, 1, 1, 1}
	got := MacroF1Of(actual, pred, 2)
	// class0: tp=1 fp=0 fn=1 → 2/3; class1: tp=2 fp=1 fn=0 → 4/5.
	want := (2.0/3.0 + 4.0/5.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("macro F1 = %v, want %v", got, want)
	}
}

func TestF1BoundsProperty(t *testing.T) {
	f := func(labels []uint8) bool {
		if len(labels) < 2 {
			return true
		}
		actual := make([]int, len(labels))
		pred := make([]int, len(labels))
		for i, l := range labels {
			actual[i] = int(l % 4)
			pred[i] = int((l / 4) % 4)
		}
		f1 := MacroF1Of(actual, pred, 4)
		return f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	c := NewConfusion(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	c.Add(0, 5)
}

func TestMacroF1OfPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MacroF1Of([]int{0}, []int{0, 1}, 2)
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 5 {
		t.Fatalf("Len = %d, want 5", e.Len())
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 2, 4})
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v, want 1", q)
	}
	if q := e.Quantile(1); q != 5 {
		t.Fatalf("q1 = %v, want 5", q)
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Fatalf("median = %v, want 3", q)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(obs []float64, a, b float64) bool {
		e := NewECDF(obs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.At(lo) <= e.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyECDF(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.Quantile(0.5) != 0 {
		t.Fatal("empty ECDF should return zeros")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", std)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	mean, std := MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatal("empty MeanStd should return zeros")
	}
}

func TestNewConfusionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewConfusion(0) did not panic")
		}
	}()
	NewConfusion(0)
}

func TestThroughputRates(t *testing.T) {
	tp := Throughput{Packets: 2_000_000, Digests: 10_000, Recirculations: 40_000, Elapsed: 2 * time.Second}
	if got := tp.PktsPerSec(); got != 1_000_000 {
		t.Fatalf("PktsPerSec = %v, want 1e6", got)
	}
	if got := tp.DigestsPerSec(); got != 5_000 {
		t.Fatalf("DigestsPerSec = %v, want 5000", got)
	}
	if got := tp.RecircPerPkt(); got != 0.02 {
		t.Fatalf("RecircPerPkt = %v, want 0.02", got)
	}
	if s := tp.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestThroughputZeroSafe(t *testing.T) {
	var tp Throughput
	if tp.PktsPerSec() != 0 || tp.DigestsPerSec() != 0 || tp.RecircPerPkt() != 0 {
		t.Fatalf("zero Throughput rates not zero: %+v", tp)
	}
}
