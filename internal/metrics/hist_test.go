package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// histRelErr is the histogram's guaranteed quantile resolution: values in
// one bucket differ by at most a factor 1+2^-histSubBits, and Quantile
// reports the bucket's upper bound.
const histRelErr = 1.0 / histSubCount

func TestHistIndexUpperConsistent(t *testing.T) {
	// Every probed value must land in a bucket whose upper bound is >= the
	// value and within the guaranteed relative error.
	probe := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1_000_000, 123_456_789, int64(time.Hour), math.MaxInt64 / 2}
	for _, v := range probe {
		i := histIndex(v)
		up := histUpper(i)
		if up < v {
			t.Fatalf("histUpper(%d)=%d < value %d", i, up, v)
		}
		if v > 0 && float64(up-v) > histRelErr*float64(v)+1 {
			t.Fatalf("value %d bucket upper %d exceeds relative error", v, up)
		}
		if i > 0 && histUpper(i-1) >= v {
			t.Fatalf("value %d also covered by previous bucket (upper %d)", v, histUpper(i-1))
		}
	}
}

// TestHistQuantileGoldenECDF pins the histogram's percentile report against
// the exact ECDF on identical samples: same rank convention, bucket-bounded
// error — the contract the load harness's p50/p99/p999 report rests on.
func TestHistQuantileGoldenECDF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dist := range []struct {
		name string
		draw func() int64
	}{
		{"uniform", func() int64 { return int64(rng.Intn(1_000_000)) }},
		{"lognormal", func() int64 { return int64(math.Exp(10 + 2*rng.NormFloat64())) }},
		{"bimodal", func() int64 {
			if rng.Intn(10) == 0 {
				return int64(5_000_000 + rng.Intn(1_000_000))
			}
			return int64(1000 + rng.Intn(100))
		}},
	} {
		t.Run(dist.name, func(t *testing.T) {
			h := &Hist{}
			obs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := dist.draw()
				h.Record(v)
				obs = append(obs, float64(v))
			}
			e := NewECDF(obs)
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
				exact := e.Quantile(q)
				got := float64(h.Quantile(q))
				if got < exact {
					t.Fatalf("q=%v: hist %v below exact %v (must be an upper bound)", q, got, exact)
				}
				if got > exact*(1+histRelErr)+1 {
					t.Fatalf("q=%v: hist %v exceeds exact %v by more than %.1f%%",
						q, got, exact, histRelErr*100)
				}
			}
		})
	}
}

// TestHistMergeAssociative pins the per-shard merge contract: shard
// histograms merged in any grouping equal one global histogram over the
// union of the samples, quantile for quantile and bucket for bucket.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	global := &Hist{}
	shards := make([]*Hist, 4)
	for i := range shards {
		shards[i] = &Hist{}
	}
	for i := 0; i < 40000; i++ {
		v := int64(math.Exp(8 + 3*rng.NormFloat64()))
		global.Record(v)
		shards[rng.Intn(len(shards))].Record(v)
	}

	// Left-fold merge.
	left := &Hist{}
	for _, s := range shards {
		left.Merge(s)
	}
	// Pairwise (tree) merge.
	ab, cd := &Hist{}, &Hist{}
	ab.Merge(shards[0])
	ab.Merge(shards[1])
	cd.Merge(shards[2])
	cd.Merge(shards[3])
	tree := &Hist{}
	tree.Merge(ab)
	tree.Merge(cd)

	for _, m := range []*Hist{left, tree} {
		if m.Count() != global.Count() {
			t.Fatalf("merged count %d != global %d", m.Count(), global.Count())
		}
		for i := 0; i < histBuckets; i++ {
			if m.counts[i].Load() != global.counts[i].Load() {
				t.Fatalf("bucket %d: merged %d != global %d", i, m.counts[i].Load(), global.counts[i].Load())
			}
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if m.Quantile(q) != global.Quantile(q) {
				t.Fatalf("q=%v: merged %d != global %d", q, m.Quantile(q), global.Quantile(q))
			}
		}
	}
}

func TestHistSubIsPhaseDelta(t *testing.T) {
	h := &Hist{}
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	snap := h.Clone()
	for i := int64(1_000_000); i <= 1_001_000; i++ {
		h.Record(i)
	}
	phase := h.Clone()
	phase.Sub(snap)
	if phase.Count() != 1001 {
		t.Fatalf("phase count = %d, want 1001", phase.Count())
	}
	if q := phase.Quantile(0.5); q < 1_000_000 {
		t.Fatalf("phase median %d should sit in the second burst", q)
	}
	if h.Count() != 2001 {
		t.Fatalf("source histogram perturbed: count %d", h.Count())
	}
}

func TestHistEmptyAndClamp(t *testing.T) {
	h := &Hist{}
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	h.Record(-5) // clamps to zero
	if h.Quantile(1) != 0 || h.Count() != 1 {
		t.Fatalf("negative record should clamp: q1=%d n=%d", h.Quantile(1), h.Count())
	}
}

func BenchmarkHistRecord(b *testing.B) {
	h := &Hist{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 37)
	}
}
