package metrics

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCumulative(t *testing.T) {
	h := &Hist{}
	vals := []int64{0, 1, 5, 999, 1000, 1001, 50_000, 4_000_000_000}
	for _, v := range vals {
		h.Record(v)
	}
	brute := func(v int64) int64 {
		var n int64
		for _, x := range vals {
			if x <= v {
				n++
			}
		}
		return n
	}
	// At exact internal bucket edges the projection is exact; elsewhere it
	// may undercount by at most the values quantised into v's own bucket.
	for _, v := range []int64{0, 1, 5, 31, 999, 1001, 1_000_000, int64(4 * time.Second)} {
		got := h.Cumulative(v)
		want := brute(v)
		if got > want {
			t.Errorf("Cumulative(%d) = %d overcounts (brute %d)", v, got, want)
		}
		if got < brute(v-v/16-1) { // 2^-histSubBits relative slack
			t.Errorf("Cumulative(%d) = %d undercounts past bucket error (brute %d)", v, got, want)
		}
	}
	if got := h.Cumulative(-5); got != 0 {
		t.Errorf("Cumulative(-5) = %d, want 0", got)
	}
	if got := h.Cumulative(1 << 62); got != int64(len(vals)) {
		t.Errorf("Cumulative(max) = %d, want %d", got, len(vals))
	}
}

func TestWriteProm(t *testing.T) {
	h := &Hist{}
	h.RecordDur(3 * time.Microsecond)
	h.RecordDur(50 * time.Microsecond)
	h.RecordDur(2 * time.Millisecond)

	var buf bytes.Buffer
	h.WriteProm(&buf, "splidt_digest_latency_seconds", `shard="0"`, PromDefaultBuckets)
	out := buf.String()

	if !strings.Contains(out, `splidt_digest_latency_seconds_bucket{shard="0",le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `splidt_digest_latency_seconds_bucket{shard="0",le="4e-06"} 1`) {
		t.Errorf("missing 4µs bucket with count 1:\n%s", out)
	}
	if !strings.Contains(out, `splidt_digest_latency_seconds_count{shard="0"} 3`) {
		t.Errorf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, `splidt_digest_latency_seconds_sum{shard="0"} `) {
		t.Errorf("missing _sum:\n%s", out)
	}

	// Bucket counts must be monotone non-decreasing down the ladder.
	re := regexp.MustCompile(`_bucket\{[^}]*\} (\d+)`)
	prev := int64(-1)
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		n, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("non-monotone bucket counts:\n%s", out)
		}
		prev = n
	}

	// No labels: samples must not render an empty {} pair on _sum/_count,
	// and bucket lines must carry only le.
	buf.Reset()
	h.WriteProm(&buf, "m", "", PromDefaultBuckets[:2])
	out = buf.String()
	for _, want := range []string{`m_bucket{le="1e-06"} 0`, "m_sum ", "m_count 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("unlabelled output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteQuantiles(t *testing.T) {
	h := &Hist{}
	for i := 0; i < 1000; i++ {
		h.RecordDur(time.Duration(i) * time.Microsecond)
	}
	var buf bytes.Buffer
	h.WriteQuantiles(&buf, "splidt_digest_latency", `shard="1"`)
	out := buf.String()
	for _, q := range []string{"0.5", "0.99", "0.999"} {
		if !strings.Contains(out, `splidt_digest_latency{shard="1",quantile="`+q+`"} `) {
			t.Errorf("missing quantile %s:\n%s", q, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("quantile family has %d lines, want 3:\n%s", n, out)
	}
}
