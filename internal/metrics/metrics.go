// Package metrics provides the evaluation statistics the paper reports —
// macro-averaged F1 score, confusion matrices, and empirical CDFs (used for
// the time-to-detection plots) — plus the throughput counters the sharded
// traffic engine reports (packets/sec, digests/sec, recirculation rate).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Confusion is a square confusion matrix: Confusion[actual][predicted].
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion allocates an n-class confusion matrix.
func NewConfusion(n int) *Confusion {
	if n < 1 {
		panic("metrics: class count < 1")
	}
	c := &Confusion{Classes: n, Counts: make([][]int, n)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, n)
	}
	return c
}

// Add records one observation.
func (c *Confusion) Add(actual, predicted int) {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		panic(fmt.Sprintf("metrics: label out of range (actual %d, predicted %d, classes %d)",
			actual, predicted, c.Classes))
	}
	c.Counts[actual][predicted]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the overall fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	total, ok := 0, 0
	for i, row := range c.Counts {
		for j, v := range row {
			total += v
			if i == j {
				ok += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// ClassF1 returns the one-vs-rest F1 of a class (0 when the class has no
// support and no predictions).
func (c *Confusion) ClassF1(class int) float64 {
	tp := c.Counts[class][class]
	fp, fn := 0, 0
	for i := 0; i < c.Classes; i++ {
		if i == class {
			continue
		}
		fp += c.Counts[i][class]
		fn += c.Counts[class][i]
	}
	if 2*tp+fp+fn == 0 {
		return 0
	}
	return 2 * float64(tp) / float64(2*tp+fp+fn)
}

// MacroF1 returns the unweighted mean of per-class F1 over classes that
// appear in the data (as actuals or predictions) — the paper's headline
// metric.
func (c *Confusion) MacroF1() float64 {
	sum, n := 0.0, 0
	for class := 0; class < c.Classes; class++ {
		support := 0
		for j := 0; j < c.Classes; j++ {
			support += c.Counts[class][j] + c.Counts[j][class]
		}
		if support == 0 {
			continue
		}
		sum += c.ClassF1(class)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MacroF1Of scores predicted against actual labels directly.
func MacroF1Of(actual, predicted []int, classes int) float64 {
	if len(actual) != len(predicted) {
		panic("metrics: length mismatch")
	}
	c := NewConfusion(classes)
	for i := range actual {
		c.Add(actual[i], predicted[i])
	}
	return c.MacroF1()
}

// ECDF is an empirical cumulative distribution function over float64
// observations.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from observations (copied and sorted).
func NewECDF(obs []float64) *ECDF {
	s := make([]float64, len(obs))
	copy(s, obs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance over ties to get <=.
	for i < len(e.sorted) && e.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile, q in [0,1].
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(q * float64(len(e.sorted)))
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Len returns the observation count.
func (e *ECDF) Len() int { return len(e.sorted) }

// Throughput reports the rate counters of one engine run: how much traffic
// moved through the data plane and how fast. Recirculations count the
// in-band control packets subtree transitions consume — the engine's main
// self-inflicted overhead — so RecircPerPkt is the fraction of pipeline
// bandwidth spent on transitions rather than traffic.
type Throughput struct {
	Packets        int           // data packets processed
	Digests        int           // classifications emitted
	Recirculations int           // control packets recirculated
	Elapsed        time.Duration // wall-clock processing time
}

// PktsPerSec returns the packet-processing rate.
func (t Throughput) PktsPerSec() float64 { return t.perSec(t.Packets) }

// DigestsPerSec returns the classification rate.
func (t Throughput) DigestsPerSec() float64 { return t.perSec(t.Digests) }

// RecircPerPkt returns recirculated control packets per data packet.
func (t Throughput) RecircPerPkt() float64 {
	if t.Packets == 0 {
		return 0
	}
	return float64(t.Recirculations) / float64(t.Packets)
}

func (t Throughput) perSec(n int) float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(n) / t.Elapsed.Seconds()
}

// String renders the counters in the engine CLI's report form.
func (t Throughput) String() string {
	return fmt.Sprintf("%d pkts in %v (%.0f pkts/s, %.0f digests/s, %.3f recirc/pkt)",
		t.Packets, t.Elapsed.Round(time.Microsecond), t.PktsPerSec(), t.DigestsPerSec(), t.RecircPerPkt())
}

// MeanStd returns the sample mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		varsum += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(varsum / float64(len(xs)))
}
