package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a fixed-size log-linear latency histogram in the HdrHistogram
// mould: values (nanoseconds, or any non-negative int64 unit) land in
// buckets whose width doubles every octave, subdivided into 2^histSubBits
// linear sub-buckets, so the relative quantile error is bounded by
// 2^-histSubBits (≈3.1%) across the whole int64 range. Record is
// allocation-free and uses a single uncontended atomic add, so a shard
// worker can record into its own Hist on the hot path while an observer
// reads quantiles live — reads see a slightly stale but internally
// consistent-enough view, and a quiesced histogram (workers stopped) reads
// exactly.
//
// The zero value is ready to use.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Sub-bucket resolution: 2^histSubBits linear sub-buckets per octave.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histSubMask  = histSubCount - 1
	// The first histSubCount values map identity; every further octave
	// (63 - histSubBits of them) contributes histSubCount sub-buckets.
	histBuckets = histSubCount * (64 - histSubBits)
)

// histIndex maps a non-negative value to its bucket.
//
//splidt:hotpath
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	shift := msb - histSubBits
	return (shift+1)<<histSubBits + int((v>>shift)&histSubMask)
}

// histUpper returns the largest value mapping to bucket i — the
// conservative (upper-bound) representative Quantile reports.
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	shift := i>>histSubBits - 1
	sub := int64(i&histSubMask) | histSubCount
	return (sub+1)<<shift - 1
}

// Record adds one observation. Negative values clamp to zero.
//
//splidt:hotpath
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// RecordDur records a duration in nanoseconds.
//
//splidt:hotpath
func (h *Hist) RecordDur(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean of recorded values (exact, not
// bucket-quantised), or 0 when empty.
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-th quantile (q in [0,1]) with
// relative error at most 2^-histSubBits. The rank convention matches
// ECDF.Quantile: rank floor(q·n) in the sorted order (0-based), so golden
// tests can compare the two on identical samples. Returns 0 when empty.
func (h *Hist) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return histUpper(i)
		}
	}
	// Racing writers can leave count ahead of the bucket sum momentarily;
	// fall back to the largest occupied bucket.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return histUpper(i)
		}
	}
	return 0
}

// QuantileDur is Quantile for nanosecond-valued histograms.
func (h *Hist) QuantileDur(q float64) time.Duration { return time.Duration(h.Quantile(q)) }

// Max returns an upper bound for the largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.Quantile(1) }

// Merge folds o's observations into h. Merging is associative and
// commutative: per-shard histograms merged in any grouping equal one global
// histogram over the union of the samples.
func (h *Hist) Merge(o *Hist) {
	for i := 0; i < histBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Sub subtracts o's observations from h, bucket-wise — the phase-delta
// operation: snapshot a cumulative histogram at a phase boundary and Sub
// the previous snapshot to get the phase's own distribution. o must be an
// earlier snapshot of the same stream (every bucket ≤ h's).
func (h *Hist) Sub(o *Hist) {
	for i := 0; i < histBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(-c)
		}
	}
	h.count.Add(-o.count.Load())
	h.sum.Add(-o.sum.Load())
}

// Clone returns an independent copy of the histogram's current state.
func (h *Hist) Clone() *Hist {
	c := &Hist{}
	for i := 0; i < histBuckets; i++ {
		if v := h.counts[i].Load(); v != 0 {
			c.counts[i].Store(v)
		}
	}
	c.count.Store(h.count.Load())
	c.sum.Store(h.sum.Load())
	return c
}

// Reset clears the histogram.
func (h *Hist) Reset() {
	for i := 0; i < histBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// String renders the canonical latency summary line.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		h.Count(), h.QuantileDur(0.50), h.QuantileDur(0.99),
		h.QuantileDur(0.999), time.Duration(h.Max()))
}
